// Benchmarks regenerating the paper's evaluation (one benchmark per
// published table, Tables 1–10) plus the ablation benchmarks over the
// scheduler's design choices listed in DESIGN.md §3.
//
// The table benchmarks run the same harness as cmd/tables on a reduced grid
// so that `go test -bench=.` completes in minutes; run
// `go run ./cmd/tables -all` (optionally -full) for the complete grids and
// formatted tables.
package repro_test

import (
	"io"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/harness"
	"repro/internal/qsort"
)

// benchTable runs one paper table's configuration on a reduced grid.
func benchTable(b *testing.B, table int) {
	cfg, mode, err := harness.TableConfig(table, true)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Sizes = []int{1 << 19}
	cfg.Kinds = []dist.Kind{dist.Random, dist.Staggered}
	cfg.Reps = 1
	// Keep teams forming at the reduced size.
	cfg.BlockSize = 1024
	cfg.MinBlocks = 16
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := harness.Run(cfg, io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			row := res.Rows[0]
			b.ReportMetric(row.Speedup(harness.MMPar, mode), "mmpar-speedup")
			b.ReportMetric(row.Speedup(harness.Fork, mode), "fork-speedup")
		}
	}
}

func BenchmarkTable1NehalemAvg(b *testing.B)    { benchTable(b, 1) }
func BenchmarkTable2NehalemBest(b *testing.B)   { benchTable(b, 2) }
func BenchmarkTable3OpteronAvg(b *testing.B)    { benchTable(b, 3) }
func BenchmarkTable4OpteronBest(b *testing.B)   { benchTable(b, 4) }
func BenchmarkTable5NehalemEXAvg(b *testing.B)  { benchTable(b, 5) }
func BenchmarkTable6NehalemEXBest(b *testing.B) { benchTable(b, 6) }
func BenchmarkTable7T2x32Avg(b *testing.B)      { benchTable(b, 7) }
func BenchmarkTable8T2x32Best(b *testing.B)     { benchTable(b, 8) }
func BenchmarkTable9T2x64Avg(b *testing.B)      { benchTable(b, 9) }
func BenchmarkTable10T2x64Best(b *testing.B)    { benchTable(b, 10) }

// --- Per-algorithm sort benchmarks (the columns in isolation) -------------

const benchN = 1 << 20

func benchInput() []int32 { return dist.Generate(dist.Random, benchN, 42) }

func BenchmarkSortSeqSTL(b *testing.B) {
	in := benchInput()
	buf := make([]int32, benchN)
	b.SetBytes(4 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, in)
		qsort.Introsort(buf)
	}
}

func BenchmarkSortSeqQS(b *testing.B) {
	in := benchInput()
	buf := make([]int32, benchN)
	b.SetBytes(4 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, in)
		qsort.SequentialQuicksort(buf)
	}
}

func BenchmarkSortFork(b *testing.B) {
	s := core.New(core.Options{P: 8})
	defer s.Shutdown()
	in := benchInput()
	buf := make([]int32, benchN)
	b.SetBytes(4 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, in)
		qsort.ForkJoinCore(s, buf, qsort.DefaultCutoff)
	}
}

func BenchmarkSortMMPar(b *testing.B) {
	s := core.New(core.Options{P: 8})
	defer s.Shutdown()
	in := benchInput()
	buf := make([]int32, benchN)
	opt := qsort.MMOptions{BlockSize: 1024, MinBlocksPerThread: 16}
	b.SetBytes(4 * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, in)
		qsort.MixedMode(s, buf, opt)
	}
}

// --- Ablation benchmarks (DESIGN.md §3) ------------------------------------

// mixedWorkload spawns a pyramid of team tasks of every size plus solo
// leaves; used by the scheduler ablations.
func mixedWorkload(s *core.Scheduler, teamWork int) {
	maxTeam := s.MaxTeam()
	s.Run(core.Solo(func(ctx *core.Ctx) {
		for r := 1; r <= maxTeam; r *= 2 {
			for k := 0; k < 8; k++ {
				ctx.Spawn(core.Func(r, func(c *core.Ctx) {
					x := 0
					for j := 0; j < teamWork; j++ {
						x += j
					}
					_ = x
					c.Barrier()
				}))
			}
		}
		for k := 0; k < 256; k++ {
			ctx.Spawn(core.Solo(func(*core.Ctx) {
				x := 0
				for j := 0; j < 2000; j++ {
					x += j
				}
				_ = x
			}))
		}
	}))
}

// BenchmarkAblationStealPattern compares deterministic (paper default)
// against randomized (Refinement 4) partner selection.
func BenchmarkAblationStealPattern(b *testing.B) {
	for _, variant := range []struct {
		name string
		rand bool
	}{{"deterministic", false}, {"randomized", true}} {
		b.Run(variant.name, func(b *testing.B) {
			s := core.New(core.Options{P: 8, Randomized: variant.rand, Seed: 7})
			defer s.Shutdown()
			for i := 0; i < b.N; i++ {
				mixedWorkload(s, 20000)
			}
		})
	}
}

// BenchmarkAblationStealAmount compares the paper's min(size/2, 2^ℓ) bulk
// steal against single-task steals.
func BenchmarkAblationStealAmount(b *testing.B) {
	for _, variant := range []struct {
		name string
		one  bool
	}{{"steal-level", false}, {"steal-one", true}} {
		b.Run(variant.name, func(b *testing.B) {
			s := core.New(core.Options{P: 8, StealOne: variant.one, Seed: 7})
			defer s.Shutdown()
			in := dist.Generate(dist.Random, 1<<20, 42)
			buf := make([]int32, len(in))
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				qsort.ForkJoinCore(s, buf, 128)
			}
		})
	}
}

// BenchmarkAblationTeamReuse compares keeping teams across same-size tasks
// (paper default, §3: "no further coordination") against disbanding after
// every task.
func BenchmarkAblationTeamReuse(b *testing.B) {
	for _, variant := range []struct {
		name    string
		disband bool
	}{{"reuse", false}, {"disband", true}} {
		b.Run(variant.name, func(b *testing.B) {
			s := core.New(core.Options{P: 8, DisableTeamReuse: variant.disband, Seed: 7})
			defer s.Shutdown()
			for i := 0; i < b.N; i++ {
				s.Run(core.Solo(func(ctx *core.Ctx) {
					for k := 0; k < 64; k++ {
						ctx.Spawn(core.Func(8, func(c *core.Ctx) { c.Barrier() }))
					}
				}))
			}
		})
	}
}

// BenchmarkAblationBlockSize sweeps the partition block size of the
// mixed-mode quicksort (§5 tunables).
func BenchmarkAblationBlockSize(b *testing.B) {
	in := dist.Generate(dist.Random, 1<<22, 42)
	for _, bs := range []int{1024, 4096, 16384} {
		b.Run(sizeName(bs), func(b *testing.B) {
			s := core.New(core.Options{P: 8})
			defer s.Shutdown()
			buf := make([]int32, len(in))
			opt := qsort.MMOptions{BlockSize: bs, MinBlocksPerThread: 16}
			b.SetBytes(4 << 22)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				qsort.MixedMode(s, buf, opt)
			}
		})
	}
}

// BenchmarkAblationMinBlocks sweeps getBestNp's blocks-per-thread threshold.
func BenchmarkAblationMinBlocks(b *testing.B) {
	in := dist.Generate(dist.Random, 1<<22, 42)
	for _, mb := range []int{16, 128, 512} {
		b.Run(sizeName(mb), func(b *testing.B) {
			s := core.New(core.Options{P: 8})
			defer s.Shutdown()
			buf := make([]int32, len(in))
			opt := qsort.MMOptions{BlockSize: 1024, MinBlocksPerThread: mb}
			b.SetBytes(4 << 22)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				qsort.MixedMode(s, buf, opt)
			}
		})
	}
}

// BenchmarkAblationR1Overhead measures the paper's claim that with r = 1
// tasks only, team-building adds no overhead over plain work-stealing: a
// pure task-parallel fib tree on the core scheduler.
func BenchmarkAblationR1Overhead(b *testing.B) {
	s := core.New(core.Options{P: 8})
	defer s.Shutdown()
	var fib func(ctx *core.Ctx, n int, out *atomic.Int64)
	fib = func(ctx *core.Ctx, n int, out *atomic.Int64) {
		if n < 2 {
			out.Add(int64(n))
			return
		}
		ctx.Spawn(core.Solo(func(c *core.Ctx) { fib(c, n-1, out) }))
		fib(ctx, n-2, out)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out atomic.Int64
		s.Run(core.Solo(func(ctx *core.Ctx) { fib(ctx, 22, &out) }))
		if out.Load() != 17711 {
			b.Fatalf("fib = %d", out.Load())
		}
	}
}

// BenchmarkTeamFormation measures the latency of building, using and
// disbanding a full-width team once.
func BenchmarkTeamFormation(b *testing.B) {
	s := core.New(core.Options{P: 8, DisableTeamReuse: true})
	defer s.Shutdown()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(core.Func(8, func(*core.Ctx) {}))
	}
}

// BenchmarkSpawnSolo measures task spawn+run overhead at r = 1.
func BenchmarkSpawnSolo(b *testing.B) {
	s := core.New(core.Options{P: 4})
	defer s.Shutdown()
	b.ReportAllocs()
	b.ResetTimer()
	s.Run(core.Solo(func(ctx *core.Ctx) {
		for i := 0; i < b.N; i++ {
			ctx.Spawn(core.Solo(func(*core.Ctx) {}))
		}
	}))
	s.Wait()
}

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return string(rune('0'+n>>20)) + "M"
	default:
		var buf [8]byte
		i := len(buf)
		for n > 0 {
			i--
			buf[i] = byte('0' + n%10)
			n /= 10
		}
		return string(buf[i:])
	}
}
