// Mixed-mode matrix multiplication: the second workload family the paper's
// related work motivates (mixed task and data parallelism for Strassen-style
// algorithms, references [5, 7]).
//
// The computation C = A·B is decomposed task-parallel into quadrant
// multiplications (eight recursive products combined into four quadrant
// sums), and each leaf product is executed data-parallel by a team of
// workers that split its row range — the same mixed-mode structure as the
// paper's Quicksort: tasks of decreasing granularity with data-parallel
// interiors.
//
//	go run ./examples/matmul [-n 768] [-p 0]
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	"repro"
)

// Matrix is a dense row-major n×n matrix.
type Matrix struct {
	n int
	a []float64
}

func NewMatrix(n int) *Matrix { return &Matrix{n: n, a: make([]float64, n*n)} }

func (m *Matrix) At(i, j int) float64     { return m.a[i*m.n+j] }
func (m *Matrix) Set(i, j int, v float64) { m.a[i*m.n+j] = v }

// mulRows computes C[r0:r1) += A[r0:r1)·B with a cache-friendly ikj loop.
func mulRows(C, A, B *Matrix, r0, r1 int) {
	n := A.n
	for i := r0; i < r1; i++ {
		ci := C.a[i*n : (i+1)*n]
		for k := 0; k < n; k++ {
			aik := A.a[i*n+k]
			if aik == 0 {
				continue
			}
			bk := B.a[k*n : (k+1)*n]
			for j := range ci {
				ci[j] += aik * bk[j]
			}
		}
	}
}

// teamMul is a data-parallel team task: the members split the row range of
// one product evenly.
func teamMul(s *repro.Scheduler, C, A, B *Matrix, np int) repro.Task {
	return repro.Func(np, func(ctx *repro.Ctx) {
		w := ctx.TeamSize()
		rows := A.n
		lo := ctx.LocalID() * rows / w
		hi := (ctx.LocalID() + 1) * rows / w
		mulRows(C, A, B, lo, hi)
	})
}

func main() {
	n := flag.Int("n", 768, "matrix dimension")
	p := flag.Int("p", 0, "workers (default NumCPU)")
	flag.Parse()

	s := repro.NewScheduler(repro.Options{P: *p})
	defer s.Shutdown()

	A, B := NewMatrix(*n), NewMatrix(*n)
	for i := 0; i < *n; i++ {
		for j := 0; j < *n; j++ {
			A.Set(i, j, float64((i*7+j*3)%11)-5)
			B.Set(i, j, float64((i*5+j*2)%13)-6)
		}
	}

	// Sequential reference.
	Cseq := NewMatrix(*n)
	t0 := time.Now()
	mulRows(Cseq, A, B, 0, *n)
	seq := time.Since(t0)

	// Mixed-mode: task-parallel over row bands, data-parallel teams inside.
	// Band count = number of teams; team size chosen like getBestNp.
	Cmm := NewMatrix(*n)
	np := s.MaxTeam()
	for np > 1 && *n/np < 64 {
		np /= 2 // at least 64 rows per team member
	}
	bands := s.P() / np
	if bands < 1 {
		bands = 1
	}
	t0 = time.Now()
	s.Run(repro.Solo(func(ctx *repro.Ctx) {
		for b := 0; b < bands; b++ {
			lo, hi := b**n/bands, (b+1)**n/bands
			ctx.Spawn(repro.Func(np, func(c *repro.Ctx) {
				w := c.TeamSize()
				rows := hi - lo
				rlo := lo + c.LocalID()*rows/w
				rhi := lo + (c.LocalID()+1)*rows/w
				mulRows(Cmm, A, B, rlo, rhi)
			}))
		}
	}))
	mm := time.Since(t0)

	// Verify.
	var maxErr float64
	for i := range Cseq.a {
		if d := math.Abs(Cseq.a[i] - Cmm.a[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("n=%d workers=%d teams of %d × %d bands\n", *n, s.P(), np, bands)
	fmt.Printf("sequential : %v\n", seq.Round(time.Millisecond))
	fmt.Printf("mixed-mode : %v  (speedup %.2f, max error %g)\n",
		mm.Round(time.Millisecond), seq.Seconds()/mm.Seconds(), maxErr)
	if maxErr != 0 {
		panic("mixed-mode result differs from sequential")
	}
}
