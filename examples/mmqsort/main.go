// Mixed-mode Quicksort example: sorts each of the paper's four input
// distributions with the sequential baseline, the fork-join parallel
// quicksort (Algorithm 10) and the mixed-mode quicksort (Algorithm 11),
// reporting speedups — a miniature of the paper's Tables 1–10.
//
//	go run ./examples/mmqsort [-n 10000000] [-p 0]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro"
)

func main() {
	n := flag.Int("n", 10_000_000, "elements per distribution")
	p := flag.Int("p", 0, "workers (default NumCPU)")
	flag.Parse()

	s := repro.NewScheduler(repro.Options{P: *p})
	defer s.Shutdown()
	fmt.Printf("sorting %d ints per distribution on %d workers (max team %d)\n\n",
		*n, s.P(), s.MaxTeam())
	fmt.Printf("%-10s %12s %12s %6s %12s %6s\n",
		"dist", "sequential", "fork-join", "SU", "mixed-mode", "SU")

	for _, kind := range []repro.Distribution{repro.Random, repro.Gauss, repro.Buckets, repro.Staggered} {
		input := repro.GenerateInput(kind, *n, 42)
		buf := make([]int32, *n)

		copy(buf, input)
		seq := timeIt(func() { repro.SortSequential(buf) })
		verify(buf)

		copy(buf, input)
		fork := timeIt(func() { repro.SortForkJoin(s, buf) })
		verify(buf)

		copy(buf, input)
		mm := timeIt(func() { repro.SortMixedMode(s, buf, repro.MMOptions{}) })
		verify(buf)

		fmt.Printf("%-10v %12v %12v %6.2f %12v %6.2f\n",
			kind, seq.Round(time.Millisecond), fork.Round(time.Millisecond),
			seq.Seconds()/fork.Seconds(), mm.Round(time.Millisecond),
			seq.Seconds()/mm.Seconds())
	}
}

func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

func verify(data []int32) {
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			panic("output not sorted")
		}
	}
}
