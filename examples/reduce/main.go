// Data-parallel reduction example: a team task computes the sum, minimum and
// maximum of a large array in one pass, with each team member reducing a
// contiguous chunk and the results combined through the team reduction slots
// after a barrier — the canonical "tightly coupled data-parallel task" the
// paper's scheduler exists to co-schedule.
//
// The example also demonstrates running team tasks of different sizes
// concurrently with ordinary single-threaded tasks in the same scheduler:
// the mixed-mode workload that classical work-stealing cannot express.
//
//	go run ./examples/reduce [-n 50000000] [-p 0]
package main

import (
	"flag"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/teamsync"
)

type reduction struct {
	sum, min, max int64
}

// teamReduce builds a team task of np workers reducing data; the result is
// delivered through out (written by local id 0).
func teamReduce(np int, data []int32, out *reduction, done *atomic.Int32) repro.Task {
	sums := teamsync.NewReduceInt64(np)
	mins := teamsync.NewReduceInt64(np)
	maxs := teamsync.NewReduceInt64(np)
	return repro.Func(np, func(ctx *repro.Ctx) {
		w, lid := ctx.TeamSize(), ctx.LocalID()
		lo, hi := lid*len(data)/w, (lid+1)*len(data)/w
		var sum int64
		mn, mx := int64(math.MaxInt64), int64(math.MinInt64)
		for _, v := range data[lo:hi] {
			sum += int64(v)
			if int64(v) < mn {
				mn = int64(v)
			}
			if int64(v) > mx {
				mx = int64(v)
			}
		}
		sums.Set(lid, sum)
		mins.Set(lid, mn)
		maxs.Set(lid, mx)
		ctx.Barrier()
		if lid == 0 {
			out.sum = sums.Sum(w)
			out.min, out.max = int64(math.MaxInt64), int64(math.MinInt64)
			for i := 0; i < w; i++ {
				if m := mins.Get(i); m < out.min {
					out.min = m
				}
				if m := maxs.Get(i); m > out.max {
					out.max = m
				}
			}
			done.Add(1)
		}
	})
}

func main() {
	n := flag.Int("n", 50_000_000, "array length")
	p := flag.Int("p", 0, "workers (default NumCPU)")
	flag.Parse()

	s := repro.NewScheduler(repro.Options{P: *p})
	defer s.Shutdown()
	data := repro.GenerateInput(repro.Gauss, *n, 99)

	// Sequential reference.
	t0 := time.Now()
	var ref reduction
	ref.min, ref.max = math.MaxInt64, math.MinInt64
	for _, v := range data {
		ref.sum += int64(v)
		if int64(v) < ref.min {
			ref.min = int64(v)
		}
		if int64(v) > ref.max {
			ref.max = int64(v)
		}
	}
	seq := time.Since(t0)

	// One big team reduction.
	var out reduction
	var done atomic.Int32
	np := s.MaxTeam()
	t0 = time.Now()
	s.Run(teamReduce(np, data, &out, &done))
	par := time.Since(t0)
	if out != ref {
		panic(fmt.Sprintf("team reduction %+v != reference %+v", out, ref))
	}
	fmt.Printf("reduce %d ints: sequential %v, team of %d %v (speedup %.2f)\n",
		*n, seq.Round(time.Millisecond), np, par.Round(time.Millisecond),
		seq.Seconds()/par.Seconds())
	fmt.Printf("  sum=%d min=%d max=%d\n", out.sum, out.min, out.max)

	// Mixed workload: several smaller team reductions of different sizes
	// plus a swarm of solo tasks, all in flight at once.
	fmt.Println("\nmixed workload: team reductions (sizes vary) + 1000 solo tasks")
	chunks := 8
	outs := make([]reduction, chunks)
	var solo atomic.Int64
	t0 = time.Now()
	s.Run(repro.Solo(func(ctx *repro.Ctx) {
		for i := 0; i < chunks; i++ {
			part := data[i**n/chunks : (i+1)**n/chunks]
			np := 1 << (i % 3) // teams of 1, 2, 4
			if np > s.MaxTeam() {
				np = s.MaxTeam()
			}
			ctx.Spawn(teamReduce(np, part, &outs[i], &done))
		}
		for i := 0; i < 1000; i++ {
			ctx.Spawn(repro.Solo(func(*repro.Ctx) { solo.Add(1) }))
		}
	}))
	mixed := time.Since(t0)
	var total int64
	for _, o := range outs {
		total += o.sum
	}
	if total != ref.sum {
		panic("chunked team reductions disagree with reference sum")
	}
	fmt.Printf("  done in %v: chunk sums add up, %d solo tasks interleaved, %d team completions\n",
		mixed.Round(time.Millisecond), solo.Load(), done.Load())
	st := s.Stats()
	fmt.Printf("  scheduler: %d teams formed, %d registrations, %d steals\n",
		st.TeamsFormed, st.Registrations, st.Steals)
}
