// Quickstart: the smallest tour of the team-building work-stealing API.
//
//	go run ./examples/quickstart
//
// It shows the three task shapes the scheduler supports: classical
// single-threaded tasks, fork/join groups of single-threaded tasks, and
// data-parallel team tasks that run simultaneously on r workers with
// team-local ids and a barrier.
package main

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro"
)

func main() {
	s := repro.NewScheduler(repro.Options{P: 8})
	defer s.Shutdown()
	fmt.Printf("scheduler: %d workers, max team size %d\n\n", s.P(), s.MaxTeam())

	// 1. Classical work-stealing: fire-and-forget single-threaded tasks.
	var count atomic.Int64
	s.Run(repro.Solo(func(ctx *repro.Ctx) {
		for i := 0; i < 100; i++ {
			ctx.Spawn(repro.Solo(func(*repro.Ctx) { count.Add(1) }))
		}
	}))
	fmt.Printf("1. spawned and drained %d single-threaded tasks\n", count.Load())

	// 2. Fork/join with a TaskGroup (the paper's async/sync of Algorithm 10).
	s.Run(repro.Solo(func(ctx *repro.Ctx) {
		var g repro.TaskGroup
		results := make([]int, 8)
		for i := 0; i < 8; i++ {
			g.Go(ctx, func(*repro.Ctx) { results[i] = i * i })
		}
		g.Wait(ctx) // helps run the children instead of blocking
		fmt.Printf("2. fork/join squares: %v\n", results)
	}))

	// 3. A data-parallel team task: four workers execute the same task
	//    simultaneously, each with its own LocalID, synchronized by Barrier.
	const r = 4
	chunks := make([]string, r)
	s.Run(repro.Func(r, func(ctx *repro.Ctx) {
		lid := ctx.LocalID()
		chunks[lid] = fmt.Sprintf("member %d/%d on worker %d", lid, ctx.TeamSize(), ctx.WorkerID())
		ctx.Barrier() // all members have written their chunk
		if lid == 0 {
			fmt.Println("3. team task ran on a block of consecutive workers:")
			for _, c := range chunks {
				fmt.Println("   ", c)
			}
		}
	}))

	// 4. The headline application: mixed-mode parallel Quicksort.
	data := repro.GenerateInput(repro.Random, 2_000_000, 7)
	repro.SortMixedMode(s, data, repro.MMOptions{})
	fmt.Printf("4. mixed-mode quicksort sorted %d ints: sorted=%v\n",
		len(data), sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }))
}
