package repro

import (
	"context"
	"io"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Metrics is a registry of metric families rendering the Prometheus text
// exposition format (version 0.0.4) without external dependencies. Obtain
// one from Runtime.Metrics or Scheduler.Metrics, or build your own with
// NewMetrics and Scheduler.RegisterMetrics, then expose it with
// ServeMetrics or embed it in an existing HTTP mux (a *Metrics is an
// http.Handler).
type Metrics = stats.Registry

// MetricLabel is one name/value label of a metric series.
type MetricLabel = stats.Label

// NewMetrics returns an empty metrics registry for callers composing their
// own metric families beside the scheduler's.
func NewMetrics() *Metrics { return stats.NewRegistry() }

// MetricsServer is a minimal HTTP server exposing one Metrics registry at
// /metrics, plus an on-demand execution-trace capture at /debug/trace once
// SetTraceSource installs a scheduler. The registry may be installed (and
// swapped) after the server is already listening — cmd/throughput swaps in
// each measurement point's fresh Runtime — and scrapes racing a swap see
// either registry, never a torn one.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
	reg atomic.Pointer[stats.Registry]
	src atomic.Pointer[Scheduler]
}

// ServeMetrics listens on addr (e.g. ":9090", or "127.0.0.1:0" for an
// ephemeral port — read the chosen one back with Addr) and serves reg at
// /metrics. A nil reg is allowed: the endpoint answers 503 until
// SetRegistry installs one. Release the port with Close.
func ServeMetrics(addr string, reg *Metrics) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &MetricsServer{ln: ln}
	if reg != nil {
		m.reg.Store(reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handle)
	mux.HandleFunc("/debug/trace", m.handleTrace)
	m.srv = &http.Server{Handler: mux}
	go m.srv.Serve(ln)
	return m, nil
}

func (m *MetricsServer) handle(w http.ResponseWriter, req *http.Request) {
	reg := m.reg.Load()
	if reg == nil {
		http.Error(w, "metrics: no registry installed", http.StatusServiceUnavailable)
		return
	}
	reg.ServeHTTP(w, req)
}

// SetTraceSource installs (or replaces) the scheduler whose execution
// tracer /debug/trace captures. Safe to call concurrently with requests; a
// nil source makes the endpoint answer 503.
func (m *MetricsServer) SetTraceSource(s *Scheduler) { m.src.Store(s) }

// handleTrace serves GET /debug/trace?sec=0.25&format=chrome|text: it turns
// tracing on for a bounded window (sec clamped to [0.01, 10]; tracing that
// was already on stays on afterwards), then returns only the events recorded
// during the window — Chrome trace-event JSON by default, the compact text
// dump with format=text.
func (m *MetricsServer) handleTrace(w http.ResponseWriter, req *http.Request) {
	s := m.src.Load()
	if s == nil {
		http.Error(w, "trace: no scheduler installed (SetTraceSource)", http.StatusServiceUnavailable)
		return
	}
	sec := 0.25
	if v := req.URL.Query().Get("sec"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			http.Error(w, "trace: bad sec parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		sec = f
	}
	if sec < 0.01 {
		sec = 0.01
	}
	if sec > 10 {
		sec = 10
	}
	from := trace.Now()
	wasOn := s.TraceActive()
	s.StartTrace()
	time.Sleep(time.Duration(sec * float64(time.Second)))
	if !wasOn {
		s.StopTrace()
	}
	snap := s.TraceSnapshot().Since(from)
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, snap.Text())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	snap.WriteChrome(w)
}

// Addr returns the listening address (resolving ":0" to the chosen port).
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// URL returns the full scrape URL of the /metrics endpoint.
func (m *MetricsServer) URL() string { return "http://" + m.Addr() + "/metrics" }

// SetRegistry installs (or replaces) the served registry. Safe to call
// concurrently with scrapes.
func (m *MetricsServer) SetRegistry(reg *Metrics) { m.reg.Store(reg) }

// Close shuts the server down, gracefully draining in-flight scrapes for up
// to two seconds before closing their connections.
func (m *MetricsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := m.srv.Shutdown(ctx)
	if err != nil {
		m.srv.Close()
	}
	return err
}
