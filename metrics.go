package repro

import (
	"context"
	"net"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/stats"
)

// Metrics is a registry of metric families rendering the Prometheus text
// exposition format (version 0.0.4) without external dependencies. Obtain
// one from Runtime.Metrics or Scheduler.Metrics, or build your own with
// NewMetrics and Scheduler.RegisterMetrics, then expose it with
// ServeMetrics or embed it in an existing HTTP mux (a *Metrics is an
// http.Handler).
type Metrics = stats.Registry

// MetricLabel is one name/value label of a metric series.
type MetricLabel = stats.Label

// NewMetrics returns an empty metrics registry for callers composing their
// own metric families beside the scheduler's.
func NewMetrics() *Metrics { return stats.NewRegistry() }

// MetricsServer is a minimal HTTP server exposing one Metrics registry at
// /metrics. The registry may be installed (and swapped) after the server is
// already listening — cmd/throughput swaps in each measurement point's
// fresh Runtime — and scrapes racing a swap see either registry, never a
// torn one.
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
	reg atomic.Pointer[stats.Registry]
}

// ServeMetrics listens on addr (e.g. ":9090", or "127.0.0.1:0" for an
// ephemeral port — read the chosen one back with Addr) and serves reg at
// /metrics. A nil reg is allowed: the endpoint answers 503 until
// SetRegistry installs one. Release the port with Close.
func ServeMetrics(addr string, reg *Metrics) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m := &MetricsServer{ln: ln}
	if reg != nil {
		m.reg.Store(reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", m.handle)
	m.srv = &http.Server{Handler: mux}
	go m.srv.Serve(ln)
	return m, nil
}

func (m *MetricsServer) handle(w http.ResponseWriter, req *http.Request) {
	reg := m.reg.Load()
	if reg == nil {
		http.Error(w, "metrics: no registry installed", http.StatusServiceUnavailable)
		return
	}
	reg.ServeHTTP(w, req)
}

// Addr returns the listening address (resolving ":0" to the chosen port).
func (m *MetricsServer) Addr() string { return m.ln.Addr().String() }

// URL returns the full scrape URL of the /metrics endpoint.
func (m *MetricsServer) URL() string { return "http://" + m.Addr() + "/metrics" }

// SetRegistry installs (or replaces) the served registry. Safe to call
// concurrently with scrapes.
func (m *MetricsServer) SetRegistry(reg *Metrics) { m.reg.Store(reg) }

// Close shuts the server down, gracefully draining in-flight scrapes for up
// to two seconds before closing their connections.
func (m *MetricsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := m.srv.Shutdown(ctx)
	if err != nil {
		m.srv.Close()
	}
	return err
}
