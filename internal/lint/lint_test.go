package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches expectation comments in testdata sources:
//
//	// want "regexp"      — a diagnostic on this line
//	// want+N "regexp"    — a diagnostic N lines below (for lines that
//	//                      cannot hold a second comment, e.g. directive
//	//                      comments themselves)
//
// Backquotes may be used instead of double quotes.
var wantRe = regexp.MustCompile("//\\s*want(\\+(\\d+))?\\s+(?:\"([^\"]+)\"|`([^`]+)`)")

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, dir string) []*want {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatalf("opening %s: %v", path, err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				offset := 0
				if m[2] != "" {
					offset, _ = strconv.Atoi(m[2])
				}
				pat := m[3]
				if pat == "" {
					pat = m[4]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, line, pat, err)
				}
				wants = append(wants, &want{file: e.Name(), line: line + offset, re: re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatalf("scanning %s: %v", path, err)
		}
		f.Close()
	}
	return wants
}

// TestAnalyzersOnTestdata runs every analyzer over each testdata package and
// requires an exact correspondence between emitted diagnostics and the
// `// want` expectations in the sources: every want must be hit, and every
// diagnostic must be wanted.
func TestAnalyzersOnTestdata(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	for _, name := range []string{"atomicmix", "padcheck", "noalloc", "seqlock", "barrier", "directives"} {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			pkg, err := loader.LoadDir(dir, "testdata/"+name)
			if err != nil {
				t.Fatalf("LoadDir(%s): %v", dir, err)
			}
			ix := NewIndex()
			ix.AddPackage(pkg)
			var diags []Diagnostic
			diags = append(diags, ix.Errors()...)
			diags = append(diags, Run(Analyzers(), []*Package{pkg}, ix)...)

			wants := collectWants(t, dir)
			for _, d := range diags {
				base := filepath.Base(d.Pos.Filename)
				found := false
				for _, w := range wants {
					if w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
						w.matched = true
						found = true
					}
				}
				if !found {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("%s:%d: want %q: no matching diagnostic", filepath.Join(dir, w.file), w.line, w.re)
				}
			}
		})
	}
}

// TestManifestRoundTrip checks that a written manifest verifies cleanly and
// that both deleted and unpinned directives are reported as mismatches.
func TestManifestRoundTrip(t *testing.T) {
	recs := []Record{
		{PkgPath: "repro/internal/core", Decl: "(*worker).spawn", Kind: KindNoAlloc},
		{PkgPath: "repro/internal/core", Decl: "inflightShard", Kind: KindPadded},
		{PkgPath: "repro/internal/par", Decl: "Reducer[...].Reduce", Kind: KindBarrier},
		{PkgPath: "repro/internal/par", Decl: "Reducer[...].Reduce", Kind: KindBarrier},
	}
	path := filepath.Join(t.TempDir(), "reprolint.manifest")
	if err := os.WriteFile(path, []byte(ManifestString(recs)), 0o644); err != nil {
		t.Fatal(err)
	}

	mismatches, err := CheckManifest(path, recs)
	if err != nil {
		t.Fatalf("CheckManifest: %v", err)
	}
	if len(mismatches) != 0 {
		t.Fatalf("clean round trip reported mismatches: %v", mismatches)
	}

	// Deleting an annotation must be detected.
	mismatches, err = CheckManifest(path, recs[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) == 0 || !strings.Contains(mismatches[0], "missing //repro:noalloc") {
		t.Errorf("deleted annotation not detected: %v", mismatches)
	}

	// A count change (one of two identical directives removed) must be detected.
	mismatches, err = CheckManifest(path, recs[:3])
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range mismatches {
		if strings.Contains(m, "expects 2, found 1") {
			found = true
		}
	}
	if !found {
		t.Errorf("count mismatch not detected: %v", mismatches)
	}

	// A package-scoped check ignores manifest entries for packages outside
	// the scope (a reprolint run on one package must not report the rest of
	// the module's pins as deleted).
	mismatches, err = CheckManifestScoped(path, recs[:2], []string{"repro/internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 0 {
		t.Errorf("scoped check leaked out-of-scope entries: %v", mismatches)
	}
	mismatches, err = CheckManifestScoped(path, nil, []string{"repro/internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	if len(mismatches) != 2 {
		t.Errorf("scoped check missed in-scope deletions: %v", mismatches)
	}

	// A new, unpinned annotation must be flagged until the manifest is regenerated.
	extra := append([]Record{}, recs...)
	extra = append(extra, Record{PkgPath: "repro/internal/stats", Decl: "Observe", Kind: KindNoAlloc})
	mismatches, err = CheckManifest(path, extra)
	if err != nil {
		t.Fatal(err)
	}
	found = false
	for _, m := range mismatches {
		if strings.Contains(m, "unpinned //repro:noalloc") {
			found = true
		}
	}
	if !found {
		t.Errorf("unpinned annotation not detected: %v", mismatches)
	}
}
