package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Barrier enforces the team-collective contract of internal/par and
// internal/query: a function annotated //repro:barrier is entered by every
// member of a team, and every member must reach the trailing team barrier
// before returning — a member that returns early deadlocks the rest of the
// team (or silently reads unmerged state on reuse). Concretely, every
// return path must end at a barrier:
//
//   - a ctx.Barrier() call (any zero-argument method named Barrier), or a
//     call to another //repro:barrier-annotated collective (annotations
//     resolve across packages, so query collectives may delegate their
//     barrier to a par collective), either as the statement directly
//     before the return or inside the return expression / the directly
//     preceding assignment;
//   - or the return sits under a team-size-1 guard (an if whose condition
//     compares a value of ctx.TeamSize() against 1) — the documented
//     sequential-oracle path, where the member IS the whole team;
//   - or the return carries a //repro:allow justification.
//
// A function without results must additionally end in a barrier (or a
// return) so it cannot fall off the end barrier-less. The analyzer checks
// reachability of A barrier, not that no shared state is written after it;
// phase ordering inside the collective stays the author's contract.
var Barrier = &Analyzer{
	Name: "barrier",
	Doc:  "//repro:barrier collectives must reach the team barrier on every return path",
	Run:  runBarrier,
}

func runBarrier(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Index.DeclHas(fd.Name.Pos(), KindBarrier) {
				continue
			}
			checkBarrier(pass, fd)
		}
	}
}

type barrierChecker struct {
	pass *Pass
	fd   *ast.FuncDecl
	// teamSizeVars are the objects bound (directly or through a tuple
	// assignment) to a ctx.TeamSize() result.
	teamSizeVars map[types.Object]bool
}

func checkBarrier(pass *Pass, fd *ast.FuncDecl) {
	c := &barrierChecker{pass: pass, fd: fd, teamSizeVars: make(map[types.Object]bool)}
	c.collectTeamSizeVars()

	// Walk with an ancestor stack; judge every return statement.
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if _, ok := n.(*ast.FuncLit); ok {
			// Closures are not the collective's member path. Pop now: Inspect
			// sends no nil for a pruned subtree.
			stack = stack[:len(stack)-1]
			return false
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			c.checkReturn(ret, stack)
		}
		return true
	})

	// Fall-off-the-end path (only functions without results can take it).
	if c.fnResults() == 0 && !endsCovered(c, fd.Body.List) {
		pass.Reportf(fd.Body.Rbrace, "collective %s can fall off the end without reaching the team barrier (annotate //repro:barrier paths)", fd.Name.Name)
	}
}

func (c *barrierChecker) fnResults() int {
	if obj, ok := c.pass.Pkg.Info.Defs[c.fd.Name].(*types.Func); ok {
		return obj.Type().(*types.Signature).Results().Len()
	}
	return 0
}

// collectTeamSizeVars records identifiers assigned from ctx.TeamSize().
func (c *barrierChecker) collectTeamSizeVars() {
	info := c.pass.Pkg.Info
	ast.Inspect(c.fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isTeamSizeCall(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := info.Defs[id]; obj != nil {
					c.teamSizeVars[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					c.teamSizeVars[obj] = true
				}
			}
		}
		return true
	})
}

// isTeamSizeCall matches a call to a method named TeamSize.
func isTeamSizeCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "TeamSize"
}

// isBarrierCall matches ctx.Barrier() or a call to an annotated collective.
func (c *barrierChecker) isBarrierCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Barrier" && len(call.Args) == 0 {
			return true
		}
		if obj := c.calleeObj(fun.Sel); obj != nil && c.pass.Index.DeclHas(obj.Pos(), KindBarrier) {
			return true
		}
	case *ast.Ident:
		if obj := c.pass.Pkg.Info.Uses[fun]; obj != nil && c.pass.Index.DeclHas(obj.Pos(), KindBarrier) {
			return true
		}
	}
	return false
}

// calleeObj resolves the invoked function object of a selector call,
// preferring the selection (methods, including generic instantiations)
// over plain uses (package-qualified functions).
func (c *barrierChecker) calleeObj(sel *ast.Ident) types.Object {
	info := c.pass.Pkg.Info
	if obj := info.Uses[sel]; obj != nil {
		if fn, ok := obj.(*types.Func); ok {
			if orig := fn.Origin(); orig != nil {
				return orig
			}
		}
		return obj
	}
	return nil
}

// containsBarrier reports whether a barrier call occurs anywhere in n
// (closures excluded).
func (c *barrierChecker) containsBarrier(n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := m.(*ast.CallExpr); ok && c.isBarrierCall(call) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSize1Cond matches the sequential-oracle guard: a comparison of a
// TeamSize-derived value against 1 (w == 1, w <= 1, 1 == w, ctx.TeamSize() == 1).
func (c *barrierChecker) isSize1Cond(e ast.Expr) bool {
	bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.EQL, token.LEQ, token.GEQ:
	default:
		return false
	}
	isOne := func(e ast.Expr) bool {
		bl, ok := ast.Unparen(e).(*ast.BasicLit)
		return ok && bl.Value == "1"
	}
	isTeam := func(e ast.Expr) bool {
		e = ast.Unparen(e)
		if isTeamSizeCall(e) {
			return true
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := c.pass.Pkg.Info.Uses[id]
		return obj != nil && c.teamSizeVars[obj]
	}
	return (isOne(bin.X) && isTeam(bin.Y)) || (isOne(bin.Y) && isTeam(bin.X))
}

// checkReturn judges one return statement given its ancestor stack.
func (c *barrierChecker) checkReturn(ret *ast.ReturnStmt, stack []ast.Node) {
	// (a) barrier inside the return expression itself.
	for _, res := range ret.Results {
		if c.containsBarrier(res) {
			return
		}
	}
	// (b) the statement directly before the return in its enclosing block.
	if prev := prevSibling(stack, ret); prev != nil && c.containsBarrier(prev) {
		return
	}
	// (c) under a team-size-1 guard (if body, not else).
	for i := len(stack) - 2; i >= 0; i-- {
		ifs, ok := stack[i].(*ast.IfStmt)
		if !ok {
			continue
		}
		// The return must be in the body (the guarded branch), not the else.
		if containsNode(ifs.Body, ret) && c.isSize1Cond(ifs.Cond) {
			return
		}
	}
	// (d) explicit site waiver.
	if c.pass.Allowed(KindAllow, ret.Pos()) {
		return
	}
	c.pass.Reportf(ret.Pos(), "return in collective %s does not reach the team barrier (add the trailing Barrier, a team-size-1 guard, or //repro:allow)", c.fd.Name.Name)
}

// prevSibling returns the statement immediately preceding ret inside its
// innermost enclosing statement list, or nil if ret is first.
func prevSibling(stack []ast.Node, ret ast.Stmt) ast.Stmt {
	// Find the nearest ancestor holding a []ast.Stmt that directly contains
	// the chain element leading to ret.
	child := ast.Node(ret)
	for i := len(stack) - 2; i >= 0; i-- {
		var list []ast.Stmt
		switch b := stack[i].(type) {
		case *ast.BlockStmt:
			list = b.List
		case *ast.CaseClause:
			list = b.Body
		case *ast.CommClause:
			list = b.Body
		default:
			child = stack[i]
			continue
		}
		for j, s := range list {
			if s == child {
				if j > 0 {
					return list[j-1]
				}
				return nil
			}
		}
		child = stack[i]
	}
	return nil
}

// containsNode reports whether target occurs within root.
func containsNode(root, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// endsCovered reports whether the trailing path of a statement list ends
// at a barrier, a return, or a non-falling-through statement.
func endsCovered(c *barrierChecker, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	last := stmts[len(stmts)-1]
	switch s := last.(type) {
	case *ast.ReturnStmt:
		return true // judged by checkReturn
	case *ast.IfStmt:
		// Every branch must be covered; a missing else means fall-through.
		if s.Else == nil {
			return false
		}
		elseCovered := false
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			elseCovered = endsCovered(c, e.List)
		case *ast.IfStmt:
			elseCovered = endsCovered(c, []ast.Stmt{e})
		}
		return endsCovered(c, s.Body.List) && elseCovered
	case *ast.BlockStmt:
		return endsCovered(c, s.List)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if c.isBarrierCall(call) {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
		return false
	case *ast.ForStmt:
		return s.Cond == nil && s.Post == nil && s.Init == nil // for{}: never falls through
	default:
		return c.containsBarrier(last)
	}
}
