// Package lint implements reprolint, the project's suite of static
// analyzers. The analyzers mechanically enforce the concurrency and
// hot-path conventions the scheduler's correctness and paper-faithful
// performance rest on — conventions that used to live only in comments and
// reviewers' heads:
//
//   - atomicmix: a struct field accessed through sync/atomic anywhere in a
//     package must not also be read or written with plain loads/stores,
//     unless the plain site carries a //repro:ownerstore directive (the
//     documented owner-mirror / pre-publication-init conventions become
//     checkable instead of tribal).
//   - padcheck: types and shard-array fields annotated //repro:padded must
//     have a go/types.Sizes-computed size that is a multiple of the cache
//     line (64 bytes), so "one shard per line" cannot silently rot when a
//     field is added.
//   - noalloc: functions annotated //repro:noalloc reject AST-level
//     allocating constructs (closures, make/new, escaping composite
//     literals, interface conversions, append, string concatenation, map
//     writes), with a per-site //repro:allow escape hatch carrying a
//     justification.
//   - seqlock: writes to stamp fields annotated //repro:seqlock must form
//     odd-before/even-after brackets on every path — the discipline the
//     in-flight quiescence scan, the stats histogram snapshot and the trace
//     ring snapshot all prove their consistency from.
//   - barrier: team collectives annotated //repro:barrier must reach the
//     team barrier (ctx.Barrier() or a call to another annotated
//     collective) on every return path, except the documented team-size-1
//     sequential-oracle early returns.
//
// Everything is built on the standard library alone (go/parser, go/ast,
// go/types with the source importer); see README.md for the directive
// vocabulary and for what each analyzer deliberately does not prove.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// An Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Analyzers returns the full suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{AtomicMix, PadCheck, NoAlloc, Seqlock, Barrier}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// A Pass carries one analyzer run over one package: the type-checked
// package, the module-wide directive index, and the diagnostic sink.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Index    *Index

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Allowed reports whether a site-level directive of the given kind covers
// pos (same line, or a standalone directive comment directly above).
func (p *Pass) Allowed(kind string, pos token.Pos) bool {
	return p.Index.SiteAllowed(kind, p.Pkg.Fset.Position(pos))
}

// Run applies the analyzers to the packages under one shared directive
// index and returns the findings sorted by position. Packages must share
// the index's FileSet (load them through one Loader).
func Run(analyzers []*Analyzer, pkgs []*Package, ix *Index) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Index: ix, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
