package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix reports struct fields that are accessed through sync/atomic in
// one place and with plain loads/stores in another. Two access styles are
// recognized as atomic: fields whose type is (an array of) one of the
// sync/atomic value types, whose only safe uses are method calls and
// address-taking; and plain-typed fields whose address — or the address of
// one of their elements — is passed to a sync/atomic function
// (atomic.LoadInt64(&r.slots[i])). For the second style every other plain
// read or write of the same field must carry a //repro:ownerstore
// directive naming why the mixed access is safe (the owner-mirror and
// init-before-publish conventions of internal/core and internal/trace).
//
// The check is per package (the fields in question are unexported), and it
// does not attempt happens-before reasoning: the directive is the human
// assertion, the analyzer's job is to make sure it is present and
// deliberate.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "atomically accessed fields must not also be accessed plainly without //repro:ownerstore",
	Run:  runAtomicMix,
}

// isAtomicValueType reports whether t, after peeling arrays, is one of the
// sync/atomic value types (atomic.Int64, atomic.Pointer[T], ...).
func isAtomicValueType(t types.Type) bool {
	for {
		if arr, ok := t.Underlying().(*types.Array); ok {
			t = arr.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		if alias, ok := t.(*types.Alias); ok {
			return isAtomicValueType(types.Unalias(alias))
		}
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicPkgFunc reports whether call invokes a function of package
// sync/atomic (the function style: atomic.AddInt64 & friends).
func atomicPkgFunc(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}

// fieldOfSelector returns the struct field a selector expression reads, or
// nil if it is not a field selection.
func fieldOfSelector(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	f, _ := s.Obj().(*types.Var)
	return f
}

// innerFieldSel peels index expressions and parens off e and returns the
// underlying field selector, if any: &r.slots[i*pad] resolves to r.slots.
func innerFieldSel(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x
		default:
			return nil
		}
	}
}

func runAtomicMix(pass *Pass) {
	info := pass.Pkg.Info

	// Pass 1: find the fields accessed through sync/atomic functions, and
	// remember the exact selector nodes inside those calls (they are the
	// sanctioned accesses).
	fnAtomic := make(map[*types.Var]token.Pos) // field -> one atomic-access site
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !atomicPkgFunc(info, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel := innerFieldSel(un.X)
				if sel == nil {
					continue
				}
				if fld := fieldOfSelector(info, sel); fld != nil {
					if _, seen := fnAtomic[fld]; !seen {
						fnAtomic[fld] = call.Pos()
					}
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: classify every field selection.
	for _, f := range pass.Pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				// Composite-literal initialization is a plain store too:
				// &T{field: v} on an atomically accessed field needs the
				// init-before-publish justification.
				if key, ok := kv.Key.(*ast.Ident); ok {
					if fld, ok := info.Uses[key].(*types.Var); ok && fld.IsField() {
						if at, isFn := fnAtomic[fld]; isFn && !pass.Allowed(KindOwnerStore, key.Pos()) {
							pass.Reportf(key.Pos(),
								"field %s is accessed via sync/atomic (e.g. at %s); plain initialization needs a //repro:ownerstore justification",
								fld.Name(), pass.Pkg.Fset.Position(at))
						}
					}
				}
				return true
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fld := fieldOfSelector(info, sel)
			if fld == nil {
				return true
			}
			if _, isFn := fnAtomic[fld]; isFn && !sanctioned[sel] {
				if !pass.Allowed(KindOwnerStore, sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"field %s is accessed via sync/atomic (e.g. at %s); plain access needs a //repro:ownerstore justification",
						fld.Name(), pass.Pkg.Fset.Position(fnAtomic[fld]))
				}
				return true
			}
			if isAtomicValueType(fld.Type()) && !typedAtomicUseOK(stack) {
				if !pass.Allowed(KindOwnerStore, sel.Pos()) {
					pass.Reportf(sel.Pos(),
						"atomic-typed field %s used as a plain value (copy or direct store); use its methods, or justify with //repro:ownerstore",
						fld.Name())
				}
			}
			return true
		})
	}
}

// typedAtomicUseOK reports whether the field selector on top of the stack
// is used in one of the safe forms for an atomic-typed value: selecting a
// method on it (possibly through an element index for arrays of atomics)
// or taking its address.
func typedAtomicUseOK(stack []ast.Node) bool {
	cur := stack[len(stack)-1].(ast.Expr)
	for i := len(stack) - 2; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			cur = p
			continue
		case *ast.IndexExpr:
			if p.X == cur { // indexing into an array of atomics
				cur = p
				continue
			}
			return false
		case *ast.SelectorExpr:
			return p.X == cur // method (or field) selection on the atomic value
		case *ast.UnaryExpr:
			return p.Op == token.AND
		default:
			return false
		}
	}
	return false
}
