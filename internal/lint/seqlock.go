package lint

import (
	"go/ast"
	"go/token"
)

// Seqlock enforces the odd-before/even-after stamp discipline on fields
// annotated //repro:seqlock: the sharded in-flight counter, the stats
// histogram shards and the trace ring slots all bracket their updates
// between two stamp writes (odd while the protected fields are torn, even
// once they are stable), and their readers prove snapshot consistency from
// exactly that bracket. A writer that returns mid-bracket, writes the
// stamp an odd number of times on some path, or hides one stamp write
// inside a conditional silently breaks every reader's correctness
// argument without any test necessarily failing.
//
// Mechanically: within any function, statement-level writes to an
// annotated stamp field (x.stamp.Add(...) / x.stamp.Store(...)) must come
// in pairs inside one block — the first write of a pair opens the bracket,
// the second closes it — no return, break, continue, goto, or fallthrough
// may appear while a bracket is open (statements between the writes may
// contain loops; a loop-local break is fine because it stays inside the
// bracket), and a stamp write may not appear in a nested block or in
// non-statement position, where path-sensitivity would be lost. Reads
// (Load) are unconstrained — reader validation loops are the point of the
// idiom. The analyzer checks bracket shape, not that the odd write
// actually precedes the protected stores: which fields a stamp protects
// is not declared, so that remains the writer's contract.
var Seqlock = &Analyzer{
	Name: "seqlock",
	Doc:  "//repro:seqlock stamp fields must be written in odd/even bracket pairs on every path",
	Run:  runSeqlock,
}

func runSeqlock(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &seqlockChecker{pass: pass}
			c.block(fd.Body.List)
			if c.open {
				pass.Reportf(c.openPos, "seqlock stamp bracket opened here is never closed in %s", fd.Name.Name)
			}
		}
	}
}

type seqlockChecker struct {
	pass    *Pass
	open    bool
	openPos token.Pos
}

// stampWriteCall returns the call if n is a statement-level write
// (Add/Store/Swap/CompareAndSwap) to an annotated stamp field.
func (c *seqlockChecker) stampWriteCall(n ast.Node) *ast.CallExpr {
	es, ok := n.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	if c.isStampWriteExpr(call) {
		return call
	}
	return nil
}

// isStampWriteExpr reports whether call writes an annotated stamp field.
func (c *seqlockChecker) isStampWriteExpr(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Add", "Store", "Swap", "CompareAndSwap":
	default:
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fld := fieldOfSelector(c.pass.Pkg.Info, inner)
	return fld != nil && c.pass.Index.DeclHas(fld.Pos(), KindSeqlock)
}

// block checks one statement list. Brackets must open and close within a
// single block; while open, nested statements are scanned for escapes.
func (c *seqlockChecker) block(stmts []ast.Stmt) {
	for _, s := range stmts {
		if call := c.stampWriteCall(s); call != nil {
			if c.open {
				c.open = false
			} else {
				c.open = true
				c.openPos = call.Pos()
			}
			continue
		}
		if c.open {
			c.scanOpen(s)
			continue
		}
		c.nested(s)
	}
	if c.open {
		c.pass.Reportf(c.openPos, "seqlock stamp bracket is still open at the end of its block (odd number of stamp writes on this path)")
		c.open = false
	}
}

// scanOpen inspects a statement executed while a bracket is open: any
// return or function-exiting branch inside it escapes the bracket.
func (c *seqlockChecker) scanOpen(s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			c.pass.Reportf(x.Pos(), "return inside an open seqlock stamp bracket (opened at %s)", c.pass.Pkg.Fset.Position(c.openPos))
		case *ast.BranchStmt:
			if x.Tok == token.GOTO {
				c.pass.Reportf(x.Pos(), "goto inside an open seqlock stamp bracket (opened at %s)", c.pass.Pkg.Fset.Position(c.openPos))
			}
		case *ast.CallExpr:
			if c.isStampWriteExpr(x) {
				c.pass.Reportf(x.Pos(), "seqlock stamp write nested inside another statement while a bracket is open (path-dependent parity)")
			}
		}
		return true
	})
}

// nested recurses into compound statements so brackets inside branches and
// loops are checked within their own blocks, and catches stamp writes in
// positions where the bracket discipline cannot be verified.
func (c *seqlockChecker) nested(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		c.checkSubBlock(x.List)
	case *ast.IfStmt:
		c.checkSubBlock(x.Body.List)
		if x.Else != nil {
			c.nested(x.Else)
		}
	case *ast.ForStmt:
		c.checkSubBlock(x.Body.List)
	case *ast.RangeStmt:
		c.checkSubBlock(x.Body.List)
	case *ast.SwitchStmt:
		for _, cl := range x.Body.List {
			c.checkSubBlock(cl.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range x.Body.List {
			c.checkSubBlock(cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			c.checkSubBlock(cl.(*ast.CommClause).Body)
		}
	case *ast.LabeledStmt:
		c.nested(x.Stmt)
	default:
		// Leaf statement outside any bracket: a stamp write hiding in an
		// expression here (an if condition, an assignment's rhs) is
		// unauditable; statement-position writes were consumed by block.
		ast.Inspect(s, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && c.isStampWriteExpr(call) {
				c.pass.Reportf(call.Pos(), "seqlock stamp write in non-statement position (bracket discipline cannot be checked)")
			}
			return true
		})
	}
}

// checkSubBlock runs a fresh bracket check over a nested block: brackets
// may not span block boundaries, so the sub-block must balance on its own.
func (c *seqlockChecker) checkSubBlock(stmts []ast.Stmt) {
	sub := &seqlockChecker{pass: c.pass}
	sub.block(stmts)
}
