package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/core")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// Loader loads and type-checks the module's packages with the standard
// library alone: module-internal imports are resolved straight to
// directories under the module root (no go/build module probing, no child
// processes), and standard-library imports are type-checked from $GOROOT
// source by the go/importer source importer. All packages share one
// FileSet, so token positions — and therefore the directive index — are
// comparable across packages.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string
	Sizes      types.Sizes

	std  types.Importer
	pkgs map[string]*Package
	errs map[string]error
}

// NewLoader returns a loader for the module rooted at moduleDir (the
// directory containing go.mod).
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleDir:  abs,
		ModulePath: modPath,
		Sizes:      types.SizesFor("gc", runtime.GOARCH),
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		errs:       make(map[string]error),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("%s: no module line", gomod)
}

// inModule reports whether path names a package of the loaded module.
func (l *Loader) inModule(path string) bool {
	return path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/")
}

// dirFor maps a module import path to its directory.
func (l *Loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	return filepath.Join(l.ModuleDir, filepath.FromSlash(rel))
}

// Import implements types.Importer: module packages load recursively
// through the loader, everything else comes from GOROOT source.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.inModule(path) {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the module package with the given import
// path (memoized).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if err, ok := l.errs[path]; ok {
		return nil, err
	}
	pkg, err := l.load(l.dirFor(path), path)
	if err != nil {
		l.errs[path] = err
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadDir parses and type-checks the package in dir under the given
// (possibly synthetic) import path — the entry point the analyzer tests
// use for testdata packages.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	pkg, err := l.load(dir, path)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

func (l *Loader) load(dir, path string) (*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%s: no buildable Go files", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l, Sizes: l.Sizes}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Sizes: l.Sizes,
	}, nil
}

// goFilesIn lists the non-test Go files of dir that build on this
// platform (go/build tag and filename-suffix matching).
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		match, err := ctx.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if match {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names, nil
}

// ModulePackages walks the module tree and returns the import paths of
// every buildable package, sorted — the "./..." pattern. Directories named
// testdata, hidden directories, and _-prefixed directories are skipped.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != l.ModuleDir && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(p)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
