package lint

import (
	"go/ast"
	"go/types"
)

// PadCheck verifies the cache-line padding convention: a type annotated
// //repro:padded must have a go/types.Sizes-computed size that is a
// multiple of 64 bytes, so that adjacent elements of a per-worker shard
// array can never share a cache line. A struct field may carry the same
// annotation; for slice, array, and pointer fields the *element* type is
// checked (the field declares "this is a shard array"), for plain struct
// fields the field's own type.
//
// The analyzer proves sizes, not placement: Go does not guarantee that an
// allocation starts on a cache-line boundary, so a 64-byte-multiple stride
// guarantees at most one false-sharing neighbor pair per array, which is
// the documented convention (see internal/core/inflight.go). Generic types
// cannot be sized at their declaration and are rejected — annotate a
// concrete instantiation or the enclosing field instead.
var PadCheck = &Analyzer{
	Name: "padcheck",
	Doc:  "//repro:padded types and shard-array fields must be sized to 64-byte multiples",
	Run:  runPadCheck,
}

const cacheLine = 64

func runPadCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.TypeSpec:
				if pass.Index.DeclHas(d.Name.Pos(), KindPadded) {
					if obj := info.Defs[d.Name]; obj != nil {
						checkPadded(pass, d.Name, obj.Type(), false)
					}
				}
			case *ast.StructType:
				for _, fld := range d.Fields.List {
					for _, name := range fld.Names {
						if pass.Index.DeclHas(name.Pos(), KindPadded) {
							if obj := info.Defs[name]; obj != nil {
								checkPadded(pass, name, obj.Type(), true)
							}
						}
					}
				}
			}
			return true
		})
	}
}

// checkPadded verifies one annotated declaration. For fields, container
// types (slice/array/pointer) check their element type.
func checkPadded(pass *Pass, name *ast.Ident, t types.Type, isField bool) {
	if t == nil {
		return
	}
	target := t
	what := "type"
	if isField {
		what = "field type"
		switch u := t.Underlying().(type) {
		case *types.Slice:
			target, what = u.Elem(), "shard element type"
		case *types.Array:
			target, what = u.Elem(), "shard element type"
		case *types.Pointer:
			target, what = u.Elem(), "pointed-to type"
		}
	}
	if hasTypeParam(target, nil) {
		pass.Reportf(name.Pos(),
			"//repro:padded cannot verify generic type %s (no concrete size); annotate a concrete instantiation or field", types.TypeString(target, nil))
		return
	}
	size := pass.Pkg.Sizes.Sizeof(target)
	if size%cacheLine != 0 {
		pass.Reportf(name.Pos(),
			"%s %s annotated //repro:padded has size %d bytes, not a multiple of the %d-byte cache line (pad by %d)",
			what, name.Name, size, cacheLine, cacheLine-size%cacheLine)
	}
}

// hasTypeParam reports whether t contains a type parameter anywhere a size
// computation would need to look.
func hasTypeParam(t types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.TypeParam:
		return true
	case *types.Named:
		if u.TypeParams().Len() > 0 && u.TypeArgs().Len() == 0 {
			return true
		}
		for i := 0; i < u.TypeArgs().Len(); i++ {
			if hasTypeParam(u.TypeArgs().At(i), seen) {
				return true
			}
		}
		return hasTypeParam(u.Underlying(), seen)
	case *types.Alias:
		return hasTypeParam(types.Unalias(u), seen)
	case *types.Array:
		return hasTypeParam(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasTypeParam(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
