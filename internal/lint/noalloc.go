package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoAlloc rejects AST-level allocating constructs inside functions
// annotated //repro:noalloc: closure creation, make/new, append, taking
// the address of a composite literal, string concatenation, map writes,
// string↔byte/rune-slice conversions, and implicit or explicit
// interface conversions of non-pointer-shaped values. A site that is
// deliberately allocating (a cold refill path, a capacity-bounded append)
// carries //repro:allow with a one-line justification.
//
// The check is deliberately shallow: it looks at this function's syntax
// only and does not follow calls, prove escape behavior, or model the
// compiler's optimizations (a non-escaping make may well be stack
// allocated, and a call to a pretty-printer obviously is not). It is the
// fast first line; the compiler-backed scripts/escapecheck and the
// AllocsPerRun regression tests are the ground truth it feeds.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "//repro:noalloc functions must not contain AST-level allocating constructs",
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Index.DeclHas(fd.Name.Pos(), KindNoAlloc) {
				continue
			}
			checkNoAlloc(pass, fd)
		}
	}
}

func checkNoAlloc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	var sig *types.Signature
	if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
		sig = obj.Type().(*types.Signature)
	}

	flag := func(pos token.Pos, format string, args ...any) {
		if !pass.Allowed(KindAllow, pos) {
			pass.Reportf(pos, format, args...)
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			flag(x.Pos(), "closure creation allocates in //repro:noalloc function %s", fd.Name.Name)
			return false // one finding per closure; its body is the closure's problem
		case *ast.CallExpr:
			checkNoAllocCall(pass, fd, flag, x)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringExpr(info, x) && info.Types[x].Value == nil {
				flag(x.Pos(), "string concatenation allocates in //repro:noalloc function %s", fd.Name.Name)
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if idx, ok := lhs.(*ast.IndexExpr); ok && isMapExpr(info, idx.X) {
					flag(lhs.Pos(), "map write may allocate in //repro:noalloc function %s", fd.Name.Name)
				}
			}
			if x.Tok == token.ADD_ASSIGN && isStringExpr(info, x.Lhs[0]) {
				flag(x.Pos(), "string concatenation allocates in //repro:noalloc function %s", fd.Name.Name)
			}
			if x.Tok == token.ASSIGN {
				for i, lhs := range x.Lhs {
					if len(x.Rhs) != len(x.Lhs) {
						break // tuple assignment from a call: conversion handled at the call
					}
					checkIfaceConv(pass, fd, flag, typeOf(info, lhs), x.Rhs[i])
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					flag(x.Pos(), "address of composite literal escapes (allocates) in //repro:noalloc function %s", fd.Name.Name)
				}
			}
		case *ast.ReturnStmt:
			if sig != nil && sig.Results().Len() == len(x.Results) {
				for i, res := range x.Results {
					checkIfaceConv(pass, fd, flag, sig.Results().At(i).Type(), res)
				}
			}
		case *ast.GoStmt:
			flag(x.Pos(), "go statement allocates a goroutine in //repro:noalloc function %s", fd.Name.Name)
		}
		return true
	})
}

// checkNoAllocCall handles the call-shaped findings: allocating builtins,
// allocating conversions, and implicit interface conversions of arguments.
func checkNoAllocCall(pass *Pass, fd *ast.FuncDecl, flag func(token.Pos, string, ...any), call *ast.CallExpr) {
	info := pass.Pkg.Info

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				flag(call.Pos(), "%s allocates in //repro:noalloc function %s", b.Name(), fd.Name.Name)
			case "append":
				flag(call.Pos(), "append may allocate in //repro:noalloc function %s", fd.Name.Name)
			}
			return
		}
	}

	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return
		}
		dst, src := tv.Type, typeOf(info, call.Args[0])
		if src == nil {
			return
		}
		if isStringByteConv(dst, src) {
			flag(call.Pos(), "string/slice conversion allocates in //repro:noalloc function %s", fd.Name.Name)
			return
		}
		checkIfaceConv(pass, fd, flag, dst, call.Args[0])
		return
	}

	// Implicit interface conversions at the arguments of an ordinary call.
	sig, ok := typeOf(info, call.Fun).(*types.Signature)
	if !ok || call.Ellipsis != token.NoPos {
		return // f(xs...) passes a slice through unchanged
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		checkIfaceConv(pass, fd, flag, pt, arg)
	}
}

// checkIfaceConv flags dst being an interface type while expr has a
// concrete type whose conversion heap-allocates (anything that is not
// pointer-shaped: pointers, channels, maps, funcs and unsafe pointers fit
// an interface word directly).
func checkIfaceConv(pass *Pass, fd *ast.FuncDecl, flag func(token.Pos, string, ...any), dst types.Type, expr ast.Expr) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	src := typeOf(pass.Pkg.Info, expr)
	if src == nil || types.IsInterface(src) {
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	if isPointerShaped(src) {
		return
	}
	flag(expr.Pos(), "conversion of %s to interface %s allocates in //repro:noalloc function %s",
		types.TypeString(src, types.RelativeTo(pass.Pkg.Types)), types.TypeString(dst, types.RelativeTo(pass.Pkg.Types)), fd.Name.Name)
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isMapExpr(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isStringByteConv reports a conversion between string and []byte/[]rune,
// which copies (allocates) in either direction.
func isStringByteConv(dst, src types.Type) bool {
	return (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

// isPointerShaped reports whether values of t fit an interface's data word
// without boxing.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
