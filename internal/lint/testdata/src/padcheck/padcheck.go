// Package padcheck exercises the padcheck analyzer: //repro:padded types
// and shard-array fields must be sized to 64-byte multiples (sizes below
// assume a 64-bit target, which the repo requires anyway).
package padcheck

import "sync/atomic"

// goodShard is exactly one cache line.
//
//repro:padded
type goodShard struct {
	n atomic.Int64
	_ [56]byte
}

// badShard is 24 bytes: adjacent elements share lines.
//
//repro:padded
type badShard struct { // want `size 24 bytes, not a multiple`
	n atomic.Int64
	_ [16]byte
}

type plainElem struct {
	a, b, c int64
}

type owner struct {
	//repro:padded
	good []goodShard
	//repro:padded
	bad []plainElem // want `size 24 bytes, not a multiple`
	//repro:padded
	arr [4]goodShard
	//repro:padded
	ptr *goodShard
}

// genSlot cannot be sized without a concrete type argument.
//
//repro:padded
type genSlot[T any] struct { // want `cannot verify generic type`
	v T
	_ [64]byte
}

var (
	_ = owner{}
	_ = genSlot[int]{}
)
