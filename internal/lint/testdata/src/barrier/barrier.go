// Package barrier exercises the barrier analyzer: //repro:barrier
// collectives must reach the team barrier on every return path, modulo the
// team-size-1 sequential-oracle guard and //repro:allow waivers.
package barrier

type ctx struct{ w, lid int }

func (c *ctx) TeamSize() int { return c.w }
func (c *ctx) LocalID() int  { return c.lid }
func (c *ctx) Barrier()      {}

//repro:barrier
func good(c *ctx, data []int) int {
	w := c.TeamSize()
	if w == 1 {
		return len(data) // sequential oracle: the member is the whole team
	}
	total := len(data) * w
	c.Barrier()
	return total
}

//repro:barrier
func earlyReturn(c *ctx, data []int) int {
	if len(data) == 0 {
		return 0 // want `does not reach the team barrier`
	}
	c.Barrier()
	return len(data)
}

//repro:barrier
func delegated(c *ctx, data []int) int {
	return good(c, data) // the annotated callee carries the obligation
}

//repro:barrier
func assignedThenReturned(c *ctx, data []int) int {
	n := 0
	n = good(c, data)
	return n
}

//repro:barrier
func waived(c *ctx, n int) int {
	if n < 0 {
		return -1 //repro:allow error path: no team is ever formed on invalid input
	}
	c.Barrier()
	return n
}

//repro:barrier
func noResults(c *ctx, data []int) {
	if c.TeamSize() == 1 {
		return
	}
	for range data {
	}
	c.Barrier()
}

//repro:barrier
func fallsOff(c *ctx, data []int) {
	if c.TeamSize() == 1 {
		return
	}
	for range data {
	}
} // want `can fall off the end without reaching the team barrier`
