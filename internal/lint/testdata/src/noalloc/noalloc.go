// Package noalloc exercises the noalloc analyzer: AST-level allocating
// constructs inside //repro:noalloc functions fire unless the site carries
// //repro:allow.
package noalloc

type point struct{ x, y int }

var sink any

func sinkAny(v any) { sink = v }

//repro:noalloc
func builtins(n int) {
	s := make([]int, n) // want `make allocates`
	_ = s
	p := new(int) // want `new allocates`
	_ = p
	var xs []int
	xs = append(xs, n) // want `append may allocate`
	_ = xs
}

//repro:noalloc
func closure(n int) {
	f := func() int { return n } // want `closure creation allocates`
	_ = f()
}

//repro:noalloc
func spawned(ch chan int) {
	go drain(ch) // want `go statement allocates`
}

func drain(ch chan int) {
	for range ch {
	}
}

//repro:noalloc
func conversions(s string, bs []byte) {
	_ = []byte(s)  // want `string/slice conversion allocates`
	_ = string(bs) // want `string/slice conversion allocates`
}

//repro:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//repro:noalloc
func mapWrite(m map[int]int, v int) {
	m[v] = v // want `map write may allocate`
}

//repro:noalloc
func litAddr() *point {
	return &point{1, 2} // want `address of composite literal`
}

//repro:noalloc
func ifaceAssign(v int) {
	sink = v // want `conversion of int to interface any allocates`
}

//repro:noalloc
func ifaceReturn(v int) any {
	return v // want `conversion of int to interface any allocates`
}

//repro:noalloc
func ifaceArg(v int) {
	sinkAny(v) // want `conversion of int to interface any allocates`
}

//repro:noalloc
func pointerShaped(p *point, ch chan int) {
	sinkAny(p) // pointer-shaped: fits the interface word, no boxing
	sinkAny(ch)
	sink = nil
}

//repro:noalloc
func allowed(xs []int, n int) []int {
	return append(xs, n) //repro:allow capacity-bounded by the caller's contract
}

//repro:noalloc
func clean(xs []int) int {
	t := 0
	for _, v := range xs {
		t += v
	}
	return t
}
