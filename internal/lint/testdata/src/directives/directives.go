// Package directives exercises the directive loader itself: the vocabulary
// is closed (typos are load errors, so a misspelled directive can never
// silently disable a check) and declaration-level kinds must actually sit
// on a declaration.
package directives

// want+2 `unknown //repro: directive "noaloc"`
//
//repro:noaloc typo must not pass silently
func misspelled() {}

func stray() {
	// want+1 `//repro:noalloc is not attached to a function declaration`
	//repro:noalloc
	_ = 0
}

//repro:noalloc
func properlyAttached() {}
