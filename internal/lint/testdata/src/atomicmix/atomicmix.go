// Package atomicmix exercises the atomicmix analyzer: mixed plain/atomic
// access to the same field fires unless the plain site carries
// //repro:ownerstore.
package atomicmix

import "sync/atomic"

type counters struct {
	n     int64 // accessed via atomic.AddInt64: plain access needs ownerstore
	gauge atomic.Int64
	slots []int64
	plain int64 // never atomically accessed: plain access is fine
}

func atomicUse(c *counters) {
	atomic.AddInt64(&c.n, 1)
	atomic.StoreInt64(&c.slots[0], 2)
}

func plainRead(c *counters) int64 {
	return c.n // want `field n is accessed via sync/atomic`
}

func plainElemWrite(c *counters) {
	c.slots[1] = 3 // want `field slots is accessed via sync/atomic`
}

func ownerStore(c *counters) {
	c.n = 0 //repro:ownerstore owner-mirror store, justified for the test
}

func plainField(c *counters) int64 {
	return c.plain
}

func copyTyped(c *counters) atomic.Int64 {
	return c.gauge // want `atomic-typed field gauge used as a plain value`
}

func methodUse(c *counters) int64 {
	return c.gauge.Load()
}

func addrUse(c *counters) *atomic.Int64 {
	return &c.gauge
}

func initLiteral() *counters {
	return &counters{n: 1} // want `plain initialization needs a //repro:ownerstore`
}

func initAllowed() *counters {
	//repro:ownerstore init before publish: no reader exists yet
	return &counters{n: 2}
}
