// Package seqlock exercises the seqlock analyzer: writes to //repro:seqlock
// stamp fields must come in balanced odd/even bracket pairs within one
// block, with no escape while a bracket is open.
package seqlock

import "sync/atomic"

type shard struct {
	//repro:seqlock odd while an update is in flight
	stamp atomic.Uint64
	count atomic.Int64
}

func balanced(h *shard, d int64) {
	h.stamp.Add(1)
	h.count.Add(d)
	h.stamp.Add(1)
}

func balancedLoop(h *shard, d int64) {
	h.stamp.Add(1)
	for i := int64(0); i < d; i++ {
		h.count.Add(1) // loop-local work inside the bracket is fine
	}
	h.stamp.Add(1)
}

func readers(h *shard) uint64 {
	return h.stamp.Load() // reads are unconstrained
}

func earlyReturn(h *shard, d int64) {
	h.stamp.Add(1)
	if d == 0 {
		return // want `return inside an open seqlock stamp bracket`
	}
	h.count.Add(d)
	h.stamp.Add(1)
}

func unclosed(h *shard) {
	h.stamp.Add(1) // want `still open at the end of its block`
}

func branchBalanced(h *shard, d int64) {
	if d > 0 {
		h.stamp.Add(1)
		h.count.Add(d)
		h.stamp.Add(1)
	}
}

func nestedWhileOpen(h *shard, d int64) {
	h.stamp.Add(1)
	if d > 0 {
		h.stamp.Add(1) // want `nested inside another statement while a bracket is open`
	}
	h.stamp.Add(1)
}

func exprPosition(h *shard) {
	_ = h.stamp.Swap(1) // want `non-statement position`
}
