package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Directive kinds. The machine-readable annotation vocabulary is the small
// closed set below; anything else after "//repro:" is a load-time error so
// typos cannot silently disable a check.
const (
	KindOwnerStore = "ownerstore" // site: plain access to an atomically accessed field is the documented owner-mirror/init idiom
	KindPadded     = "padded"     // decl: type (or shard-array field) must be sized to a 64-byte multiple
	KindNoAlloc    = "noalloc"    // decl: function must contain no AST-level allocating construct
	KindAllow      = "allow"      // site: one allocating construct inside a noalloc function is deliberate
	KindSeqlock    = "seqlock"    // decl: field is a seqlock stamp; writes must bracket odd-before/even-after
	KindBarrier    = "barrier"    // decl: function is a team collective; every return path must reach the barrier
)

const directivePrefix = "//repro:"

var validKinds = map[string]bool{
	KindOwnerStore: true,
	KindPadded:     true,
	KindNoAlloc:    true,
	KindAllow:      true,
	KindSeqlock:    true,
	KindBarrier:    true,
}

// declKinds are the kinds that attach to a declaration (function, type,
// field); the rest attach to a source line (site).
var declKinds = map[string]bool{
	KindPadded:  true,
	KindNoAlloc: true,
	KindSeqlock: true,
	KindBarrier: true,
}

// A Directive is one parsed //repro: annotation.
type Directive struct {
	Kind string
	Arg  string // free-text justification / argument, may be empty
	Pos  token.Position

	cpos token.Pos // position of the directive comment itself
}

// A Record ties a directive to its package and enclosing top-level
// declaration, the churn-stable identity the manifest pins.
type Record struct {
	PkgPath string
	Decl    string // e.g. "(*worker).getCtx", "inflightShard", "inflightShard.stamp"
	Kind    string
}

// Index is the module-wide directive table: declaration-level directives
// keyed by the declared identifier's position, site-level directives keyed
// by file and line, plus the flat record list the manifest is built from.
type Index struct {
	decl map[token.Pos]map[string]*Directive
	site map[string]map[int][]*Directive
	all  []Record
	errs []Diagnostic
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{
		decl: make(map[token.Pos]map[string]*Directive),
		site: make(map[string]map[int][]*Directive),
	}
}

// Errors returns the malformed-directive findings collected while
// indexing (unknown kinds, decl directives placed on no declaration).
func (ix *Index) Errors() []Diagnostic { return ix.errs }

// DeclDirective returns the directive of the given kind attached to the
// declaration whose name identifier sits at pos, or nil.
func (ix *Index) DeclDirective(pos token.Pos, kind string) *Directive {
	return ix.decl[pos][kind]
}

// DeclHas reports whether the declaration at pos carries the given kind.
func (ix *Index) DeclHas(pos token.Pos, kind string) bool {
	return ix.DeclDirective(pos, kind) != nil
}

// SiteAllowed reports whether a site directive of the given kind covers the
// resolved position: on the same line, or as a standalone comment ending on
// the line directly above.
func (ix *Index) SiteAllowed(kind string, pos token.Position) bool {
	for _, d := range ix.site[pos.Filename][pos.Line] {
		if d.Kind == kind {
			return true
		}
	}
	return false
}

// Records returns the flat directive inventory, sorted.
func (ix *Index) Records() []Record {
	out := append([]Record(nil), ix.all...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Decl != b.Decl {
			return a.Decl < b.Decl
		}
		return a.Kind < b.Kind
	})
	return out
}

// parseDirectives extracts the //repro: directives of one comment group.
func parseDirectives(g *ast.CommentGroup) []*Directive {
	if g == nil {
		return nil
	}
	var out []*Directive
	for _, c := range g.List {
		text := c.Text
		if !strings.HasPrefix(text, directivePrefix) {
			continue
		}
		rest := strings.TrimPrefix(text, directivePrefix)
		kind, arg, _ := strings.Cut(rest, " ")
		out = append(out, &Directive{Kind: kind, Arg: strings.TrimSpace(arg), cpos: c.Pos()})
	}
	return out
}

// AddPackage indexes every directive of the package's files. Call once per
// loaded package before running analyzers; all packages of a run share one
// index so cross-package annotations (a query collective calling an
// annotated par collective) resolve.
func (ix *Index) AddPackage(pkg *Package) {
	for _, f := range pkg.Files {
		ix.addFile(pkg, f)
	}
}

func (ix *Index) addFile(pkg *Package, f *ast.File) {
	fset := pkg.Fset
	// Parse each comment group exactly once: doc comments are shared between
	// the declarations and f.Comments, and the declared set below tells the
	// site pass which directives a declaration already claimed.
	groups := make(map[*ast.CommentGroup][]*Directive)
	for _, g := range f.Comments {
		if ds := parseDirectives(g); len(ds) > 0 {
			groups[g] = ds
		}
	}
	declared := make(map[*Directive]bool)

	attach := func(namePos token.Pos, declName string, g *ast.CommentGroup, kinds map[string]bool) {
		for _, d := range groups[g] {
			if !kinds[d.Kind] {
				continue
			}
			d.Pos = fset.Position(namePos)
			m := ix.decl[namePos]
			if m == nil {
				m = make(map[string]*Directive)
				ix.decl[namePos] = m
			}
			m[d.Kind] = d
			declared[d] = true
			ix.all = append(ix.all, Record{PkgPath: pkg.Path, Decl: declName, Kind: d.Kind})
		}
	}

	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			attach(d.Name.Pos(), funcDeclName(d), d.Doc, map[string]bool{KindNoAlloc: true, KindBarrier: true})
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(d.Specs) == 1 {
					doc = d.Doc
				}
				attach(ts.Name.Pos(), ts.Name.Name, doc, map[string]bool{KindPadded: true})
				if st, ok := ts.Type.(*ast.StructType); ok {
					for _, fld := range st.Fields.List {
						for _, g := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
							for _, name := range fld.Names {
								attach(name.Pos(), ts.Name.Name+"."+name.Name, g,
									map[string]bool{KindSeqlock: true, KindPadded: true})
							}
						}
					}
				}
			}
		}
	}

	// Site-level directives: every directive comment covers its own line and
	// (for a standalone comment) the line directly below the comment group.
	fileName := fset.Position(f.Pos()).Filename
	lines := ix.site[fileName]
	if lines == nil {
		lines = make(map[int][]*Directive)
		ix.site[fileName] = lines
	}
	for _, g := range f.Comments {
		ds := groups[g]
		if len(ds) == 0 {
			continue
		}
		endLine := fset.Position(g.End()).Line
		for _, d := range ds {
			if declared[d] {
				continue
			}
			d.Pos = fset.Position(d.cpos)
			if !validKinds[d.Kind] {
				ix.errs = append(ix.errs, Diagnostic{
					Pos:      d.Pos,
					Analyzer: "directives",
					Message:  fmt.Sprintf("unknown //repro: directive %q (known: allow, barrier, noalloc, ownerstore, padded, seqlock)", d.Kind),
				})
				continue
			}
			if declKinds[d.Kind] {
				ix.errs = append(ix.errs, Diagnostic{
					Pos:      d.Pos,
					Analyzer: "directives",
					Message:  fmt.Sprintf("//repro:%s is not attached to a %s declaration", d.Kind, declTarget(d.Kind)),
				})
				continue
			}
			own := d.Pos.Line
			lines[own] = append(lines[own], d)
			lines[endLine+1] = append(lines[endLine+1], d)
			ix.all = append(ix.all, Record{PkgPath: pkg.Path, Decl: enclosingDecl(f, g.Pos()), Kind: d.Kind})
		}
	}
}

func declTarget(kind string) string {
	switch kind {
	case KindNoAlloc, KindBarrier:
		return "function"
	case KindPadded:
		return "type or struct-field"
	default:
		return "struct-field"
	}
}

// FuncDeclName renders a FuncDecl's manifest name, e.g. "(*worker).getCtx".
// Exported for tools (escapecheck) that key findings by declaration.
func FuncDeclName(d *ast.FuncDecl) string { return funcDeclName(d) }

// funcDeclName renders a FuncDecl's manifest name, e.g. "(*worker).getCtx".
func funcDeclName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	return "(" + typeExprString(d.Recv.List[0].Type) + ")." + d.Name.Name
}

// typeExprString renders a receiver type expression compactly.
func typeExprString(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return "*" + typeExprString(t.X)
	case *ast.IndexExpr:
		return typeExprString(t.X) + "[...]"
	case *ast.IndexListExpr:
		return typeExprString(t.X) + "[...]"
	default:
		return "?"
	}
}

// enclosingDecl names the top-level declaration containing pos, for the
// manifest identity of site-level directives.
func enclosingDecl(f *ast.File, pos token.Pos) string {
	for _, decl := range f.Decls {
		if decl.Pos() <= pos && pos <= decl.End() {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				return funcDeclName(d)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					if ts, ok := spec.(*ast.TypeSpec); ok && spec.Pos() <= pos && pos <= spec.End() {
						return ts.Name.Name
					}
				}
			}
		}
	}
	return "package"
}
