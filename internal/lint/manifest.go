package lint

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// The manifest pins the module's directive inventory: one line per
// (package, declaration, kind) with its occurrence count, sorted. The gate
// compares the live inventory against the committed manifest, so deleting
// (or silently gaining) any annotation fails the build even when the
// directive's removal would merely stop a check from running — the
// checkable surface itself is pinned. Identities are symbol-based, not
// line-based, so ordinary edits around an annotation do not churn it.

// ManifestString renders the directive inventory.
func ManifestString(recs []Record) string {
	counts := make(map[Record]int)
	for _, r := range recs {
		counts[r]++
	}
	keys := make([]Record, 0, len(counts))
	for r := range counts {
		keys = append(keys, r)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.PkgPath != b.PkgPath {
			return a.PkgPath < b.PkgPath
		}
		if a.Decl != b.Decl {
			return a.Decl < b.Decl
		}
		return a.Kind < b.Kind
	})
	var sb strings.Builder
	sb.WriteString("# reprolint directive manifest — regenerate with: go run ./cmd/reprolint -write-manifest ./...\n")
	sb.WriteString("# <package> <declaration> <directive> <count>\n")
	for _, r := range keys {
		fmt.Fprintf(&sb, "%s %s %s %d\n", r.PkgPath, r.Decl, r.Kind, counts[r])
	}
	return sb.String()
}

// CheckManifest compares the live inventory against the manifest file and
// returns one human-readable mismatch per differing entry.
func CheckManifest(path string, recs []Record) ([]string, error) {
	return CheckManifestScoped(path, recs, nil)
}

// CheckManifestScoped is CheckManifest restricted to the given package
// paths: manifest entries for packages outside the scope are ignored, so a
// package-scoped run (reprolint ./internal/core) does not report the rest
// of the module's pinned directives as deleted. A nil scope means the whole
// manifest, as on full-module runs.
func CheckManifestScoped(path string, recs []Record, scope []string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	want := make(map[Record]int)
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("%s:%d: malformed manifest line %q", path, ln+1, line)
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("%s:%d: bad count %q", path, ln+1, fields[3])
		}
		want[Record{PkgPath: fields[0], Decl: fields[1], Kind: fields[2]}] += n
	}
	if scope != nil {
		in := make(map[string]bool, len(scope))
		for _, p := range scope {
			in[p] = true
		}
		for r := range want {
			if !in[r.PkgPath] {
				delete(want, r)
			}
		}
	}
	got := make(map[Record]int)
	for _, r := range recs {
		got[r]++
	}
	var out []string
	for r, n := range want {
		switch g := got[r]; {
		case g == 0:
			out = append(out, fmt.Sprintf("missing //repro:%s on %s.%s (manifest expects %d; an invariant annotation was deleted)", r.Kind, r.PkgPath, r.Decl, n))
		case g != n:
			out = append(out, fmt.Sprintf("//repro:%s on %s.%s: manifest expects %d, found %d", r.Kind, r.PkgPath, r.Decl, n, g))
		}
	}
	for r := range got {
		if want[r] == 0 {
			out = append(out, fmt.Sprintf("unpinned //repro:%s on %s.%s (run: go run ./cmd/reprolint -write-manifest ./...)", r.Kind, r.PkgPath, r.Decl))
		}
	}
	sort.Strings(out)
	return out, nil
}
