package teamsync

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestBarrierSinglePhase(t *testing.T) {
	const n = 8
	b := NewBarrier(n)
	var before atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			before.Add(1)
			b.Wait()
			if got := before.Load(); got != n {
				t.Errorf("after barrier: before=%d, want %d", got, n)
			}
		}()
	}
	wg.Wait()
}

func TestBarrierManyPhases(t *testing.T) {
	const n = 4
	const phases = 200
	b := NewBarrier(n)
	var counter atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ph := 0; ph < phases; ph++ {
				counter.Add(1)
				b.Wait()
				// Counter must be an exact multiple of n at phase boundaries.
				if c := counter.Load(); c < int64((ph+1)*n) {
					t.Errorf("phase %d: counter=%d too small", ph, c)
					return
				}
				b.Wait()
			}
		}()
	}
	wg.Wait()
	if c := counter.Load(); c != phases*n {
		t.Fatalf("counter = %d, want %d", c, phases*n)
	}
}

func TestBarrierLastArriverFlag(t *testing.T) {
	const n = 6
	b := NewBarrier(n)
	var lastCount atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if b.Wait() {
				lastCount.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := lastCount.Load(); got != 1 {
		t.Fatalf("%d goroutines saw the last-arriver flag, want exactly 1", got)
	}
}

func TestBarrierN1(t *testing.T) {
	b := NewBarrier(1)
	for i := 0; i < 10; i++ {
		if !b.Wait() {
			t.Fatal("sole participant must always be the releaser")
		}
	}
}

func TestBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBarrier(0)
}

func TestCounter(t *testing.T) {
	c := NewCounter(5)
	var zero atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if c.Done() {
				zero.Add(1)
			}
		}()
	}
	c.WaitZero()
	wg.Wait()
	if zero.Load() != 1 {
		t.Fatalf("%d goroutines saw zero, want 1", zero.Load())
	}
}

func TestReduceInt64(t *testing.T) {
	const n = 8
	r := NewReduceInt64(n)
	b := NewBarrier(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Set(i, int64(i*i))
			b.Wait()
			want := int64(0)
			for j := 0; j < n; j++ {
				want += int64(j * j)
			}
			if got := r.Sum(n); got != want {
				t.Errorf("Sum = %d, want %d", got, want)
			}
		}(i)
	}
	wg.Wait()
}

func TestReduceGetSet(t *testing.T) {
	r := NewReduceInt64(4)
	for i := 0; i < 4; i++ {
		r.Set(i, int64(100+i))
	}
	for i := 0; i < 4; i++ {
		if r.Get(i) != int64(100+i) {
			t.Fatalf("Get(%d) = %d", i, r.Get(i))
		}
	}
}
