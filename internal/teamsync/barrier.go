// Package teamsync provides synchronization primitives for threads executing
// a data-parallel task as a team: a phase-counting spin barrier and simple
// all-reduce helpers.
//
// A team in the Wimmer–Träff scheduler is a set of r consecutively numbered
// workers that start a task together. Within the task they communicate
// through shared state of the task object; the primitives here cover the
// common patterns (barrier between phases of the data-parallel partitioning
// step, reductions of per-thread results).
package teamsync

import (
	"sync/atomic"

	"repro/internal/backoff"
)

// Barrier is a reusable spin barrier for a fixed number of participants.
// It uses a phase counter rather than a reversing sense flag so that any
// number of consecutive phases can be executed without reinitialization.
type Barrier struct {
	n     int32
	count atomic.Int32
	phase atomic.Uint32
}

// NewBarrier returns a barrier for n participants (n ≥ 1).
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("teamsync: barrier size must be ≥ 1")
	}
	b := &Barrier{n: int32(n)}
	b.count.Store(int32(n))
	return b
}

// N returns the number of participants.
func (b *Barrier) N() int { return int(b.n) }

// Wait blocks until all n participants have called Wait for the current
// phase. The last arriving participant releases the others and returns true
// (it may perform serial work before the *next* barrier); everyone else
// returns false.
func (b *Barrier) Wait() bool {
	p := b.phase.Load()
	if b.count.Add(-1) == 0 {
		b.count.Store(b.n)
		b.phase.Add(1) // release
		return true
	}
	var bo backoff.Backoff
	for b.phase.Load() == p {
		bo.Wait()
	}
	return false
}

// Counter is a simple atomic countdown used for fan-in ("all threads have
// deposited their blocks") without the full release semantics of a barrier.
type Counter struct {
	c atomic.Int32
}

// NewCounter returns a countdown initialized to n.
func NewCounter(n int) *Counter {
	c := &Counter{}
	c.c.Store(int32(n))
	return c
}

// Done decrements the counter and reports whether it reached zero.
func (c *Counter) Done() bool { return c.c.Add(-1) == 0 }

// WaitZero spins (with backoff) until the counter reaches zero.
func (c *Counter) WaitZero() {
	var bo backoff.Backoff
	for c.c.Load() > 0 {
		bo.Wait()
	}
}

// ReduceInt64 is a slot-per-thread int64 reduction: each participant stores
// its contribution, then after a barrier any participant can Sum.
type ReduceInt64 struct {
	slots []int64 // padded to avoid false sharing
}

const pad = 8 // int64 words per cache line (64 B)

// NewReduceInt64 returns a reduction with n participant slots.
func NewReduceInt64(n int) *ReduceInt64 {
	//repro:ownerstore init before publish: no participant holds the value until the constructor returns
	return &ReduceInt64{slots: make([]int64, n*pad)}
}

// Set stores the contribution of participant i.
func (r *ReduceInt64) Set(i int, v int64) {
	atomic.StoreInt64(&r.slots[i*pad], v)
}

// Get returns the contribution of participant i.
func (r *ReduceInt64) Get(i int) int64 {
	return atomic.LoadInt64(&r.slots[i*pad])
}

// Sum returns the sum over the first n slots. Callers must separate Set and
// Sum by a barrier.
func (r *ReduceInt64) Sum(n int) int64 {
	var s int64
	for i := 0; i < n; i++ {
		s += r.Get(i)
	}
	return s
}
