package teamsync

import (
	"sync"
	"testing"
)

// BenchmarkBarrier measures one full barrier phase across team sizes —
// the per-task synchronization cost inside teams.
func BenchmarkBarrier(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(string(rune('0'+n)), func(b *testing.B) {
			bar := NewBarrier(n)
			var wg sync.WaitGroup
			iters := b.N
			b.ResetTimer()
			for t := 0; t < n; t++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < iters; i++ {
						bar.Wait()
					}
				}()
			}
			wg.Wait()
		})
	}
}

func BenchmarkCounterFanIn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := NewCounter(8)
		for j := 0; j < 8; j++ {
			c.Done()
		}
		c.WaitZero()
	}
}

func BenchmarkReduceSum(b *testing.B) {
	r := NewReduceInt64(16)
	for i := 0; i < 16; i++ {
		r.Set(i, int64(i))
	}
	var s int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s += r.Sum(16)
	}
	_ = s
}
