package classic

import (
	"sync/atomic"
	"testing"
)

func newTest(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Shutdown)
	return s
}

func TestRunsAllTasks(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var ran atomic.Int64
	const n = 2000
	for i := 0; i < n; i++ {
		s.Spawn(Func(func(*Ctx) { ran.Add(1) }))
	}
	s.Wait()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d, want %d", got, n)
	}
}

func TestRecursiveSpawn(t *testing.T) {
	s := newTest(t, Options{P: 8})
	var ran atomic.Int64
	var rec func(d int) Task
	rec = func(d int) Task {
		return Func(func(ctx *Ctx) {
			ran.Add(1)
			if d > 0 {
				ctx.Spawn(rec(d - 1))
				ctx.Spawn(rec(d - 1))
			}
		})
	}
	s.Run(rec(12))
	if got, want := ran.Load(), int64(1<<13-1); got != want {
		t.Fatalf("ran %d, want %d", got, want)
	}
}

func TestWorkIsDistributed(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var rootSpawn func(ctx *Ctx)
	rootSpawn = func(ctx *Ctx) {
		for i := 0; i < 4000; i++ {
			ctx.Spawn(Func(func(*Ctx) {
				x := 0
				for j := 0; j < 2000; j++ {
					x += j
				}
				_ = x
			}))
		}
	}
	s.Run(Func(rootSpawn))
	st := s.Stats()
	if st.Steals == 0 {
		t.Fatal("no steals recorded: load balancing is dead")
	}
	if st.TasksRun != 4001 {
		t.Fatalf("TasksRun = %d", st.TasksRun)
	}
}

func TestStealOneOption(t *testing.T) {
	s := newTest(t, Options{P: 4, StealOne: true})
	var ran atomic.Int64
	s.Run(Func(func(ctx *Ctx) {
		for i := 0; i < 500; i++ {
			ctx.Spawn(Func(func(*Ctx) { ran.Add(1) }))
		}
	}))
	if got := ran.Load(); got != 500 {
		t.Fatalf("ran %d", got)
	}
	st := s.Stats()
	if st.Steals != st.TasksStolen {
		t.Fatalf("StealOne: steals=%d stolen=%d, must match", st.Steals, st.TasksStolen)
	}
}

func TestMaxStealCap(t *testing.T) {
	s := newTest(t, Options{P: 2, MaxSteal: 3})
	var ran atomic.Int64
	s.Run(Func(func(ctx *Ctx) {
		for i := 0; i < 1000; i++ {
			ctx.Spawn(Func(func(*Ctx) { ran.Add(1) }))
		}
	}))
	if ran.Load() != 1000 {
		t.Fatalf("ran %d", ran.Load())
	}
}

func TestP1(t *testing.T) {
	s := newTest(t, Options{P: 1})
	var ran atomic.Int64
	s.Run(Func(func(ctx *Ctx) {
		ctx.Spawn(Func(func(*Ctx) { ran.Add(1) }))
	}))
	if ran.Load() != 1 {
		t.Fatal("single-worker scheduler broken")
	}
}

func TestReuse(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var ran atomic.Int64
	for i := 0; i < 10; i++ {
		s.Run(Func(func(*Ctx) { ran.Add(1) }))
	}
	if ran.Load() != 10 {
		t.Fatalf("ran %d", ran.Load())
	}
}
