// Package classic implements the standard randomized work-stealing scheduler
// of §2 of the paper (Algorithms 1–4): per-worker lock-free deques, random
// victim selection, and bulk stealing of half the victim's queue via
// popappend. It only supports single-threaded tasks and is the baseline
// behind the paper's "Randfork" column.
//
// The paper reports that "random work-stealing is much more sensible to
// tuning-parameters, and requires some more tricks to work well"; this
// implementation deliberately follows the plain textbook algorithm (random
// victim, steal-half, exponential backoff after a failed attempt) without
// extra tricks, matching what the paper measured.
package classic

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/deque"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Task is a single-threaded unit of work.
type Task interface {
	Run(ctx *Ctx)
}

type funcTask func(*Ctx)

func (f funcTask) Run(ctx *Ctx) { f(ctx) }

// Func adapts a function to the Task interface.
func Func(fn func(*Ctx)) Task { return funcTask(fn) }

// Ctx is the execution context of a running task.
type Ctx struct {
	w *worker
}

// Spawn pushes t onto the executing worker's deque.
func (c *Ctx) Spawn(t Task) { c.w.spawn(t) }

// WorkerID returns the executing worker's id.
func (c *Ctx) WorkerID() int { return c.w.id }

// Options configures the scheduler.
type Options struct {
	// P is the number of workers. Default: runtime.NumCPU().
	P int
	// MaxSteal caps the number of tasks transferred per steal (the MAX_STEAL
	// constant of Algorithm 3). 0 means "half the victim's queue" with no cap.
	MaxSteal int
	// StealOne forces single-task steals (ablation).
	StealOne bool
	// PinOSThreads locks workers to OS threads.
	PinOSThreads bool
	// Seed seeds victim selection.
	Seed uint64
}

type node struct{ task Task }

type worker struct {
	id    int
	sched *Scheduler
	q     *deque.Deque[node]
	st    stats.Worker
	bo    backoff.Backoff
	rng   uint64
}

// Scheduler is a classical randomized work-stealing scheduler.
type Scheduler struct {
	opts     Options
	workers  []*worker
	inflight atomic.Int64
	done     atomic.Bool
	wg       sync.WaitGroup

	injectMu sync.Mutex
	inject   []*node
}

// New starts the scheduler's workers.
func New(opts Options) *Scheduler {
	if opts.P <= 0 {
		opts.P = runtime.NumCPU()
	}
	topo.EnsureGOMAXPROCS(opts.P)
	s := &Scheduler{opts: opts}
	s.workers = make([]*worker, opts.P)
	for i := range s.workers {
		s.workers[i] = &worker{
			id:    i,
			sched: s,
			q:     deque.New[node](),
			rng:   opts.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15,
		}
	}
	s.wg.Add(opts.P)
	for _, w := range s.workers {
		go w.loop()
	}
	return s
}

// P returns the number of workers.
func (s *Scheduler) P() int { return len(s.workers) }

// Spawn submits a task from outside the scheduler.
func (s *Scheduler) Spawn(t Task) {
	s.inflight.Add(1)
	s.injectMu.Lock()
	s.inject = append(s.inject, &node{task: t})
	s.injectMu.Unlock()
}

// Wait blocks until all tasks have completed.
func (s *Scheduler) Wait() {
	var bo backoff.Backoff
	for s.inflight.Load() > 0 {
		bo.Wait()
	}
}

// Run submits t and waits for quiescence.
func (s *Scheduler) Run(t Task) {
	s.Spawn(t)
	s.Wait()
}

// Shutdown stops all workers (idempotent; abandons outstanding work).
func (s *Scheduler) Shutdown() {
	s.done.Store(true)
	s.wg.Wait()
}

// Stats aggregates all worker counters.
func (s *Scheduler) Stats() stats.Snapshot {
	var total stats.Snapshot
	for _, w := range s.workers {
		total.Add(w.st.Snapshot())
	}
	return total
}

func (s *Scheduler) takeInjected(w *worker) bool {
	s.injectMu.Lock()
	if len(s.inject) == 0 {
		s.injectMu.Unlock()
		return false
	}
	n := s.inject[0]
	s.inject = s.inject[1:]
	s.injectMu.Unlock()
	w.q.PushBottom(n)
	return true
}

func (w *worker) spawn(t Task) {
	w.sched.inflight.Add(1)
	w.q.PushBottom(&node{task: t})
	w.st.Spawns.Add(1)
}

func (w *worker) rand() uint64 {
	w.rng += 0x9e3779b97f4a7c15
	z := w.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (w *worker) run(n *node) {
	ctx := Ctx{w: w}
	w.st.TasksRun.Add(1)
	n.task.Run(&ctx)
	w.sched.taskDone()
	w.bo.Reset()
}

func (s *Scheduler) taskDone() { s.inflight.Add(-1) }

// loop is Algorithm 1/2: run local tasks; when the local queue empties,
// steal from a random victim; back off after failed attempts.
func (w *worker) loop() {
	defer w.sched.wg.Done()
	if w.sched.opts.PinOSThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	s := w.sched
	for !s.done.Load() {
		if n := w.q.PopBottom(); n != nil {
			w.run(n)
			continue
		}
		if s.takeInjected(w) {
			continue
		}
		if w.stealTasks() {
			continue
		}
		w.st.FailedAttempts.Add(1)
		w.st.Backoffs.Add(1)
		w.bo.Wait()
	}
}

// stealTasks is Algorithm 3: choose a random victim and transfer
// min(size/2, MAX_STEAL) tasks; the last stolen task is executed directly.
func (w *worker) stealTasks() bool {
	s := w.sched
	p := len(s.workers)
	if p == 1 {
		return false
	}
	w.st.StealAttempts.Add(1)
	v := int(w.rand() % uint64(p-1))
	if v >= w.id {
		v++
	}
	victim := s.workers[v]
	sz := victim.q.Size()
	if sz == 0 {
		return false
	}
	cnt := sz / 2
	if cnt < 1 {
		cnt = 1
	}
	if m := s.opts.MaxSteal; m > 0 && cnt > m {
		cnt = m
	}
	if s.opts.StealOne {
		cnt = 1
	}
	last, n := deque.Steal(victim.q, w.q, cnt)
	if n == 0 {
		return false
	}
	w.st.Steals.Add(1)
	w.st.TasksStolen.Add(int64(n))
	w.run(last)
	return true
}
