package msort

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/qsort"
)

func newSched(t *testing.T, p int) *core.Scheduler {
	t.Helper()
	s := core.New(core.Options{P: p})
	t.Cleanup(s.Shutdown)
	return s
}

func checkSorted(t *testing.T, name string, got, orig []int32) {
	t.Helper()
	if !qsort.IsSorted(got) {
		t.Fatalf("%s: output not sorted", name)
	}
	want := append([]int32(nil), orig...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %d, want %d", name, i, got[i], want[i])
		}
	}
}

func TestCoRankContract(t *testing.T) {
	f := func(ai, bi []int32, kk uint16) bool {
		a := append([]int32(nil), ai...)
		b := append([]int32(nil), bi...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		k := int(kk) % (len(a) + len(b) + 1)
		i, j := coRank(a, b, k)
		if i+j != k || i < 0 || i > len(a) || j < 0 || j > len(b) {
			return false
		}
		// Split validity: max(prefix) ≤ min(suffix).
		if i > 0 && j < len(b) && a[i-1] > b[j] {
			return false
		}
		if j > 0 && i < len(a) && b[j-1] > a[i] {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCoRankEdges(t *testing.T) {
	a := []int32{1, 3, 5}
	b := []int32{2, 4, 6}
	if i, j := coRank(a, b, 0); i != 0 || j != 0 {
		t.Fatalf("k=0: (%d,%d)", i, j)
	}
	if i, j := coRank(a, b, 6); i != 3 || j != 3 {
		t.Fatalf("k=6: (%d,%d)", i, j)
	}
	// One side empty.
	if i, j := coRank(nil, b, 2); i != 0 || j != 2 {
		t.Fatalf("empty a: (%d,%d)", i, j)
	}
	if i, j := coRank(a, nil, 2); i != 2 || j != 0 {
		t.Fatalf("empty b: (%d,%d)", i, j)
	}
}

func TestMergeRangeFull(t *testing.T) {
	f := func(ai, bi []int32) bool {
		a := append([]int32(nil), ai...)
		b := append([]int32(nil), bi...)
		sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
		sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
		out := make([]int32, len(a)+len(b))
		mergeRange(a, b, out, 0, len(out))
		return qsort.IsSorted(out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRangeChunked(t *testing.T) {
	// Merging in independent chunks must equal the full merge.
	a := dist.Generate(dist.Random, 5000, 1)
	b := dist.Generate(dist.Random, 3000, 2)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	full := make([]int32, len(a)+len(b))
	mergeRange(a, b, full, 0, len(full))
	chunked := make([]int32, len(full))
	for _, chunks := range []int{2, 3, 7, 16} {
		for i := range chunked {
			chunked[i] = -1
		}
		n := len(chunked)
		for c := 0; c < chunks; c++ {
			mergeRange(a, b, chunked, c*n/chunks, (c+1)*n/chunks)
		}
		for i := range full {
			if chunked[i] != full[i] {
				t.Fatalf("chunks=%d: element %d = %d, want %d", chunks, i, chunked[i], full[i])
			}
		}
	}
}

func TestSortBasic(t *testing.T) {
	s := newSched(t, 8)
	opt := Options{Cutoff: 64, MinPerThread: 1024}
	for _, n := range []int{0, 1, 2, 3, 100, 1000, 12345, 1 << 17} {
		in := dist.Generate(dist.Random, n, uint64(n)+1)
		data := append([]int32(nil), in...)
		Sort(s, data, opt)
		checkSorted(t, "msort", data, in)
	}
}

func TestSortAllDistributions(t *testing.T) {
	s := newSched(t, 8)
	opt := Options{Cutoff: 512, MinPerThread: 4096}
	for _, k := range dist.Kinds {
		in := dist.Generate(k, 400_000, 5)
		data := append([]int32(nil), in...)
		Sort(s, data, opt)
		checkSorted(t, k.String(), data, in)
	}
	if s.Stats().TeamTasksRun == 0 {
		t.Fatal("no team merges happened at this size")
	}
}

func TestSortAdversarialInputs(t *testing.T) {
	s := newSched(t, 4)
	opt := Options{Cutoff: 32, MinPerThread: 256}
	inputs := map[string][]int32{
		"allEqual": make([]int32, 5000),
		"sorted":   make([]int32, 5000),
		"reverse":  make([]int32, 5000),
	}
	for i := 0; i < 5000; i++ {
		inputs["sorted"][i] = int32(i)
		inputs["reverse"][i] = int32(5000 - i)
	}
	for name, in := range inputs {
		data := append([]int32(nil), in...)
		Sort(s, data, opt)
		checkSorted(t, name, data, in)
	}
}

func TestSortFullWidthTeams(t *testing.T) {
	// MinPerThread tiny → top merges use teams of MaxTeam = p. This is the
	// configuration that would deadlock with a blocking join (see package
	// doc); it must complete.
	s := newSched(t, 8)
	opt := Options{Cutoff: 128, MinPerThread: 1}
	in := dist.Generate(dist.Gauss, 200_000, 9)
	data := append([]int32(nil), in...)
	Sort(s, data, opt)
	checkSorted(t, "full-width", data, in)
}

func TestSortNonPow2P(t *testing.T) {
	s := newSched(t, 6)
	opt := Options{Cutoff: 256, MinPerThread: 1024}
	in := dist.Generate(dist.Staggered, 300_000, 11)
	data := append([]int32(nil), in...)
	Sort(s, data, opt)
	checkSorted(t, "p6", data, in)
}

func TestSortP1(t *testing.T) {
	s := newSched(t, 1)
	in := dist.Generate(dist.Random, 50_000, 13)
	data := append([]int32(nil), in...)
	Sort(s, data, Options{})
	checkSorted(t, "p1", data, in)
}

func TestSortDefaults(t *testing.T) {
	s := newSched(t, 8)
	in := dist.Generate(dist.Random, 2_000_000, 17)
	data := append([]int32(nil), in...)
	Sort(s, data, Options{})
	checkSorted(t, "defaults", data, in)
}

func TestBestNp(t *testing.T) {
	if got := bestNp(1<<20, 1<<16, 8); got != 8 {
		t.Fatalf("bestNp(1M) = %d, want 8", got)
	}
	if got := bestNp(1<<17, 1<<16, 8); got != 2 {
		t.Fatalf("bestNp(128k) = %d, want 2 (exactly MinPerThread each)", got)
	}
	if got := bestNp(1<<17-1, 1<<16, 8); got != 1 {
		t.Fatalf("bestNp(128k-1) = %d, want 1", got)
	}
	if got := bestNp(1<<18, 1<<16, 8); got != 4 {
		t.Fatalf("bestNp(256k) = %d, want 4", got)
	}
}
