// Package msort implements a mixed-mode parallel merge sort on the
// team-building scheduler — one of the "further mixed-mode parallel
// applications" the paper's conclusion calls for, built on the same
// primitives as the mixed-mode Quicksort: tasks whose thread requirement
// shrinks with the subproblem and whose interiors are data-parallel.
//
// Structure: the array is recursively split into single-threaded sort tasks;
// when both children of a node have finished, the last one spawns the node's
// merge as a new task. Large merges are team tasks of np workers that
// partition the output range by co-ranking (Merge Path binary search on the
// two sorted inputs), so every member produces an independent output chunk.
// The whole computation is continuation-style — no worker ever blocks — so
// even full-width teams (np = p) can always form.
package msort

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/qsort"
)

// Options are the tunables of the mixed-mode merge sort.
type Options struct {
	// Cutoff is the subsequence length below which the sequential sort takes
	// over. Default 2048.
	Cutoff int
	// MinPerThread is the minimum number of output elements per team member
	// of a parallel merge. Default 1 << 16.
	MinPerThread int
}

func (o Options) withDefaults() Options {
	if o.Cutoff < 2 {
		o.Cutoff = 2048
	}
	if o.MinPerThread < 1 {
		o.MinPerThread = 1 << 16
	}
	return o
}

// Sort sorts data with the mixed-mode parallel merge sort. It blocks until
// the sort completes: the sort runs as its own one-shot task group, so
// concurrent sorts on the same scheduler do not wait on each other. The
// algorithm is not in-place: it allocates one scratch buffer of len(data).
func Sort[T qsort.Ordered](s *core.Scheduler, data []T, opt Options) {
	g := s.NewGroup()
	SortGroup(g, data, opt)
	g.Wait()
	// g.Wait observes the group's quiescence: the last merge has completed.
}

// SortGroup spawns the mixed-mode merge sort of data into the
// caller-supplied group g and returns immediately; data is sorted once
// g.Wait() observes the group's quiescence. The whole continuation tree —
// child sorts and the merges they trigger through childDone — inherits g,
// so the group drains exactly when the root merge has been written.
func SortGroup[T qsort.Ordered](g *core.Group, data []T, opt Options) {
	if t := Root(data, opt); t != nil {
		g.Spawn(t)
	}
}

// Root returns the root task of the mixed-mode merge sort over data, for
// batched submission (Group.SpawnBatch / the runtime's batched sorts). It
// returns nil when there is nothing to sort.
func Root[T qsort.Ordered](data []T, opt Options) core.Task {
	opt = opt.withDefaults()
	if len(data) < 2 {
		return nil
	}
	tmp := make([]T, len(data))
	st := &msState[T]{opt: opt}
	return st.sortTask(data, tmp, false, nil)
}

// msState is the shared state of one merge sort tree: the options plus the
// recycling pools for the sort tasks, the sequential merge tasks, and the
// merge join nodes, so the whole continuation tree (Θ(n/cutoff) spawns)
// allocates only at the root. Tasks return themselves to their pool as they
// start running (fields copied out first; the scheduler never touches a
// task value after invoking Run), and a mergeNode is recycled by whichever
// child finishes last, after it has extracted the merge description.
type msState[T qsort.Ordered] struct {
	opt       Options
	sortPool  sync.Pool // *msSortTask[T]
	mergePool sync.Pool // *msSeqMerge[T]
	nodePool  sync.Pool // *mergeNode[T]
}

// bestNp mirrors the Quicksort's getBestNp for merge steps.
func bestNp(n, perThread, maxTeam int) int {
	np := 1
	for np*2 <= maxTeam && n >= 2*np*perThread {
		np *= 2
	}
	return np
}

// mergeNode is the join point of two child sorts. Whichever child finishes
// last spawns the merge (and recycles the node).
type mergeNode[T qsort.Ordered] struct {
	a, b, out []T
	parent    *mergeNode[T]
	pending   atomic.Int32
	st        *msState[T]
}

func (st *msState[T]) newMergeNode(parent *mergeNode[T]) *mergeNode[T] {
	m, _ := st.nodePool.Get().(*mergeNode[T])
	if m == nil {
		m = &mergeNode[T]{st: st}
	}
	m.parent = parent
	m.pending.Store(2)
	return m
}

// childDone is called by each completed child (and by the node's own merge
// task toward its parent). The last caller extracts the merge description,
// recycles the node, and spawns the merge.
func (m *mergeNode[T]) childDone(ctx *core.Ctx) {
	if m.pending.Add(-1) != 0 {
		return
	}
	st, parent := m.st, m.parent
	a, b, out := m.a, m.b, m.out
	m.a, m.b, m.out, m.parent = nil, nil, nil, nil
	st.nodePool.Put(m)
	np := bestNp(len(out), st.opt.MinPerThread, ctx.Scheduler().MaxTeam())
	if np <= 1 {
		ctx.Spawn(st.seqMerge(a, b, out, parent))
		return
	}
	// Team merges are one per large node — a vanishing fraction of the
	// spawns — so their tasks are plain allocations, not pooled.
	ctx.Spawn(&msTeamMerge[T]{np: np, a: a, b: b, out: out, parent: parent})
}

// msSeqMerge is a pooled sequential merge task.
type msSeqMerge[T qsort.Ordered] struct {
	st        *msState[T]
	a, b, out []T
	parent    *mergeNode[T]
}

func (st *msState[T]) seqMerge(a, b, out []T, parent *mergeNode[T]) *msSeqMerge[T] {
	t, _ := st.mergePool.Get().(*msSeqMerge[T])
	if t == nil {
		t = &msSeqMerge[T]{st: st}
	}
	t.a, t.b, t.out, t.parent = a, b, out, parent
	return t
}

func (t *msSeqMerge[T]) Threads() int { return 1 }

func (t *msSeqMerge[T]) Run(c *core.Ctx) {
	st, a, b, out, parent := t.st, t.a, t.b, t.out, t.parent
	t.a, t.b, t.out, t.parent = nil, nil, nil, nil
	st.mergePool.Put(t)
	if !c.Canceled() {
		mergeRange(a, b, out, 0, len(out))
	}
	if parent != nil {
		parent.childDone(c)
	}
}

// msTeamMerge is a team merge task of np workers: the output range is
// partitioned by co-ranking, every member writes an independent chunk.
type msTeamMerge[T qsort.Ordered] struct {
	np        int
	a, b, out []T
	parent    *mergeNode[T]
}

func (t *msTeamMerge[T]) Threads() int { return t.np }

func (t *msTeamMerge[T]) Run(c *core.Ctx) {
	w, lid := c.TeamSize(), c.LocalID()
	n := len(t.out)
	lo, hi := lid*n/w, (lid+1)*n/w
	// On cancellation each member skips its merge chunk but still reaches
	// the barrier — members may disagree on the racy check, which only
	// affects how much of the abandoned output gets written, never the
	// barrier count.
	if !c.Canceled() {
		mergeRange(t.a, t.b, t.out, lo, hi)
	}
	c.Barrier() // the merge is complete once all chunks are written
	if lid == 0 && t.parent != nil {
		t.parent.childDone(c)
	}
}

// msSortTask is the pooled recursive sort task for src. The sorted result
// lands in src if !toTmp, else in tmp (the buffers alternate down the
// recursion so every merge reads one buffer and writes the other).
type msSortTask[T qsort.Ordered] struct {
	st       *msState[T]
	src, tmp []T
	toTmp    bool
	parent   *mergeNode[T]
}

func (st *msState[T]) sortTask(src, tmp []T, toTmp bool, parent *mergeNode[T]) *msSortTask[T] {
	t, _ := st.sortPool.Get().(*msSortTask[T])
	if t == nil {
		t = &msSortTask[T]{st: st}
	}
	t.src, t.tmp, t.toTmp, t.parent = src, tmp, toTmp, parent
	return t
}

func (t *msSortTask[T]) Threads() int { return 1 }

func (t *msSortTask[T]) Run(ctx *core.Ctx) {
	st, src, tmp, toTmp, parent := t.st, t.src, t.tmp, t.toTmp, t.parent
	t.src, t.tmp, t.parent = nil, nil, nil
	st.sortPool.Put(t)
	st.sortRun(ctx, src, tmp, toTmp, parent)
}

// sortRun is the recursive split: the left child is spawned as a pooled
// task, the right child continues inline (standard work-first split,
// expressed as a loop).
func (st *msState[T]) sortRun(ctx *core.Ctx, src, tmp []T, toTmp bool, parent *mergeNode[T]) {
	for {
		if ctx.Canceled() {
			// Cooperative cancellation: stop splitting. The pending merge
			// nodes above this range are simply never completed — nothing
			// waits on a mergeNode (merges are spawned by the last child, not
			// joined), so the group drains and the range stays unsorted.
			return
		}
		n := len(src)
		if n <= st.opt.Cutoff {
			qsort.Introsort(src)
			if toTmp {
				copy(tmp, src)
			}
			if parent != nil {
				parent.childDone(ctx)
			}
			return
		}
		h := n / 2
		node := st.newMergeNode(parent)
		if toTmp {
			node.a, node.b, node.out = src[:h], src[h:], tmp
		} else {
			node.a, node.b, node.out = tmp[:h], tmp[h:], src
		}
		// Children sort into the opposite buffer of this node's output.
		ctx.Spawn(st.sortTask(src[:h], tmp[:h], !toTmp, node))
		src, tmp, toTmp, parent = src[h:], tmp[h:], !toTmp, node
	}
}

// coRank returns (i, j) with i+j = k such that merging a[:i] with b[:j]
// yields the first k elements of the full merge (Merge Path split point).
func coRank[T qsort.Ordered](a, b []T, k int) (int, int) {
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		i := (lo + hi) / 2
		j := k - i
		if i > 0 && j < len(b) && a[i-1] > b[j] {
			hi = i // i too big
		} else if j > 0 && i < len(a) && a[i] < b[j-1] {
			lo = i + 1 // i too small
		} else {
			return i, j
		}
	}
	return lo, k - lo
}

// mergeRange writes out[lo:hi) of the merge of sorted a and b.
func mergeRange[T qsort.Ordered](a, b, out []T, lo, hi int) {
	i, j := coRank(a, b, lo)
	for k := lo; k < hi; k++ {
		switch {
		case i >= len(a):
			out[k] = b[j]
			j++
		case j >= len(b):
			out[k] = a[i]
			i++
		case b[j] < a[i]:
			out[k] = b[j]
			j++
		default:
			out[k] = a[i]
			i++
		}
	}
}
