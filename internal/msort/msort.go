// Package msort implements a mixed-mode parallel merge sort on the
// team-building scheduler — one of the "further mixed-mode parallel
// applications" the paper's conclusion calls for, built on the same
// primitives as the mixed-mode Quicksort: tasks whose thread requirement
// shrinks with the subproblem and whose interiors are data-parallel.
//
// Structure: the array is recursively split into single-threaded sort tasks;
// when both children of a node have finished, the last one spawns the node's
// merge as a new task. Large merges are team tasks of np workers that
// partition the output range by co-ranking (Merge Path binary search on the
// two sorted inputs), so every member produces an independent output chunk.
// The whole computation is continuation-style — no worker ever blocks — so
// even full-width teams (np = p) can always form.
package msort

import (
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/qsort"
)

// Options are the tunables of the mixed-mode merge sort.
type Options struct {
	// Cutoff is the subsequence length below which the sequential sort takes
	// over. Default 2048.
	Cutoff int
	// MinPerThread is the minimum number of output elements per team member
	// of a parallel merge. Default 1 << 16.
	MinPerThread int
}

func (o Options) withDefaults() Options {
	if o.Cutoff < 2 {
		o.Cutoff = 2048
	}
	if o.MinPerThread < 1 {
		o.MinPerThread = 1 << 16
	}
	return o
}

// Sort sorts data with the mixed-mode parallel merge sort. It blocks until
// the sort completes: the sort runs as its own one-shot task group, so
// concurrent sorts on the same scheduler do not wait on each other. The
// algorithm is not in-place: it allocates one scratch buffer of len(data).
func Sort[T qsort.Ordered](s *core.Scheduler, data []T, opt Options) {
	g := s.NewGroup()
	SortGroup(g, data, opt)
	g.Wait()
	// g.Wait observes the group's quiescence: the last merge has completed.
}

// SortGroup spawns the mixed-mode merge sort of data into the
// caller-supplied group g and returns immediately; data is sorted once
// g.Wait() observes the group's quiescence. The whole continuation tree —
// child sorts and the merges they trigger through childDone — inherits g,
// so the group drains exactly when the root merge has been written.
func SortGroup[T qsort.Ordered](g *core.Group, data []T, opt Options) {
	if t := Root(data, opt); t != nil {
		g.Spawn(t)
	}
}

// Root returns the root task of the mixed-mode merge sort over data, for
// batched submission (Group.SpawnBatch / the runtime's batched sorts). It
// returns nil when there is nothing to sort.
func Root[T qsort.Ordered](data []T, opt Options) core.Task {
	opt = opt.withDefaults()
	if len(data) < 2 {
		return nil
	}
	tmp := make([]T, len(data))
	return sortTask(data, tmp, false, nil, opt)
}

// bestNp mirrors the Quicksort's getBestNp for merge steps.
func bestNp(n, perThread, maxTeam int) int {
	np := 1
	for np*2 <= maxTeam && n >= 2*np*perThread {
		np *= 2
	}
	return np
}

// mergeNode is the join point of two child sorts. Whichever child finishes
// last spawns the merge.
type mergeNode[T qsort.Ordered] struct {
	a, b, out []T
	parent    *mergeNode[T]
	pending   atomic.Int32
	opt       Options
}

// childDone is called by each completed child (and by the node's own merge
// task toward its parent).
func (m *mergeNode[T]) childDone(ctx *core.Ctx) {
	if m.pending.Add(-1) != 0 {
		return
	}
	n := len(m.out)
	np := bestNp(n, m.opt.MinPerThread, ctx.Scheduler().MaxTeam())
	if np <= 1 {
		m.spawnSequentialMerge(ctx)
		return
	}
	parent := m.parent
	a, b, out := m.a, m.b, m.out
	ctx.Spawn(core.Func(np, func(c *core.Ctx) {
		w, lid := c.TeamSize(), c.LocalID()
		lo, hi := lid*n/w, (lid+1)*n/w
		mergeRange(a, b, out, lo, hi)
		c.Barrier() // the merge is complete once all chunks are written
		if lid == 0 && parent != nil {
			parent.childDone(c)
		}
	}))
}

func (m *mergeNode[T]) spawnSequentialMerge(ctx *core.Ctx) {
	parent := m.parent
	a, b, out := m.a, m.b, m.out
	ctx.Spawn(core.Solo(func(c *core.Ctx) {
		mergeRange(a, b, out, 0, len(out))
		if parent != nil {
			parent.childDone(c)
		}
	}))
}

// sortTask returns the recursive sort task for src. The sorted result lands
// in src if !toTmp, else in tmp (the buffers alternate down the recursion so
// every merge reads one buffer and writes the other).
func sortTask[T qsort.Ordered](src, tmp []T, toTmp bool, parent *mergeNode[T], opt Options) core.Task {
	return core.Solo(func(ctx *core.Ctx) {
		n := len(src)
		if n <= opt.Cutoff {
			qsort.Introsort(src)
			if toTmp {
				copy(tmp, src)
			}
			if parent != nil {
				parent.childDone(ctx)
			}
			return
		}
		h := n / 2
		node := &mergeNode[T]{parent: parent, opt: opt}
		node.pending.Store(2)
		if toTmp {
			node.a, node.b, node.out = src[:h], src[h:], tmp
		} else {
			node.a, node.b, node.out = tmp[:h], tmp[h:], src
		}
		// Children sort into the opposite buffer of this node's output.
		left := sortTask(src[:h], tmp[:h], !toTmp, node, opt)
		right := sortTask(src[h:], tmp[h:], !toTmp, node, opt)
		ctx.Spawn(left)
		right.Run(ctx) // run one child inline (standard work-first split)
	})
}

// coRank returns (i, j) with i+j = k such that merging a[:i] with b[:j]
// yields the first k elements of the full merge (Merge Path split point).
func coRank[T qsort.Ordered](a, b []T, k int) (int, int) {
	lo := k - len(b)
	if lo < 0 {
		lo = 0
	}
	hi := k
	if hi > len(a) {
		hi = len(a)
	}
	for lo < hi {
		i := (lo + hi) / 2
		j := k - i
		if i > 0 && j < len(b) && a[i-1] > b[j] {
			hi = i // i too big
		} else if j > 0 && i < len(a) && a[i] < b[j-1] {
			lo = i + 1 // i too small
		} else {
			return i, j
		}
	}
	return lo, k - lo
}

// mergeRange writes out[lo:hi) of the merge of sorted a and b.
func mergeRange[T qsort.Ordered](a, b, out []T, lo, hi int) {
	i, j := coRank(a, b, lo)
	for k := lo; k < hi; k++ {
		switch {
		case i >= len(a):
			out[k] = b[j]
			j++
		case j >= len(b):
			out[k] = a[i]
			i++
		case b[j] < a[i]:
			out[k] = b[j]
			j++
		default:
			out[k] = a[i]
			i++
		}
	}
}
