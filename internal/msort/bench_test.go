package msort

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/qsort"
)

// BenchmarkSort compares the mixed-mode merge sort against the sequential
// baseline and the mixed-mode quicksort at the same size.
func BenchmarkSort(b *testing.B) {
	const n = 1 << 21
	in := dist.Generate(dist.Random, n, 42)
	buf := make([]int32, n)

	b.Run("sequential", func(b *testing.B) {
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			copy(buf, in)
			qsort.Introsort(buf)
		}
	})
	for _, p := range []int{4, 8} {
		b.Run(fmt.Sprintf("msort-p%d", p), func(b *testing.B) {
			s := core.New(core.Options{P: p})
			defer s.Shutdown()
			opt := Options{MinPerThread: 1 << 15}
			b.SetBytes(4 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				Sort(s, buf, opt)
			}
		})
		b.Run(fmt.Sprintf("mmqsort-p%d", p), func(b *testing.B) {
			s := core.New(core.Options{P: p})
			defer s.Shutdown()
			opt := qsort.MMOptions{BlockSize: 1024, MinBlocksPerThread: 16}
			b.SetBytes(4 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				qsort.MixedMode(s, buf, opt)
			}
		})
	}
}

func BenchmarkCoRank(b *testing.B) {
	const n = 1 << 20
	a := dist.Generate(dist.Random, n, 1)
	c := dist.Generate(dist.Random, n, 2)
	qsort.Introsort(a)
	qsort.Introsort(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coRank(a, c, (i*2097143)%(2*n))
	}
}
