package backoff

import (
	"testing"
	"time"
)

func TestEscalation(t *testing.T) {
	var b Backoff
	// Spin + yield rounds must be fast.
	start := time.Now()
	for i := 0; i < spinRounds+yieldRounds; i++ {
		b.Wait()
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("spin/yield rounds took %v", d)
	}
	if b.Attempts() != spinRounds+yieldRounds {
		t.Fatalf("Attempts = %d", b.Attempts())
	}
	// First sleep round must be at least Min.
	start = time.Now()
	b.Wait()
	if d := time.Since(start); d < DefaultMin {
		t.Fatalf("first sleep %v < min %v", d, DefaultMin)
	}
}

func TestReset(t *testing.T) {
	var b Backoff
	for i := 0; i < 20; i++ {
		b.Wait()
	}
	b.Reset()
	if b.Attempts() != 0 {
		t.Fatalf("Attempts after Reset = %d", b.Attempts())
	}
	start := time.Now()
	b.Wait() // back to spinning
	if d := time.Since(start); d > 10*time.Millisecond {
		t.Fatalf("post-reset wait took %v, expected a spin", d)
	}
}

func TestSleepCap(t *testing.T) {
	b := Backoff{Min: time.Microsecond, Max: 2 * time.Millisecond}
	// Drive deep into the sleep regime; each wait must stay near Max.
	for i := 0; i < spinRounds+yieldRounds+15; i++ {
		b.Wait()
	}
	start := time.Now()
	b.Wait()
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("capped sleep took %v, cap was 2ms", d)
	}
}

func TestCustomBounds(t *testing.T) {
	b := Backoff{Min: 100 * time.Microsecond, Max: time.Millisecond}
	for i := 0; i < spinRounds+yieldRounds; i++ {
		b.Wait()
	}
	start := time.Now()
	b.Wait()
	if d := time.Since(start); d < 100*time.Microsecond {
		t.Fatalf("custom min not honored: %v", d)
	}
}
