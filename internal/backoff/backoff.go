// Package backoff provides the exponential backoff used by all polling
// loops in the schedulers.
//
// The paper's prototype uses exponential backoff "starting at 1 microsecond,
// and going up to 10 milliseconds" (§4). Because our hardware threads are
// goroutines, the early iterations spin and yield to the Go runtime
// (runtime.Gosched) before falling back to timed sleeps, which keeps the
// scheduler from fighting the runtime's own scheduler during short waits.
package backoff

import (
	"runtime"
	"time"
)

// Default bounds, matching §4 of the paper.
const (
	DefaultMin = 1 * time.Microsecond
	DefaultMax = 10 * time.Millisecond

	// spinRounds is the number of busy-spin iterations before yielding.
	spinRounds = 4
	// yieldRounds is the number of Gosched iterations before sleeping.
	yieldRounds = 8
)

// Backoff is a per-worker exponential backoff. The zero value uses the
// default bounds. Not safe for concurrent use (each worker owns one).
type Backoff struct {
	Min time.Duration // 0 means DefaultMin
	Max time.Duration // 0 means DefaultMax
	n   int           // consecutive Wait calls since the last Reset
}

// Reset clears the backoff after successful work was found.
func (b *Backoff) Reset() { b.n = 0 }

// Attempts returns the number of consecutive Wait calls since the last Reset.
func (b *Backoff) Attempts() int { return b.n }

// Wait blocks for the current backoff duration and escalates: a few spin
// rounds, then runtime.Gosched, then exponentially growing sleeps capped at
// Max.
func (b *Backoff) Wait() {
	n := b.n
	b.n++
	switch {
	case n < spinRounds:
		spin(1 << uint(n+4)) // 16..128 pause iterations
	case n < spinRounds+yieldRounds:
		runtime.Gosched()
	default:
		min, max := b.Min, b.Max
		if min <= 0 {
			min = DefaultMin
		}
		if max <= 0 {
			max = DefaultMax
		}
		k := n - spinRounds - yieldRounds
		d := min << uint(k)
		if d > max || d <= 0 {
			d = max
		}
		time.Sleep(d)
	}
}

//go:noinline
func spin(iters int) {
	for i := 0; i < iters; i++ {
		// Empty loop; noinline keeps the compiler from removing it.
	}
}
