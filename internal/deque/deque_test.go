package deque

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestLIFOOwner(t *testing.T) {
	d := New[int]()
	vals := []int{1, 2, 3, 4, 5}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := len(vals) - 1; i >= 0; i-- {
		v := d.PopBottom()
		if v == nil || *v != vals[i] {
			t.Fatalf("PopBottom: got %v, want %d", v, vals[i])
		}
	}
	if d.PopBottom() != nil {
		t.Fatal("empty deque must return nil")
	}
}

func TestFIFOThief(t *testing.T) {
	d := New[int]()
	vals := []int{1, 2, 3, 4, 5}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	for i := 0; i < len(vals); i++ {
		v := d.PopTop()
		if v == nil || *v != vals[i] {
			t.Fatalf("PopTop: got %v, want %d", v, vals[i])
		}
	}
	if d.PopTop() != nil {
		t.Fatal("empty deque must return nil from PopTop")
	}
}

func TestGrowth(t *testing.T) {
	d := New[int]()
	const n = 10 * MinCapacity
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
		d.PushBottom(&vals[i])
	}
	if d.Size() != n {
		t.Fatalf("Size=%d, want %d", d.Size(), n)
	}
	// Mixed draining preserves deque semantics across the grown array.
	for i := 0; i < n/2; i++ {
		if v := d.PopTop(); v == nil || *v != i {
			t.Fatalf("PopTop %d: got %v", i, v)
		}
	}
	for i := n - 1; i >= n/2; i-- {
		if v := d.PopBottom(); v == nil || *v != i {
			t.Fatalf("PopBottom %d: got %v", i, v)
		}
	}
	if !d.Empty() {
		t.Fatal("deque should be empty")
	}
}

func TestInterleavedWrapAround(t *testing.T) {
	d := New[int]()
	x := 0
	// Push/pop cycles exceeding capacity exercise index wrap-around.
	for round := 0; round < 1000; round++ {
		for i := 0; i < 7; i++ {
			d.PushBottom(&x)
		}
		for i := 0; i < 7; i++ {
			if d.PopBottom() == nil {
				t.Fatal("unexpected nil")
			}
		}
	}
	if d.Size() != 0 {
		t.Fatalf("Size=%d after balanced ops", d.Size())
	}
}

// TestConcurrentStealExactlyOnce is the central safety property: under
// concurrent thieves and an active owner, every pushed element is received
// exactly once across PopBottom and PopTop.
func TestConcurrentStealExactlyOnce(t *testing.T) {
	const n = 100000
	const thieves = 6
	d := New[int]()
	vals := make([]int, n)
	got := make([]atomic.Int32, n)
	var wg sync.WaitGroup

	for i := 0; i < thieves; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fails := 0
			for fails < 1_000_000 {
				if v := d.PopTop(); v != nil {
					got[*v].Add(1)
					fails = 0
				} else {
					fails++
				}
			}
		}()
	}

	for i := 0; i < n; i++ {
		vals[i] = i
		d.PushBottom(&vals[i])
		if i%3 == 0 {
			if v := d.PopBottom(); v != nil {
				got[*v].Add(1)
			}
		}
	}
	for {
		v := d.PopBottom()
		if v == nil && d.Empty() {
			break
		}
		if v != nil {
			got[*v].Add(1)
		}
	}
	wg.Wait()
	// Drain anything the owner's final nil raced on.
	for {
		v := d.PopTop()
		if v == nil {
			break
		}
		got[*v].Add(1)
	}
	for i := range got {
		if c := got[i].Load(); c != 1 {
			t.Fatalf("element %d received %d times", i, c)
		}
	}
}

func TestStealTransfersInOrder(t *testing.T) {
	src := New[int]()
	dst := New[int]()
	vals := []int{10, 11, 12, 13, 14, 15}
	for i := range vals {
		src.PushBottom(&vals[i])
	}
	last, n := Steal(src, dst, 4)
	if n != 4 {
		t.Fatalf("stole %d, want 4", n)
	}
	if last == nil || *last != 13 {
		t.Fatalf("last = %v, want 13 (the most recently stolen)", last)
	}
	// dst must hold 10,11,12 in original top-to-bottom order.
	for _, want := range []int{10, 11, 12} {
		v := dst.PopTop()
		if v == nil || *v != want {
			t.Fatalf("dst order: got %v, want %d", v, want)
		}
	}
	if src.Size() != 2 {
		t.Fatalf("src size = %d, want 2", src.Size())
	}
}

func TestStealFromEmpty(t *testing.T) {
	src, dst := New[int](), New[int]()
	last, n := Steal(src, dst, 5)
	if last != nil || n != 0 {
		t.Fatalf("steal from empty: last=%v n=%d", last, n)
	}
}

func TestStealMoreThanAvailable(t *testing.T) {
	src, dst := New[int](), New[int]()
	v := 7
	src.PushBottom(&v)
	last, n := Steal(src, dst, 10)
	if n != 1 || last == nil || *last != 7 {
		t.Fatalf("steal: n=%d last=%v", n, last)
	}
	if dst.Size() != 0 {
		t.Fatal("single stolen element must be returned, not enqueued")
	}
}

// TestQuickSequences checks the sequential semantics against a reference
// slice model over random operation sequences.
func TestQuickSequences(t *testing.T) {
	f := func(ops []bool) bool {
		d := New[int]()
		var model []int
		next := 0
		store := make([]int, 0, len(ops))
		for _, push := range ops {
			if push {
				store = append(store, next)
				d.PushBottom(&store[len(store)-1])
				model = append(model, next)
				next++
			} else {
				v := d.PopBottom()
				if len(model) == 0 {
					if v != nil {
						return false
					}
					continue
				}
				want := model[len(model)-1]
				model = model[:len(model)-1]
				if v == nil || *v != want {
					return false
				}
			}
		}
		return d.Size() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPushPopBottom(b *testing.B) {
	d := New[int]()
	x := 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PushBottom(&x)
		d.PopBottom()
	}
}

func BenchmarkPopTopUncontended(b *testing.B) {
	d := New[int]()
	x := 42
	for i := 0; i < b.N; i++ {
		d.PushBottom(&x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.PopTop()
	}
}

// TestPopBottomClearsSlot pins the retention fix: an owner pop must nil the
// ring slot it vacates — both on the multi-element path and on the
// last-element CAS path — so a popped task (and whatever it captures) is
// unreachable from the deque the moment it is returned, instead of living
// until the ring happens to wrap around and overwrite the slot.
func TestPopBottomClearsSlot(t *testing.T) {
	d := New[int]()
	vals := []int{10, 20, 30}
	for i := range vals {
		d.PushBottom(&vals[i])
	}
	// Three pops: two on the t < b path, the final one on the last-element
	// CAS path.
	for i := 0; i < len(vals); i++ {
		if d.PopBottom() == nil {
			t.Fatalf("pop %d: unexpected nil", i)
		}
	}
	a := d.arr.Load()
	for i := int64(0); i < a.cap(); i++ {
		if got := a.buf[i].Load(); got != nil {
			t.Fatalf("slot %d retains %v after owner pops", i, *got)
		}
	}
	// An interleaved push/pop steady state (the fork-join spawn pattern)
	// must not accumulate retained pointers either.
	for i := 0; i < 3*int(a.cap()); i++ {
		d.PushBottom(&vals[i%len(vals)])
		if d.PopBottom() == nil {
			t.Fatalf("round %d: unexpected nil", i)
		}
	}
	a = d.arr.Load()
	for i := int64(0); i < a.cap(); i++ {
		if got := a.buf[i].Load(); got != nil {
			t.Fatalf("slot %d retains %v after push/pop rounds", i, *got)
		}
	}
}
