// Package deque implements the lock-free double-ended work-stealing queue
// used by all schedulers in this repository.
//
// The implementation follows the dynamic circular work-stealing deque of
// Chase & Lev ("Dynamic circular work-stealing deque", SPAA 2005), which is
// the standard realization of the Arora–Blumofe–Plaxton deque the paper
// assumes (§2: "queues are assumed to be implemented in a lock/wait-free
// manner"). The owner pushes and pops at the bottom without synchronization
// in the common case; thieves pop from the top with a single CAS.
//
// The deque stores pointers *T. A nil return means the deque was empty (or
// the element was lost to a concurrent thief).
package deque

import "sync/atomic"

// ring is a circular array of capacity 2^k. Elements are stored through
// atomic pointers because a thief may read a slot while the owner overwrites
// it after wrap-around; the top CAS validates the read.
type ring[T any] struct {
	mask int64
	buf  []atomic.Pointer[T]
}

func newRing[T any](capacity int64) *ring[T] {
	return &ring[T]{mask: capacity - 1, buf: make([]atomic.Pointer[T], capacity)}
}

func (r *ring[T]) load(i int64) *T     { return r.buf[i&r.mask].Load() }
func (r *ring[T]) store(i int64, v *T) { r.buf[i&r.mask].Store(v) }
func (r *ring[T]) cap() int64          { return r.mask + 1 }
func (r *ring[T]) grow(top, bot int64) *ring[T] {
	n := newRing[T](r.cap() * 2)
	for i := top; i < bot; i++ {
		n.store(i, r.load(i))
	}
	return n
}

// MinCapacity is the initial capacity of a Deque.
const MinCapacity = 64

// Deque is a Chase–Lev work-stealing deque of *T. The zero value is not
// ready for use; call New.
type Deque[T any] struct {
	top    atomic.Int64
	bottom atomic.Int64
	arr    atomic.Pointer[ring[T]]
}

// New returns an empty deque.
func New[T any]() *Deque[T] {
	d := &Deque[T]{}
	d.arr.Store(newRing[T](MinCapacity))
	return d
}

// PushBottom appends v at the bottom. Owner-only.
func (d *Deque[T]) PushBottom(v *T) {
	b := d.bottom.Load()
	t := d.top.Load()
	a := d.arr.Load()
	if b-t >= a.cap() {
		a = a.grow(t, b)
		d.arr.Store(a)
	}
	a.store(b, v)
	d.bottom.Store(b + 1)
}

// PopBottom removes and returns the bottom element, or nil if the deque is
// empty or the last element was lost to a concurrent thief. Owner-only.
//
// The popped slot is cleared: a slot that kept its pointer would retain the
// popped task (and everything it captures) until the ring wraps around and
// overwrites it — on a mostly-idle deque, indefinitely. Clearing is safe on
// both owner paths because no thief can still commit a read of slot b: a
// thief targeting index b must read top == b before it reads bottom (PopTop
// reads in that order), so it either read bottom after our publication of
// bottom = b (and rejected, t < b being false), or its top CAS loses to
// whichever pop — ours or a competing thief's — already advanced top past
// b. Thief-side PopTop must NOT clear: after a winning top CAS, the owner
// may already be overwriting the slot via wrap-around, and a late nil store
// would destroy the new element.
func (d *Deque[T]) PopBottom() *T {
	b := d.bottom.Load() - 1
	a := d.arr.Load()
	d.bottom.Store(b)
	t := d.top.Load()
	if t > b {
		// Empty: restore the canonical empty state.
		d.bottom.Store(t)
		return nil
	}
	v := a.load(b)
	if t == b {
		// Last element: race with thieves via CAS on top.
		if !d.top.CompareAndSwap(t, t+1) {
			v = nil // a thief got it
		}
		d.bottom.Store(t + 1)
		a.store(b, nil) // top is past b either way: no thief read can commit
		return v
	}
	a.store(b, nil)
	return v
}

// PopTop steals the top element, or returns nil if the deque is empty or the
// CAS lost a race. Safe for concurrent use by any number of thieves.
func (d *Deque[T]) PopTop() *T {
	t := d.top.Load()
	b := d.bottom.Load()
	if t >= b {
		return nil
	}
	a := d.arr.Load()
	v := a.load(t)
	if !d.top.CompareAndSwap(t, t+1) {
		return nil
	}
	return v
}

// Size returns an estimate of the number of elements. It is exact when
// called by the owner with no concurrent thieves.
func (d *Deque[T]) Size() int {
	n := d.bottom.Load() - d.top.Load()
	if n < 0 {
		return 0
	}
	return int(n)
}

// Empty reports whether the deque appears empty.
func (d *Deque[T]) Empty() bool { return d.Size() == 0 }

// Steal implements the paper's popappend() (Algorithm 4, with the §4
// refinement that the last stolen task is returned directly instead of being
// enqueued, so it cannot be stolen back). It transfers up to max elements
// from the top of victim to the bottom of dst, in order, returning the last
// stolen element (to be executed immediately by the thief) and the total
// number of elements stolen including the returned one.
//
// Must be called by the owner of dst; victim may be under concurrent attack
// by other thieves.
func Steal[T any](victim, dst *Deque[T], max int) (last *T, n int) {
	for n < max {
		v := victim.PopTop()
		if v == nil {
			return last, n
		}
		if last != nil {
			dst.PushBottom(last)
		}
		last = v
		n++
	}
	return last, n
}
