package dist

import "testing"

// FuzzParse: Parse must never panic and must round-trip through String for
// every name it accepts.
func FuzzParse(f *testing.F) {
	for _, k := range Kinds {
		f.Add(k.String())
	}
	f.Add("")
	f.Add("all")
	f.Add("  RANDOM  ")
	f.Add("Kind(3)")
	f.Fuzz(func(t *testing.T, s string) {
		k, err := Parse(s)
		if err != nil {
			return
		}
		if !k.Valid() {
			t.Fatalf("Parse(%q) accepted invalid kind %d", s, int(k))
		}
		back, err := Parse(k.String())
		if err != nil || back != k {
			t.Fatalf("round trip of %q via %q: %v, %v", s, k.String(), back, err)
		}
	})
}

// FuzzGenerate: no (kind, n, seed, p) combination may panic, return the
// wrong length, produce negative keys, or break positional consistency.
func FuzzGenerate(f *testing.F) {
	f.Add(uint8(0), 100, uint64(42), 8)
	f.Add(uint8(3), 1, uint64(0), 0)
	f.Add(uint8(8), 4097, uint64(1)<<63, -5)
	f.Add(uint8(200), 0, uint64(7), 1<<30)
	f.Fuzz(func(t *testing.T, kb uint8, n int, seed uint64, p int) {
		k := Kind(int(kb) % int(numKinds))
		if n < 0 {
			n = -n
		}
		n %= 1 << 14
		vs := GenerateP(k, n, seed, p)
		if len(vs) != n {
			t.Fatalf("%v: len %d, want %d", k, len(vs), n)
		}
		for i, v := range vs {
			if v < 0 {
				t.Fatalf("%v n=%d p=%d: negative key %d at %d", k, n, p, v, i)
			}
		}
		if n > 2 {
			// A mid-slice Fill must agree with the full generation.
			lo, hi := n/3, 2*n/3
			part := make([]int32, hi-lo)
			Fill(k, part, lo, n, seed, p)
			for i := range part {
				if part[i] != vs[lo+i] {
					t.Fatalf("%v: positional fill differs at %d", k, lo+i)
				}
			}
		}
	})
}
