package dist

import "testing"

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d: %d != %d", i, x, y)
		}
	}
	if NewRNG(42).Next() == NewRNG(43).Next() {
		t.Fatal("adjacent seeds produced identical first draws")
	}
}

func TestRNGSkip(t *testing.T) {
	for _, skip := range []uint64{0, 1, 7, 1000, 1 << 40} {
		seq := NewRNG(7)
		for i := uint64(0); i < skip && skip < 1<<20; i++ {
			seq.Next()
		}
		jump := NewRNG(7)
		jump.Skip(skip)
		if skip < 1<<20 {
			if x, y := seq.Next(), jump.Next(); x != y {
				t.Fatalf("Skip(%d) diverges from %d sequential draws: %d != %d", skip, skip, x, y)
			}
		} else if jump.Next() == NewRNG(7).Next() {
			t.Fatalf("Skip(%d) did not advance the stream", skip)
		}
	}
}

func TestRNGSplit(t *testing.T) {
	parent := NewRNG(5)
	child := parent.Split()
	// The child stream must not simply replay the parent's.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Next() == child.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 draws collide between parent and child", same)
	}
}

func TestRNGBounds(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
		if v := r.Int31(); v < 0 {
			t.Fatalf("Int31 = %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v", v)
		}
		if v := r.Uint64n(3); v >= 3 {
			t.Fatalf("Uint64n(3) = %d", v)
		}
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

// TestRNGUniformity is a coarse chi-squared-free sanity check: each of 16
// equal bins of Intn should hold its share of draws within 5%.
func TestRNGUniformity(t *testing.T) {
	const draws, bins = 1 << 18, 16
	r := NewRNG(99)
	var counts [bins]int
	for i := 0; i < draws; i++ {
		counts[r.Intn(bins)]++
	}
	want := draws / bins
	for b, c := range counts {
		if c < want*95/100 || c > want*105/100 {
			t.Fatalf("bin %d: %d draws, want %d ±5%%", b, c, want)
		}
	}
}
