// Package dist generates the benchmark input distributions driving the
// paper's evaluation (Wimmer & Träff, "Work-stealing for mixed-mode
// parallelism by deterministic team-building", SPAA 2011, arXiv:1012.5030,
// §5 and Tables 1–10).
//
// The four paper distributions follow the definitions of Helman, Bader and
// JáJá ("A randomized parallel sorting algorithm with an experimental
// study", JPDC 52(1), 1998), instantiated for 31-bit keys:
//
//   - Random: independent uniform values in [0, 2³¹).
//   - Gauss: the average of four consecutive uniform values, approximating
//     a normal distribution centered at 2³⁰.
//   - Buckets: the array is split into p consecutive blocks of n/p
//     elements; within each block the j-th run of n/p² elements holds
//     uniform values from the j-th of p equal subranges of [0, 2³¹), so
//     the input is already "bucket sorted" for p processors.
//   - Staggered: p blocks of n/p elements; block i holds uniform values
//     from subrange 2i+1 (for i < p/2) or 2i−p (for i ≥ p/2), the
//     staggered pattern that defeats naive block-cyclic partitioning.
//
// The block parameter p of Buckets and Staggered is the processor count of
// the simulated machine (DefaultP unless overridden via GenerateP).
//
// Beyond the paper's four, the registry carries additional scenario kinds
// used by the wider benchmark suite: Zero (constant keys, zero entropy —
// also from Helman–Bader–JáJá), Sorted and Reverse (pre-sorted inputs in
// both directions), RandDup (uniform draws from a small universe of 1024
// keys, stressing equal-key handling), and WorstCase (a pipe-organ
// ascending/descending pattern, adversarial for midpoint and
// median-of-three pivot selection).
//
// Every generator is a pure function of (kind, n, seed, p, index): the
// value at index i never depends on how the rest of the slice is produced.
// The PRNG is a splittable SplitMix64 stream with O(1) jump-ahead, and each
// kind declares a fixed number of draws per element, so any subrange
// [off, off+len(dst)) can be filled independently via Fill and is
// bit-identical to the sequential Generate output. Package dist/distpar
// exploits this to generate large inputs in parallel on the repository's
// own team-building scheduler. This package deliberately does not import
// internal/core (whose in-package tests import dist), so the scheduler
// wiring lives in the subpackage.
package dist
