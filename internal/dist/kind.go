package dist

import (
	"fmt"
	"sort"
	"strings"
)

// Kind identifies one registered input distribution.
type Kind int

// The paper's four distributions (§5, Helman–Bader–JáJá) followed by the
// additional scenario kinds. New kinds added to the registry are picked up
// automatically by everything iterating Kinds: cmd/distinspect -dist all,
// the harness row groups, and the sorting test suites.
const (
	Random Kind = iota
	Gauss
	Buckets
	Staggered
	Zero
	Sorted
	Reverse
	RandDup
	WorstCase
	numKinds
)

// spec is one registry entry. draws is the exact number of RNG draws each
// element consumes; Fill relies on it to seek the stream in O(1), so a
// generator must consume exactly draws·(hi−lo) values for a [lo, hi) range.
type spec struct {
	name    string
	aliases []string
	doc     string
	draws   int
	fill    func(dst []int32, off, n int, rng *RNG, p int)
}

// Canonical names are capitalized like the paper's table row labels; Parse
// is case-insensitive, so command-line flags accept "random" etc.
var registry = [numKinds]spec{
	Random:    {name: "Random", aliases: []string{"uniform", "u"}, doc: "uniform values in [0, 2³¹)", draws: 1, fill: fillRandom},
	Gauss:     {name: "Gauss", aliases: []string{"gaussian", "g"}, doc: "average of four uniform values", draws: 4, fill: fillGauss},
	Buckets:   {name: "Buckets", aliases: []string{"bucket", "b"}, doc: "p blocks pre-bucketed into p subranges", draws: 1, fill: fillBuckets},
	Staggered: {name: "Staggered", aliases: []string{"stagger", "s"}, doc: "p blocks in staggered subrange order", draws: 1, fill: fillStaggered},
	Zero:      {name: "Zero", aliases: []string{"z"}, doc: "constant zero keys (zero entropy)", draws: 0, fill: fillZero},
	Sorted:    {name: "Sorted", aliases: []string{"asc"}, doc: "already sorted ascending over [0, 2³¹)", draws: 0, fill: fillSorted},
	Reverse:   {name: "Reverse", aliases: []string{"desc", "reversed"}, doc: "sorted descending over [0, 2³¹)", draws: 0, fill: fillReverse},
	RandDup:   {name: "RandDup", aliases: []string{"dup", "duplicates"}, doc: "uniform draws from 1024 distinct keys", draws: 1, fill: fillRandDup},
	WorstCase: {name: "WorstCase", aliases: []string{"worst", "organpipe", "pipe"}, doc: "pipe-organ ascend/descend pattern", draws: 0, fill: fillWorstCase},
}

// Kinds lists every registered distribution in registry order. Callers
// iterate it to cover all kinds; do not mutate.
var Kinds = func() []Kind {
	ks := make([]Kind, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		ks = append(ks, k)
	}
	return ks
}()

// parseTable maps every lower-case name and alias to its Kind.
var parseTable = func() map[string]Kind {
	m := make(map[string]Kind)
	for k := Kind(0); k < numKinds; k++ {
		m[strings.ToLower(registry[k].name)] = k
		for _, a := range registry[k].aliases {
			m[strings.ToLower(a)] = k
		}
	}
	return m
}()

// String returns the canonical name of the distribution.
func (k Kind) String() string {
	if k < 0 || k >= numKinds {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return registry[k].name
}

// Doc returns a one-line description of the distribution.
func (k Kind) Doc() string {
	if k < 0 || k >= numKinds {
		return ""
	}
	return registry[k].doc
}

// Valid reports whether k names a registered distribution.
func (k Kind) Valid() bool { return k >= 0 && k < numKinds }

// Parse resolves a distribution name (or alias), case-insensitively.
func Parse(s string) (Kind, error) {
	if k, ok := parseTable[strings.ToLower(strings.TrimSpace(s))]; ok {
		return k, nil
	}
	names := make([]string, 0, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		names = append(names, registry[k].name)
	}
	sort.Strings(names)
	return 0, fmt.Errorf("dist: unknown distribution %q (want one of %s)",
		s, strings.Join(names, "|"))
}
