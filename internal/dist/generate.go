package dist

// DefaultP is the default block parameter of Buckets and Staggered: the
// processor count of the simulated machine. 8 matches the paper's smallest
// evaluation machine (the 2×4-core Nehalem of Tables 1–2).
const DefaultP = 8

// keyRange is the Helman–Bader–JáJá key universe [0, 2³¹).
const keyRange = uint64(1) << 31

// Generate returns n reproducibly seeded values of distribution k with the
// default block parameter. Same (k, n, seed) always yields the same slice.
func Generate(k Kind, n int, seed uint64) []int32 {
	return GenerateP(k, n, seed, DefaultP)
}

// GenerateP is Generate with an explicit block parameter p (the simulated
// processor count of Buckets/Staggered; other kinds ignore it). p < 1
// selects DefaultP.
func GenerateP(k Kind, n int, seed uint64, p int) []int32 {
	if n < 0 {
		n = 0
	}
	vs := make([]int32, n)
	Fill(k, vs, 0, n, seed, p)
	return vs
}

// Fill writes into dst the elements with global indices
// [off, off+len(dst)) of the n-element realization of (k, seed, p). It is
// the positional core of the package: filling disjoint subranges from any
// number of goroutines produces output bit-identical to a single
// sequential Generate call. off and len(dst) must describe a range inside
// [0, n]. It panics on an unregistered kind.
func Fill(k Kind, dst []int32, off, n int, seed uint64, p int) {
	if !k.Valid() {
		panic("dist: Fill of unregistered " + k.String())
	}
	if off < 0 || n < 0 || off+len(dst) > n {
		panic("dist: Fill range outside [0, n)")
	}
	if len(dst) == 0 {
		return
	}
	sp := &registry[k]
	// Derive the per-kind stream from (seed, kind) so that different kinds
	// with the same seed draw unrelated values, then seek to the first
	// element of the range in O(1).
	rng := NewRNG(mix64(seed + uint64(k)*golden))
	rng.Skip(uint64(off) * uint64(sp.draws))
	sp.fill(dst, off, n, rng, clampP(p, n))
}

// clampP normalizes the block parameter: non-positive selects DefaultP,
// and p never exceeds n (a block must hold at least one element) nor the
// key range (a subrange must hold at least one key).
func clampP(p, n int) int {
	if p < 1 {
		p = DefaultP
	}
	if n > 0 && p > n {
		p = n
	}
	if uint64(p) > keyRange {
		p = int(keyRange)
	}
	return p
}

func fillRandom(dst []int32, _, _ int, rng *RNG, _ int) {
	for i := range dst {
		dst[i] = rng.Int31()
	}
}

func fillGauss(dst []int32, _, _ int, rng *RNG, _ int) {
	for i := range dst {
		s := uint64(rng.Int31()) + uint64(rng.Int31()) +
			uint64(rng.Int31()) + uint64(rng.Int31())
		dst[i] = int32(s / 4)
	}
}

// fillBuckets: block i/(n/p) of the array, run j within the block (runs of
// n/p² elements) ⇒ uniform keys from the j-th of p equal subranges.
func fillBuckets(dst []int32, off, n int, rng *RNG, p int) {
	width := keyRange / uint64(p)
	blockSize := n / p
	subSize := blockSize / p
	if subSize < 1 {
		subSize = 1
	}
	for i := range dst {
		gi := off + i
		pos := gi % blockSize
		j := pos / subSize
		if j >= p { // remainder positions fold into the last subrange
			j = p - 1
		}
		dst[i] = int32(uint64(j)*width + rng.Uint64n(width))
	}
}

// fillStaggered: block i (of p blocks of n/p) draws from subrange 2i+1
// when i < p/2 and subrange 2i−p otherwise.
func fillStaggered(dst []int32, off, n int, rng *RNG, p int) {
	width := keyRange / uint64(p)
	blockSize := n / p
	for i := range dst {
		ib := (off + i) / blockSize
		if ib >= p { // remainder elements fold into the last block
			ib = p - 1
		}
		var bucket int
		if ib < p/2 {
			bucket = 2*ib + 1
		} else {
			bucket = 2*ib - p
		}
		if bucket < 0 { // odd p: ib = ⌈p/2⌉−1 maps below the range
			bucket = 0
		}
		dst[i] = int32(uint64(bucket)*width + rng.Uint64n(width))
	}
}

func fillZero(dst []int32, _, _ int, _ *RNG, _ int) {
	for i := range dst {
		dst[i] = 0
	}
}

// sortedValue spreads index i of an n-element array monotonically over the
// key range.
func sortedValue(i, n int) int32 {
	return int32((uint64(i) << 31) / uint64(n))
}

func fillSorted(dst []int32, off, n int, _ *RNG, _ int) {
	for i := range dst {
		dst[i] = sortedValue(off+i, n)
	}
}

func fillReverse(dst []int32, off, n int, _ *RNG, _ int) {
	for i := range dst {
		dst[i] = sortedValue(n-1-(off+i), n)
	}
}

func fillRandDup(dst []int32, _, _ int, rng *RNG, _ int) {
	// 1024 distinct keys spread evenly over the key range (stride 2²¹).
	for i := range dst {
		dst[i] = int32(rng.Uint64n(1024) << 21)
	}
}

// fillWorstCase: pipe-organ — ascending to the midpoint, then the mirror
// descent. Midpoint/median-of-three pivots degrade on it, and it maximizes
// equal-range merges.
func fillWorstCase(dst []int32, off, n int, _ *RNG, _ int) {
	m := (n + 1) / 2
	for i := range dst {
		gi := off + i
		h := gi
		if gi > n-1-gi {
			h = n - 1 - gi
		}
		dst[i] = int32((uint64(h) << 31) / uint64(m))
	}
}
