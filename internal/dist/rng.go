package dist

// RNG is a deterministic splittable pseudo-random number generator
// (SplitMix64, Steele/Lea/Flood, OOPSLA 2014). It exists so that every
// benchmark input in the repository is reproducible from a single uint64
// seed with no dependence on math/rand global state, and so that parallel
// input generation can seek to any stream position in O(1): the i-th draw
// of the stream seeded with s is mix64(s + (i+1)·golden), a pure function
// of (s, i).
//
// The zero value is a valid generator (the stream of seed 0). RNG is not
// safe for concurrent use; give each goroutine its own Split.
type RNG struct {
	state uint64
}

// golden is 2⁶⁴/φ, the Weyl-sequence increment of SplitMix64.
const golden = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 finalizer: a bijective avalanching hash.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator producing the deterministic stream of seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Next returns the next 64 uniformly distributed bits.
func (r *RNG) Next() uint64 {
	r.state += golden
	return mix64(r.state)
}

// Skip advances the stream by n draws in O(1).
func (r *RNG) Skip(n uint64) { r.state += n * golden }

// Split consumes one draw and returns a new generator whose stream is
// statistically independent of the parent's remaining stream.
func (r *RNG) Split() *RNG { return NewRNG(r.Next()) }

// Uint32 returns 32 uniformly distributed bits (the high half of Next).
func (r *RNG) Uint32() uint32 { return uint32(r.Next() >> 32) }

// Int31 returns a uniform value in [0, 2³¹), the key range of the
// Helman–Bader–JáJá distributions.
func (r *RNG) Int31() int32 { return int32(r.Next() >> 33) }

// Intn returns a uniform value in [0, n). It panics if n <= 0. The modulo
// bias is below 2⁻³² for any n that fits an int32 and irrelevant for
// workload generation.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("dist: Intn with non-positive n")
	}
	return int(r.Next() % uint64(n))
}

// Uint64n returns a uniform value in [0, n); n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("dist: Uint64n with zero n")
	}
	return r.Next() % n
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}
