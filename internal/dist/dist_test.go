package dist

import (
	"math"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	if len(Kinds) != int(numKinds) {
		t.Fatalf("Kinds has %d entries, registry %d", len(Kinds), numKinds)
	}
	seen := map[string]Kind{}
	for _, k := range Kinds {
		sp := registry[k]
		if sp.name == "" || sp.fill == nil || sp.doc == "" {
			t.Fatalf("%v: incomplete registry entry %+v", int(k), sp)
		}
		if prev, dup := seen[sp.name]; dup {
			t.Fatalf("name %q registered for both %v and %v", sp.name, prev, k)
		}
		seen[sp.name] = k
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, k := range Kinds {
		got, err := Parse(k.String())
		if err != nil || got != k {
			t.Fatalf("Parse(%q) = %v, %v", k.String(), got, err)
		}
		for _, variant := range []string{
			strings.ToLower(k.String()),
			"  " + strings.ToUpper(k.String()) + " ",
		} {
			if got, err := Parse(variant); err != nil || got != k {
				t.Fatalf("case/space-insensitive Parse(%q) = %v, %v", variant, got, err)
			}
		}
	}
	for _, alias := range []struct {
		s string
		k Kind
	}{{"uniform", Random}, {"g", Gauss}, {"bucket", Buckets}, {"stagger", Staggered},
		{"desc", Reverse}, {"organpipe", WorstCase}} {
		if got, err := Parse(alias.s); err != nil || got != alias.k {
			t.Fatalf("Parse(%q) = %v, %v; want %v", alias.s, got, err, alias.k)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Fatal("Parse of unknown name succeeded")
	}
	if _, err := Parse(""); err == nil {
		t.Fatal("Parse of empty name succeeded")
	}
}

func TestStringUnregistered(t *testing.T) {
	if s := Kind(-1).String(); s != "Kind(-1)" {
		t.Fatalf("Kind(-1).String() = %q", s)
	}
	if Kind(977).Valid() {
		t.Fatal("Kind(977) claims to be valid")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	for _, k := range Kinds {
		a := Generate(k, 10_000, 42)
		b := Generate(k, 10_000, 42)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: index %d differs across identical calls: %d != %d", k, i, a[i], b[i])
			}
		}
		c := Generate(k, 10_000, 43)
		if k.draws() > 0 { // deterministic kinds ignore the seed
			same := 0
			for i := range a {
				if a[i] == c[i] {
					same++
				}
			}
			if same > len(a)/10 {
				t.Fatalf("%v: seeds 42 and 43 agree on %d/%d values", k, same, len(a))
			}
		}
	}
}

func (k Kind) draws() int { return registry[k].draws }

func TestGenerateEdgeSizes(t *testing.T) {
	for _, k := range Kinds {
		for _, n := range []int{0, 1, 2, 3, 7, 63} {
			vs := Generate(k, n, 1)
			if len(vs) != n {
				t.Fatalf("%v: len = %d, want %d", k, len(vs), n)
			}
			for i, v := range vs {
				if v < 0 {
					t.Fatalf("%v n=%d: negative value %d at %d", k, n, v, i)
				}
			}
		}
		if got := Generate(k, -5, 1); len(got) != 0 {
			t.Fatalf("%v: Generate with negative n returned %d values", k, len(got))
		}
	}
}

// TestGeneratePConsistency: Generate must equal GenerateP with DefaultP,
// and arbitrary (even degenerate) block parameters must stay in range.
func TestGeneratePConsistency(t *testing.T) {
	for _, k := range Kinds {
		a := Generate(k, 5000, 7)
		b := GenerateP(k, 5000, 7, DefaultP)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: Generate != GenerateP(DefaultP) at %d", k, i)
			}
		}
		z := GenerateP(k, 5000, 7, 0) // p<1 selects DefaultP
		for i := range a {
			if a[i] != z[i] {
				t.Fatalf("%v: GenerateP(p=0) != Generate at %d", k, i)
			}
		}
		for _, p := range []int{1, 2, 3, 16, 64, 5000, 100_000} {
			vs := GenerateP(k, 5000, 7, p)
			for i, v := range vs {
				if v < 0 {
					t.Fatalf("%v p=%d: negative value %d at %d", k, p, v, i)
				}
			}
		}
	}
}

// TestFillPositional: filling arbitrary disjoint subranges must reproduce
// the sequential Generate output bit for bit — the invariant parallel
// generation is built on.
func TestFillPositional(t *testing.T) {
	const n = 40_000
	for _, k := range Kinds {
		for _, p := range []int{DefaultP, 5} {
			want := GenerateP(k, n, 99, p)
			got := make([]int32, n)
			// Uneven cuts, including block-misaligned ones.
			cuts := []int{0, 1, 17, 1000, 1001, 16384, 16385, 39_999, n}
			for c := 0; c+1 < len(cuts); c++ {
				lo, hi := cuts[c], cuts[c+1]
				Fill(k, got[lo:hi], lo, n, 99, p)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v p=%d: positional fill differs at %d: %d != %d",
						k, p, i, want[i], got[i])
				}
			}
		}
	}
}

func TestFillPanics(t *testing.T) {
	for _, bad := range []func(){
		func() { Fill(Kind(99), make([]int32, 1), 0, 1, 0, 0) },
		func() { Fill(Random, make([]int32, 10), 5, 10, 0, 0) }, // off+len > n
		func() { Fill(Random, make([]int32, 1), -1, 1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("Fill accepted invalid arguments")
				}
			}()
			bad()
		}()
	}
}

// stat computes the summary statistics cmd/distinspect prints.
func stat(vs []int32) (min, max int32, mean, sd float64) {
	min, max = math.MaxInt32, math.MinInt32
	var sum float64
	for _, v := range vs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += float64(v)
	}
	mean = sum / float64(len(vs))
	var varsum float64
	for _, v := range vs {
		d := float64(v) - mean
		varsum += d * d
	}
	return min, max, mean, math.Sqrt(varsum / float64(len(vs)))
}

// TestStatisticalSanity pins the per-kind summary statistics to the bounds
// the Helman–Bader–JáJá definitions imply (the same numbers
// cmd/distinspect reports).
func TestStatisticalSanity(t *testing.T) {
	const n = 200_000
	full := float64(keyRange)         // 2³¹
	uniformSD := full / math.Sqrt(12) // sd of U[0, 2³¹)

	check := func(k Kind, cond bool, format string, args ...any) {
		t.Helper()
		if !cond {
			t.Errorf("%v: "+format, append([]any{k}, args...)...)
		}
	}
	for _, k := range Kinds {
		vs := Generate(k, n, 42)
		min, max, mean, sd := stat(vs)
		switch k {
		case Random:
			check(k, mean > 0.49*full && mean < 0.51*full, "mean %.3g", mean)
			check(k, sd > 0.95*uniformSD && sd < 1.05*uniformSD, "sd %.3g", sd)
			check(k, float64(min) < 0.001*full && float64(max) > 0.999*full,
				"range [%d, %d]", min, max)
		case Gauss:
			check(k, mean > 0.49*full && mean < 0.51*full, "mean %.3g", mean)
			// Averaging 4 uniforms halves the sd.
			check(k, sd > 0.45*uniformSD && sd < 0.55*uniformSD, "sd %.3g", sd)
		case Buckets, Staggered:
			// Permutations of equal uniform subranges: uniform aggregate stats.
			check(k, mean > 0.48*full && mean < 0.52*full, "mean %.3g", mean)
			check(k, sd > 0.9*uniformSD && sd < 1.1*uniformSD, "sd %.3g", sd)
		case Zero:
			check(k, min == 0 && max == 0, "range [%d, %d]", min, max)
		case Sorted, Reverse:
			check(k, mean > 0.49*full && mean < 0.51*full, "mean %.3g", mean)
			check(k, min == 0 && float64(max) > 0.999*full, "range [%d, %d]", min, max)
		case RandDup:
			distinct := map[int32]bool{}
			for _, v := range vs {
				distinct[v] = true
			}
			check(k, len(distinct) == 1024, "%d distinct keys, want 1024", len(distinct))
		case WorstCase:
			check(k, min == 0 && float64(max) > 0.99*full, "range [%d, %d]", min, max)
			// Pipe organ: symmetric around the midpoint.
			check(k, vs[0] == vs[n-1] && vs[n/4] == vs[n-1-n/4], "not symmetric")
		}
	}
}

// TestOrderedKinds pins the monotone shapes.
func TestOrderedKinds(t *testing.T) {
	const n = 10_000
	sorted := Generate(Sorted, n, 1)
	rev := Generate(Reverse, n, 1)
	worst := Generate(WorstCase, n, 1)
	for i := 1; i < n; i++ {
		if sorted[i] < sorted[i-1] {
			t.Fatalf("Sorted decreases at %d", i)
		}
		if rev[i] > rev[i-1] {
			t.Fatalf("Reverse increases at %d", i)
		}
		if i < n/2 && worst[i] < worst[i-1] {
			t.Fatalf("WorstCase decreases at %d before the midpoint", i)
		}
		if i > n/2 && worst[i] > worst[i-1] {
			t.Fatalf("WorstCase increases at %d after the midpoint", i)
		}
		if sorted[i] != rev[n-1-i] {
			t.Fatalf("Reverse is not the mirror of Sorted at %d", i)
		}
	}
}

// TestBucketsStructure: within each of the p blocks, runs of n/p² elements
// must come from successive equal subranges.
func TestBucketsStructure(t *testing.T) {
	const n, p = 6400, 4 // blockSize 1600, subSize 400
	vs := GenerateP(Buckets, n, 3, p)
	width := int64(keyRange / p)
	for i, v := range vs {
		j := int64((i % (n / p)) / (n / (p * p)))
		if j > p-1 {
			j = p - 1
		}
		if int64(v) < j*width || int64(v) >= (j+1)*width {
			t.Fatalf("index %d: value %d outside subrange %d", i, v, j)
		}
	}
}

// TestStaggeredStructure: block i draws from subrange 2i+1 (i < p/2) or
// 2i−p (i ≥ p/2).
func TestStaggeredStructure(t *testing.T) {
	const n, p = 8000, 8
	vs := GenerateP(Staggered, n, 3, p)
	width := int64(keyRange / p)
	for i, v := range vs {
		ib := i / (n / p)
		bucket := int64(2*ib - p)
		if ib < p/2 {
			bucket = int64(2*ib + 1)
		}
		if int64(v) < bucket*width || int64(v) >= (bucket+1)*width {
			t.Fatalf("index %d (block %d): value %d outside subrange %d", i, ib, v, bucket)
		}
	}
}
