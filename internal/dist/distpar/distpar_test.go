package distpar

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// TestParallelBitIdentical is the subsystem's central contract: generating
// on a scheduler team must reproduce the sequential output bit for bit for
// every kind, across seeds, block parameters and chunk-misaligned sizes.
func TestParallelBitIdentical(t *testing.T) {
	s := core.New(core.Options{P: 8})
	defer s.Shutdown()
	sizes := []int{MinParallel, MinParallel + 1, 3*MinParallel - 7, 1 << 18}
	for _, k := range dist.Kinds {
		for _, seed := range []uint64{0, 1, 42, 1 << 40} {
			for _, n := range sizes {
				want := dist.Generate(k, n, seed)
				got := Generate(s, k, n, seed)
				diff := -1
				for i := range want {
					if want[i] != got[i] {
						diff = i
						break
					}
				}
				if diff >= 0 {
					t.Fatalf("%v seed=%d n=%d: parallel differs at %d: %d != %d",
						k, seed, n, diff, want[diff], got[diff])
				}
			}
		}
	}
}

func TestParallelBitIdenticalWithP(t *testing.T) {
	s := core.New(core.Options{P: 4})
	defer s.Shutdown()
	const n = MinParallel + 4097
	for _, k := range []dist.Kind{dist.Buckets, dist.Staggered} {
		for _, p := range []int{1, 3, 16, 64} {
			want := dist.GenerateP(k, n, 7, p)
			got := GenerateP(s, k, n, 7, p)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v p=%d: parallel differs at %d", k, p, i)
				}
			}
		}
	}
}

func TestSequentialFallback(t *testing.T) {
	// Small inputs, single-worker schedulers and a nil scheduler must all
	// take the sequential path and still match.
	s1 := core.New(core.Options{P: 1})
	defer s1.Shutdown()
	for _, k := range dist.Kinds {
		want := dist.Generate(k, 1000, 5)
		for name, got := range map[string][]int32{
			"small": Generate(s1, k, 1000, 5),
			"nil":   Generate(nil, k, 1000, 5),
		} {
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v/%s: differs at %d", k, name, i)
				}
			}
		}
	}
	if got := Generate(nil, dist.Random, -3, 1); len(got) != 0 {
		t.Fatalf("negative n returned %d values", len(got))
	}
}
