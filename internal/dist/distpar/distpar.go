// Package distpar generates benchmark inputs in parallel on the
// repository's own team-building scheduler — the first in-repo consumer of
// the scheduler outside the benchmarks themselves. A full-width team fills
// disjoint contiguous chunks via dist.Fill (core.ForDynamic's dynamic
// schedule with the core.DefaultChunk chunk size), and because every dist
// generator is positional the result is bit-identical to the sequential
// dist.Generate output for every kind, seed and block parameter.
//
// This lives in a subpackage because internal/core's in-package tests
// import internal/dist; dist itself therefore must not import core.
package distpar

import (
	"repro/internal/core"
	"repro/internal/dist"
)

// MinParallel is the input size below which GenerateP falls back to
// sequential generation: a team build plus barrier costs more than filling
// a few tens of thousands of elements.
const MinParallel = 1 << 16

// Generate is dist.Generate computed on s. The output is bit-identical to
// dist.Generate(k, n, seed).
func Generate(s *core.Scheduler, k dist.Kind, n int, seed uint64) []int32 {
	return GenerateP(s, k, n, seed, dist.DefaultP)
}

// GenerateP is dist.GenerateP computed on s: a team of s.MaxTeam() workers
// fills disjoint contiguous chunks claimed dynamically (core.DefaultChunk
// elements per claim, so per-kind cost differences — Gauss draws four
// values per element, Sorted none — balance inside the team). Inputs below
// MinParallel (or a single-worker scheduler) are generated sequentially;
// every generator is positional, so the output is bit-identical to
// dist.GenerateP(k, n, seed, p) whichever path and chunk interleaving is
// taken. The fill runs as its own one-shot task group, so concurrent
// generations (and sorts) on a shared scheduler do not wait on each other.
func GenerateP(s *core.Scheduler, k dist.Kind, n int, seed uint64, p int) []int32 {
	if n < 0 {
		n = 0
	}
	np := 0
	if s != nil {
		np = s.MaxTeam()
	}
	if np < 2 || n < MinParallel {
		return dist.GenerateP(k, n, seed, p)
	}
	vs := make([]int32, n)
	g := s.NewGroup()
	FillGroup(g, k, vs, seed, p)
	g.Wait()
	return vs
}

// FillGroup spawns a team fill of vs with distribution k into the
// caller-supplied group g and returns immediately; vs holds the first
// len(vs) values of the distribution (bit-identical to dist.GenerateP(k,
// len(vs), seed, p)) once g.Wait() observes the group's quiescence. Small
// buffers are filled by a single solo task rather than a team.
func FillGroup(g *core.Group, k dist.Kind, vs []int32, seed uint64, p int) {
	n := len(vs)
	if n == 0 {
		return
	}
	np := g.Scheduler().MaxTeam()
	if np < 2 || n < MinParallel {
		g.Spawn(core.Solo(func(*core.Ctx) { dist.Fill(k, vs, 0, n, seed, p) }))
		return
	}
	g.Spawn(core.ForDynamic(np, n, core.DefaultChunk(np, n), func(_ *core.Ctx, lo, hi int) {
		dist.Fill(k, vs[lo:hi], lo, n, seed, p)
	}))
}

// GenerateWithWorkers generates on a short-lived scheduler of the given
// worker count (0 selects NumCPU), shut down before returning — the one
// policy for callers without a long-lived scheduler (harness rows, CLI
// input generation). workers == 1 or n < MinParallel takes the sequential
// path; the output is bit-identical either way.
func GenerateWithWorkers(workers int, k dist.Kind, n int, seed uint64) []int32 {
	if workers == 1 || n < MinParallel {
		return dist.Generate(k, n, seed)
	}
	s := core.New(core.Options{P: workers, Seed: seed})
	defer s.Shutdown()
	return Generate(s, k, n, seed)
}
