package par_test

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/par"
)

// fuzzSched is shared across fuzz executions: scheduler spin-up dominates a
// per-execution scheduler and would throttle the fuzzer to a crawl.
var fuzzSched = sync.OnceValue(func() *core.Scheduler {
	return core.New(core.Options{P: 4})
})

// FuzzScan cross-checks the team scans against their sequential oracles on
// fuzzer-chosen data, team size and scan flavor (wired into
// scripts/fuzz-smoke.sh).
func FuzzScan(f *testing.F) {
	f.Add(uint8(2), false, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(4), true, []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(uint8(1), false, []byte{})
	f.Fuzz(func(t *testing.T, npRaw uint8, exclusive bool, raw []byte) {
		s := fuzzSched()
		np := 1 + int(npRaw)%s.MaxTeam()
		data := make([]int32, len(raw)/4)
		for i := range data {
			data[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
		}
		add := func(a, b int32) int32 { return a + b }
		want := append([]int32(nil), data...)
		got := append([]int32(nil), data...)
		var wantTot, gotTot int32
		if exclusive {
			wantTot = par.SeqScanExclusive(0, add, want)
			s.Run(par.ScanExclusive(np, got, 0, add, &gotTot))
		} else {
			wantTot = par.SeqScanInclusive(0, add, want)
			s.Run(par.ScanInclusive(np, got, 0, add, &gotTot))
		}
		if gotTot != wantTot {
			t.Fatalf("np=%d exclusive=%v: total = %d, want %d", np, exclusive, gotTot, wantTot)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("np=%d exclusive=%v: scan differs at %d: %d != %d",
					np, exclusive, i, got[i], want[i])
			}
		}
	})
}
