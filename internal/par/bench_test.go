package par_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/par"
)

// Primitive throughput benchmarks (the BENCH_par.json trajectory emitted by
// scripts/bench.sh): each runs one full-width team task per iteration over
// a fixed 1M-element input, so ns/op tracks both the kernel and the
// team-formation overhead that the paper's model amortizes.

const benchN = 1 << 20

func benchSetup(b *testing.B) (*core.Scheduler, []int32) {
	b.Helper()
	s := core.New(core.Options{P: 0}) // NumCPU workers
	b.Cleanup(s.Shutdown)
	in := dist.Generate(dist.Random, benchN, 42)
	b.ReportAllocs()
	b.SetBytes(4 * benchN)
	return s, in
}

func BenchmarkReduce(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	add := func(a, x int64) int64 { return a + x }
	at := func(i int) int64 { return int64(in[i]) }
	var out int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(par.Reduce(np, benchN, 0, at, add, &out))
	}
	_ = out
}

func BenchmarkScanInclusive(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	add := func(a, x int32) int32 { return a + x }
	data := make([]int32, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, in)
		s.Run(par.ScanInclusive(np, data, 0, add, nil))
	}
}

func BenchmarkScanExclusive(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	add := func(a, x int32) int32 { return a + x }
	data := make([]int32, benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(data, in)
		s.Run(par.ScanExclusive(np, data, 0, add, nil))
	}
}

func BenchmarkPack(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	keep := func(_ int, v int32) bool { return v%2 == 0 }
	dst := make([]int32, benchN)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(par.Pack(np, in, dst, keep, &n))
	}
	_ = n
}

func BenchmarkHistogram(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	const nb = 256
	bucketOf := func(i int) int { return int(uint32(in[i]) >> 23) } // top bits of [0, 2³¹)
	out := make([]int, nb)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(par.Histogram(np, benchN, nb, bucketOf, out))
	}
}

func BenchmarkMinMax(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	var mn, mx int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(par.MinMax(np, in, &mn, &mx))
	}
	_, _ = mn, mx
}

func BenchmarkMap(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	dst := make([]int32, benchN)
	f := func(i int) int32 { return in[i] ^ int32(i) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(par.Map(np, dst, f))
	}
}
