package par

import "repro/internal/core"

// Hist is the shared state of a team histogram: one bucket-count row per
// member plus the merged totals. The per-(member, bucket) matrix is kept
// readable after the collective because mixed-mode sorts scatter from
// exactly that matrix (each member's elements land at its own reserved
// offsets inside each bucket). Allocate once per task with NewHist.
type Hist struct {
	nb     int
	rows   [][]int
	totals []int
}

// NewHist returns histogram state for teams of up to np members over nb
// buckets.
func NewHist(np, nb int) *Hist {
	h := &Hist{nb: nb, rows: make([][]int, np), totals: make([]int, nb)}
	for m := range h.rows {
		h.rows[m] = make([]int, nb)
	}
	return h
}

// NumBuckets returns the bucket count nb.
func (h *Hist) NumBuckets() int { return h.nb }

// Histogram is a collective counting bucketOf(i) ∈ [0, nb) for every
// i in [0, n): each member counts its static chunk (Chunk) into its private
// row, and after the team barrier the buckets are merged team-parallel
// (member m sums the m-th static chunk of the bucket range across all
// rows). When it returns, every member may read Totals and Row. A team of
// size 1 runs the sequential oracle.
//
// Callers that scatter from the count matrix must walk the same member
// chunks: element i was counted by the member whose Chunk(lid, w, n) range
// contains i.
//
//repro:barrier every member must reach the trailing barrier before Totals/Row are readable
func (h *Hist) Histogram(ctx *core.Ctx, n int, bucketOf func(i int) int) {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	if w == 1 {
		seqHistogramInto(h.rows[0], n, bucketOf)
		copy(h.totals, h.rows[0])
		return
	}
	checkTeam(w, len(h.rows))

	// Phase 1: count this member's chunk into its private row.
	row := h.rows[lid]
	clear(row)
	lo, hi := Chunk(lid, w, n)
	for i := lo; i < hi; i++ {
		row[bucketOf(i)]++
	}
	ctx.Barrier()

	// Phase 2: merge totals team-parallel — member m owns the m-th static
	// chunk of the bucket range.
	blo, bhi := Chunk(lid, w, h.nb)
	for b := blo; b < bhi; b++ {
		t := 0
		for m := 0; m < w; m++ {
			t += h.rows[m][b]
		}
		h.totals[b] = t
	}
	// Trailing barrier: all totals are merged (and the state reusable) for
	// every member once it returns.
	ctx.Barrier()
}

// Totals returns the merged per-bucket counts of the last Histogram call.
// Valid on every member after the collective returns; do not mutate.
func (h *Hist) Totals() []int { return h.totals }

// Row returns member m's private bucket counts of the last Histogram call.
// Valid on every member after the collective returns; do not mutate.
func (h *Hist) Row(m int) []int { return h.rows[m] }

// Cursors fills cur (len ≥ nb) with member lid's private scatter cursors for
// a conflict-free stable scatter from the last Histogram call: cur[b] =
// starts[b] plus everything members 0 … lid−1 counted into bucket b, so when
// every member writes its own chunk's elements at its own cursors (advancing
// cur[b] per element), the buckets come out contiguous, member-ordered, and
// write-conflict-free. starts must hold the bucket start offsets (typically
// the exclusive scan of Totals). The scatter must walk the same member
// chunks the histogram counted (Chunk).
func (h *Hist) Cursors(lid int, starts, cur []int) {
	copy(cur[:h.nb], starts[:h.nb])
	for m := 0; m < lid; m++ {
		row := h.rows[m]
		for b := 0; b < h.nb; b++ {
			cur[b] += row[b]
		}
	}
}

// SeqHistogram is the sequential oracle: the bucket counts of
// bucketOf(0) … bucketOf(n−1) over nb buckets.
func SeqHistogram(n, nb int, bucketOf func(i int) int) []int {
	counts := make([]int, nb)
	seqHistogramInto(counts, n, bucketOf)
	return counts
}

func seqHistogramInto(counts []int, n int, bucketOf func(i int) int) {
	clear(counts)
	for i := 0; i < n; i++ {
		counts[bucketOf(i)]++
	}
}

// Histogram returns a team task of np members counting bucketOf(i) ∈
// [0, nb) for i in [0, n) into out (len ≥ nb).
func Histogram(np, n, nb int, bucketOf func(i int) int, out []int) core.Task {
	if np == 1 {
		return core.Solo(func(*core.Ctx) { seqHistogramInto(out[:nb], n, bucketOf) })
	}
	h := NewHist(np, nb)
	return core.Func(np, func(ctx *core.Ctx) {
		h.Histogram(ctx, n, bucketOf)
		if ctx.LocalID() == 0 {
			copy(out, h.totals)
		}
	})
}
