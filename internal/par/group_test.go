package par_test

import (
	"sync"
	"testing"

	"repro/internal/dist"
	"repro/internal/par"
)

// TestStandaloneTasksInGroups runs the standalone-task forms of several
// primitives concurrently, each client in its own quiescence group on one
// shared scheduler, and checks every client's results against the
// sequential oracles: team-parallel kernels from independent clients must
// neither corrupt each other nor wait on each other's quiescence.
func TestStandaloneTasksInGroups(t *testing.T) {
	s := propSched(t)
	const clients = 6
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			in := dist.Generate(dist.Kinds[c%len(dist.Kinds)], propN, uint64(c))
			add := func(a, b int64) int64 { return a + b }
			at := func(i int) int64 { return int64(in[i]) }
			wantSum := par.SeqReduce(len(in), 0, at, add)
			wantMin, wantMax := par.SeqMinMax(in)

			// Batch two independent primitives into one group and join
			// them with a single Wait; then run a third via g.Run.
			g := s.NewGroup()
			var gotSum int64
			var gotMin, gotMax int32
			np := 2 + c%2*2 // alternate team sizes 2 and 4 across clients
			g.Spawn(par.Reduce(np, len(in), 0, at, add, &gotSum))
			g.Spawn(par.MinMax(np, in, &gotMin, &gotMax))
			g.Wait()
			if gotSum != wantSum {
				t.Errorf("client %d: reduce = %d, want %d", c, gotSum, wantSum)
			}
			if gotMin != wantMin || gotMax != wantMax {
				t.Errorf("client %d: minmax = (%d, %d), want (%d, %d)",
					c, gotMin, gotMax, wantMin, wantMax)
			}

			dst := make([]int64, len(in))
			g.Run(par.Map(np, dst, at))
			for i := range dst {
				if dst[i] != at(i) {
					t.Errorf("client %d: map[%d] = %d, want %d", c, i, dst[i], at(i))
					break
				}
			}
			if g.Pending() != 0 {
				t.Errorf("client %d: group pending = %d after Wait", c, g.Pending())
			}
		}(c)
	}
	wg.Wait()
}
