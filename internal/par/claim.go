package par

import "sync/atomic"

// Claimer hands out the blocks 0 … nb−1 of an array to any number of
// concurrent claimants from both ends — the end-pointer acquisition
// pattern of the paper's data-parallel partitioning step (§5): "Each
// thread takes one block from each side of the array … until we run out of
// free blocks". A shared budget guarantees that the two ends never overlap:
// exactly nb claims succeed in total, each returning a distinct block.
//
// Left hands out blocks 0, 1, 2, … and Right hands out nb−1, nb−2, …;
// which claim gets which block depends on the interleaving, but the sets
// {left-claimed} and {right-claimed} are always a prefix and a suffix of
// the block range (TakenLeft/TakenRight delimit them after the claimants
// are done).
type Claimer struct {
	nb        int
	remaining atomic.Int64 // blocks not yet claimed (may go negative)
	left      atomic.Int64 // blocks handed out from the low end
	right     atomic.Int64 // blocks handed out from the high end
}

// NewClaimer returns a claimer over the blocks 0 … nb−1.
func NewClaimer(nb int) *Claimer {
	c := &Claimer{nb: nb}
	c.remaining.Store(int64(nb))
	return c
}

// Left claims the next block from the low end; ok is false when all blocks
// are gone.
func (c *Claimer) Left() (block int, ok bool) {
	if c.remaining.Add(-1) < 0 {
		return 0, false
	}
	return int(c.left.Add(1)) - 1, true
}

// Right claims the next block from the high end; ok is false when all
// blocks are gone.
func (c *Claimer) Right() (block int, ok bool) {
	if c.remaining.Add(-1) < 0 {
		return 0, false
	}
	return c.nb - int(c.right.Add(1)), true
}

// NB returns the total number of blocks.
func (c *Claimer) NB() int { return c.nb }

// TakenLeft returns how many blocks were claimed from the low end (the
// blocks 0 … TakenLeft()−1). Stable only once the claimants are done.
func (c *Claimer) TakenLeft() int { return int(c.left.Load()) }

// TakenRight returns how many blocks were claimed from the high end (the
// blocks nb−TakenRight() … nb−1). Stable only once the claimants are done.
func (c *Claimer) TakenRight() int { return int(c.right.Load()) }
