// Package par provides reusable team-parallel primitives on top of the
// team-building scheduler: Reduce, ScanInclusive/ScanExclusive, Pack,
// Histogram, MinMax and Map, plus the two-ended block Claimer of the
// paper's partitioning step.
//
// The paper (Wimmer & Träff, SPAA 2011) argues that deterministically built
// worker teams let data-parallel kernels run inside task-parallel
// computations: a task declares a thread requirement np > 1 and its Run is
// entered simultaneously by np consecutively numbered workers that may
// synchronize through ctx.Barrier(). This package turns that execution model
// into a library, mapping each primitive onto the paper's mixed-mode model
// as one or more barrier-separated phases executed by the whole team:
//
//   - Reduce: each member folds a private partial over its static chunk,
//     then the partials are tree-combined across the team barrier — the
//     all-reduce pattern of the paper's §4 synchronization discussion.
//   - ScanInclusive/ScanExclusive: the two-phase block scan — a local fold
//     per member chunk, an exclusive scan of the per-member block sums at
//     the barrier, and a fixup pass rewriting each chunk with its offset.
//   - Pack: stable filter/compaction as flag-count, exclusive scan of the
//     counts, and an order-preserving scatter — the building block that
//     makes partition-like kernels compositional instead of hand-rolled.
//   - Histogram: per-member bucket counts merged team-parallel at the
//     barrier; the per-(member, bucket) matrix is retained because
//     mixed-mode sorts (internal/ssort) scatter from exactly that matrix.
//   - MinMax: the all-reduce specialized to ordered extrema.
//   - Map: an order-independent elementwise kernel under the dynamic
//     chunk-claiming schedule (the end-pointer acquisition of §5).
//   - Claimer: the two-ended block acquisition of the data-parallel
//     partitioning step itself, reused by internal/qsort's Algorithm 11.
//
// Every primitive exists in two forms: a collective method callable from
// inside a running team task (every member of the team must call it, like
// an MPI collective), and a standalone core.Task constructor for callers
// outside the scheduler. Each has a sequential oracle (the Seq* functions)
// that the collective dispatches to when the executing team has size 1, so
// single-threaded execution is byte-for-byte the reference semantics that
// the property tests compare team executions against.
//
// Shared state objects (Reducer, Scanner, Packer, Hist, MinMaxer) are
// allocated once by the task's creator and shared by the team via the task
// closure. Collectives end with a barrier, so a state object may be reused
// for any number of consecutive phases by the same team.
//
// The standalone-task constructors compose with the scheduler's quiescence
// groups: spawn the returned task through a core.Group (g.Run for a
// blocking call, g.Spawn + g.Wait to batch several primitives) and the
// primitive completes within that group alone, so independent clients can
// run team-parallel kernels concurrently on one shared scheduler without
// waiting for each other's work.
package par

// Chunk returns the static-schedule chunk [lo, hi) of team member lid of w
// over the index range [0, n): the lid-th of w near-equal contiguous
// chunks (the same split as core.ForStatic and Ctx.TeamFor). Primitives
// whose member→index mapping must agree across phases (Histogram counting
// vs. the caller's scatter) document that they use Chunk.
func Chunk(lid, w, n int) (lo, hi int) {
	return lid * n / w, (lid + 1) * n / w
}

// slot is a padded per-member cell: 64 bytes of trailing padding keep
// neighboring members' writes on distinct cache lines (same idea as
// teamsync.ReduceInt64, generalized over the element type).
type slot[A any] struct {
	v A
	_ [64]byte
}

// checkTeam panics when the executing team is wider than the state object
// was allocated for — a construction bug that would otherwise corrupt
// neighboring slots.
func checkTeam(w, np int) {
	if w > np {
		panic("par: team wider than the primitive's state (built for fewer members)")
	}
}
