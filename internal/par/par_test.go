package par_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/par"
)

// The property suite checks every primitive against its sequential oracle
// across all registered input distributions and team sizes {1, 2, 3, 7, P}
// (1 = oracle path, powers of two = full teams, 3 and 7 = Refinement 2's
// rounded-up teams with surplus members).

const propN = 10_007 // odd, so chunk boundaries never align with anything

func teamSizes(s *core.Scheduler) []int {
	return []int{1, 2, 3, 7, s.MaxTeam()}
}

func propSched(t testing.TB) *core.Scheduler {
	t.Helper()
	s := core.New(core.Options{P: 8})
	t.Cleanup(s.Shutdown)
	return s
}

// forEachInput runs f on one input of every registered distribution.
func forEachInput(t *testing.T, f func(t *testing.T, kind dist.Kind, in []int32)) {
	t.Helper()
	for _, kind := range dist.Kinds {
		in := dist.Generate(kind, propN, 7)
		t.Run(kind.String(), func(t *testing.T) { f(t, kind, in) })
	}
}

func TestReduceMatchesOracle(t *testing.T) {
	s := propSched(t)
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		add := func(a, b int64) int64 { return a + b }
		at := func(i int) int64 { return int64(in[i]) }
		want := par.SeqReduce(len(in), 0, at, add)
		for _, np := range teamSizes(s) {
			var got int64
			s.Run(par.Reduce(np, len(in), 0, at, add, &got))
			if got != want {
				t.Fatalf("np=%d: reduce = %d, want %d", np, got, want)
			}
		}
	})
}

func TestScanMatchesOracle(t *testing.T) {
	s := propSched(t)
	add := func(a, b int32) int32 { return a + b } // wraps identically in oracle and team
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		wantIncl := append([]int32(nil), in...)
		wantTotIncl := par.SeqScanInclusive(0, add, wantIncl)
		wantExcl := append([]int32(nil), in...)
		wantTotExcl := par.SeqScanExclusive(0, add, wantExcl)
		for _, np := range teamSizes(s) {
			gotI := append([]int32(nil), in...)
			var totI int32
			s.Run(par.ScanInclusive(np, gotI, 0, add, &totI))
			checkSlice(t, "inclusive", np, gotI, wantIncl)
			if totI != wantTotIncl {
				t.Fatalf("np=%d: inclusive total = %d, want %d", np, totI, wantTotIncl)
			}
			gotE := append([]int32(nil), in...)
			var totE int32
			s.Run(par.ScanExclusive(np, gotE, 0, add, &totE))
			checkSlice(t, "exclusive", np, gotE, wantExcl)
			if totE != wantTotExcl {
				t.Fatalf("np=%d: exclusive total = %d, want %d", np, totE, wantTotExcl)
			}
		}
	})
}

func TestPackMatchesOracle(t *testing.T) {
	s := propSched(t)
	keep := func(_ int, v int32) bool { return v%3 == 0 }
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		wantDst := make([]int32, len(in))
		wantN := par.SeqPack(in, wantDst, keep)
		for _, np := range teamSizes(s) {
			dst := make([]int32, len(in))
			var n int
			s.Run(par.Pack(np, in, dst, keep, &n))
			if n != wantN {
				t.Fatalf("np=%d: pack count = %d, want %d", np, n, wantN)
			}
			checkSlice(t, "pack", np, dst[:n], wantDst[:wantN])
		}
	})
}

func TestHistogramMatchesOracle(t *testing.T) {
	s := propSched(t)
	const nb = 37
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		bucketOf := func(i int) int { return int(uint32(in[i]) % nb) }
		want := par.SeqHistogram(len(in), nb, bucketOf)
		for _, np := range teamSizes(s) {
			got := make([]int, nb)
			s.Run(par.Histogram(np, len(in), nb, bucketOf, got))
			checkSlice(t, "histogram", np, got, want)
		}
	})
}

func TestMinMaxMatchesOracle(t *testing.T) {
	s := propSched(t)
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		wantMin, wantMax := par.SeqMinMax(in)
		for _, np := range teamSizes(s) {
			var gotMin, gotMax int32
			s.Run(par.MinMax(np, in, &gotMin, &gotMax))
			if gotMin != wantMin || gotMax != wantMax {
				t.Fatalf("np=%d: minmax = (%d, %d), want (%d, %d)",
					np, gotMin, gotMax, wantMin, wantMax)
			}
		}
	})
}

func TestMapMatchesOracle(t *testing.T) {
	s := propSched(t)
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		f := func(i int) int64 { return 3*int64(in[i]) + int64(i) }
		want := make([]int64, len(in))
		for i := range want {
			want[i] = f(i)
		}
		for _, np := range teamSizes(s) {
			got := make([]int64, len(in))
			s.Run(par.Map(np, got, f))
			checkSlice(t, "map", np, got, want)
		}
	})
}

// TestEmptyAndTinyInputs pins the edge cases where chunks are empty: more
// team members than elements, and zero elements.
func TestEmptyAndTinyInputs(t *testing.T) {
	s := propSched(t)
	add := func(a, b int64) int64 { return a + b }
	for _, n := range []int{0, 1, 2, 5} {
		in := make([]int64, n)
		for i := range in {
			in[i] = int64(i + 1)
		}
		for _, np := range teamSizes(s) {
			var sum int64
			s.Run(par.Reduce(np, n, 0, func(i int) int64 { return in[i] }, add, &sum))
			want := par.SeqReduce(n, 0, func(i int) int64 { return in[i] }, add)
			if sum != want {
				t.Fatalf("n=%d np=%d: reduce = %d, want %d", n, np, sum, want)
			}
			scan := append([]int64(nil), in...)
			s.Run(par.ScanExclusive(np, scan, 0, add, nil))
			wantScan := append([]int64(nil), in...)
			par.SeqScanExclusive(0, add, wantScan)
			checkSlice(t, "tiny-scan", np, scan, wantScan)
			var mn, mx int64
			s.Run(par.MinMax(np, in, &mn, &mx))
			wantMn, wantMx := par.SeqMinMax(in)
			if mn != wantMn || mx != wantMx {
				t.Fatalf("n=%d np=%d: minmax = (%d, %d), want (%d, %d)",
					n, np, mn, mx, wantMn, wantMx)
			}
		}
	}
}

// TestPackStability checks that Pack preserves the relative order of kept
// elements (the property samplesort's scatter relies on).
func TestPackStability(t *testing.T) {
	s := propSched(t)
	type pair struct{ key, seq int32 }
	n := 5000
	src := make([]pair, n)
	rng := dist.Generate(dist.RandDup, n, 3)
	for i := range src {
		src[i] = pair{key: rng[i], seq: int32(i)}
	}
	keep := func(_ int, v pair) bool { return v.key%2 == 0 }
	for _, np := range teamSizes(s) {
		dst := make([]pair, n)
		var cnt int
		s.Run(par.Pack(np, src, dst, keep, &cnt))
		for i := 1; i < cnt; i++ {
			if dst[i].seq <= dst[i-1].seq {
				t.Fatalf("np=%d: pack not stable at %d: seq %d after %d",
					np, i, dst[i].seq, dst[i-1].seq)
			}
		}
	}
}

// TestClaimer checks that the two-ended claimer hands out every block
// exactly once, as a prefix from the left and a suffix from the right.
func TestClaimer(t *testing.T) {
	s := propSched(t)
	const nb = 1000
	c := par.NewClaimer(nb)
	seen := make([]int32, nb) // written once each; verified after Run
	np := s.MaxTeam()
	s.Run(core.Func(np, func(ctx *core.Ctx) {
		for {
			l, okL := c.Left()
			if okL {
				seen[l]++
			}
			r, okR := c.Right()
			if okR {
				seen[r]++
			}
			if !okL && !okR {
				return
			}
		}
	}))
	for b, n := range seen {
		if n != 1 {
			t.Fatalf("block %d claimed %d times", b, n)
		}
	}
	la, ra := c.TakenLeft(), c.TakenRight()
	if la+ra != nb {
		t.Fatalf("taken left %d + right %d != %d", la, ra, nb)
	}
}

// TestCollectiveReuse drives one team task through many consecutive
// collective phases on the same state objects — the reuse pattern
// internal/ssort depends on.
func TestCollectiveReuse(t *testing.T) {
	s := propSched(t)
	np := s.MaxTeam()
	in := dist.Generate(dist.Random, 4096, 9)
	add := func(a, b int64) int64 { return a + b }
	r := par.NewReducer(np, add)
	const rounds = 50
	totals := make([]int64, rounds)
	s.Run(core.Func(np, func(ctx *core.Ctx) {
		lo, hi := par.Chunk(ctx.LocalID(), ctx.TeamSize(), len(in))
		for round := 0; round < rounds; round++ {
			partial := int64(round)
			for i := lo; i < hi; i++ {
				partial += int64(in[i])
			}
			total := r.Reduce(ctx, partial)
			if ctx.LocalID() == 0 {
				totals[round] = total
			}
		}
	}))
	base := par.SeqReduce(len(in), 0, func(i int) int64 { return int64(in[i]) }, add)
	for round, got := range totals {
		want := base + int64(round)*int64(np)
		if got != want {
			t.Fatalf("round %d: total = %d, want %d", round, got, want)
		}
	}
}

func checkSlice[T comparable](t *testing.T, what string, np int, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("np=%d: %s length %d, want %d", np, what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("np=%d: %s differs at %d: %v != %v", np, what, i, got[i], want[i])
		}
	}
}
