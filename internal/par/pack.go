package par

import "repro/internal/core"

// Packer is the shared state of a team compaction: one padded count slot
// per member. Allocate once per task with NewPacker and share via the task
// closure.
type Packer[T any] struct {
	counts []slot[int]
}

// NewPacker returns compaction state for teams of up to np members.
func NewPacker[T any](np int) *Packer[T] {
	return &Packer[T]{counts: make([]slot[int], np)}
}

// Pack is a collective stable compaction: the elements src[i] with
// keep(i, src[i]) true are copied into dst in their original order, and
// the kept count is returned to every member. It is the flag-scan +
// scatter pattern: each member counts the keeps of its static chunk
// (Chunk), the counts are scanned exclusively across the team barrier, and
// each member scatters its survivors starting at its prefix offset —
// chunks are contiguous and in member order, so stability is free.
//
// dst must not alias src and must have room for every kept element; keep
// must be pure (it is evaluated twice per index). A team of size 1 runs
// the sequential oracle.
//
//repro:barrier every member must reach the trailing barrier before dst and the state are reusable
func (p *Packer[T]) Pack(ctx *core.Ctx, src, dst []T, keep func(i int, v T) bool) int {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	if w == 1 {
		return SeqPack(src, dst, keep)
	}
	checkTeam(w, len(p.counts))
	lo, hi := Chunk(lid, w, len(src))

	// Phase 1: flag-count this member's chunk.
	c := 0
	for i := lo; i < hi; i++ {
		if keep(i, src[i]) {
			c++
		}
	}
	p.counts[lid].v = c
	ctx.Barrier()

	// Phase 2: exclusive prefix of the counts (recomputed per member) and
	// the order-preserving scatter of this member's survivors.
	off := 0
	for m := 0; m < lid; m++ {
		off += p.counts[m].v
	}
	total := off
	for m := lid; m < w; m++ {
		total += p.counts[m].v
	}
	j := off
	for i := lo; i < hi; i++ {
		if keep(i, src[i]) {
			dst[j] = src[i]
			j++
		}
	}
	// Trailing barrier: dst is fully packed (and the state reusable) for
	// every member once it returns.
	ctx.Barrier()
	return total
}

// SeqPack is the sequential oracle of Pack.
func SeqPack[T any](src, dst []T, keep func(i int, v T) bool) int {
	j := 0
	for i, v := range src {
		if keep(i, v) {
			dst[j] = v
			j++
		}
	}
	return j
}

// Pack returns a team task of np members stably compacting the kept
// elements of src into dst; the kept count is stored into *outN when
// non-nil. dst must not alias src.
func Pack[T any](np int, src, dst []T, keep func(i int, v T) bool, outN *int) core.Task {
	if np == 1 {
		return core.Solo(func(*core.Ctx) {
			n := SeqPack(src, dst, keep)
			if outN != nil {
				*outN = n
			}
		})
	}
	p := NewPacker[T](np)
	return core.Func(np, func(ctx *core.Ctx) {
		n := p.Pack(ctx, src, dst, keep)
		if ctx.LocalID() == 0 && outN != nil {
			*outN = n
		}
	})
}
