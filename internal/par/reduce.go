package par

import (
	"cmp"

	"repro/internal/core"
)

// Reducer is the shared state of a team reduction: one padded slot per
// member for the partial results. Allocate once per task with NewReducer
// and share via the task closure.
type Reducer[A any] struct {
	comb  func(A, A) A
	slots []slot[A]
}

// NewReducer returns reduction state for teams of up to np members.
// comb must be associative; it need not be commutative (partials are
// combined in member order).
func NewReducer[A any](np int, comb func(A, A) A) *Reducer[A] {
	return &Reducer[A]{comb: comb, slots: make([]slot[A], np)}
}

// Reduce is a collective: every member of the executing team passes its
// partial and every member receives the combined total. The partials are
// tree-combined in member order at the team barrier (each member evaluates
// the same balanced grouping, so non-commutative combines are
// deterministic). For a team of size 1 the partial already is the total
// (the sequential oracle path).
//
//repro:barrier every member must reach the trailing barrier before the state is reusable
func (r *Reducer[A]) Reduce(ctx *core.Ctx, partial A) A {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	if w == 1 {
		return partial
	}
	checkTeam(w, len(r.slots))
	r.slots[lid].v = partial
	ctx.Barrier()
	total := r.fold(0, w)
	// The trailing barrier makes the state reusable: no member may
	// overwrite its slot for a following phase while another member is
	// still folding this one.
	ctx.Barrier()
	return total
}

// fold combines slots [lo, hi) in balanced-tree grouping.
func (r *Reducer[A]) fold(lo, hi int) A {
	if hi-lo == 1 {
		return r.slots[lo].v
	}
	mid := lo + (hi-lo+1)/2
	return r.comb(r.fold(lo, mid), r.fold(mid, hi))
}

// SeqReduce is the sequential oracle: the fold of at(0) … at(n−1) onto
// identity in index order.
func SeqReduce[A any](n int, identity A, at func(i int) A, comb func(A, A) A) A {
	acc := identity
	for i := 0; i < n; i++ {
		acc = comb(acc, at(i))
	}
	return acc
}

// Reduce returns a team task of np members computing the associative fold
// of at(i) for i in [0, n) into *out. Each member folds one static chunk
// (Chunk), the partials are tree-combined at the team barrier, and member 0
// stores the total. np = 1 runs the sequential oracle.
func Reduce[A any](np, n int, identity A, at func(i int) A, comb func(A, A) A, out *A) core.Task {
	if np == 1 {
		return core.Solo(func(*core.Ctx) { *out = SeqReduce(n, identity, at, comb) })
	}
	r := NewReducer[A](np, comb)
	return core.Func(np, func(ctx *core.Ctx) {
		lo, hi := Chunk(ctx.LocalID(), ctx.TeamSize(), n)
		partial := identity
		for i := lo; i < hi; i++ {
			partial = comb(partial, at(i))
		}
		total := r.Reduce(ctx, partial)
		if ctx.LocalID() == 0 {
			*out = total
		}
	})
}

// extrema carries a running minimum/maximum; ok distinguishes "no elements
// seen yet" without needing ±∞ sentinels for arbitrary ordered types.
type extrema[T cmp.Ordered] struct {
	min, max T
	ok       bool
}

func combineExtrema[T cmp.Ordered](a, b extrema[T]) extrema[T] {
	switch {
	case !a.ok:
		return b
	case !b.ok:
		return a
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	return a
}

// MinMaxer is the shared state of a team min/max reduction.
type MinMaxer[T cmp.Ordered] struct {
	r *Reducer[extrema[T]]
}

// NewMinMaxer returns min/max state for teams of up to np members.
func NewMinMaxer[T cmp.Ordered](np int) *MinMaxer[T] {
	return &MinMaxer[T]{r: NewReducer(np, combineExtrema[T])}
}

// MinMax is a collective returning the minimum and maximum of data to every
// member of the executing team; each member scans one static chunk. For
// empty data both results are the zero value. A team of size 1 runs the
// sequential oracle.
//
//repro:barrier delegates its barrier obligation to the annotated Reduce
func (m *MinMaxer[T]) MinMax(ctx *core.Ctx, data []T) (T, T) {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	if w == 1 {
		return SeqMinMax(data)
	}
	lo, hi := Chunk(lid, w, len(data))
	e := scanExtrema(data[lo:hi])
	e = m.r.Reduce(ctx, e)
	return e.min, e.max
}

func scanExtrema[T cmp.Ordered](part []T) extrema[T] {
	var e extrema[T]
	for _, v := range part {
		if !e.ok {
			e = extrema[T]{min: v, max: v, ok: true}
			continue
		}
		if v < e.min {
			e.min = v
		}
		if v > e.max {
			e.max = v
		}
	}
	return e
}

// SeqMinMax is the sequential oracle of MinMax.
func SeqMinMax[T cmp.Ordered](data []T) (T, T) {
	e := scanExtrema(data)
	return e.min, e.max
}

// MinMax returns a team task of np members storing the minimum and maximum
// of data into *outMin and *outMax (zero values for empty data).
func MinMax[T cmp.Ordered](np int, data []T, outMin, outMax *T) core.Task {
	if np == 1 {
		return core.Solo(func(*core.Ctx) { *outMin, *outMax = SeqMinMax(data) })
	}
	m := NewMinMaxer[T](np)
	return core.Func(np, func(ctx *core.Ctx) {
		lo, hi := m.MinMax(ctx, data)
		if ctx.LocalID() == 0 {
			*outMin, *outMax = lo, hi
		}
	})
}

// Map returns a team task of np members computing dst[i] = f(i) for every
// i in [0, len(dst)). Elementwise kernels are order-independent, so the
// members claim chunks of core.DefaultChunk elements dynamically (the
// end-pointer acquisition schedule), which balances irregular per-index
// costs for free. np = 1 runs the plain sequential loop.
func Map[T any](np int, dst []T, f func(i int) T) core.Task {
	n := len(dst)
	if np == 1 {
		return core.Solo(func(*core.Ctx) {
			for i := range dst {
				dst[i] = f(i)
			}
		})
	}
	return core.ForDynamic(np, n, core.DefaultChunk(np, n), func(_ *core.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			dst[i] = f(i)
		}
	})
}
