package par

import "repro/internal/core"

// Scanner is the shared state of a team prefix scan: the identity and
// combine of the underlying monoid plus one padded slot per member for the
// block sums. Allocate once per task with NewScanner and share via the
// task closure.
type Scanner[A any] struct {
	id   A
	comb func(A, A) A
	sums []slot[A]
}

// NewScanner returns scan state for teams of up to np members over the
// monoid (identity, comb). comb must be associative.
func NewScanner[A any](np int, identity A, comb func(A, A) A) *Scanner[A] {
	return &Scanner[A]{id: identity, comb: comb, sums: make([]slot[A], np)}
}

// Inclusive is a collective replacing data[i] with comb(data[0] … data[i])
// in place and returning the total to every member. It is the two-phase
// block scan: each member folds its static chunk (Chunk) into a block sum,
// the block sums are scanned exclusively across the team barrier, and a
// fixup pass rewrites each chunk seeded with its member's offset. A team
// of size 1 runs the sequential oracle.
//
//repro:barrier delegates its barrier obligation to the annotated scan
func (s *Scanner[A]) Inclusive(ctx *core.Ctx, data []A) A {
	return s.scan(ctx, data, false)
}

// Exclusive is Inclusive's exclusive counterpart: data[i] becomes
// comb(data[0] … data[i−1]) (identity for i = 0). Returns the total.
//
//repro:barrier delegates its barrier obligation to the annotated scan
func (s *Scanner[A]) Exclusive(ctx *core.Ctx, data []A) A {
	return s.scan(ctx, data, true)
}

//repro:barrier every member must reach the trailing barrier before the state is reusable
func (s *Scanner[A]) scan(ctx *core.Ctx, data []A, exclusive bool) A {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	if w == 1 {
		if exclusive {
			return SeqScanExclusive(s.id, s.comb, data)
		}
		return SeqScanInclusive(s.id, s.comb, data)
	}
	checkTeam(w, len(s.sums))
	lo, hi := Chunk(lid, w, len(data))

	// Phase 1: local fold of this member's block.
	sum := s.id
	for i := lo; i < hi; i++ {
		sum = s.comb(sum, data[i])
	}
	s.sums[lid].v = sum
	ctx.Barrier()

	// Phase 2: every member computes its own exclusive prefix of the block
	// sums (and continues to the total) — O(w) work repeated per member is
	// cheaper than communicating it.
	off := s.id
	for m := 0; m < lid; m++ {
		off = s.comb(off, s.sums[m].v)
	}
	total := off
	for m := lid; m < w; m++ {
		total = s.comb(total, s.sums[m].v)
	}

	// Phase 3: fixup — rewrite the block seeded with the member's offset.
	run := off
	if exclusive {
		for i := lo; i < hi; i++ {
			v := data[i]
			data[i] = run
			run = s.comb(run, v)
		}
	} else {
		for i := lo; i < hi; i++ {
			run = s.comb(run, data[i])
			data[i] = run
		}
	}
	// Trailing barrier: the scan is complete (and the state reusable) for
	// every member once it returns.
	ctx.Barrier()
	return total
}

// SeqScanInclusive is the sequential oracle of Inclusive: an in-place
// running fold; returns the total.
func SeqScanInclusive[A any](identity A, comb func(A, A) A, data []A) A {
	run := identity
	for i := range data {
		run = comb(run, data[i])
		data[i] = run
	}
	return run
}

// SeqScanExclusive is the sequential oracle of Exclusive.
func SeqScanExclusive[A any](identity A, comb func(A, A) A, data []A) A {
	run := identity
	for i := range data {
		v := data[i]
		data[i] = run
		run = comb(run, v)
	}
	return run
}

// ScanInclusive returns a team task of np members computing the in-place
// inclusive prefix scan of data under (identity, comb). The total is
// stored into *outTotal when non-nil.
func ScanInclusive[A any](np int, data []A, identity A, comb func(A, A) A, outTotal *A) core.Task {
	return scanTask(np, data, identity, comb, outTotal, false)
}

// ScanExclusive returns a team task of np members computing the in-place
// exclusive prefix scan of data under (identity, comb). The total is
// stored into *outTotal when non-nil.
func ScanExclusive[A any](np int, data []A, identity A, comb func(A, A) A, outTotal *A) core.Task {
	return scanTask(np, data, identity, comb, outTotal, true)
}

func scanTask[A any](np int, data []A, identity A, comb func(A, A) A, outTotal *A, exclusive bool) core.Task {
	if np == 1 {
		return core.Solo(func(*core.Ctx) {
			var total A
			if exclusive {
				total = SeqScanExclusive(identity, comb, data)
			} else {
				total = SeqScanInclusive(identity, comb, data)
			}
			if outTotal != nil {
				*outTotal = total
			}
		})
	}
	s := NewScanner(np, identity, comb)
	return core.Func(np, func(ctx *core.Ctx) {
		total := s.scan(ctx, data, exclusive)
		if ctx.LocalID() == 0 && outTotal != nil {
			*outTotal = total
		}
	})
}
