package harness

import (
	"io"
	"strings"
	"testing"

	"repro/internal/dist"
)

// tinyConfig keeps unit tests fast while exercising every code path
// including team formation (small partition blocks).
func tinyConfig(withCilk bool) Config {
	return Config{
		Name:      "test",
		P:         4,
		Reps:      2,
		Sizes:     []int{20000},
		Kinds:     []dist.Kind{dist.Random, dist.Staggered},
		WithCilk:  withCilk,
		Seed:      1,
		Cutoff:    256,
		BlockSize: 256,
		MinBlocks: 2,
	}
}

func TestRunProducesAllCells(t *testing.T) {
	res, err := Run(tinyConfig(true), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		for alg := Algorithm(0); alg < numAlgorithms; alg++ {
			if !row.Ran[alg] {
				t.Fatalf("algorithm %v did not run", alg)
			}
			c := row.Cells[alg]
			if c.Avg <= 0 || c.Best <= 0 || c.Best > c.Avg+1e-12 {
				t.Fatalf("%v: implausible cell %+v", alg, c)
			}
		}
	}
}

func TestRunWithoutCilk(t *testing.T) {
	res, err := Run(tinyConfig(false), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Ran[Cilk] || row.Ran[CilkSample] {
			t.Fatal("cilk columns must be skipped")
		}
		if !row.Ran[MMPar] || !row.Ran[Fork] {
			t.Fatal("core columns missing")
		}
	}
}

func TestSpeedupDefinition(t *testing.T) {
	var r Row
	r.Cells[SeqSTL] = Cell{Avg: 2.0, Best: 1.5}
	r.Cells[MMPar] = Cell{Avg: 0.5, Best: 0.3}
	if su := r.Speedup(MMPar, Avg); su != 4.0 {
		t.Fatalf("avg speedup = %v, want 4", su)
	}
	if su := r.Speedup(MMPar, Best); su != 5.0 {
		t.Fatalf("best speedup = %v, want 5", su)
	}
}

func TestTableRendering(t *testing.T) {
	res, err := Run(tinyConfig(true), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Mode{Avg, Best} {
		out := res.Table(m)
		for _, frag := range []string{"Seq/STL", "SeqQS", "Fork", "Randfork",
			"Cilk sample", "MMPar", "Random", "Staggered", "20000"} {
			if !strings.Contains(out, frag) {
				t.Fatalf("table (%v) missing %q:\n%s", m, frag, out)
			}
		}
	}
}

func TestCSV(t *testing.T) {
	res, err := Run(tinyConfig(false), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// header + 2 rows × 7 algorithms
	if len(lines) != 1+2*7 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "distribution,size,algorithm") {
		t.Fatalf("csv header = %q", lines[0])
	}
}

func TestTableConfigs(t *testing.T) {
	wantP := map[int]int{1: 8, 2: 8, 3: 16, 4: 16, 5: 32, 6: 32, 7: 32, 8: 32, 9: 64, 10: 64}
	wantCilk := map[int]bool{1: true, 2: true, 5: true, 6: true}
	for tbl := 1; tbl <= 10; tbl++ {
		cfg, mode, err := TableConfig(tbl, true)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.P != wantP[tbl] {
			t.Fatalf("table %d: p=%d, want %d", tbl, cfg.P, wantP[tbl])
		}
		if cfg.WithCilk != wantCilk[tbl] {
			t.Fatalf("table %d: cilk=%v", tbl, cfg.WithCilk)
		}
		if wantMode := Mode(Best); tbl%2 == 1 {
			wantMode = Avg
			if mode != wantMode {
				t.Fatalf("table %d: mode=%v", tbl, mode)
			}
		} else if mode != wantMode {
			t.Fatalf("table %d: mode=%v", tbl, mode)
		}
	}
	if _, _, err := TableConfig(11, true); err == nil {
		t.Fatal("table 11 must be rejected")
	}
	if _, _, err := TableConfig(0, false); err == nil {
		t.Fatal("table 0 must be rejected")
	}
}

func TestModeString(t *testing.T) {
	if Avg.String() != "average" || Best.String() != "best" {
		t.Fatal("mode strings")
	}
}

func TestAlgorithmString(t *testing.T) {
	want := []string{"Seq/STL", "SeqQS", "Fork", "Randfork", "Cilk", "Cilk sample", "MMPar", "SSort", "MSort"}
	for a := Algorithm(0); a < numAlgorithms; a++ {
		if a.String() != want[a] {
			t.Fatalf("Algorithm(%d).String() = %q, want %q", a, a.String(), want[a])
		}
	}
}

func TestParseAlgorithm(t *testing.T) {
	for name, want := range map[string]Algorithm{
		"seqstl": SeqSTL, "SEQ": SeqSTL, "seqqs": SeqQS, "fork": Fork,
		"randfork": Randfork, "cilk": Cilk, "CilkSample": CilkSample,
		"mmpar": MMPar, "ssort": SSort, " samplesort ": SSort,
		"msort": MSort, "MergeSort": MSort,
	} {
		got, err := ParseAlgorithm(name)
		if err != nil || got != want {
			t.Fatalf("ParseAlgorithm(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("bogosort"); err == nil {
		t.Fatal("unknown algorithm must be rejected")
	}
}

func TestAlgsSubset(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.Algs = []Algorithm{SeqSTL, SSort}
	res, err := Run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		for a := Algorithm(0); a < numAlgorithms; a++ {
			want := a == SeqSTL || a == SSort
			if row.Ran[a] != want {
				t.Fatalf("algorithm %v ran=%v, want %v", a, row.Ran[a], want)
			}
		}
	}
	out := res.Table(Avg)
	if !strings.Contains(out, "SSort") || !strings.Contains(out, "SU") {
		t.Fatalf("subset table missing columns:\n%s", out)
	}
	if strings.Contains(out, "MMPar") {
		t.Fatalf("subset table must omit unselected columns:\n%s", out)
	}
	csv := res.CSV()
	if lines := strings.Split(strings.TrimSpace(csv), "\n"); len(lines) != 1+2*2 {
		t.Fatalf("subset csv lines = %d:\n%s", len(lines), csv)
	}
}

// TestMSortColumn runs the promoted MSort column in isolation and checks
// that it measures, renders with a speedup column, and sorts correctly
// (measure verifies every output).
func TestMSortColumn(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.Algs = []Algorithm{SeqSTL, MSort}
	res, err := Run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.Ran[MSort] {
			t.Fatal("MSort did not run")
		}
		if c := row.Cells[MSort]; c.Avg <= 0 || c.Best <= 0 {
			t.Fatalf("implausible MSort cell %+v", c)
		}
		if su := row.Speedup(MSort, Avg); su <= 0 {
			t.Fatalf("MSort speedup = %v", su)
		}
	}
	out := res.Table(Avg)
	if !strings.Contains(out, "MSort") || !strings.Contains(out, "SU") {
		t.Fatalf("MSort table missing columns:\n%s", out)
	}
}

// TestCSVWithoutBaseline checks that speedup fields are left empty (not a
// fictitious 0) when the Seq/STL baseline column is excluded.
func TestCSVWithoutBaseline(t *testing.T) {
	cfg := tinyConfig(false)
	cfg.Algs = []Algorithm{MMPar, SSort}
	res, err := Run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(res.CSV()), "\n")
	for _, line := range lines[1:] {
		if !strings.HasSuffix(line, ",,") {
			t.Fatalf("baseline-less csv row must end with empty speedups: %q", line)
		}
	}
}
