package harness

import (
	"fmt"
	"strings"

	"repro/internal/dist"
)

// This file is the single home of the flag vocabulary shared by the
// command-line harnesses (cmd/mmqsort, cmd/tables, cmd/throughput): the
// algorithm/size/distribution parsers live in harness.go, and the helpers
// below cover the remaining per-command copies — canonical flag names, the
// "all" column set, label lists for reports, the shared-scheduler algorithm
// subset, and the request-mix selector of cmd/throughput.

// FlagName returns the canonical lower-case -algos name of the column (the
// inverse of ParseAlgorithm on its primary spelling).
func (a Algorithm) FlagName() string {
	switch a {
	case SeqSTL:
		return "seqstl"
	case SeqQS:
		return "seqqs"
	case Fork:
		return "fork"
	case Randfork:
		return "randfork"
	case Cilk:
		return "cilk"
	case CilkSample:
		return "cilksample"
	case MMPar:
		return "mmpar"
	case SSort:
		return "ssort"
	case MSort:
		return "msort"
	default:
		return fmt.Sprintf("algorithm%d", int(a))
	}
}

// AllAlgorithms returns every algorithm column in table order (the
// -algo all set of cmd/mmqsort). The slice is a copy.
func AllAlgorithms() []Algorithm {
	out := make([]Algorithm, numAlgorithms)
	for a := range out {
		out[a] = Algorithm(a)
	}
	return out
}

// AlgoNames returns the column labels (Algorithm.String) of as.
func AlgoNames(as []Algorithm) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.String()
	}
	return out
}

// KindNames returns the distribution names of ks.
func KindNames(ks []dist.Kind) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.String()
	}
	return out
}

// ParseSchedulerAlgorithms resolves a comma-separated -algos list
// restricted to the algorithms that run on the shared core scheduler (plus
// the sequential baseline) — the subset a multi-client Runtime can serve
// (cmd/throughput's sort mix).
func ParseSchedulerAlgorithms(csv string) ([]Algorithm, error) {
	shared := map[Algorithm]bool{
		SeqSTL: true, Fork: true, MMPar: true, SSort: true, MSort: true,
	}
	as, err := ParseAlgorithms(csv)
	if err != nil {
		return nil, err
	}
	for _, a := range as {
		if !shared[a] {
			return nil, fmt.Errorf("harness: algorithm %v does not run on the shared scheduler (want seqstl|fork|mmpar|ssort|msort)", a)
		}
	}
	return as, nil
}

// Mix selects the request mix of a multi-client throughput run.
type Mix int

const (
	// MixSort issues sort requests (the Runtime Sort* methods).
	MixSort Mix = iota
	// MixAnalytics issues analytics requests (the Runtime query operators:
	// filter, groupby, aggregate, topk, join, plan).
	MixAnalytics
	// MixAbandon splits the clients into latency-sensitive interactive
	// sorters and batch clients whose large SortManyCtx batches are
	// abandoned on a deadline — the cancellation/graceful-degradation
	// scenario: interactive tail latency must survive a batch flood that
	// keeps giving up.
	MixAbandon
)

func (m Mix) String() string {
	switch m {
	case MixAnalytics:
		return "analytics"
	case MixAbandon:
		return "abandon"
	}
	return "sort"
}

// ParseMix resolves a -mix flag value, case-insensitively.
func ParseMix(s string) (Mix, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "sort", "sorts":
		return MixSort, nil
	case "analytics", "query", "queries":
		return MixAnalytics, nil
	case "abandon", "cancel", "abandonment":
		return MixAbandon, nil
	}
	return 0, fmt.Errorf("harness: unknown mix %q (want sort|analytics|abandon)", s)
}
