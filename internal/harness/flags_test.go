package harness

import (
	"reflect"
	"testing"

	"repro/internal/dist"
)

// TestFlagNameRoundTrip pins that every column's canonical flag name parses
// back to itself — the single shared vocabulary the commands rely on.
func TestFlagNameRoundTrip(t *testing.T) {
	for _, a := range AllAlgorithms() {
		got, err := ParseAlgorithm(a.FlagName())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", a.FlagName(), err)
		}
		if got != a {
			t.Fatalf("ParseAlgorithm(%q) = %v, want %v", a.FlagName(), got, a)
		}
	}
}

func TestAllAlgorithms(t *testing.T) {
	all := AllAlgorithms()
	if len(all) != int(numAlgorithms) {
		t.Fatalf("AllAlgorithms returned %d columns, want %d", len(all), numAlgorithms)
	}
	for i, a := range all {
		if int(a) != i {
			t.Fatalf("AllAlgorithms[%d] = %v, want table order", i, a)
		}
	}
	// A copy: mutating the result must not corrupt later calls.
	all[0] = MSort
	if again := AllAlgorithms(); again[0] != SeqSTL {
		t.Fatal("AllAlgorithms result is not a copy")
	}
}

func TestParseSchedulerAlgorithms(t *testing.T) {
	as, err := ParseSchedulerAlgorithms("seqstl, mmpar,ssort")
	if err != nil {
		t.Fatal(err)
	}
	if want := []Algorithm{SeqSTL, MMPar, SSort}; !reflect.DeepEqual(as, want) {
		t.Fatalf("got %v, want %v", as, want)
	}
	for _, bad := range []string{"cilk", "randfork", "mmpar,cilksample", "nope"} {
		if _, err := ParseSchedulerAlgorithms(bad); err == nil {
			t.Fatalf("ParseSchedulerAlgorithms(%q) accepted a non-shared algorithm", bad)
		}
	}
}

func TestParseMix(t *testing.T) {
	for s, want := range map[string]Mix{
		"sort": MixSort, "": MixSort, " Sorts ": MixSort,
		"analytics": MixAnalytics, "QUERIES": MixAnalytics, "query": MixAnalytics,
		"abandon": MixAbandon, "Cancel": MixAbandon,
	} {
		got, err := ParseMix(s)
		if err != nil {
			t.Fatalf("ParseMix(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("ParseMix(%q) = %v, want %v", s, got, want)
		}
	}
	if _, err := ParseMix("mixed"); err == nil {
		t.Fatal("ParseMix accepted an unknown mix")
	}
	if MixSort.String() != "sort" || MixAnalytics.String() != "analytics" || MixAbandon.String() != "abandon" {
		t.Fatal("Mix.String labels changed")
	}
}

func TestNameHelpers(t *testing.T) {
	if got := AlgoNames([]Algorithm{SeqSTL, MMPar}); !reflect.DeepEqual(got, []string{"Seq/STL", "MMPar"}) {
		t.Fatalf("AlgoNames = %v", got)
	}
	ks := []dist.Kind{dist.Random, dist.Staggered}
	if got := KindNames(ks); !reflect.DeepEqual(got, []string{"Random", "Staggered"}) {
		t.Fatalf("KindNames = %v", got)
	}
}
