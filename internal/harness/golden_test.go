package harness

import (
	"strings"
	"testing"

	"repro/internal/dist"
)

// Golden end-to-end test for the paper-table rendering: TableConfig's
// quick-mode grid plus Result.Table layout (column set, speedup columns,
// row grouping, number formats) are pinned to an exact rendering so they
// cannot silently regress. The cells are synthetic — timings are
// deterministic by construction — so the golden string is exact.

// goldenTimes are fixed per-algorithm cell times: avg seconds (best is
// avg/2 so both aggregations render distinct values).
var goldenTimes = map[Algorithm]float64{
	SeqSTL: 1.6, SeqQS: 1.8, Fork: 0.4, Randfork: 0.44,
	Cilk: 0.5, CilkSample: 0.52, MMPar: 0.2, SSort: 0.25, MSort: 0.32,
}

func goldenResult(t *testing.T) (*Result, Mode) {
	t.Helper()
	cfg, mode, err := TableConfig(1, true)
	if err != nil {
		t.Fatal(err)
	}
	// Pin the quick-mode grid itself before rendering with it.
	if cfg.P != 8 || !cfg.WithCilk || cfg.Reps != 3 {
		t.Fatalf("TableConfig(1, quick): p=%d cilk=%v reps=%d", cfg.P, cfg.WithCilk, cfg.Reps)
	}
	if len(cfg.Sizes) != 3 || cfg.Sizes[0] != 1_000_000 ||
		cfg.Sizes[1] != 10_000_000 || cfg.Sizes[2] != 1<<23-1 {
		t.Fatalf("quick sizes = %v", cfg.Sizes)
	}
	cfg = cfg.withDefaults()
	res := &Result{Cfg: cfg}
	for _, kind := range []dist.Kind{dist.Random, dist.Staggered} {
		for _, size := range cfg.Sizes[:2] {
			row := Row{Kind: kind, Size: size}
			for _, alg := range cfg.Algs {
				avg := goldenTimes[alg]
				row.Cells[alg] = Cell{Avg: avg, Best: avg / 2}
				row.Ran[alg] = true
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, mode
}

const goldenAvgTable = `Table 1: Quicksort, 8-core Intel Nehalem (p=8) — average running times over 3 repetitions (p=8), seconds
Type              Size   Seq/STL     SeqQS      Fork    SU  Randfork      Cilk    SU Cilk sample     MMPar    SU     SSort    SU     MSort    SU
------------------------------------------------------------------------------------------------------------------------------------------------
Random         1000000     1.600     1.800     0.400   4.0     0.440     0.500   3.2       0.520     0.200   8.0     0.250   6.4     0.320   5.0
              10000000     1.600     1.800     0.400   4.0     0.440     0.500   3.2       0.520     0.200   8.0     0.250   6.4     0.320   5.0
Staggered      1000000     1.600     1.800     0.400   4.0     0.440     0.500   3.2       0.520     0.200   8.0     0.250   6.4     0.320   5.0
              10000000     1.600     1.800     0.400   4.0     0.440     0.500   3.2       0.520     0.200   8.0     0.250   6.4     0.320   5.0
`

func TestGoldenQuickModeTable(t *testing.T) {
	res, mode := goldenResult(t)
	if mode != Avg {
		t.Fatalf("table 1 mode = %v, want average", mode)
	}
	got := res.Table(mode)
	if got != goldenAvgTable {
		t.Errorf("quick-mode table rendering changed.\ngot:\n%s\nwant:\n%s", got, goldenAvgTable)
		gl, wl := strings.Split(got, "\n"), strings.Split(goldenAvgTable, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Errorf("first differing line %d:\ngot:  %q\nwant: %q", i, gl[i], wl[i])
				break
			}
		}
	}
	// The best-mode rendering halves every time and doubles no speedup
	// (both columns halve): spot-check rather than double the golden.
	best := res.Table(Best)
	if !strings.Contains(best, "0.800") || !strings.Contains(best, "best running times") {
		t.Errorf("best-mode table unexpected:\n%s", best)
	}
}
