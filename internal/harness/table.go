package harness

import (
	"fmt"
	"strings"
)

// value returns the rendered time of a cell under the given mode.
func (c Cell) value(m Mode) float64 {
	if m == Avg {
		return c.Avg
	}
	return c.Best
}

// Speedup returns the paper's SU column: the row's Seq/STL time divided by
// the algorithm's time, within the table's aggregation mode ("Speedup is
// calculated relative to the (best) sequential STL implementation").
func (r Row) Speedup(alg Algorithm, m Mode) float64 {
	base := r.Cells[SeqSTL].value(m)
	v := r.Cells[alg].value(m)
	if v <= 0 {
		return 0
	}
	return base / v
}

// Table renders the result in the paper's layout: rows grouped by
// distribution, columns Seq/STL, SeqQS, Fork(+SU), Randfork, [Cilk(+SU),
// Cilk sample,] MMPar(+SU).
func (r *Result) Table(m Mode) string {
	var b strings.Builder
	withCilk := r.Cfg.WithCilk
	fmt.Fprintf(&b, "%s — %s running times over %d repetitions (p=%d), seconds\n",
		r.Cfg.Name, m, r.Cfg.Reps, r.Cfg.P)
	header := fmt.Sprintf("%-10s %11s %9s %9s %9s %5s %9s", "Type", "Size",
		"Seq/STL", "SeqQS", "Fork", "SU", "Randfork")
	if withCilk {
		header += fmt.Sprintf(" %9s %5s %11s", "Cilk", "SU", "Cilk sample")
	}
	header += fmt.Sprintf(" %9s %5s", "MMPar", "SU")
	b.WriteString(header)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(header)))
	b.WriteByte('\n')
	lastKind := ""
	for _, row := range r.Rows {
		kind := row.Kind.String()
		if kind == lastKind {
			kind = ""
		} else {
			lastKind = kind
		}
		fmt.Fprintf(&b, "%-10s %11d %9.3f %9.3f %9.3f %5.1f %9.3f",
			kind, row.Size,
			row.Cells[SeqSTL].value(m), row.Cells[SeqQS].value(m),
			row.Cells[Fork].value(m), row.Speedup(Fork, m),
			row.Cells[Randfork].value(m))
		if withCilk {
			fmt.Fprintf(&b, " %9.3f %5.1f %11.3f",
				row.Cells[Cilk].value(m), row.Speedup(Cilk, m),
				row.Cells[CilkSample].value(m))
		}
		fmt.Fprintf(&b, " %9.3f %5.1f\n",
			row.Cells[MMPar].value(m), row.Speedup(MMPar, m))
	}
	return b.String()
}

// CSV renders the result as comma-separated values with both aggregations,
// for downstream plotting.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("distribution,size,algorithm,avg_seconds,best_seconds,avg_speedup,best_speedup\n")
	for _, row := range r.Rows {
		for alg := Algorithm(0); alg < numAlgorithms; alg++ {
			if !row.Ran[alg] {
				continue
			}
			fmt.Fprintf(&b, "%s,%d,%s,%.6f,%.6f,%.3f,%.3f\n",
				row.Kind, row.Size, alg,
				row.Cells[alg].Avg, row.Cells[alg].Best,
				row.Speedup(alg, Avg), row.Speedup(alg, Best))
		}
	}
	return b.String()
}

// TableConfig returns the configuration reproducing one of the paper's ten
// tables. quick selects the reduced CI-friendly size grid; otherwise the
// sizes that fit this machine (FullSizes) are used. The aggregation mode of
// the published table is returned alongside.
func TableConfig(table int, quick bool) (Config, Mode, error) {
	sizes := FullSizes
	reps := 10
	if quick {
		sizes = QuickSizes
		reps = 3
	}
	base := Config{Reps: reps, Sizes: sizes, Seed: 42}
	var mode Mode
	switch table {
	case 1, 2:
		base.Name = fmt.Sprintf("Table %d: Quicksort, 8-core Intel Nehalem (p=8)", table)
		base.P, base.WithCilk = 8, true
	case 3, 4:
		base.Name = fmt.Sprintf("Table %d: Quicksort, 16-core AMD Opteron (p=16)", table)
		base.P, base.WithCilk = 16, false
	case 5, 6:
		base.Name = fmt.Sprintf("Table %d: Quicksort, 32-core Intel Nehalem EX (p=32)", table)
		base.P, base.WithCilk = 32, true
	case 7, 8:
		base.Name = fmt.Sprintf("Table %d: Quicksort, Sun T2+ with 32 threads (p=32)", table)
		base.P, base.WithCilk = 32, false
	case 9, 10:
		base.Name = fmt.Sprintf("Table %d: Quicksort, Sun T2+ with 64 threads (p=64)", table)
		base.P, base.WithCilk = 64, false
	default:
		return Config{}, 0, fmt.Errorf("harness: no such table %d (paper has 1–10)", table)
	}
	if table%2 == 1 {
		mode = Avg
	} else {
		mode = Best
	}
	return base, mode, nil
}
