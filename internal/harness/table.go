package harness

import (
	"fmt"
	"strings"
)

// value returns the rendered time of a cell under the given mode.
func (c Cell) value(m Mode) float64 {
	if m == Avg {
		return c.Avg
	}
	return c.Best
}

// Speedup returns the paper's SU column: the row's Seq/STL time divided by
// the algorithm's time, within the table's aggregation mode ("Speedup is
// calculated relative to the (best) sequential STL implementation").
func (r Row) Speedup(alg Algorithm, m Mode) float64 {
	base := r.Cells[SeqSTL].value(m)
	v := r.Cells[alg].value(m)
	if v <= 0 {
		return 0
	}
	return base / v
}

// algorithms returns the columns that actually ran, in enum order (the
// union over all rows, so a -algos subset renders only its columns).
func (r *Result) algorithms() []Algorithm {
	var present [numAlgorithms]bool
	for _, row := range r.Rows {
		for a := Algorithm(0); a < numAlgorithms; a++ {
			if row.Ran[a] {
				present[a] = true
			}
		}
	}
	algs := make([]Algorithm, 0, numAlgorithms)
	for a := Algorithm(0); a < numAlgorithms; a++ {
		if present[a] {
			algs = append(algs, a)
		}
	}
	return algs
}

// suColumns marks the algorithms that get a speedup column next to their
// time, as in the paper's tables (Fork, Cilk, MMPar) plus the SSort and
// MSort extension columns. Speedups are relative to Seq/STL, so they
// render only when that column ran.
var suColumns = map[Algorithm]bool{
	Fork: true, Cilk: true, MMPar: true, SSort: true, MSort: true,
}

// Table renders the result in the paper's layout: rows grouped by
// distribution, one time column per algorithm that ran (Seq/STL, SeqQS,
// Fork(+SU), Randfork, [Cilk(+SU), Cilk sample,] MMPar(+SU), SSort(+SU)),
// with speedup columns when the Seq/STL baseline is present.
func (r *Result) Table(m Mode) string {
	var b strings.Builder
	algs := r.algorithms()
	var ranSTL bool
	for _, a := range algs {
		ranSTL = ranSTL || a == SeqSTL
	}
	fmt.Fprintf(&b, "%s — %s running times over %d repetitions (p=%d), seconds\n",
		r.Cfg.Name, m, r.Cfg.Reps, r.Cfg.P)
	header := fmt.Sprintf("%-10s %11s", "Type", "Size")
	widths := make([]int, len(algs))
	for i, a := range algs {
		label := a.String()
		widths[i] = len(label)
		if widths[i] < 9 {
			widths[i] = 9
		}
		header += fmt.Sprintf(" %*s", widths[i], label)
		if ranSTL && suColumns[a] {
			header += fmt.Sprintf(" %5s", "SU")
		}
	}
	b.WriteString(header)
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", len(header)))
	b.WriteByte('\n')
	lastKind := ""
	for _, row := range r.Rows {
		kind := row.Kind.String()
		if kind == lastKind {
			kind = ""
		} else {
			lastKind = kind
		}
		fmt.Fprintf(&b, "%-10s %11d", kind, row.Size)
		for i, a := range algs {
			fmt.Fprintf(&b, " %*.3f", widths[i], row.Cells[a].value(m))
			if ranSTL && suColumns[a] {
				fmt.Fprintf(&b, " %5.1f", row.Speedup(a, m))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the result as comma-separated values with both aggregations,
// for downstream plotting. Speedups are relative to the Seq/STL baseline;
// when that column was not run (an -algos subset) the speedup fields are
// left empty rather than recording a fictitious 0.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("distribution,size,algorithm,avg_seconds,best_seconds,avg_speedup,best_speedup\n")
	for _, row := range r.Rows {
		for alg := Algorithm(0); alg < numAlgorithms; alg++ {
			if !row.Ran[alg] {
				continue
			}
			fmt.Fprintf(&b, "%s,%d,%s,%.6f,%.6f",
				row.Kind, row.Size, alg,
				row.Cells[alg].Avg, row.Cells[alg].Best)
			if row.Ran[SeqSTL] {
				fmt.Fprintf(&b, ",%.3f,%.3f\n", row.Speedup(alg, Avg), row.Speedup(alg, Best))
			} else {
				b.WriteString(",,\n")
			}
		}
	}
	return b.String()
}

// TableConfig returns the configuration reproducing one of the paper's ten
// tables. quick selects the reduced CI-friendly size grid; otherwise the
// sizes that fit this machine (FullSizes) are used. The aggregation mode of
// the published table is returned alongside.
func TableConfig(table int, quick bool) (Config, Mode, error) {
	sizes := FullSizes
	reps := 10
	if quick {
		sizes = QuickSizes
		reps = 3
	}
	base := Config{Reps: reps, Sizes: sizes, Seed: 42}
	var mode Mode
	switch table {
	case 1, 2:
		base.Name = fmt.Sprintf("Table %d: Quicksort, 8-core Intel Nehalem (p=8)", table)
		base.P, base.WithCilk = 8, true
	case 3, 4:
		base.Name = fmt.Sprintf("Table %d: Quicksort, 16-core AMD Opteron (p=16)", table)
		base.P, base.WithCilk = 16, false
	case 5, 6:
		base.Name = fmt.Sprintf("Table %d: Quicksort, 32-core Intel Nehalem EX (p=32)", table)
		base.P, base.WithCilk = 32, true
	case 7, 8:
		base.Name = fmt.Sprintf("Table %d: Quicksort, Sun T2+ with 32 threads (p=32)", table)
		base.P, base.WithCilk = 32, false
	case 9, 10:
		base.Name = fmt.Sprintf("Table %d: Quicksort, Sun T2+ with 64 threads (p=64)", table)
		base.P, base.WithCilk = 64, false
	default:
		return Config{}, 0, fmt.Errorf("harness: no such table %d (paper has 1–10)", table)
	}
	if table%2 == 1 {
		mode = Avg
	} else {
		mode = Best
	}
	return base, mode, nil
}
