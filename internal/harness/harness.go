// Package harness regenerates the paper's evaluation tables (Tables 1–10):
// the parallel Quicksort comparison across four input distributions, several
// input sizes, and seven sorting configurations, reporting average and best
// running times over a number of repetitions plus speedups relative to the
// best sequential implementation.
//
// The paper's four machines map to worker counts (8, 16, 32, 32, 64); see
// DESIGN.md §2 for the hardware substitution rationale.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cilk"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dist/distpar"
	"repro/internal/msort"
	"repro/internal/qsort"
	"repro/internal/ssort"
)

// Algorithm identifies one column group of the paper's tables.
type Algorithm int

const (
	SeqSTL     Algorithm = iota // best sequential sort (our introsort)
	SeqQS                       // handwritten sequential quicksort
	Fork                        // Algorithm 10 on the team-building scheduler
	Randfork                    // Algorithm 10 on the classic random work-stealer
	Cilk                        // Algorithm 10 on the Cilk-style scheduler
	CilkSample                  // sample-pivot variant on the Cilk-style scheduler
	MMPar                       // Algorithm 11 (mixed-mode) on the team-building scheduler
	SSort                       // mixed-mode samplesort (internal/ssort) on the team builder
	MSort                       // mixed-mode merge sort (internal/msort) on the team builder
	numAlgorithms
)

// String returns the column label used in the paper (SSort is this
// repository's extension column).
func (a Algorithm) String() string {
	switch a {
	case SeqSTL:
		return "Seq/STL"
	case SeqQS:
		return "SeqQS"
	case Fork:
		return "Fork"
	case Randfork:
		return "Randfork"
	case Cilk:
		return "Cilk"
	case CilkSample:
		return "Cilk sample"
	case MMPar:
		return "MMPar"
	case SSort:
		return "SSort"
	case MSort:
		return "MSort"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// algNames maps every accepted -algos name (lower-case) to its column.
var algNames = map[string]Algorithm{
	"seqstl": SeqSTL, "seq": SeqSTL, "stl": SeqSTL, "seq/stl": SeqSTL,
	"seqqs":      SeqQS,
	"fork":       Fork,
	"randfork":   Randfork,
	"cilk":       Cilk,
	"cilksample": CilkSample, "cilk-sample": CilkSample, "cilk sample": CilkSample,
	"mmpar": MMPar,
	"ssort": SSort, "samplesort": SSort,
	"msort": MSort, "mergesort": MSort,
}

// ParseAlgorithm resolves an algorithm column name (e.g. "mmpar",
// "ssort"), case-insensitively.
func ParseAlgorithm(s string) (Algorithm, error) {
	if a, ok := algNames[strings.ToLower(strings.TrimSpace(s))]; ok {
		return a, nil
	}
	names := make([]string, 0, len(algNames))
	for name := range algNames {
		names = append(names, name)
	}
	sort.Strings(names)
	return 0, fmt.Errorf("harness: unknown algorithm %q (want one of %s)",
		s, strings.Join(names, "|"))
}

// ParseAlgorithms resolves a comma-separated list of algorithm column
// names — the shared -algos flag parser of the command-line harnesses.
func ParseAlgorithms(csv string) ([]Algorithm, error) {
	var out []Algorithm
	for _, f := range strings.Split(csv, ",") {
		a, err := ParseAlgorithm(f)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// ParseSizes parses a comma-separated list of positive element counts —
// the shared -sizes flag parser of the command-line harnesses.
func ParseSizes(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("harness: bad size %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// ParseKinds parses a comma-separated list of input distribution names —
// the shared -dists flag parser of the command-line harnesses.
func ParseKinds(csv string) ([]dist.Kind, error) {
	var out []dist.Kind
	for _, f := range strings.Split(csv, ",") {
		k, err := dist.Parse(f)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// Config describes one table's experiment grid.
type Config struct {
	Name     string      // table caption
	P        int         // workers ("hardware threads")
	Reps     int         // repetitions per cell (the paper uses 10)
	Sizes    []int       // input sizes (rows within each distribution)
	Kinds    []dist.Kind // distributions (row groups)
	WithCilk bool        // include the Cilk columns (Tables 1, 2, 5, 6)
	Algs     []Algorithm // algorithm columns; empty selects the default set
	Seed     uint64

	// Sorting tunables (§5 defaults when zero).
	Cutoff    int
	BlockSize int
	MinBlocks int
}

func (c Config) withDefaults() Config {
	if c.Reps < 1 {
		c.Reps = 1
	}
	if c.P < 1 {
		c.P = 1
	}
	if len(c.Sizes) == 0 {
		c.Sizes = QuickSizes
	}
	if len(c.Kinds) == 0 {
		c.Kinds = dist.Kinds
	}
	if c.Cutoff < 2 {
		c.Cutoff = qsort.DefaultCutoff
	}
	if c.BlockSize < 1 {
		c.BlockSize = qsort.DefaultBlockSize
	}
	if c.MinBlocks < 1 {
		c.MinBlocks = qsort.DefaultMinBlocksPerThread
	}
	if len(c.Algs) == 0 {
		c.Algs = []Algorithm{SeqSTL, SeqQS, Fork, Randfork, MMPar, SSort, MSort}
		if c.WithCilk {
			c.Algs = []Algorithm{SeqSTL, SeqQS, Fork, Randfork, Cilk, CilkSample, MMPar, SSort, MSort}
		}
	}
	return c
}

// PaperSizes are the input sizes of the published tables.
var PaperSizes = []int{10_000_000, 100_000_000, 1_000_000_000,
	1<<23 - 1, 1<<25 - 1, 1<<27 - 1}

// FullSizes are the paper sizes that fit a ~20 GB machine in reasonable time.
var FullSizes = []int{10_000_000, 100_000_000, 1<<23 - 1, 1<<25 - 1, 1<<27 - 1}

// QuickSizes is a CI-friendly grid that still reaches team sizes ≥ 8 with
// the paper's default getBestNp parameters.
var QuickSizes = []int{1_000_000, 10_000_000, 1<<23 - 1}

// Cell is one measurement aggregate.
type Cell struct {
	Avg  float64 // seconds, mean over repetitions
	Best float64 // seconds, minimum over repetitions
}

// Row is one (distribution, size) line of a table.
type Row struct {
	Kind  dist.Kind
	Size  int
	Cells [numAlgorithms]Cell
	Ran   [numAlgorithms]bool
}

// Result is a completed experiment grid.
type Result struct {
	Cfg  Config
	Rows []Row
}

// Mode selects the aggregation of a rendered table: the paper publishes an
// "average running times" and a "best (minimum) running time" table per
// machine.
type Mode int

const (
	Avg Mode = iota
	Best
)

func (m Mode) String() string {
	if m == Avg {
		return "average"
	}
	return "best"
}

// Run executes the experiment grid. Progress lines are written to progress
// (use io.Discard to silence). Every sorted output is verified.
func Run(cfg Config, progress io.Writer) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{Cfg: cfg}
	algs := cfg.Algs
	var buf []int32
	for _, kind := range cfg.Kinds {
		for _, size := range cfg.Sizes {
			input := generateInput(cfg, kind, size)
			if cap(buf) < size {
				buf = make([]int32, size)
			}
			row := Row{Kind: kind, Size: size}
			for _, alg := range algs {
				cell, err := measure(cfg, alg, input, buf[:size])
				if err != nil {
					return nil, fmt.Errorf("%v/%v/%d: %w", alg, kind, size, err)
				}
				row.Cells[alg] = cell
				row.Ran[alg] = true
				fmt.Fprintf(progress, "%-11s %-9s n=%-11d avg=%8.4fs best=%8.4fs\n",
					alg, kind, size, cell.Avg, cell.Best)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// generateInput produces one table row's input. Large inputs are filled by
// a worker team on a short-lived scheduler (shut down before any timing
// starts); the output is bit-identical to sequential generation, so table
// results do not depend on the path taken.
func generateInput(cfg Config, kind dist.Kind, size int) []int32 {
	return distpar.GenerateWithWorkers(cfg.P, kind, size, cfg.Seed+uint64(size))
}

// measure times one algorithm cfg.Reps times on copies of input.
func measure(cfg Config, alg Algorithm, input, buf []int32) (Cell, error) {
	var cell Cell
	cell.Best = -1

	runOnce := func(sortFn func([]int32)) error {
		copy(buf, input)
		start := time.Now()
		sortFn(buf)
		el := time.Since(start).Seconds()
		cell.Avg += el
		if cell.Best < 0 || el < cell.Best {
			cell.Best = el
		}
		if !qsort.IsSorted(buf) {
			return fmt.Errorf("output not sorted")
		}
		return nil
	}

	var err error
	switch alg {
	case SeqSTL:
		for r := 0; r < cfg.Reps && err == nil; r++ {
			err = runOnce(func(d []int32) { qsort.Introsort(d) })
		}
	case SeqQS:
		for r := 0; r < cfg.Reps && err == nil; r++ {
			err = runOnce(func(d []int32) { qsort.SequentialQuicksortCutoff(d, cfg.Cutoff) })
		}
	case Fork:
		s := core.New(core.Options{P: cfg.P, Seed: cfg.Seed})
		defer s.Shutdown()
		for r := 0; r < cfg.Reps && err == nil; r++ {
			err = runOnce(func(d []int32) { qsort.ForkJoinCore(s, d, cfg.Cutoff) })
		}
	case Randfork:
		s := classic.New(classic.Options{P: cfg.P, Seed: cfg.Seed})
		defer s.Shutdown()
		for r := 0; r < cfg.Reps && err == nil; r++ {
			err = runOnce(func(d []int32) { qsort.ForkJoinClassic(s, d, cfg.Cutoff) })
		}
	case Cilk:
		s := cilk.New(cilk.Options{P: cfg.P, Seed: cfg.Seed})
		defer s.Shutdown()
		for r := 0; r < cfg.Reps && err == nil; r++ {
			err = runOnce(func(d []int32) { qsort.ForkJoinCilk(s, d, cfg.Cutoff) })
		}
	case CilkSample:
		s := cilk.New(cilk.Options{P: cfg.P, Seed: cfg.Seed})
		defer s.Shutdown()
		for r := 0; r < cfg.Reps && err == nil; r++ {
			err = runOnce(func(d []int32) { qsort.SampleCilk(s, d, cfg.Cutoff) })
		}
	case MMPar:
		s := core.New(core.Options{P: cfg.P, Seed: cfg.Seed})
		defer s.Shutdown()
		opt := qsort.MMOptions{Cutoff: cfg.Cutoff, BlockSize: cfg.BlockSize,
			MinBlocksPerThread: cfg.MinBlocks}
		for r := 0; r < cfg.Reps && err == nil; r++ {
			err = runOnce(func(d []int32) { qsort.MixedMode(s, d, opt) })
		}
	case SSort:
		s := core.New(core.Options{P: cfg.P, Seed: cfg.Seed})
		defer s.Shutdown()
		// MinPerThread mirrors the MMPar team quota (BlockSize·MinBlocks)
		// so both mixed-mode columns form teams at the same scales.
		opt := ssort.Options{Cutoff: cfg.Cutoff,
			MinPerThread: cfg.BlockSize * cfg.MinBlocks}
		for r := 0; r < cfg.Reps && err == nil; r++ {
			err = runOnce(func(d []int32) { ssort.Sort(s, d, opt) })
		}
	case MSort:
		s := core.New(core.Options{P: cfg.P, Seed: cfg.Seed})
		defer s.Shutdown()
		// The merge quota mirrors the other mixed-mode columns so all three
		// form teams at the same scales.
		opt := msort.Options{Cutoff: cfg.Cutoff,
			MinPerThread: cfg.BlockSize * cfg.MinBlocks}
		for r := 0; r < cfg.Reps && err == nil; r++ {
			err = runOnce(func(d []int32) { msort.Sort(s, d, opt) })
		}
	default:
		err = fmt.Errorf("unknown algorithm %v", alg)
	}
	if err != nil {
		return Cell{}, err
	}
	cell.Avg /= float64(cfg.Reps)
	return cell, nil
}
