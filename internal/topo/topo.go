// Package topo implements the deterministic thread topology used by
// work-stealing with team-building (Wimmer & Träff, SPAA 2011, §3).
//
// Workers are identified by integer ids 0 ≤ I < p. The partner of worker I
// at level ℓ is obtained by flipping the ℓ-th bit of I, so that over
// log p levels every worker has a unique partner inside each power-of-two
// block of the id space. Teams for a task requiring r threads always consist
// of the consecutive ids k·r … (k+1)·r−1 of the power-of-two block that
// contains the coordinator (§3.1).
//
// Refinement 3 of the paper (arbitrary number of hardware threads) is
// supported by marking partners whose id would fall outside [0,p) as missing
// and by restricting coordination to blocks that fit entirely inside [0,p).
package topo

import "math/bits"

// Topology precomputes the partner structure for p workers.
//
// Levels is the number of partner levels (⌈log2 p⌉); QueueLevels is the
// number of task-size classes (⌊log2 p⌋+1), where queue level j holds tasks
// with thread requirement 2^j (Refinement 1).
type Topology struct {
	P           int
	Levels      int
	QueueLevels int
	// MaxTeam is the largest feasible team size: the largest power of two
	// 2^j such that at least one block [k·2^j, (k+1)·2^j) fits in [0,p).
	MaxTeam int
	// partners[i][l] is the deterministic partner of worker i at level l,
	// or -1 if that partner does not exist (id ≥ p).
	partners [][]int
}

// New builds the topology for p ≥ 1 workers.
func New(p int) *Topology {
	if p < 1 {
		panic("topo: p must be ≥ 1")
	}
	t := &Topology{
		P:           p,
		Levels:      Log2Ceil(p),
		QueueLevels: Log2Floor(p) + 1,
		MaxTeam:     FloorPow2(p),
	}
	t.partners = make([][]int, p)
	for i := 0; i < p; i++ {
		row := make([]int, t.Levels)
		for l := 0; l < t.Levels; l++ {
			q := i ^ (1 << uint(l))
			if q >= p {
				q = -1
			}
			row[l] = q
		}
		t.partners[i] = row
	}
	return t
}

// Partner returns the deterministic partner of worker id at level l, or -1
// if the partner does not exist (Refinement 3: missing partner).
func (t *Topology) Partner(id, l int) int {
	return t.partners[id][l]
}

// RandPartner returns a randomized partner for worker id at level l
// (Refinement 4): id XOR u for a uniformly random u in [2^l, 2^{l+1}), which
// picks uniformly among the 2^l members of the sibling sub-block while
// preserving the block hierarchy. rnd must be a non-negative pseudo-random
// value. Returns -1 if the chosen partner id is ≥ p.
func (t *Topology) RandPartner(id, l int, rnd uint64) int {
	u := (1 << uint(l)) + int(rnd&uint64(1<<uint(l)-1))
	q := id ^ u
	if q >= t.P {
		return -1
	}
	return q
}

// TeamLeft returns the smallest worker id of the team of size r (a power of
// two) that contains worker id: id with the low log2(r) bits cleared.
func TeamLeft(id, r int) int {
	return id &^ (r - 1)
}

// TeamRight returns one past the largest worker id of the team of size r
// containing id.
func TeamRight(id, r int) int {
	return TeamLeft(id, r) + r
}

// Overlap reports whether workers a and b belong to the same team of size r
// (a power of two). This is the overlap() predicate of Algorithm 9.
func Overlap(a, b, r int) bool {
	return a&^(r-1) == b&^(r-1)
}

// LocalID returns the team-local id (0 … r−1) of worker id inside the team
// of size r that contains coord. The caller must ensure Overlap(id, coord, r).
func LocalID(id, coord, r int) int {
	return id - TeamLeft(coord, r)
}

// BlockFits reports whether the size-r block containing id lies entirely
// inside [0, p): only then can a worker with this id coordinate a task that
// requires r threads (Refinement 3).
func BlockFits(id, r, p int) bool {
	return TeamRight(id, r) <= p
}

// FitTeam returns the largest power-of-two team size ≤ want whose block
// containing id fits inside [0, p). It is ≥ 1 for every valid id.
func FitTeam(id, want, p int) int {
	r := FloorPow2(want)
	for r > 1 && !BlockFits(id, r, p) {
		r >>= 1
	}
	return r
}

// Level returns the queue level for a task requiring r threads: the exponent
// of the next power of two ≥ r (Refinement 2 rounds requirements up).
func Level(r int) int {
	return Log2Ceil(r)
}

// IsPow2 reports whether x is a power of two (x ≥ 1).
func IsPow2(x int) bool {
	return x > 0 && x&(x-1) == 0
}

// CeilPow2 returns the smallest power of two ≥ x (x ≥ 1).
func CeilPow2(x int) int {
	if x <= 1 {
		return 1
	}
	return 1 << uint(bits.Len(uint(x-1)))
}

// FloorPow2 returns the largest power of two ≤ x (x ≥ 1).
func FloorPow2(x int) int {
	if x < 1 {
		panic("topo: FloorPow2 of non-positive value")
	}
	return 1 << uint(bits.Len(uint(x))-1)
}

// Log2Ceil returns ⌈log2 x⌉ for x ≥ 1.
func Log2Ceil(x int) int {
	if x <= 1 {
		return 0
	}
	return bits.Len(uint(x - 1))
}

// Log2Floor returns ⌊log2 x⌋ for x ≥ 1.
func Log2Floor(x int) int {
	if x < 1 {
		panic("topo: Log2Floor of non-positive value")
	}
	return bits.Len(uint(x)) - 1
}
