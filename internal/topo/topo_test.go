package topo

import (
	"testing"
	"testing/quick"
)

func TestNewBasics(t *testing.T) {
	cases := []struct {
		p, levels, queueLevels, maxTeam int
	}{
		{1, 0, 1, 1},
		{2, 1, 2, 2},
		{3, 2, 2, 2},
		{4, 2, 3, 4},
		{5, 3, 3, 4},
		{6, 3, 3, 4},
		{7, 3, 3, 4},
		{8, 3, 4, 8},
		{12, 4, 4, 8},
		{16, 4, 5, 16},
		{24, 5, 5, 16},
		{64, 6, 7, 64},
	}
	for _, c := range cases {
		tp := New(c.p)
		if tp.Levels != c.levels {
			t.Errorf("p=%d: Levels=%d, want %d", c.p, tp.Levels, c.levels)
		}
		if tp.QueueLevels != c.queueLevels {
			t.Errorf("p=%d: QueueLevels=%d, want %d", c.p, tp.QueueLevels, c.queueLevels)
		}
		if tp.MaxTeam != c.maxTeam {
			t.Errorf("p=%d: MaxTeam=%d, want %d", c.p, tp.MaxTeam, c.maxTeam)
		}
	}
}

func TestPartnerBitFlip(t *testing.T) {
	tp := New(16)
	for i := 0; i < 16; i++ {
		for l := 0; l < tp.Levels; l++ {
			q := tp.Partner(i, l)
			if q != i^(1<<uint(l)) {
				t.Fatalf("Partner(%d,%d)=%d, want %d", i, l, q, i^(1<<uint(l)))
			}
		}
	}
}

func TestPartnerSymmetry(t *testing.T) {
	// Partnering is an involution: partner(partner(i,l),l) == i.
	for _, p := range []int{2, 4, 8, 16, 32} {
		tp := New(p)
		for i := 0; i < p; i++ {
			for l := 0; l < tp.Levels; l++ {
				q := tp.Partner(i, l)
				if q < 0 {
					continue
				}
				if back := tp.Partner(q, l); back != i {
					t.Fatalf("p=%d: Partner(Partner(%d,%d)=%d,%d)=%d", p, i, l, q, l, back)
				}
			}
		}
	}
}

func TestPartnerUniqueAndMissing(t *testing.T) {
	// For non-power-of-two p some partners are missing; the rest are unique
	// and within range.
	for _, p := range []int{3, 5, 6, 7, 11, 24} {
		tp := New(p)
		for i := 0; i < p; i++ {
			seen := map[int]bool{}
			for l := 0; l < tp.Levels; l++ {
				q := tp.Partner(i, l)
				if q == -1 {
					if x := i ^ (1 << uint(l)); x < p {
						t.Fatalf("p=%d: Partner(%d,%d) missing but %d < p", p, i, l, x)
					}
					continue
				}
				if q < 0 || q >= p || q == i || seen[q] {
					t.Fatalf("p=%d: bad partner %d for (%d,%d)", p, q, i, l)
				}
				seen[q] = true
			}
		}
	}
}

func TestRandPartnerInSiblingBlock(t *testing.T) {
	tp := New(32)
	for i := 0; i < 32; i++ {
		for l := 0; l < tp.Levels; l++ {
			for rnd := uint64(0); rnd < 64; rnd++ {
				q := tp.RandPartner(i, l, rnd)
				if q < 0 {
					t.Fatalf("missing partner in power-of-two topology")
				}
				// Same block at level l+1, different half at level l.
				if !Overlap(i, q, 1<<uint(l+1)) {
					t.Fatalf("RandPartner(%d,%d)=%d outside the level-%d block", i, l, q, l+1)
				}
				if Overlap(i, q, 1<<uint(l)) {
					t.Fatalf("RandPartner(%d,%d)=%d inside own half", i, l, q)
				}
			}
		}
	}
}

func TestTeamBounds(t *testing.T) {
	if TeamLeft(5, 4) != 4 || TeamRight(5, 4) != 8 {
		t.Fatalf("TeamLeft/Right(5,4) = %d/%d", TeamLeft(5, 4), TeamRight(5, 4))
	}
	if TeamLeft(5, 1) != 5 || TeamRight(5, 1) != 6 {
		t.Fatal("size-1 team must be the worker itself")
	}
	if TeamLeft(7, 8) != 0 || TeamRight(7, 8) != 8 {
		t.Fatal("size-8 team containing 7 must be [0,8)")
	}
}

func TestOverlapProperties(t *testing.T) {
	// Overlap is an equivalence relation per fixed r; classes are aligned
	// blocks of size r.
	err := quick.Check(func(a, b uint8, rexp uint8) bool {
		r := 1 << (rexp % 7)
		x, y := int(a), int(b)
		want := x/r == y/r
		return Overlap(x, y, r) == want
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestLocalIDProperties(t *testing.T) {
	err := quick.Check(func(id, coord uint8, rexp uint8) bool {
		r := 1 << (rexp % 7)
		i, c := int(id), int(coord)
		if !Overlap(i, c, r) {
			return true // precondition
		}
		lid := LocalID(i, c, r)
		return lid >= 0 && lid < r && TeamLeft(c, r)+lid == i
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestBlockFitsAndFitTeam(t *testing.T) {
	if !BlockFits(0, 4, 6) || BlockFits(4, 4, 6) {
		t.Fatal("BlockFits p=6 r=4: block [0,4) fits, [4,8) does not")
	}
	if ft := FitTeam(4, 4, 6); ft != 2 {
		t.Fatalf("FitTeam(4,4,6)=%d, want 2 (block [4,6))", ft)
	}
	if ft := FitTeam(5, 8, 6); ft != 2 {
		t.Fatalf("FitTeam(5,8,6)=%d, want 2", ft)
	}
	if ft := FitTeam(0, 8, 6); ft != 4 {
		t.Fatalf("FitTeam(0,8,6)=%d, want 4", ft)
	}
	// FitTeam always ≥ 1 and its block always fits.
	err := quick.Check(func(id, want, p uint8) bool {
		pp := int(p%64) + 1
		ii := int(id) % pp
		ww := int(want%64) + 1
		ft := FitTeam(ii, ww, pp)
		return ft >= 1 && IsPow2(ft) && BlockFits(ii, ft, pp)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPow2Helpers(t *testing.T) {
	for _, c := range []struct{ x, ceil, floor, l2c, l2f int }{
		{1, 1, 1, 0, 0},
		{2, 2, 2, 1, 1},
		{3, 4, 2, 2, 1},
		{4, 4, 4, 2, 2},
		{5, 8, 4, 3, 2},
		{7, 8, 4, 3, 2},
		{8, 8, 8, 3, 3},
		{1000, 1024, 512, 10, 9},
	} {
		if CeilPow2(c.x) != c.ceil {
			t.Errorf("CeilPow2(%d)=%d, want %d", c.x, CeilPow2(c.x), c.ceil)
		}
		if FloorPow2(c.x) != c.floor {
			t.Errorf("FloorPow2(%d)=%d, want %d", c.x, FloorPow2(c.x), c.floor)
		}
		if Log2Ceil(c.x) != c.l2c {
			t.Errorf("Log2Ceil(%d)=%d, want %d", c.x, Log2Ceil(c.x), c.l2c)
		}
		if Log2Floor(c.x) != c.l2f {
			t.Errorf("Log2Floor(%d)=%d, want %d", c.x, Log2Floor(c.x), c.l2f)
		}
	}
	if IsPow2(0) || IsPow2(3) || !IsPow2(1) || !IsPow2(64) {
		t.Fatal("IsPow2 misbehaves")
	}
}

func TestLevel(t *testing.T) {
	for _, c := range []struct{ r, lvl int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {16, 4},
	} {
		if Level(c.r) != c.lvl {
			t.Errorf("Level(%d)=%d, want %d", c.r, Level(c.r), c.lvl)
		}
	}
}

func TestTeamsPartitionIDSpace(t *testing.T) {
	// For power-of-two p and any power-of-two r ≤ p, the id space is
	// partitioned into p/r aligned disjoint teams — the k·r … (k+1)·r−1
	// structure of §3.
	const p = 32
	for r := 1; r <= p; r *= 2 {
		counts := make(map[int]int)
		for i := 0; i < p; i++ {
			counts[TeamLeft(i, r)]++
		}
		if len(counts) != p/r {
			t.Fatalf("r=%d: %d teams, want %d", r, len(counts), p/r)
		}
		for left, n := range counts {
			if n != r || left%r != 0 {
				t.Fatalf("r=%d: team at %d has %d members", r, left, n)
			}
		}
	}
}

func TestNewPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p=0")
		}
	}()
	New(0)
}
