package topo

import (
	"runtime"
	"sync"
)

var gmpMu sync.Mutex

// EnsureGOMAXPROCS raises GOMAXPROCS to at least p (it never lowers it).
//
// The paper's workers are OS threads, which the operating system preempts
// independently; a scheduler of p workers therefore assumes p independently
// scheduled threads. With GOMAXPROCS < p, several polling workers share one
// runtime P and the coordination protocol (register → gather → publish →
// pick up) can phase-lock: each actor wakes, observes the state left by the
// previous one, and re-parks without the overlap in execution that lets a
// team fix. Every scheduler constructor calls this so that worker counts
// above the host's CPU count run oversubscribed on real threads, exactly
// like the paper's own SMT oversubscription runs (Tables 7–10).
func EnsureGOMAXPROCS(p int) {
	if p <= runtime.GOMAXPROCS(0) {
		return
	}
	gmpMu.Lock()
	defer gmpMu.Unlock()
	if cur := runtime.GOMAXPROCS(0); p > cur {
		runtime.GOMAXPROCS(p)
	}
}
