// Package trace is the scheduler's always-on execution tracer: per-ring
// (one ring per worker, plus one for the admission path) fixed-size buffers
// of compact binary events, written through an allocation-free owner-only
// path and snapshotted without stopping the writers via per-slot sequence
// stamps — the same seqlock validation argument the core scheduler uses for
// its quiescence scan. Snapshots export a compact text dump and Chrome
// trace-event JSON loadable in Perfetto (see chrome.go).
//
// The package also provides the worker-state sampling profiler (sampler.go):
// a background goroutine periodically reads each worker's published State
// and accumulates per-state occupancy counters — a statistical CPU-time
// breakdown with zero cost on the scheduler's task paths.
package trace

import "time"

// Kind identifies one event type. The low task-lifecycle kinds are the hot
// ones (recorded per task); the registration-protocol kinds at the tail are
// the former core protocol tracer, migrated onto the same rings.
type Kind uint8

const (
	// Task lifecycle. A task's trace id is the event id (Event.ID) of the
	// event that created it — EvSpawn for interior spawns, EvInjectEnqueue
	// for external admissions — carried in Arg by EvStart/EvDone/
	// EvInjectTake so one task's journey links up across steals and rings.
	EvSpawn         Kind = iota // interior Ctx.Spawn; X = thread requirement
	EvStart                     // execution begins; X = width, Arg = task trace id
	EvDone                      // execution ends; X = width, Arg = task trace id
	EvStealAttempt              // idle worker begins a steal round
	EvSteal                     // successful steal; Other = victim, X = tasks moved
	EvInjectEnqueue             // external admission (admission ring); X = group id
	EvInjectTake                // admitted task taken; X = group id, Arg = task trace id
	EvGroupDone                 // group in-flight count hit zero; X = group id
	// Cancellation (see internal/core's cancel.go). Cancel and deadline-fire
	// land on the admission ring (recorded under the admission lock); the
	// revoke lands on the revoking worker's ring.
	EvGroupCancel  // group canceled; X = group id
	EvDeadlineFire // group deadline fired, canceling it; X = group id
	EvInjectRevoke // admitted task revoked at take time; X = group id, Arg = task trace id
	// Team lifecycle.
	EvTeamFixed    // coordinator fixed a team; X = size, Arg = epoch
	EvPublish      // team execution published; X = size, Arg = generation
	EvPickup       // member picked an execution up; Other = coordinator, X = local id, Arg = generation
	EvExecDone     // team execution complete; X = size, Arg = generation
	EvBarrierEnter // team barrier entered; Other = coordinator, X = local id, Arg = task trace id
	EvBarrierLeave // team barrier passed; Other = coordinator, X = local id, Arg = task trace id
	// Idleness and quiescence.
	EvPark        // worker begins a backoff wait after a failed steal round
	EvUnpark      // worker returns from the backoff wait
	EvQuiesceScan // completion-path quiescence sum-scan; X = 1 if quiescent
	// Registration-protocol transitions.
	EvRegister      // Other = coordinator, X = acquired count, Arg = epoch
	EvDeregister    // Other = coordinator, X = acquired count, Arg = epoch
	EvRevoked       // Other = coordinator, X = coordinator epoch, Arg = own epoch
	EvLeaveTeam     // Other = coordinator, X = team size, Arg = epoch
	EvShrink        // X = new team size, Arg = epoch
	EvDisband       // X = acquired count, Arg = epoch
	EvPreempt       // X = surviving team size, Arg = epoch
	EvConflictYield // Other = winning coordinator, X = acquired count, Arg = epoch
	EvGrowAdvertise // X = advertised size, Arg = epoch

	NumKinds
)

var kindNames = [NumKinds]string{
	"spawn", "start", "done", "steal-attempt", "steal",
	"inject-enqueue", "inject-take", "group-done",
	"group-cancel", "deadline-fire", "inject-revoke",
	"team-fixed", "publish", "pickup", "exec-done",
	"barrier-enter", "barrier-leave",
	"park", "unpark", "quiesce-scan",
	"register", "deregister", "revoked", "leave-team", "shrink",
	"disband", "preempt", "conflict-yield", "grow-advertise",
}

func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "kind-" + itoa(int(k))
}

// State is a worker's coarse activity state, published by the worker with a
// plain owner store into an atomic on its own line and read by the sampling
// profiler (and DumpState). Adding a state here without extending StateNames
// fails to compile; the exhaustiveness tests in this package and the metric
// registration in core (one series per state) pick new states up from
// NumStates/StateNames without further edits.
type State uint32

const (
	StateIdle    State = iota // between tasks: coordinating, polling inject
	StateRun                  // running a single-threaded task
	StateRunTeam              // running its share of a team task
	StateSteal                // in a steal round
	StatePark                 // backoff wait after a failed steal round
	StateMember               // registered at another coordinator (in-team polling)

	NumStates
)

// StateNames holds the metric label value of every State.
var StateNames = [NumStates]string{
	"idle", "run", "run_team", "steal", "park", "member",
}

func (s State) String() string {
	if s < NumStates {
		return StateNames[s]
	}
	return "state-" + itoa(int(s))
}

// Event is one decoded trace event.
type Event struct {
	Ring  int    // ring the event was recorded on (worker id, or the admission ring)
	Seq   uint64 // per-ring sequence number (dense, starts at 0)
	TS    int64  // monotonic nanoseconds since process start (see Now)
	Kind  Kind
	Other int    // related worker id (victim, coordinator); kind-specific
	X     uint32 // small kind-specific payload (r, team size, group id, count)
	Arg   uint64 // large kind-specific payload (task trace id, epoch, generation)
}

// ID returns the event's process-unique id: ring and sequence packed into
// one word. The id of a task's creating event (spawn/inject-enqueue) is the
// task's trace id.
func (e Event) ID() uint64 { return eventID(e.Ring, e.Seq) }

func eventID(ring int, seq uint64) uint64 {
	return uint64(ring+1)<<48 | seq&(1<<48-1)
}

// base anchors the package's monotonic clock: one clock for every tracer
// and for admission-latency stamping, so timestamps from different rings
// (and different schedulers in one process) are directly comparable.
var base = time.Now()

// Now returns monotonic nanoseconds since process start. It reads the
// monotonic clock and allocates nothing.
func Now() int64 { return int64(time.Since(base)) }

// itoa is a tiny strconv.Itoa for the String methods, avoiding the strconv
// import in the package core depends on from its hot path.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
