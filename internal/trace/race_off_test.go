//go:build !race

package trace

// raceEnabled reports that this test binary runs under the race detector.
const raceEnabled = false
