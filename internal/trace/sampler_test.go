package trace

import (
	"testing"
	"time"
)

// waitTicks polls until the sampler has completed at least n rounds.
func waitTicks(t *testing.T, s *Sampler, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Ticks() < n {
		if time.Now().After(deadline) {
			t.Fatalf("sampler reached only %d ticks, want %d", s.Ticks(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSamplerCounts pins the accounting contract: each round reads every
// worker once, so the per-state counts sum to Ticks × workers and split by
// what the get function reported.
func TestSamplerCounts(t *testing.T) {
	const n = 3
	s := NewSampler(n, func(i int) State {
		if i == 0 {
			return StateRun
		}
		return StatePark
	})
	if s.Running() {
		t.Fatal("sampler running before Start")
	}
	s.Start(2000)
	if !s.Running() {
		t.Fatal("sampler not running after Start")
	}
	waitTicks(t, s, 10)
	s.Stop()
	if s.Running() {
		t.Fatal("sampler running after Stop")
	}
	ticks := s.Ticks()
	var sum int64
	for st := State(0); st < NumStates; st++ {
		sum += s.Count(st)
	}
	if want := ticks * n; sum != want {
		t.Fatalf("counts sum to %d, want ticks×workers = %d", sum, want)
	}
	if got := s.Count(StateRun); got != ticks {
		t.Fatalf("run count = %d, want %d (one running worker)", got, ticks)
	}
	if got := s.Count(StatePark); got != 2*ticks {
		t.Fatalf("park count = %d, want %d (two parked workers)", got, 2*ticks)
	}
	if got := s.Count(NumStates + 5); got != 0 {
		t.Fatalf("out-of-range state count = %d, want 0", got)
	}
}

// TestSamplerRestartAccumulates pins that counters survive stop/start
// cycles (the registry counters built on them must stay monotone), that
// Stop is idempotent, and that double Start does not leak a goroutine.
func TestSamplerRestartAccumulates(t *testing.T) {
	s := NewSampler(1, func(int) State { return StateSteal })
	s.Start(2000)
	s.Start(2000) // no-op: already running
	waitTicks(t, s, 5)
	s.Stop()
	s.Stop() // idempotent
	first := s.Count(StateSteal)
	if first < 5 {
		t.Fatalf("first cycle counted %d", first)
	}
	s.Start(2000)
	waitTicks(t, s, first+5)
	s.Stop()
	if got := s.Count(StateSteal); got <= first {
		t.Fatalf("second cycle did not accumulate: %d after %d", got, first)
	}
}

// TestSamplerDefensiveState pins that a corrupt published state (≥
// NumStates) is counted as idle instead of indexing out of bounds.
func TestSamplerDefensiveState(t *testing.T) {
	s := NewSampler(1, func(int) State { return NumStates + 7 })
	s.Start(2000)
	waitTicks(t, s, 3)
	s.Stop()
	if got, ticks := s.Count(StateIdle), s.Ticks(); got != ticks {
		t.Fatalf("corrupt states counted as %d idle over %d ticks", got, ticks)
	}
}
