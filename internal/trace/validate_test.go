package trace

import (
	"strings"
	"testing"
)

// TestValidateChromeAccepts covers the two accepted top-level forms.
func TestValidateChromeAccepts(t *testing.T) {
	object := `{"traceEvents":[
		{"name":"a","ph":"B","ts":1,"pid":0,"tid":0},
		{"name":"a","ph":"E","ts":2,"pid":0,"tid":0},
		{"name":"m","ph":"M"}]}`
	if n, err := ValidateChrome([]byte(object)); err != nil || n != 3 {
		t.Fatalf("object form: n=%d err=%v", n, err)
	}
	array := `[{"name":"x","ph":"i","ts":0,"pid":0,"tid":1}]`
	if n, err := ValidateChrome([]byte(array)); err != nil || n != 1 {
		t.Fatalf("array form: n=%d err=%v", n, err)
	}
	// A B left open at the end of the window is a cut capture, not an error.
	open := `[{"name":"a","ph":"B","ts":1,"pid":0,"tid":0}]`
	if _, err := ValidateChrome([]byte(open)); err != nil {
		t.Fatalf("open slice rejected: %v", err)
	}
}

// TestValidateChromeRejects pins every failure mode check.sh relies on.
func TestValidateChromeRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"not json", `]`, "neither"},
		{"unknown phase", `[{"name":"a","ph":"Z","ts":1,"pid":0,"tid":0}]`, "unknown phase"},
		{"unnamed slice", `[{"ph":"X","ts":1,"pid":0,"tid":0}]`, "without a name"},
		{"missing ts", `[{"name":"a","ph":"i","pid":0,"tid":0}]`, "no ts"},
		{"negative ts", `[{"name":"a","ph":"i","ts":-1,"pid":0,"tid":0}]`, "negative ts"},
		{"missing tid", `[{"name":"a","ph":"i","ts":1,"pid":0}]`, "missing pid/tid"},
		{"negative dur", `[{"name":"a","ph":"X","ts":1,"dur":-2,"pid":0,"tid":0}]`, "negative dur"},
		{"flow without id", `[{"name":"a","ph":"s","ts":1,"pid":0,"tid":0}]`, "without id"},
		{"E underflow", `[{"name":"a","ph":"E","ts":1,"pid":0,"tid":0}]`, "underflows"},
		{
			"flow finish before start",
			`[{"name":"a","ph":"f","ts":1,"pid":0,"tid":0,"id":"7"},
			  {"name":"a","ph":"s","ts":2,"pid":0,"tid":0,"id":"7"}]`,
			"no earlier start",
		},
		{
			"flow step with no start",
			`[{"name":"a","ph":"t","ts":1,"pid":0,"tid":0,"id":"7"}]`,
			"no earlier start",
		},
		{
			"async end with no begin",
			`[{"name":"g","ph":"e","ts":1,"pid":0,"tid":0,"id":"1"}]`,
			"no earlier begin",
		},
	}
	for _, tc := range cases {
		if _, err := ValidateChrome([]byte(tc.in)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q lacks %q", tc.name, err, tc.wantErr)
		}
	}
}
