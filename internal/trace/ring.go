package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// DefaultRingEvents is the per-ring capacity used when the caller does not
// choose one. At 32 bytes per slot a default ring is 256 KiB per worker —
// enough for tens of milliseconds of a busy worker's task churn.
const DefaultRingEvents = 1 << 13

// minRingEvents floors tiny capacities requested by tests.
const minRingEvents = 8

// slot is one ring entry. Every field is atomic so snapshot readers race
// with the owner's writes benignly (and cleanly under the race detector);
// the stamp makes the race detectable: it holds 2·seq+1 while the owner is
// writing sequence seq into the slot and 2·seq+2 once the slot is stable,
// so a reader that sees the same even stamp before and after copying the
// payload knows it copied a consistent event — the seqlock argument the
// core scheduler's quiescence scan established.
type slot struct {
	//repro:seqlock holds 2·seq+1 while torn, 2·seq+2 once stable
	stamp atomic.Uint64
	ts    atomic.Int64
	// meta packs kind (bits 56–63), the related worker id (bits 40–55) and
	// the small payload X (bits 0–31) into one word, so recording an event
	// costs four stores besides the two stamp stores.
	meta atomic.Uint64
	arg  atomic.Uint64
}

// ring is one writer's event buffer. Only the owner (the worker with the
// matching id, or the admitMu holder for the admission ring) writes pos and
// slots; snapshot readers only load. The struct is padded to a cache line
// so adjacent rings' owner-written headers never share one.
//
//repro:padded rings sit in one array; the header stride must be a cache-line multiple
type ring struct {
	pos   atomic.Uint64 // next sequence number; slots[pos&mask] is written next
	mask  uint64
	slots []slot
	_     [64 - 8 - 8 - 24]byte
}

// dropped returns how many events have been overwritten: the ring keeps the
// most recent cap(slots) events, so everything before pos−cap is gone.
func (r *ring) dropped() uint64 {
	if pos, c := r.pos.Load(), uint64(len(r.slots)); pos > c {
		return pos - c
	}
	return 0
}

// Tracer owns one ring per writer. The zero cost when disabled is a single
// atomic bool load and a predicted branch at each record site (Enabled);
// rings are allocated lazily on the first Start, so schedulers that never
// trace never pay the buffer memory.
type Tracer struct {
	on    atomic.Bool
	names []string // per-ring display names (len(names) rings)
	cap   int      // per-ring capacity, power of two

	mu    sync.Mutex             // guards lazy ring allocation
	rings atomic.Pointer[[]ring] // nil until the first Start
}

// New returns a tracer with one ring per name (disabled, nothing
// allocated beyond the descriptor). perRing is the per-ring event capacity,
// rounded up to a power of two; 0 selects DefaultRingEvents.
func New(names []string, perRing int) *Tracer {
	if perRing <= 0 {
		perRing = DefaultRingEvents
	}
	if perRing < minRingEvents {
		perRing = minRingEvents
	}
	c := 1
	for c < perRing {
		c <<= 1
	}
	return &Tracer{names: append([]string(nil), names...), cap: c}
}

// Rings returns the number of rings (writers).
func (t *Tracer) Rings() int { return len(t.names) }

// Start enables recording, allocating the rings on first use. Restarting a
// stopped tracer resumes recording into the same rings (sequence numbers
// keep counting), so successive capture windows share one timeline.
func (t *Tracer) Start() {
	t.mu.Lock()
	if t.rings.Load() == nil {
		rs := make([]ring, len(t.names))
		for i := range rs {
			rs[i].slots = make([]slot, t.cap)
			rs[i].mask = uint64(t.cap - 1)
		}
		t.rings.Store(&rs) // publish before enabling: Record never sees nil while on
	}
	t.on.Store(true)
	t.mu.Unlock()
}

// Stop disables recording. The rings (and their events) are kept for
// snapshotting; Start resumes.
func (t *Tracer) Stop() { t.on.Store(false) }

// Enabled reports whether recording is on. Record sites guard on this; when
// it returns false the site's whole cost was this one load and branch.
func (t *Tracer) Enabled() bool { return t.on.Load() }

// Record appends one event to ring ri and returns its process-unique event
// id (the task trace id, when the event creates a task). Only the ring's
// owner may call it; the write path is allocation-free — a clock read and
// six stores to an owner-exclusive line. On overflow the oldest event is
// overwritten (drop-oldest; Snapshot reports the count).
//
//repro:noalloc documented allocation-free; fires on every traced scheduler event
func (t *Tracer) Record(ri int, k Kind, other int, x uint32, arg uint64) uint64 {
	rsp := t.rings.Load()
	if rsp == nil {
		return 0 // never started; Enabled() was false at the guard, racing Stop
	}
	r := &(*rsp)[ri]
	seq := r.pos.Load() // owner-only writer: plain read-modify-write is safe
	s := &r.slots[seq&r.mask]
	s.stamp.Store(2*seq + 1) // odd: slot torn while we write
	s.ts.Store(Now())
	s.meta.Store(uint64(k)<<56 | uint64(uint16(other))<<40 | uint64(x))
	s.arg.Store(arg)
	s.stamp.Store(2*seq + 2) // even and seq-unique: slot stable
	r.pos.Store(seq + 1)
	return eventID(ri, seq)
}

// Events returns the total number of events recorded across all rings
// (including overwritten ones).
func (t *Tracer) Events() uint64 {
	rsp := t.rings.Load()
	if rsp == nil {
		return 0
	}
	var total uint64
	for i := range *rsp {
		total += (*rsp)[i].pos.Load()
	}
	return total
}

// Dropped returns how many events of ring ri have been overwritten.
func (t *Tracer) Dropped(ri int) uint64 {
	rsp := t.rings.Load()
	if rsp == nil {
		return 0
	}
	return (*rsp)[ri].dropped()
}

// DroppedTotal returns the overwritten-event count summed over all rings.
func (t *Tracer) DroppedTotal() uint64 {
	rsp := t.rings.Load()
	if rsp == nil {
		return 0
	}
	var total uint64
	for i := range *rsp {
		total += (*rsp)[i].dropped()
	}
	return total
}

// Snapshot reads every ring without stopping the writers and returns the
// surviving events in timestamp order. Consistency per event comes from the
// slot stamps: a slot is copied, then its stamp re-checked — if the owner
// wrapped around and reused the slot mid-copy the stamp no longer matches
// the expected 2·seq+2 and the (torn) copy is discarded. An event can be
// lost to a concurrent overwrite, never corrupted.
func (t *Tracer) Snapshot() Snapshot {
	snap := Snapshot{
		Names:   append([]string(nil), t.names...),
		Dropped: make([]uint64, len(t.names)),
	}
	rsp := t.rings.Load()
	if rsp == nil {
		return snap
	}
	for ri := range *rsp {
		r := &(*rsp)[ri]
		pos := r.pos.Load()
		lo := uint64(0)
		if c := uint64(len(r.slots)); pos > c {
			lo = pos - c
		}
		snap.Dropped[ri] = lo
		for seq := lo; seq < pos; seq++ {
			s := &r.slots[seq&r.mask]
			want := 2*seq + 2
			if s.stamp.Load() != want {
				continue // mid-write or already overwritten
			}
			ts, meta, arg := s.ts.Load(), s.meta.Load(), s.arg.Load()
			if s.stamp.Load() != want {
				continue // overwritten while copying: discard the torn copy
			}
			snap.Events = append(snap.Events, Event{
				Ring:  ri,
				Seq:   seq,
				TS:    ts,
				Kind:  Kind(meta >> 56),
				Other: int(uint16(meta >> 40)),
				X:     uint32(meta),
				Arg:   arg,
			})
		}
	}
	sort.Slice(snap.Events, func(i, j int) bool {
		a, b := snap.Events[i], snap.Events[j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		if a.Ring != b.Ring {
			return a.Ring < b.Ring
		}
		return a.Seq < b.Seq
	})
	return snap
}

// Snapshot is one consistent read of a tracer's rings.
type Snapshot struct {
	Names   []string // per-ring display names
	Dropped []uint64 // per-ring events overwritten before this snapshot
	Events  []Event  // ascending timestamp (ties broken by ring, then seq)
}

// Since returns the snapshot restricted to events with TS ≥ ts — the
// bounded-window form used by the /debug/trace endpoint, which marks Now()
// before enabling capture and filters the accumulated rings down to the
// window it observed.
func (s Snapshot) Since(ts int64) Snapshot {
	out := Snapshot{Names: s.Names, Dropped: s.Dropped}
	i := sort.Search(len(s.Events), func(i int) bool { return s.Events[i].TS >= ts })
	out.Events = s.Events[i:]
	return out
}

// Text renders the snapshot as a compact line-per-event dump (TraceDump and
// the /debug/trace?format=text endpoint).
func (s Snapshot) Text() string {
	var b strings.Builder
	for i, d := range s.Dropped {
		if d > 0 {
			fmt.Fprintf(&b, "# %s: %d events dropped (ring overflow)\n", s.Names[i], d)
		}
	}
	for _, e := range s.Events {
		fmt.Fprintf(&b, "%12.6fms r%-3d %-14s other=%-3d x=%-8d arg=%#x\n",
			float64(e.TS)/1e6, e.Ring, e.Kind, e.Other, e.X, e.Arg)
	}
	return b.String()
}
