package trace

import (
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestKindNamesExhaustive pins that every Kind has a distinct, non-empty
// display name — adding a Kind without extending kindNames fails to compile
// (fixed-size array), and this test catches duplicated or forgotten strings.
func TestKindNamesExhaustive(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if name == "" {
			t.Fatalf("kind %d has an empty name", k)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, name)
		}
		seen[name] = k
	}
	if got := NumKinds.String(); !strings.HasPrefix(got, "kind-") {
		t.Fatalf("out-of-range kind renders %q", got)
	}
}

// TestStateNamesExhaustive does the same for worker states, and additionally
// pins that every name is a valid Prometheus label value in the snake_case
// the repro_worker_state_samples_total{state=...} series use.
func TestStateNamesExhaustive(t *testing.T) {
	label := regexp.MustCompile(`^[a-z][a-z_]*$`)
	seen := map[string]State{}
	for s := State(0); s < NumStates; s++ {
		name := s.String()
		if !label.MatchString(name) {
			t.Fatalf("state %d name %q is not snake_case", s, name)
		}
		if prev, dup := seen[name]; dup {
			t.Fatalf("states %d and %d share the name %q", prev, s, name)
		}
		seen[name] = s
	}
	if got := NumStates.String(); !strings.HasPrefix(got, "state-") {
		t.Fatalf("out-of-range state renders %q", got)
	}
}

// TestRecordSnapshotRoundTrip records known events on two rings and checks
// the snapshot returns exactly them, payloads intact, in timestamp order,
// with dense per-ring sequence numbers and ids matching Record's returns.
func TestRecordSnapshotRoundTrip(t *testing.T) {
	tr := New([]string{"w0", "w1"}, 64)
	if tr.Enabled() {
		t.Fatal("tracer enabled before Start")
	}
	if id := tr.Record(0, EvSpawn, 0, 1, 0); id != 0 {
		t.Fatalf("Record before Start returned id %d, want 0", id)
	}
	tr.Start()
	if !tr.Enabled() {
		t.Fatal("tracer not enabled after Start")
	}
	ids := []uint64{
		tr.Record(0, EvSpawn, 0, 1, 0),
		tr.Record(1, EvSteal, 0, 3, 0),
		tr.Record(0, EvStart, 0, 1, 42),
	}
	snap := tr.Snapshot()
	if len(snap.Events) != 3 {
		t.Fatalf("snapshot has %d events, want 3:\n%s", len(snap.Events), snap.Text())
	}
	for i := 1; i < len(snap.Events); i++ {
		if snap.Events[i].TS < snap.Events[i-1].TS {
			t.Fatalf("snapshot not timestamp-ordered: %v", snap.Events)
		}
	}
	byID := map[uint64]Event{}
	for _, e := range snap.Events {
		byID[e.ID()] = e
	}
	if len(byID) != 3 {
		t.Fatalf("event ids not unique: %v", snap.Events)
	}
	spawn, steal, start := byID[ids[0]], byID[ids[1]], byID[ids[2]]
	if spawn.Kind != EvSpawn || spawn.Ring != 0 || spawn.Seq != 0 || spawn.X != 1 {
		t.Fatalf("spawn event mangled: %+v", spawn)
	}
	if steal.Kind != EvSteal || steal.Ring != 1 || steal.Seq != 0 || steal.X != 3 {
		t.Fatalf("steal event mangled: %+v", steal)
	}
	if start.Kind != EvStart || start.Ring != 0 || start.Seq != 1 || start.Arg != 42 {
		t.Fatalf("start event mangled: %+v", start)
	}
	if snap.Names[0] != "w0" || snap.Names[1] != "w1" {
		t.Fatalf("names mangled: %v", snap.Names)
	}
	if snap.Dropped[0] != 0 || snap.Dropped[1] != 0 {
		t.Fatalf("dropped = %v, want zeros", snap.Dropped)
	}
}

// TestRingOverflow pins the drop-oldest contract: a full ring keeps the most
// recent cap events and reports everything older as dropped.
func TestRingOverflow(t *testing.T) {
	tr := New([]string{"w"}, minRingEvents) // capacity 8
	tr.Start()
	const total = 20
	for i := 0; i < total; i++ {
		tr.Record(0, EvSpawn, 0, uint32(i), 0)
	}
	if got, want := tr.Dropped(0), uint64(total-minRingEvents); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	if got := tr.DroppedTotal(); got != uint64(total-minRingEvents) {
		t.Fatalf("DroppedTotal = %d", got)
	}
	if got := tr.Events(); got != total {
		t.Fatalf("Events = %d, want %d", got, total)
	}
	snap := tr.Snapshot()
	if len(snap.Events) != minRingEvents {
		t.Fatalf("snapshot has %d events, want %d", len(snap.Events), minRingEvents)
	}
	for i, e := range snap.Events {
		if want := uint32(total - minRingEvents + i); e.X != want {
			t.Fatalf("event %d payload X = %d, want %d (oldest not dropped)", i, e.X, want)
		}
	}
	if snap.Dropped[0] != total-minRingEvents {
		t.Fatalf("snapshot Dropped = %v", snap.Dropped)
	}
	if txt := snap.Text(); !strings.Contains(txt, "dropped") {
		t.Fatalf("Text() lacks the dropped header:\n%s", txt)
	}
}

// TestStopKeepsEventsRestartAppends pins the toggle contract: Stop leaves
// the recorded events readable, and a restart appends to the same timeline
// (sequence numbers keep counting — restarting never invalidates old ids).
func TestStopKeepsEventsRestartAppends(t *testing.T) {
	tr := New([]string{"w"}, 64)
	tr.Start()
	for i := 0; i < 3; i++ {
		tr.Record(0, EvSpawn, 0, 1, 0)
	}
	tr.Stop()
	if tr.Enabled() {
		t.Fatal("enabled after Stop")
	}
	if got := len(tr.Snapshot().Events); got != 3 {
		t.Fatalf("events after Stop = %d, want 3", got)
	}
	tr.Start()
	tr.Record(0, EvSteal, 0, 1, 0)
	snap := tr.Snapshot()
	if got := len(snap.Events); got != 4 {
		t.Fatalf("events after restart = %d, want 4", got)
	}
	if last := snap.Events[3]; last.Seq != 3 {
		t.Fatalf("restart did not continue the sequence: %+v", last)
	}
}

// TestSnapshotSince pins the bounded-window filter of /debug/trace.
func TestSnapshotSince(t *testing.T) {
	tr := New([]string{"w"}, 64)
	tr.Start()
	for i := 0; i < 5; i++ {
		tr.Record(0, EvSpawn, 0, uint32(i), 0)
	}
	snap := tr.Snapshot()
	cut := snap.Events[2].TS
	win := snap.Since(cut)
	if len(win.Events) > len(snap.Events)-2 {
		t.Fatalf("Since(%d) kept %d of %d events", cut, len(win.Events), len(snap.Events))
	}
	for _, e := range win.Events {
		if e.TS < cut {
			t.Fatalf("Since kept event before the cut: %+v", e)
		}
	}
	if len(win.Names) != 1 || len(win.Dropped) != 1 {
		t.Fatalf("Since dropped the ring metadata: %+v", win)
	}
}

// TestRecordZeroAlloc is the regression gate for the tracer's hot-path
// claim: recording with tracing on allocates nothing, and the disabled
// guard (Enabled + branch) allocates nothing either.
func TestRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	tr := New([]string{"w"}, 1024)
	tr.Start()
	if avg := testing.AllocsPerRun(200, func() {
		tr.Record(0, EvSpawn, 0, 1, 42)
	}); avg != 0 {
		t.Fatalf("enabled Record allocates %v per call, want 0", avg)
	}
	tr.Stop()
	if avg := testing.AllocsPerRun(200, func() {
		if tr.Enabled() {
			tr.Record(0, EvSpawn, 0, 1, 42)
		}
	}); avg != 0 {
		t.Fatalf("disabled guard allocates %v per call, want 0", avg)
	}
}

// TestConcurrentRecordSnapshot hammers the seqlock read path: one writer per
// ring wraps its small ring many times while snapshots run concurrently.
// Every surviving event must be well-formed (the stamp validation never
// yields a torn copy), and per-ring sequences must be strictly increasing.
// Under -race this also proves the all-atomic slot protocol is clean.
func TestConcurrentRecordSnapshot(t *testing.T) {
	const (
		rings     = 4
		perWriter = 20000
	)
	tr := New(make([]string, rings), minRingEvents*2)
	tr.Start()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for ri := 0; ri < rings; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tr.Record(ri, Kind(i%int(NumKinds)), ri, uint32(i), uint64(i))
			}
		}(ri)
	}
	go func() { wg.Wait(); close(stop) }()
	snaps := 0
	for {
		snap := tr.Snapshot()
		snaps++
		lastSeq := make(map[int]uint64)
		for _, e := range snap.Events {
			if e.Kind >= NumKinds {
				t.Fatalf("torn event: kind %d out of range (%+v)", e.Kind, e)
			}
			if e.TS <= 0 {
				t.Fatalf("torn event: non-positive timestamp (%+v)", e)
			}
			// A consistent slot has X ≡ Arg ≡ seq-of-write (mod payload
			// widths) by construction above: kind, X, and Arg all derive
			// from the same loop index.
			if uint64(e.X) != e.Arg&0xffffffff {
				t.Fatalf("torn event: X %d does not match Arg %d (%+v)", e.X, e.Arg, e)
			}
			if prev, ok := lastSeq[e.Ring]; ok && e.Seq <= prev {
				t.Fatalf("ring %d sequences not increasing: %d after %d", e.Ring, e.Seq, prev)
			}
			lastSeq[e.Ring] = e.Seq
		}
		select {
		case <-stop:
			if want := uint64(rings * perWriter); tr.Events() != want {
				t.Fatalf("Events = %d, want %d", tr.Events(), want)
			}
			if snaps < 2 {
				t.Fatalf("only %d snapshots raced the writers", snaps)
			}
			return
		default:
		}
	}
}
