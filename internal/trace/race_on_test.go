//go:build race

package trace

// raceEnabled reports that this test binary runs under the race detector
// (which instruments allocations, so alloc-count assertions do not hold).
const raceEnabled = true
