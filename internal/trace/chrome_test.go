package trace

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSnapshot fabricates a small but representative capture with fixed
// timestamps (Record reads the real clock, so a recorded snapshot would not
// be reproducible): an externally admitted task taken and run on worker 0,
// an interior spawn stolen and run by worker 1, a completed group, a park
// interval, a team task with a barrier, and one still-open park at the end
// of the window.
func goldenSnapshot() Snapshot {
	ev := func(ring int, seq uint64, ts int64, k Kind, other int, x uint32, arg uint64) Event {
		return Event{Ring: ring, Seq: seq, TS: ts, Kind: k, Other: other, X: x, Arg: arg}
	}
	enqID := eventID(2, 0)   // admission ring, first event
	spawnID := eventID(0, 2) // worker 0's interior spawn
	return Snapshot{
		Names:   []string{"worker 0", "worker 1", "inject"},
		Dropped: []uint64{0, 7, 0},
		Events: []Event{
			ev(2, 0, 1000, EvInjectEnqueue, 0, 1, 0),
			ev(0, 0, 2000, EvInjectTake, 2, 1, enqID),
			ev(0, 1, 3000, EvStart, 0, 1, enqID),
			ev(0, 2, 3500, EvSpawn, 0, 1, 0),
			ev(0, 3, 5000, EvDone, 0, 1, enqID),
			ev(1, 0, 5200, EvSteal, 0, 1, 0),
			ev(1, 1, 5500, EvStart, 0, 1, spawnID),
			ev(1, 2, 6000, EvDone, 0, 1, spawnID),
			ev(0, 4, 6500, EvGroupDone, 0, 1, 0),
			ev(1, 3, 6600, EvPark, 0, 0, 0),
			ev(1, 4, 7000, EvUnpark, 0, 0, 0),
			ev(0, 5, 8000, EvStart, 0, 2, 0),
			ev(0, 6, 8200, EvBarrierEnter, 0, 0, 0),
			ev(0, 7, 8400, EvBarrierLeave, 0, 0, 0),
			ev(0, 8, 9000, EvDone, 0, 2, 0),
			ev(0, 9, 9500, EvPark, 0, 0, 0),
		},
	}
}

// TestWriteChromeGolden pins the exporter's exact output byte-for-byte and
// checks it passes this package's own schema validation.
func TestWriteChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	n, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails validation: %v\n%s", err, buf.String())
	}
	if n == 0 {
		t.Fatal("exported trace has no events")
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("output differs from %s (run with -update to rebless)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}
}

// TestWriteChromeShape spot-checks the semantic structure the golden bytes
// encode, so a deliberate rebless still has the invariants spelled out:
// paired durations, flow arrows only for in-window births, team naming,
// group async spans, and open slices at the window edge.
func TestWriteChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenSnapshot().WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`"name":"team-task"`,               // width-2 execution renamed
		`"name":"parked"`,                  // park/unpark pairing
		`"name":"barrier"`,                 // barrier enter/leave pairing
		`"ph":"s"`, `"ph":"t"`, `"ph":"f"`, // full flow chain enqueue→take→start
		`"ph":"b"`, `"ph":"e"`, // group async span
		`"ph":"B"`,        // trailing open park
		`"name":"inject"`, // admission ring track name
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export lacks %s:\n%s", want, out)
		}
	}
	if strings.Count(out, `"ph":"f"`) != 2 {
		// Exactly two flow finishes: the admitted task's start and the
		// stolen task's start. The team task (Arg 0, no creating event in
		// window) must not get one.
		t.Errorf("want exactly 2 flow finishes:\n%s", out)
	}
}
