package trace

import (
	"encoding/json"
	"fmt"
	"sort"
)

// ValidateChrome is a minimal schema checker for Chrome trace-event JSON —
// the checks Perfetto's importer effectively requires, so check.sh can fail
// a broken export before a human loads it. It accepts both the object form
// ({"traceEvents": [...]}) and a bare event array, and verifies:
//
//   - every event has a known phase, and non-metadata events carry a
//     numeric ts ≥ 0 and pid/tid
//   - B/E/X/i/I/M events are named; X durations are non-negative
//   - per (pid, tid) track, B/E nesting never underflows (an E with no
//     open B); slices still open at the end are allowed (cut window)
//   - flow steps/finishes (t/f) and async ends (e) refer to an id that a
//     flow start (s) / async begin (b) introduced at or before their ts
//
// It returns the number of events on success.
func ValidateChrome(data []byte) (int, error) {
	var file struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	raw := file.TraceEvents
	if err := json.Unmarshal(data, &file); err != nil || file.TraceEvents == nil {
		if err2 := json.Unmarshal(data, &raw); err2 != nil {
			return 0, fmt.Errorf("neither a trace object nor an event array: %v", err2)
		}
	} else {
		raw = file.TraceEvents
	}

	type cev struct {
		Name string   `json:"name"`
		Cat  string   `json:"cat"`
		Ph   string   `json:"ph"`
		TS   *float64 `json:"ts"`
		Dur  *float64 `json:"dur"`
		Pid  *float64 `json:"pid"`
		Tid  *float64 `json:"tid"`
		ID   string   `json:"id"`
	}
	phases := map[string]bool{
		"B": true, "E": true, "X": true, "i": true, "I": true,
		"s": true, "t": true, "f": true, "b": true, "e": true, "n": true,
		"M": true, "C": true,
	}
	named := map[string]bool{"B": true, "E": true, "X": true, "i": true, "I": true, "M": true}

	evs := make([]cev, 0, len(raw))
	for i, r := range raw {
		var e cev
		if err := json.Unmarshal(r, &e); err != nil {
			return 0, fmt.Errorf("event %d: %v", i, err)
		}
		if !phases[e.Ph] {
			return 0, fmt.Errorf("event %d: unknown phase %q", i, e.Ph)
		}
		if named[e.Ph] && e.Name == "" {
			return 0, fmt.Errorf("event %d: phase %q without a name", i, e.Ph)
		}
		if e.Ph != "M" {
			if e.TS == nil {
				return 0, fmt.Errorf("event %d (%s %q): no ts", i, e.Ph, e.Name)
			}
			if *e.TS < 0 {
				return 0, fmt.Errorf("event %d (%s %q): negative ts %v", i, e.Ph, e.Name, *e.TS)
			}
			if e.Pid == nil || e.Tid == nil {
				return 0, fmt.Errorf("event %d (%s %q): missing pid/tid", i, e.Ph, e.Name)
			}
		}
		if e.Ph == "X" && e.Dur != nil && *e.Dur < 0 {
			return 0, fmt.Errorf("event %d (X %q): negative dur %v", i, e.Name, *e.Dur)
		}
		switch e.Ph {
		case "s", "t", "f", "b", "e":
			if e.ID == "" {
				return 0, fmt.Errorf("event %d (%s %q): flow/async without id", i, e.Ph, e.Name)
			}
		}
		evs = append(evs, e)
	}

	// Order-dependent checks run in timestamp order (metadata excluded).
	timed := make([]cev, 0, len(evs))
	for _, e := range evs {
		if e.Ph != "M" {
			timed = append(timed, e)
		}
	}
	sort.SliceStable(timed, func(i, j int) bool { return *timed[i].TS < *timed[j].TS })

	depth := map[[2]float64]int{}         // open B count per (pid, tid)
	flowStart := map[[2]string]float64{}  // earliest s per (cat, id)
	asyncBegin := map[[2]string]float64{} // earliest b per (cat, id)
	for i, e := range timed {
		switch e.Ph {
		case "B":
			depth[[2]float64{*e.Pid, *e.Tid}]++
		case "E":
			k := [2]float64{*e.Pid, *e.Tid}
			if depth[k] == 0 {
				return 0, fmt.Errorf("timed event %d: E %q underflows track pid=%v tid=%v",
					i, e.Name, *e.Pid, *e.Tid)
			}
			depth[k]--
		case "s":
			k := [2]string{e.Cat, e.ID}
			if _, ok := flowStart[k]; !ok {
				flowStart[k] = *e.TS
			}
		case "t", "f":
			k := [2]string{e.Cat, e.ID}
			ts, ok := flowStart[k]
			if !ok || ts > *e.TS {
				return 0, fmt.Errorf("timed event %d: flow %s id=%q has no earlier start", i, e.Ph, e.ID)
			}
		case "b":
			k := [2]string{e.Cat, e.ID}
			if _, ok := asyncBegin[k]; !ok {
				asyncBegin[k] = *e.TS
			}
		case "e":
			k := [2]string{e.Cat, e.ID}
			ts, ok := asyncBegin[k]
			if !ok || ts > *e.TS {
				return 0, fmt.Errorf("timed event %d: async end id=%q has no earlier begin", i, e.ID)
			}
		}
	}
	return len(evs), nil
}
