package trace

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

// Chrome trace-event export: the snapshot rendered in the JSON object
// format of the Trace Event spec, loadable in Perfetto (ui.perfetto.dev)
// and chrome://tracing. Each ring becomes one named thread track. Durations
// (task executions, park intervals, barrier waits) are emitted as complete
// ("X") slices paired up from the begin/end events of each ring in sequence
// order; begin events whose end fell outside the capture window become open
// "B" slices, and end events without a begin in the window are dropped (so
// the output never underflows a track's slice stack). Flow arrows link a
// task's creating event (spawn or inject-enqueue) through an inject take to
// its execution start — the spawn→start edge that shows steals and
// admission hops. Groups appear as async spans keyed by group id.

// chromeEvent is one entry of the traceEvents array. Field order (and the
// alphabetical key order encoding/json gives maps) makes the output
// deterministic and golden-testable.
type chromeEvent struct {
	Name string         `json:"name,omitempty"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

func us(ts int64) float64 { return float64(ts) / 1e3 }

func flowID(id uint64) string { return strconv.FormatUint(id, 16) }

// WriteChrome writes the snapshot as Chrome trace-event JSON.
func (s Snapshot) WriteChrome(w io.Writer) error {
	evs := []chromeEvent{
		{Name: "process_name", Ph: "M", Args: map[string]any{"name": "repro scheduler"}},
	}
	for ri, name := range s.Names {
		evs = append(evs,
			chromeEvent{Name: "thread_name", Ph: "M", Tid: ri, Args: map[string]any{"name": name}},
			chromeEvent{Name: "thread_sort_index", Ph: "M", Tid: ri, Args: map[string]any{"sort_index": ri}},
		)
	}
	meta := len(evs)

	// Flow arrows only for tasks whose creating event survived in the
	// window: a flow finish without its start renders nothing useful and
	// fails strict validation.
	born := map[uint64]bool{}
	// Group async spans: first admission and last completion per group id.
	type groupSpan struct {
		first, last int64
		done        bool
	}
	groups := map[uint32]*groupSpan{}
	perRing := make([][]Event, len(s.Names))
	for _, e := range s.Events {
		perRing[e.Ring] = append(perRing[e.Ring], e)
		switch e.Kind {
		case EvSpawn, EvInjectEnqueue:
			born[e.ID()] = true
		}
		if e.Kind == EvInjectEnqueue || e.Kind == EvGroupDone {
			g, ok := groups[e.X]
			if !ok {
				g = &groupSpan{first: e.TS, last: e.TS}
				groups[e.X] = g
			}
			if e.TS < g.first {
				g.first = e.TS
			}
			if e.TS > g.last {
				g.last = e.TS
			}
			if e.Kind == EvGroupDone {
				g.done = true
			}
		}
	}

	// open is one not-yet-closed duration on a ring's slice stack.
	type open struct {
		kind Kind
		ts   int64
		x    uint32
		arg  uint64
	}
	durName := map[Kind]string{EvStart: "task", EvPark: "parked", EvBarrierEnter: "barrier"}
	for ri := range perRing {
		res := perRing[ri]
		sort.Slice(res, func(i, j int) bool { return res[i].Seq < res[j].Seq })
		var stack []open
		pop := func(k Kind, arg uint64) (open, bool) {
			if n := len(stack) - 1; n >= 0 && stack[n].kind == k &&
				(k != EvStart || stack[n].arg == arg) {
				o := stack[n]
				stack = stack[:n]
				return o, true
			}
			return open{}, false
		}
		for _, e := range res {
			switch e.Kind {
			case EvStart:
				stack = append(stack, open{kind: EvStart, ts: e.TS, x: e.X, arg: e.Arg})
				if born[e.Arg] {
					evs = append(evs, chromeEvent{Name: "spawn", Cat: "flow", Ph: "f",
						BP: "e", TS: us(e.TS), Tid: ri, ID: flowID(e.Arg)})
				}
			case EvDone:
				if o, ok := pop(EvStart, e.Arg); ok {
					name := "task"
					if o.x > 1 {
						name = "team-task"
					}
					evs = append(evs, chromeEvent{Name: name, Cat: "task", Ph: "X",
						TS: us(o.ts), Dur: us(e.TS - o.ts), Tid: ri,
						Args: map[string]any{"tid": flowID(e.Arg), "width": o.x}})
				}
			case EvPark:
				stack = append(stack, open{kind: EvPark, ts: e.TS})
			case EvUnpark:
				if o, ok := pop(EvPark, 0); ok {
					evs = append(evs, chromeEvent{Name: "parked", Cat: "idle", Ph: "X",
						TS: us(o.ts), Dur: us(e.TS - o.ts), Tid: ri})
				}
			case EvBarrierEnter:
				stack = append(stack, open{kind: EvBarrierEnter, ts: e.TS, x: e.X})
			case EvBarrierLeave:
				if o, ok := pop(EvBarrierEnter, 0); ok {
					evs = append(evs, chromeEvent{Name: "barrier", Cat: "team", Ph: "X",
						TS: us(o.ts), Dur: us(e.TS - o.ts), Tid: ri,
						Args: map[string]any{"local_id": o.x}})
				}
			case EvSpawn:
				evs = append(evs, chromeEvent{Name: "spawn", Cat: "task", Ph: "i",
					TS: us(e.TS), Tid: ri, Args: map[string]any{"r": e.X}})
				evs = append(evs, chromeEvent{Name: "spawn", Cat: "flow", Ph: "s",
					TS: us(e.TS), Tid: ri, ID: flowID(e.ID())})
			case EvInjectEnqueue:
				evs = append(evs, chromeEvent{Name: "inject-enqueue", Cat: "admission", Ph: "i",
					TS: us(e.TS), Tid: ri, Args: map[string]any{"group": e.X}})
				evs = append(evs, chromeEvent{Name: "spawn", Cat: "flow", Ph: "s",
					TS: us(e.TS), Tid: ri, ID: flowID(e.ID())})
			case EvInjectTake:
				evs = append(evs, chromeEvent{Name: "inject-take", Cat: "admission", Ph: "i",
					TS: us(e.TS), Tid: ri, Args: map[string]any{"group": e.X}})
				if born[e.Arg] {
					evs = append(evs, chromeEvent{Name: "spawn", Cat: "flow", Ph: "t",
						TS: us(e.TS), Tid: ri, ID: flowID(e.Arg)})
				}
			case EvSteal:
				evs = append(evs, chromeEvent{Name: "steal", Cat: "steal", Ph: "i",
					TS: us(e.TS), Tid: ri,
					Args: map[string]any{"victim": e.Other, "tasks": e.X}})
			default:
				evs = append(evs, chromeEvent{Name: e.Kind.String(), Cat: chromeCat(e.Kind),
					Ph: "i", TS: us(e.TS), Tid: ri,
					Args: map[string]any{"other": e.Other, "x": e.X, "arg": e.Arg}})
			}
		}
		// Durations still open at the end of the window: emit begin-only
		// slices so the viewer shows them as in progress.
		for _, o := range stack {
			evs = append(evs, chromeEvent{Name: durName[o.kind], Cat: "task", Ph: "B",
				TS: us(o.ts), Tid: ri})
		}
	}

	// Async span per group that completed inside the window.
	admRing := len(s.Names) - 1
	gids := make([]uint32, 0, len(groups))
	for gid, g := range groups {
		if g.done && g.last > g.first {
			gids = append(gids, gid)
		}
	}
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })
	for _, gid := range gids {
		g := groups[gid]
		id := strconv.FormatUint(uint64(gid), 10)
		evs = append(evs,
			chromeEvent{Name: "group", Cat: "group", Ph: "b", TS: us(g.first), Tid: admRing, ID: id},
			chromeEvent{Name: "group", Cat: "group", Ph: "e", TS: us(g.last), Tid: admRing, ID: id},
		)
	}

	// Metadata first, then everything else in time order (stable, so same-
	// timestamp events keep their per-ring emission order). At equal
	// timestamps flow/async starts sort first: a flow step whose start
	// carries the same coarse timestamp must still follow it.
	rank := func(ph string) int {
		if ph == "s" || ph == "b" {
			return 0
		}
		return 1
	}
	sort.SliceStable(evs[meta:], func(i, j int) bool {
		a, b := evs[meta+i], evs[meta+j]
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return rank(a.Ph) < rank(b.Ph)
	})
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: evs})
}

// chromeCat buckets the instant-only kinds into viewer categories.
func chromeCat(k Kind) string {
	switch k {
	case EvStealAttempt:
		return "steal"
	case EvGroupDone:
		return "group"
	case EvGroupCancel, EvDeadlineFire, EvInjectRevoke:
		return "cancel"
	case EvTeamFixed, EvPublish, EvPickup, EvExecDone:
		return "team"
	case EvQuiesceScan:
		return "quiesce"
	default:
		return "protocol"
	}
}
