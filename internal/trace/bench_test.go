package trace

import "testing"

// BenchmarkTraceRecord measures the tracer's per-event cost on both sides of
// the toggle. "off" is the cost every task pays when tracing is disabled
// (one atomic load and a predicted branch); "on" is the full seqlock write.
// Both must report 0 allocs/op.
func BenchmarkTraceRecord(b *testing.B) {
	b.Run("off", func(b *testing.B) {
		tr := New([]string{"w"}, DefaultRingEvents)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if tr.Enabled() {
				tr.Record(0, EvSpawn, 0, 1, uint64(i))
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		tr := New([]string{"w"}, DefaultRingEvents)
		tr.Start()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Record(0, EvSpawn, 0, 1, uint64(i))
		}
	})
}
