package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Sampler is the worker-state sampling profiler: a background goroutine
// reads every worker's published State at a fixed frequency and counts the
// observations per state. The workers pay nothing — they already store
// their state (a plain owner store on their own line) whether or not a
// sampler runs — so the profiler gives a statistical running/stealing/
// parked/in-team CPU-time breakdown with zero hot-path cost, exposed
// through the registry as repro_worker_state_samples_total{state=...}.
type Sampler struct {
	n      int
	get    func(i int) State
	counts [NumStates]atomic.Int64
	ticks  atomic.Int64

	mu   sync.Mutex
	stop chan struct{} // non-nil while running
	wg   sync.WaitGroup
}

// NewSampler returns a stopped sampler over n workers; get returns worker
// i's current state and must be safe to call concurrently with the workers.
func NewSampler(n int, get func(i int) State) *Sampler {
	return &Sampler{n: n, get: get}
}

// Start launches the sampling goroutine at hz samples per second (each
// sample reads every worker once). hz ≤ 0 selects 100 Hz; hz is capped at
// 10 kHz. Starting a running sampler is a no-op; counters accumulate across
// stop/start cycles.
func (s *Sampler) Start(hz float64) {
	if hz <= 0 {
		hz = 100
	}
	if hz > 10000 {
		hz = 10000
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return
	}
	stop := make(chan struct{})
	s.stop = stop
	s.wg.Add(1)
	go s.loop(time.Duration(float64(time.Second)/hz), stop)
}

func (s *Sampler) loop(period time.Duration, stop chan struct{}) {
	defer s.wg.Done()
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			s.ticks.Add(1)
			for i := 0; i < s.n; i++ {
				st := s.get(i)
				if st >= NumStates {
					st = StateIdle // defensive: corrupt state counts as idle
				}
				s.counts[st].Add(1)
			}
		}
	}
}

// Stop halts sampling and waits for the goroutine to exit. Idempotent.
func (s *Sampler) Stop() {
	s.mu.Lock()
	if s.stop != nil {
		close(s.stop)
		s.stop = nil
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Running reports whether the sampling goroutine is active.
func (s *Sampler) Running() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stop != nil
}

// Count returns the number of times state st has been observed.
func (s *Sampler) Count(st State) int64 {
	if st >= NumStates {
		return 0
	}
	return s.counts[st].Load()
}

// Ticks returns the number of completed sampling rounds (each round reads
// every worker, so the counts sum to Ticks × workers).
func (s *Sampler) Ticks() int64 { return s.ticks.Load() }
