// Package reg implements the packed registration structure of the
// team-building work-stealer (Wimmer & Träff §3).
//
// Each worker owns one registration word R with four 16-bit fields, all
// updated together by a single 64-bit compare-and-swap:
//
//	r — threads required by the task currently being coordinated
//	a — threads acquired (registered) for the team, including the coordinator
//	t — threads teamed up (fixed team size), including the coordinator
//	N — epoch counter, incremented whenever registrations are revoked
//
// The paper packs the fields exactly this way ("The full registration
// structure can be packed into a 64-bit integer ... by assigning 16 bits to
// each field").
package reg

import (
	"fmt"
	"sync/atomic"
)

// R is the unpacked registration structure.
type R struct {
	Req   uint16 // r: required threads for the coordinated task
	Acq   uint16 // a: acquired (registered) threads, coordinator included
	Team  uint16 // t: teamed threads, coordinator included
	Epoch uint16 // N: revocation counter (wraps; only equality is used)
}

// Idle is the registration state of a worker that is not coordinating any
// multi-threaded task: a team of one (itself).
func Idle(epoch uint16) R { return R{Req: 1, Acq: 1, Team: 1, Epoch: epoch} }

// Pack packs r into a single 64-bit word.
func Pack(r R) uint64 {
	return uint64(r.Req) | uint64(r.Acq)<<16 | uint64(r.Team)<<32 | uint64(r.Epoch)<<48
}

// Unpack is the inverse of Pack.
func Unpack(w uint64) R {
	return R{
		Req:   uint16(w),
		Acq:   uint16(w >> 16),
		Team:  uint16(w >> 32),
		Epoch: uint16(w >> 48),
	}
}

// String formats the registration structure for traces and tests.
func (r R) String() string {
	return fmt.Sprintf("{r:%d a:%d t:%d N:%d}", r.Req, r.Acq, r.Team, r.Epoch)
}

// Word is an atomically accessed registration word. The zero value is
// all-zero and must be initialized with Store(Idle(0)) before use.
type Word struct {
	w atomic.Uint64
}

// Load returns the current registration structure.
func (w *Word) Load() R { return Unpack(w.w.Load()) }

// Store unconditionally overwrites the word. Owner-only, and only safe when
// no concurrent registrations are possible (e.g. during initialization).
func (w *Word) Store(r R) { w.w.Store(Pack(r)) }

// CAS atomically replaces old with new, returning whether it succeeded.
// This is the single extra CAS per joining thread that the paper advertises.
func (w *Word) CAS(old, new R) bool {
	return w.w.CompareAndSwap(Pack(old), Pack(new))
}
