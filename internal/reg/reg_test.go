package reg

import (
	"testing"
	"testing/quick"
)

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(r, a, tm, n uint16) bool {
		in := R{Req: r, Acq: a, Team: tm, Epoch: n}
		return Unpack(Pack(in)) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPackDistinct(t *testing.T) {
	// Distinct structures pack to distinct words (Pack is injective).
	f := func(x, y R) bool {
		return (x == y) == (Pack(x) == Pack(y))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIdle(t *testing.T) {
	r := Idle(7)
	if r.Req != 1 || r.Acq != 1 || r.Team != 1 || r.Epoch != 7 {
		t.Fatalf("Idle(7) = %v", r)
	}
}

func TestWordCAS(t *testing.T) {
	var w Word
	w.Store(Idle(0))
	old := w.Load()
	next := R{Req: 4, Acq: 1, Team: 1, Epoch: 0}
	if !w.CAS(old, next) {
		t.Fatal("CAS with correct old value failed")
	}
	if w.Load() != next {
		t.Fatalf("Load = %v, want %v", w.Load(), next)
	}
	if w.CAS(old, Idle(9)) {
		t.Fatal("CAS with stale old value succeeded")
	}
	if w.Load() != next {
		t.Fatal("failed CAS modified the word")
	}
}

func TestString(t *testing.T) {
	got := R{Req: 4, Acq: 3, Team: 2, Epoch: 9}.String()
	if got != "{r:4 a:3 t:2 N:9}" {
		t.Fatalf("String = %q", got)
	}
}

func TestSixteenBitFields(t *testing.T) {
	// Max field values survive the packing (the paper packs 4×16 bits).
	in := R{Req: 65535, Acq: 65535, Team: 65535, Epoch: 65535}
	if Unpack(Pack(in)) != in {
		t.Fatal("max field values corrupted")
	}
}
