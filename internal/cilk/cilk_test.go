package cilk

import (
	"sync/atomic"
	"testing"
)

func newTest(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Shutdown)
	return s
}

func TestRunsAllTasks(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var ran atomic.Int64
	const n = 2000
	for i := 0; i < n; i++ {
		s.Spawn(Func(func(*Ctx) { ran.Add(1) }))
	}
	s.Wait()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d, want %d", got, n)
	}
}

func TestRecursiveSpawn(t *testing.T) {
	s := newTest(t, Options{P: 8})
	var ran atomic.Int64
	var rec func(d int) Task
	rec = func(d int) Task {
		return Func(func(ctx *Ctx) {
			ran.Add(1)
			if d > 0 {
				ctx.Spawn(rec(d - 1))
				ctx.Spawn(rec(d - 1))
			}
		})
	}
	s.Run(rec(12))
	if got, want := ran.Load(), int64(1<<13-1); got != want {
		t.Fatalf("ran %d, want %d", got, want)
	}
}

func TestStealsAreSingle(t *testing.T) {
	s := newTest(t, Options{P: 4})
	// Spawn in waves until a thief has actually stolen: on a machine with
	// few hardware threads a single burst can be produced and drained
	// within the producer's OS timeslice, before any other worker
	// goroutine gets scheduled at all.
	s.Run(Func(func(ctx *Ctx) {
		for wave := 0; wave < 200 && s.Stats().Steals == 0; wave++ {
			for i := 0; i < 500; i++ {
				ctx.Spawn(Func(func(*Ctx) {
					x := 0
					for j := 0; j < 1000; j++ {
						x += j
					}
					_ = x
				}))
			}
		}
	}))
	st := s.Stats()
	if st.Steals == 0 {
		t.Fatal("no steals recorded")
	}
	if st.Steals != st.TasksStolen {
		t.Fatalf("cilk must steal one at a time: steals=%d stolen=%d", st.Steals, st.TasksStolen)
	}
}

func TestSyncGroup(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var children, parent atomic.Int64
	s.Run(Func(func(ctx *Ctx) {
		var g SyncGroup
		for i := 0; i < 100; i++ {
			g.Spawn(ctx, Func(func(*Ctx) { children.Add(1) }))
		}
		g.Wait(ctx)
		if children.Load() != 100 {
			t.Errorf("sync returned with %d children done", children.Load())
		}
		parent.Add(1)
	}))
	if parent.Load() != 1 {
		t.Fatal("parent never completed")
	}
}

func TestNestedSyncGroups(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var leaves atomic.Int64
	var rec func(ctx *Ctx, d int)
	rec = func(ctx *Ctx, d int) {
		if d == 0 {
			leaves.Add(1)
			return
		}
		var g SyncGroup
		g.Spawn(ctx, Func(func(c *Ctx) { rec(c, d-1) }))
		g.Spawn(ctx, Func(func(c *Ctx) { rec(c, d-1) }))
		g.Wait(ctx)
	}
	s.Run(Func(func(ctx *Ctx) { rec(ctx, 7) }))
	if got := leaves.Load(); got != 128 {
		t.Fatalf("leaves = %d, want 128", got)
	}
}

func TestP1(t *testing.T) {
	s := newTest(t, Options{P: 1})
	var ran atomic.Int64
	s.Run(Func(func(ctx *Ctx) {
		var g SyncGroup
		g.Spawn(ctx, Func(func(*Ctx) { ran.Add(1) }))
		g.Wait(ctx)
	}))
	if ran.Load() != 1 {
		t.Fatal("single-worker cilk broken")
	}
}
