// Package cilk implements a Cilk-style work-stealing scheduler, the
// substitute for the closed-source Cilk++ runtime the paper compares against
// (Tables 1, 2, 5, 6). See DESIGN.md §2 for the substitution rationale.
//
// The Cilk scheduler model (Blumofe et al., "Cilk: An efficient multithreaded
// runtime system") differs from the paper's own work-stealer in two ways this
// package reproduces:
//
//   - thieves steal exactly ONE task from the top of a uniformly random
//     victim's deque (no bulk transfer), and
//   - the victim distribution is re-drawn on every attempt with only a brief
//     yield between attempts (Cilk thieves spin aggressively rather than
//     backing off into long sleeps).
//
// Cilk's work-first execution order (child runs immediately, continuation is
// stealable) cannot be expressed without continuations; like every
// help-first approximation, spawned children go to the deque bottom and the
// parent continues, which preserves the depth-first local execution order
// that Cilk's performance model relies on.
package cilk

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/deque"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Task is a single-threaded unit of work.
type Task interface {
	Run(ctx *Ctx)
}

type funcTask func(*Ctx)

func (f funcTask) Run(ctx *Ctx) { f(ctx) }

// Func adapts a function to the Task interface.
func Func(fn func(*Ctx)) Task { return funcTask(fn) }

// Ctx is the execution context of a running task.
type Ctx struct {
	w *worker
}

// Spawn pushes t onto the executing worker's deque (the cilk_spawn of the
// child task in a help-first scheduler).
func (c *Ctx) Spawn(t Task) { c.w.spawn(t) }

// WorkerID returns the executing worker's id.
func (c *Ctx) WorkerID() int { return c.w.id }

// SyncGroup emulates cilk_sync for a task's children: Wait helps by running
// local work until all children registered in the group have finished.
type SyncGroup struct {
	pending atomic.Int64
}

// Spawn submits t as a child tracked by the group.
func (g *SyncGroup) Spawn(ctx *Ctx, t Task) {
	g.pending.Add(1)
	ctx.Spawn(Func(func(c *Ctx) {
		defer g.pending.Add(-1)
		t.Run(c)
	}))
}

// Wait blocks (helping) until all children of the group completed.
func (g *SyncGroup) Wait(ctx *Ctx) {
	w := ctx.w
	var bo backoff.Backoff
	for g.pending.Load() > 0 {
		if n := w.q.PopBottom(); n != nil {
			w.run(n)
			bo.Reset()
			continue
		}
		if w.stealOne() {
			bo.Reset()
			continue
		}
		bo.Wait()
	}
}

// Options configures the scheduler.
type Options struct {
	// P is the number of workers. Default: runtime.NumCPU().
	P int
	// PinOSThreads locks workers to OS threads.
	PinOSThreads bool
	// Seed seeds victim selection.
	Seed uint64
}

type node struct{ task Task }

type worker struct {
	id    int
	sched *Scheduler
	q     *deque.Deque[node]
	st    stats.Worker
	bo    backoff.Backoff
	rng   uint64
}

// Scheduler is a Cilk-style steal-one randomized work-stealing scheduler.
type Scheduler struct {
	opts     Options
	workers  []*worker
	inflight atomic.Int64
	done     atomic.Bool
	wg       sync.WaitGroup

	injectMu sync.Mutex
	inject   []*node
}

// New starts the scheduler's workers.
func New(opts Options) *Scheduler {
	if opts.P <= 0 {
		opts.P = runtime.NumCPU()
	}
	topo.EnsureGOMAXPROCS(opts.P)
	s := &Scheduler{opts: opts}
	s.workers = make([]*worker, opts.P)
	for i := range s.workers {
		s.workers[i] = &worker{
			id:    i,
			sched: s,
			q:     deque.New[node](),
			rng:   opts.Seed ^ (uint64(i)+1)*0xd1342543de82ef95,
		}
	}
	s.wg.Add(opts.P)
	for _, w := range s.workers {
		go w.loop()
	}
	return s
}

// P returns the number of workers.
func (s *Scheduler) P() int { return len(s.workers) }

// Spawn submits a task from outside the scheduler.
func (s *Scheduler) Spawn(t Task) {
	s.inflight.Add(1)
	s.injectMu.Lock()
	s.inject = append(s.inject, &node{task: t})
	s.injectMu.Unlock()
}

// Wait blocks until all tasks have completed.
func (s *Scheduler) Wait() {
	var bo backoff.Backoff
	for s.inflight.Load() > 0 {
		bo.Wait()
	}
}

// Run submits t and waits for quiescence.
func (s *Scheduler) Run(t Task) {
	s.Spawn(t)
	s.Wait()
}

// Shutdown stops all workers (idempotent; abandons outstanding work).
func (s *Scheduler) Shutdown() {
	s.done.Store(true)
	s.wg.Wait()
}

// Stats aggregates all worker counters.
func (s *Scheduler) Stats() stats.Snapshot {
	var total stats.Snapshot
	for _, w := range s.workers {
		total.Add(w.st.Snapshot())
	}
	return total
}

func (s *Scheduler) takeInjected(w *worker) bool {
	s.injectMu.Lock()
	if len(s.inject) == 0 {
		s.injectMu.Unlock()
		return false
	}
	n := s.inject[0]
	s.inject = s.inject[1:]
	s.injectMu.Unlock()
	w.q.PushBottom(n)
	return true
}

func (w *worker) spawn(t Task) {
	w.sched.inflight.Add(1)
	w.q.PushBottom(&node{task: t})
	w.st.Spawns.Add(1)
}

func (w *worker) rand() uint64 {
	w.rng += 0x9e3779b97f4a7c15
	z := w.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (w *worker) run(n *node) {
	ctx := Ctx{w: w}
	w.st.TasksRun.Add(1)
	n.task.Run(&ctx)
	w.sched.taskDone()
}

func (s *Scheduler) taskDone() { s.inflight.Add(-1) }

// loop: run local work depth-first; steal one task at a time otherwise.
// Thieves yield between attempts instead of sleeping (Cilk-style spinning),
// escalating to short sleeps only after many consecutive failures to stay
// fair under Go's runtime.
func (w *worker) loop() {
	defer w.sched.wg.Done()
	if w.sched.opts.PinOSThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	s := w.sched
	fails := 0
	for !s.done.Load() {
		if n := w.q.PopBottom(); n != nil {
			w.run(n)
			fails = 0
			w.bo.Reset()
			continue
		}
		if s.takeInjected(w) {
			continue
		}
		if w.stealOne() {
			fails = 0
			w.bo.Reset()
			continue
		}
		fails++
		w.st.FailedAttempts.Add(1)
		if fails < 64 {
			runtime.Gosched()
		} else {
			w.st.Backoffs.Add(1)
			w.bo.Wait()
		}
	}
}

// stealOne steals a single task from a uniformly random victim and runs it.
func (w *worker) stealOne() bool {
	s := w.sched
	p := len(s.workers)
	if p == 1 {
		return false
	}
	w.st.StealAttempts.Add(1)
	v := int(w.rand() % uint64(p-1))
	if v >= w.id {
		v++
	}
	n := s.workers[v].q.PopTop()
	if n == nil {
		return false
	}
	w.st.Steals.Add(1)
	w.st.TasksStolen.Add(1)
	w.run(n)
	return true
}
