// Package ssort implements a mixed-mode parallel samplesort on the
// team-building scheduler — a second mixed-mode sorting algorithm beside
// the paper's Quicksort (Algorithm 11), structurally different: instead of
// recursive binary partitioning, one team task splits its range into many
// buckets at once and the recursion fans out task-parallel over the
// buckets.
//
// The algorithm is built entirely from the team-parallel primitives of
// internal/par, demonstrating the paper's thesis that deterministically
// built teams make data-parallel kernels compositional inside task-parallel
// computations:
//
//  1. The team gathers an evenly spaced sample cooperatively (TeamFor);
//     member 0 sorts it and selects the bucket splitters.
//  2. par.Hist counts each member's chunk into the per-(member, bucket)
//     matrix and merges the bucket totals at the team barrier.
//  3. par.Scanner.Exclusive turns the bucket totals into bucket start
//     offsets (the two-phase block scan).
//  4. Each member computes its private write cursors from the count matrix
//     and scatters its chunk into the scratch buffer — stable and
//     write-conflict-free by construction.
//  5. After a team copy-back, member 0 spawns one sorting task per bucket:
//     large buckets recurse as new samplesort team tasks (thread
//     requirement chosen like the paper's getBestNp), medium buckets run
//     the task-parallel quicksort (qsort.ForkCtx), and buckets at or below
//     the cutoff fall back to the sequential sort. The other members
//     become available as soon as the scatter completes, exactly like the
//     partitioning teams of Algorithm 11.
//
// Degenerate inputs (a sample of identical keys, or a bucket that swallows
// the whole range) fall back to the task-parallel quicksort, whose Hoare
// partition guarantees progress on constant data.
package ssort

import (
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/qsort"
)

// Options are the tunables of the mixed-mode samplesort. Zero values select
// the defaults.
type Options struct {
	// Cutoff is the bucket length at or below which the sequential sort
	// takes over (default 512, the paper's quicksort cutoff).
	Cutoff int
	// MinPerThread is the minimum number of elements per team member of a
	// samplesort task (default 1 << 15); it plays the role of the paper's
	// getBestNp block quota.
	MinPerThread int
	// BucketsPerThread is the number of buckets per team member (default 4).
	BucketsPerThread int
	// Oversample is the number of sample elements per bucket used to select
	// splitters (default 8).
	Oversample int
}

func (o Options) withDefaults() Options {
	if o.Cutoff < 2 {
		o.Cutoff = qsort.DefaultCutoff
	}
	if o.MinPerThread < 1 {
		o.MinPerThread = 1 << 15
	}
	if o.BucketsPerThread < 1 {
		o.BucketsPerThread = 4
	}
	if o.Oversample < 1 {
		o.Oversample = 8
	}
	return o
}

// bestNp mirrors the paper's getBestNp: the largest power of two np ≤
// maxTeam such that every member keeps at least minPerThread elements.
func bestNp(n, minPerThread, maxTeam int) int {
	np := 1
	for np*2 <= maxTeam && n >= 2*np*minPerThread {
		np *= 2
	}
	return np
}

// Sort sorts data with the mixed-mode parallel samplesort (the tables'
// "SSort" column). It blocks until the sort completes: the sort runs as its
// own one-shot task group, so concurrent sorts on the same scheduler do not
// wait on each other. The algorithm is not in-place: it allocates one
// scratch buffer of len(data); ranges of the buffer are reused down the
// bucket recursion.
func Sort[T qsort.Ordered](s *core.Scheduler, data []T, opt Options) {
	g := s.NewGroup()
	SortGroup(g, data, opt)
	g.Wait()
}

// SortGroup spawns the mixed-mode samplesort of data into the
// caller-supplied group g and returns immediately; data is sorted once
// g.Wait() observes the group's quiescence. All bucket recursion subtasks
// inherit g.
func SortGroup[T qsort.Ordered](g *core.Group, data []T, opt Options) {
	if t := Root(g.Scheduler().MaxTeam(), data, opt); t != nil {
		g.Spawn(t)
	}
}

// Root returns the root task of the mixed-mode samplesort over data, for
// batched submission; maxTeam is the target scheduler's
// Scheduler.MaxTeam(). It returns nil when there is nothing to sort.
func Root[T qsort.Ordered](maxTeam int, data []T, opt Options) core.Task {
	opt = opt.withDefaults()
	n := len(data)
	if n < 2 {
		return nil
	}
	np := bestNp(n, opt.MinPerThread, maxTeam)
	if np == 1 {
		// Too small for a team: the task-parallel quicksort is the
		// degenerate samplesort (every element its own bucket recursion).
		return qsort.ForkJoinRoot(data, opt.Cutoff)
	}
	scratch := make([]T, n)
	// One fork-task pool serves every sequential bucket and fork-join
	// fallback of this sort tree (see qsort.ForkPool), so the task-parallel
	// fan-out below the team phases spawns without allocating.
	return newTask(data, scratch, np, opt, qsort.NewForkPool[T](opt.Cutoff))
}

// task is one samplesort team task over data; scratch is a disjoint buffer
// of the same length used for the bucket scatter.
type task[T qsort.Ordered] struct {
	data, scratch []T
	np            int
	opt           Options
	fp            *qsort.ForkPool[T] // shared by the whole sort tree

	nb         int // bucket count
	sample     []T
	splitters  []T  // nb−1 sorted splitters, written by member 0
	degenerate bool // sample all-equal, written by member 0

	hist   *par.Hist
	scan   *par.Scanner[int]
	starts []int   // bucket start offsets after the exclusive scan
	curs   [][]int // per-member scatter cursors (row per member, no sharing)
}

func newTask[T qsort.Ordered](data, scratch []T, np int, opt Options, fp *qsort.ForkPool[T]) *task[T] {
	nb := np * opt.BucketsPerThread
	ss := nb * opt.Oversample
	if ss > len(data) {
		ss = len(data)
	}
	curs := make([][]int, np)
	for m := range curs {
		curs[m] = make([]int, nb)
	}
	return &task[T]{
		data: data, scratch: scratch, np: np, opt: opt, fp: fp,
		nb:        nb,
		sample:    make([]T, ss),
		splitters: make([]T, nb-1),
		hist:      par.NewHist(np, nb),
		scan:      par.NewScanner(np, 0, func(a, b int) int { return a + b }),
		starts:    make([]int, nb),
		curs:      curs,
	}
}

func (t *task[T]) Threads() int { return t.np }

func (t *task[T]) Run(ctx *core.Ctx) {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	n := len(t.data)

	// Step 1: cooperative evenly spaced sample, then splitter selection on
	// member 0 (the sample is tiny; sorting it in parallel would cost more
	// in barriers than it saves).
	ss := len(t.sample)
	ctx.TeamFor(ss, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			t.sample[j] = t.data[j*n/ss]
		}
	})
	if lid == 0 {
		qsort.Introsort(t.sample)
		for j := range t.splitters {
			t.splitters[j] = t.sample[(j+1)*ss/t.nb]
		}
		t.degenerate = t.sample[0] == t.sample[ss-1]
	}
	ctx.Barrier()
	if t.degenerate {
		// Every sampled key is equal: bucketing would pile (nearly) the
		// whole range into one bucket. Hand the range to the task-parallel
		// quicksort, whose Hoare partition guarantees progress.
		if lid == 0 {
			t.spawnFork(ctx, t.data)
		}
		return
	}

	// Step 2: per-(member, bucket) histogram of the static chunks.
	t.hist.Histogram(ctx, n, func(i int) int {
		return bucketIndex(t.splitters, t.data[i])
	})

	// Step 3: bucket start offsets — copy the totals and scan exclusively
	// (team-parallel; the totals stay intact for the bucket sizes).
	totals := t.hist.Totals()
	ctx.TeamFor(t.nb, func(lo, hi int) {
		copy(t.starts[lo:hi], totals[lo:hi])
	})
	t.scan.Exclusive(ctx, t.starts)

	// Step 4: scatter. Each member reserves its own region inside every
	// bucket (bucket start + what earlier members counted there), so the
	// writes are conflict-free and the compaction is stable.
	cur := t.curs[lid]
	t.hist.Cursors(lid, t.starts, cur)
	lo, hi := par.Chunk(lid, w, n) // must match par.Hist's counting chunks
	for i := lo; i < hi; i++ {
		b := bucketIndex(t.splitters, t.data[i])
		t.scratch[cur[b]] = t.data[i]
		cur[b]++
	}
	ctx.Barrier()

	// Step 5: copy back, then member 0 spawns the bucket sorts; the other
	// members become available immediately (Algorithm 11's idiom).
	ctx.TeamFor(n, func(lo, hi int) {
		copy(t.data[lo:hi], t.scratch[lo:hi])
	})
	if lid != 0 {
		return
	}
	for b := 0; b < t.nb; b++ {
		blo := t.starts[b]
		bhi := blo + totals[b]
		t.spawnBucket(ctx, t.data[blo:bhi], t.scratch[blo:bhi])
	}
}

// spawnBucket spawns the sort of one bucket with a thread requirement
// chosen like the paper's getBestNp: team tasks recurse as samplesorts,
// single-threaded buckets run the task-parallel quicksort, and buckets at
// or below the cutoff are sorted sequentially.
func (t *task[T]) spawnBucket(ctx *core.Ctx, part, scratch []T) {
	m := len(part)
	if m < 2 || ctx.Canceled() {
		// Cooperative cancellation, checked on member 0's spawn path only
		// (never inside the barrier-synchronized phases above): a canceled
		// sort stops recursing and leaves its buckets unsorted.
		return
	}
	if m <= t.opt.Cutoff {
		// At or below the cutoff the pooled fork task degenerates to one
		// sequential Introsort — same wrapper, no closure allocation.
		t.fp.Spawn(ctx, part)
		return
	}
	np := bestNp(m, t.opt.MinPerThread, ctx.Scheduler().MaxTeam())
	// m < len(t.data) guarantees termination: a bucket that swallowed the
	// whole range (heavily duplicated keys) must not recurse as a
	// samplesort again.
	if np > 1 && m < len(t.data) {
		ctx.Spawn(newTask(part, scratch, np, t.opt, t.fp))
		return
	}
	t.spawnFork(ctx, part)
}

func (t *task[T]) spawnFork(ctx *core.Ctx, part []T) {
	if ctx.Canceled() {
		return // cooperative cancellation: see spawnBucket
	}
	t.fp.Spawn(ctx, part)
}

// bucketIndex returns the bucket of v: the number of splitters ≤ v, found
// by binary search. Splitters need not be distinct — duplicated splitters
// simply leave the buckets between the copies empty.
func bucketIndex[T qsort.Ordered](splitters []T, v T) int {
	lo, hi := 0, len(splitters)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if splitters[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
