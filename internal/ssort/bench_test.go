package ssort_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/qsort"
	"repro/internal/ssort"
)

// Samplesort-vs-quicksort benchmarks per input distribution (the
// BENCH_sort.json trajectory emitted by scripts/bench.sh): BenchmarkSSort
// and BenchmarkMMQsort run the two mixed-mode algorithms on identical
// 1M-element inputs of every registered distribution.

const benchN = 1 << 20

func benchInputs() map[dist.Kind][]int32 {
	ins := make(map[dist.Kind][]int32, len(dist.Kinds))
	for _, k := range dist.Kinds {
		ins[k] = dist.Generate(k, benchN, 42)
	}
	return ins
}

func benchPerKind(b *testing.B, sortFn func(s *core.Scheduler, data []int32)) {
	s := core.New(core.Options{P: 0})
	b.Cleanup(s.Shutdown)
	ins := benchInputs()
	buf := make([]int32, benchN)
	for _, k := range dist.Kinds {
		in := ins[k]
		b.Run(k.String(), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(4 * benchN)
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				sortFn(s, buf)
			}
			if !qsort.IsSorted(buf) {
				b.Fatal("output not sorted")
			}
		})
	}
}

func BenchmarkSSort(b *testing.B) {
	benchPerKind(b, func(s *core.Scheduler, data []int32) {
		ssort.Sort(s, data, ssort.Options{})
	})
}

func BenchmarkMMQsort(b *testing.B) {
	benchPerKind(b, func(s *core.Scheduler, data []int32) {
		qsort.MixedMode(s, data, qsort.MMOptions{})
	})
}
