package ssort

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/qsort"
)

// teamOptions forces team formation at test sizes: with MinPerThread 512 a
// 1<<16-element input reaches the full MaxTeam width on an 8-worker
// scheduler.
func teamOptions() Options {
	return Options{Cutoff: 256, MinPerThread: 512}
}

func checkSorted(t *testing.T, name string, got, in []int32) {
	t.Helper()
	if !qsort.IsSorted(got) {
		t.Fatalf("%s: output not sorted", name)
	}
	// Same multiset as the input: compare against the sequentially sorted copy.
	want := append([]int32(nil), in...)
	qsort.Introsort(want)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %d, want %d (content mismatch)", name, i, got[i], want[i])
		}
	}
}

// TestSortAllKinds is the acceptance matrix: every registered distribution,
// at team size 1 (P=1 scheduler: the sequential-oracle/fork fallback) and
// team size P (P=8 scheduler with forced team formation). The same test
// runs under -race via scripts/check.sh.
func TestSortAllKinds(t *testing.T) {
	for _, p := range []int{1, 8} {
		s := core.New(core.Options{P: p})
		defer s.Shutdown()
		for _, kind := range dist.Kinds {
			in := dist.Generate(kind, 1<<16, 42)
			data := append([]int32(nil), in...)
			Sort(s, data, teamOptions())
			checkSorted(t, kind.String(), data, in)
		}
	}
}

// TestSortDefaults exercises the default options (paper-scale thresholds)
// on an input large enough to form teams.
func TestSortDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("large input")
	}
	s := core.New(core.Options{P: 8})
	defer s.Shutdown()
	in := dist.Generate(dist.Staggered, 1<<20, 1)
	data := append([]int32(nil), in...)
	Sort(s, data, Options{})
	checkSorted(t, "defaults", data, in)
}

// TestSortSmall pins the degenerate sizes that skip teams entirely.
func TestSortSmall(t *testing.T) {
	s := core.New(core.Options{P: 4})
	defer s.Shutdown()
	for _, n := range []int{0, 1, 2, 3, 17, 255, 4096} {
		in := dist.Generate(dist.Random, n, uint64(n))
		data := append([]int32(nil), in...)
		Sort(s, data, teamOptions())
		checkSorted(t, "small", data, in)
	}
}

// TestSortOddTeamAndRecursion drives deep bucket recursion: a tiny
// MinPerThread keeps spawning samplesort subtasks until the cutoff.
func TestSortOddTeamAndRecursion(t *testing.T) {
	s := core.New(core.Options{P: 8})
	defer s.Shutdown()
	opt := Options{Cutoff: 64, MinPerThread: 128, BucketsPerThread: 2, Oversample: 4}
	for _, kind := range []dist.Kind{dist.Random, dist.RandDup, dist.WorstCase, dist.Zero} {
		in := dist.Generate(kind, 1<<17, 5)
		data := append([]int32(nil), in...)
		Sort(s, data, opt)
		checkSorted(t, kind.String(), data, in)
	}
}

// TestSortSeeds varies seeds so splitter selection sees many realizations.
func TestSortSeeds(t *testing.T) {
	s := core.New(core.Options{P: 8})
	defer s.Shutdown()
	for seed := uint64(0); seed < 8; seed++ {
		in := dist.Generate(dist.Gauss, 1<<15, seed)
		data := append([]int32(nil), in...)
		Sort(s, data, teamOptions())
		checkSorted(t, "seeds", data, in)
	}
}

func TestBestNp(t *testing.T) {
	cases := []struct{ n, per, max, want int }{
		{0, 512, 8, 1},
		{1023, 512, 8, 1},
		{1 << 20, 512, 8, 8},
		{4096, 1024, 8, 4},
		{4095, 1024, 8, 2},
		{1 << 20, 512, 1, 1},
		{1 << 20, 1 << 19, 64, 2},
		{1 << 20, 1 << 20, 64, 1},
	}
	for _, c := range cases {
		if got := bestNp(c.n, c.per, c.max); got != c.want {
			t.Fatalf("bestNp(%d, %d, %d) = %d, want %d", c.n, c.per, c.max, got, c.want)
		}
	}
}

func TestBucketIndex(t *testing.T) {
	sp := []int32{10, 20, 20, 30}
	cases := []struct {
		v    int32
		want int
	}{{5, 0}, {10, 1}, {15, 1}, {20, 3}, {25, 3}, {30, 4}, {99, 4}}
	for _, c := range cases {
		if got := bucketIndex(sp, c.v); got != c.want {
			t.Fatalf("bucketIndex(%v, %d) = %d, want %d", sp, c.v, got, c.want)
		}
	}
	if got := bucketIndex([]int32{}, 7); got != 0 {
		t.Fatalf("empty splitters: bucket = %d, want 0", got)
	}
}
