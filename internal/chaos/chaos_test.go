package chaos

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/qsort"
)

// TestRollEdges pins the probability edges: 0 never fires, 1 always fires.
func TestRollEdges(t *testing.T) {
	i := New(Options{Seed: 1})
	for k := 0; k < 1000; k++ {
		if i.roll(0) {
			t.Fatal("roll(0) fired")
		}
		if !i.roll(1) {
			t.Fatal("roll(1) did not fire")
		}
	}
}

// TestRollRate sanity-checks the hash stream: a 1/8 roll over 64k draws
// should land within a factor of two of the expectation.
func TestRollRate(t *testing.T) {
	i := New(Options{Seed: 42})
	hits := 0
	const draws = 1 << 16
	for k := 0; k < draws; k++ {
		if i.roll(8) {
			hits++
		}
	}
	want := draws / 8
	if hits < want/2 || hits > want*2 {
		t.Fatalf("1/8 roll fired %d/%d times, want ≈%d", hits, draws, want)
	}
}

// TestFaultCounters checks that the hook attributes calls and injections to
// the right fault points.
func TestFaultCounters(t *testing.T) {
	i := New(Options{
		StallEvery: 1, StallDur: time.Microsecond,
		DelayTakeEvery: 0,
		DelayDur:       time.Microsecond,
	})
	i.Fault(core.FaultWorkerLoop, 0)
	i.Fault(core.FaultWorkerLoop, 1)
	i.Fault(core.FaultInjectTake, 0)
	st := i.Stats()
	if st.Calls[core.FaultWorkerLoop] != 2 || st.Injected[core.FaultWorkerLoop] != 2 {
		t.Fatalf("worker-loop counters = %d/%d, want 2/2",
			st.Calls[core.FaultWorkerLoop], st.Injected[core.FaultWorkerLoop])
	}
	if st.Calls[core.FaultInjectTake] != 1 || st.Injected[core.FaultInjectTake] != 0 {
		t.Fatalf("inject-take counters = %d/%d, want 1/0",
			st.Calls[core.FaultInjectTake], st.Injected[core.FaultInjectTake])
	}
}

// TestChaosStress is the fault-injection soak: a bounded scheduler with
// stalls and delays at every fault point, clients flooding groups with small
// sorts while a cancel storm revokes admitted work mid-flight. The
// invariants checked afterward are the ones the tentpole promises:
//
//   - every Wait releases (the test would hang otherwise, so -timeout guards)
//   - canceled groups report their cause, uncanceled ones report nil
//   - every group's inflight reconciles to zero
//   - admission reconciles globally: injected == taken + revoked
//   - each sort either completed sorted or its group was canceled
//
// Run it under -race (scripts/check.sh lists this package) to let the
// injected stalls widen every window the memory model must cover.
func TestChaosStress(t *testing.T) {
	inj := New(Options{
		Seed:            7,
		StallEvery:      64,
		StallDur:        50 * time.Microsecond,
		DelayTakeEvery:  16,
		AdmitDelayEvery: 16,
		DelayDur:        20 * time.Microsecond,
		CancelEvery:     3,
	})
	s := core.New(core.Options{
		P:                  4,
		MaxInject:          32,
		MaxPendingPerGroup: 16,
		Fault:              inj.Fault,
	})
	defer s.Shutdown()

	const (
		clients        = 4
		roundsPerC     = 8
		sortsPerClient = 6
	)
	errCause := errors.New("chaos: storm")
	var canceled, completed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < roundsPerC; r++ {
				g := s.NewGroup()
				data := make([][]int, sortsPerClient)
				for j := range data {
					d := make([]int, 512)
					for k := range d {
						d[k] = (k*2654435761 + c + r + j) % 977
					}
					data[j] = d
					if err := g.SpawnRetry(qsort.ForkJoinRoot(d, 64)); err != nil {
						// Only a canceled/shutdown group refuses a retried
						// spawn; the sort for this slice never starts.
						break
					}
					inj.MaybeCancel(g, errCause)
				}
				err := g.WaitErr()
				if g.Pending() != 0 {
					t.Errorf("group pending = %d after WaitErr", g.Pending())
				}
				if g.Canceled() {
					canceled.Add(1)
					if !errors.Is(err, errCause) {
						t.Errorf("canceled group WaitErr = %v, want %v", err, errCause)
					}
					continue
				}
				completed.Add(1)
				if err != nil {
					t.Errorf("live group WaitErr = %v, want nil", err)
				}
				for _, d := range data {
					if !sorted(d) {
						t.Errorf("uncanceled group left unsorted data")
						break
					}
				}
			}
		}(c)
	}
	wg.Wait()
	s.Wait() // drain any abandoned continuations

	if s.Pending() != 0 {
		t.Fatalf("scheduler pending = %d after drain", s.Pending())
	}
	adm := s.Admission()
	if adm.Injected != adm.Taken+adm.Revoked {
		t.Fatalf("admission does not reconcile: injected=%d taken=%d revoked=%d",
			adm.Injected, adm.Taken, adm.Revoked)
	}
	st := inj.Stats()
	t.Logf("chaos: %d canceled / %d completed groups; cancels=%d revoked=%d stalls=%d take-delays=%d admit-delays=%d",
		canceled.Load(), completed.Load(), st.Cancels, adm.Revoked,
		st.Injected[core.FaultWorkerLoop], st.Injected[core.FaultInjectTake],
		st.Injected[core.FaultAdmit])
	if canceled.Load() == 0 {
		t.Error("cancel storm never landed — CancelEvery too weak for this seed")
	}
	if completed.Load() == 0 {
		t.Error("every group canceled — no completion path exercised")
	}
}

// TestChaosDeadlineUnderSaturation drives blocking spawns into a saturated
// scheduler whose groups carry deadlines: the blocked spawns must return
// ErrDeadlineExceeded instead of parking forever, even while the fault hook
// stalls workers.
func TestChaosDeadlineUnderSaturation(t *testing.T) {
	inj := New(Options{Seed: 11, StallEvery: 8, StallDur: 20 * time.Microsecond})
	s := core.New(core.Options{P: 2, MaxInject: 2, Fault: inj.Fault})
	defer s.Shutdown()

	// Plug the workers so admitted work cannot drain.
	release := make(chan struct{})
	var plugged sync.WaitGroup
	plug := s.NewGroup()
	for i := 0; i < s.P(); i++ {
		plugged.Add(1)
		plug.Spawn(core.Func(1, func(*core.Ctx) { plugged.Done(); <-release }))
	}
	plugged.Wait()

	// Fill the inject queue to MaxInject, then overflow it from a group with
	// a deadline: the blocking spawn must park and time out.
	filler := s.NewGroup()
	for filler.PendingInjected() < 2 {
		if err := filler.TrySpawn(core.Func(1, func(*core.Ctx) {})); err != nil {
			t.Fatalf("filler TrySpawn: %v", err)
		}
	}
	g := s.NewGroup()
	g.Deadline(time.Now().Add(30 * time.Millisecond))
	err := g.Spawn(core.Func(1, func(*core.Ctx) {}))
	if !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("blocked Spawn past deadline = %v, want ErrDeadlineExceeded", err)
	}

	close(release)
	plug.Wait()
	filler.Wait()
	if err := g.WaitErr(); !errors.Is(err, core.ErrDeadlineExceeded) {
		t.Fatalf("WaitErr = %v, want ErrDeadlineExceeded", err)
	}
}

func sorted(d []int) bool {
	for i := 1; i < len(d); i++ {
		if d[i-1] > d[i] {
			return false
		}
	}
	return true
}
