// Package chaos is the scheduler's fault-injection layer: an Injector
// implementing the core.Options.Fault hook that stalls workers, delays
// inject-queue drains and admissions, and randomly cancels groups, so the
// stress tests (and cmd/stress -chaos) can prove the runtime degrades
// gracefully — canceled work revoked, counters reconciling, waits releasing
// exactly once — instead of failing noisily.
//
// The package is build-tag-free on purpose: faults flow through the plain
// Options.Fault hook, which costs a production scheduler one predicted nil
// check per fault point, so the chaos build is the production build. All
// decisions come from one seeded counter-hash stream — runs with the same
// seed and the same interleaving roll the same faults, and the roll itself
// is lock-free so the injector never serializes the workers it torments.
package chaos

import (
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Defaults for the injected delay durations.
const (
	DefaultStallDur = 200 * time.Microsecond
	DefaultDelayDur = 50 * time.Microsecond
)

// Options configures an Injector. Every *Every field is a probability
// expressed as "about one in N rolls fires"; 0 disables that fault.
type Options struct {
	// Seed seeds the decision stream; two injectors with the same seed and
	// call sequence make the same decisions.
	Seed uint64
	// StallEvery stalls ~1/N worker loop iterations for StallDur, modeling a
	// descheduled or overloaded worker.
	StallEvery int
	// StallDur is the injected worker stall length (default DefaultStallDur).
	StallDur time.Duration
	// DelayTakeEvery delays ~1/N inject-queue drains by DelayDur, widening
	// the window between a cancel and its revocations.
	DelayTakeEvery int
	// AdmitDelayEvery delays ~1/N external admission calls by DelayDur on
	// the client goroutine.
	AdmitDelayEvery int
	// DelayDur is the injected take/admit delay (default DefaultDelayDur).
	DelayDur time.Duration
	// CancelEvery makes ~1/N MaybeCancel rolls actually cancel the group.
	CancelEvery int
}

func (o Options) withDefaults() Options {
	if o.StallDur <= 0 {
		o.StallDur = DefaultStallDur
	}
	if o.DelayDur <= 0 {
		o.DelayDur = DefaultDelayDur
	}
	return o
}

// Injector injects faults at the scheduler's fault points. Wire it in with
//
//	core.Options{Fault: inj.Fault}
//
// and drive group-cancel storms from the client side with MaybeCancel.
// All methods are safe for concurrent use.
type Injector struct {
	opts Options
	seq  atomic.Uint64 // decision stream position

	calls    [core.NumFaultPoints]atomic.Int64 // hook invocations per point
	injected [core.NumFaultPoints]atomic.Int64 // faults actually fired per point
	cancels  atomic.Int64                      // groups canceled by MaybeCancel
}

// New returns an injector with the given options.
func New(opts Options) *Injector {
	return &Injector{opts: opts.withDefaults()}
}

// Fault is the core.Options.Fault hook: it rolls the fault configured for
// the point and sleeps when the roll fires. It must stay safe to call from
// any goroutine, including the scheduler's workers.
func (i *Injector) Fault(p core.FaultPoint, worker int) {
	i.calls[p].Add(1)
	switch p {
	case core.FaultWorkerLoop:
		if i.roll(i.opts.StallEvery) {
			i.injected[p].Add(1)
			time.Sleep(i.opts.StallDur)
		}
	case core.FaultInjectTake:
		if i.roll(i.opts.DelayTakeEvery) {
			i.injected[p].Add(1)
			time.Sleep(i.opts.DelayDur)
		}
	case core.FaultAdmit:
		if i.roll(i.opts.AdmitDelayEvery) {
			i.injected[p].Add(1)
			time.Sleep(i.opts.DelayDur)
		}
	}
}

// MaybeCancel rolls the cancel fault for g: about one in CancelEvery calls
// cancels the group with the given cause (nil records core.ErrCanceled).
// It reports whether this call canceled the group.
func (i *Injector) MaybeCancel(g *core.Group, cause error) bool {
	if !i.roll(i.opts.CancelEvery) {
		return false
	}
	if !g.Cancel(cause) {
		return false // already canceled by someone else
	}
	i.cancels.Add(1)
	return true
}

// roll advances the decision stream and reports a ~1/n hit; n ≤ 0 never
// fires, n == 1 always does.
func (i *Injector) roll(n int) bool {
	if n <= 0 {
		return false
	}
	if n == 1 {
		i.seq.Add(1)
		return true
	}
	return mix(i.seq.Add(1)^i.opts.Seed)%uint64(n) == 0
}

// mix is the SplitMix64 finalizer: a cheap uniform hash of the stream
// position, so consecutive rolls are decorrelated.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stats is a snapshot of the injector's activity.
type Stats struct {
	Calls    [core.NumFaultPoints]int64 // hook invocations per fault point
	Injected [core.NumFaultPoints]int64 // faults fired per fault point
	Cancels  int64                      // groups canceled by MaybeCancel
}

// Stats returns a racy snapshot of the fault counters.
func (i *Injector) Stats() Stats {
	var s Stats
	for p := range s.Calls {
		s.Calls[p] = i.calls[p].Load()
		s.Injected[p] = i.injected[p].Load()
	}
	s.Cancels = i.cancels.Load()
	return s
}
