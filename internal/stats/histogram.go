package stats

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-boundary, log-bucketed latency/duration histogram.
// The boundaries are the powers of two from 2^histMinExp to 2^histMaxExp
// seconds (≈1 µs … 64 s) plus a +Inf overflow bucket, so every histogram in
// the process shares one boundary table and snapshots merge bucket-by-bucket
// without any boundary negotiation.
//
// Observe is allocation-free and — when callers honor the sharding
// contract — contention-free: the histogram is split into cache-line-padded
// shards, and each concurrent writer (a worker, a client goroutine) records
// into its own shard, exactly like the scheduler's sharded in-flight
// counter. A shard index outside [0, shards) is reduced modulo the shard
// count, so callers may pass any stable per-writer integer (a worker id, a
// round-robin ticket). Writers that do collide on one shard stay correct —
// bucket counts are atomic adds and the sum is CAS-accumulated — they only
// contend on the shard's cache lines.
//
// The read path (Snapshot) is modeled on the seqlock-stamped quiescence
// scan of internal/core: each Observe brackets its updates between two
// stamp increments (odd while in progress), and Snapshot sums all shards
// twice, accepting the result only if no stamp was odd and the stamp total
// did not move between the passes — which proves it observed every shard at
// one instant. Under sustained concurrent writes validation is retried a
// few times and then degrades to a best-effort (per-field-atomic) read; see
// internal/stats/README.md for the full consistency argument.
type Histogram struct {
	shards []histShard
}

const (
	histMinExp = -20 // smallest finite boundary: 2^-20 s ≈ 0.95 µs
	histMaxExp = 6   // largest finite boundary: 2^6 s = 64 s

	// HistBuckets is the number of buckets, including the +Inf overflow
	// bucket. Bucket 0 holds observations ≤ 2^histMinExp; bucket i (0 < i <
	// HistBuckets−1) holds observations in (2^(histMinExp+i−1),
	// 2^(histMinExp+i)]; the last bucket holds everything larger.
	HistBuckets = histMaxExp - histMinExp + 2
)

// histShard is one writer's slice of the histogram. The trailing padding
// rounds the struct up to a cache-line multiple so adjacent shards never
// share a line; within a shard, all lines are written by the shard's owner.
//
//repro:padded shards sit in one array; stride must be a cache-line multiple
type histShard struct {
	//repro:seqlock update generation: odd while an Observe is in flight
	stamp atomic.Uint64
	sum   atomic.Uint64 // Float64bits of the shard's value sum
	count [HistBuckets]atomic.Uint64
	_     [16]byte
}

// NewHistogram returns a histogram with the given number of shards
// (clamped to ≥ 1). One shard per concurrent writer removes all write
// contention; fewer shards trade contention for memory (each shard is
// ~256 B).
func NewHistogram(shards int) *Histogram {
	if shards < 1 {
		shards = 1
	}
	return &Histogram{shards: make([]histShard, shards)}
}

// Shards returns the shard count.
func (h *Histogram) Shards() int { return len(h.shards) }

// histBound returns the i-th finite bucket boundary, 2^(histMinExp+i).
func histBound(i int) float64 { return math.Ldexp(1, histMinExp+i) }

// HistogramBounds returns the finite bucket boundaries in seconds
// (ascending; the implicit last bucket is +Inf). The slice is a copy.
func HistogramBounds() []float64 {
	bs := make([]float64, HistBuckets-1)
	for i := range bs {
		bs[i] = histBound(i)
	}
	return bs
}

// bucketOf returns the index of the bucket counting v: the first bucket
// whose upper boundary is ≥ v. The boundaries are exact powers of two, so
// the index falls out of v's floating-point exponent; the mantissa check
// keeps exact powers of two in the bucket they bound (le semantics).
// Non-positive and NaN values land in the first bucket.
//
//repro:noalloc pure bit arithmetic on the Observe path
func bucketOf(v float64) int {
	if !(v > 0) {
		return 0
	}
	bits := math.Float64bits(v)
	e := int(bits>>52&0x7ff) - 1023
	if e == 1024 {
		return HistBuckets - 1 // +Inf
	}
	b := e - histMinExp + 1
	if bits&(1<<52-1) == 0 {
		b-- // v is exactly 2^e: counted under the boundary it equals
	}
	if b < 0 {
		return 0
	}
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// Observe records one observation of v (seconds) on the given shard,
// allocation-free. Callers should dedicate one shard per concurrent writer
// (the index is reduced modulo the shard count); see the type comment for
// the contract. NaN and negative values are clamped to zero.
//
//repro:noalloc documented allocation-free; called per scheduler event
func (h *Histogram) Observe(shard int, v float64) { h.ObserveN(shard, v, 1) }

// ObserveN records n observations of the same value v on the given shard —
// the batched form of Observe (a SortMany batch attributes its end-to-end
// latency to every request it carried).
//
//repro:noalloc documented allocation-free; called per scheduler event
func (h *Histogram) ObserveN(shard int, v float64, n uint64) {
	if n == 0 {
		return
	}
	if !(v >= 0) { // NaN or negative: keep the sum finite and monotone
		v = 0
	}
	sh := &h.shards[uint(shard)%uint(len(h.shards))]
	sh.stamp.Add(1) // odd: update in progress
	sh.count[bucketOf(v)].Add(n)
	for {
		o := sh.sum.Load()
		if sh.sum.CompareAndSwap(o, math.Float64bits(math.Float64frombits(o)+v*float64(n))) {
			break
		}
	}
	sh.stamp.Add(1) // even: stable
}

// ObserveDuration records one duration observation in seconds.
func (h *Histogram) ObserveDuration(shard int, d time.Duration) {
	h.Observe(shard, d.Seconds())
}

// Snapshot returns a merged copy of all shards. The double-pass stamp
// validation (see the type comment) retries a few times under concurrent
// writes before settling for a best-effort read; with single-writer shards
// a validated snapshot observed every shard at one instant.
func (h *Histogram) Snapshot() HistSnapshot {
	const retries = 4
	var s HistSnapshot
	for try := 0; ; try++ {
		s = HistSnapshot{}
		var t1, t2 uint64
		clean := true
		for i := range h.shards {
			sh := &h.shards[i]
			st := sh.stamp.Load()
			clean = clean && st&1 == 0
			t1 += st
			for b := 0; b < HistBuckets; b++ {
				s.Counts[b] += sh.count[b].Load()
			}
			s.Sum += math.Float64frombits(sh.sum.Load())
		}
		for i := range h.shards {
			t2 += h.shards[i].stamp.Load()
		}
		if (clean && t1 == t2) || try == retries {
			break
		}
	}
	for _, c := range s.Counts {
		s.Count += c
	}
	return s
}

// HistSnapshot is a plain-value copy of a Histogram: per-bucket counts
// (non-cumulative), the total observation count, and the value sum.
// Snapshots of any two histograms merge with Add (all histograms share the
// fixed boundary table).
type HistSnapshot struct {
	Counts [HistBuckets]uint64
	Count  uint64
	Sum    float64
}

// Add accumulates o into s.
func (s *HistSnapshot) Add(o HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.Sum += o.Sum
}

// PercentileBounds returns the bucket bracketing the nearest-rank p-th
// percentile (p in [0, 100]): the exact order statistic v_k satisfies
// lo ≤ v_k ≤ hi, where hi is the upper boundary of the bucket holding rank
// k and lo its lower boundary (0 below the first bucket, +Inf boundaries
// for the overflow bucket). The rank predicate is identical to
// Sample.Percentile's — the smallest 1-based k with k·100 ≥ p·n — so a
// histogram and a Sample fed the same observations bracket each other
// exactly, within one bucket width. An empty snapshot returns (0, 0).
func (s HistSnapshot) PercentileBounds(p float64) (lo, hi float64) {
	n := s.Count
	if n == 0 {
		return 0, 0
	}
	t := p * float64(n)
	k := uint64(math.Ceil(t / 100))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	for k > 1 && float64(k-1)*100 >= t {
		k--
	}
	for k < n && float64(k)*100 < t {
		k++
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= k {
			if i == HistBuckets-1 {
				return histBound(HistBuckets - 2), math.Inf(1)
			}
			if i == 0 {
				return 0, histBound(0)
			}
			return histBound(i - 1), histBound(i)
		}
	}
	return 0, 0 // unreachable: cum reaches Count ≥ k
}

// Percentile returns the upper bucket boundary bracketing the nearest-rank
// p-th percentile — a conservative (over-)estimate off by at most one
// bucket width. +Inf means the percentile fell in the overflow bucket.
func (s HistSnapshot) Percentile(p float64) float64 {
	_, hi := s.PercentileBounds(p)
	return hi
}
