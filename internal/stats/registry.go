package stats

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// Registry collects named metrics — func-backed counters and gauges,
// Histograms, and dynamic gauge families — and renders them in the
// Prometheus text exposition format (version 0.0.4), with no external
// dependencies. Metrics are read at scrape time: registering a counter
// means handing the registry a closure over the live atomic it reports, so
// registration adds nothing to any hot path.
//
// Families render in registration order (HELP and TYPE once per name, then
// one sample line per series), so the output is deterministic and golden-
// testable. Registration panics on invalid names, duplicate series, or a
// name reused with a different kind/help — all programmer errors.
// Registration and rendering are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	fams   []*family
}

// Label is one name="value" pair of a metric series.
type Label struct {
	Name, Value string
}

type series struct {
	labels []Label
	value  func() float64
	hist   *Histogram
}

type family struct {
	name, help, kind string
	series           []*series
	// collect, when set, makes this a dynamic family: the callback emits
	// (labels, value) samples at scrape time, for label sets that are not
	// known at registration (e.g. named groups created later). Samples with
	// identical label sets are summed.
	collect func(emit func(labels []Label, v float64))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// CounterFunc registers a monotonically increasing metric read from fn at
// scrape time. labels may be nil.
func (r *Registry) CounterFunc(name, help string, labels []Label, fn func() float64) {
	r.register(name, help, "counter", &series{labels: labels, value: fn})
}

// GaugeFunc registers a point-in-time metric read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels []Label, fn func() float64) {
	r.register(name, help, "gauge", &series{labels: labels, value: fn})
}

// Histogram registers h as one series of a histogram family; the rendered
// form is the usual name_bucket{le=...} cumulative buckets plus name_sum
// and name_count.
func (r *Registry) Histogram(name, help string, labels []Label, h *Histogram) {
	r.register(name, help, "histogram", &series{labels: labels, hist: h})
}

// GaugeDynamic registers a gauge family whose series are produced by
// collect at scrape time — for label sets that do not exist yet at
// registration, like per-group gauges of groups a client has yet to
// create. Samples emitted with identical label sets are summed.
func (r *Registry) GaugeDynamic(name, help string, collect func(emit func(labels []Label, v float64))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "gauge")
	if f.collect != nil || len(f.series) > 0 {
		panic(fmt.Sprintf("stats: metric %q already registered", name))
	}
	f.collect = collect
}

func (r *Registry) register(name, help, kind string, s *series) {
	for _, l := range s.labels {
		if !validLabelName(l.Name) {
			panic(fmt.Sprintf("stats: invalid label name %q on metric %q", l.Name, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, kind)
	if f.collect != nil {
		panic(fmt.Sprintf("stats: metric %q already registered as a dynamic family", name))
	}
	for _, o := range f.series {
		if sameLabels(o.labels, s.labels) {
			panic(fmt.Sprintf("stats: duplicate series %s%s", name, labelString(s.labels)))
		}
	}
	f.series = append(f.series, s)
}

// family returns the family registered under name, creating it on first
// use and enforcing that a reused name keeps its kind and help. Caller
// holds r.mu.
func (r *Registry) family(name, help, kind string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("stats: invalid metric name %q", name))
	}
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.kind != kind || f.help != help {
		panic(fmt.Sprintf("stats: metric %q re-registered with different kind or help", name))
	}
	return f
}

// WriteText renders the registry in the Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.fams {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		if f.collect != nil {
			for _, s := range collectSamples(f) {
				writeSample(&b, f.name, s.labels, s.v)
			}
			continue
		}
		for _, s := range f.series {
			if s.hist != nil {
				writeHistogram(&b, f.name, s.labels, s.hist.Snapshot())
				continue
			}
			writeSample(&b, f.name, s.labels, s.value())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Render returns the text exposition as a string.
func (r *Registry) Render() string {
	var b strings.Builder
	r.WriteText(&b) //nolint:errcheck — Builder writes cannot fail
	return b.String()
}

// ServeHTTP makes the registry a /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WriteText(w) //nolint:errcheck — nothing to do about a dead client
}

// Values flattens the registry into a map for JSON dumps (the
// BENCH_throughput.json scheduler_metrics block): scalar series map from
// "name" or `name{k="v"}` to their value; histograms contribute _count,
// _sum, and conservative nearest-rank p50/p90/p99 upper-bound estimates
// instead of their full bucket vectors.
func (r *Registry) Values() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]float64{}
	for _, f := range r.fams {
		if f.collect != nil {
			for _, s := range collectSamples(f) {
				out[f.name+labelString(s.labels)] = s.v
			}
			continue
		}
		for _, s := range f.series {
			ls := labelString(s.labels)
			if s.hist == nil {
				out[f.name+ls] = s.value()
				continue
			}
			snap := s.hist.Snapshot()
			out[f.name+"_count"+ls] = float64(snap.Count)
			out[f.name+"_sum"+ls] = snap.Sum
			for _, p := range [...]float64{50, 90, 99} {
				out[fmt.Sprintf("%s_p%.0f%s", f.name, p, ls)] = snap.Percentile(p)
			}
		}
	}
	return out
}

type dynSample struct {
	labels []Label
	v      float64
}

// collectSamples runs a dynamic family's callback, summing samples with
// identical label sets (several anonymous groups may share a name).
func collectSamples(f *family) []dynSample {
	var out []dynSample
	f.collect(func(labels []Label, v float64) {
		for i := range out {
			if sameLabels(out[i].labels, labels) {
				out[i].v += v
				return
			}
		}
		out = append(out, dynSample{labels: labels, v: v})
	})
	return out
}

func writeSample(b *strings.Builder, name string, labels []Label, v float64) {
	b.WriteString(name)
	b.WriteString(labelString(labels))
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
}

// writeHistogram renders the cumulative le-buckets, sum, and count of one
// histogram series.
func writeHistogram(b *strings.Builder, name string, labels []Label, s HistSnapshot) {
	var cum uint64
	le := make([]Label, len(labels)+1)
	copy(le, labels)
	for i := 0; i < HistBuckets; i++ {
		cum += s.Counts[i]
		bound := "+Inf"
		if i < HistBuckets-1 {
			bound = formatValue(histBound(i))
		}
		le[len(labels)] = Label{Name: "le", Value: bound}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelString(le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labelString(labels), formatValue(s.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labelString(labels), s.Count)
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelValueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabelValue(s string) string { return labelValueEscaper.Replace(s) }

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string { return helpEscaper.Replace(s) }

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

func sameLabels(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
