package stats

import (
	"fmt"
	"sync/atomic"
)

// Admission holds the scheduler-level counters of the admission-controlled
// external submission path (internal/core's per-group inject queues with
// optional backpressure bounds). One instance is owned by the scheduler;
// counters are written under the admission lock but read concurrently, so
// all fields are atomic.
type Admission struct {
	Injected      atomic.Int64 // external tasks admitted into inject queues
	Taken         atomic.Int64 // admitted tasks moved onto worker queues
	Revoked       atomic.Int64 // admitted tasks revoked at take time (group canceled)
	Rejected      atomic.Int64 // tasks refused by a non-blocking spawn (ErrSaturated or canceled group)
	BlockedSpawns atomic.Int64 // blocking spawn calls that had to park for room
	Canceled      atomic.Int64 // group cancellations (Cancel, deadline fire, bound context)
	SpawnTimeouts atomic.Int64 // blocking/retrying spawns that returned ErrDeadlineExceeded
	PeakPending   atomic.Int64 // high-water mark of pending injected tasks
}

// AdmissionSnapshot is a plain-value copy of the admission counters.
// Pending is derived: tasks admitted but neither taken by a worker nor
// revoked at take time (tasks abandoned in the queues by Shutdown remain
// counted).
type AdmissionSnapshot struct {
	Injected      int64
	Taken         int64
	Revoked       int64
	Pending       int64
	Rejected      int64
	BlockedSpawns int64
	Canceled      int64
	SpawnTimeouts int64
	PeakPending   int64
}

// Snapshot returns a consistent-enough copy for reporting (individual loads
// are atomic; the set is not a single atomic snapshot).
func (a *Admission) Snapshot() AdmissionSnapshot {
	inj, tk, rv := a.Injected.Load(), a.Taken.Load(), a.Revoked.Load()
	return AdmissionSnapshot{
		Injected:      inj,
		Taken:         tk,
		Revoked:       rv,
		Pending:       inj - tk - rv,
		Rejected:      a.Rejected.Load(),
		BlockedSpawns: a.BlockedSpawns.Load(),
		Canceled:      a.Canceled.Load(),
		SpawnTimeouts: a.SpawnTimeouts.Load(),
		PeakPending:   a.PeakPending.Load(),
	}
}

// String renders the snapshot on one line.
func (s AdmissionSnapshot) String() string {
	return fmt.Sprintf("injected=%d taken=%d revoked=%d pending=%d rejected=%d blocked=%d canceled=%d spawn_timeouts=%d peak_pending=%d",
		s.Injected, s.Taken, s.Revoked, s.Pending, s.Rejected, s.BlockedSpawns,
		s.Canceled, s.SpawnTimeouts, s.PeakPending)
}
