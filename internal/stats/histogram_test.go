package stats

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{-1, 0},
		{math.NaN(), 0},
		{math.SmallestNonzeroFloat64, 0},
		{histBound(0) / 2, 0},
		{histBound(0), 0},          // exact boundary: le semantics
		{histBound(0) * 1.0001, 1}, // just over the first boundary
		{histBound(5), 5},          // every exact power of two sits under its own bound
		{histBound(5) * 1.0001, 6},
		{1.0, bucketOf(histBound(20))}, // 1 s = 2^0 = bound 20
		{histBound(HistBuckets - 2), HistBuckets - 2}, // largest finite bound
		{histBound(HistBuckets-2) * 2, HistBuckets - 1},
		{math.MaxFloat64, HistBuckets - 1},
		{math.Inf(1), HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// Exhaustive boundary check: every finite bound falls in its own bucket,
	// and anything nudged above it falls in the next.
	for i := 0; i < HistBuckets-1; i++ {
		if got := bucketOf(histBound(i)); got != i {
			t.Errorf("bucketOf(bound %d) = %d", i, got)
		}
		above := math.Nextafter(histBound(i), math.Inf(1))
		want := i + 1
		if want > HistBuckets-1 {
			want = HistBuckets - 1
		}
		if got := bucketOf(above); got != want {
			t.Errorf("bucketOf(just above bound %d) = %d, want %d", i, got, want)
		}
	}
}

func TestHistogramBoundsTable(t *testing.T) {
	bs := HistogramBounds()
	if len(bs) != HistBuckets-1 {
		t.Fatalf("len(bounds) = %d, want %d", len(bs), HistBuckets-1)
	}
	for i := 1; i < len(bs); i++ {
		if bs[i] != 2*bs[i-1] {
			t.Fatalf("bounds not doubling at %d: %g -> %g", i, bs[i-1], bs[i])
		}
	}
	if bs[0] != math.Ldexp(1, histMinExp) || bs[len(bs)-1] != math.Ldexp(1, histMaxExp) {
		t.Fatalf("bounds range [%g, %g]", bs[0], bs[len(bs)-1])
	}
}

func TestObserveSnapshot(t *testing.T) {
	h := NewHistogram(2)
	h.Observe(0, 0.5)
	h.Observe(1, 0.5)
	h.ObserveN(0, 2.0, 3)
	h.ObserveDuration(7, 4*time.Second) // shard reduced modulo 2
	h.Observe(0, math.NaN())            // clamped to 0: first bucket, sum unchanged
	h.Observe(0, -3)                    // likewise
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("Count = %d, want 8", s.Count)
	}
	if want := 0.5 + 0.5 + 3*2.0 + 4.0; s.Sum != want {
		t.Fatalf("Sum = %g, want %g", s.Sum, want)
	}
	if got := s.Counts[bucketOf(0.5)]; got != 2 {
		t.Fatalf("bucket(0.5) = %d, want 2", got)
	}
	if got := s.Counts[bucketOf(2.0)]; got != 3 {
		t.Fatalf("bucket(2.0) = %d, want 3", got)
	}
	if got := s.Counts[0]; got != 2 {
		t.Fatalf("first bucket = %d, want 2 (NaN and negative clamped)", got)
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != s.Count {
		t.Fatalf("Counts sum %d != Count %d", total, s.Count)
	}
}

func TestSnapshotAdd(t *testing.T) {
	a, b := NewHistogram(1), NewHistogram(4)
	a.Observe(0, 0.001)
	b.Observe(2, 1.0)
	b.Observe(3, 100.0) // overflow bucket
	s := a.Snapshot()
	s.Add(b.Snapshot())
	if s.Count != 3 || s.Sum != 101.001 {
		t.Fatalf("merged Count=%d Sum=%g", s.Count, s.Sum)
	}
	if s.Counts[HistBuckets-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", s.Counts[HistBuckets-1])
	}
}

func TestPercentileBoundsEdges(t *testing.T) {
	var empty HistSnapshot
	if lo, hi := empty.PercentileBounds(50); lo != 0 || hi != 0 {
		t.Fatalf("empty bounds = (%g, %g)", lo, hi)
	}
	h := NewHistogram(1)
	h.Observe(0, 1000) // overflow only
	if lo, hi := h.Snapshot().PercentileBounds(50); lo != histBound(HistBuckets-2) || !math.IsInf(hi, 1) {
		t.Fatalf("overflow bounds = (%g, %g)", lo, hi)
	}
	h2 := NewHistogram(1)
	h2.Observe(0, 1e-9) // first bucket only
	if lo, hi := h2.Snapshot().PercentileBounds(50); lo != 0 || hi != histBound(0) {
		t.Fatalf("first-bucket bounds = (%g, %g)", lo, hi)
	}
}

// TestPercentileBracketsSample is the property test tying the histogram's
// percentile estimates to the exact order statistics of Sample: for every
// input distribution of the benchmark suite, the histogram's
// PercentileBounds bracket Sample.Percentile — both sides use the identical
// nearest-rank predicate, so the only slack is the bucket width.
func TestPercentileBracketsSample(t *testing.T) {
	const n = 2000
	for _, k := range dist.Kinds {
		t.Run(k.String(), func(t *testing.T) {
			xs := dist.Generate(k, n, 7)
			h := NewHistogram(4)
			var sm Sample
			for i, x := range xs {
				// Map int32 to a positive duration in (0, ~4.3] seconds so the
				// values span many buckets (and, for the constant
				// distributions, sit exactly on one).
				v := (float64(x) + (1 << 31) + 1) * 1e-9
				h.Observe(i, v) // rotating shard index, reduced modulo 4
				sm.Add(v)
			}
			snap := h.Snapshot()
			if snap.Count != n {
				t.Fatalf("Count = %d, want %d", snap.Count, n)
			}
			for _, p := range []float64{0, 25, 50, 90, 99, 99.9, 100} {
				exact := sm.Percentile(p)
				lo, hi := snap.PercentileBounds(p)
				if !(lo <= exact && exact <= hi) {
					t.Fatalf("p%v: exact %g outside bucket [%g, %g]", p, exact, lo, hi)
				}
				if hi > 0 && lo > 0 && hi != 2*lo && !math.IsInf(hi, 1) {
					t.Fatalf("p%v: bracket [%g, %g] wider than one bucket", p, lo, hi)
				}
				if got := snap.Percentile(p); got != hi {
					t.Fatalf("Percentile(%v) = %g, want hi %g", p, got, hi)
				}
			}
		})
	}
}

// TestHistogramConcurrent exercises the seqlock-stamped snapshot against
// concurrent writers (under -race this also checks the synchronization):
// every snapshot must observe internally consistent totals, and the final
// drained snapshot must account every observation exactly once.
func TestHistogramConcurrent(t *testing.T) {
	const (
		writers = 4
		perW    = 5000
	)
	h := NewHistogram(writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent snapshotter
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var total uint64
			for _, c := range s.Counts {
				total += c
			}
			if total != s.Count {
				t.Errorf("torn snapshot: bucket sum %d != Count %d", total, s.Count)
				return
			}
		}
	}()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(g, 0.001*float64(g+1))
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != writers*perW {
		t.Fatalf("Count = %d, want %d", s.Count, writers*perW)
	}
	want := 0.0
	for g := 0; g < writers; g++ {
		want += 0.001 * float64(g+1) * perW
	}
	if math.Abs(s.Sum-want) > 1e-9 {
		t.Fatalf("Sum = %g, want %g", s.Sum, want)
	}
}

// BenchmarkHistogramObserve measures the sharded Observe under p concurrent
// single-shard writers, b.N observations total (split across the writers).
// The acceptance gate: 0 allocs/op and flat (or falling) ns/op across
// writer counts — shards never share cache lines, so adding writers must
// not add contention.
func BenchmarkHistogramObserve(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("writers=%d", p), func(b *testing.B) {
			h := NewHistogram(p)
			start := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < p; g++ {
				n := b.N / p
				if g < b.N%p {
					n++
				}
				wg.Add(1)
				go func(g, n int) {
					defer wg.Done()
					v := 0.001 * float64(g+1)
					<-start
					for i := 0; i < n; i++ {
						h.Observe(g, v)
					}
				}(g, n)
			}
			b.ReportAllocs()
			b.ResetTimer()
			close(start)
			wg.Wait()
		})
	}
}
