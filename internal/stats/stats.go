// Package stats collects per-worker scheduler counters.
//
// The counters serve three purposes: (1) assertions in integration tests
// (e.g. "every task ran exactly once", "teams were actually formed"),
// (2) ablation experiments over scheduler variants, and (3) the cmd/stress
// diagnostic output. Counters are owned by one worker but may be read
// concurrently, so all fields are atomic. The per-worker structs are padded
// to a cache line to avoid false sharing between adjacent workers.
package stats

import (
	"fmt"
	"sync/atomic"
)

// Worker holds the counters of a single worker.
type Worker struct {
	TasksRun        atomic.Int64 // tasks executed (team tasks count once per participant)
	TeamTasksRun    atomic.Int64 // executions that were part of a team of size > 1
	TeamsFormed     atomic.Int64 // teams fixed by this worker as coordinator
	TeamsCoordd     atomic.Int64 // coordination rounds entered
	Spawns          atomic.Int64 // tasks pushed to local queues
	Steals          atomic.Int64 // successful steal operations (≥ 1 task)
	TasksStolen     atomic.Int64 // tasks transferred by steals
	StealAttempts   atomic.Int64 // stealTasks invocations
	FailedAttempts  atomic.Int64 // stealTasks rounds with no work found
	Registrations   atomic.Int64 // successful team registrations at a coordinator
	Deregistrations atomic.Int64
	Revocations     atomic.Int64 // registrations found revoked (epoch change)
	ConflictsLost   atomic.Int64 // coordination conflicts yielded to another coordinator
	CASFailures     atomic.Int64 // failed CAS on a registration word
	Backoffs        atomic.Int64 // backoff waits
	Polls           atomic.Int64 // pollPartners invocations
	InjectTakes     atomic.Int64 // tasks taken from the inject queues
	QuiesceScans    atomic.Int64 // quiescence sum-scans run on this worker's completion path

	_ [5]int64 // pad to reduce false sharing
}

// Snapshot is a plain-value copy of a Worker's counters.
type Snapshot struct {
	TasksRun, TeamTasksRun, TeamsFormed, TeamsCoordd  int64
	Spawns, Steals, TasksStolen, StealAttempts        int64
	FailedAttempts, Registrations, Deregistrations    int64
	Revocations, ConflictsLost, CASFailures, Backoffs int64
	Polls, InjectTakes, QuiesceScans                  int64
}

// Snapshot returns a consistent-enough copy for reporting (individual loads
// are atomic; the set is not a single atomic snapshot).
func (w *Worker) Snapshot() Snapshot {
	return Snapshot{
		TasksRun:        w.TasksRun.Load(),
		TeamTasksRun:    w.TeamTasksRun.Load(),
		TeamsFormed:     w.TeamsFormed.Load(),
		TeamsCoordd:     w.TeamsCoordd.Load(),
		Spawns:          w.Spawns.Load(),
		Steals:          w.Steals.Load(),
		TasksStolen:     w.TasksStolen.Load(),
		StealAttempts:   w.StealAttempts.Load(),
		FailedAttempts:  w.FailedAttempts.Load(),
		Registrations:   w.Registrations.Load(),
		Deregistrations: w.Deregistrations.Load(),
		Revocations:     w.Revocations.Load(),
		ConflictsLost:   w.ConflictsLost.Load(),
		CASFailures:     w.CASFailures.Load(),
		Backoffs:        w.Backoffs.Load(),
		Polls:           w.Polls.Load(),
		InjectTakes:     w.InjectTakes.Load(),
		QuiesceScans:    w.QuiesceScans.Load(),
	}
}

// Add accumulates o into s.
func (s *Snapshot) Add(o Snapshot) {
	s.TasksRun += o.TasksRun
	s.TeamTasksRun += o.TeamTasksRun
	s.TeamsFormed += o.TeamsFormed
	s.TeamsCoordd += o.TeamsCoordd
	s.Spawns += o.Spawns
	s.Steals += o.Steals
	s.TasksStolen += o.TasksStolen
	s.StealAttempts += o.StealAttempts
	s.FailedAttempts += o.FailedAttempts
	s.Registrations += o.Registrations
	s.Deregistrations += o.Deregistrations
	s.Revocations += o.Revocations
	s.ConflictsLost += o.ConflictsLost
	s.CASFailures += o.CASFailures
	s.Backoffs += o.Backoffs
	s.Polls += o.Polls
	s.InjectTakes += o.InjectTakes
	s.QuiesceScans += o.QuiesceScans
}

// String renders the snapshot on one line.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"tasks=%d team_tasks=%d teams=%d coord=%d spawns=%d steals=%d stolen=%d attempts=%d failed=%d reg=%d dereg=%d revoked=%d conflicts=%d cas_fail=%d backoffs=%d polls=%d inject_takes=%d quiesce_scans=%d",
		s.TasksRun, s.TeamTasksRun, s.TeamsFormed, s.TeamsCoordd, s.Spawns,
		s.Steals, s.TasksStolen, s.StealAttempts, s.FailedAttempts,
		s.Registrations, s.Deregistrations, s.Revocations, s.ConflictsLost,
		s.CASFailures, s.Backoffs, s.Polls, s.InjectTakes, s.QuiesceScans)
}

// Sum aggregates the snapshots of all workers.
func Sum(ws []*Worker) Snapshot {
	var total Snapshot
	for _, w := range ws {
		total.Add(w.Snapshot())
	}
	return total
}
