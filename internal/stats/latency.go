package stats

import (
	"fmt"
	"sort"
	"time"
)

// Sample accumulates latency (or any scalar) observations and reports
// order statistics — the reporting half of the multi-client throughput
// harness (cmd/throughput). A Sample is not safe for concurrent use: each
// client records into its own Sample and the collector folds them together
// with Merge after the clients stop.
type Sample struct {
	vs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vs = append(s.vs, v)
	s.sorted = false
}

// AddDuration records one observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Merge folds all of o's observations into s; o is unchanged.
func (s *Sample) Merge(o *Sample) {
	s.vs = append(s.vs, o.vs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vs) }

// Mean returns the arithmetic mean, 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vs {
		sum += v
	}
	return sum / float64(len(s.vs))
}

// Percentile returns the nearest-rank p-th percentile (p in [0, 100]):
// the smallest observation ≥ p percent of the sample. p = 0 returns the
// minimum, p = 100 the maximum; an empty sample returns 0.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.vs)
	if n == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0, 100]", p))
	}
	s.ensureSorted()
	rank := int(p / 100 * float64(n)) // ceil(p/100·n) as 0-based index
	if float64(rank)*100 < p*float64(n) {
		rank++
	}
	if rank > 0 {
		rank--
	}
	return s.vs[rank]
}

// Min returns the smallest observation, 0 for an empty sample.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation, 0 for an empty sample.
func (s *Sample) Max() float64 { return s.Percentile(100) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vs)
		s.sorted = true
	}
}
