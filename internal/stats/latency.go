package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Sample accumulates latency (or any scalar) observations and reports
// order statistics — the reporting half of the multi-client throughput
// harness (cmd/throughput). A Sample is not safe for concurrent use: each
// client records into its own Sample and the collector folds them together
// with Merge after the clients stop.
type Sample struct {
	vs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	s.vs = append(s.vs, v)
	s.sorted = false
}

// AddDuration records one observation in seconds.
func (s *Sample) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Merge folds all of o's observations into s; o is unchanged.
func (s *Sample) Merge(o *Sample) {
	s.vs = append(s.vs, o.vs...)
	s.sorted = false
}

// N returns the number of observations.
func (s *Sample) N() int { return len(s.vs) }

// Mean returns the arithmetic mean, 0 for an empty sample.
func (s *Sample) Mean() float64 {
	if len(s.vs) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.vs {
		sum += v
	}
	return sum / float64(len(s.vs))
}

// Percentile returns the nearest-rank p-th percentile (p in [0, 100]): the
// observation at the smallest 1-based rank k with k·100 ≥ p·n. p = 0
// returns the minimum, p = 100 the maximum; an empty sample returns 0.
//
// The rank is defined by the exact predicate float64(k)·100 ≥ p·float64(n)
// (k·100 is exact in float64 for any realistic n; p·n rounds once). The
// math.Ceil estimate divides by 100 and so can land one off after rounding;
// the fix-up loops restore the predicate in either direction instead of
// emulating ceil with a truncate-and-compare, which was vulnerable to the
// double rounding.
func (s *Sample) Percentile(p float64) float64 {
	n := len(s.vs)
	if n == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0, 100]", p))
	}
	s.ensureSorted()
	t := p * float64(n)
	k := int(math.Ceil(t / 100))
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	for k > 1 && float64(k-1)*100 >= t {
		k--
	}
	for k < n && float64(k)*100 < t {
		k++
	}
	return s.vs[k-1]
}

// Min returns the smallest observation, 0 for an empty sample.
func (s *Sample) Min() float64 { return s.Percentile(0) }

// Max returns the largest observation, 0 for an empty sample.
func (s *Sample) Max() float64 { return s.Percentile(100) }

func (s *Sample) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.vs)
		s.sorted = true
	}
}
