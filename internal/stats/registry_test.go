package stats

import (
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with fully deterministic values: static
// closures, one single-shard histogram, and a dynamic family exercising
// label escaping and same-label summing.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.CounterFunc("test_requests_total", "Requests served.", nil, func() float64 { return 42 })
	r.GaugeFunc("test_queue_depth", "Depth of the inject queue.", []Label{{"queue", "inject"}}, func() float64 { return 3 })
	r.GaugeFunc("test_queue_depth", "Depth of the inject queue.", []Label{{"queue", "local"}}, func() float64 { return 0.5 })
	h := NewHistogram(1)
	h.Observe(0, 0.5e-6)
	h.Observe(0, 3e-3)
	h.ObserveN(0, 2.5, 2)
	h.Observe(0, 100)
	r.Histogram("test_latency_seconds", "Sort latency.", nil, h)
	r.GaugeDynamic("test_group_pending", "Pending per group.", func(emit func([]Label, float64)) {
		emit([]Label{{"group", `a"b\c`}}, 1)
		emit([]Label{{"group", "plain"}}, 2)
		emit([]Label{{"group", "plain"}}, 3) // same labels: summed
	})
	return r
}

// goldenExposition pins the exact rendered text: registration order, HELP
// and TYPE lines, cumulative le-buckets over the full fixed boundary table,
// label escaping, and dynamic-sample summing. Any change to the exposition
// format shows up as a diff here.
const goldenExposition = `# HELP test_requests_total Requests served.
# TYPE test_requests_total counter
test_requests_total 42
# HELP test_queue_depth Depth of the inject queue.
# TYPE test_queue_depth gauge
test_queue_depth{queue="inject"} 3
test_queue_depth{queue="local"} 0.5
# HELP test_latency_seconds Sort latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="9.5367431640625e-07"} 1
test_latency_seconds_bucket{le="1.9073486328125e-06"} 1
test_latency_seconds_bucket{le="3.814697265625e-06"} 1
test_latency_seconds_bucket{le="7.62939453125e-06"} 1
test_latency_seconds_bucket{le="1.52587890625e-05"} 1
test_latency_seconds_bucket{le="3.0517578125e-05"} 1
test_latency_seconds_bucket{le="6.103515625e-05"} 1
test_latency_seconds_bucket{le="0.0001220703125"} 1
test_latency_seconds_bucket{le="0.000244140625"} 1
test_latency_seconds_bucket{le="0.00048828125"} 1
test_latency_seconds_bucket{le="0.0009765625"} 1
test_latency_seconds_bucket{le="0.001953125"} 1
test_latency_seconds_bucket{le="0.00390625"} 2
test_latency_seconds_bucket{le="0.0078125"} 2
test_latency_seconds_bucket{le="0.015625"} 2
test_latency_seconds_bucket{le="0.03125"} 2
test_latency_seconds_bucket{le="0.0625"} 2
test_latency_seconds_bucket{le="0.125"} 2
test_latency_seconds_bucket{le="0.25"} 2
test_latency_seconds_bucket{le="0.5"} 2
test_latency_seconds_bucket{le="1"} 2
test_latency_seconds_bucket{le="2"} 2
test_latency_seconds_bucket{le="4"} 4
test_latency_seconds_bucket{le="8"} 4
test_latency_seconds_bucket{le="16"} 4
test_latency_seconds_bucket{le="32"} 4
test_latency_seconds_bucket{le="64"} 4
test_latency_seconds_bucket{le="+Inf"} 5
test_latency_seconds_sum 105.0030005
test_latency_seconds_count 5
# HELP test_group_pending Pending per group.
# TYPE test_group_pending gauge
test_group_pending{group="a\"b\\c"} 1
test_group_pending{group="plain"} 5
`

func TestRegistryGolden(t *testing.T) {
	got := goldenRegistry().Render()
	if got != goldenExposition {
		t.Fatalf("exposition drifted from golden.\ngot:\n%s\nwant:\n%s", got, goldenExposition)
	}
}

// Exposition grammar of the subset the registry emits.
var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (\+Inf|-Inf|NaN|[0-9eE.+-]+)$`)
)

// expoSample is one parsed sample line.
type expoSample struct {
	name   string // with _bucket/_sum/_count suffix intact
	labels string // raw label string incl. braces, "" if none
	value  float64
}

// parseExposition is the minimal parser of the round-trip test: it
// validates every line against the grammar and returns the samples plus the
// TYPE of every declared family.
func parseExposition(t *testing.T, text string) (samples []expoSample, types map[string]string) {
	t.Helper()
	types = map[string]string{}
	if !strings.HasSuffix(text, "\n") {
		t.Fatalf("exposition does not end in a newline")
	}
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Fatalf("malformed HELP line: %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := types[m[1]]; dup {
				t.Fatalf("family %q typed twice", m[1])
			}
			types[m[1]] = m[2]
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("malformed sample line: %q", line)
			}
			v, err := strconv.ParseFloat(strings.Replace(m[3], "+Inf", "Inf", 1), 64)
			if err != nil {
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
			samples = append(samples, expoSample{name: m[1], labels: m[2], value: v})
		}
	}
	return samples, types
}

// familyOf strips the histogram sample suffixes to recover the family name.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base
		}
	}
	return name
}

// TestExpositionRoundTrip re-parses the rendered golden registry and checks
// the structural invariants scrape consumers rely on: every sample belongs
// to a typed family, histogram buckets are cumulative and end in a +Inf
// bucket equal to _count, and the parsed values match the registry's own
// Values view.
func TestExpositionRoundTrip(t *testing.T) {
	r := goldenRegistry()
	samples, types := parseExposition(t, r.Render())
	if len(types) != 4 {
		t.Fatalf("parsed %d families, want 4", len(types))
	}

	var buckets []expoSample
	var sum, count float64
	for _, s := range samples {
		fam := familyOf(s.name, types)
		if _, ok := types[fam]; !ok {
			t.Fatalf("sample %q has no TYPE declaration", s.name)
		}
		switch s.name {
		case "test_latency_seconds_bucket":
			buckets = append(buckets, s)
		case "test_latency_seconds_sum":
			sum = s.value
		case "test_latency_seconds_count":
			count = s.value
		}
	}
	if len(buckets) != HistBuckets {
		t.Fatalf("parsed %d buckets, want %d", len(buckets), HistBuckets)
	}
	leRe := regexp.MustCompile(`le="([^"]*)"`)
	prevLE := math.Inf(-1)
	prevCum := 0.0
	for i, b := range buckets {
		leStr := leRe.FindStringSubmatch(b.labels)[1]
		le, err := strconv.ParseFloat(strings.Replace(leStr, "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Fatalf("bad le %q: %v", leStr, err)
		}
		if le <= prevLE {
			t.Fatalf("le boundaries not increasing at %d: %g after %g", i, le, prevLE)
		}
		if b.value < prevCum {
			t.Fatalf("bucket counts not cumulative at le=%q: %g after %g", leStr, b.value, prevCum)
		}
		prevLE, prevCum = le, b.value
	}
	if !math.IsInf(prevLE, 1) {
		t.Fatalf("last bucket le = %g, want +Inf", prevLE)
	}
	if prevCum != count {
		t.Fatalf("+Inf bucket %g != _count %g", prevCum, count)
	}

	vals := r.Values()
	if vals["test_requests_total"] != 42 ||
		vals[`test_queue_depth{queue="inject"}`] != 3 ||
		vals[`test_group_pending{group="plain"}`] != 5 {
		t.Fatalf("Values mismatch: %v", vals)
	}
	if vals["test_latency_seconds_count"] != count || vals["test_latency_seconds_sum"] != sum {
		t.Fatalf("Values histogram count/sum disagree with exposition")
	}
	if got := vals["test_latency_seconds_p50"]; got != 4 {
		t.Fatalf("p50 estimate = %g, want 4 (upper bound of the 2.5s bucket)", got)
	}
	if got := vals["test_latency_seconds_p99"]; !math.IsInf(got, 1) {
		t.Fatalf("p99 estimate = %g, want +Inf (overflow bucket)", got)
	}
}

// TestRegistryRegistrationPanics pins the programmer-error surface:
// duplicate series, kind/help drift on a reused name, invalid metric and
// label names, and static/dynamic family collisions all panic loudly at
// registration instead of corrupting the exposition.
func TestRegistryRegistrationPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.CounterFunc("a_total", "A.", nil, func() float64 { return 0 })
	mustPanic("duplicate series", func() {
		r.CounterFunc("a_total", "A.", nil, func() float64 { return 0 })
	})
	mustPanic("kind mismatch", func() {
		r.GaugeFunc("a_total", "A.", nil, func() float64 { return 0 })
	})
	mustPanic("help mismatch", func() {
		r.CounterFunc("a_total", "Different.", []Label{{"x", "y"}}, func() float64 { return 0 })
	})
	mustPanic("invalid metric name", func() {
		r.CounterFunc("0bad", "B.", nil, func() float64 { return 0 })
	})
	mustPanic("invalid label name", func() {
		r.CounterFunc("b_total", "B.", []Label{{"0x", "y"}}, func() float64 { return 0 })
	})
	r.GaugeDynamic("dyn", "D.", func(emit func([]Label, float64)) {})
	mustPanic("static series on dynamic family", func() {
		r.GaugeFunc("dyn", "D.", nil, func() float64 { return 0 })
	})
	mustPanic("dynamic on existing family", func() {
		r.GaugeDynamic("a_total", "A.", func(emit func([]Label, float64)) {})
	})
}
