package stats

import (
	"testing"
	"time"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must read all zeros")
	}
}

func TestSamplePercentilesNearestRank(t *testing.T) {
	var s Sample
	// Insert out of order; percentiles must sort internally.
	for _, v := range []float64{5, 1, 4, 2, 3} {
		s.Add(v)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {10, 1}, {20, 1}, {21, 2}, {40, 2}, {50, 3},
		{60, 3}, {61, 4}, {80, 4}, {99, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestSampleMergeAndDurations(t *testing.T) {
	var a, b Sample
	a.AddDuration(100 * time.Millisecond)
	a.AddDuration(300 * time.Millisecond)
	b.AddDuration(200 * time.Millisecond)
	// Interleave a percentile query with later adds: the sample must
	// re-sort after growing.
	if got := a.Percentile(100); got != 0.3 {
		t.Fatalf("pre-merge max = %v", got)
	}
	a.Merge(&b)
	if a.N() != 3 || b.N() != 1 {
		t.Fatalf("after merge: a.N=%d b.N=%d", a.N(), b.N())
	}
	if got := a.Percentile(50); got != 0.2 {
		t.Fatalf("median = %v, want 0.2", got)
	}
}

func TestSamplePercentileOutOfRangePanics(t *testing.T) {
	var s Sample
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range percentile must panic")
		}
	}()
	s.Percentile(101)
}
