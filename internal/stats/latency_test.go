package stats

import (
	"math"
	"testing"
	"time"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Percentile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample must read all zeros")
	}
}

func TestSamplePercentilesNearestRank(t *testing.T) {
	var s Sample
	// Insert out of order; percentiles must sort internally.
	for _, v := range []float64{5, 1, 4, 2, 3} {
		s.Add(v)
	}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {10, 1}, {20, 1}, {21, 2}, {40, 2}, {50, 3},
		{60, 3}, {61, 4}, {80, 4}, {99, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("p%v = %v, want %v", c.p, got, c.want)
		}
	}
	if s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
}

func TestSampleMergeAndDurations(t *testing.T) {
	var a, b Sample
	a.AddDuration(100 * time.Millisecond)
	a.AddDuration(300 * time.Millisecond)
	b.AddDuration(200 * time.Millisecond)
	// Interleave a percentile query with later adds: the sample must
	// re-sort after growing.
	if got := a.Percentile(100); got != 0.3 {
		t.Fatalf("pre-merge max = %v", got)
	}
	a.Merge(&b)
	if a.N() != 3 || b.N() != 1 {
		t.Fatalf("after merge: a.N=%d b.N=%d", a.N(), b.N())
	}
	if got := a.Percentile(50); got != 0.2 {
		t.Fatalf("median = %v, want 0.2", got)
	}
}

func TestSamplePercentileOutOfRangePanics(t *testing.T) {
	var s Sample
	s.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range percentile must panic")
		}
	}()
	s.Percentile(101)
}

// oracleRank is the brute-force nearest-rank oracle: the smallest 1-based
// rank k whose cumulative share k·100 reaches the once-rounded threshold
// p·n, found by linear scan with the exact same predicate Percentile must
// honor. This is the definition; Percentile's ceil-plus-fixup must agree on
// every input.
func oracleRank(p float64, n int) int {
	t := p * float64(n)
	for k := 1; k < n; k++ {
		if float64(k)*100 >= t {
			return k
		}
	}
	return n
}

// TestPercentileMatchesOracle is the property test of the nearest-rank
// computation over adversarial (p, n) pairs: for every n up to 256 it
// probes each exact boundary p = 100·k/n and its float64 neighbors (the
// inputs on which truncate-and-compare ceil emulations go off by one), plus
// a sweep of non-boundary percentiles.
func TestPercentileMatchesOracle(t *testing.T) {
	for n := 1; n <= 256; n++ {
		var s Sample
		for i := 1; i <= n; i++ {
			s.Add(float64(i)) // vs[k-1] == k: the rank is its own witness
		}
		check := func(p float64) {
			t.Helper()
			if p < 0 || p > 100 {
				return
			}
			want := float64(oracleRank(p, n))
			if got := s.Percentile(p); got != want {
				t.Fatalf("n=%d p=%v: Percentile = %v, oracle rank = %v", n, p, got, want)
			}
		}
		for k := 0; k <= n; k++ {
			p := 100 * float64(k) / float64(n)
			check(p)
			check(math.Nextafter(p, 0))
			check(math.Nextafter(p, 200))
		}
		for p := 0.0; p <= 100; p += 100.0 / 7 {
			check(p)
		}
		check(100)
	}
}

// FuzzPercentile fuzzes Percentile against the oracle on arbitrary (p, n)
// and checks the boundary contracts (p=0 min, p=100 max, out-of-range
// panic is covered by the unit tests).
func FuzzPercentile(f *testing.F) {
	f.Add(50.0, uint16(5))
	f.Add(99.999999999999, uint16(1000))
	f.Add(100*3.0/7.0, uint16(7))
	f.Fuzz(func(t *testing.T, p float64, nn uint16) {
		n := 1 + int(nn)%2048
		if math.IsNaN(p) || p < 0 || p > 100 {
			return
		}
		var s Sample
		for i := 1; i <= n; i++ {
			s.Add(float64(i))
		}
		want := float64(oracleRank(p, n))
		if got := s.Percentile(p); got != want {
			t.Fatalf("n=%d p=%v: Percentile = %v, oracle rank = %v", n, p, got, want)
		}
		if s.Percentile(0) != 1 || s.Percentile(100) != float64(n) {
			t.Fatal("p=0/p=100 must be min/max")
		}
	})
}
