package stats

import (
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestSnapshotAndAdd(t *testing.T) {
	var w Worker
	w.TasksRun.Add(3)
	w.Steals.Add(2)
	w.Registrations.Add(5)
	s := w.Snapshot()
	if s.TasksRun != 3 || s.Steals != 2 || s.Registrations != 5 {
		t.Fatalf("snapshot = %+v", s)
	}
	var total Snapshot
	total.Add(s)
	total.Add(s)
	if total.TasksRun != 6 || total.Steals != 4 || total.Registrations != 10 {
		t.Fatalf("sum = %+v", total)
	}
}

func TestSum(t *testing.T) {
	ws := []*Worker{{}, {}, {}}
	for i, w := range ws {
		w.TasksRun.Add(int64(i + 1))
		w.Backoffs.Add(10)
	}
	s := Sum(ws)
	if s.TasksRun != 6 || s.Backoffs != 30 {
		t.Fatalf("Sum = %+v", s)
	}
}

func TestConcurrentCounting(t *testing.T) {
	var w Worker
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				w.TasksRun.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := w.TasksRun.Load(); got != 8000 {
		t.Fatalf("TasksRun = %d", got)
	}
}

var atomicInt64Type = reflect.TypeOf(atomic.Int64{})

// workerCounterFields returns the names of every atomic.Int64 counter of
// Worker (skipping padding) via reflection, so the exhaustiveness tests
// below pick up counters added later without being edited.
func workerCounterFields(t *testing.T) []string {
	t.Helper()
	var names []string
	wt := reflect.TypeOf(Worker{})
	for i := 0; i < wt.NumField(); i++ {
		f := wt.Field(i)
		if f.Type == atomicInt64Type {
			if !f.IsExported() {
				t.Fatalf("Worker counter %q is unexported", f.Name)
			}
			names = append(names, f.Name)
		}
	}
	return names
}

// TestWorkerSnapshotExhaustive gives every Worker counter a distinct value
// and checks Snapshot carries each one over under the same field name —
// a counter added to Worker but forgotten in Snapshot (or the Snapshot
// method) fails here, without the test naming any field.
func TestWorkerSnapshotExhaustive(t *testing.T) {
	var w Worker
	wv := reflect.ValueOf(&w).Elem()
	names := workerCounterFields(t)
	for i, name := range names {
		wv.FieldByName(name).Addr().Interface().(*atomic.Int64).Store(int64(100 + i))
	}
	snap := w.Snapshot()
	sv := reflect.ValueOf(snap)
	if got, want := sv.NumField(), len(names); got != want {
		t.Fatalf("Snapshot has %d fields, Worker has %d counters", got, want)
	}
	for i, name := range names {
		f := sv.FieldByName(name)
		if !f.IsValid() {
			t.Fatalf("Snapshot lacks field %q", name)
		}
		if got, want := f.Int(), int64(100+i); got != want {
			t.Fatalf("Snapshot.%s = %d, want %d (dropped by Snapshot())", name, got, want)
		}
	}
}

// TestSnapshotAddExhaustive checks Add accumulates every Snapshot field: a
// field missed by Add stays zero instead of doubling.
func TestSnapshotAddExhaustive(t *testing.T) {
	var a Snapshot
	av := reflect.ValueOf(&a).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetInt(int64(7 + i))
	}
	var total Snapshot
	total.Add(a)
	total.Add(a)
	tv := reflect.ValueOf(total)
	for i := 0; i < tv.NumField(); i++ {
		if got, want := tv.Field(i).Int(), int64(2*(7+i)); got != want {
			t.Fatalf("after two Adds, %s = %d, want %d (missed by Add)",
				tv.Type().Field(i).Name, got, want)
		}
	}
}

// TestSumExhaustive checks Sum covers every field across workers.
func TestSumExhaustive(t *testing.T) {
	ws := []*Worker{{}, {}}
	names := workerCounterFields(t)
	for wi, w := range ws {
		wv := reflect.ValueOf(w).Elem()
		for i, name := range names {
			wv.FieldByName(name).Addr().Interface().(*atomic.Int64).Store(int64((wi + 1) * (i + 1)))
		}
	}
	sv := reflect.ValueOf(Sum(ws))
	for i, name := range names {
		if got, want := sv.FieldByName(name).Int(), int64(3*(i+1)); got != want {
			t.Fatalf("Sum.%s = %d, want %d", name, got, want)
		}
	}
}

// TestAdmissionSnapshotExhaustive gives every Admission counter a distinct
// value and checks the snapshot covers every one of its own fields: same-
// named fields copy through, and the derived Pending is Injected − Taken.
func TestAdmissionSnapshotExhaustive(t *testing.T) {
	var a Admission
	at := reflect.TypeOf(&a).Elem()
	av := reflect.ValueOf(&a).Elem()
	for i := 0; i < at.NumField(); i++ {
		if at.Field(i).Type != atomicInt64Type {
			t.Fatalf("Admission field %q is not atomic.Int64", at.Field(i).Name)
		}
		av.Field(i).Addr().Interface().(*atomic.Int64).Store(int64(1000 + 10*i))
	}
	snap := a.Snapshot()
	sv := reflect.ValueOf(snap)
	st := sv.Type()
	covered := 0
	for i := 0; i < st.NumField(); i++ {
		name := st.Field(i).Name
		got := sv.Field(i).Int()
		if name == "Pending" {
			if want := snap.Injected - snap.Taken - snap.Revoked; got != want {
				t.Fatalf("Pending = %d, want Injected−Taken−Revoked = %d", got, want)
			}
			covered++
			continue
		}
		src := av.FieldByName(name)
		if !src.IsValid() {
			t.Fatalf("AdmissionSnapshot field %q has no Admission counterpart", name)
		}
		if want := src.Addr().Interface().(*atomic.Int64).Load(); got != want {
			t.Fatalf("AdmissionSnapshot.%s = %d, want %d", name, got, want)
		}
		covered++
	}
	if covered != at.NumField()+1 { // every counter + the derived Pending
		t.Fatalf("snapshot covers %d fields, want %d", covered, at.NumField()+1)
	}
}

func TestStringContainsFields(t *testing.T) {
	var w Worker
	w.TeamsFormed.Add(4)
	w.CASFailures.Add(7)
	s := w.Snapshot().String()
	for _, frag := range []string{"teams=4", "cas_fail=7", "tasks=0"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String %q missing %q", s, frag)
		}
	}
}
