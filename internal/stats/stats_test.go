package stats

import (
	"strings"
	"sync"
	"testing"
)

func TestSnapshotAndAdd(t *testing.T) {
	var w Worker
	w.TasksRun.Add(3)
	w.Steals.Add(2)
	w.Registrations.Add(5)
	s := w.Snapshot()
	if s.TasksRun != 3 || s.Steals != 2 || s.Registrations != 5 {
		t.Fatalf("snapshot = %+v", s)
	}
	var total Snapshot
	total.Add(s)
	total.Add(s)
	if total.TasksRun != 6 || total.Steals != 4 || total.Registrations != 10 {
		t.Fatalf("sum = %+v", total)
	}
}

func TestSum(t *testing.T) {
	ws := []*Worker{{}, {}, {}}
	for i, w := range ws {
		w.TasksRun.Add(int64(i + 1))
		w.Backoffs.Add(10)
	}
	s := Sum(ws)
	if s.TasksRun != 6 || s.Backoffs != 30 {
		t.Fatalf("Sum = %+v", s)
	}
}

func TestConcurrentCounting(t *testing.T) {
	var w Worker
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				w.TasksRun.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := w.TasksRun.Load(); got != 8000 {
		t.Fatalf("TasksRun = %d", got)
	}
}

func TestStringContainsFields(t *testing.T) {
	var w Worker
	w.TeamsFormed.Add(4)
	w.CASFailures.Add(7)
	s := w.Snapshot().String()
	for _, frag := range []string{"teams=4", "cas_fail=7", "tasks=0"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("String %q missing %q", s, frag)
		}
	}
}
