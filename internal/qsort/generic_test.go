package qsort

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// The sorting stack is generic over Ordered; the paper sorts int32 but the
// library must behave for other element types too.

func TestSortsInt64(t *testing.T) {
	rng := dist.NewRNG(1)
	data := make([]int64, 50000)
	for i := range data {
		data[i] = int64(rng.Next()) // full-range, including negatives
	}
	s := core.New(core.Options{P: 4})
	defer s.Shutdown()
	MixedMode(s, data, MMOptions{BlockSize: 512, MinBlocksPerThread: 4})
	if !IsSorted(data) {
		t.Fatal("int64 not sorted")
	}
}

func TestSortsFloat64(t *testing.T) {
	rng := dist.NewRNG(2)
	data := make([]float64, 50000)
	for i := range data {
		data[i] = float64(int64(rng.Next())) / 1e6
	}
	s := core.New(core.Options{P: 4})
	defer s.Shutdown()
	MixedMode(s, data, MMOptions{BlockSize: 512, MinBlocksPerThread: 4})
	if !IsSorted(data) {
		t.Fatal("float64 not sorted")
	}
}

func TestSortsStrings(t *testing.T) {
	rng := dist.NewRNG(3)
	data := make([]string, 20000)
	alphabet := "abcdefghijklmnop"
	for i := range data {
		n := 1 + rng.Intn(12)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[rng.Intn(len(alphabet))]
		}
		data[i] = string(b)
	}
	s := core.New(core.Options{P: 4})
	defer s.Shutdown()
	ForkJoinCore(s, data, 64)
	if !IsSorted(data) {
		t.Fatal("strings not sorted")
	}
}

func TestIntrosortNegativeAndExtremes(t *testing.T) {
	data := []int32{math.MaxInt32, math.MinInt32, 0, -1, 1, math.MaxInt32, math.MinInt32}
	Introsort(data)
	if !IsSorted(data) {
		t.Fatalf("extremes not sorted: %v", data)
	}
	if data[0] != math.MinInt32 || data[len(data)-1] != math.MaxInt32 {
		t.Fatalf("extremes misplaced: %v", data)
	}
}

func TestMixedModeUint32(t *testing.T) {
	rng := dist.NewRNG(4)
	data := make([]uint32, 100000)
	for i := range data {
		data[i] = uint32(rng.Next())
	}
	s := core.New(core.Options{P: 8})
	defer s.Shutdown()
	MixedMode(s, data, MMOptions{BlockSize: 1024, MinBlocksPerThread: 4})
	if !IsSorted(data) {
		t.Fatal("uint32 not sorted")
	}
}
