package qsort

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dist"
)

// testInputs returns a varied set of adversarial and typical inputs.
func testInputs() map[string][]int32 {
	ins := map[string][]int32{
		"empty":     {},
		"single":    {42},
		"pair":      {2, 1},
		"pairEq":    {7, 7},
		"allEqual":  make([]int32, 1000),
		"sorted":    make([]int32, 1000),
		"reverse":   make([]int32, 1000),
		"sawtooth":  make([]int32, 1000),
		"twoVals":   make([]int32, 1000),
		"organPipe": make([]int32, 1000),
	}
	for i := 0; i < 1000; i++ {
		ins["allEqual"][i] = 5
		ins["sorted"][i] = int32(i)
		ins["reverse"][i] = int32(1000 - i)
		ins["sawtooth"][i] = int32(i % 13)
		ins["twoVals"][i] = int32(i % 2)
		if i < 500 {
			ins["organPipe"][i] = int32(i)
		} else {
			ins["organPipe"][i] = int32(1000 - i)
		}
	}
	for _, k := range dist.Kinds {
		ins["dist-"+k.String()] = dist.Generate(k, 20000, 7)
	}
	return ins
}

func checkSorted(t *testing.T, name string, got, orig []int32) {
	t.Helper()
	if !IsSorted(got) {
		t.Fatalf("%s: output not sorted", name)
	}
	want := append([]int32(nil), orig...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %d, want %d (multiset changed)", name, i, got[i], want[i])
		}
	}
}

func TestIntrosort(t *testing.T) {
	for name, in := range testInputs() {
		data := append([]int32(nil), in...)
		Introsort(data)
		checkSorted(t, name, data, in)
	}
}

func TestSequentialQuicksort(t *testing.T) {
	for name, in := range testInputs() {
		data := append([]int32(nil), in...)
		SequentialQuicksort(data)
		checkSorted(t, name, data, in)
	}
}

func TestSequentialQuicksortSmallCutoff(t *testing.T) {
	in := dist.Generate(dist.Random, 5000, 3)
	data := append([]int32(nil), in...)
	SequentialQuicksortCutoff(data, 2)
	checkSorted(t, "cutoff2", data, in)
}

func TestInsertionSort(t *testing.T) {
	in := dist.Generate(dist.Random, 500, 9)
	data := append([]int32(nil), in...)
	InsertionSort(data)
	checkSorted(t, "insertion", data, in)
}

func TestHeapSortViaDepthLimit(t *testing.T) {
	// A killer-adversary-ish input: median-of-3 quicksort degrades on
	// organ-pipe-of-organ-pipes; here just verify heapSort directly.
	in := dist.Generate(dist.Random, 3000, 5)
	data := append([]int32(nil), in...)
	heapSort(data)
	checkSorted(t, "heap", data, in)
}

func TestIntrosortStrings(t *testing.T) {
	data := []string{"pear", "apple", "fig", "banana", "apple", ""}
	Introsort(data)
	if !IsSorted(data) {
		t.Fatalf("strings not sorted: %v", data)
	}
}

func TestIntrosortQuick(t *testing.T) {
	f := func(in []int32) bool {
		data := append([]int32(nil), in...)
		Introsort(data)
		if !IsSorted(data) {
			return false
		}
		want := append([]int32(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHoarePartitionContract(t *testing.T) {
	f := func(in []int32) bool {
		if len(in) < 2 {
			return true
		}
		data := append([]int32(nil), in...)
		s := HoarePartition(data)
		if s <= 0 || s >= len(data) {
			return false // strict progress bounds
		}
		var maxL, minR int32 = data[0], data[s]
		for _, v := range data[:s] {
			if v > maxL {
				maxL = v
			}
		}
		for _, v := range data[s:] {
			if v < minR {
				minR = v
			}
		}
		return maxL <= minR
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHoarePartitionAllEqual(t *testing.T) {
	data := make([]int32, 100)
	s := HoarePartition(data)
	if s <= 0 || s >= 100 {
		t.Fatalf("all-equal split = %d, want interior", s)
	}
}

func TestPartitionByValueContract(t *testing.T) {
	f := func(in []int32, pv int32) bool {
		data := append([]int32(nil), in...)
		s := PartitionByValue(data, pv)
		if s < 0 || s > len(data) {
			return false
		}
		for _, v := range data[:s] {
			if v > pv {
				return false
			}
		}
		for _, v := range data[s:] {
			if v < pv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNeutralize(t *testing.T) {
	// Left block of large values, right block of small: full swap.
	data := []int32{9, 9, 9, 9, 1, 1, 1, 1}
	l := &blockScan{lo: 0, hi: 4, pos: 0}
	r := &blockScan{lo: 4, hi: 8, pos: 4}
	neutralize(data, 5, l, r)
	if !l.exhausted() || !r.exhausted() {
		t.Fatalf("both blocks should neutralize: l=%+v r=%+v", l, r)
	}
	for i := 0; i < 4; i++ {
		if data[i] > 5 {
			t.Fatalf("left element %d = %d > pivot", i, data[i])
		}
		if data[4+i] < 5 {
			t.Fatalf("right element %d = %d < pivot", i, data[4+i])
		}
	}
}

func TestMed3(t *testing.T) {
	cases := [][4]int{
		{1, 2, 3, 2}, {3, 2, 1, 2}, {2, 1, 3, 2}, {2, 3, 1, 2},
		{1, 1, 2, 1}, {2, 2, 1, 2}, {1, 2, 1, 1}, {5, 5, 5, 5},
	}
	for _, c := range cases {
		if got := med3(c[0], c[1], c[2]); got != c[3] {
			t.Fatalf("med3(%d,%d,%d) = %d, want %d", c[0], c[1], c[2], got, c[3])
		}
	}
}

func TestBestNp(t *testing.T) {
	B, mb := DefaultBlockSize, DefaultMinBlocksPerThread
	per := B * mb // elements required per thread
	cases := []struct {
		n, maxTeam, want int
	}{
		{per - 1, 64, 1},
		{2 * per, 64, 2},
		{4*per - 1, 64, 2},
		{4 * per, 64, 4},
		{64 * per, 64, 64},
		{1 << 30, 8, 8}, // capped by team size
		{100, 64, 1},    // tiny input
		{2 * per, 1, 1}, // single-thread scheduler
	}
	for _, c := range cases {
		if got := BestNp(c.n, B, mb, c.maxTeam); got != c.want {
			t.Fatalf("BestNp(%d, maxTeam=%d) = %d, want %d", c.n, c.maxTeam, got, c.want)
		}
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int32{}) || !IsSorted([]int32{1}) || !IsSorted([]int32{1, 1, 2}) {
		t.Fatal("IsSorted false negative")
	}
	if IsSorted([]int32{2, 1}) {
		t.Fatal("IsSorted false positive")
	}
}
