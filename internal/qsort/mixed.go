package qsort

import (
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/teamsync"
)

// This file implements the mixed-mode parallel Quicksort of the paper's
// Algorithm 11: a data-parallel partitioning step executed by a team of np
// threads (the block-neutralization scheme of Tsigas & Zhang, reference [18]
// of the paper, §5), after which the thread with local id 0 spawns the two
// subsequences as new tasks whose thread requirement is chosen by
// getBestNp. When a task's requirement reaches 1, it degenerates to the
// task-parallel quicksort of Algorithm 10.

// MMOptions are the tunable parameters of the mixed-mode quicksort (§5).
// Zero values select the paper's defaults.
type MMOptions struct {
	// Cutoff is the subsequence length below which the sequential STL-style
	// sort takes over (default 512).
	Cutoff int
	// BlockSize is the element count per partitioning block (default 4096).
	BlockSize int
	// MinBlocksPerThread controls getBestNp: a partitioning thread must have
	// at least this many blocks to work on (default 128).
	MinBlocksPerThread int
}

func (o MMOptions) withDefaults() MMOptions {
	if o.Cutoff < 2 {
		o.Cutoff = DefaultCutoff
	}
	if o.BlockSize < 1 {
		o.BlockSize = DefaultBlockSize
	}
	if o.MinBlocksPerThread < 1 {
		o.MinBlocksPerThread = DefaultMinBlocksPerThread
	}
	return o
}

// BestNp is the paper's getBestNp(n): the largest power of two np ≤ maxTeam
// such that each of the np threads has at least minBlocks blocks of the
// partitioning step to work on ("to achieve better balancing, we decided to
// only allow powers of two as the number of threads for a task"). Always ≥ 1.
func BestNp(n, blockSize, minBlocks, maxTeam int) int {
	np := 1
	per := blockSize * minBlocks
	for np*2 <= maxTeam && n >= 2*np*per {
		np *= 2
	}
	return np
}

// MixedMode sorts data with the mixed-mode parallel quicksort on the
// team-building scheduler (the tables' "MMPar" column). It blocks until the
// sort completes: the sort runs as its own one-shot task group, so
// concurrent sorts on the same scheduler do not wait on each other.
func MixedMode[T Ordered](s *core.Scheduler, data []T, opt MMOptions) {
	g := s.NewGroup()
	MixedModeGroup(g, data, opt)
	g.Wait()
}

// MixedModeGroup spawns the mixed-mode quicksort of data into the
// caller-supplied group g and returns immediately; data is sorted once
// g.Wait() observes the group's quiescence. All recursive subtasks
// (including fork-join fallbacks) inherit g.
func MixedModeGroup[T Ordered](g *core.Group, data []T, opt MMOptions) {
	if t := MixedModeRoot(g.Scheduler().MaxTeam(), data, opt); t != nil {
		g.Spawn(t)
	}
}

// MixedModeRoot returns the root task of the mixed-mode quicksort over
// data, for batched submission; maxTeam is the target scheduler's
// Scheduler.MaxTeam(). It returns nil when there is nothing to sort.
func MixedModeRoot[T Ordered](maxTeam int, data []T, opt MMOptions) core.Task {
	opt = opt.withDefaults()
	if len(data) < 2 {
		return nil
	}
	np := BestNp(len(data), opt.BlockSize, opt.MinBlocksPerThread, maxTeam)
	if np == 1 {
		// Algorithm 11 line 1: "if np = 1 then return qsort(data, n)".
		return ForkJoinRoot(data, opt.Cutoff)
	}
	// One fork-task pool serves every task-parallel fallback of this sort
	// tree, so the fork-join tails spawn without allocating.
	return newMMTask(data, np, opt, NewForkPool[T](opt.Cutoff))
}

// mmTask is one mixed-mode quicksort task: a data-parallel partitioning of
// its subsequence by a team of np threads, followed by two spawned subtasks.
type mmTask[T Ordered] struct {
	ps  *parState[T]
	np  int
	opt MMOptions
	fp  *ForkPool[T] // shared across the sort tree's fork-join fallbacks
}

func newMMTask[T Ordered](data []T, np int, opt MMOptions, fp *ForkPool[T]) *mmTask[T] {
	return &mmTask[T]{ps: newParState(data, np, opt.BlockSize), np: np, opt: opt, fp: fp}
}

func (t *mmTask[T]) Threads() int { return t.np }

func (t *mmTask[T]) Run(ctx *core.Ctx) {
	ps := t.ps
	ps.phase1()
	if ctx.LocalID() != 0 {
		// Algorithm 11: only the thread with local id 0 continues after the
		// partitioning step; the other team members become available for the
		// next task as soon as the coordinator hands one out.
		return
	}
	ps.fanin.WaitZero()
	split := ps.cleanup()
	data := ps.data
	if split == 0 || split == len(data) {
		// Degenerate pivot (can only happen with an extremal pivot value,
		// e.g. heavily duplicated input): the value-based parallel partition
		// cannot guarantee progress, so fall back to the task-parallel sort,
		// whose Hoare partition can.
		t.spawnFork(ctx, data)
		return
	}
	t.spawnPart(ctx, data[:split])
	t.spawnPart(ctx, data[split:])
}

// spawnPart spawns one partitioned subsequence with the thread requirement
// chosen by getBestNp (Algorithm 11 lines 6–7). The cancellation check sits
// here — on local id 0's single-member spawn path, never inside the
// collective phases — so a canceled sort stops growing its tree without
// desynchronizing the team's fan-in.
func (t *mmTask[T]) spawnPart(ctx *core.Ctx, part []T) {
	if len(part) < 2 || ctx.Canceled() {
		return
	}
	np := BestNp(len(part), t.opt.BlockSize, t.opt.MinBlocksPerThread,
		ctx.Scheduler().MaxTeam())
	if np == 1 {
		t.spawnFork(ctx, part)
		return
	}
	ctx.Spawn(newMMTask(part, np, t.opt, t.fp))
}

func (t *mmTask[T]) spawnFork(ctx *core.Ctx, part []T) {
	if ctx.Canceled() {
		return // cooperative cancellation: see spawnPart
	}
	t.fp.Spawn(ctx, part)
}

// parState is the shared state of one data-parallel partitioning step.
// The array is divided into nb full blocks of blockSize elements plus a
// trailing partial block handled by the sequential cleanup. Team threads
// acquire fresh blocks from the two ends (the par.Claimer end-pointer
// acquisition) and neutralize pairs of blocks; the cleanup (thread 0)
// pairs leftover blocks, compacts the at most np unfinished blocks per
// side next to the middle with whole-block content swaps, and finishes
// with a sequential partition of the remaining middle.
type parState[T Ordered] struct {
	data  []T
	pv    T
	block int
	nb    int

	claim   *par.Claimer // two-ended block acquisition
	neutral []bool       // per block; owner-written, read after fan-in
	fanin   *teamsync.Counter
}

func newParState[T Ordered](data []T, np, blockSize int) *parState[T] {
	n := len(data)
	ps := &parState[T]{
		data:  data,
		pv:    med3(data[0], data[n/2], data[n-1]),
		block: blockSize,
		nb:    n / blockSize,
		fanin: teamsync.NewCounter(np),
	}
	ps.claim = par.NewClaimer(ps.nb)
	ps.neutral = make([]bool, ps.nb)
	return ps
}

// phase1 is the parallel neutralization loop run by every team member:
// "Each thread takes one block from each side of the array to be sorted,
// and tries to neutralize blocks ... As soon as one of the blocks has been
// neutralized, the thread tries to acquire another block from the same side
// of the array, until we run out of free blocks" (§5).
func (ps *parState[T]) phase1() {
	defer ps.fanin.Done()
	data, pv, B := ps.data, ps.pv, ps.block
	var L, R *blockScan
	acquireL := func() {
		L = nil
		if i, ok := ps.claim.Left(); ok {
			L = &blockScan{lo: i * B, hi: (i + 1) * B, pos: i * B}
		}
	}
	acquireR := func() {
		R = nil
		if i, ok := ps.claim.Right(); ok {
			R = &blockScan{lo: i * B, hi: (i + 1) * B, pos: i * B}
		}
	}
	acquireL()
	acquireR()
	for L != nil && R != nil {
		neutralize(data, pv, L, R)
		if L.exhausted() {
			ps.neutral[L.lo/B] = true
			acquireL()
		}
		if R.exhausted() {
			ps.neutral[R.lo/B] = true
			acquireR()
		}
	}
	// At most one unfinished block per side remains non-neutral; the cleanup
	// phase collects it from the neutral bitmap.
}

// cleanup runs on the team's local id 0 after all threads have deposited
// (fan-in): it pairs leftover unfinished blocks, compacts the survivors next
// to the middle gap, sequentially partitions the middle and the trailing
// partial block, and returns the final split position.
func (ps *parState[T]) cleanup() int {
	data, pv, B, nb := ps.data, ps.pv, ps.block, ps.nb
	n := len(data)
	la := ps.claim.TakenLeft()
	ra := ps.claim.TakenRight()

	// Phase 2: pair unfinished left blocks with unfinished right blocks,
	// continuing neutralization sequentially (the paper replaces [18]'s
	// single-collector phase with a producer/consumer exchanger; with the
	// cleanup serialized on one thread, direct pairing is equivalent).
	var lrem, rrem []int
	for i := 0; i < la; i++ {
		if !ps.neutral[i] {
			lrem = append(lrem, i)
		}
	}
	for i := nb - ra; i < nb; i++ {
		if !ps.neutral[i] {
			rrem = append(rrem, i)
		}
	}
	li, ri := 0, 0
	var L, R *blockScan
	for li < len(lrem) && ri < len(rrem) {
		if L == nil {
			b := lrem[li]
			L = &blockScan{lo: b * B, hi: (b + 1) * B, pos: b * B}
		}
		if R == nil {
			b := rrem[ri]
			R = &blockScan{lo: b * B, hi: (b + 1) * B, pos: b * B}
		}
		neutralize(data, pv, L, R)
		if L.exhausted() {
			ps.neutral[lrem[li]] = true
			li++
			L = nil
		}
		if R.exhausted() {
			ps.neutral[rrem[ri]] = true
			ri++
			R = nil
		}
	}
	lrem = lrem[li:]
	rrem = rrem[ri:]

	// Phase 3a: compact the unfinished left blocks to the high end of the
	// left-acquired region by whole-block content swaps with neutral blocks,
	// so that blocks [0, leftBoundary) are all ≤ pivot.
	leftBoundary := la - len(lrem)
	var srcL, dstL []int
	for _, b := range lrem {
		if b < leftBoundary {
			srcL = append(srcL, b)
		}
	}
	for i := leftBoundary; i < la; i++ {
		if ps.neutral[i] {
			dstL = append(dstL, i)
		}
	}
	for k := range srcL {
		swapRanges(data, srcL[k]*B, dstL[k]*B, B)
	}

	// Phase 3b: symmetric compaction on the right: blocks
	// [rightBoundary, nb) are all ≥ pivot.
	rightBoundary := nb - ra + len(rrem)
	var srcR, dstR []int
	for _, b := range rrem {
		if b >= rightBoundary {
			srcR = append(srcR, b)
		}
	}
	for i := nb - ra; i < rightBoundary; i++ {
		if ps.neutral[i] {
			dstR = append(dstR, i)
		}
	}
	for k := range srcR {
		swapRanges(data, srcR[k]*B, dstR[k]*B, B)
	}

	// Phase 3c: sequential partition of the contiguous middle region.
	midLo, midHi := leftBoundary*B, rightBoundary*B
	m1 := midLo + PartitionByValue(data[midLo:midHi], pv)

	// Phase 3d: fold in the trailing partial block [nb·B, n). Its ≤-chunk is
	// exchanged with ≥-elements adjacent to the split, keeping the final
	// ≤/≥ regions contiguous.
	t0 := nb * B
	if t0 >= n {
		return m1
	}
	k := PartitionByValue(data[t0:], pv) // [t0, t0+k) ≤ pv, rest ≥ pv
	if k == 0 {
		return m1
	}
	g := t0 - m1 // ≥-elements between the split and the tail
	if g >= k {
		swapRanges(data, m1, t0, k)
		return m1 + k
	}
	// The ≥-gap is smaller than the ≤-chunk: swap the gap with the chunk's
	// tail end (no overlap since t0+k-g > t0 ⇔ k > g).
	if g > 0 {
		swapRanges(data, m1, t0+k-g, g)
	}
	return t0 + k - g
}
