// Package qsort implements every sorting algorithm of the paper's evaluation
// (§5): the sequential baselines (an introsort standing in for STL sort, and
// the handwritten reference quicksort), the task-parallel fork-join quicksort
// of Algorithm 10 for all three schedulers, and the mixed-mode parallel
// quicksort of Algorithm 11 with the block-based data-parallel partitioning
// step of Tsigas & Zhang on the team-building scheduler.
package qsort

// Ordered is the constraint for sortable element types (the paper sorts
// 4-byte integers; the algorithms are generic over all ordered types).
type Ordered interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64 | ~string
}

// Default tunables, taken from §5 of the paper.
const (
	// DefaultCutoff is the subsequence length below which the parallel sorts
	// switch to the sequential STL-style sort ("we decided to let all
	// subsequences with less than 512 elements be sorted by STL sort").
	DefaultCutoff = 512
	// DefaultBlockSize is the block length of the data-parallel partitioning
	// step ("we decided on a block-size of 4096").
	DefaultBlockSize = 4096
	// DefaultMinBlocksPerThread controls getBestNp: "each thread working on
	// parallel partitioning should at least have 128 blocks to work on".
	DefaultMinBlocksPerThread = 128
)

// IsSorted reports whether data is in non-decreasing order.
func IsSorted[T Ordered](data []T) bool {
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			return false
		}
	}
	return true
}

func med3[T Ordered](a, b, c T) T {
	if a < b {
		switch {
		case b < c:
			return b
		case a < c:
			return c
		default:
			return a
		}
	}
	switch {
	case a < c:
		return a
	case b < c:
		return c
	default:
		return b
	}
}
