package qsort

import "math/bits"

// Introsort sorts data with the introspective sort algorithm used by
// libstdc++'s std::sort: median-of-3 quicksort with a 2·⌊log2 n⌋ depth limit
// falling back to heapsort, leaving runs of at most sortThreshold elements
// for a final insertion-sort pass. It is the repository's stand-in for the
// paper's "best sequential implementation available (STL)" — the Seq/STL
// column of every table.
func Introsort[T Ordered](data []T) {
	n := len(data)
	if n < 2 {
		return
	}
	introLoop(data, 2*(bits.Len(uint(n))-1))
	finalInsertionSort(data)
}

// sortThreshold matches the _S_threshold = 16 of libstdc++.
const sortThreshold = 16

func introLoop[T Ordered](data []T, depth int) {
	for len(data) > sortThreshold {
		if depth == 0 {
			heapSort(data)
			return
		}
		depth--
		s := HoarePartition(data)
		// Recurse into the smaller side, loop on the larger: O(log n) stack.
		if s < len(data)-s {
			introLoop(data[:s], depth)
			data = data[s:]
		} else {
			introLoop(data[s:], depth)
			data = data[:s]
		}
	}
}

// finalInsertionSort sorts an array whose elements are all within
// sortThreshold positions of their final place (the post-introLoop state).
func finalInsertionSort[T Ordered](data []T) {
	for i := 1; i < len(data); i++ {
		v := data[i]
		j := i - 1
		for j >= 0 && data[j] > v {
			data[j+1] = data[j]
			j--
		}
		data[j+1] = v
	}
}

// InsertionSort sorts data by straight insertion; used directly for tiny
// inputs and in tests as a trivially correct reference.
func InsertionSort[T Ordered](data []T) {
	finalInsertionSort(data)
}

// heapSort is the depth-limit fallback of Introsort.
func heapSort[T Ordered](data []T) {
	n := len(data)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(data, i, n)
	}
	for i := n - 1; i > 0; i-- {
		data[0], data[i] = data[i], data[0]
		siftDown(data, 0, i)
	}
}

func siftDown[T Ordered](data []T, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && data[child+1] > data[child] {
			child++
		}
		if data[root] >= data[child] {
			return
		}
		data[root], data[child] = data[child], data[root]
		root = child
	}
}

// SequentialQuicksort is the handwritten reference quicksort of the tables'
// SeqQS column: plain recursive quicksort "that uses the same cutoff to
// switch to STL sort as the parallel implementations".
func SequentialQuicksort[T Ordered](data []T) {
	SequentialQuicksortCutoff(data, DefaultCutoff)
}

// SequentialQuicksortCutoff is SequentialQuicksort with an explicit cutoff.
func SequentialQuicksortCutoff[T Ordered](data []T, cutoff int) {
	if cutoff < 2 {
		cutoff = 2
	}
	for len(data) > cutoff {
		s := HoarePartition(data)
		if s < len(data)-s {
			SequentialQuicksortCutoff(data[:s], cutoff)
			data = data[s:]
		} else {
			SequentialQuicksortCutoff(data[s:], cutoff)
			data = data[:s]
		}
	}
	Introsort(data)
}
