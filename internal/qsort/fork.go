package qsort

import (
	"sync"

	"repro/internal/cilk"
	"repro/internal/classic"
	"repro/internal/core"
)

// This file implements the task-parallel fork-join Quicksort of the paper's
// Algorithm 10 on each of the three schedulers: the team-building scheduler
// (the tables' "Fork" column), the classic randomized work-stealer
// ("Randfork") and the Cilk-style scheduler ("Cilk"). Each partitioning step
// spawns the left subsequence as a new task and continues on the right
// inline (equivalent to the paper's async/async/sync under depth-first
// help-first scheduling, with one task allocation saved per step);
// subsequences below the cutoff are sorted with the sequential STL-style
// sort, exactly as in §5.

// ForkPool recycles the spawn wrappers of the task-parallel quicksort: each
// partitioning step spawns the left subsequence as a forkTask drawn from the
// pool, and the task returns itself to the pool as it starts running (its
// fields are copied out first; the scheduler never touches a task value
// after invoking Run). Together with the scheduler's node free list this
// makes the steady-state fork-join recursion allocation-free — the paper's
// r = 1 "ordinary work-stealing" regime with no per-spawn garbage at all.
//
// One pool serves one sort tree (or several: the mixed-mode quicksort and
// the samplesort thread a single pool through their whole recursion), so
// the pool itself costs one allocation per root, amortized over the
// Θ(n/cutoff) spawns below it.
type ForkPool[T Ordered] struct {
	cutoff int
	pool   sync.Pool
}

// NewForkPool returns a pool of fork-join quicksort tasks with the given
// sequential cutoff (values < 2 select DefaultCutoff).
func NewForkPool[T Ordered](cutoff int) *ForkPool[T] {
	if cutoff < 2 {
		cutoff = DefaultCutoff
	}
	return &ForkPool[T]{cutoff: cutoff}
}

// forkTask is one pooled spawn of the task-parallel quicksort recursion.
type forkTask[T Ordered] struct {
	fp   *ForkPool[T]
	data []T
}

func (t *forkTask[T]) Threads() int { return 1 }

func (t *forkTask[T]) Run(ctx *core.Ctx) {
	fp, data := t.fp, t.data
	t.data = nil
	fp.pool.Put(t)
	fp.run(ctx, data)
}

// task wraps data in a recycled (or new) forkTask.
func (fp *ForkPool[T]) task(data []T) *forkTask[T] {
	t, _ := fp.pool.Get().(*forkTask[T])
	if t == nil {
		t = &forkTask[T]{fp: fp}
	}
	t.data = data
	return t
}

// Spawn spawns the task-parallel quicksort of data on ctx as a pooled task.
func (fp *ForkPool[T]) Spawn(ctx *core.Ctx, data []T) {
	ctx.Spawn(fp.task(data))
}

// Run runs the quicksort recursion over data from inside a running task,
// spawning the left subsequences as pooled tasks (see ForkCtx).
func (fp *ForkPool[T]) Run(ctx *core.Ctx, data []T) {
	fp.run(ctx, data)
}

func (fp *ForkPool[T]) run(ctx *core.Ctx, data []T) {
	cutoff := fp.cutoff
	for len(data) > cutoff {
		if ctx.Canceled() {
			// Cooperative cancellation: stop partitioning and spawning; the
			// abandoned range stays unsorted (its client gave up on it).
			return
		}
		s := HoarePartition(data)
		left := data[:s]
		data = data[s:]
		ctx.Spawn(fp.task(left))
	}
	Introsort(data)
}

// ForkJoinCore sorts data with the task-parallel quicksort on the
// team-building scheduler; all tasks have thread requirement 1, so the
// scheduler degenerates to deterministic work-stealing (§3.1). It blocks
// until the sort completes: the sort runs as its own one-shot task group,
// so concurrent sorts on the same scheduler do not wait on each other.
func ForkJoinCore[T Ordered](s *core.Scheduler, data []T, cutoff int) {
	g := s.NewGroup()
	ForkJoinGroup(g, data, cutoff)
	g.Wait()
}

// ForkJoinGroup spawns the task-parallel quicksort of data into the
// caller-supplied group g and returns immediately; data is sorted once
// g.Wait() observes the group's quiescence. This is the composable form:
// a client may spawn several sorts (and any other tasks) into one group
// and join them all with a single Wait.
func ForkJoinGroup[T Ordered](g *core.Group, data []T, cutoff int) {
	if t := ForkJoinRoot(data, cutoff); t != nil {
		g.Spawn(t)
	}
}

// ForkJoinRoot returns the root task of the task-parallel quicksort over
// data, for batched submission (Group.SpawnBatch amortizes one admission-
// lock acquisition over many such roots). It returns nil when there is
// nothing to sort (len(data) < 2). The root carries its own ForkPool, so
// the recursion below it spawns without allocating.
func ForkJoinRoot[T Ordered](data []T, cutoff int) core.Task {
	if len(data) < 2 {
		return nil
	}
	return NewForkPool[T](cutoff).task(data)
}

// ForkCtx runs the task-parallel quicksort of Algorithm 10 from inside a
// running task on the team-building scheduler: each partitioning step spawns
// the left subsequence on ctx and continues on the right inline. It returns
// once the caller's own share is sorted; the spawned subtasks complete
// independently, so callers needing the whole range sorted must wait for
// scheduler quiescence (as Scheduler.Run does). This is how mixed-mode
// algorithms hand subsequences to the task-parallel sorter without blocking
// a worker; callers spawning many such ranges should create one ForkPool
// and use its Run/Spawn instead, sharing the wrapper pool across ranges.
func ForkCtx[T Ordered](ctx *core.Ctx, data []T, cutoff int) {
	NewForkPool[T](cutoff).run(ctx, data)
}

// ForkJoinClassic sorts data with the task-parallel quicksort on the classic
// randomized work-stealer (the "Randfork" column). It blocks until done.
func ForkJoinClassic[T Ordered](s *classic.Scheduler, data []T, cutoff int) {
	if cutoff < 2 {
		cutoff = DefaultCutoff
	}
	if len(data) < 2 {
		return
	}
	s.Run(classic.Func(func(ctx *classic.Ctx) { forkClassic(ctx, data, cutoff) }))
}

func forkClassic[T Ordered](ctx *classic.Ctx, data []T, cutoff int) {
	for len(data) > cutoff {
		s := HoarePartition(data)
		left := data[:s]
		data = data[s:]
		ctx.Spawn(classic.Func(func(c *classic.Ctx) { forkClassic(c, left, cutoff) }))
	}
	Introsort(data)
}

// ForkJoinCilk sorts data with the handwritten task-parallel quicksort on
// the Cilk-style scheduler (the "Cilk" column: "a handwritten example
// following the same pattern as the other implementations, including the
// cutoff"). It blocks until done.
func ForkJoinCilk[T Ordered](s *cilk.Scheduler, data []T, cutoff int) {
	if cutoff < 2 {
		cutoff = DefaultCutoff
	}
	if len(data) < 2 {
		return
	}
	s.Run(cilk.Func(func(ctx *cilk.Ctx) { forkCilk(ctx, data, cutoff) }))
}

func forkCilk[T Ordered](ctx *cilk.Ctx, data []T, cutoff int) {
	for len(data) > cutoff {
		s := HoarePartition(data)
		left := data[:s]
		data = data[s:]
		ctx.Spawn(cilk.Func(func(c *cilk.Ctx) { forkCilk(c, left, cutoff) }))
	}
	Introsort(data)
}

// SampleCilk is the "Cilk sample" column: the sample-pivot quicksort variant
// shipped as the Cilk++ example program. It differs from the handwritten
// version by choosing the pivot as the median of a larger sample (which
// costs a little per step but guards against bad pivots) and by spawning
// both subsequences. It blocks until done.
func SampleCilk[T Ordered](s *cilk.Scheduler, data []T, cutoff int) {
	if cutoff < 2 {
		cutoff = DefaultCutoff
	}
	if len(data) < 2 {
		return
	}
	s.Run(cilk.Func(func(ctx *cilk.Ctx) { sampleCilk(ctx, data, cutoff) }))
}

const sampleSize = 15

func sampleCilk[T Ordered](ctx *cilk.Ctx, data []T, cutoff int) {
	if len(data) <= cutoff {
		Introsort(data)
		return
	}
	s := samplePartition(data)
	left, right := data[:s], data[s:]
	ctx.Spawn(cilk.Func(func(c *cilk.Ctx) { sampleCilk(c, left, cutoff) }))
	sampleCilk(ctx, right, cutoff)
}

// samplePartition partitions around the median of sampleSize evenly spaced
// elements, falling back to HoarePartition when the sampled pivot is
// degenerate (split at 0 or n).
func samplePartition[T Ordered](data []T) int {
	n := len(data)
	if n < 4*sampleSize {
		return HoarePartition(data)
	}
	var sample [sampleSize]T
	step := n / sampleSize
	for i := 0; i < sampleSize; i++ {
		sample[i] = data[i*step]
	}
	InsertionSort(sample[:])
	pv := sample[sampleSize/2]
	s := PartitionByValue(data, pv)
	if s == 0 || s == n {
		return HoarePartition(data)
	}
	return s
}
