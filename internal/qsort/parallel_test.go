package qsort

import (
	"testing"

	"repro/internal/cilk"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/dist"
)

func coreSched(t *testing.T, p int) *core.Scheduler {
	t.Helper()
	s := core.New(core.Options{P: p})
	t.Cleanup(s.Shutdown)
	return s
}

func TestForkJoinCore(t *testing.T) {
	s := coreSched(t, 8)
	for name, in := range testInputs() {
		data := append([]int32(nil), in...)
		ForkJoinCore(s, data, DefaultCutoff)
		checkSorted(t, name, data, in)
	}
}

func TestForkJoinCoreSmallCutoff(t *testing.T) {
	// A tiny cutoff exercises deep task recursion and heavy stealing.
	s := coreSched(t, 8)
	in := dist.Generate(dist.Random, 100000, 11)
	data := append([]int32(nil), in...)
	ForkJoinCore(s, data, 16)
	checkSorted(t, "small-cutoff", data, in)
}

func TestForkJoinClassic(t *testing.T) {
	s := classic.New(classic.Options{P: 8})
	t.Cleanup(s.Shutdown)
	for name, in := range testInputs() {
		data := append([]int32(nil), in...)
		ForkJoinClassic(s, data, DefaultCutoff)
		checkSorted(t, name, data, in)
	}
}

func TestForkJoinCilk(t *testing.T) {
	s := cilk.New(cilk.Options{P: 8})
	t.Cleanup(s.Shutdown)
	for name, in := range testInputs() {
		data := append([]int32(nil), in...)
		ForkJoinCilk(s, data, DefaultCutoff)
		checkSorted(t, name, data, in)
	}
}

func TestSampleCilk(t *testing.T) {
	s := cilk.New(cilk.Options{P: 8})
	t.Cleanup(s.Shutdown)
	for name, in := range testInputs() {
		data := append([]int32(nil), in...)
		SampleCilk(s, data, DefaultCutoff)
		checkSorted(t, name, data, in)
	}
}

func TestMixedMode(t *testing.T) {
	s := coreSched(t, 8)
	// Force team formation with a small block size and min-blocks so even
	// modest inputs use multi-thread partitioning.
	opt := MMOptions{Cutoff: 512, BlockSize: 256, MinBlocksPerThread: 4}
	for name, in := range testInputs() {
		data := append([]int32(nil), in...)
		MixedMode(s, data, opt)
		checkSorted(t, name, data, in)
	}
	if s.Stats().TeamsFormed == 0 {
		t.Fatal("mixed-mode sort never formed a team")
	}
}

func TestMixedModeDefaults(t *testing.T) {
	s := coreSched(t, 8)
	in := dist.Generate(dist.Random, 3_000_000, 13)
	data := append([]int32(nil), in...)
	MixedMode(s, data, MMOptions{})
	if !IsSorted(data) {
		t.Fatal("not sorted")
	}
	// 3M elements / 4096 / 128 ⇒ getBestNp should pick np > 1 at the top.
	if s.Stats().TeamTasksRun == 0 {
		t.Fatal("default options on 3M elements should use a team partition")
	}
}

func TestMixedModeSizesAndTails(t *testing.T) {
	s := coreSched(t, 4)
	opt := MMOptions{Cutoff: 64, BlockSize: 128, MinBlocksPerThread: 2}
	// Sizes hitting exact block multiples, off-by-one tails, and sub-block.
	for _, n := range []int{1, 2, 100, 127, 128, 129, 1024, 1025, 4095, 4096, 4097, 65536, 65537} {
		in := dist.Generate(dist.Random, n, uint64(n))
		data := append([]int32(nil), in...)
		MixedMode(s, data, opt)
		checkSorted(t, "size", data, in)
	}
}

func TestMixedModeAllDistributions(t *testing.T) {
	s := coreSched(t, 8)
	opt := MMOptions{Cutoff: 512, BlockSize: 512, MinBlocksPerThread: 8}
	for _, k := range dist.Kinds {
		in := dist.Generate(k, 500_000, 17)
		data := append([]int32(nil), in...)
		MixedMode(s, data, opt)
		checkSorted(t, k.String(), data, in)
	}
}

func TestMixedModeNonPow2P(t *testing.T) {
	s := coreSched(t, 6) // MaxTeam = 4
	opt := MMOptions{Cutoff: 128, BlockSize: 128, MinBlocksPerThread: 2}
	in := dist.Generate(dist.Random, 200_000, 23)
	data := append([]int32(nil), in...)
	MixedMode(s, data, opt)
	checkSorted(t, "p6", data, in)
}

func TestMixedModeP1(t *testing.T) {
	s := coreSched(t, 1)
	in := dist.Generate(dist.Random, 10_000, 29)
	data := append([]int32(nil), in...)
	MixedMode(s, data, MMOptions{})
	checkSorted(t, "p1", data, in)
}

func TestMixedModeRandomizedScheduler(t *testing.T) {
	s := core.New(core.Options{P: 8, Randomized: true, Seed: 5})
	t.Cleanup(s.Shutdown)
	opt := MMOptions{Cutoff: 256, BlockSize: 256, MinBlocksPerThread: 4}
	in := dist.Generate(dist.Staggered, 300_000, 31)
	data := append([]int32(nil), in...)
	MixedMode(s, data, opt)
	checkSorted(t, "randomized", data, in)
}

// TestParallelPartitionDirect exercises parState in isolation on a single
// team-free "team" of one, validating the cleanup paths (remnants, tails,
// compaction) deterministically.
func TestParallelPartitionDirect(t *testing.T) {
	for _, n := range []int{1, 5, 127, 128, 300, 1000, 4096, 10000} {
		for _, b := range []int{16, 128, 4096} {
			in := dist.Generate(dist.Random, n, uint64(n*b))
			data := append([]int32(nil), in...)
			ps := newParState(data, 1, b)
			ps.phase1()
			ps.fanin.WaitZero()
			split := ps.cleanup()
			if split < 0 || split > n {
				t.Fatalf("n=%d b=%d: split=%d out of range", n, b, split)
			}
			for i := 0; i < split; i++ {
				if data[i] > ps.pv {
					t.Fatalf("n=%d b=%d: data[%d]=%d > pivot %d", n, b, i, data[i], ps.pv)
				}
			}
			for i := split; i < n; i++ {
				if data[i] < ps.pv {
					t.Fatalf("n=%d b=%d: data[%d]=%d < pivot %d", n, b, i, data[i], ps.pv)
				}
			}
		}
	}
}

func TestParallelPartitionPreservesMultiset(t *testing.T) {
	in := dist.Generate(dist.Gauss, 50000, 41)
	data := append([]int32(nil), in...)
	ps := newParState(data, 1, 512)
	ps.phase1()
	ps.fanin.WaitZero()
	ps.cleanup()
	counts := map[int32]int{}
	for _, v := range in {
		counts[v]++
	}
	for _, v := range data {
		counts[v]--
	}
	for v, c := range counts {
		if c != 0 {
			t.Fatalf("value %d count off by %d", v, c)
		}
	}
}
