package qsort

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
)

// Micro-benchmarks of the sorting kernels; the table-level benchmarks live
// in the repository root (bench_test.go).

func benchSizes() []int { return []int{1 << 16, 1 << 20} }

func BenchmarkIntrosort(b *testing.B) {
	for _, n := range benchSizes() {
		in := dist.Generate(dist.Random, n, 42)
		buf := make([]int32, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(4 * n))
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				Introsort(buf)
			}
		})
	}
}

func BenchmarkSequentialQuicksort(b *testing.B) {
	for _, n := range benchSizes() {
		in := dist.Generate(dist.Random, n, 42)
		buf := make([]int32, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.SetBytes(int64(4 * n))
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				SequentialQuicksort(buf)
			}
		})
	}
}

func BenchmarkHoarePartition(b *testing.B) {
	const n = 1 << 20
	in := dist.Generate(dist.Random, n, 42)
	buf := make([]int32, n)
	b.SetBytes(4 * n)
	for i := 0; i < b.N; i++ {
		copy(buf, in)
		HoarePartition(buf)
	}
}

// BenchmarkParallelPartition measures the data-parallel partitioning step in
// isolation across team sizes — the kernel behind the MMPar advantage.
func BenchmarkParallelPartition(b *testing.B) {
	const n = 1 << 22
	in := dist.Generate(dist.Random, n, 42)
	for _, np := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("np=%d", np), func(b *testing.B) {
			s := core.New(core.Options{P: np})
			defer s.Shutdown()
			buf := make([]int32, n)
			b.SetBytes(4 * n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(buf, in)
				b.StartTimer()
				ps := newParState(buf, np, DefaultBlockSize)
				s.Run(core.Func(np, func(ctx *core.Ctx) {
					ps.phase1()
					if ctx.LocalID() == 0 {
						ps.fanin.WaitZero()
						ps.cleanup()
					}
				}))
			}
		})
	}
}

// BenchmarkMixedModeByDistribution mirrors one table row group per
// distribution at a bench-friendly size.
func BenchmarkMixedModeByDistribution(b *testing.B) {
	const n = 1 << 21
	s := core.New(core.Options{P: 8})
	defer s.Shutdown()
	opt := MMOptions{BlockSize: 1024, MinBlocksPerThread: 16}
	for _, k := range dist.Kinds {
		in := dist.Generate(k, n, 42)
		buf := make([]int32, n)
		b.Run(k.String(), func(b *testing.B) {
			b.SetBytes(4 * n)
			for i := 0; i < b.N; i++ {
				copy(buf, in)
				MixedMode(s, buf, opt)
			}
		})
	}
}

func BenchmarkForkJoinByScheduler(b *testing.B) {
	const n = 1 << 21
	in := dist.Generate(dist.Random, n, 42)
	b.Run("core", func(b *testing.B) {
		s := core.New(core.Options{P: 8})
		defer s.Shutdown()
		buf := make([]int32, n)
		b.SetBytes(4 * n)
		for i := 0; i < b.N; i++ {
			copy(buf, in)
			ForkJoinCore(s, buf, DefaultCutoff)
		}
	})
}
