package qsort

// HoarePartition partitions data around the median of its first, middle and
// last elements using Hoare's two-pointer scheme and returns the split point
// s with 0 < s < len(data): every element of data[:s] is ≤ every element of
// data[s:]. The strict bounds guarantee progress for the recursive sorts
// even on constant inputs. len(data) must be ≥ 2.
func HoarePartition[T Ordered](data []T) int {
	n := len(data)
	if n == 2 {
		// The med3 argument positions coincide for n = 2; handle directly
		// (the strict-bounds guarantee needs three distinct sample indices).
		if data[1] < data[0] {
			data[0], data[1] = data[1], data[0]
		}
		return 1
	}
	pv := med3(data[0], data[n/2], data[n-1])
	i, j := -1, n
	for {
		for {
			i++
			if data[i] >= pv {
				break
			}
		}
		for {
			j--
			if data[j] <= pv {
				break
			}
		}
		if i >= j {
			return j + 1
		}
		data[i], data[j] = data[j], data[i]
	}
}

// PartitionByValue partitions data around the explicit pivot value pv,
// returning s such that data[:s] ≤ pv and data[s:] ≥ pv. Unlike
// HoarePartition, s may be 0 or len(data) when pv is extremal; callers must
// handle the degenerate split. This is the sequential kernel used by the
// data-parallel partitioning step for the middle region.
func PartitionByValue[T Ordered](data []T, pv T) int {
	i, j := 0, len(data)-1
	for {
		for i <= j && data[i] <= pv {
			i++
		}
		for i <= j && data[j] >= pv {
			j--
		}
		if i >= j {
			return i
		}
		data[i], data[j] = data[j], data[i]
		i++
		j--
	}
}

// blockScan tracks the neutralization progress of one block: the half-open
// element range [lo, hi) with [lo, pos) already verified/neutralized.
type blockScan struct {
	lo, hi, pos int
}

func (b *blockScan) exhausted() bool { return b.pos >= b.hi }

// neutralize runs the Tsigas–Zhang neutralization loop on a left and a right
// block: left elements ≤ pv stay, right elements ≥ pv stay, and a bad pair
// (left > pv, right < pv) is swapped. It advances both scans until at least
// one block is exhausted (neutralized): an exhausted left block contains only
// elements ≤ pv, an exhausted right block only elements ≥ pv.
func neutralize[T Ordered](data []T, pv T, l, r *blockScan) {
	for {
		for l.pos < l.hi && data[l.pos] <= pv {
			l.pos++
		}
		for r.pos < r.hi && data[r.pos] >= pv {
			r.pos++
		}
		if l.pos >= l.hi || r.pos >= r.hi {
			return
		}
		data[l.pos], data[r.pos] = data[r.pos], data[l.pos]
		l.pos++
		r.pos++
	}
}

// swapRanges exchanges data[a:a+k] and data[b:b+k]; the ranges must not
// overlap.
func swapRanges[T Ordered](data []T, a, b, k int) {
	for i := 0; i < k; i++ {
		data[a+i], data[b+i] = data[b+i], data[a+i]
	}
}
