package query

import (
	"repro/internal/core"
	"repro/internal/par"
)

// Filterer is the shared state of a team filter: the compaction state of
// par.Pack. Allocate once per task with NewFilterer and share via the task
// closure.
type Filterer[T any] struct {
	p *par.Packer[T]
}

// NewFilterer returns filter state for teams of up to np members.
func NewFilterer[T any](np int) *Filterer[T] {
	return &Filterer[T]{p: par.NewPacker[T](np)}
}

// Filter is a collective stable filter: the elements of src satisfying pred
// are copied into dst in their original order, and the surviving count is
// returned to every member. dst must not alias src and must have room for
// every survivor; pred must be pure (it is evaluated twice per element). A
// team of size 1 runs the sequential oracle.
//
//repro:barrier delegates its barrier obligation to the annotated par Pack
func (f *Filterer[T]) Filter(ctx *core.Ctx, src, dst []T, pred func(T) bool) int {
	return f.p.Pack(ctx, src, dst, func(_ int, v T) bool { return pred(v) })
}

// SeqFilter is the sequential oracle of Filter.
func SeqFilter[T any](src, dst []T, pred func(T) bool) int {
	return par.SeqPack(src, dst, func(_ int, v T) bool { return pred(v) })
}

// Filter returns a team task of np members stably filtering src into dst;
// the surviving count is stored into *outN when non-nil. dst must not alias
// src.
func Filter[T any](np int, src, dst []T, pred func(T) bool, outN *int) core.Task {
	return par.Pack(np, src, dst, func(_ int, v T) bool { return pred(v) }, outN)
}
