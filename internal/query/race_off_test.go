//go:build !race

package query_test

// raceEnabled reports that this test binary runs under the race detector.
const raceEnabled = false
