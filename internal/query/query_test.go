package query_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/qsort"
	"repro/internal/query"
	"repro/internal/ssort"
)

// ssortOptions shrinks the samplesort quotas so TestSortJoin's 10k-element
// inputs still exercise team partitioning and recursive bucket tasks.
func ssortOptions() ssort.Options {
	return ssort.Options{Cutoff: 64, MinPerThread: 512}
}

// The property suite checks every operator against its sequential oracle
// across all registered input distributions and team sizes {1, 2, 3, 7, P}
// (1 = oracle path, powers of two = full teams, 3 and 7 = Refinement 2's
// rounded-up teams with surplus members), plus the empty-chunk edge sizes.

const propN = 10_007 // odd, so chunk boundaries never align with anything

const nb = 37 // prime bucket count: every chunk split straddles buckets

func teamSizes(s *core.Scheduler) []int {
	return []int{1, 2, 3, 7, s.MaxTeam()}
}

func propSched(t testing.TB) *core.Scheduler {
	t.Helper()
	s := core.New(core.Options{P: 8})
	t.Cleanup(s.Shutdown)
	return s
}

// forEachInput runs f on one input of every registered distribution.
func forEachInput(t *testing.T, f func(t *testing.T, kind dist.Kind, in []int32)) {
	t.Helper()
	for _, kind := range dist.Kinds {
		in := dist.Generate(kind, propN, 7)
		t.Run(kind.String(), func(t *testing.T) { f(t, kind, in) })
	}
}

func keyOf(v int32) int           { return int(uint32(v) % nb) }
func predOf(v int32) bool         { return v%3 == 0 }
func lift(a int64, v int32) int64 { return a + int64(v) }
func comb(a, b int64) int64       { return a + b }

func TestFilterMatchesOracle(t *testing.T) {
	s := propSched(t)
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		wantDst := make([]int32, len(in))
		wantN := query.SeqFilter(in, wantDst, predOf)
		for _, np := range teamSizes(s) {
			dst := make([]int32, len(in))
			var n int
			s.Run(query.Filter(np, in, dst, predOf, &n))
			if n != wantN {
				t.Fatalf("np=%d: filter count = %d, want %d", np, n, wantN)
			}
			checkSlice(t, "filter", np, dst[:n], wantDst[:wantN])
		}
	})
}

func TestGroupByMatchesOracle(t *testing.T) {
	s := propSched(t)
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		wantGrouped := make([]int32, len(in))
		wantStarts := query.SeqGroupBy(in, wantGrouped, nb, keyOf)
		for _, np := range teamSizes(s) {
			grouped := make([]int32, len(in))
			starts := make([]int, nb+1)
			s.Run(query.GroupBy(np, in, grouped, nb, keyOf, starts))
			checkSlice(t, "starts", np, starts, wantStarts)
			// The scatter is stable, so the grouped slice is deterministic:
			// exact equality with the oracle, not just same-bucket-contents.
			checkSlice(t, "grouped", np, grouped, wantGrouped)
		}
	})
}

func TestAggregateMatchesOracle(t *testing.T) {
	s := propSched(t)
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		want := query.SeqAggregate(in, nb, int64(0), lift, keyOf)
		for _, np := range teamSizes(s) {
			got := make([]int64, nb)
			s.Run(query.Aggregate(np, in, nb, keyOf, 0, lift, comb, got))
			checkSlice(t, "aggregate", np, got, want)
		}
	})
}

// TestAggregateMinMonoid drives Aggregate with a non-sum monoid (min with
// +inf identity) to pin that nothing silently assumes addition.
func TestAggregateMinMonoid(t *testing.T) {
	s := propSched(t)
	const inf = int64(1) << 62
	minLift := func(a int64, v int32) int64 {
		if int64(v) < a {
			return int64(v)
		}
		return a
	}
	minComb := func(a, b int64) int64 {
		if a < b {
			return a
		}
		return b
	}
	in := dist.Generate(dist.Staggered, propN, 11)
	want := query.SeqAggregate(in, nb, inf, minLift, keyOf)
	for _, np := range teamSizes(s) {
		got := make([]int64, nb)
		s.Run(query.Aggregate(np, in, nb, keyOf, inf, minLift, minComb, got))
		checkSlice(t, "aggregate-min", np, got, want)
	}
}

func TestTopKMatchesOracle(t *testing.T) {
	s := propSched(t)
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		for _, k := range []int{0, 1, 10, 128, propN, propN + 5} {
			want := make([]int32, k)
			want = want[:query.SeqTopK(in, want, k)]
			for _, np := range teamSizes(s) {
				dst := make([]int32, k)
				var n int
				s.Run(query.TopK(np, in, dst, k, &n))
				if n != len(want) {
					t.Fatalf("np=%d k=%d: topk count = %d, want %d", np, k, n, len(want))
				}
				checkSlice(t, "topk", np, dst[:n], want)
			}
		}
	})
}

func TestMergeJoinMatchesOracle(t *testing.T) {
	s := propSched(t)
	b := dist.Generate(dist.RandDup, propN/2, 13)
	qsort.Introsort(b)
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		a := append([]int32(nil), in...)
		qsort.Introsort(a)
		max := len(a)
		if len(b) < max {
			max = len(b)
		}
		want := make([]query.JoinRun[int32], max)
		want = want[:query.SeqMergeJoin(a, b, want)]
		for _, np := range teamSizes(s) {
			out := make([]query.JoinRun[int32], max)
			var n int
			s.Run(query.MergeJoin(np, a, b, out, &n))
			if n != len(want) {
				t.Fatalf("np=%d: join runs = %d, want %d", np, n, len(want))
			}
			checkSlice(t, "join", np, out[:n], want)
		}
	})
}

// TestMergeJoinSelfZero joins the all-equal input with itself: one run
// covering both sides entirely — the case where materialized pairs would be
// n² and run output must stay size 1.
func TestMergeJoinSelfZero(t *testing.T) {
	s := propSched(t)
	a := dist.Generate(dist.Zero, propN, 7)
	out := make([]query.JoinRun[int32], 1)
	for _, np := range teamSizes(s) {
		var n int
		s.Run(query.MergeJoin(np, a, a, out, &n))
		if n != 1 {
			t.Fatalf("np=%d: self-join of constant input gave %d runs, want 1", np, n)
		}
		r := out[0]
		if r.Key != a[0] || r.ALo != 0 || r.AHi != propN || r.BLo != 0 || r.BHi != propN {
			t.Fatalf("np=%d: run = %+v", np, r)
		}
		if r.Pairs() != propN*propN {
			t.Fatalf("np=%d: pairs = %d", np, r.Pairs())
		}
	}
}

// TestSortJoin drives the staged composition: unsorted inputs, samplesort
// roots, then the team join.
func TestSortJoin(t *testing.T) {
	s := propSched(t)
	in1 := dist.Generate(dist.Staggered, propN, 3)
	in2 := dist.Generate(dist.RandDup, propN-511, 5)

	wantA := append([]int32(nil), in1...)
	wantB := append([]int32(nil), in2...)
	qsort.Introsort(wantA)
	qsort.Introsort(wantB)
	want := make([]query.JoinRun[int32], len(wantB))
	want = want[:query.SeqMergeJoin(wantA, wantB, want)]

	a := append([]int32(nil), in1...)
	b := append([]int32(nil), in2...)
	out := make([]query.JoinRun[int32], len(b))
	g := s.NewGroup()
	n := query.SortJoin(g, s.MaxTeam(), a, b, out, ssortOptions())
	if n != len(want) {
		t.Fatalf("sortjoin runs = %d, want %d", n, len(want))
	}
	checkSlice(t, "sortjoin", s.MaxTeam(), out[:n], want)
}

// TestEmptyAndTinyInputs pins the edge cases where chunks are empty: more
// team members than elements, single elements, and zero elements.
func TestEmptyAndTinyInputs(t *testing.T) {
	s := propSched(t)
	for _, n := range []int{0, 1, 2, 5} {
		in := dist.Generate(dist.RandDup, n, 3)
		srt := append([]int32(nil), in...)
		qsort.Introsort(srt)
		for _, np := range teamSizes(s) {
			dst := make([]int32, n)
			var cnt int
			s.Run(query.Filter(np, in, dst, predOf, &cnt))
			wantDst := make([]int32, n)
			wantN := query.SeqFilter(in, wantDst, predOf)
			if cnt != wantN {
				t.Fatalf("n=%d np=%d: filter count %d, want %d", n, np, cnt, wantN)
			}

			grouped := make([]int32, n)
			starts := make([]int, nb+1)
			s.Run(query.GroupBy(np, in, grouped, nb, keyOf, starts))
			wantGrouped := make([]int32, n)
			checkSlice(t, "tiny-starts", np, starts, query.SeqGroupBy(in, wantGrouped, nb, keyOf))

			agg := make([]int64, nb)
			s.Run(query.Aggregate(np, in, nb, keyOf, 0, lift, comb, agg))
			checkSlice(t, "tiny-agg", np, agg, query.SeqAggregate(in, nb, int64(0), lift, keyOf))

			top := make([]int32, 3)
			var topN int
			s.Run(query.TopK(np, in, top, 3, &topN))
			wantTop := make([]int32, 3)
			wantTop = wantTop[:query.SeqTopK(in, wantTop, 3)]
			if topN != len(wantTop) {
				t.Fatalf("n=%d np=%d: topk count %d, want %d", n, np, topN, len(wantTop))
			}
			checkSlice(t, "tiny-topk", np, top[:topN], wantTop)

			out := make([]query.JoinRun[int32], n+1)
			var jn int
			s.Run(query.MergeJoin(np, srt, srt, out, &jn))
			wantOut := make([]query.JoinRun[int32], n+1)
			if want := query.SeqMergeJoin(srt, srt, wantOut); jn != want {
				t.Fatalf("n=%d np=%d: join runs %d, want %d", n, np, jn, want)
			}
		}
	}
}

// TestGroupByStability checks that elements of one bucket keep their source
// order — the property that makes team GroupBy deterministic.
func TestGroupByStability(t *testing.T) {
	s := propSched(t)
	type rec struct{ key, seq int32 }
	n := 5000
	src := make([]rec, n)
	keys := dist.Generate(dist.RandDup, n, 3)
	for i := range src {
		src[i] = rec{key: keys[i], seq: int32(i)}
	}
	key := func(r rec) int { return int(uint32(r.key) % nb) }
	for _, np := range teamSizes(s) {
		grouped := make([]rec, n)
		starts := make([]int, nb+1)
		s.Run(query.GroupBy(np, src, grouped, nb, key, starts))
		for b := 0; b < nb; b++ {
			for i := starts[b] + 1; i < starts[b+1]; i++ {
				if grouped[i].seq <= grouped[i-1].seq {
					t.Fatalf("np=%d: bucket %d not stable at %d: seq %d after %d",
						np, b, i, grouped[i].seq, grouped[i-1].seq)
				}
				if key(grouped[i]) != b {
					t.Fatalf("np=%d: element of bucket %d landed in bucket range %d",
						np, key(grouped[i]), b)
				}
			}
		}
	}
}

// TestCollectiveReuse drives one team task through many consecutive
// collective operator calls on the same state objects — the in-team form
// every operator documents, and the reuse pattern Plan depends on.
func TestCollectiveReuse(t *testing.T) {
	s := propSched(t)
	np := s.MaxTeam()
	in := dist.Generate(dist.Random, 4096, 9)
	srt := append([]int32(nil), in...)
	qsort.Introsort(srt)

	wantDst := make([]int32, len(in))
	wantN := query.SeqFilter(in, wantDst, predOf)
	wantStarts := query.SeqGroupBy(in, make([]int32, len(in)), nb, keyOf)
	wantAgg := query.SeqAggregate(in, nb, int64(0), lift, keyOf)
	wantTop := make([]int32, 64)
	wantTop = wantTop[:query.SeqTopK(in, wantTop, 64)]
	wantJoin := make([]query.JoinRun[int32], len(in))
	wantJoin = wantJoin[:query.SeqMergeJoin(srt, srt, wantJoin)]

	f := query.NewFilterer[int32](np)
	gr := query.NewGrouper[int32](np, nb)
	ag := query.NewAggregator[int32, int64](np, nb, 0, lift, comb)
	tk := query.NewTopKer[int32](np, 64)
	jn := query.NewJoiner[int32](np)

	dst := make([]int32, len(in))
	grouped := make([]int32, len(in))
	top := make([]int32, 64)
	joined := make([]query.JoinRun[int32], len(in))

	const rounds = 20
	fail := make(chan string, 1)
	s.Run(core.Func(np, func(ctx *core.Ctx) {
		report := func(msg string) {
			select {
			case fail <- msg:
			default:
			}
		}
		for round := 0; round < rounds; round++ {
			if n := f.Filter(ctx, in, dst, predOf); n != wantN {
				report("filter count changed across reuse")
			}
			if starts := gr.GroupBy(ctx, in, grouped, keyOf); starts[nb] != wantStarts[nb] || starts[0] != wantStarts[0] {
				report("groupby starts changed across reuse")
			}
			totals := ag.Aggregate(ctx, in, keyOf)
			for b := range totals {
				if totals[b] != wantAgg[b] {
					report("aggregate totals changed across reuse")
					break
				}
			}
			if n := tk.TopK(ctx, in, top, 64); n != len(wantTop) {
				report("topk count changed across reuse")
			}
			if n := jn.MergeJoin(ctx, srt, srt, joined); n != len(wantJoin) {
				report("join runs changed across reuse")
			}
		}
	}))
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	checkSlice(t, "reuse-filter", np, dst[:wantN], wantDst[:wantN])
	checkSlice(t, "reuse-topk", np, top[:len(wantTop)], wantTop)
}

func TestBestNp(t *testing.T) {
	const mpt = query.DefaultMinPerThread
	cases := []struct{ n, maxTeam, want int }{
		{0, 8, 1},
		{mpt, 8, 1},
		{2 * mpt, 8, 2},
		{4*mpt - 1, 8, 2},
		{4 * mpt, 8, 4},
		{1 << 30, 8, 8},
		{1 << 30, 1, 1},
		{1 << 30, 7, 4}, // largest power of two ≤ maxTeam
	}
	for _, c := range cases {
		if got := query.BestNp(c.n, 0, c.maxTeam); got != c.want {
			t.Errorf("BestNp(%d, 0, %d) = %d, want %d", c.n, c.maxTeam, got, c.want)
		}
	}
	if got := query.BestNp(100, 10, 8); got != 8 {
		t.Errorf("BestNp(100, 10, 8) = %d, want 8", got)
	}
}

func checkSlice[T comparable](t *testing.T, what string, np int, got, want []T) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("np=%d: %s length %d, want %d", np, what, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("np=%d: %s differs at %d: %v != %v", np, what, i, got[i], want[i])
		}
	}
}
