package query

import (
	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/qsort"
)

// TopKer is the shared state of a team top-k selection: one bounded
// candidate heap per member plus member 0's merge scratch and the published
// result count. Allocate once per task with NewTopKer and share via the
// task closure.
type TopKer[T Ordered] struct {
	k      int
	heaps  [][]T // per-member min-heaps of the k largest seen, cap k
	merged []T   // member 0's merge scratch, cap np·k
	n      int   // result count, written by member 0, read by all after the barrier
}

// NewTopKer returns top-k state for teams of up to np members selecting up
// to k elements.
func NewTopKer[T Ordered](np, k int) *TopKer[T] {
	heaps := make([][]T, np)
	for m := range heaps {
		heaps[m] = make([]T, 0, k)
	}
	return &TopKer[T]{k: k, heaps: heaps, merged: make([]T, 0, np*k)}
}

// TopK is a collective selecting the k largest elements of src into dst in
// descending order, returning the selected count min(k, len(src)) to every
// member. k must not exceed the k the state was built for; dst must have
// room for the count and must not alias src. Each member scans its static
// chunk through a bounded min-heap (the selection), member 0 merges the
// ≤ w·k candidates with the sequential sort, and the count is published
// across the final barrier. Ties are resolved by value only (elements are
// indistinguishable beyond their ordering), so the result equals the
// sequential oracle exactly.
//
//repro:barrier every member must reach the trailing barrier before dst and the count are readable
func (t *TopKer[T]) TopK(ctx *core.Ctx, src, dst []T, k int) int {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	if k > t.k {
		panic("query: TopK k exceeds the k the state was built for")
	}
	checkTeam(w, len(t.heaps))
	if w == 1 {
		return seqTopKHeap(src, dst, k, t.heaps[0])
	}

	// Phase 1: bounded-heap selection over this member's chunk.
	lo, hi := par.Chunk(lid, w, len(src))
	h := t.heaps[lid][:0]
	for i := lo; i < hi; i++ {
		h = heapOffer(h, k, src[i])
	}
	t.heaps[lid] = h
	ctx.Barrier()

	// Phase 2: member 0 merges the candidates and publishes the count.
	if lid == 0 {
		m := t.merged[:0]
		for mem := 0; mem < w; mem++ {
			m = append(m, t.heaps[mem]...)
		}
		qsort.Introsort(m)
		n := k
		if n > len(m) {
			n = len(m)
		}
		for i := 0; i < n; i++ {
			dst[i] = m[len(m)-1-i]
		}
		t.n = n
	}
	// Trailing barrier: dst and the count are visible to every member (and
	// the state reusable) once it returns.
	ctx.Barrier()
	return t.n
}

// heapOffer pushes v into the bounded min-heap h (cap k) holding the k
// largest elements seen: h[0] is the smallest kept element, evicted when a
// larger candidate arrives.
func heapOffer[T Ordered](h []T, k int, v T) []T {
	if len(h) < k {
		h = append(h, v)
		// Sift up.
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if h[p] <= h[i] {
				break
			}
			h[p], h[i] = h[i], h[p]
			i = p
		}
		return h
	}
	if k == 0 || v <= h[0] {
		return h
	}
	h[0] = v
	// Sift down.
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		if r := l + 1; r < len(h) && h[r] < h[l] {
			l = r
		}
		if h[i] <= h[l] {
			break
		}
		h[i], h[l] = h[l], h[i]
		i = l
	}
	return h
}

// seqTopKHeap is the shared heap-based selection used by both the oracle
// and the single-member collective path; scratch (cap ≥ k) avoids the
// oracle's allocation when the caller already holds a buffer.
func seqTopKHeap[T Ordered](src, dst []T, k int, scratch []T) int {
	h := scratch[:0]
	for _, v := range src {
		h = heapOffer(h, k, v)
	}
	qsort.Introsort(h)
	for i := 0; i < len(h); i++ {
		dst[i] = h[len(h)-1-i]
	}
	return len(h)
}

// SeqTopK is the sequential oracle of TopK: the k largest elements of src,
// descending, written to dst; returns min(k, len(src)).
func SeqTopK[T Ordered](src, dst []T, k int) int {
	return seqTopKHeap(src, dst, k, make([]T, 0, k))
}

// TopK returns a team task of np members selecting the k largest elements
// of src into dst (descending); the selected count is stored into *outN
// when non-nil. dst must not alias src.
func TopK[T Ordered](np int, src, dst []T, k int, outN *int) core.Task {
	if np == 1 {
		return core.Solo(func(*core.Ctx) {
			n := SeqTopK(src, dst, k)
			if outN != nil {
				*outN = n
			}
		})
	}
	t := NewTopKer[T](np, k)
	return core.Func(np, func(ctx *core.Ctx) {
		n := t.TopK(ctx, src, dst, k)
		if ctx.LocalID() == 0 && outN != nil {
			*outN = n
		}
	})
}
