package query_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/query"
)

// planOracle composes the sequential oracles the same way the plan under
// test chains its stages: filter → aggregate (side-output) → topk.
func planOracle(in []int32, k int) (out []int32, agg []int64) {
	filtered := make([]int32, len(in))
	filtered = filtered[:query.SeqFilter(in, filtered, predOf)]
	agg = query.SeqAggregate(filtered, nb, int64(0), lift, keyOf)
	out = make([]int32, k)
	out = out[:query.SeqTopK(filtered, out, k)]
	return out, agg
}

// TestPlanMatchesOracleComposition checks a multi-stage plan against the
// composition of the sequential oracles across every distribution, and that
// the same warm plan stays correct when re-executed on different inputs.
func TestPlanMatchesOracleComposition(t *testing.T) {
	s := propSched(t)
	const k = 64
	p := query.NewPlan[int32](propN, s.MaxTeam(), 512).
		Filter(predOf).
		Aggregate(nb, keyOf, 0, lift, comb).
		TopK(k)
	g := s.NewGroup()
	forEachInput(t, func(t *testing.T, _ dist.Kind, in []int32) {
		wantOut, wantAgg := planOracle(in, k)
		res := p.Execute(g, in)
		checkSlice(t, "plan-out", 0, res.Out, wantOut)
		checkSlice(t, "plan-agg", 0, res.Aggregates, wantAgg)
		if res.Starts != nil {
			t.Fatal("plan without a GroupBy stage reported Starts")
		}
	})
}

// TestPlanGroupByStage checks the GroupBy stage inside a chain: the stream
// must pass through reordered with offsets published.
func TestPlanGroupByStage(t *testing.T) {
	s := propSched(t)
	in := dist.Generate(dist.RandDup, propN, 21)
	p := query.NewPlan[int32](propN, s.MaxTeam(), 512).
		Filter(predOf).
		GroupBy(nb, keyOf)
	g := s.NewGroup()

	filtered := make([]int32, len(in))
	filtered = filtered[:query.SeqFilter(in, filtered, predOf)]
	wantGrouped := make([]int32, len(filtered))
	wantStarts := query.SeqGroupBy(filtered, wantGrouped, nb, keyOf)

	res := p.Execute(g, in)
	checkSlice(t, "plan-grouped", 0, res.Out, wantGrouped)
	checkSlice(t, "plan-starts", 0, res.Starts, wantStarts)
}

// TestPlanEdgeSizes runs the plan at the empty-chunk edge sizes, including
// inputs smaller than the widest team.
func TestPlanEdgeSizes(t *testing.T) {
	s := propSched(t)
	const k = 3
	p := query.NewPlan[int32](propN, s.MaxTeam(), 512).
		Filter(predOf).
		Aggregate(nb, keyOf, 0, lift, comb).
		TopK(k)
	g := s.NewGroup()
	for _, n := range []int{0, 1, 2, 5} {
		in := dist.Generate(dist.RandDup, n, 3)
		wantOut, wantAgg := planOracle(in, k)
		res := p.Execute(g, in)
		checkSlice(t, "edge-out", n, res.Out, wantOut)
		checkSlice(t, "edge-agg", n, res.Aggregates, wantAgg)
	}
}

// TestPlanExecuteWarmAllocs pins the allocation contract of Plan.Execute:
// once the plan and group are warm, re-executing allocates nothing beyond
// the documented buffers (which are built by NewPlan, not Execute) — no
// per-task closures and no per-element allocations. What remains is the
// scheduler-side admission cost of injecting each stage from outside a
// worker (Group.Run per stage; the zero-alloc gate covers interior spawns
// only), a small constant per stage. The essential assertion is that the
// total does not scale with input size.
func TestPlanExecuteWarmAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s := propSched(t)
	const n = 1 << 15 // large enough that per-element allocs would explode the count
	const stages = 3
	in := dist.Generate(dist.Staggered, n, 5)
	p := query.NewPlan[int32](n, s.MaxTeam(), 512).
		Filter(predOf).
		Aggregate(nb, keyOf, 0, lift, comb).
		TopK(100)
	g := s.NewGroup()
	p.Execute(g, in) // warm: first run settles lazily-grown scheduler state

	avg := testing.AllocsPerRun(20, func() {
		res := p.Execute(g, in)
		if len(res.Aggregates) != nb {
			t.Fatal("bad result")
		}
	})
	if max := float64(6 * stages); avg > max {
		t.Fatalf("warm Plan.Execute allocates %.1f objects/run, want ≤ %.0f (constant per stage)", avg, max)
	}
}

// TestPlanCapacityPanic pins the documented capacity contract.
func TestPlanCapacityPanic(t *testing.T) {
	s := propSched(t)
	p := query.NewPlan[int32](8, s.MaxTeam(), 0).Filter(predOf)
	g := s.NewGroup()
	defer func() {
		if recover() == nil {
			t.Fatal("Execute over capacity did not panic")
		}
	}()
	p.Execute(g, make([]int32, 9))
}

// TestPlanReusableGroup pins that Execute leaves its group reusable: other
// tasks can run in the same group before and after.
func TestPlanReusableGroup(t *testing.T) {
	s := propSched(t)
	in := dist.Generate(dist.Random, 4096, 17)
	p := query.NewPlan[int32](len(in), s.MaxTeam(), 512).Filter(predOf)
	g := s.NewGroup()

	ran := false
	g.Run(core.Solo(func(*core.Ctx) { ran = true }))
	res := p.Execute(g, in)
	g.Run(core.Solo(func(*core.Ctx) { ran = ran && true }))
	g.Wait()

	want := make([]int32, len(in))
	want = want[:query.SeqFilter(in, want, predOf)]
	checkSlice(t, "group-reuse", 0, res.Out, want)
	if !ran {
		t.Fatal("solo task did not run")
	}
}
