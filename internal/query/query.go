// Package query provides composable team-parallel analytics operators on
// the team-building scheduler — the repository's second application domain
// beside sorting, exercising the paper's mixed-mode model under the request
// shapes of a columnar query engine instead of a single sort kernel.
//
// The operators are expressed entirely over the team-parallel primitives of
// internal/par, continuing the argument that deterministically built teams
// make data-parallel kernels compositional:
//
//   - Filter: stable predicate compaction — a direct application of
//     par.Pack (flag-count, exclusive scan, order-preserving scatter).
//   - GroupBy: bucket-contiguous reordering — par.Hist counts the
//     per-(member, bucket) matrix, an exclusive scan of the totals yields
//     bucket start offsets, and each member scatters its chunk through its
//     private cursors (par.Hist.Cursors), conflict-free and stable, exactly
//     the bucketing step of internal/ssort generalized to arbitrary keys.
//   - Aggregate: the histogram generalized from counting to an arbitrary
//     monoid — each member folds its chunk into a private per-bucket row,
//     and the rows are merged team-parallel at the barrier, so grouped
//     aggregation never materializes the groups.
//   - TopK: per-member bounded-heap selection over static chunks, merged by
//     member 0 — selection composed with the existing sequential sort.
//   - MergeJoin: run-aligned team-parallel merge join over two sorted
//     relations — each member owns the key runs starting in its static
//     chunk, locates the matching range of the other side by binary search,
//     and the matched runs are counted, scanned and written conflict-free
//     (the Pack pattern lifted from elements to key runs). SortJoin stages
//     the inputs through the mixed-mode samplesort first.
//
// Every operator exists in three forms, mirroring internal/par: a
// collective method callable from inside a running team task (every member
// must call it), a standalone core.Task constructor for callers outside the
// scheduler, and a sequential oracle (the Seq* functions) that defines the
// semantics and that the property and fuzz tests compare every team
// execution against. Team size 1 dispatches to the oracle, so
// single-threaded execution is byte-for-byte the reference semantics.
//
// Plan (plan.go) chains operators into one request with preallocated
// intermediates, so heterogeneous shapes — short filters, long sorts,
// team-heavy aggregations — compose into a single client submission on a
// shared scheduler (the cmd/throughput "analytics" mix).
package query

import "repro/internal/qsort"

// Ordered is the element constraint of the operators (the sorting stack's).
type Ordered = qsort.Ordered

// DefaultMinPerThread is the default minimum number of elements per team
// member of a standalone operator task. Analytics kernels are single-pass
// and memory-light compared to sorting, so teams pay off at smaller inputs
// than the sorts' 1<<15 quota.
const DefaultMinPerThread = 1 << 13

// BestNp returns the team size for an operator over n elements: the largest
// power of two np ≤ maxTeam such that every member keeps at least
// minPerThread elements (the paper's getBestNp rule; minPerThread ≤ 0
// selects DefaultMinPerThread).
func BestNp(n, minPerThread, maxTeam int) int {
	if minPerThread <= 0 {
		minPerThread = DefaultMinPerThread
	}
	np := 1
	for np*2 <= maxTeam && n >= 2*np*minPerThread {
		np *= 2
	}
	return np
}

// pslot is a padded per-member cell (same idea as internal/par's slot):
// trailing padding keeps neighboring members' writes on distinct cache
// lines.
type pslot struct {
	v int
	_ [64]byte
}

// checkTeam panics when the executing team is wider than the state object
// was allocated for.
func checkTeam(w, np int) {
	if w > np {
		panic("query: team wider than the operator's state (built for fewer members)")
	}
}
