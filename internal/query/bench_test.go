package query_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/qsort"
	"repro/internal/query"
)

// Analytics operator benchmarks (the BENCH_query.json trajectory emitted by
// scripts/bench.sh): each runs one full-width team task per iteration over
// a fixed 1M-element input, so ns/op tracks both the operator kernel and
// the team-formation overhead that the paper's model amortizes. The plan
// benchmark chains three stages through one warm Plan, measuring the
// stage-boundary cost of the group drain between team tasks.

const (
	benchN  = 1 << 20
	benchNB = 256
	benchK  = 100
)

func benchSetup(b *testing.B) (*core.Scheduler, []int32) {
	b.Helper()
	s := core.New(core.Options{P: 0}) // NumCPU workers
	b.Cleanup(s.Shutdown)
	in := dist.Generate(dist.Random, benchN, 42)
	b.ReportAllocs()
	b.SetBytes(4 * benchN)
	return s, in
}

func benchKey(v int32) int             { return int(uint32(v)) % benchNB }
func benchPred(v int32) bool           { return v%2 == 0 }
func benchLift(a int64, v int32) int64 { return a + int64(v) }
func benchComb(a, b int64) int64       { return a + b }

func BenchmarkQueryFilter(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	dst := make([]int32, benchN)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(query.Filter(np, in, dst, benchPred, &n))
	}
	_ = n
}

func BenchmarkQueryGroupBy(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	grouped := make([]int32, benchN)
	starts := make([]int, benchNB+1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(query.GroupBy(np, in, grouped, benchNB, benchKey, starts))
	}
}

func BenchmarkQueryAggregate(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	out := make([]int64, benchNB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(query.Aggregate(np, in, benchNB, benchKey, 0, benchLift, benchComb, out))
	}
}

func BenchmarkQueryTopK(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	dst := make([]int32, benchK)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(query.TopK(np, in, dst, benchK, &n))
	}
	_ = n
}

func BenchmarkQueryMergeJoin(b *testing.B) {
	s, in := benchSetup(b)
	np := s.MaxTeam()
	srt := append([]int32(nil), in...)
	qsort.Introsort(srt)
	out := make([]query.JoinRun[int32], benchN)
	var n int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(query.MergeJoin(np, srt, srt, out, &n))
	}
	_ = n
}

func BenchmarkQueryPlan(b *testing.B) {
	s, in := benchSetup(b)
	p := query.NewPlan[int32](benchN, s.MaxTeam(), 0).
		Filter(benchPred).
		Aggregate(benchNB, benchKey, 0, benchLift, benchComb).
		TopK(benchK)
	g := s.NewGroup()
	p.Execute(g, in) // warm the plan so iterations measure steady state
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Execute(g, in)
	}
}
