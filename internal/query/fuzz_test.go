package query_test

import (
	"encoding/binary"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/qsort"
	"repro/internal/query"
)

// fuzzSched is shared across fuzz executions: scheduler spin-up dominates a
// per-execution scheduler and would throttle the fuzzer to a crawl.
var fuzzSched = sync.OnceValue(func() *core.Scheduler {
	return core.New(core.Options{P: 4})
})

// fuzzInts decodes the fuzzer's raw bytes into the int32 element stream the
// operators consume.
func fuzzInts(raw []byte) []int32 {
	data := make([]int32, len(raw)/4)
	for i := range data {
		data[i] = int32(binary.LittleEndian.Uint32(raw[i*4:]))
	}
	return data
}

// FuzzFilter cross-checks the team filter against its sequential oracle on
// fuzzer-chosen data, team size and predicate modulus (wired into
// scripts/fuzz-smoke.sh).
func FuzzFilter(f *testing.F) {
	f.Add(uint8(2), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(7), uint8(0), []byte{0xff, 0xff, 0xff, 0xff})
	f.Add(uint8(1), uint8(1), []byte{})
	f.Fuzz(func(t *testing.T, npRaw, modRaw uint8, raw []byte) {
		s := fuzzSched()
		np := 1 + int(npRaw)%s.MaxTeam()
		mod := 1 + int32(modRaw)%7
		pred := func(v int32) bool { return v%mod == 0 }
		src := fuzzInts(raw)

		want := make([]int32, len(src))
		want = want[:query.SeqFilter(src, want, pred)]

		got := make([]int32, len(src))
		var gotN int
		s.Run(query.Filter(np, src, got, pred, &gotN))
		checkSlice(t, "fuzz-filter", np, got[:gotN], want)
	})
}

// FuzzGroupBy cross-checks the team group-by against its sequential oracle
// on fuzzer-chosen data, team size and bucket count; the scatter is stable,
// so the permutation (not just the histogram) must match exactly.
func FuzzGroupBy(f *testing.F) {
	f.Add(uint8(3), uint8(16), []byte{9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2})
	f.Add(uint8(1), uint8(1), []byte{0, 0, 0, 0})
	f.Add(uint8(5), uint8(255), []byte{})
	f.Fuzz(func(t *testing.T, npRaw, nbRaw uint8, raw []byte) {
		s := fuzzSched()
		np := 1 + int(npRaw)%s.MaxTeam()
		nb := 1 + int(nbRaw)%64
		key := func(v int32) int { return int(uint32(v)) % nb }
		src := fuzzInts(raw)

		wantGrouped := make([]int32, len(src))
		wantStarts := query.SeqGroupBy(src, wantGrouped, nb, key)

		gotGrouped := make([]int32, len(src))
		gotStarts := make([]int, nb+1)
		s.Run(query.GroupBy(np, src, gotGrouped, nb, key, gotStarts))
		checkSlice(t, "fuzz-groupby-starts", np, gotStarts, wantStarts)
		checkSlice(t, "fuzz-groupby", np, gotGrouped, wantGrouped)
	})
}

// FuzzMergeJoin cross-checks the team merge join against its sequential
// oracle on fuzzer-chosen (then sorted) sides and team size.
func FuzzMergeJoin(f *testing.F) {
	f.Add(uint8(2), []byte{1, 2, 3, 4, 1, 2, 3, 4}, []byte{1, 2, 3, 4})
	f.Add(uint8(4), []byte{}, []byte{5, 0, 0, 0})
	f.Add(uint8(1), []byte{7, 0, 0, 0, 7, 0, 0, 0}, []byte{7, 0, 0, 0})
	f.Fuzz(func(t *testing.T, npRaw uint8, rawA, rawB []byte) {
		s := fuzzSched()
		np := 1 + int(npRaw)%s.MaxTeam()
		a, b := fuzzInts(rawA), fuzzInts(rawB)
		qsort.Introsort(a)
		qsort.Introsort(b)

		cap := min(len(a), len(b)) // ≤ one run per matched distinct key
		want := make([]query.JoinRun[int32], cap)
		want = want[:query.SeqMergeJoin(a, b, want)]

		got := make([]query.JoinRun[int32], cap)
		var gotN int
		s.Run(query.MergeJoin(np, a, b, got, &gotN))
		if gotN != len(want) {
			t.Fatalf("np=%d: %d runs, want %d", np, gotN, len(want))
		}
		for i, r := range got[:gotN] {
			if r != want[i] {
				t.Fatalf("np=%d: run %d = %+v, want %+v", np, i, r, want[i])
			}
		}
	})
}

// FuzzPlan builds a fuzzer-chosen operator chain and cross-checks one
// execution against the composition of the sequential oracles, mirroring
// Plan.Execute's stage semantics (Aggregate passes the stream through;
// GroupBy reorders it; Filter and TopK narrow it).
func FuzzPlan(f *testing.F) {
	f.Add(uint8(2), []byte{0, 2, 3}, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(3), []byte{1}, []byte{9, 8, 7, 6, 5, 4, 3, 2})
	f.Add(uint8(1), []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, npRaw uint8, ops, raw []byte) {
		s := fuzzSched()
		np := 1 + int(npRaw)%s.MaxTeam()
		src := fuzzInts(raw)
		if len(ops) > 4 {
			ops = ops[:4]
		}
		const (
			planNB = 13
			planK  = 5
		)
		key := func(v int32) int { return int(uint32(v)) % planNB }
		pred := func(v int32) bool { return v%3 != 0 }

		p := query.NewPlan[int32](len(src), np, 1)
		cur := src // oracle stream, composed stage by stage
		var wantStarts []int
		var wantAgg []int64
		for _, op := range ops {
			switch op % 4 {
			case 0:
				p.Filter(pred)
				next := make([]int32, len(cur))
				cur = next[:query.SeqFilter(cur, next, pred)]
			case 1:
				p.GroupBy(planNB, key)
				next := make([]int32, len(cur))
				wantStarts = query.SeqGroupBy(cur, next, planNB, key)
				cur = next
			case 2:
				p.Aggregate(planNB, key, 0, lift, comb)
				wantAgg = query.SeqAggregate(cur, planNB, int64(0), lift, key)
			case 3:
				p.TopK(planK)
				next := make([]int32, planK)
				cur = next[:query.SeqTopK(cur, next, planK)]
			}
		}

		g := s.NewGroup()
		res := p.Execute(g, src)
		checkSlice(t, "fuzz-plan-out", np, res.Out, cur)
		checkSlice(t, "fuzz-plan-starts", np, res.Starts, wantStarts)
		checkSlice(t, "fuzz-plan-agg", np, res.Aggregates, wantAgg)
	})
}
