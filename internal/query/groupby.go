package query

import (
	"repro/internal/core"
	"repro/internal/par"
)

// Grouper is the shared state of a team group-by: the per-(member, bucket)
// histogram, the offset scan, the bucket start offsets and one private
// scatter-cursor row per member. Allocate once per task with NewGrouper and
// share via the task closure; the state is reusable for consecutive
// collectives by the same team.
type Grouper[T any] struct {
	nb     int
	hist   *par.Hist
	scan   *par.Scanner[int]
	starts []int   // nb+1: bucket b occupies grouped[starts[b]:starts[b+1]]
	curs   [][]int // per-member scatter cursors
}

// NewGrouper returns group-by state for teams of up to np members over nb
// key buckets.
func NewGrouper[T any](np, nb int) *Grouper[T] {
	curs := make([][]int, np)
	for m := range curs {
		curs[m] = make([]int, nb)
	}
	return &Grouper[T]{
		nb:     nb,
		hist:   par.NewHist(np, nb),
		scan:   par.NewScanner(np, 0, func(a, b int) int { return a + b }),
		starts: make([]int, nb+1),
		curs:   curs,
	}
}

// NumBuckets returns the bucket count nb.
func (g *Grouper[T]) NumBuckets() int { return g.nb }

// GroupBy is a collective reordering src into grouped so that the elements
// of every key bucket are contiguous: bucket b occupies
// grouped[starts[b]:starts[b+1]] of the returned offsets (len nb+1,
// starts[nb] = len(src)). Within a bucket the elements keep their src order
// (the scatter is stable), so GroupBy is deterministic. key must map every
// element into [0, nb) and be pure; grouped must not alias src and len ≥
// len(src). Returns the offsets to every member; the slice stays valid (and
// is overwritten) across calls. A team of size 1 runs the sequential
// oracle.
//
// It is the bucketing step of the mixed-mode samplesort generalized to
// arbitrary keys: par.Hist counts the per-(member, bucket) matrix, the
// totals are scanned exclusively for the bucket starts, and each member
// scatters its static chunk through its private cursors
// (par.Hist.Cursors), write-conflict-free by construction.
//
//repro:barrier every member must reach the trailing barrier before grouped and starts are readable
func (g *Grouper[T]) GroupBy(ctx *core.Ctx, src, grouped []T, key func(T) int) []int {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	n := len(src)
	if w == 1 {
		return seqGroupByInto(src, grouped, g.nb, key, g.starts, g.curs[0])
	}
	checkTeam(w, len(g.curs))

	// Phase 1: per-(member, bucket) histogram of the static chunks.
	g.hist.Histogram(ctx, n, func(i int) int { return key(src[i]) })

	// Phase 2: bucket start offsets — copy the totals and scan exclusively.
	totals := g.hist.Totals()
	ctx.TeamFor(g.nb, func(lo, hi int) {
		copy(g.starts[lo:hi], totals[lo:hi])
	})
	g.scan.Exclusive(ctx, g.starts[:g.nb])
	if lid == 0 {
		g.starts[g.nb] = n
	}

	// Phase 3: stable conflict-free scatter through this member's cursors.
	cur := g.curs[lid]
	g.hist.Cursors(lid, g.starts, cur)
	lo, hi := par.Chunk(lid, w, n) // must match par.Hist's counting chunks
	for i := lo; i < hi; i++ {
		b := key(src[i])
		grouped[cur[b]] = src[i]
		cur[b]++
	}
	// Trailing barrier: grouped and starts are complete (and the state
	// reusable) for every member once it returns.
	ctx.Barrier()
	return g.starts
}

// Starts returns the bucket offsets of the last GroupBy call (len nb+1).
// Valid on every member after the collective returns; do not mutate.
func (g *Grouper[T]) Starts() []int { return g.starts }

// SeqGroupBy is the sequential oracle of GroupBy: it reorders src into
// grouped bucket-contiguously (stable within buckets) and returns the
// freshly allocated bucket offsets (len nb+1).
func SeqGroupBy[T any](src, grouped []T, nb int, key func(T) int) []int {
	return seqGroupByInto(src, grouped, nb, key, make([]int, nb+1), make([]int, nb))
}

// seqGroupByInto is the allocation-free core of the oracle: counts (len nb)
// is scratch, reused as the running write cursors.
func seqGroupByInto[T any](src, grouped []T, nb int, key func(T) int, starts, counts []int) []int {
	clear(counts[:nb])
	for _, v := range src {
		counts[key(v)]++
	}
	off := 0
	for b, c := range counts {
		starts[b] = off
		counts[b] = off // reuse as the running write cursor
		off += c
	}
	starts[nb] = off
	for _, v := range src {
		b := key(v)
		grouped[counts[b]] = v
		counts[b]++
	}
	return starts
}

// GroupBy returns a team task of np members reordering src into grouped
// bucket-contiguously under key ∈ [0, nb); the bucket offsets (len nb+1)
// are copied into outStarts when non-nil. grouped must not alias src.
func GroupBy[T any](np int, src, grouped []T, nb int, key func(T) int, outStarts []int) core.Task {
	if np == 1 {
		return core.Solo(func(*core.Ctx) {
			starts := SeqGroupBy(src, grouped, nb, key)
			if outStarts != nil {
				copy(outStarts, starts)
			}
		})
	}
	g := NewGrouper[T](np, nb)
	return core.Func(np, func(ctx *core.Ctx) {
		starts := g.GroupBy(ctx, src, grouped, key)
		if ctx.LocalID() == 0 && outStarts != nil {
			copy(outStarts, starts)
		}
	})
}
