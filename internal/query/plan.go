package query

import "repro/internal/core"

// Plan is a preallocated linear pipeline of analytics operators: a builder
// chains Filter/GroupBy/Aggregate/TopK steps, and Execute runs them as a
// sequence of team tasks on a quiescence group, each stage sized by BestNp
// for its live input. All intermediates — two element buffers the stages
// ping-pong between, plus every operator's team state at full width — are
// allocated when the plan is built, so a warm plan executes without
// per-element allocation however often it runs (the regression test in
// plan_test.go pins this).
//
// The element stream starts as the caller's src (never written), flows
// through the stream-rewriting stages (Filter, GroupBy, TopK), and ends as
// Result.Out. Aggregate is a side-output: it folds the live stream into
// per-bucket int64 totals (Result.Aggregates) and passes the stream through
// unchanged, so e.g. Filter → Aggregate → TopK is a single plan. GroupBy
// additionally publishes its bucket offsets as Result.Starts.
//
// A Plan is not safe for concurrent Execute calls; build one per client (the
// states inside are team-shared, not request-shared).
type Plan[T Ordered] struct {
	maxTeam      int
	minPerThread int
	capN         int
	buf          [2][]T
	steps        []*step[T]
}

// Result is the output of one Plan execution. Out aliases one of the plan's
// internal buffers (or src itself when no stage rewrote the stream), and
// Starts/Aggregates alias operator state; all are overwritten by the next
// Execute.
type Result[T Ordered] struct {
	// Out is the final element stream.
	Out []T
	// Starts is the bucket offsets (len nb+1) of the last GroupBy stage,
	// nil if the plan has none.
	Starts []int
	// Aggregates is the per-bucket totals of the last Aggregate stage, nil
	// if the plan has none.
	Aggregates []int64
}

// NewPlan returns an empty plan for inputs of up to capN elements executed
// by teams of up to maxTeam members; minPerThread ≤ 0 selects
// DefaultMinPerThread. Chain stages with the builder methods, then call
// Execute any number of times.
func NewPlan[T Ordered](capN, maxTeam, minPerThread int) *Plan[T] {
	if maxTeam < 1 {
		maxTeam = 1
	}
	return &Plan[T]{
		maxTeam:      maxTeam,
		minPerThread: minPerThread,
		capN:         capN,
		buf:          [2][]T{make([]T, capN), make([]T, capN)},
	}
}

// stepKind discriminates the operator a step runs.
type stepKind int

const (
	stepFilter stepKind = iota
	stepGroupBy
	stepAggregate
	stepTopK
)

// step is one stage of a plan: the operator's prebuilt team state plus the
// per-execution bindings (team size, input, output) Execute sets before
// running it. One struct for all kinds keeps the task side trivial: step is
// itself the core.Task the stage submits, so a warm Execute builds no
// closures.
type step[T Ordered] struct {
	kind stepKind
	k    int // TopK
	pred func(T) bool
	key  func(T) int

	filt *Filterer[T]
	grp  *Grouper[T]
	agg  *Aggregator[T, int64]
	top  *TopKer[T]

	// Bindings of the current execution, set by Execute before the stage is
	// submitted and read back after the group drains.
	np   int
	src  []T
	dst  []T
	outN int
}

func (s *step[T]) Threads() int { return s.np }

func (s *step[T]) Run(ctx *core.Ctx) {
	switch s.kind {
	case stepFilter:
		n := s.filt.Filter(ctx, s.src, s.dst, s.pred)
		if ctx.LocalID() == 0 {
			s.outN = n
		}
	case stepGroupBy:
		s.grp.GroupBy(ctx, s.src, s.dst, s.key)
		if ctx.LocalID() == 0 {
			s.outN = len(s.src)
		}
	case stepAggregate:
		s.agg.Aggregate(ctx, s.src, s.key)
		if ctx.LocalID() == 0 {
			s.outN = len(s.src)
		}
	case stepTopK:
		n := s.top.TopK(ctx, s.src, s.dst, s.k)
		if ctx.LocalID() == 0 {
			s.outN = n
		}
	}
}

// Filter appends a stable predicate filter stage; the stream narrows to the
// survivors. pred must be pure.
func (p *Plan[T]) Filter(pred func(T) bool) *Plan[T] {
	p.steps = append(p.steps, &step[T]{
		kind: stepFilter, pred: pred, filt: NewFilterer[T](p.maxTeam),
	})
	return p
}

// GroupBy appends a bucket-contiguous reordering stage under key ∈ [0, nb);
// the stream keeps its length and the bucket offsets become Result.Starts.
// key must be pure.
func (p *Plan[T]) GroupBy(nb int, key func(T) int) *Plan[T] {
	p.steps = append(p.steps, &step[T]{
		kind: stepGroupBy, key: key, grp: NewGrouper[T](p.maxTeam, nb),
	})
	return p
}

// Aggregate appends a grouped-fold side-output stage: the live stream is
// folded per bucket under key ∈ [0, nb) with the int64 monoid (identity,
// comb) and injection lift, the totals become Result.Aggregates, and the
// stream passes through unchanged. comb must be associative with identity
// as its unit; key and lift must be pure.
func (p *Plan[T]) Aggregate(nb int, key func(T) int, identity int64,
	lift func(int64, T) int64, comb func(int64, int64) int64) *Plan[T] {
	p.steps = append(p.steps, &step[T]{
		kind: stepAggregate, key: key,
		agg: NewAggregator[T, int64](p.maxTeam, nb, identity, lift, comb),
	})
	return p
}

// TopK appends a selection stage: the stream narrows to its k largest
// elements in descending order.
func (p *Plan[T]) TopK(k int) *Plan[T] {
	p.steps = append(p.steps, &step[T]{
		kind: stepTopK, k: k, top: NewTopKer[T](p.maxTeam, k),
	})
	return p
}

// Execute runs the plan over src (len ≤ the plan's capacity) on g: each
// stage is submitted as one team task and the group's quiescence is the
// stage boundary, so stages see fully materialized inputs. g is reusable
// before and after (Execute only needs it quiescent between stages it runs
// itself); src is read, never written. The returned views stay valid until
// the next Execute.
func (p *Plan[T]) Execute(g *core.Group, src []T) Result[T] {
	if len(src) > p.capN {
		panic("query: Plan.Execute input exceeds the plan's capacity")
	}
	var res Result[T]
	cur, n, bi := src, len(src), 0
	for _, s := range p.steps {
		s.np = BestNp(n, p.minPerThread, p.maxTeam)
		s.src = cur[:n]
		if s.kind != stepAggregate {
			s.dst = p.buf[bi]
		}
		g.Run(s)
		switch s.kind {
		case stepFilter, stepTopK:
			n, cur, bi = s.outN, p.buf[bi], bi^1
		case stepGroupBy:
			cur, bi = p.buf[bi], bi^1
			res.Starts = s.grp.Starts()
		case stepAggregate:
			res.Aggregates = s.agg.Totals()
		}
		s.src, s.dst = nil, nil // don't pin the caller's src between runs
	}
	res.Out = cur[:n]
	return res
}
