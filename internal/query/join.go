package query

import (
	"sort"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/ssort"
)

// JoinRun is one matched key run of a merge join: the key and the index
// ranges a[ALo:AHi] and b[BLo:BHi] holding it on each side. The join's
// output pairs are the cross product of the two ranges; emitting runs
// instead of pairs keeps the output linear in the input even when both
// sides are constant (where materialized pairs would be quadratic).
type JoinRun[T Ordered] struct {
	Key      T
	ALo, AHi int
	BLo, BHi int
}

// Pairs returns the number of output pairs the run stands for.
func (r JoinRun[T]) Pairs() int { return (r.AHi - r.ALo) * (r.BHi - r.BLo) }

// SeqMergeJoin is the sequential oracle of MergeJoin: the classic run-walk
// over two ascending-sorted slices, writing one JoinRun per key present in
// both into out (ascending by key) and returning the run count. out needs
// room for every matched run; min(len(a), len(b)) always suffices.
func SeqMergeJoin[T Ordered](a, b []T, out []JoinRun[T]) int {
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			k := a[i]
			ihi := i + 1
			for ihi < len(a) && a[ihi] == k {
				ihi++
			}
			jhi := j + 1
			for jhi < len(b) && b[jhi] == k {
				jhi++
			}
			out[n] = JoinRun[T]{Key: k, ALo: i, AHi: ihi, BLo: j, BHi: jhi}
			n++
			i, j = ihi, jhi
		}
	}
	return n
}

// Joiner is the shared state of a team merge join: the per-member matched
// run counts (padded cells) and the published total. Allocate once per task
// with NewJoiner and share via the task closure.
type Joiner[T Ordered] struct {
	counts []pslot
	n      int // total matched runs, written by member 0
}

// NewJoiner returns merge-join state for teams of up to np members.
func NewJoiner[T Ordered](np int) *Joiner[T] {
	return &Joiner[T]{counts: make([]pslot, np)}
}

// MergeJoin is a collective joining two ascending-sorted slices: one
// JoinRun per key present in both sides is written into out, ascending by
// key, and the run count is returned to every member. out must have room
// for every matched run (min(len(a), len(b)) always suffices) and must not
// alias a or b.
//
// Ownership is by key run of a: each member processes the runs *starting*
// in its static chunk (a run crossing the chunk boundary belongs to the
// member where it starts), locates the matching range of b by binary
// search, and — after the counts are known at the barrier — writes its runs
// at its exclusive prefix offset. That is the Pack pattern lifted from
// elements to key runs: count, scan, conflict-free scatter, stable by
// construction. A team of size 1 runs the sequential oracle.
//
//repro:barrier every member must reach the trailing barrier before out and the count are readable
func (jn *Joiner[T]) MergeJoin(ctx *core.Ctx, a, b []T, out []JoinRun[T]) int {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	checkTeam(w, len(jn.counts))
	if w == 1 {
		return SeqMergeJoin(a, b, out)
	}

	// Pass 1: count this member's matched runs.
	jn.counts[lid].v = jn.runs(lid, w, a, b, nil)
	ctx.Barrier()

	// Pass 2: rewalk the same runs, writing at the exclusive prefix offset.
	off := 0
	for m := 0; m < lid; m++ {
		off += jn.counts[m].v
	}
	jn.runs(lid, w, a, b, out[off:])
	if lid == w-1 {
		jn.n = off + jn.counts[lid].v
	}
	// Trailing barrier: out and the total are visible to every member (and
	// the state reusable) once it returns.
	ctx.Barrier()
	return jn.n
}

// runs walks the key runs of a starting in member lid's chunk, matching
// each against b; with out == nil it only counts, otherwise it writes the
// matched runs into out. Returns the matched run count.
func (jn *Joiner[T]) runs(lid, w int, a, b []T, out []JoinRun[T]) int {
	lo, hi := par.Chunk(lid, w, len(a))
	// Skip a run continuing from the previous chunk; its owner handles it.
	i := lo
	if i > 0 {
		for i < hi && a[i] == a[i-1] {
			i++
		}
	}
	if i >= hi {
		return 0
	}
	// b's merge frontier: runs of a ascend, so it only moves forward.
	j := sort.Search(len(b), func(x int) bool { return !(b[x] < a[i]) })
	n := 0
	for i < hi {
		k := a[i]
		ihi := i + 1
		for ihi < len(a) && a[ihi] == k {
			ihi++
		}
		for j < len(b) && b[j] < k {
			j++
		}
		if j < len(b) && !(k < b[j]) {
			jhi := j + 1
			for jhi < len(b) && b[jhi] == k {
				jhi++
			}
			if out != nil {
				out[n] = JoinRun[T]{Key: k, ALo: i, AHi: ihi, BLo: j, BHi: jhi}
			}
			n++
			j = jhi
		}
		i = ihi
	}
	return n
}

// MergeJoin returns a team task of np members joining the ascending-sorted
// slices a and b into out (one JoinRun per key present in both); the run
// count is stored into *outN when non-nil. out must have room for every
// matched run (min(len(a), len(b)) suffices).
func MergeJoin[T Ordered](np int, a, b []T, out []JoinRun[T], outN *int) core.Task {
	if np == 1 {
		return core.Solo(func(*core.Ctx) {
			n := SeqMergeJoin(a, b, out)
			if outN != nil {
				*outN = n
			}
		})
	}
	jn := NewJoiner[T](np)
	return core.Func(np, func(ctx *core.Ctx) {
		n := jn.MergeJoin(ctx, a, b, out)
		if ctx.LocalID() == 0 && outN != nil {
			*outN = n
		}
	})
}

// SortJoin sorts a and b in place with the mixed-mode samplesort (both
// sorts run concurrently in g), then merge-joins them into out with a team
// of up to maxTeam members, returning the matched run count. It is the
// staged composition the Plan layer generalizes: sort roots fan out
// task-parallel, the group's quiescence is the stage boundary, and the join
// runs as one team task.
func SortJoin[T Ordered](g *core.Group, maxTeam int, a, b []T, out []JoinRun[T], opt ssort.Options) int {
	ssort.SortGroup(g, a, opt)
	ssort.SortGroup(g, b, opt)
	g.Wait()
	n := 0
	np := BestNp(len(a)+len(b), 0, maxTeam)
	g.Run(MergeJoin(np, a, b, out, &n))
	return n
}
