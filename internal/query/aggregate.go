package query

import (
	"repro/internal/core"
	"repro/internal/par"
)

// Aggregator is the shared state of a team grouped aggregation: one private
// per-bucket accumulator row per member plus the merged totals — par.Hist
// generalized from counting to an arbitrary monoid, so a grouped
// aggregation never materializes its groups. Allocate once per task with
// NewAggregator and share via the task closure.
//
// lift folds one element into an accumulator; comb combines two
// accumulators and must be associative with identity as its unit (partials
// are combined in member order, so comb need not be commutative).
type Aggregator[T, A any] struct {
	nb       int
	identity A
	lift     func(A, T) A
	comb     func(A, A) A
	rows     [][]A
	totals   []A
}

// NewAggregator returns aggregation state for teams of up to np members
// over nb key buckets under the monoid (identity, comb) with element
// injection lift.
func NewAggregator[T, A any](np, nb int, identity A, lift func(A, T) A, comb func(A, A) A) *Aggregator[T, A] {
	rows := make([][]A, np)
	for m := range rows {
		rows[m] = make([]A, nb)
	}
	return &Aggregator[T, A]{
		nb: nb, identity: identity, lift: lift, comb: comb,
		rows: rows, totals: make([]A, nb),
	}
}

// NumBuckets returns the bucket count nb.
func (a *Aggregator[T, A]) NumBuckets() int { return a.nb }

// Aggregate is a collective computing, for every bucket b ∈ [0, nb), the
// fold of lift over the elements of src with key(v) = b: each member folds
// its static chunk into its private row, and after the team barrier the
// buckets are merged team-parallel with comb in member order. Returns the
// per-bucket totals to every member; the slice stays valid (and is
// overwritten) across calls. key must be pure. A team of size 1 runs the
// sequential oracle.
//
//repro:barrier every member must reach the trailing barrier before the totals are readable
func (a *Aggregator[T, A]) Aggregate(ctx *core.Ctx, src []T, key func(T) int) []A {
	w, lid := ctx.TeamSize(), ctx.LocalID()
	if w == 1 {
		seqAggregateInto(src, a.identity, a.lift, key, a.totals)
		return a.totals
	}
	checkTeam(w, len(a.rows))

	// Phase 1: fold this member's chunk into its private row.
	row := a.rows[lid]
	for b := range row {
		row[b] = a.identity
	}
	lo, hi := par.Chunk(lid, w, len(src))
	for i := lo; i < hi; i++ {
		b := key(src[i])
		row[b] = a.lift(row[b], src[i])
	}
	ctx.Barrier()

	// Phase 2: merge totals team-parallel — member m owns the m-th static
	// chunk of the bucket range, combining the rows in member order.
	blo, bhi := par.Chunk(lid, w, a.nb)
	for b := blo; b < bhi; b++ {
		t := a.identity
		for m := 0; m < w; m++ {
			t = a.comb(t, a.rows[m][b])
		}
		a.totals[b] = t
	}
	// Trailing barrier: all totals are merged (and the state reusable) for
	// every member once it returns.
	ctx.Barrier()
	return a.totals
}

// Totals returns the merged per-bucket results of the last Aggregate call.
// Valid on every member after the collective returns; do not mutate.
func (a *Aggregator[T, A]) Totals() []A { return a.totals }

// SeqAggregate is the sequential oracle of Aggregate: the per-bucket fold
// of lift over src in index order.
func SeqAggregate[T, A any](src []T, nb int, identity A, lift func(A, T) A, key func(T) int) []A {
	out := make([]A, nb)
	seqAggregateInto(src, identity, lift, key, out)
	return out
}

func seqAggregateInto[T, A any](src []T, identity A, lift func(A, T) A, key func(T) int, out []A) {
	for b := range out {
		out[b] = identity
	}
	for _, v := range src {
		b := key(v)
		out[b] = lift(out[b], v)
	}
}

// Aggregate returns a team task of np members computing the per-bucket fold
// of lift over src under key ∈ [0, nb) into out (len ≥ nb). comb must be
// associative with identity as its unit.
func Aggregate[T, A any](np int, src []T, nb int, key func(T) int, identity A,
	lift func(A, T) A, comb func(A, A) A, out []A) core.Task {
	if np == 1 {
		return core.Solo(func(*core.Ctx) { seqAggregateInto(src, identity, lift, key, out[:nb]) })
	}
	a := NewAggregator(np, nb, identity, lift, comb)
	return core.Func(np, func(ctx *core.Ctx) {
		totals := a.Aggregate(ctx, src, key)
		if ctx.LocalID() == 0 {
			copy(out, totals)
		}
	})
}
