//go:build race

package query_test

// raceEnabled reports that this test binary runs under the race detector
// (which instruments allocations, so alloc-count assertions do not hold).
const raceEnabled = true
