package core

// Tests for the allocation-free, contention-free per-task hot path: the
// zero-alloc regression gate for the interior spawn path, a recycling
// stress test (many groups × steals) proving node reuse never loses or
// duplicates a task, and the whitebox pin that injected takes are reported
// as takes, not spawns.

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSpawnZeroAlloc is the regression gate for the tentpole property: a
// steady-state interior Ctx.Spawn + run of pooled solo tasks performs zero
// heap allocations per task — nodes come from the worker free lists, the
// accounting writes only per-worker shards, and the deque rings are
// pre-grown. The task value itself is reused, as the pooled spawn wrappers
// of the sorting packages do.
func TestSpawnZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s := New(Options{P: 2})
	defer s.Shutdown()
	// The metrics surface must not change the hot path: build the registry
	// (closures over the live counters) and render it once up front, then
	// measure with the instrumentation in place.
	if out := s.Metrics().Render(); !strings.Contains(out, "repro_sched_tasks_total") {
		t.Fatalf("metrics render lacks scheduler counters:\n%s", out)
	}
	const k = 64
	ct := &benchCountdown{}
	start := make(chan struct{})
	// Runs before Shutdown (LIFO): the driver task must leave its receive
	// loop, or Shutdown would wait forever for its worker.
	defer close(start)
	round := make(chan struct{})
	s.Spawn(Solo(func(ctx *Ctx) {
		for range start {
			ct.remaining.Store(k)
			for i := 0; i < k; i++ {
				ctx.Spawn(ct)
			}
			drainOwn(ctx, ct)
			round <- struct{}{}
		}
	}))
	doRound := func() {
		start <- struct{}{}
		<-round
	}
	// Warm up: fill the node free lists, grow the deque rings, let every
	// goroutine allocate its one-off runtime state (sleep timers etc.).
	for i := 0; i < 16; i++ {
		doRound()
	}
	if avg := testing.AllocsPerRun(50, doRound); avg != 0 {
		t.Fatalf("interior spawn path allocates: %v allocs per %d-task round, want 0", avg, k)
	}
}

// TestNodeRecyclingStress hammers node recycling from many concurrent
// groups whose task trees are spawned, stolen, and completed across
// workers, proving a recycled node is never observed by two live tasks: a
// double-delivered node would run some task twice (count too high), a lost
// node would hang the group's Wait or leave counts low, and under -race the
// detector checks the recycle-reuse handoff itself.
func TestNodeRecyclingStress(t *testing.T) {
	s := New(Options{P: 4})
	defer s.Shutdown()
	const (
		clients = 8
		rounds  = 6
		roots   = 24
		depth   = 3 // binary tree: 2^(depth+1)−1 tasks per root
	)
	perTree := int64(1<<(depth+1) - 1)
	var tree func(ran *atomic.Int64, d int) func(*Ctx)
	tree = func(ran *atomic.Int64, d int) func(*Ctx) {
		return func(ctx *Ctx) {
			ran.Add(1)
			if d > 0 {
				ctx.Spawn(Solo(tree(ran, d-1)))
				ctx.Spawn(Solo(tree(ran, d-1)))
			}
		}
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := s.NewGroup()
			var ran atomic.Int64
			for r := 0; r < rounds; r++ {
				for k := 0; k < roots; k++ {
					g.Spawn(Solo(tree(&ran, depth)))
				}
				g.Wait()
				if got, want := ran.Load(), int64(r+1)*roots*perTree; got != want {
					t.Errorf("round %d: ran %d tasks, want %d", r, got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
	s.Wait()
	if p := s.Pending(); p != 0 {
		t.Fatalf("pending = %d after drain", p)
	}
	want := int64(clients * rounds * roots * int(perTree))
	if st := s.Stats(); st.TasksRun != want {
		t.Fatalf("TasksRun = %d, want %d", st.TasksRun, want)
	}
}

// TestWBSpawnStatNotDoubleCounted pins the stats fix: a takeInjected is
// reported as an inject take, not as a spawn — only true spawn sites
// (Ctx.Spawn) move the Spawns counter, so Spawns + InjectTakes accounts
// every solo queue entry exactly once.
func TestWBSpawnStatNotDoubleCounted(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	g := s.NewGroup()
	g.Spawn(Solo(func(ctx *Ctx) {
		ctx.Spawn(Solo(func(*Ctx) {}))
	}))
	if !s.takeInjected(w) {
		t.Fatal("takeInjected found no work")
	}
	if got := w.st.Spawns.Load(); got != 0 {
		t.Fatalf("injected take counted as %d spawns, want 0", got)
	}
	if got := w.st.InjectTakes.Load(); got != 1 {
		t.Fatalf("InjectTakes = %d, want 1", got)
	}
	w.runSolo(w.queues[0].PopBottom()) // root runs and spawns one child
	if got := w.st.Spawns.Load(); got != 1 {
		t.Fatalf("interior spawn counted %d, want 1", got)
	}
	w.runSolo(w.queues[0].PopBottom())
	st := w.st.Snapshot()
	if st.TasksRun != 2 || st.Spawns+st.InjectTakes != st.TasksRun {
		t.Fatalf("accounting broken: tasks=%d spawns=%d takes=%d",
			st.TasksRun, st.Spawns, st.InjectTakes)
	}
	if g.Pending() != 0 || s.Pending() != 0 {
		t.Fatalf("counts leaked: group=%d global=%d", g.Pending(), s.Pending())
	}
}

// TestNodeFreeListBounded checks the overflow path: completing far more
// tasks than the free-list capacity on one worker spills to the shared pool
// instead of growing the list without bound.
func TestNodeFreeListBounded(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	for i := 0; i < 4*nodeFreeCap; i++ {
		w.spawn(Solo(func(*Ctx) {}), nil)
		w.runSolo(w.queues[0].PopBottom())
	}
	if got := len(w.free); got > nodeFreeCap {
		t.Fatalf("free list grew to %d, cap %d", got, nodeFreeCap)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d", s.Pending())
	}
}
