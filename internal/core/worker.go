package core

import (
	"runtime"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/deque"
	"repro/internal/reg"
	"repro/internal/stats"
	"repro/internal/teamsync"
	"repro/internal/topo"
	"repro/internal/trace"
)

// teamExec is the published description of one team task execution. The
// coordinator stores it in its cur pointer; team members poll cur, pick the
// execution up exactly once (identified by gen) and participate if their
// team-local id is below the task's actual width (Refinement 2 surplus
// members pick up but do not run).
type teamExec struct {
	task     Task
	group    *Group // quiescence group of the task (nil for group-less)
	teamSize int    // power-of-two team size
	width    int    // actual thread requirement r ≤ teamSize
	coordID  int
	gen      uint64            // scheduler-unique generation
	tid      uint64            // trace id of the task's creating event (0 untraced)
	started  atomic.Int32      // countdown: teamSize−1 member pickups
	done     atomic.Int32      // countdown: width participants finishing Run
	barrier  *teamsync.Barrier // width participants
}

// worker is one of the p scheduler workers ("hardware threads").
type worker struct {
	id    int
	sched *Scheduler

	// queues[j] holds tasks with thread requirement in (2^{j-1}, 2^j]
	// (Refinement 1: one queue per size class).
	queues []*deque.Deque[node]

	regw  reg.Word                 // the packed registration structure R (§3)
	coord atomic.Pointer[worker]   // c: current coordinator (self when free)
	cur   atomic.Pointer[teamExec] // published team execution

	st stats.Worker
	bo backoff.Backoff

	// Owner-only member-side state.
	regEpoch uint16 // epoch N observed at registration
	teamed   bool   // member of a fixed team
	lastGen  uint64 // generation of the last picked-up team execution

	// Owner-only hot-path state: this worker's in-flight shard with its
	// plain-value mirrors (see inflight.go), and the node free list (see
	// nodepool.go).
	shard       *inflightShard
	countMirror int64
	stampMirror uint64
	free        []*node
	ctxFree     []*Ctx

	// freeLen mirrors len(free) for concurrent readers (metrics gauges,
	// DumpState): the owner stores it after every free-list mutation — a
	// plain atomic store on a worker-owned line — so scrapers never race on
	// the slice header itself.
	freeLen atomic.Int64

	// state publishes the worker's coarse activity (a trace.State) for the
	// sampling profiler and DumpState — owner plain-stores at transitions,
	// the same mirror idiom as freeLen, so readers cost the worker nothing.
	state atomic.Uint32

	rngState uint64
}

func newWorker(s *Scheduler, id int) *worker {
	w := &worker{
		id:       id,
		sched:    s,
		shard:    &s.shards[id],
		free:     make([]*node, 0, nodeFreeCap),
		rngState: s.opts.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15,
	}
	w.queues = make([]*deque.Deque[node], s.topo.QueueLevels)
	for j := range w.queues {
		w.queues[j] = deque.New[node]()
	}
	w.regw.Store(reg.Idle(0))
	w.coord.Store(w)
	return w
}

// rand is a SplitMix64 step for randomized partner selection.
func (w *worker) rand() uint64 {
	w.rngState += 0x9e3779b97f4a7c15
	z := w.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (w *worker) coordp() *worker { return w.coord.Load() }

func (w *worker) casFail() { w.st.CASFailures.Add(1) }

// partnerAt returns the worker's partner at level l, honoring the Randomized
// option (Refinement 4) and missing partners for non-power-of-two p
// (Refinement 3). Returns nil if no partner exists at this level.
func (w *worker) partnerAt(l int) *worker {
	s := w.sched
	if s.opts.Randomized {
		if q := s.topo.RandPartner(w.id, l, w.rand()); q >= 0 {
			return s.workers[q]
		}
		// Randomly chosen partner is missing (p not a power of two): fall
		// back to the deterministic partner so orphaned tasks stay reachable.
	}
	q := s.topo.Partner(w.id, l)
	if q < 0 {
		return nil
	}
	return s.workers[q]
}

// spawn pushes a new task of group g onto the local queues (Ctx.Spawn).
// This is the steady-state interior hot path: the node comes from the
// worker's free list, the accounting touches only the worker's own
// in-flight shard, and nothing is allocated — the r = 1 spawn really does
// cost no more than classical work-stealing.
//
//repro:noalloc the r = 1 spawn path is the paper's zero-overhead claim; TestSpawnZeroAlloc pins it
func (w *worker) spawn(t Task, g *Group) {
	r := t.Threads()
	w.sched.validateReq(r)
	n := w.getNode()
	n.task, n.r, n.group = t, r, g
	if xt := w.sched.xt; xt.Enabled() {
		n.tid = xt.Record(w.id, trace.EvSpawn, w.id, uint32(r), 0)
	}
	// Accounting happens before the node becomes visible in any queue, so
	// no Wait can observe a transient zero while the task tree still grows.
	w.inflightAdd(1)
	if g != nil {
		g.inflight.Add(1)
	}
	w.st.Spawns.Add(1)
	w.pushNode(n)
}

// pushNode makes an already-accounted node runnable on the local queue of
// its size class. Spawns is counted at the true spawn sites (spawn and the
// admission path's accounting), not here: pushNode also serves takeInjected,
// whose takes are reported as InjectTakes, not spawns.
//
//repro:noalloc runs once per spawned or injected task
func (w *worker) pushNode(n *node) {
	w.queues[topo.Level(n.r)].PushBottom(n)
}

// loop is the worker main loop (Algorithm 1 + Algorithm 5 structure):
// member polling takes precedence, then local coordination/execution, then
// externally injected tasks, then stealing, then backoff.
func (w *worker) loop() {
	defer w.sched.wg.Done()
	if w.sched.opts.PinOSThreads {
		runtime.LockOSThread()
		defer runtime.UnlockOSThread()
	}
	s := w.sched
	for !s.done.Load() {
		if f := s.opts.Fault; f != nil {
			f(FaultWorkerLoop, w.id)
		}
		if w.coordp() != w {
			w.setState(trace.StateMember)
			w.memberStep()
			continue
		}
		w.coordinate()
		if w.coordp() != w {
			continue
		}
		if s.takeInjected(w) {
			w.bo.Reset()
			continue
		}
		w.setState(trace.StateSteal)
		w.st.StealAttempts.Add(1)
		w.ev(trace.EvStealAttempt, w.id, 0, 0)
		if w.stealTasks() {
			w.bo.Reset()
			continue
		}
		w.st.FailedAttempts.Add(1)
		w.idleWait()
	}
}

// idleWait backs off after an unsuccessful steal round.
func (w *worker) idleWait() {
	w.st.Backoffs.Add(1)
	w.setState(trace.StatePark)
	w.ev(trace.EvPark, w.id, 0, 0)
	w.bo.Wait()
	w.ev(trace.EvUnpark, w.id, 0, 0)
	w.setState(trace.StateIdle)
}

// runSolo executes a single-threaded task (the classical work-stealing fast
// path; no registration traffic, matching the paper's "no extra overhead"
// claim for r = 1). The node is recycled before the task runs — its content
// is already copied out, and freeing first lets the task's own spawns reuse
// it immediately.
//
//repro:noalloc the r = 1 execution path allocates nothing around Task.Run
func (w *worker) runSolo(n *node) {
	task, g, tid := n.task, n.group, n.tid
	w.freeNode(n)
	ctx := w.getCtx()
	ctx.w, ctx.group = w, g
	w.st.TasksRun.Add(1)
	prev := w.setState(trace.StateRun)
	if xt := w.sched.xt; xt.Enabled() {
		xt.Record(w.id, trace.EvStart, w.id, 1, tid)
	}
	task.Run(ctx)
	if xt := w.sched.xt; xt.Enabled() {
		xt.Record(w.id, trace.EvDone, w.id, 1, tid)
	}
	w.state.Store(uint32(prev)) // restore: nested runs (helping) keep the outer state
	w.putCtx(ctx)
	w.taskDone(g)
	w.bo.Reset()
}

// runTeamPart executes this worker's share of a team task.
func (w *worker) runTeamPart(exec *teamExec, lid int) {
	ctx := w.getCtx()
	ctx.w, ctx.exec, ctx.localID, ctx.group = w, exec, lid, exec.group
	w.st.TasksRun.Add(1)
	w.st.TeamTasksRun.Add(1)
	prev := w.setState(trace.StateRunTeam)
	if xt := w.sched.xt; xt.Enabled() {
		xt.Record(w.id, trace.EvStart, exec.coordID, uint32(exec.width), exec.tid)
	}
	defer exec.done.Add(-1)
	exec.task.Run(ctx)
	if xt := w.sched.xt; xt.Enabled() {
		xt.Record(w.id, trace.EvDone, exec.coordID, uint32(exec.width), exec.tid)
	}
	w.state.Store(uint32(prev))
	w.putCtx(ctx)
}

// memberStep is one polling iteration of a worker whose coordinator is
// another worker: validate the registration, pick up a published team
// execution, or help build the team (Algorithm 5 lines 7–14).
func (w *worker) memberStep() {
	c := w.coordp()
	rc := c.regw.Load()
	// Fixed-team membership is determined by block position: while c's team
	// is fixed (t > 1), the team consists of exactly the t workers of the
	// block around c, so a registered worker inside that block is a member
	// even if it has not observed the team-fix yet. Epoch (N) checks apply
	// only to registrants outside the team: coordinator transitions that
	// bump the epoch (preempt, shrink, disband) always keep a = t, i.e. they
	// revoke everyone except the surviving block.
	inTeam := rc.Team > 1 && topo.Overlap(c.id, w.id, int(rc.Team))
	switch {
	case inTeam:
		w.teamed = true
		w.regEpoch = rc.Epoch // adopt the epoch across shrinks/preempts
	case w.teamed:
		// Was teamed, now outside the (shrunk or disbanded) team.
		w.ev(trace.EvLeaveTeam, c.id, int(rc.Team), uint64(rc.Epoch))
		w.leaveCoordinator()
		return
	case rc.Epoch != w.regEpoch:
		// Non-team registration revoked (coordinator reset or yielded).
		w.ev(trace.EvRevoked, c.id, int(rc.Epoch), uint64(w.regEpoch))
		w.st.Revocations.Add(1)
		w.leaveCoordinator()
		return
	}
	if exec := c.cur.Load(); exec != nil && exec.gen != w.lastGen &&
		topo.Overlap(exec.coordID, w.id, exec.teamSize) {
		w.lastGen = exec.gen
		w.teamed = true
		lid := topo.LocalID(w.id, exec.coordID, exec.teamSize)
		w.ev(trace.EvPickup, exec.coordID, lid, exec.gen)
		exec.started.Add(-1)
		if lid < exec.width {
			w.runTeamPart(exec, lid)
		}
		w.bo.Reset()
		return
	}
	if !w.teamed {
		// Help gather the remaining members / resolve coordination conflicts.
		w.pollPartners(c, int(rc.Req))
		if w.coordp() == w {
			return
		}
	}
	w.st.Backoffs.Add(1)
	w.bo.Wait()
}

// leaveCoordinator resets the worker to self-coordination. No deregistration
// CAS is needed: it is only called after the coordinator has already revoked
// this worker's registration (epoch bump or team shrink reset the acquired
// count).
func (w *worker) leaveCoordinator() {
	w.teamed = false
	w.coord.Store(w)
	w.bo.Reset()
}
