package core

import (
	"sync/atomic"
	"testing"
)

func TestTaskGroupHelpsByStealing(t *testing.T) {
	// The waiter's own queue is empty (children spawned from another
	// worker's task), forcing Wait into its solo-steal helping path.
	s := newTest(t, Options{P: 4})
	var children atomic.Int64
	s.Run(Solo(func(ctx *Ctx) {
		var g TaskGroup
		for i := 0; i < 32; i++ {
			g.Go(ctx, func(c *Ctx) {
				for j := 0; j < 8; j++ {
					g.Go(c, func(*Ctx) { children.Add(1) })
				}
			})
		}
		g.Wait(ctx)
		if got := children.Load(); got != 32*8 {
			t.Errorf("children = %d, want %d", got, 32*8)
		}
	}))
}

func TestTaskGroupRejectsTeamTasks(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var panicked atomic.Bool
	s.Run(Solo(func(ctx *Ctx) {
		defer func() {
			if recover() != nil {
				panicked.Store(true)
			}
		}()
		var g TaskGroup
		g.Spawn(ctx, Func(2, func(*Ctx) {}))
	}))
	if !panicked.Load() {
		t.Fatal("TaskGroup must reject multi-threaded tasks")
	}
}

func TestTaskGroupEmptyWait(t *testing.T) {
	s := newTest(t, Options{P: 2})
	s.Run(Solo(func(ctx *Ctx) {
		var g TaskGroup
		g.Wait(ctx) // empty group: returns immediately
	}))
}

func TestTaskGroupSequentialBatches(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var order atomic.Int64
	var bad atomic.Int64
	s.Run(Solo(func(ctx *Ctx) {
		var g TaskGroup
		for i := 0; i < 10; i++ {
			g.Go(ctx, func(*Ctx) { order.Add(1) })
		}
		g.Wait(ctx)
		if order.Load() != 10 {
			bad.Add(1)
		}
		// Reuse the same group for a second batch.
		for i := 0; i < 10; i++ {
			g.Go(ctx, func(*Ctx) { order.Add(1) })
		}
		g.Wait(ctx)
		if order.Load() != 20 {
			bad.Add(1)
		}
	}))
	if bad.Load() != 0 {
		t.Fatal("batch boundaries violated")
	}
}

func TestTaskGroupDeeplyNested(t *testing.T) {
	s := newTest(t, Options{P: 8})
	var leaves atomic.Int64
	var rec func(c *Ctx, depth int)
	rec = func(c *Ctx, depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		var g TaskGroup
		for i := 0; i < 3; i++ {
			g.Go(c, func(cc *Ctx) { rec(cc, depth-1) })
		}
		g.Wait(c)
	}
	s.Run(Solo(func(ctx *Ctx) { rec(ctx, 5) }))
	if got := leaves.Load(); got != 243 {
		t.Fatalf("leaves = %d, want 243", got)
	}
}
