//go:build !race

package core

// raceEnabled reports that this test binary runs under the race detector.
const raceEnabled = false
