package core

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestForStaticCoversRange(t *testing.T) {
	s := newTest(t, Options{P: 8})
	const n = 10000
	hits := make([]atomic.Int32, n)
	s.Run(ForStatic(8, n, func(_ *Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	}))
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, hits[i].Load())
		}
	}
}

func TestForStaticUnevenSplit(t *testing.T) {
	s := newTest(t, Options{P: 8})
	const n = 10 // fewer indices than the 8 team members
	hits := make([]atomic.Int32, n)
	var calls atomic.Int32
	s.Run(ForStatic(8, n, func(_ *Ctx, lo, hi int) {
		calls.Add(1)
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	}))
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, hits[i].Load())
		}
	}
	if calls.Load() > 8 {
		t.Fatalf("calls = %d", calls.Load())
	}
}

func TestForStaticEmptyRange(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var calls atomic.Int32
	s.Run(ForStatic(4, 0, func(*Ctx, int, int) { calls.Add(1) })) // must not hang
	if calls.Load() != 0 {
		t.Fatal("body called on empty range")
	}
}

func TestForDynamicCoversRange(t *testing.T) {
	s := newTest(t, Options{P: 8})
	const n = 12345
	hits := make([]atomic.Int32, n)
	s.Run(ForDynamic(8, n, 100, func(_ *Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i].Add(1)
		}
	}))
	for i := range hits {
		if hits[i].Load() != 1 {
			t.Fatalf("index %d visited %d times", i, hits[i].Load())
		}
	}
}

func TestForDynamicBalancesIrregularWork(t *testing.T) {
	if runtime.NumCPU() < 2 {
		// On a single CPU one member can legitimately drain the whole chunk
		// counter before any teammate is scheduled; the balancing property
		// under test requires members that actually run concurrently.
		t.Skip("dynamic balancing needs ≥2 CPUs")
	}
	s := newTest(t, Options{P: 4})
	const n = 4096
	var perWorker [4]atomic.Int64
	s.Run(ForDynamic(4, n, 16, func(ctx *Ctx, lo, hi int) {
		perWorker[ctx.LocalID()].Add(int64(hi - lo))
		// Irregular cost: early indices are much more expensive.
		if lo < n/8 {
			x := 0
			for i := 0; i < 300000; i++ {
				x += i
			}
			_ = x
		}
	}))
	total := int64(0)
	for i := range perWorker {
		total += perWorker[i].Load()
	}
	if total != n {
		t.Fatalf("covered %d indices, want %d", total, n)
	}
	// Dynamic scheduling must spread work: no member may have processed
	// everything (the member stuck on expensive chunks gets fewer).
	for i := range perWorker {
		if perWorker[i].Load() == n {
			t.Fatal("one member processed the whole range; dynamic scheduling dead")
		}
	}
}

func TestForDynamicDefaultChunk(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var count atomic.Int64
	s.Run(ForDynamic(4, 1000, 0, func(_ *Ctx, lo, hi int) {
		count.Add(int64(hi - lo))
	}))
	if count.Load() != 1000 {
		t.Fatalf("covered %d", count.Load())
	}
}

func TestTeamForCollective(t *testing.T) {
	s := newTest(t, Options{P: 8})
	const n = 999
	hits := make([]atomic.Int32, n)
	var after atomic.Int32
	s.Run(Func(4, func(ctx *Ctx) {
		ctx.TeamFor(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				hits[i].Add(1)
			}
		})
		// After TeamFor's barrier, the whole range must be covered.
		for i := range hits {
			if hits[i].Load() != 1 {
				after.Add(1)
			}
		}
	}))
	if after.Load() != 0 {
		t.Fatalf("%d coverage violations observed after TeamFor", after.Load())
	}
}

func TestTeamForSolo(t *testing.T) {
	s := newTest(t, Options{P: 2})
	var got atomic.Int64
	s.Run(Solo(func(ctx *Ctx) {
		ctx.TeamFor(100, func(lo, hi int) { got.Add(int64(hi - lo)) })
	}))
	if got.Load() != 100 {
		t.Fatalf("solo TeamFor covered %d", got.Load())
	}
}

func TestForStaticNestedSpawns(t *testing.T) {
	// Loop bodies may spawn follow-up tasks.
	s := newTest(t, Options{P: 8})
	var leaves atomic.Int64
	s.Run(ForStatic(4, 16, func(ctx *Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			ctx.Spawn(Solo(func(*Ctx) { leaves.Add(1) }))
		}
	}))
	s.Wait()
	if leaves.Load() != 16 {
		t.Fatalf("leaves = %d", leaves.Load())
	}
}
