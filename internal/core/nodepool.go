package core

import "sync"

// Node recycling.
//
// Every spawned task is wrapped in a node for the queues. With one node
// heap-allocated per spawn, a fork-join sort of n elements allocates
// Θ(n/cutoff) nodes — pure GC pressure on the hottest path in the repo.
// Nodes are instead recycled: the worker that completes a task puts the node
// on its own free list (owner-only, no synchronization), and the next
// spawn pops it back off. The list is bounded; overflow spills in batches to
// a shared sync.Pool, which also feeds the external submission path
// (admission happens on client goroutines that own no free list) and
// rebalances when spawner and runner are persistently different workers.
//
// Recycling is safe against stale deque references: a Chase–Lev slot may
// retain a pointer to a popped node, but thieves dereference a slot's value
// only after winning the top CAS, which cannot succeed for an index that
// was already popped. PopBottom additionally clears the slot on the owner
// path (see internal/deque), so completed nodes are not retained by the
// ring either.

const (
	// nodeFreeCap bounds a worker's free list.
	nodeFreeCap = 256
	// nodeFreeLow is the level a full list is trimmed to; the spilled batch
	// goes to the shared pool.
	nodeFreeLow = 128
	// ctxFreeCap bounds a worker's Ctx free list. Depth = nesting of
	// task executions on one worker (TaskGroup.Wait helping inside a
	// running task), which is shallow in practice.
	ctxFreeCap = 64
)

// sharedNodes is the overflow pool behind the per-worker free lists.
var sharedNodes = sync.Pool{New: func() any { return new(node) }}

// getNode returns a cleared node: from the worker's own free list if
// possible (the steady-state interior path — no locks, no allocation),
// otherwise from the shared pool.
//
//repro:noalloc steady-state spawns must recycle, never allocate
func (w *worker) getNode() *node {
	if k := len(w.free) - 1; k >= 0 {
		n := w.free[k]
		w.free[k] = nil
		w.free = w.free[:k]
		w.freeLen.Store(int64(k))
		return n
	}
	return sharedNodes.Get().(*node)
}

// freeNode recycles n after its task completed (or was handed off to a team
// execution). The reference fields are cleared so a parked node never
// retains a finished task or its captured buffers.
//
//repro:noalloc runs once per task completion
func (w *worker) freeNode(n *node) {
	n.task, n.group, n.tid = nil, nil, 0
	if len(w.free) < nodeFreeCap {
		w.free = append(w.free, n) //repro:allow capacity-bounded by nodeFreeCap; grows only until warm
		w.freeLen.Store(int64(len(w.free)))
		return
	}
	for i := nodeFreeLow; i < len(w.free); i++ {
		sharedNodes.Put(w.free[i])
		w.free[i] = nil
	}
	w.free = w.free[:nodeFreeLow]
	w.freeLen.Store(nodeFreeLow)
	sharedNodes.Put(n)
}

// getCtx returns a task execution context from the worker's free list. A
// stack-allocated Ctx would be free, but &ctx passed to an interface
// method always escapes, so without recycling every task execution heap-
// allocates one Ctx. Owner-only; nested executions (a TaskGroup.Wait
// helping inside a running task) simply draw additional contexts.
//
//repro:noalloc runs once per task execution
func (w *worker) getCtx() *Ctx {
	if k := len(w.ctxFree) - 1; k >= 0 {
		c := w.ctxFree[k]
		w.ctxFree = w.ctxFree[:k]
		return c
	}
	return new(Ctx) //repro:allow cold refill; steady state always hits the free list
}

// putCtx recycles c after Task.Run returned. Tasks must not retain their
// context beyond Run (see the Ctx contract in task.go).
//
//repro:noalloc runs once per task execution
func (w *worker) putCtx(c *Ctx) {
	*c = Ctx{}
	if len(w.ctxFree) < ctxFreeCap {
		w.ctxFree = append(w.ctxFree, c) //repro:allow capacity-bounded by ctxFreeCap; grows only until warm
	}
}

// getNodeShared returns a cleared node for the external submission path
// (no worker identity available).
func getNodeShared() *node {
	return sharedNodes.Get().(*node)
}

// putNodeShared recycles a node that was never published to any queue
// (rejected or dropped at admission).
func putNodeShared(n *node) {
	n.task, n.group, n.tid = nil, nil, 0
	sharedNodes.Put(n)
}
