// Package core implements work-stealing with deterministic team-building,
// the scheduling algorithm of Wimmer & Träff, "Work-stealing for mixed-mode
// parallelism by deterministic team-building" (SPAA 2011).
//
// The scheduler runs p workers. Tasks declare a thread requirement r ≥ 1 at
// spawn time. Tasks with r = 1 are executed exactly as in classical
// work-stealing (local deques, stealing by idle thieves). Tasks with r > 1
// are executed by a team of r consecutively numbered workers. Idle workers
// attempt to join teams by registering at a coordinating worker with a
// single CAS on the coordinator's packed registration word; partners for
// stealing and team-building are chosen deterministically by flipping one
// bit of the worker id per level, so a team for a task of size r always
// consists of the workers k·r … (k+1)·r−1 of the block containing the
// coordinator.
//
// The implementation realizes the paper's Algorithms 1–9 plus all four
// refinements: per-size local queues (Refinement 1, always on), arbitrary
// thread requirements via rounded-up teams (Refinement 2), an arbitrary
// number of workers (Refinement 3), and optional randomized partner
// selection (Refinement 4). See DESIGN.md for the documented deviations.
package core

import (
	"fmt"

	"repro/internal/topo"
	"repro/internal/trace"
)

// Task is a unit of work with a fixed thread requirement.
//
// Run is invoked once on every participating worker: for r = 1 tasks it runs
// on a single worker; for r > 1 tasks it runs simultaneously on all r team
// members, each with a distinct ctx.LocalID() in 0 … r−1. The team members
// may coordinate through ctx.Barrier() and through shared state of the Task
// value itself.
type Task interface {
	// Threads returns the number of workers r ≥ 1 this task requires.
	// It must be constant for a given task value.
	Threads() int
	// Run executes the task. For team tasks it is called concurrently by
	// all participating workers.
	Run(ctx *Ctx)
}

// node is the queue entry wrapping a task; r caches Threads(); group is the
// quiescence group the task was spawned into (nil for group-less tasks).
// tid is the trace id of the event that created the task (0 while tracing is
// off); enq is the admission timestamp (trace.Now) of externally submitted
// tasks, consumed by the scheduler's admission-wait histogram at take time.
// gepoch is the group's cancellation epoch observed at admission
// (enqueueLocked, under admitMu); takeInjected revokes the node instead of
// running it when the stamp has gone stale (see cancel.go). Interior spawns
// never read it.
type node struct {
	task   Task
	r      int
	group  *Group
	tid    uint64
	enq    int64
	gepoch uint64
}

// funcTask adapts a function to the Task interface.
type funcTask struct {
	r  int
	fn func(*Ctx)
}

func (t *funcTask) Threads() int { return t.r }
func (t *funcTask) Run(ctx *Ctx) { t.fn(ctx) }

// Func returns a Task requiring r threads that executes fn.
func Func(r int, fn func(*Ctx)) Task {
	if r < 1 {
		panic(fmt.Sprintf("core: task thread requirement %d < 1", r))
	}
	return &funcTask{r: r, fn: fn}
}

// Solo returns a classical single-threaded task.
func Solo(fn func(*Ctx)) Task { return Func(1, fn) }

// Ctx is the per-execution context handed to Task.Run. It identifies the
// executing worker, the task's team, and allows spawning further tasks.
//
// A Ctx is only valid for the duration of the Run call it was passed to:
// contexts are recycled on per-worker free lists (the spawn→run hot path
// allocates nothing), so a task must not retain its Ctx after Run returns.
type Ctx struct {
	w       *worker
	exec    *teamExec // nil for r = 1 executions
	localID int
	group   *Group // quiescence group of the running task (nil for group-less)
}

// Spawn pushes t onto the executing worker's local queue for the level
// matching t.Threads() (Refinement 1). The spawned task joins the running
// task's group (see Group), so a group's Wait covers the whole descendant
// tree. It panics if the requirement exceeds Scheduler.MaxTeam().
//
//repro:noalloc the public face of the zero-alloc spawn path
func (c *Ctx) Spawn(t Task) { c.w.spawn(t, c.group) }

// Group returns the quiescence group the running task belongs to, or nil
// for tasks spawned outside any group (Scheduler.Spawn). Tasks spawned via
// Ctx.Spawn inherit it automatically; it is exposed so a task can hand its
// group to helpers that spawn on the task's behalf (the Group forms of the
// sorting packages).
func (c *Ctx) Group() *Group { return c.group }

// LocalID returns this worker's id within the task's team, 0 … TeamSize()−1.
// It is 0 for single-threaded tasks.
func (c *Ctx) LocalID() int { return c.localID }

// TeamSize returns the number of workers executing this task together
// (the task's thread requirement r). It is 1 for single-threaded tasks.
func (c *Ctx) TeamSize() int {
	if c.exec == nil {
		return 1
	}
	return c.exec.width
}

// WorkerID returns the global id of the executing worker (0 … p−1).
func (c *Ctx) WorkerID() int { return c.w.id }

// Scheduler returns the scheduler executing this task.
func (c *Ctx) Scheduler() *Scheduler { return c.w.sched }

// Barrier blocks until all TeamSize() workers of this task have reached the
// barrier. It is a no-op for single-threaded tasks. The barrier is reusable
// for any number of phases.
//
//repro:noalloc team phases hit the barrier per chunk; it must stay alloc-free
func (c *Ctx) Barrier() {
	if c.exec == nil {
		return
	}
	c.w.ev(trace.EvBarrierEnter, c.exec.coordID, c.localID, c.exec.tid)
	c.exec.barrier.Wait()
	c.w.ev(trace.EvBarrierLeave, c.exec.coordID, c.localID, c.exec.tid)
}

// TeamLeft returns the global worker id of the team member with LocalID 0.
func (c *Ctx) TeamLeft() int {
	if c.exec == nil {
		return c.w.id
	}
	return topo.TeamLeft(c.exec.coordID, c.exec.teamSize)
}
