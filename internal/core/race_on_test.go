//go:build race

package core

// raceEnabled reports that this test binary runs under the race detector
// (which instruments allocations, so alloc-count assertions do not hold).
const raceEnabled = true
