package core

import "sync/atomic"

// Sharded in-flight accounting.
//
// The scheduler used to keep one global atomic task counter, touched twice
// per task (spawn increment, completion decrement). Under millions of
// fine-grained r = 1 tasks that one cache line is written by every worker on
// every task — a per-task cost far above the "single extra CAS per team
// join" the paper budgets for the whole team protocol, and the analogue of
// the per-operation locking the Chase–Lev deque removes from the steal path.
//
// Instead, every worker owns one cache-line-padded shard and records its own
// spawns (+1) and completions (−1) there; a task stolen by another worker is
// incremented on the spawner's shard and decremented on the runner's, so
// individual shards roam negative and only the sum is meaningful. External
// submissions (admission path, serialized by admitMu) use one extra shard.
// Steady-state interior tasks therefore write only lines owned by their own
// core: the hot path has no globally shared write at all.
//
// Quiescence (the sum reaching zero) is detected by a two-phase sum-scan
// validated against per-shard generation stamps, and only when a waiter is
// actually parked (quiesce.armed): each shard update is bracketed by two
// stamp increments (odd while in progress, seqlock-style), so a scan whose
// stamp total is identical before and after summing — with no odd stamp
// seen — observed every shard value simultaneously at some instant between
// the two passes. A validated zero sum therefore still means true
// quiescence, exactly the invariant Scheduler.Wait relies on.
//
// Liveness: if a scan is invalidated by a concurrent update, that update's
// own completion (or the completion of the work it spawned) re-runs the
// armed check after finishing its shard write. The chronologically last
// completion scan starts after every shard update has finished, sees stable
// stamps, and releases the gate — no zero transition is ever missed.

// inflightShard is one worker's slice of the global in-flight count. The
// padding keeps adjacent shards on separate cache lines, so the owner's
// stores never invalidate another worker's line.
//
//repro:padded shards sit in one array; stride must be a cache-line multiple
type inflightShard struct {
	count atomic.Int64 // spawns minus completions recorded by the owner
	//repro:seqlock update generation: odd while an update is in flight
	stamp atomic.Uint64
	_     [112]byte // pad the struct to two cache lines
}

// inflightAdd records d (±1) on the worker's own shard. Owner-only: the
// mirrors make every write a plain store, and the stamp bracket (odd →
// stable value → even) is what lets the quiescence scan validate itself
// without any shared state.
//
//repro:noalloc runs twice per task; an allocation here is a hot-path regression
func (w *worker) inflightAdd(d int64) {
	h := w.shard
	w.stampMirror++
	h.stamp.Store(w.stampMirror) // odd: update in progress
	w.countMirror += d
	h.count.Store(w.countMirror)
	w.stampMirror++
	h.stamp.Store(w.stampMirror) // even: stable
}

// extInflightAdd records d on the external-submission shard. Callers hold
// admitMu (the admission path is the one place tasks enter from outside a
// worker), so the RMWs are uncontended; atomics keep the scan race-free.
func (s *Scheduler) extInflightAdd(d int64) {
	h := &s.shards[len(s.shards)-1]
	h.stamp.Add(1)
	h.count.Add(d)
	h.stamp.Add(1)
}

// quiescent reports whether the total in-flight count was zero at some
// instant during the call. False negatives are possible under concurrent
// updates (and harmless: the racing update's own completion re-checks);
// false positives are not — see the validation argument above.
func (s *Scheduler) quiescent() bool {
	var sum int64
	var t1, t2 uint64
	for i := range s.shards {
		h := &s.shards[i]
		st := h.stamp.Load()
		if st&1 != 0 {
			return false // an update is mid-flight: not quiescent now
		}
		t1 += st
		sum += h.count.Load()
	}
	if sum != 0 {
		return false
	}
	for i := range s.shards {
		t2 += s.shards[i].stamp.Load()
	}
	return t1 == t2 // stamps are monotone: equal sums mean no shard moved
}

// inflightSum returns the racy sum of all shards (diagnostics; exact only
// when nothing is running).
func (s *Scheduler) inflightSum() int64 {
	var sum int64
	for i := range s.shards {
		sum += s.shards[i].count.Load()
	}
	return sum
}
