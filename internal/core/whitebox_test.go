package core

import (
	"testing"

	"repro/internal/reg"
	"repro/internal/teamsync"
)

// White-box protocol tests: these drive the registration state machine
// single-threaded on an unstarted scheduler, pinning down the exact
// transition semantics of Algorithms 6–9 that the concurrent tests can only
// observe statistically.

// stopped builds a scheduler whose workers never run; the test acts as every
// "thread" by calling worker methods directly.
func stopped(p int) *Scheduler {
	return build(Options{P: p})
}

func (w *worker) push(t Task) { w.spawn(t, nil) } // test helper

func TestWBInitialState(t *testing.T) {
	s := stopped(8)
	for _, w := range s.workers {
		if w.coordp() != w {
			t.Fatal("workers must start self-coordinated")
		}
		if r := w.regw.Load(); r != reg.Idle(0) {
			t.Fatalf("initial reg = %v", r)
		}
		if got := w.chooseLevel(w.regw.Load()); got != -1 {
			t.Fatalf("empty worker chose level %d", got)
		}
	}
}

func TestWBChooseLevel(t *testing.T) {
	s := stopped(8)
	w := s.workers[0]
	w.push(Func(4, func(*Ctx) {}))
	if got := w.chooseLevel(w.regw.Load()); got != 2 {
		t.Fatalf("level = %d, want 2", got)
	}
	w.push(Solo(func(*Ctx) {}))
	if got := w.chooseLevel(w.regw.Load()); got != 0 {
		t.Fatalf("smaller task must win: level = %d, want 0", got)
	}
	// With a fixed team of 4, the team's level wins over level 0
	// (Refinement 1: the team keeps draining its queue).
	w.regw.Store(reg.R{Req: 4, Acq: 4, Team: 4, Epoch: 1})
	if got := w.chooseLevel(w.regw.Load()); got != 2 {
		t.Fatalf("team persistence violated: level = %d, want 2", got)
	}
}

func TestWBChooseLevelSkipsUnhostable(t *testing.T) {
	s := stopped(6) // blocks of 4 fit only at workers 0–3
	w := s.workers[4]
	w.push(Func(4, func(*Ctx) {}))
	if got := w.chooseLevel(w.regw.Load()); got != -1 {
		t.Fatalf("worker 4 cannot host a 4-block in p=6; level = %d", got)
	}
	w0 := s.workers[0]
	w0.push(Func(4, func(*Ctx) {}))
	if got := w0.chooseLevel(w0.regw.Load()); got != 2 {
		t.Fatalf("worker 0 must host the 4-task; level = %d", got)
	}
}

func TestWBRegistrationRoundTrip(t *testing.T) {
	s := stopped(4)
	coord, thief := s.workers[0], s.workers[1]
	coord.regw.Store(reg.R{Req: 4, Acq: 1, Team: 1, Epoch: 5})
	if !thief.tryRegister(coord) {
		t.Fatal("registration failed")
	}
	if thief.coordp() != coord || thief.regEpoch != 5 || thief.teamed {
		t.Fatalf("thief state wrong: coord=%d epoch=%d teamed=%v",
			thief.coordp().id, thief.regEpoch, thief.teamed)
	}
	if r := coord.regw.Load(); r.Acq != 2 {
		t.Fatalf("coordinator acq = %d, want 2", r.Acq)
	}
	// Deregistration undoes the count.
	if !thief.deregister(coord) {
		t.Fatal("deregister failed")
	}
	if r := coord.regw.Load(); r.Acq != 1 {
		t.Fatalf("after deregister acq = %d, want 1", r.Acq)
	}
}

func TestWBRegisterRejections(t *testing.T) {
	s := stopped(8)
	coord := s.workers[0]
	// Not coordinating (Req = 1).
	if s.workers[1].tryRegister(coord) {
		t.Fatal("registered at a non-coordinating worker")
	}
	// Full team (Acq == Req).
	coord.regw.Store(reg.R{Req: 2, Acq: 2, Team: 2, Epoch: 0})
	if s.workers[1].tryRegister(coord) {
		t.Fatal("registered at a full team")
	}
	// Out-of-block thief: worker 4 is outside the 4-block of worker 0.
	coord.regw.Store(reg.R{Req: 4, Acq: 1, Team: 1, Epoch: 0})
	if s.workers[4].tryRegister(coord) {
		t.Fatal("out-of-block registration accepted")
	}
	if s.workers[3].tryRegister(coord) == false {
		t.Fatal("in-block registration rejected")
	}
}

func TestWBDeregisterBlockedByFixedTeam(t *testing.T) {
	s := stopped(4)
	coord, member := s.workers[0], s.workers[1]
	coord.regw.Store(reg.R{Req: 2, Acq: 1, Team: 1, Epoch: 7})
	if !member.tryRegister(coord) {
		t.Fatal("register")
	}
	// Coordinator fixes the team: the member may no longer leave, even
	// though its own teamed flag is still false (the race of Algorithm 9).
	coord.regw.Store(reg.R{Req: 2, Acq: 2, Team: 2, Epoch: 7})
	if member.deregister(coord) {
		t.Fatal("member left a fixed team")
	}
}

func TestWBDeregisterAfterRevocation(t *testing.T) {
	s := stopped(4)
	coord, member := s.workers[0], s.workers[1]
	coord.regw.Store(reg.R{Req: 4, Acq: 1, Team: 1, Epoch: 1})
	if !member.tryRegister(coord) {
		t.Fatal("register")
	}
	// Coordinator revokes (epoch bump, acq reset).
	coord.regw.Store(reg.R{Req: 1, Acq: 1, Team: 1, Epoch: 2})
	if !member.deregister(coord) {
		t.Fatal("deregister after revocation must succeed (as a no-op)")
	}
	if r := coord.regw.Load(); r.Acq != 1 {
		t.Fatalf("revoked deregistration must not decrement: %v", r)
	}
}

func TestWBMemberStepPickup(t *testing.T) {
	s := stopped(2)
	coord, member := s.workers[0], s.workers[1]
	ran := false
	task := Func(2, func(ctx *Ctx) {
		if ctx.WorkerID() == 1 {
			ran = true
			if ctx.LocalID() != 1 || ctx.TeamSize() != 2 {
				t.Errorf("lid=%d size=%d", ctx.LocalID(), ctx.TeamSize())
			}
		}
	})
	coord.push(task)
	coord.regw.Store(reg.R{Req: 2, Acq: 1, Team: 1, Epoch: 0})
	if !member.tryRegister(coord) {
		t.Fatal("register")
	}
	// Fix the team and publish by hand (what gather+publishAndRun do),
	// with the coordinator's own run omitted.
	r := coord.regw.Load()
	if !coord.regw.CAS(r, reg.R{Req: 2, Acq: 2, Team: 2, Epoch: 0}) {
		t.Fatal("fix CAS")
	}
	n := coord.queues[1].PopBottom()
	exec := &teamExec{task: n.task, teamSize: 2, width: 2, coordID: 0, gen: s.nextGen()}
	exec.started.Store(1)
	exec.done.Store(2)
	exec.barrier = teamsync.NewBarrier(1) // member-side run only in this test
	coord.cur.Store(exec)

	member.memberStep()
	if !ran {
		t.Fatal("member did not pick up the published execution")
	}
	if exec.started.Load() != 0 || exec.done.Load() != 1 {
		t.Fatalf("countdowns: started=%d done=%d", exec.started.Load(), exec.done.Load())
	}
	if !member.teamed || member.lastGen != exec.gen {
		t.Fatal("member team state not updated")
	}
	// A second step must not re-execute the same generation.
	ran = false
	member.memberStep()
	if ran {
		t.Fatal("member re-executed the same generation")
	}
}

func TestWBMemberLeavesOnDisband(t *testing.T) {
	s := stopped(2)
	coord, member := s.workers[0], s.workers[1]
	coord.regw.Store(reg.R{Req: 2, Acq: 1, Team: 1, Epoch: 0})
	if !member.tryRegister(coord) {
		t.Fatal("register")
	}
	member.teamed = true // simulate a completed pickup
	coord.regw.Store(reg.R{Req: 1, Acq: 1, Team: 1, Epoch: 1})
	member.memberStep()
	if member.coordp() != member || member.teamed {
		t.Fatal("member did not leave after disband")
	}
}

func TestWBMemberSurvivesShrinkInside(t *testing.T) {
	s := stopped(4)
	coord, member := s.workers[0], s.workers[1]
	coord.regw.Store(reg.R{Req: 4, Acq: 4, Team: 4, Epoch: 0})
	member.coord.Store(coord)
	member.teamed = true
	member.regEpoch = 0
	// Shrink 4 → 2: worker 1 stays (block {0,1}), epoch bumps.
	coord.regw.Store(reg.R{Req: 2, Acq: 2, Team: 2, Epoch: 1})
	member.memberStep()
	if member.coordp() != coord || !member.teamed || member.regEpoch != 1 {
		t.Fatal("in-block member must survive the shrink and adopt the epoch")
	}
	// Worker 2 is outside the shrunk team and must leave.
	outside := s.workers[2]
	outside.coord.Store(coord)
	outside.teamed = true
	outside.regEpoch = 0
	outside.memberStep()
	if outside.coordp() != outside || outside.teamed {
		t.Fatal("out-of-block member must leave after the shrink")
	}
}

func TestWBRegisteredMemberAdoptsFixedTeam(t *testing.T) {
	// The deadlock scenario of the development log: a registered (not yet
	// teamed) member must recognize team membership by block position even
	// across epoch bumps (preempt transitions keep a = t).
	s := stopped(2)
	coord, member := s.workers[0], s.workers[1]
	coord.regw.Store(reg.R{Req: 2, Acq: 1, Team: 1, Epoch: 3})
	if !member.tryRegister(coord) {
		t.Fatal("register")
	}
	// Fix team at epoch 3, then preempt-style epoch bump keeping a = t.
	coord.regw.Store(reg.R{Req: 2, Acq: 2, Team: 2, Epoch: 4})
	member.memberStep()
	if member.coordp() != coord {
		t.Fatal("in-team member wrongly treated the epoch bump as revocation")
	}
	if !member.teamed || member.regEpoch != 4 {
		t.Fatalf("member must adopt the team: teamed=%v epoch=%d", member.teamed, member.regEpoch)
	}
}

func TestWBStealFromPartner(t *testing.T) {
	s := stopped(8)
	victim, thief := s.workers[1], s.workers[0] // partners at level 0
	for i := 0; i < 8; i++ {
		victim.push(Solo(func(*Ctx) {}))
	}
	if !thief.stealTasks() {
		t.Fatal("steal failed")
	}
	// Level-0 steal: min(size/2, 2^0) = 1 task, executed directly.
	if got := thief.st.TasksStolen.Load(); got != 1 {
		t.Fatalf("stole %d tasks, want 1", got)
	}
	if victim.queues[0].Size() != 7 {
		t.Fatalf("victim keeps %d", victim.queues[0].Size())
	}
	if thief.st.TasksRun.Load() != 1 {
		t.Fatal("last stolen task must run immediately")
	}
}

func TestWBStealAmountGrowsWithLevel(t *testing.T) {
	s := stopped(8)
	victim, thief := s.workers[4], s.workers[0] // partners at level 2
	for i := 0; i < 32; i++ {
		victim.push(Solo(func(*Ctx) {}))
	}
	if !thief.stealTasks() {
		t.Fatal("steal failed")
	}
	// Level-2 steal: min(32/2, 2^2) = 4 tasks.
	if got := thief.st.TasksStolen.Load(); got != 4 {
		t.Fatalf("stole %d tasks, want 4", got)
	}
}

func TestWBStealRegistersForTeamInstead(t *testing.T) {
	s := stopped(8)
	coord, thief := s.workers[0], s.workers[1]
	coord.push(Func(8, func(*Ctx) {}))
	coord.regw.Store(reg.R{Req: 8, Acq: 1, Team: 1, Epoch: 0})
	if !thief.stealTasks() {
		t.Fatal("stealTasks found nothing")
	}
	if thief.coordp() != coord {
		t.Fatal("thief should have registered, not stolen")
	}
	if coord.queues[3].Size() != 1 {
		t.Fatal("the team task must not be stolen by a block member")
	}
}

func TestWBSameTeamStealForbidden(t *testing.T) {
	s := stopped(8)
	victim, thief := s.workers[1], s.workers[0]
	victim.push(Func(2, func(*Ctx) {})) // team {0,1} would contain the thief
	if thief.stealTasks() {
		// Only registration would be legitimate, but victim is not
		// coordinating (Req=1 since push does not advertise).
		t.Fatal("thief stole a task whose team contains it")
	}
	if victim.queues[1].Size() != 1 {
		t.Fatal("task must remain with the victim")
	}
}

func TestWBStealTeamTaskFromOutsideBlock(t *testing.T) {
	s := stopped(8)
	victim, thief := s.workers[0], s.workers[4] // different 4-blocks
	victim.push(Func(4, func(*Ctx) {}))
	if !thief.stealTasks() {
		t.Fatal("outside thief must be able to steal the team task")
	}
	if thief.queues[2].Size() != 1 {
		t.Fatal("stolen team task must be enqueued, not run directly")
	}
}

func TestWBConflictSmallerIDWins(t *testing.T) {
	s := stopped(2)
	a, b := s.workers[0], s.workers[1]
	a.regw.Store(reg.R{Req: 2, Acq: 1, Team: 1, Epoch: 0})
	b.regw.Store(reg.R{Req: 2, Acq: 1, Team: 1, Epoch: 0})
	// b polls its partners while coordinating: a has the same size and the
	// smaller id, so b must yield and register with a.
	b.pollPartners(b, 2)
	if b.coordp() != a {
		t.Fatalf("b should have yielded to a; coord=%d", b.coordp().id)
	}
	if r := b.regw.Load(); r.Req != 1 || r.Epoch != 1 {
		t.Fatalf("loser must reset its advertisement: %v", r)
	}
	if r := a.regw.Load(); r.Acq != 2 {
		t.Fatalf("winner must have gained the loser: %v", r)
	}
	// The winner polling sees no conflict (it wins) and stays.
	a.pollPartners(a, 2)
	if a.coordp() != a {
		t.Fatal("winner must not yield")
	}
}

func TestWBConflictSmallerTaskWins(t *testing.T) {
	s := stopped(4)
	big, small := s.workers[0], s.workers[1]
	big.regw.Store(reg.R{Req: 4, Acq: 1, Team: 1, Epoch: 0})
	small.regw.Store(reg.R{Req: 2, Acq: 1, Team: 1, Epoch: 0})
	// big needs worker 1's block; worker 1 coordinates a smaller task that
	// needs big (overlap(1, 0, 2)): the smaller task wins even though its
	// coordinator id is larger.
	big.pollPartners(big, 4)
	if big.coordp() != small {
		t.Fatalf("big must yield to the smaller task; coord=%d", big.coordp().id)
	}
}

func TestWBPollHelpsDrainSmallTasks(t *testing.T) {
	s := stopped(8)
	coord, busy := s.workers[0], s.workers[1]
	coord.regw.Store(reg.R{Req: 8, Acq: 1, Team: 1, Epoch: 0})
	for i := 0; i < 6; i++ {
		busy.push(Solo(func(*Ctx) {}))
	}
	// The gathering coordinator helps the busy partner empty its queue.
	coord.pollPartners(coord, 8)
	if coord.st.TasksStolen.Load() == 0 {
		t.Fatal("coordinator did not help-steal from the busy partner")
	}
	if coord.queues[0].Empty() {
		t.Fatal("help-stolen tasks must be enqueued locally")
	}
}

func TestWBGatherPreemptedBySmallerTask(t *testing.T) {
	s := stopped(8)
	w := s.workers[0]
	w.push(Func(8, func(*Ctx) {}))
	w.regw.Store(reg.R{Req: 8, Acq: 3, Team: 1, Epoch: 2})
	w.push(Solo(func(*Ctx) {}))
	if pl := w.preemptLevel(w.regw.Load(), 3); pl != 0 {
		t.Fatalf("preempt level = %d, want 0", pl)
	}
	// With a persistent team of 2, a level-0 task must NOT preempt
	// (the team keeps working its own level first).
	w.regw.Store(reg.R{Req: 8, Acq: 3, Team: 2, Epoch: 2})
	if pl := w.preemptLevel(w.regw.Load(), 3); pl != -1 {
		t.Fatalf("preempt level = %d, want -1 (below team level)", pl)
	}
	// A task at the team's own level does preempt the gathering.
	w.push(Func(2, func(*Ctx) {}))
	if pl := w.preemptLevel(w.regw.Load(), 3); pl != 1 {
		t.Fatalf("preempt level = %d, want 1", pl)
	}
}

func TestWBDropCoordinationRevokes(t *testing.T) {
	s := stopped(4)
	w := s.workers[0]
	w.regw.Store(reg.R{Req: 4, Acq: 3, Team: 2, Epoch: 9})
	w.dropCoordination(w.regw.Load())
	r := w.regw.Load()
	if r != (reg.R{Req: 1, Acq: 1, Team: 1, Epoch: 10}) {
		t.Fatalf("after drop: %v", r)
	}
	// Dropping an idle registration is a no-op (no epoch bump).
	w.dropCoordination(w.regw.Load())
	if got := w.regw.Load().Epoch; got != 10 {
		t.Fatalf("idle drop bumped epoch to %d", got)
	}
}

func TestWBShrinkAdvertisementRevokesOutsiders(t *testing.T) {
	// Re-advertising a smaller requirement must reset a to t and bump N
	// (the §3 rule whose omission caused the development-log deadlock).
	s := stopped(8)
	w := s.workers[0]
	w.push(Func(2, func(*Ctx) {}))
	w.push(Func(8, func(*Ctx) {})) // level 3 advertised first? No: choose picks level 1
	w.regw.Store(reg.R{Req: 8, Acq: 5, Team: 1, Epoch: 0})
	// coordinate() would now pick level 1 (the smaller task): simulate its
	// advertisement transition.
	r := w.regw.Load()
	nr := r
	nr.Req = 2
	nr.Acq = r.Team
	nr.Epoch = r.Epoch + 1
	if !w.regw.CAS(r, nr) {
		t.Fatal("CAS")
	}
	got := w.regw.Load()
	if got.Acq != 1 || got.Epoch != 1 {
		t.Fatalf("shrinking advertisement must revoke: %v", got)
	}
}
