package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/backoff"
	"repro/internal/trace"
)

// This file implements group cancellation and deadlines. A client that gives
// up — a dropped connection, a passed deadline, an abandoned batch — must be
// able to get its admitted work back out of the scheduler instead of letting
// workers burn CPU on answers nobody reads.
//
// The mechanism is a per-group cancellation epoch. Every node admitted
// through the inject path is stamped with its group's epoch at admission
// time (enqueueLocked); Cancel bumps the epoch under the admission lock, so
// a take that observes a stale stamp knows the node was admitted before the
// cancel and revokes it: the node is recycled without ever executing, and
// its in-flight accounting is unwound exactly like a completion (see
// finishRevoke in admission.go). Already-running tasks are not interrupted —
// Go cannot preempt a task safely — but observe Ctx.Canceled cooperatively
// at their recursion points. Blocking spawns parked on admission
// backpressure wake on cancel with the typed cause, so a deadline bounds
// not only execution but also the time spent waiting for admission room.
//
// The epoch is even while the group is live and odd once canceled; Reset
// bumps it back to even so reused groups revoke any stragglers stamped in
// the canceled era (the comparison at take time is full equality, not the
// parity bit).

// Typed cancellation errors. Group.Cancel(nil) records ErrCanceled; a fired
// Deadline records ErrDeadlineExceeded; a custom cause is returned verbatim
// by Wait/WaitErr and the blocking spawn forms.
var (
	// ErrCanceled reports that the group was canceled with no specific cause.
	ErrCanceled = errors.New("core: group canceled")
	// ErrDeadlineExceeded reports that the group's deadline passed.
	ErrDeadlineExceeded = errors.New("core: group deadline exceeded")
)

// Cancel cancels the group: admitted-but-not-yet-started tasks are revoked
// as workers reach them (never executed; observable as repro_revoked_total),
// parked blocking spawns of this group wake and return the cause, new
// submissions are refused with the cause, and running tasks observe
// Ctx.Canceled. cause may be nil, recording ErrCanceled. Cancel returns true
// if this call canceled the group, false if it was already canceled (the
// first cause wins). It is safe for concurrent use and never blocks on task
// execution.
//
// Cancellation does not interrupt running tasks — a canceled group still
// needs its Wait to drain the tasks that had already started (they should
// notice Ctx.Canceled and return early); Wait does not run new ones.
func (g *Group) Cancel(cause error) bool {
	return g.cancel(cause, trace.EvGroupCancel)
}

func (g *Group) cancel(cause error, kind trace.Kind) bool {
	if cause == nil {
		cause = ErrCanceled
	}
	g.cancelMu.Lock()
	defer g.cancelMu.Unlock()
	if atomic.LoadUint64(&g.epoch)&1 == 1 {
		return false // already canceled; first cause wins
	}
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	// The cause is published by the epoch bump below: it is written before
	// the bump, and readers look at it only after observing an odd epoch, so
	// the atomic add orders the pair.
	g.cause = cause
	s := g.s
	s.admitMu.Lock()
	// Bump under admitMu: admission (enqueueLocked) stamps node epochs and
	// takeInjected compares them under the same lock, so every node is
	// either stamped before the cancel (and revoked at take) or refused
	// after it — no admit/cancel race can leak an unrevokable node.
	atomic.AddUint64(&g.epoch, 1)
	s.admit.Canceled.Add(1)
	if xt := s.xt; xt.Enabled() {
		// Admission ring (ring P): owned by the admitMu holder, like
		// enqueueLocked's events.
		xt.Record(s.topo.P, kind, 0, uint32(g.gid), 0)
	}
	if s.admitWaiters > 0 {
		s.admitCond.Broadcast() // wake this group's parked spawners
	}
	s.admitMu.Unlock()
	return true
}

// Deadline arms (or re-arms) the group's deadline: at t the group is
// canceled with ErrDeadlineExceeded, exactly as if Cancel had been called.
// A deadline already in the past cancels immediately. Arming a deadline on
// a canceled group is a no-op; re-arming replaces the previous timer.
func (g *Group) Deadline(t time.Time) {
	d := time.Until(t)
	g.cancelMu.Lock()
	if atomic.LoadUint64(&g.epoch)&1 == 1 {
		g.cancelMu.Unlock()
		return
	}
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	if d > 0 {
		g.timer = time.AfterFunc(d, g.deadlineFire)
		g.cancelMu.Unlock()
		return
	}
	g.cancelMu.Unlock()
	g.deadlineFire()
}

func (g *Group) deadlineFire() {
	g.cancel(ErrDeadlineExceeded, trace.EvDeadlineFire)
}

// BindContext ties the group's cancellation to ctx: when ctx is canceled or
// its deadline passes, the group is canceled with ErrCanceled or
// ErrDeadlineExceeded respectively. It returns a stop function releasing
// the watcher goroutine; call it (idempotent) once the group's work is done.
// A context that can never be canceled costs nothing.
func (g *Group) BindContext(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	if err := ctx.Err(); err != nil {
		g.Cancel(bindCause(err))
		return func() {}
	}
	stopCh := make(chan struct{})
	var stopped atomic.Bool // authoritative: once stop returns, no cancel fires
	go func() {
		select {
		case <-ctx.Done():
			// Re-check the flag: when ctx.Done and stopCh are both ready the
			// select picks arbitrarily, but a stop that returned before the
			// context was canceled must win.
			if !stopped.Load() {
				g.Cancel(bindCause(ctx.Err()))
			}
		case <-stopCh:
		case <-g.s.doneCh:
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			stopped.Store(true)
			close(stopCh)
		})
	}
}

func bindCause(err error) error {
	if errors.Is(err, context.DeadlineExceeded) {
		return ErrDeadlineExceeded
	}
	return ErrCanceled
}

// Canceled reports whether the group has been canceled (Cancel, a fired
// Deadline, or a bound context). One atomic load; safe from anywhere.
func (g *Group) Canceled() bool {
	return atomic.LoadUint64(&g.epoch)&1 == 1
}

// Err returns the cancellation cause — ErrCanceled, ErrDeadlineExceeded, or
// the error given to Cancel — or nil while the group is live.
func (g *Group) Err() error {
	if atomic.LoadUint64(&g.epoch)&1 == 0 {
		return nil
	}
	// Safe plain read: the cause is written before the epoch goes odd, and
	// the atomic epoch load above observed the odd value.
	return g.cause
}

// WaitErr waits like Wait, then reports how the group ended: nil for a
// clean drain, the cancellation cause for a canceled group (its started
// tasks have drained; its never-started tasks were revoked), or ErrShutdown
// when the scheduler shut down with the group's tasks still in flight.
func (g *Group) WaitErr() error {
	g.Wait()
	if err := g.Err(); err != nil {
		return err
	}
	if g.s.done.Load() && g.inflight.Load() != 0 {
		return ErrShutdown
	}
	return nil
}

// Reset returns a canceled group to live so it can be reused for new work.
// The caller must hold the group exclusively: quiescent (Wait returned) with
// no concurrent spawns, waits, or cancels — the same single-client contract
// that reusing a group after Wait already requires. Nodes stamped in the
// canceled era are still revoked after Reset (the take-time comparison is
// full epoch equality, so the bumped-live epoch does not resurrect them).
func (g *Group) Reset() {
	g.cancelMu.Lock()
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	// Exclusive by contract: no concurrent spawner, waiter, or canceler
	// exists, so the plain accesses cannot race the atomic readers.
	//repro:ownerstore Reset's exclusivity contract (quiescent group, single caller); see doc comment
	if g.epoch&1 == 1 {
		g.epoch++ //repro:ownerstore Reset's exclusivity contract (quiescent group, single caller)
		g.cause = nil
	}
	g.cancelMu.Unlock()
}

// SpawnRetry admits t like Spawn but without parking on the admission
// condition variable: it retries the non-blocking admission under an
// internal/backoff schedule (spin → yield → capped exponential sleep).
// Compared to Spawn it trades wakeup latency for zero parked state — a
// caller that may need to give up for its own reasons can wrap SpawnRetry
// in its own loop around TrySpawn instead. Returns nil once admitted, or
// the typed reason admission became impossible: the group's cancellation
// cause (ErrCanceled/ErrDeadlineExceeded/custom) or ErrShutdown.
func (g *Group) SpawnRetry(t Task) error {
	var bo backoff.Backoff
	for {
		err := g.TrySpawn(t)
		if !errors.Is(err, ErrSaturated) {
			if errors.Is(err, ErrDeadlineExceeded) {
				g.s.admit.SpawnTimeouts.Add(1)
			}
			return err
		}
		bo.Wait()
	}
}

// Canceled reports whether the running task's group has been canceled: the
// cooperative cancellation check. Long-running tasks poll it at recursion
// and spawn points and return early — one atomic load, cheap enough for the
// hot path. Group-less tasks are never canceled.
//
//repro:noalloc polled at the recursion points of every sort kernel
func (c *Ctx) Canceled() bool {
	return c.group != nil && c.group.Canceled()
}
