package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// plugWorkers occupies every worker of s with a task blocked on the returned
// release channel, so subsequently admitted work stays in the inject queue.
func plugWorkers(t *testing.T, s *Scheduler) (plug *Group, release chan struct{}) {
	t.Helper()
	release = make(chan struct{})
	plug = s.NewGroup()
	var running sync.WaitGroup
	for i := 0; i < s.P(); i++ {
		running.Add(1)
		if err := plug.Spawn(Solo(func(*Ctx) { running.Done(); <-release })); err != nil {
			t.Fatalf("plug spawn: %v", err)
		}
	}
	running.Wait()
	return plug, release
}

// TestCancelRevokesPending is the tentpole's acceptance test: flood a group
// with admitted-but-not-started tasks, cancel it, and check that every one
// of them is revoked at take time without executing, that the revocations
// are observable in the admission counters, that the group's inflight
// reconciles to zero, and that every Wait releases.
func TestCancelRevokesPending(t *testing.T) {
	s := New(Options{P: 2})
	defer s.Shutdown()
	plug, release := plugWorkers(t, s)

	before := s.Admission()
	g := s.NewGroup()
	var ran atomic.Int64
	const flood = 64
	for i := 0; i < flood; i++ {
		if err := g.TrySpawn(Solo(func(*Ctx) { ran.Add(1) })); err != nil {
			t.Fatalf("flood spawn %d: %v", i, err)
		}
	}

	cause := errors.New("client gave up")
	if !g.Cancel(cause) {
		t.Fatal("Cancel returned false on a live group")
	}
	if g.Cancel(errors.New("second cause")) {
		t.Fatal("second Cancel returned true")
	}
	if !g.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	if err := g.Err(); !errors.Is(err, cause) {
		t.Fatalf("Err() = %v, want the first cause", err)
	}

	// Several concurrent waiters: all must release exactly once the revoked
	// flood has drained.
	const waiters = 4
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() { errs <- g.WaitErr() }()
	}

	close(release)
	plug.Wait()
	for i := 0; i < waiters; i++ {
		if err := <-errs; !errors.Is(err, cause) {
			t.Fatalf("WaitErr = %v, want cause", err)
		}
	}
	s.Wait()

	if n := ran.Load(); n != 0 {
		t.Fatalf("%d canceled tasks executed, want 0", n)
	}
	if p := g.Pending(); p != 0 {
		t.Fatalf("group Pending = %d after drain, want 0", p)
	}
	if p := s.Pending(); p != 0 {
		t.Fatalf("scheduler Pending = %d after drain, want 0", p)
	}
	adm := s.Admission()
	if got := adm.Revoked - before.Revoked; got != flood {
		t.Fatalf("Revoked delta = %d, want %d", got, flood)
	}
	if adm.Injected != adm.Taken+adm.Revoked {
		t.Fatalf("admission does not reconcile: %+v", adm)
	}
}

// TestCancelRejectsNewSpawns checks the admission half of cancellation:
// every spawn form on a canceled group refuses with the cancellation cause
// and counts as rejected, and nothing it refused is accounted.
func TestCancelRejectsNewSpawns(t *testing.T) {
	s := New(Options{P: 2})
	defer s.Shutdown()
	g := s.NewGroup()
	cause := errors.New("done with this")
	g.Cancel(cause)

	if err := g.Spawn(Solo(func(*Ctx) { t.Error("spawned on canceled group") })); !errors.Is(err, cause) {
		t.Fatalf("Spawn = %v, want cause", err)
	}
	if err := g.TrySpawn(Solo(func(*Ctx) {})); !errors.Is(err, cause) {
		t.Fatalf("TrySpawn = %v, want cause", err)
	}
	if n, err := g.TrySpawnBatch([]Task{Solo(func(*Ctx) {}), Solo(func(*Ctx) {})}); n != 0 || !errors.Is(err, cause) {
		t.Fatalf("TrySpawnBatch = (%d, %v), want (0, cause)", n, err)
	}
	if err := g.SpawnRetry(Solo(func(*Ctx) {})); !errors.Is(err, cause) {
		t.Fatalf("SpawnRetry = %v, want cause", err)
	}
	if err := g.WaitErr(); !errors.Is(err, cause) {
		t.Fatalf("WaitErr = %v, want cause", err)
	}
	if g.Pending() != 0 || s.Pending() != 0 {
		t.Fatalf("refused spawns were accounted: group=%d sched=%d", g.Pending(), s.Pending())
	}
}

// TestDeadlineCancelsGroup checks that a deadline in the past fires
// immediately and a future deadline fires on time with ErrDeadlineExceeded.
func TestDeadlineCancelsGroup(t *testing.T) {
	s := New(Options{P: 2})
	defer s.Shutdown()

	g := s.NewGroup()
	g.Deadline(time.Now().Add(-time.Second))
	if !g.Canceled() {
		t.Fatal("past deadline did not cancel immediately")
	}
	if err := g.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Err = %v, want ErrDeadlineExceeded", err)
	}

	g2 := s.NewGroup()
	g2.Deadline(time.Now().Add(10 * time.Millisecond))
	deadline := time.Now().Add(5 * time.Second)
	for !g2.Canceled() {
		if time.Now().After(deadline) {
			t.Fatal("future deadline never fired")
		}
		time.Sleep(time.Millisecond)
	}
	if err := g2.WaitErr(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("WaitErr = %v, want ErrDeadlineExceeded", err)
	}
}

// TestDeadlineUnblocksParkedSpawn is the bounded-blocking-admission
// acceptance: a Spawn parked on a full inject queue must wake when its
// group's deadline fires and return ErrDeadlineExceeded (typed, counted).
func TestDeadlineUnblocksParkedSpawn(t *testing.T) {
	s := New(Options{P: 2, MaxInject: 1})
	defer s.Shutdown()
	plug, release := plugWorkers(t, s)
	defer func() { close(release); plug.Wait() }()

	filler := s.NewGroup()
	if err := filler.TrySpawn(Solo(func(*Ctx) {})); err != nil {
		t.Fatalf("filler: %v", err)
	}

	before := s.Admission()
	g := s.NewGroup()
	g.Deadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	err := g.Spawn(Solo(func(*Ctx) { t.Error("parked task ran after deadline") }))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("parked Spawn = %v after %v, want ErrDeadlineExceeded", err, time.Since(start))
	}
	if got := s.Admission().SpawnTimeouts - before.SpawnTimeouts; got != 1 {
		t.Fatalf("SpawnTimeouts delta = %d, want 1", got)
	}
	if g.Pending() != 0 {
		t.Fatalf("timed-out spawn was accounted: %d", g.Pending())
	}
}

// TestBindContext checks context plumbing: cancellation and deadline causes
// map to the group's typed errors, stop detaches the watcher, and the
// degenerate contexts are free.
func TestBindContext(t *testing.T) {
	s := New(Options{P: 2})
	defer s.Shutdown()

	// Background context: no-op (Done() == nil), group stays live.
	g := s.NewGroup()
	stop := g.BindContext(context.Background())
	stop()
	if g.Canceled() {
		t.Fatal("Background context canceled the group")
	}

	// Canceled context at bind time: immediate cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g2 := s.NewGroup()
	defer g2.BindContext(ctx)()
	if !g2.Canceled() || !errors.Is(g2.Err(), ErrCanceled) {
		t.Fatalf("pre-canceled ctx: Canceled=%v Err=%v", g2.Canceled(), g2.Err())
	}

	// Live context canceled later: watcher propagates ErrCanceled.
	ctx3, cancel3 := context.WithCancel(context.Background())
	g3 := s.NewGroup()
	defer g3.BindContext(ctx3)()
	cancel3()
	waitCanceled(t, g3)
	if err := g3.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("ctx cancel mapped to %v, want ErrCanceled", err)
	}

	// Context deadline: mapped to ErrDeadlineExceeded.
	ctx4, cancel4 := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel4()
	g4 := s.NewGroup()
	defer g4.BindContext(ctx4)()
	waitCanceled(t, g4)
	if err := g4.Err(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("ctx deadline mapped to %v, want ErrDeadlineExceeded", err)
	}

	// Stopped watcher: a later ctx cancel must not touch the group.
	ctx5, cancel5 := context.WithCancel(context.Background())
	g5 := s.NewGroup()
	stop5 := g5.BindContext(ctx5)
	stop5()
	stop5() // idempotent
	cancel5()
	time.Sleep(5 * time.Millisecond)
	if g5.Canceled() {
		t.Fatal("stopped BindContext watcher still canceled the group")
	}
}

func waitCanceled(t *testing.T, g *Group) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !g.Canceled() {
		if time.Now().After(deadline) {
			t.Fatal("group never observed cancellation")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestGroupReset checks reuse: Reset on a canceled (drained) group clears
// the cause and makes the group spawnable again, and nodes admitted in the
// canceled era are still revoked after the Reset (full-epoch comparison,
// not parity).
func TestGroupReset(t *testing.T) {
	s := New(Options{P: 2})
	defer s.Shutdown()
	plug, release := plugWorkers(t, s)

	g := s.NewGroup()
	var ran atomic.Int64
	const flood = 8
	for i := 0; i < flood; i++ {
		if err := g.TrySpawn(Solo(func(*Ctx) { ran.Add(1) })); err != nil {
			t.Fatalf("flood: %v", err)
		}
	}
	g.Cancel(errors.New("era one"))
	// Reset while the canceled-era nodes are still parked in the inject
	// queue: they must NOT be resurrected by the new epoch.
	g.Reset()
	if g.Canceled() || g.Err() != nil {
		t.Fatalf("after Reset: Canceled=%v Err=%v", g.Canceled(), g.Err())
	}

	var ran2 atomic.Int64
	if err := g.Spawn(Solo(func(*Ctx) { ran2.Add(1) })); err != nil {
		t.Fatalf("spawn after Reset: %v", err)
	}

	close(release)
	plug.Wait()
	if err := g.WaitErr(); err != nil {
		t.Fatalf("WaitErr after Reset = %v, want nil", err)
	}
	s.Wait()
	if ran.Load() != 0 {
		t.Fatalf("%d canceled-era tasks executed after Reset, want 0", ran.Load())
	}
	if ran2.Load() != 1 {
		t.Fatalf("post-Reset task ran %d times, want 1", ran2.Load())
	}
}

// TestRunReturnsCause checks the one-call form: Run on a group canceled
// mid-flight returns the cause from WaitErr.
func TestRunReturnsCause(t *testing.T) {
	s := New(Options{P: 2})
	defer s.Shutdown()
	g := s.NewGroup()
	cause := errors.New("abandoned")
	err := g.Run(Solo(func(c *Ctx) {
		g.Cancel(cause)
		if !c.Canceled() {
			t.Error("Ctx.Canceled() = false inside a canceled group's task")
		}
	}))
	if !errors.Is(err, cause) {
		t.Fatalf("Run = %v, want cause", err)
	}
}

// TestCanceledGroupDoesNotStarveOthers floods and cancels one group while a
// second group's ordinary work proceeds: the victim's Wait must release
// promptly even though the canceled flood shares the inject queue. Runs
// under the race gate via scripts/check.sh.
func TestCanceledGroupDoesNotStarveOthers(t *testing.T) {
	s := New(Options{P: 4, MaxInject: 64})
	defer s.Shutdown()

	var stop atomic.Bool
	flooder := make(chan struct{})
	go func() {
		defer close(flooder)
		for !stop.Load() {
			g := s.NewGroup()
			for i := 0; i < 32; i++ {
				if g.TrySpawn(Solo(func(*Ctx) {})) != nil {
					break
				}
			}
			g.Cancel(ErrCanceled)
			g.Wait()
		}
	}()

	for round := 0; round < 50; round++ {
		victim := s.NewGroup()
		var ran atomic.Int64
		const tasks = 16
		for i := 0; i < tasks; i++ {
			if err := victim.SpawnRetry(Solo(func(*Ctx) { ran.Add(1) })); err != nil {
				t.Fatalf("victim spawn: %v", err)
			}
		}
		if err := victim.WaitErr(); err != nil {
			t.Fatalf("victim WaitErr = %v", err)
		}
		if ran.Load() != tasks {
			t.Fatalf("victim ran %d/%d tasks", ran.Load(), tasks)
		}
	}
	stop.Store(true)
	<-flooder
	s.Wait()
	if adm := s.Admission(); adm.Injected != adm.Taken+adm.Revoked {
		t.Fatalf("admission does not reconcile: %+v", adm)
	}
}

// FuzzCancel drives a random schedule of spawns, cancels, deadlines and
// resets against one group and checks the structural invariants: WaitErr
// agrees with the group's canceled state, inflight reconciles to zero, no
// task of a canceled epoch runs after its cancel was observed pre-spawn,
// and the admission counters balance. Wired into scripts/fuzz-smoke.sh via
// auto-discovery.
func FuzzCancel(f *testing.F) {
	f.Add([]byte{0x01, 0x40, 0x02, 0x03}, uint8(2))
	f.Add([]byte{0x10, 0x11, 0x12, 0x13, 0x05, 0x20}, uint8(4))
	f.Add([]byte{0xff, 0x00, 0xfe, 0x01, 0x07}, uint8(1))
	f.Fuzz(func(t *testing.T, ops []byte, pByte uint8) {
		p := int(pByte)%4 + 1
		s := New(Options{P: p, MaxInject: 16, MaxPendingPerGroup: 8})
		defer s.Shutdown()
		g := s.NewGroup()
		cause := errors.New("fuzz cancel")
		for _, op := range ops {
			switch op % 5 {
			case 0:
				g.TrySpawn(Solo(func(*Ctx) {}))
			case 1:
				g.TrySpawnBatch([]Task{Solo(func(*Ctx) {}), Solo(func(*Ctx) {})})
			case 2:
				g.Cancel(cause)
			case 3:
				g.Deadline(time.Now().Add(time.Duration(op) * time.Microsecond))
			case 4:
				if g.Canceled() {
					g.Wait()
					g.Reset()
				}
			}
		}
		err := g.WaitErr()
		if g.Canceled() && err == nil {
			t.Fatal("canceled group WaitErr = nil")
		}
		if !g.Canceled() && err != nil {
			t.Fatalf("live group WaitErr = %v", err)
		}
		if g.Pending() != 0 {
			t.Fatalf("group Pending = %d after WaitErr", g.Pending())
		}
		s.Wait()
		if s.Pending() != 0 {
			t.Fatalf("scheduler Pending = %d after drain", s.Pending())
		}
		if adm := s.Admission(); adm.Injected != adm.Taken+adm.Revoked {
			t.Fatalf("admission does not reconcile: %+v", adm)
		}
	})
}
