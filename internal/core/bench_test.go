package core

// Core microbenchmarks: the per-task hot path of the scheduler, recorded by
// scripts/bench.sh as BENCH_core.json so perf PRs leave a measured
// trajectory. The suite covers the paths the paper's "no extra overhead for
// r = 1 tasks" claim depends on:
//
//   SpawnJoinPingPong   spawn one task, join it (TaskGroup), repeat — the
//                       fork-join latency floor of Algorithm 10 recursion
//   EmptyTaskFanout     waves of empty tasks through spawn→run→done — the
//                       interior throughput ceiling (allocs/op matters here)
//   StealImbalance      one producer, p−1 thieves — the steal path under a
//                       pathological imbalance
//   InjectedTakeEmpty   the idle coordinator's poll of the inject queues
//                       when no external work exists
//   InjectLatency       external submission end to end: admit → take → run
//                       → quiescence wakeup
//   CounterContention   the in-flight accounting pair (spawn-side increment,
//                       completion-side decrement) hammered from p workers
//
// The benchmarks run on tiny teams so they are meaningful on any machine;
// wall-clock numbers are only comparable within one host, which is all the
// recorded trajectory needs.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// benchNoop is a reusable single-threaded no-op task. The same value is
// spawned over and over, so benchmarks exercise only the scheduler's own
// per-task costs (node, queue, accounting), not task construction.
type benchNoop struct{}

func (benchNoop) Threads() int { return 1 }
func (benchNoop) Run(*Ctx)     {}

// benchCountdown decrements a shared counter; like benchNoop the one value
// is spawned repeatedly.
type benchCountdown struct {
	remaining atomic.Int64
}

func (t *benchCountdown) Threads() int { return 1 }
func (t *benchCountdown) Run(*Ctx)     { t.remaining.Add(-1) }

// restoreGMP undoes the GOMAXPROCS raise of Scheduler.New when the
// benchmark ends, so the testing package does not warn about leaked state.
func restoreGMP(b *testing.B) {
	old := runtime.GOMAXPROCS(0)
	b.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// onWorker runs fn inside a task on s and blocks until fn returns, giving
// benchmarks an interior (Ctx-bearing) vantage point.
func onWorker(s *Scheduler, fn func(ctx *Ctx)) {
	done := make(chan struct{})
	s.Spawn(Solo(func(ctx *Ctx) {
		fn(ctx)
		close(done)
	}))
	<-done
}

// drainOwn helps run the worker's own level-0 queue until the countdown
// reaches zero (what TaskGroup.Wait does, without the steal rounds).
func drainOwn(ctx *Ctx, ct *benchCountdown) {
	w := ctx.w
	for ct.remaining.Load() > 0 {
		if n := w.queues[0].PopBottom(); n != nil {
			w.runSolo(n)
		} else {
			runtime.Gosched()
		}
	}
}

func BenchmarkSpawnJoinPingPong(b *testing.B) {
	restoreGMP(b)
	s := New(Options{P: 2})
	defer s.Shutdown()
	b.ReportAllocs()
	onWorker(s, func(ctx *Ctx) {
		var tg TaskGroup
		child := benchNoop{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tg.Spawn(ctx, child)
			tg.Wait(ctx)
		}
	})
}

func BenchmarkEmptyTaskFanout(b *testing.B) {
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			restoreGMP(b)
			s := New(Options{P: p})
			defer s.Shutdown()
			b.ReportAllocs()
			onWorker(s, func(ctx *Ctx) {
				const wave = 256
				ct := &benchCountdown{}
				b.ResetTimer()
				for left := b.N; left > 0; {
					k := wave
					if k > left {
						k = left
					}
					left -= k
					ct.remaining.Store(int64(k))
					for i := 0; i < k; i++ {
						ctx.Spawn(ct)
					}
					drainOwn(ctx, ct)
				}
			})
		})
	}
}

func BenchmarkStealImbalance(b *testing.B) {
	restoreGMP(b)
	const p = 4
	s := New(Options{P: p})
	defer s.Shutdown()
	b.ReportAllocs()
	onWorker(s, func(ctx *Ctx) {
		const wave = 256
		ct := &benchCountdown{}
		b.ResetTimer()
		for left := b.N; left > 0; {
			k := wave
			if k > left {
				k = left
			}
			left -= k
			ct.remaining.Store(int64(k))
			for i := 0; i < k; i++ {
				ctx.Spawn(ct)
			}
			// The producer only yields: every task is drained by thieves,
			// keeping the steal path hot.
			for ct.remaining.Load() > 0 {
				runtime.Gosched()
			}
		}
	})
}

func BenchmarkInjectedTakeEmpty(b *testing.B) {
	s := build(Options{P: 2}) // unstarted: the benchmark is the poll loop
	w := s.workers[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.takeInjected(w) {
			b.Fatal("unexpected injected work")
		}
	}
}

func BenchmarkInjectLatency(b *testing.B) {
	restoreGMP(b)
	s := New(Options{P: 2})
	defer s.Shutdown()
	g := s.NewGroup()
	task := benchNoop{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Run(task)
	}
}

func BenchmarkCounterContention(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			s := build(Options{P: p})
			per := b.N/p + 1
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < p; i++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					w := s.workers[id]
					// Keep one task permanently in flight so the loop
					// exercises the common (non-quiescing) transition.
					w.inflightAdd(1)
					for j := 0; j < per; j++ {
						w.inflightAdd(1)
						w.taskDone(nil)
					}
					w.taskDone(nil)
				}(i)
			}
			wg.Wait()
		})
	}
}
