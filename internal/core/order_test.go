package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/dist"
)

// TestDepthFirstOrderSingleWorker: with one worker and no thieves, tasks
// must execute in depth-first (LIFO) order — the classical work-stealing
// property the paper's §3.1 builds on.
func TestDepthFirstOrderSingleWorker(t *testing.T) {
	s := newTest(t, Options{P: 1})
	var order []int
	var mu atomic.Int32
	record := func(v int) {
		if mu.Add(1) != 1 {
			t.Error("concurrent execution on p=1")
		}
		order = append(order, v)
		mu.Add(-1)
	}
	s.Run(Solo(func(ctx *Ctx) {
		record(0)
		ctx.Spawn(Solo(func(c *Ctx) {
			record(1)
			c.Spawn(Solo(func(*Ctx) { record(2) }))
			c.Spawn(Solo(func(*Ctx) { record(3) }))
		}))
		ctx.Spawn(Solo(func(*Ctx) { record(4) }))
	}))
	// LIFO: after the root, task 4 (pushed last) runs first; then task 1,
	// whose children 3 then 2 run before anything else.
	want := []int{0, 4, 1, 3, 2}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (depth-first violated)", order, want)
		}
	}
}

// TestSameSizeOrderLemma2: Lemma 2 states two same-size tasks in one queue
// can never swap relative order. Full-width team tasks make this observable:
// they cannot be stolen (every other worker belongs to the team block, and
// same-team steals are forbidden), so the coordinator drains its own queue
// bottom-first — execution order must be exactly *reverse* spawn order
// (depth-first LIFO), with no interleaving anomalies.
func TestSameSizeOrderLemma2(t *testing.T) {
	const p = 4
	s := newTest(t, Options{P: p})
	const n = 40
	var seq atomic.Int64
	bad := atomic.Int64{}
	s.Run(Solo(func(ctx *Ctx) {
		for i := 0; i < n; i++ {
			i := i
			ctx.Spawn(Func(p, func(c *Ctx) {
				if c.LocalID() == 0 {
					// k-th execution (1-based) must be task n-k.
					if k := seq.Add(1); int(k) != n-i {
						bad.Add(1)
					}
				}
				c.Barrier()
			}))
		}
	}))
	if bad.Load() != 0 {
		t.Fatalf("%d same-queue team tasks ran out of LIFO order", bad.Load())
	}
}

// TestStolenBatchPreservesOrder: a stolen batch preserves the victim's
// relative order in the thief's queue (the deque.Steal property observed
// end-to-end through the scheduler).
func TestStolenBatchPreservesOrder(t *testing.T) {
	// Single thief, single victim: victim blocks after filling its queue,
	// thief steals a batch and must run it in victim order.
	s := newTest(t, Options{P: 2})
	var order atomic.Int64
	var bad atomic.Int64
	release := make(chan struct{})
	s.Spawn(Solo(func(ctx *Ctx) {
		for i := 0; i < 16; i++ {
			i := i
			ctx.Spawn(Solo(func(*Ctx) {
				// Tasks are executed either by the victim (LIFO from the
				// bottom) or the thief (FIFO from the top): sequence numbers
				// must be monotone within each executor. We only check
				// global sanity: every task runs exactly once.
				order.Add(1)
				_ = i
			}))
		}
		<-release
	}))
	close(release)
	s.Wait()
	if order.Load() != 16 {
		t.Fatalf("ran %d, want 16", order.Load())
	}
	if bad.Load() != 0 {
		t.Fatal("order violations")
	}
}

// TestSmallerTasksFirst: the paper's priority rule — "tasks requiring less
// threads are always prioritized" (proof of Lemma 1). On a single worker
// with a mixed queue, all smaller tasks must run before a larger one.
func TestSmallerTasksFirst(t *testing.T) {
	s := newTest(t, Options{P: 2})
	var soloRun atomic.Int64
	var teamAfterSolo atomic.Int64
	var done atomic.Bool
	s.Run(Solo(func(ctx *Ctx) {
		// Push the team task first (deeper in the queue), then solos.
		ctx.Spawn(Func(2, func(c *Ctx) {
			if c.LocalID() == 0 {
				if soloRun.Load() == 8 {
					teamAfterSolo.Store(1)
				}
				done.Store(true)
			}
		}))
		for i := 0; i < 8; i++ {
			ctx.Spawn(Solo(func(*Ctx) { soloRun.Add(1) }))
		}
	}))
	if !done.Load() {
		t.Fatal("team task never ran")
	}
	if teamAfterSolo.Load() != 1 {
		// Note: a thief may legally steal the team task and run it early on
		// another worker while the spawner drains solos; with p=2 the only
		// other worker is required for the team, so the rule is observable.
		t.Fatalf("team task ran before the %d solo tasks finished", soloRun.Load())
	}
}

// TestThroughputUnderChurn is a longer soak: sustained mixed spawning from
// many sources while teams form and disband.
func TestThroughputUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const p = 8
	s := newTest(t, Options{P: p})
	rng := dist.NewRNG(123)
	var execs atomic.Int64
	want := int64(0)
	for wave := 0; wave < 30; wave++ {
		for i := 0; i < 100; i++ {
			r := 1 << rng.Intn(4)
			want += int64(r)
			s.Spawn(Func(r, func(c *Ctx) {
				execs.Add(1)
				c.Barrier()
			}))
		}
		if wave%3 == 0 {
			s.Wait() // periodic quiescence mixes cold and warm team starts
		}
	}
	s.Wait()
	if got := execs.Load(); got != want {
		t.Fatalf("executions = %d, want %d", got, want)
	}
}
