package core

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Event tracing for protocol debugging: a fixed-size global ring buffer of
// registration-protocol transitions, enabled with Options.Trace. The
// overhead when disabled is a single atomic load per event site.

type traceKind uint8

const (
	evRegister traceKind = iota
	evDeregister
	evRevoked
	evLeaveTeam
	evTeamFixed
	evPublish
	evPickup
	evShrink
	evDisband
	evPreempt
	evConflictYield
	evGrowAdvertise
	evExecDone
)

var traceKindNames = [...]string{
	"register", "deregister", "revoked", "leave-team", "team-fixed",
	"publish", "pickup", "shrink", "disband", "preempt", "conflict-yield",
	"grow-advertise", "exec-done",
}

type traceEvent struct {
	seq   uint64
	kind  traceKind
	who   int
	coord int
	a, b  int // kind-specific payload
}

const traceCap = 1 << 14

type tracer struct {
	on  atomic.Bool
	seq atomic.Uint64
	buf [traceCap]atomic.Pointer[traceEvent]
}

func (t *tracer) emit(kind traceKind, who, coord, a, b int) {
	if !t.on.Load() {
		return
	}
	seq := t.seq.Add(1)
	t.buf[seq%traceCap].Store(&traceEvent{seq: seq, kind: kind, who: who, coord: coord, a: a, b: b})
}

// Dump renders the buffered events in sequence order.
func (t *tracer) dump() string {
	var evs []*traceEvent
	for i := range t.buf {
		if e := t.buf[i].Load(); e != nil {
			evs = append(evs, e)
		}
	}
	// insertion sort by seq (small buffer)
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j-1].seq > evs[j].seq; j-- {
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
	var sb strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&sb, "%6d w%-3d %-14s coord=%-3d a=%d b=%d\n",
			e.seq, e.who, traceKindNames[e.kind], e.coord, e.a, e.b)
	}
	return sb.String()
}

// TraceOn enables protocol event tracing (testing/diagnostics only).
func (s *Scheduler) TraceOn() { s.trace.on.Store(true) }

// TraceDump returns the buffered protocol events.
func (s *Scheduler) TraceDump() string { return s.trace.dump() }

func (w *worker) ev(kind traceKind, coord, a, b int) {
	w.sched.trace.emit(kind, w.id, coord, a, b)
}
