package core

import (
	"fmt"
	"io"

	"repro/internal/trace"
)

// Execution tracing and worker-state profiling (see internal/trace). The
// scheduler owns one tracer with P+1 rings — one per worker plus one for
// the admission path (owned by the admitMu holder, so its writes are
// serialized like a worker's) — and one sampling profiler over the workers'
// published states. Tracing replaces the old global protocol tracer: the
// registration-protocol events now land on the recording worker's own ring
// alongside the task-lifecycle events, written through the same alloc-free
// owner-only path, so enabling a trace perturbs the scheduler far less than
// the old shared ring (which allocated one event per emit).

// traceNames labels the tracer's rings for dumps and the Chrome export.
func traceNames(p int) []string {
	names := make([]string, p+1)
	for i := 0; i < p; i++ {
		names[i] = fmt.Sprintf("worker %d", i)
	}
	names[p] = "inject"
	return names
}

// ev records a protocol/team event on the worker's own ring. Hot task-path
// sites (spawn, runSolo, taskDone) inline the same guard directly instead
// of calling through here; either way a disabled tracer costs one predicted
// branch on an atomic bool load.
//
//repro:noalloc called from the worker main loop; a disabled tracer must stay free
func (w *worker) ev(k trace.Kind, other, x int, arg uint64) {
	if xt := w.sched.xt; xt.Enabled() {
		xt.Record(w.id, k, other, uint32(x), arg)
	}
}

// setState publishes the worker's coarse activity state for the sampling
// profiler and DumpState, returning the previous state so nested task
// executions (TaskGroup.Wait helping inside a running task) can restore it.
// Owner-only plain store on the worker's own line — the freeLen mirror
// precedent — so it costs nothing shared on the hot path.
//
//repro:noalloc state transitions happen several times per loop iteration
func (w *worker) setState(st trace.State) trace.State {
	prev := trace.State(w.state.Load())
	w.state.Store(uint32(st))
	return prev
}

// StartTrace enables execution tracing. The per-worker event rings are
// allocated on the first call and kept afterwards, so toggling tracing on a
// live scheduler allocates nothing after the first window; restarting
// appends to the same timeline. Safe to call at any time, including
// concurrently with running tasks.
func (s *Scheduler) StartTrace() { s.xt.Start() }

// StopTrace disables execution tracing. Recorded events remain available to
// TraceSnapshot/TraceDump/WriteChromeTrace until tracing is restarted long
// enough to overwrite them.
func (s *Scheduler) StopTrace() { s.xt.Stop() }

// TraceActive reports whether execution tracing is currently enabled.
func (s *Scheduler) TraceActive() bool { return s.xt.Enabled() }

// TraceOn enables execution tracing (kept as the historical name used by
// protocol tests and debugging helpers; identical to StartTrace).
func (s *Scheduler) TraceOn() { s.xt.Start() }

// TraceSnapshot reads the event rings without stopping the workers (per-
// slot stamp validation; see internal/trace) and returns the surviving
// events in timestamp order.
func (s *Scheduler) TraceSnapshot() trace.Snapshot { return s.xt.Snapshot() }

// TraceDump renders the current trace as a compact text dump, one line per
// event.
func (s *Scheduler) TraceDump() string { return s.xt.Snapshot().Text() }

// WriteChromeTrace writes the current trace as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing: one track per
// worker plus an admission track, task executions as slices, flow arrows
// linking spawn→start across steals, groups as async spans.
func (s *Scheduler) WriteChromeTrace(w io.Writer) error {
	return s.xt.Snapshot().WriteChrome(w)
}

// TraceDropped returns the number of trace events lost to ring overflow so
// far, summed across rings.
func (s *Scheduler) TraceDropped() uint64 { return s.xt.DroppedTotal() }

// StartProfiler launches the worker-state sampling profiler at hz samples
// per second (0 selects the 100 Hz default). The observations accumulate in
// the repro_worker_state_samples_total{state=...} registry counters and are
// also readable via ProfilerStateCounts. Starting a running profiler is a
// no-op; counters accumulate across stop/start cycles.
func (s *Scheduler) StartProfiler(hz float64) { s.profiler.Start(hz) }

// StopProfiler halts the sampling profiler (idempotent; Shutdown also stops
// it).
func (s *Scheduler) StopProfiler() { s.profiler.Stop() }

// ProfilerStateCounts returns the per-state observation counts of the
// sampling profiler, indexed like trace.StateNames.
func (s *Scheduler) ProfilerStateCounts() [trace.NumStates]int64 {
	var out [trace.NumStates]int64
	for st := trace.State(0); st < trace.NumStates; st++ {
		out[st] = s.profiler.Count(st)
	}
	return out
}
