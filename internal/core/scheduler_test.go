package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/topo"
)

// newTest starts a scheduler for testing and registers cleanup.
func newTest(t *testing.T, opts Options) *Scheduler {
	t.Helper()
	s := New(opts)
	t.Cleanup(s.Shutdown)
	return s
}

func TestSoloTasks(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var ran atomic.Int64
	const n = 1000
	for i := 0; i < n; i++ {
		s.Spawn(Solo(func(*Ctx) { ran.Add(1) }))
	}
	s.Wait()
	if got := ran.Load(); got != n {
		t.Fatalf("ran %d tasks, want %d", got, n)
	}
}

func TestSpawnTree(t *testing.T) {
	s := newTest(t, Options{P: 8})
	var ran atomic.Int64
	var rec func(depth int) func(*Ctx)
	rec = func(depth int) func(*Ctx) {
		return func(ctx *Ctx) {
			ran.Add(1)
			if depth > 0 {
				ctx.Spawn(Solo(rec(depth - 1)))
				ctx.Spawn(Solo(rec(depth - 1)))
			}
		}
	}
	s.Run(Solo(rec(10)))
	want := int64(1<<11 - 1) // full binary tree of depth 10
	if got := ran.Load(); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
}

func TestTeamTaskBasic(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	var mask atomic.Int64 // bit per local id
	var count atomic.Int64
	s.Run(Func(p, func(ctx *Ctx) {
		if ctx.TeamSize() != p {
			t.Errorf("TeamSize = %d, want %d", ctx.TeamSize(), p)
		}
		mask.Or(1 << uint(ctx.LocalID()))
		count.Add(1)
	}))
	if got := count.Load(); got != p {
		t.Fatalf("team task ran on %d workers, want %d", got, p)
	}
	if got := mask.Load(); got != 1<<p-1 {
		t.Fatalf("local id mask = %b, want %b", got, 1<<p-1)
	}
}

func TestTeamBarrierPhases(t *testing.T) {
	const p = 4
	s := newTest(t, Options{P: p})
	var phase [3]atomic.Int64
	s.Run(Func(p, func(ctx *Ctx) {
		for ph := 0; ph < 3; ph++ {
			phase[ph].Add(1)
			ctx.Barrier()
			// After the barrier, every member must have contributed.
			if got := phase[ph].Load(); got != p {
				t.Errorf("phase %d: saw %d contributions after barrier, want %d", ph, got, p)
			}
			ctx.Barrier()
		}
	}))
}

func TestAllTeamSizes(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	for r := 1; r <= p; r *= 2 {
		var mask atomic.Int64
		var count atomic.Int64
		s.Run(Func(r, func(ctx *Ctx) {
			if ctx.TeamSize() != r {
				t.Errorf("r=%d: TeamSize = %d", r, ctx.TeamSize())
			}
			mask.Or(1 << uint(ctx.LocalID()))
			count.Add(1)
		}))
		if got := count.Load(); got != int64(r) {
			t.Fatalf("r=%d: ran on %d workers", r, got)
		}
		if got := mask.Load(); got != 1<<uint(r)-1 {
			t.Fatalf("r=%d: local id mask = %b", r, got)
		}
	}
}

func TestTeamConsecutiveIDs(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	for r := 2; r <= p; r *= 2 {
		var ids [p]atomic.Bool
		var count atomic.Int64
		s.Run(Func(r, func(ctx *Ctx) {
			ids[ctx.WorkerID()].Store(true)
			count.Add(1)
		}))
		if count.Load() != int64(r) {
			t.Fatalf("r=%d: %d participants", r, count.Load())
		}
		// Participating worker ids must form one aligned block of size r.
		first := -1
		for i := range ids {
			if ids[i].Load() {
				first = i
				break
			}
		}
		if first < 0 || first%r != 0 {
			t.Fatalf("r=%d: team does not start at an aligned id (first=%d)", r, first)
		}
		for i := 0; i < p; i++ {
			want := i >= first && i < first+r
			if ids[i].Load() != want {
				t.Fatalf("r=%d: worker %d participation = %v, want %v", r, i, ids[i].Load(), want)
			}
		}
	}
}

func TestManyTeamTasks(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	var execs atomic.Int64 // total participant executions
	var tasks atomic.Int64
	want := int64(0)
	const rounds = 50
	for i := 0; i < rounds; i++ {
		for r := 1; r <= p; r *= 2 {
			want += int64(r)
			s.Spawn(Func(r, func(ctx *Ctx) {
				execs.Add(1)
				if ctx.LocalID() == 0 {
					tasks.Add(1)
				}
			}))
		}
	}
	s.Wait()
	if got := execs.Load(); got != want {
		t.Fatalf("participant executions = %d, want %d", got, want)
	}
	if got := tasks.Load(); got != rounds*4 {
		t.Fatalf("tasks = %d, want %d", got, rounds*4)
	}
}

func TestMixedSpawnFromTasks(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	var execs atomic.Int64
	// A team task whose local id 0 spawns a smaller team task, recursively
	// (the mixed-mode Quicksort pattern).
	var spawnRec func(r int) Task
	spawnRec = func(r int) Task {
		return Func(r, func(ctx *Ctx) {
			execs.Add(1)
			if ctx.LocalID() == 0 && r > 1 {
				ctx.Spawn(spawnRec(r / 2))
				ctx.Spawn(spawnRec(r / 2))
			}
		})
	}
	s.Run(spawnRec(p))
	// Executions: level r=8: 8; two r=4: 8; four r=2: 8; eight r=1: 8.
	want := int64(4 * p)
	if got := execs.Load(); got != want {
		t.Fatalf("executions = %d, want %d", got, want)
	}
}

func TestArbitraryRequirement(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	for _, r := range []int{3, 5, 6, 7} {
		var count atomic.Int64
		var mask atomic.Int64
		s.Run(Func(r, func(ctx *Ctx) {
			count.Add(1)
			mask.Or(1 << uint(ctx.LocalID()))
			if ctx.TeamSize() != r {
				t.Errorf("r=%d: TeamSize = %d", r, ctx.TeamSize())
			}
		}))
		if got := count.Load(); got != int64(r) {
			t.Fatalf("r=%d: ran on %d workers, want exactly r (Refinement 2)", r, got)
		}
		if got := mask.Load(); got != 1<<uint(r)-1 {
			t.Fatalf("r=%d: local ids not 0..r-1: mask=%b", r, got)
		}
	}
}

func TestNonPowerOfTwoP(t *testing.T) {
	for _, p := range []int{3, 5, 6, 7, 12} {
		p := p
		t.Run(string(rune('0'+p)), func(t *testing.T) {
			s := newTest(t, Options{P: p})
			maxTeam := topo.FloorPow2(p)
			if s.MaxTeam() != maxTeam {
				t.Fatalf("MaxTeam = %d, want %d", s.MaxTeam(), maxTeam)
			}
			var execs atomic.Int64
			want := int64(0)
			for r := 1; r <= maxTeam; r *= 2 {
				for i := 0; i < 10; i++ {
					want += int64(r)
					s.Spawn(Func(r, func(*Ctx) { execs.Add(1) }))
				}
			}
			s.Wait()
			if got := execs.Load(); got != want {
				t.Fatalf("p=%d: executions = %d, want %d", p, got, want)
			}
		})
	}
}

func TestRandomizedStealing(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p, Randomized: true, Seed: 42})
	var execs atomic.Int64
	want := int64(0)
	for i := 0; i < 100; i++ {
		for r := 1; r <= p; r *= 2 {
			want += int64(r)
			s.Spawn(Func(r, func(*Ctx) { execs.Add(1) }))
		}
	}
	s.Wait()
	if got := execs.Load(); got != want {
		t.Fatalf("executions = %d, want %d", got, want)
	}
}

func TestP1(t *testing.T) {
	s := newTest(t, Options{P: 1})
	var ran atomic.Int64
	s.Run(Solo(func(ctx *Ctx) {
		ran.Add(1)
		ctx.Spawn(Solo(func(*Ctx) { ran.Add(1) }))
	}))
	if got := ran.Load(); got != 2 {
		t.Fatalf("ran = %d, want 2", got)
	}
	if s.MaxTeam() != 1 {
		t.Fatalf("MaxTeam = %d, want 1", s.MaxTeam())
	}
}

func TestTaskGroupSync(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var before, after atomic.Int64
	s.Run(Solo(func(ctx *Ctx) {
		var g TaskGroup
		for i := 0; i < 64; i++ {
			g.Go(ctx, func(*Ctx) { before.Add(1) })
		}
		g.Wait(ctx)
		if got := before.Load(); got != 64 {
			t.Errorf("after Wait: %d children ran, want 64", got)
		}
		after.Add(1)
	}))
	if after.Load() != 1 {
		t.Fatal("parent did not finish")
	}
}

func TestTaskGroupNested(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var leaves atomic.Int64
	var rec func(ctx *Ctx, depth int)
	rec = func(ctx *Ctx, depth int) {
		if depth == 0 {
			leaves.Add(1)
			return
		}
		var g TaskGroup
		g.Go(ctx, func(c *Ctx) { rec(c, depth-1) })
		g.Go(ctx, func(c *Ctx) { rec(c, depth-1) })
		g.Wait(ctx)
	}
	s.Run(Solo(func(ctx *Ctx) { rec(ctx, 6) }))
	if got := leaves.Load(); got != 64 {
		t.Fatalf("leaves = %d, want 64", got)
	}
}

func TestDisableTeamReuse(t *testing.T) {
	const p = 4
	s := newTest(t, Options{P: p, DisableTeamReuse: true})
	var execs atomic.Int64
	for i := 0; i < 20; i++ {
		s.Spawn(Func(p, func(*Ctx) { execs.Add(1) }))
	}
	s.Wait()
	if got := execs.Load(); got != 20*p {
		t.Fatalf("executions = %d, want %d", got, 20*p)
	}
}

func TestTeamPersistenceStats(t *testing.T) {
	const p = 4
	s := newTest(t, Options{P: p})
	// One worker's queue receives many same-size team tasks: the team should
	// form far fewer times than it executes (teams stay together).
	s.Run(Solo(func(ctx *Ctx) {
		for i := 0; i < 50; i++ {
			ctx.Spawn(Func(p, func(*Ctx) {}))
		}
	}))
	st := s.Stats()
	if st.TeamsFormed < 50 {
		t.Fatalf("TeamsFormed = %d, want ≥ 50 (one publish per task)", st.TeamsFormed)
	}
	if st.Registrations == 0 {
		t.Fatal("no registrations recorded")
	}
}

func TestStatsTasksRun(t *testing.T) {
	s := newTest(t, Options{P: 4})
	const n = 200
	for i := 0; i < n; i++ {
		s.Spawn(Solo(func(*Ctx) {}))
	}
	s.Wait()
	if got := s.Stats().TasksRun; got != n {
		t.Fatalf("TasksRun = %d, want %d", got, n)
	}
}

func TestRunIsReusable(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var ran atomic.Int64
	for round := 0; round < 5; round++ {
		s.Run(Func(4, func(*Ctx) { ran.Add(1) }))
	}
	if got := ran.Load(); got != 20 {
		t.Fatalf("ran = %d, want 20", got)
	}
}

func TestSpawnPanicsOnBadRequirement(t *testing.T) {
	s := newTest(t, Options{P: 4})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for r > MaxTeam")
		}
	}()
	s.Spawn(Func(8, func(*Ctx) {}))
}
