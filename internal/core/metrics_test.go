package core

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// TestSchedulerMetricsValues runs real work through a live scheduler and
// checks the registry reports it: task counters move, the worker gauge is
// exact, quiescence scans are counted, and the admission counters see the
// external submissions.
func TestSchedulerMetricsValues(t *testing.T) {
	s := newTest(t, Options{P: 2})
	for i := 0; i < 8; i++ {
		s.Run(Solo(func(ctx *Ctx) {
			ctx.Spawn(Solo(func(*Ctx) {}))
		}))
	}
	s.Wait()
	vals := s.Metrics().Values()
	if got := vals["repro_sched_workers"]; got != 2 {
		t.Fatalf("repro_sched_workers = %v, want 2", got)
	}
	if got := vals["repro_sched_tasks_total"]; got < 16 {
		t.Fatalf("repro_sched_tasks_total = %v, want >= 16", got)
	}
	if got := vals["repro_admission_injected_total"]; got != 8 {
		t.Fatalf("repro_admission_injected_total = %v, want 8", got)
	}
	if got := vals["repro_sched_quiesce_scans_total"]; got < 1 {
		t.Fatalf("repro_sched_quiesce_scans_total = %v, want >= 1", got)
	}
	if got := vals["repro_sched_inflight_tasks"]; got != 0 {
		t.Fatalf("repro_sched_inflight_tasks = %v after drain, want 0", got)
	}
	if m2 := s.Metrics(); m2 != s.Metrics() {
		t.Fatal("Metrics() not cached")
	}
}

// TestMetricsTwoRegistries pins that one scheduler can feed several
// registries (each Runtime on a shared scheduler builds its own): the
// second RegisterMetrics must not collide with the first.
func TestMetricsTwoRegistries(t *testing.T) {
	s := newTest(t, Options{P: 2})
	a, b := stats.NewRegistry(), stats.NewRegistry()
	s.RegisterMetrics(a)
	s.RegisterMetrics(b)
	if ra, rb := a.Render(), b.Render(); ra == "" || rb == "" {
		t.Fatal("empty render")
	}
}

// TestNamedGroupGauges drives the per-group dynamic gauge families on a
// built-but-unstarted scheduler, where admitted-but-not-taken state holds
// still: a named group's pending task and inject-queue depth are visible
// per name, groups sharing a name are summed, and draining the work takes
// the gauges back to zero.
func TestNamedGroupGauges(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	alpha := s.NewNamedGroup("alpha")
	alpha2 := s.NewNamedGroup("alpha")
	beta := s.NewNamedGroup("beta")
	alpha.Spawn(Solo(func(*Ctx) {}))
	alpha2.Spawn(Solo(func(*Ctx) {}))
	beta.Spawn(Solo(func(*Ctx) {}))

	vals := s.Metrics().Values()
	if got := vals[`repro_group_pending_tasks{group="alpha"}`]; got != 2 {
		t.Fatalf(`pending_tasks{group="alpha"} = %v, want 2 (two groups summed)`, got)
	}
	if got := vals[`repro_group_pending_tasks{group="beta"}`]; got != 1 {
		t.Fatalf(`pending_tasks{group="beta"} = %v, want 1`, got)
	}
	if got := vals[`repro_group_inject_queue_depth{group="alpha"}`]; got != 2 {
		t.Fatalf(`inject_queue_depth{group="alpha"} = %v, want 2`, got)
	}
	if got := vals["repro_sched_inject_queue_depth"]; got != 3 {
		t.Fatalf("global inject_queue_depth = %v, want 3", got)
	}

	for i := 0; i < 3; i++ {
		if !s.takeInjected(w) {
			t.Fatalf("takeInjected %d found no work", i)
		}
		w.runSolo(w.queues[0].PopBottom())
	}
	vals = s.Metrics().Values()
	for _, key := range []string{
		`repro_group_pending_tasks{group="alpha"}`,
		`repro_group_pending_tasks{group="beta"}`,
		`repro_group_inject_queue_depth{group="alpha"}`,
		`repro_group_inject_queue_depth{group="beta"}`,
	} {
		if got := vals[key]; got != 0 {
			t.Fatalf("%s = %v after drain, want 0", key, got)
		}
	}
	if alpha.Name() != "alpha" || beta.Name() != "beta" {
		t.Fatalf("Name() = %q/%q", alpha.Name(), beta.Name())
	}
}

// TestFreelistGauge checks the per-worker free-list occupancy series: after
// a worker completes a task its node parks on the free list, and the gauge
// (fed by the atomic freeLen mirror) reports it under the worker's label.
func TestFreelistGauge(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	w.push(Solo(func(*Ctx) {}))
	w.runSolo(w.queues[0].PopBottom())
	vals := s.Metrics().Values()
	if got := vals[`repro_sched_freelist_nodes{worker="0"}`]; got != float64(len(w.free)) || got < 1 {
		t.Fatalf(`freelist_nodes{worker="0"} = %v, want %d (>= 1)`, got, len(w.free))
	}
	if got := vals[`repro_sched_freelist_nodes{worker="1"}`]; got != 0 {
		t.Fatalf(`freelist_nodes{worker="1"} = %v, want 0`, got)
	}
}

// TestMetricsExposition sanity-checks the rendered text: every scheduler
// family present, counters typed counter, and no rendering of a live
// scheduler panics mid-scrape.
func TestMetricsExposition(t *testing.T) {
	s := newTest(t, Options{P: 2})
	s.NewNamedGroup("svc")
	s.Run(Solo(func(*Ctx) {}))
	out := s.Metrics().Render()
	for _, want := range []string{
		"# TYPE repro_sched_tasks_total counter",
		"# TYPE repro_sched_inflight_tasks gauge",
		"# HELP repro_admission_injected_total ",
		"repro_sched_quiesce_scans_total ",
		`repro_group_pending_tasks{group="svc"} 0`,
		`repro_sched_freelist_nodes{worker="1"}`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, out)
		}
	}
}
