package core

import (
	"repro/internal/reg"
	"repro/internal/teamsync"
	"repro/internal/topo"
	"repro/internal/trace"
)

// coordinate drains the worker's own queues: single-threaded tasks run
// directly; multi-threaded tasks are coordinated through the full team
// lifecycle (Algorithm 6, with Refinement 1 level selection and team
// persistence per §3.1). It returns when the queues hold no coordinatable
// work, when the worker yielded its coordination to a conflicting
// coordinator, or on shutdown.
func (w *worker) coordinate() {
	s := w.sched
	for !s.done.Load() {
		if w.coordp() != w {
			return // yielded inside pollPartners
		}
		r := w.regw.Load()
		lvl := w.chooseLevel(r)
		if lvl < 0 {
			// No coordinatable work: release any team / pending registrants
			// before the worker turns thief ("the team will dissolve ... as
			// soon as the current coordinator's queue runs empty").
			w.dropCoordination(r)
			return
		}
		target := 1 << uint(lvl)
		if target == 1 && r.Team <= 1 {
			// Classical work-stealing fast path. If a gathering for a larger
			// task was in progress, revoke it first (new smaller task: a←t,
			// N++, §3 registration structure rules).
			if r.Req != 1 || r.Acq != 1 {
				if !w.regw.CAS(r, reg.R{Req: 1, Acq: 1, Team: 1, Epoch: r.Epoch + 1}) {
					w.casFail()
				}
				continue
			}
			if n := w.queues[0].PopBottom(); n != nil {
				w.runSolo(n)
			}
			continue
		}
		w.st.TeamsCoordd.Add(1)
		switch {
		case int(r.Team) == target:
			// Team already fixed at the right size: execute directly
			// ("Teams can stay to process further tasks requiring the same
			// number of threads; this requires no further coordination").
			w.publishAndRun(lvl, target)
		case int(r.Team) < target:
			if int(r.Req) != target {
				nr := r
				nr.Req = uint16(target)
				if int(r.Req) > target {
					// The advertisement shrinks: registrants acquired for the
					// larger block may lie outside the new one, so "we have
					// to reset [a] to the number of teamed threads and
					// increment the new counter N to ensure that no invalid
					// thread has registered" (§3).
					nr.Acq = r.Team
					nr.Epoch = r.Epoch + 1
				}
				if !w.regw.CAS(r, nr) {
					w.casFail()
					continue
				}
				w.ev(trace.EvGrowAdvertise, w.id, target, uint64(nr.Epoch))
			}
			w.gather(lvl, target)
		default: // r.Team > target: shrink deterministically to my block
			if w.regw.CAS(r, reg.R{
				Req: uint16(target), Acq: uint16(target),
				Team: uint16(target), Epoch: r.Epoch + 1,
			}) {
				w.ev(trace.EvShrink, w.id, target, uint64(r.Epoch)+1)
			} else {
				w.casFail()
			}
		}
	}
}

// chooseLevel picks the queue level to coordinate next: the current team's
// level while it still has work (Refinement 1: "when a team of threads works
// on a queue, it continues working on this queue, even if queues containing
// smaller tasks get filled again"), otherwise the lowest non-empty level
// whose team block fits this worker (Refinement 3). Returns −1 if no
// coordinatable work exists.
func (w *worker) chooseLevel(r reg.R) int {
	if r.Team > 1 {
		tl := topo.Log2Floor(int(r.Team))
		if tl < len(w.queues) && !w.queues[tl].Empty() {
			return tl
		}
	}
	p := w.sched.topo.P
	for j := 0; j < len(w.queues); j++ {
		if w.queues[j].Empty() {
			continue
		}
		if j == 0 || topo.BlockFits(w.id, 1<<uint(j), p) {
			return j
		}
		// A task this worker cannot host (its block exceeds p); leave it for
		// a thief whose block fits and keep scanning.
	}
	return -1
}

// preemptLevel reports the lowest non-empty fitting level strictly below
// lvl, honoring team persistence (levels below the current team size are
// only run after the team's queue empties). Returns −1 if gathering should
// continue.
func (w *worker) preemptLevel(r reg.R, lvl int) int {
	low := 0
	if r.Team > 1 {
		low = topo.Log2Floor(int(r.Team))
	}
	p := w.sched.topo.P
	for j := low; j < lvl; j++ {
		if w.queues[j].Empty() {
			continue
		}
		if j == 0 || topo.BlockFits(w.id, 1<<uint(j), p) {
			return j
		}
	}
	return -1
}

// dropCoordination releases all coordination state: pending registrants are
// revoked and any team is disbanded (epoch bump).
func (w *worker) dropCoordination(r reg.R) {
	for r.Req != 1 || r.Acq != 1 || r.Team != 1 {
		if w.regw.CAS(r, reg.R{Req: 1, Acq: 1, Team: 1, Epoch: r.Epoch + 1}) {
			w.ev(trace.EvDisband, w.id, int(r.Acq), uint64(r.Epoch)+1)
			return
		}
		w.casFail()
		r = w.regw.Load()
	}
}

// gather waits for the remaining team members to register (a == r), fixing
// the team with the single CAS of Algorithm 6 once they have. While waiting
// it polls its partners to help the team form and to resolve conflicts, and
// it abandons the gathering if smaller tasks arrive (they always win, §3).
func (w *worker) gather(lvl, target int) {
	s := w.sched
	for !s.done.Load() {
		if w.coordp() != w {
			return // lost a conflict and registered elsewhere
		}
		r := w.regw.Load()
		if int(r.Req) != target {
			return // advertisement changed; re-evaluate in coordinate()
		}
		if int(r.Acq) >= target {
			if w.regw.CAS(r, reg.R{
				Req: uint16(target), Acq: uint16(target),
				Team: uint16(target), Epoch: r.Epoch,
			}) {
				w.ev(trace.EvTeamFixed, w.id, target, uint64(r.Epoch))
				w.publishAndRun(lvl, target)
				return
			}
			w.casFail()
			continue
		}
		if pl := w.preemptLevel(r, lvl); pl >= 0 {
			// A smaller task appeared: revoke the non-teamed registrants
			// (a ← t, N++) and let coordinate() restart at the lower level.
			t := r.Team
			if t < 1 {
				t = 1
			}
			if w.regw.CAS(r, reg.R{Req: t, Acq: t, Team: t, Epoch: r.Epoch + 1}) {
				w.ev(trace.EvPreempt, w.id, int(t), uint64(r.Epoch)+1)
			} else {
				w.casFail()
			}
			return
		}
		w.pollPartners(w, target)
		w.st.Backoffs.Add(1)
		w.bo.Wait()
	}
}

// publishAndRun pops the bottom task of queue lvl and executes it with the
// fixed team of the given size. The coordinator participates if its
// team-local id lies below the task's width, waits until every member has
// picked the execution up and every participant has finished, and only then
// proceeds (so registration-word transitions never race with a running
// team execution).
func (w *worker) publishAndRun(lvl, target int) {
	s := w.sched
	n := w.queues[lvl].PopBottom()
	if n == nil {
		// The task was stolen while the team formed. The team persists; the
		// coordinate() loop re-evaluates (and disbands if nothing is left).
		return
	}
	if target == 1 {
		w.runSolo(n)
		return
	}
	exec := &teamExec{
		task:     n.task,
		group:    n.group,
		teamSize: target,
		width:    n.r,
		coordID:  w.id,
		gen:      s.nextGen(),
		tid:      n.tid,
		barrier:  teamsync.NewBarrier(n.r),
	}
	exec.started.Store(int32(target - 1))
	exec.done.Store(int32(exec.width))
	w.freeNode(n) // content copied into exec; recycle before running
	w.lastGen = exec.gen
	w.cur.Store(exec)
	w.ev(trace.EvPublish, w.id, target, exec.gen)
	w.st.TeamsFormed.Add(1)
	if lid := topo.LocalID(w.id, w.id, target); lid < exec.width {
		w.runTeamPart(exec, lid)
	}
	// Wait until all team members observed this execution (the countdown G
	// of the paper) and all width participants finished running.
	for exec.started.Load() > 0 && !s.done.Load() {
		w.bo.Wait()
	}
	for exec.done.Load() > 0 && !s.done.Load() {
		w.bo.Wait()
	}
	w.cur.Store(nil)
	w.ev(trace.EvExecDone, w.id, target, exec.gen)
	w.bo.Reset()
	w.taskDone(exec.group)
	if s.opts.DisableTeamReuse {
		w.dropCoordination(w.regw.Load())
	}
}
