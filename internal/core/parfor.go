package core

import "sync/atomic"

// Data-parallel loop helpers: the paper's motivation (§1) is that classical
// work-stealing breaks data-parallel loops into independent chunk tasks and
// therefore "provides no means of ensuring simultaneous scheduling" — teams
// do. These helpers package the two standard loop schedules as team tasks.

// ForStatic returns a team task of np threads executing body over the index
// range [0, n) with a static block schedule: member i processes the i-th of
// np near-equal contiguous chunks. All members reach an implicit barrier
// before the task completes, so callers may treat the whole range as done
// when the task's completion is observed.
func ForStatic(np, n int, body func(ctx *Ctx, lo, hi int)) Task {
	return Func(np, func(ctx *Ctx) {
		w, lid := ctx.TeamSize(), ctx.LocalID()
		lo := lid * n / w
		hi := (lid + 1) * n / w
		if lo < hi {
			body(ctx, lo, hi)
		}
		ctx.Barrier()
	})
}

// DefaultChunk returns the default dynamic-schedule chunk size for np team
// members over n indices: n/(8·np), at least 1 — eight chunks per member,
// balancing claim overhead against end-of-range imbalance. It is the one
// place the heuristic lives; callers picking chunk sizes for dynamic
// schedules (internal/par, internal/dist/distpar) use it rather than
// re-deriving it.
func DefaultChunk(np, n int) int {
	chunk := n / (8 * np)
	if chunk < 1 {
		chunk = 1
	}
	return chunk
}

// ForDynamic returns a team task of np threads executing body over [0, n)
// with a dynamic schedule: members repeatedly claim chunks of the given size
// from a shared counter, which balances irregular per-index costs inside the
// team (the same end-pointer acquisition pattern as the paper's
// data-parallel partitioning step). chunk ≤ 0 selects DefaultChunk(np, n).
func ForDynamic(np, n, chunk int, body func(ctx *Ctx, lo, hi int)) Task {
	if chunk <= 0 {
		chunk = DefaultChunk(np, n)
	}
	var next atomic.Int64
	return Func(np, func(ctx *Ctx) {
		for {
			lo := int(next.Add(int64(chunk))) - chunk
			if lo >= n {
				break
			}
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			body(ctx, lo, hi)
		}
		ctx.Barrier()
	})
}

// TeamFor splits [0, n) across the members of the currently executing task's
// team with a static schedule and calls body on this member's chunk. It must
// be called by every member of the team (it is a collective operation: a
// barrier follows the chunk). For single-threaded tasks it degenerates to
// body(0, n).
func (c *Ctx) TeamFor(n int, body func(lo, hi int)) {
	w, lid := c.TeamSize(), c.LocalID()
	lo := lid * n / w
	hi := (lid + 1) * n / w
	if lo < hi {
		body(lo, hi)
	}
	c.Barrier()
}
