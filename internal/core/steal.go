package core

import (
	"repro/internal/deque"
	"repro/internal/topo"
	"repro/internal/trace"
)

// stealTasks is Algorithm 7: an idle worker (empty queues, self-coordinated)
// visits its log p deterministic partners from the nearest level outwards.
// At each level it either registers for a team whose task requires it, or
// steals tasks from the partner. Returns true if it obtained work (stolen
// tasks in its queues, a task executed, or a registration).
func (w *worker) stealTasks() bool {
	s := w.sched
	for l := 0; l < s.topo.Levels; l++ {
		x := w.partnerAt(l)
		if x == nil {
			continue // missing partner (Refinement 3)
		}
		xc := x.coordp()
		xcR := xc.regw.Load()
		need := int(xcR.Req)
		// "Partner's coordinator requires this thread for execution of its
		// task": the task spans both level-l halves (r ≥ 2^{l+1}) and this
		// worker lies inside its team block.
		if need >= 1<<uint(l+1) && int(xcR.Acq) < need &&
			topo.Overlap(xc.id, w.id, need) {
			if w.tryRegister(xc) {
				return true
			}
			continue
		}
		if w.stealFrom(x, l) {
			return true
		}
	}
	// Liveness fallback for arbitrary p (Refinement 3): tasks can sit on
	// workers whose own block does not fit them and whose partner links do
	// not cover every thief. A bounded global scan keeps them reachable.
	return w.fallbackScan()
}

// stealFrom transfers tasks from partner x found at level l, largest
// eligible size class first (§4: "we can achieve better scheduling in many
// cases, if we steal the largest allowed tasks"). Only tasks with r ≤ 2^l
// are eligible (thief and victim must not share the task's team, §3.2), and
// team tasks only if the thief's block fits them (Refinement 3). If the last
// stolen task is single-threaded it is executed immediately rather than
// enqueued (§4: the last stolen task is not put on the queue so it cannot
// be stolen back).
func (w *worker) stealFrom(x *worker, l int) bool {
	maxJ := l
	if m := len(w.queues) - 1; maxJ > m {
		maxJ = m
	}
	p := w.sched.topo.P
	for j := maxJ; j >= 0; j-- {
		if j > 0 && !topo.BlockFits(w.id, 1<<uint(j), p) {
			continue
		}
		sz := x.queues[j].Size()
		if sz == 0 {
			continue
		}
		cnt := w.stealCount(sz, l-j)
		last, nst := deque.Steal(x.queues[j], w.queues[j], cnt)
		if nst == 0 {
			continue
		}
		w.st.Steals.Add(1)
		w.st.TasksStolen.Add(int64(nst))
		w.ev(trace.EvSteal, x.id, nst, 0)
		if last.r == 1 {
			w.runSolo(last)
		} else {
			w.queues[j].PushBottom(last)
		}
		return true
	}
	return false
}

// fallbackScan performs one bounded round-robin pass over all workers,
// trying the same register-or-steal step as stealTasks. It preserves the
// paper's restriction that a thief never steals a task whose team would
// contain both thief and victim — for those it registers instead. This scan
// is a documented deviation (DESIGN.md): it guarantees progress for
// non-power-of-two p, where the pure partner graph can leave tasks
// unreachable.
func (w *worker) fallbackScan() bool {
	s := w.sched
	p := s.topo.P
	if p <= 2 {
		return false // partner graph is already complete
	}
	start := 1 + int(w.rand()%uint64(p-1))
	for k := 0; k < p-1; k++ {
		v := (w.id + start + k) % p
		if v == w.id {
			continue
		}
		x := s.workers[v]
		xc := x.coordp()
		xcR := xc.regw.Load()
		need := int(xcR.Req)
		if need > 1 && int(xcR.Acq) < need && topo.Overlap(xc.id, w.id, need) {
			if w.tryRegister(xc) {
				return true
			}
			continue
		}
		for j := len(w.queues) - 1; j >= 0; j-- {
			r := 1 << uint(j)
			if j > 0 && (!topo.BlockFits(w.id, r, p) || topo.Overlap(w.id, x.id, r)) {
				continue
			}
			sz := x.queues[j].Size()
			if sz == 0 {
				continue
			}
			cnt := w.stealCount(sz, 0)
			last, nst := deque.Steal(x.queues[j], w.queues[j], cnt)
			if nst == 0 {
				continue
			}
			w.st.Steals.Add(1)
			w.st.TasksStolen.Add(int64(nst))
			w.ev(trace.EvSteal, x.id, nst, 0)
			if last.r == 1 {
				w.runSolo(last)
			} else {
				w.queues[j].PushBottom(last)
			}
			return true
		}
	}
	return false
}
