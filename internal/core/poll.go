package core

import (
	"repro/internal/deque"
	"repro/internal/reg"
	"repro/internal/topo"
	"repro/internal/trace"
)

// pollPartners is the team-building poll of Algorithm 8. It is executed both
// by a coordinator gathering a team (c == w) and by a registered member
// helping its coordinator c. It walks the partners required for a team of
// size rneed and, per partner, either resolves a coordination conflict
// (the smaller task wins; on equal sizes the smaller coordinator id wins,
// Lemma 3), switches to a smaller task that needs this worker, or steals
// smaller tasks to help a busy partner drain its queues.
func (w *worker) pollPartners(c *worker, rneed int) {
	w.st.Polls.Add(1)
	if rneed <= 1 {
		return
	}
	s := w.sched
	for l := 0; l < s.topo.Levels && 1<<uint(l) < rneed; l++ {
		x := w.partnerAt(l)
		if x == nil || x == w || x == c {
			continue
		}
		xc := x.coordp()
		if xc == c {
			continue // partner already registered with our coordinator
		}
		xcR := xc.regw.Load()
		xr := int(xcR.Req)
		switch {
		case xr == rneed:
			// Same-size conflict: only meaningful inside the same block.
			if xc.id != c.id && topo.Overlap(xc.id, c.id, rneed) && xc.id < c.id {
				// The partner's task wins deterministically.
				w.switchCoordinator(c, xc)
				return
			}
		case xr > 1 && xr < rneed:
			// The smaller task always wins.
			if topo.Overlap(xc.id, w.id, xr) {
				// It requires this worker: switch to it.
				w.switchCoordinator(c, xc)
				return
			}
			// It does not require this worker: help it finish sooner by
			// stealing from the partner's queues.
			if w.helpSteal(c, x, l, rneed) {
				return
			}
		default:
			// Partner's coordinator is not gathering (xr == 1) or is
			// gathering a larger task (we win). Either way the partner may
			// hold smaller tasks that block it from joining: steal them.
			if w.helpSteal(c, x, l, rneed) {
				return
			}
		}
	}
}

// switchCoordinator moves w from coordinator c (possibly w itself) to the
// winning coordinator xc (Algorithm 9). A coordinator that loses a conflict
// stops coordinating, revoking all its registrants; a member first
// deregisters from its old coordinator unless it is already part of a fixed
// team (then it must stay).
func (w *worker) switchCoordinator(c, xc *worker) {
	if c == w {
		r := w.regw.Load()
		if !w.regw.CAS(r, reg.R{Req: 1, Acq: 1, Team: 1, Epoch: r.Epoch + 1}) {
			w.casFail()
			return
		}
		w.ev(trace.EvConflictYield, xc.id, int(r.Acq), uint64(r.Epoch))
		w.st.ConflictsLost.Add(1)
	} else {
		if !w.deregister(c) {
			return
		}
		w.teamed = false
		w.coord.Store(w)
	}
	w.tryRegister(xc)
}

// deregister removes w's registration from coordinator c. It returns false
// if w must stay (it belongs to c's fixed team — Algorithm 9: "We are in our
// current coordinator's team and therefore can't drop out" — or the CAS
// lost a race and the caller should retry later). A true return means w is
// no longer counted by c.
func (w *worker) deregister(c *worker) bool {
	rc := c.regw.Load()
	if rc.Epoch != w.regEpoch {
		return true // already revoked; nothing to undo
	}
	if w.teamed || (rc.Team > 1 && topo.Overlap(c.id, w.id, int(rc.Team))) {
		return false // fixed team member: cannot drop out
	}
	if rc.Acq <= 1 {
		return true // defensive: nothing to decrement
	}
	nr := rc
	nr.Acq--
	if !c.regw.CAS(rc, nr) {
		w.casFail()
		return false
	}
	w.ev(trace.EvDeregister, c.id, int(nr.Acq), uint64(nr.Epoch))
	w.st.Deregistrations.Add(1)
	return true
}

// tryRegister registers w at coordinator xc with the single extra CAS of
// the paper (§1: "The overhead for forming a new team is a single extra
// atomic compare-and-swap instruction per thread joining a team"). The
// caller must have w.coordp() == w.
func (w *worker) tryRegister(xc *worker) bool {
	rc := xc.regw.Load()
	need := int(rc.Req)
	if need <= 1 || int(rc.Acq) >= need {
		return false
	}
	if !topo.Overlap(xc.id, w.id, need) {
		return false
	}
	nr := rc
	nr.Acq++
	if !xc.regw.CAS(rc, nr) {
		w.casFail()
		return false
	}
	w.regEpoch = rc.Epoch
	w.teamed = false
	w.coord.Store(xc)
	w.ev(trace.EvRegister, xc.id, int(nr.Acq), uint64(rc.Epoch))
	w.st.Registrations.Add(1)
	return true
}

// helpSteal steals tasks smaller than rneed from partner x found at level l,
// to help x drain its queues and join the team ("Threads attempting to join
// the team for a task requiring a large team may help smaller teams
// instead"). A member first deregisters from its coordinator (teamed members
// never steal). Stolen tasks land in w's own queues; the caller's
// coordinate() loop will execute them with priority.
//
// Only tasks with r ≤ 2^l may be taken (a task whose team would contain
// both thief and victim must not be stolen, §3.2), and only tasks whose
// team block fits this worker (Refinement 3).
func (w *worker) helpSteal(c *worker, x *worker, l, rneed int) bool {
	maxJ := l
	if m := len(w.queues) - 1; maxJ > m {
		maxJ = m
	}
	p := w.sched.topo.P
	for j := maxJ; j >= 0; j-- {
		if 1<<uint(j) >= rneed {
			continue
		}
		if j > 0 && !topo.BlockFits(w.id, 1<<uint(j), p) {
			continue
		}
		sz := x.queues[j].Size()
		if sz == 0 {
			continue
		}
		if c != w {
			// Members must leave the coordinator before working on tasks.
			if !w.deregister(c) {
				return false
			}
			w.teamed = false
			w.coord.Store(w)
		}
		cnt := w.stealCount(sz, l-j)
		last, nst := deque.Steal(x.queues[j], w.queues[j], cnt)
		if nst > 0 {
			// Route everything through the queues: the task may need a team.
			w.queues[j].PushBottom(last)
			w.st.Steals.Add(1)
			w.st.TasksStolen.Add(int64(nst))
			w.ev(trace.EvSteal, x.id, nst, 0)
			return true
		}
		if c != w {
			return true // deregistered: go work on our own
		}
	}
	return false
}

// stealCount computes how many tasks to transfer: the paper's
// min(size/2, 2^dist) heuristic (§4 "Number of tasks to steal"), at least
// one, or exactly one with the StealOne ablation option.
func (w *worker) stealCount(size, dist int) int {
	if w.sched.opts.StealOne {
		return 1
	}
	cnt := size / 2
	if cnt < 1 {
		cnt = 1
	}
	if dist < 0 {
		dist = 0
	}
	if lim := 1 << uint(dist); cnt > lim {
		cnt = lim
	}
	return cnt
}
