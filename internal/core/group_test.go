package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestWBGroupAccounting drives injection and execution by hand on an
// unstarted scheduler, pinning down the exact accounting: the global
// inflight count is the sum of the per-group counts, group counts move only
// with their own tasks, and a drained group reads zero while another group
// still has inflight tasks.
func TestWBGroupAccounting(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	ga, gb := s.NewGroup(), s.NewGroup()
	ran := 0
	ga.Spawn(Solo(func(*Ctx) { ran++ }))
	gb.SpawnBatch([]Task{
		Solo(func(*Ctx) { ran++ }),
		Solo(func(*Ctx) { ran++ }),
	})
	if ga.Pending() != 1 || gb.Pending() != 2 || s.Pending() != 3 {
		t.Fatalf("after spawn: ga=%d gb=%d global=%d, want 1 2 3",
			ga.Pending(), gb.Pending(), s.Pending())
	}
	for s.takeInjected(w) {
	}
	if ga.Pending() != 1 || gb.Pending() != 2 || s.Pending() != 3 {
		t.Fatal("injection must not change inflight counts")
	}
	// The inject list is FIFO and takeInjected pushes to the queue bottom,
	// so PopTop drains in spawn order: ga's task first.
	w.runSolo(w.queues[0].PopTop())
	if ga.Pending() != 0 || gb.Pending() != 2 || s.Pending() != 2 {
		t.Fatalf("after ga's task: ga=%d gb=%d global=%d, want 0 2 2",
			ga.Pending(), gb.Pending(), s.Pending())
	}
	// ga is quiescent — its Wait returns immediately — while gb still has
	// inflight tasks.
	ga.Wait()
	w.runSolo(w.queues[0].PopTop())
	w.runSolo(w.queues[0].PopTop())
	if gb.Pending() != 0 || s.Pending() != 0 || ran != 3 {
		t.Fatalf("after drain: gb=%d global=%d ran=%d", gb.Pending(), s.Pending(), ran)
	}
}

// TestWBGroupInheritance checks that Ctx.Spawn attaches children to the
// spawning task's group and that Ctx.Group exposes it.
func TestWBGroupInheritance(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	g := s.NewGroup()
	var sawGroup *Group
	g.Spawn(Solo(func(ctx *Ctx) {
		sawGroup = ctx.Group()
		ctx.Spawn(Solo(func(*Ctx) {}))
	}))
	s.takeInjected(w)
	w.runSolo(w.queues[0].PopTop())
	if sawGroup != g {
		t.Fatalf("Ctx.Group() = %p, want %p", sawGroup, g)
	}
	if g.Pending() != 1 {
		t.Fatalf("child must inherit the group: pending = %d, want 1", g.Pending())
	}
	w.runSolo(w.queues[0].PopTop())
	if g.Pending() != 0 || s.Pending() != 0 {
		t.Fatalf("after drain: group=%d global=%d", g.Pending(), s.Pending())
	}
	// Group-less external spawns have no group and do not touch g.
	s.Spawn(Solo(func(ctx *Ctx) {
		if ctx.Group() != nil {
			t.Error("group-less task sees a group")
		}
	}))
	s.takeInjected(w)
	w.runSolo(w.queues[0].PopTop())
	if g.Pending() != 0 || s.Pending() != 0 {
		t.Fatal("group-less task leaked into a group count")
	}
}

// TestWBSpawnBatchValidatesBeforeAccounting checks that a batch containing
// an invalid task panics without leaking any inflight count: a client
// recovering the panic must still be able to Wait on the group.
func TestWBSpawnBatchValidatesBeforeAccounting(t *testing.T) {
	s := stopped(2)
	g := s.NewGroup()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid batch task must panic")
			}
		}()
		g.SpawnBatch([]Task{
			Solo(func(*Ctx) {}),
			Func(1, nil), // valid
			&badTask{},   // Threads() = 0: rejected
		})
	}()
	if g.Pending() != 0 || s.Pending() != 0 {
		t.Fatalf("panicking batch leaked counts: group=%d global=%d",
			g.Pending(), s.Pending())
	}
	g.Wait() // must return immediately, nothing was accounted
}

type badTask struct{}

func (*badTask) Threads() int { return 0 }
func (*badTask) Run(*Ctx)     {}

// TestWBWaitReturnsAfterShutdown checks the close-vs-request race of the
// multi-client API: a client blocked in Wait must return (not spin
// forever) when the scheduler is shut down with its tasks still queued.
func TestWBWaitReturnsAfterShutdown(t *testing.T) {
	s := stopped(2) // workers never run: the spawned task stays queued
	g := s.NewGroup()
	g.Spawn(Solo(func(*Ctx) {}))
	s.done.Store(true) // what Shutdown does; no workers to join here
	done := make(chan struct{})
	go func() {
		g.Wait()
		s.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait hung after shutdown with outstanding tasks")
	}
}

// TestGroupWaitIndependence is the tentpole property end to end: one
// client's Wait returns when its own group drains even though another
// group's task is still running, and a group's Wait does not return while
// that group still has an inflight task, however idle the rest of the
// scheduler is.
func TestGroupWaitIndependence(t *testing.T) {
	s := newTest(t, Options{P: 4})
	release := make(chan struct{})
	started := make(chan struct{})
	ga := s.NewGroup()
	ga.Spawn(Solo(func(*Ctx) { close(started); <-release }))
	<-started

	gb := s.NewGroup()
	var ran atomic.Int64
	for i := 0; i < 100; i++ {
		gb.Spawn(Solo(func(ctx *Ctx) {
			ctx.Spawn(Solo(func(*Ctx) { ran.Add(1) }))
			ran.Add(1)
		}))
	}
	gb.Wait() // must not wait on ga's blocked task
	if got := ran.Load(); got != 200 {
		t.Fatalf("gb ran %d tasks, want 200", got)
	}
	if ga.Pending() != 1 {
		t.Fatalf("ga pending = %d, want 1 (still blocked)", ga.Pending())
	}

	waitReturned := make(chan struct{})
	go func() { ga.Wait(); close(waitReturned) }()
	select {
	case <-waitReturned:
		t.Fatal("ga.Wait returned while its task was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	<-waitReturned
	s.Wait() // global quiescence still works
	if s.Pending() != 0 {
		t.Fatalf("global pending = %d after all groups drained", s.Pending())
	}
}

// TestGroupInterleavedLifecycles runs several rounds of overlapping group
// lifecycles (spawn trees into many live groups, wait in shifting order,
// reuse drained groups) and checks that the scheduler's counters end
// consistent: every group and the global count at zero, and the worker
// statistics accounting every solo task exactly once (Spawns == TasksRun;
// steal transfers move queued nodes without re-counting them).
func TestGroupInterleavedLifecycles(t *testing.T) {
	s := newTest(t, Options{P: 4})
	const (
		groups = 6
		rounds = 4
		roots  = 5
		kids   = 4
	)
	var total atomic.Int64
	gs := make([]*Group, groups)
	for i := range gs {
		gs[i] = s.NewGroup()
	}
	for r := 0; r < rounds; r++ {
		for _, g := range gs {
			for k := 0; k < roots; k++ {
				g.Spawn(Solo(func(ctx *Ctx) {
					for j := 0; j < kids; j++ {
						ctx.Spawn(Solo(func(*Ctx) { total.Add(1) }))
					}
					total.Add(1)
				}))
			}
		}
		// Wait in a different order every round; drained groups are
		// reused by the next round.
		for i := range gs {
			g := gs[(i+r)%groups]
			g.Wait()
			if p := g.Pending(); p != 0 {
				t.Fatalf("round %d: drained group pending = %d", r, p)
			}
		}
	}
	want := int64(groups * rounds * roots * (1 + kids))
	if got := total.Load(); got != want {
		t.Fatalf("ran %d tasks, want %d", got, want)
	}
	if s.Pending() != 0 {
		t.Fatalf("global pending = %d", s.Pending())
	}
	// Every solo task ran exactly once and entered the queues exactly once:
	// the injected roots as inject takes, the interior children as spawns
	// (steal transfers move queued nodes without re-counting them).
	st := s.Stats()
	wantSpawns := int64(groups * rounds * roots * kids)
	wantTakes := int64(groups * rounds * roots)
	if st.TasksRun != want || st.Spawns != wantSpawns || st.InjectTakes != wantTakes {
		t.Fatalf("counters inconsistent: TasksRun=%d Spawns=%d InjectTakes=%d, want %d %d %d",
			st.TasksRun, st.Spawns, st.InjectTakes, want, wantSpawns, wantTakes)
	}
}

// TestGroupTeamTasks checks per-group accounting for team tasks: the task
// counts once in its group however many members execute it, and concurrent
// groups running team tasks drain independently.
func TestGroupTeamTasks(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			g := s.NewGroup()
			var members atomic.Int64
			np := 2 << uint(c%2) // teams of 2 and 4
			const reps = 8
			for i := 0; i < reps; i++ {
				g.Spawn(Func(np, func(ctx *Ctx) {
					members.Add(1)
					ctx.Barrier()
				}))
			}
			g.Wait()
			if got := members.Load(); got != int64(np*reps) {
				t.Errorf("client %d: members = %d, want %d", c, got, np*reps)
			}
			if g.Pending() != 0 {
				t.Errorf("client %d: pending = %d", c, g.Pending())
			}
		}(c)
	}
	wg.Wait()
	s.Wait()
	if s.Pending() != 0 {
		t.Fatalf("global pending = %d", s.Pending())
	}
}

// TestSchedulerRunIsOneShotGroup checks that s.Run still blocks until its
// whole task tree completes (the pre-group contract) and leaves no residue.
func TestSchedulerRunIsOneShotGroup(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var ran atomic.Int64
	s.Run(Solo(func(ctx *Ctx) {
		for i := 0; i < 50; i++ {
			ctx.Spawn(Solo(func(c *Ctx) {
				c.Spawn(Solo(func(*Ctx) { ran.Add(1) }))
				ran.Add(1)
			}))
		}
	}))
	if got := ran.Load(); got != 100 {
		t.Fatalf("Run returned before its tree drained: ran = %d, want 100", got)
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d after Run", s.Pending())
	}
}
