package core

import (
	"sync/atomic"
	"testing"
)

// FuzzGroup fuzzes the per-group quiescence invariant: random spawn trees
// are interleaved across a random number of groups on one scheduler, and
// every group's Wait must observe all and only its own tasks — the group's
// completion counter equals exactly the size of its spawn tree, and both
// the group and (after all groups drained) the scheduler read zero pending.
func FuzzGroup(f *testing.F) {
	f.Add(uint64(1), uint8(2), uint8(3), uint8(2), uint8(2))
	f.Add(uint64(42), uint8(5), uint8(1), uint8(3), uint8(1))
	f.Add(uint64(7), uint8(1), uint8(8), uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, nGroups, roots, depth, fanout uint8) {
		ng := 1 + int(nGroups)%8
		nr := int(roots) % 9
		dp := int(depth) % 4
		fo := int(fanout) % 4
		s := New(Options{P: 4, Seed: seed})
		defer s.Shutdown()

		// treeSize is the node count of one root's spawn tree.
		treeSize := 1
		pow := 1
		for d := 0; d < dp; d++ {
			pow *= fo
			treeSize += pow
		}

		counts := make([]atomic.Int64, ng)
		gs := make([]*Group, ng)
		for i := range gs {
			gs[i] = s.NewGroup()
		}
		var rec func(ctx *Ctx, c *atomic.Int64, d int)
		rec = func(ctx *Ctx, c *atomic.Int64, d int) {
			c.Add(1)
			if d == 0 {
				return
			}
			for j := 0; j < fo; j++ {
				ctx.Spawn(Solo(func(cc *Ctx) { rec(cc, c, d-1) }))
			}
		}
		// Interleave the root spawns round-robin across the groups so the
		// groups' trees grow and drain concurrently.
		for r := 0; r < nr; r++ {
			for i, g := range gs {
				c := &counts[i]
				g.Spawn(Solo(func(ctx *Ctx) { rec(ctx, c, dp) }))
			}
		}
		// Wait in a seed-dependent rotation; each Wait must see exactly its
		// own group's tree completed, no more and no less.
		for k := 0; k < ng; k++ {
			i := (k + int(seed%uint64(ng))) % ng
			gs[i].Wait()
			if p := gs[i].Pending(); p != 0 {
				t.Fatalf("group %d pending = %d after Wait", i, p)
			}
			want := int64(nr * treeSize)
			if got := counts[i].Load(); got != want {
				t.Fatalf("group %d observed %d tasks at Wait, want %d (roots=%d depth=%d fanout=%d)",
					i, got, want, nr, dp, fo)
			}
		}
		s.Wait()
		if s.Pending() != 0 {
			t.Fatalf("global pending = %d after all groups drained", s.Pending())
		}
	})
}
