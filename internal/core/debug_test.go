package core

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// runWithDeadline runs fn and fails with a scheduler state dump if it does
// not finish in time — the main tool for catching protocol deadlocks.
func runWithDeadline(t *testing.T, s *Scheduler, d time.Duration, fn func()) {
	t.Helper()
	doneCh := make(chan struct{})
	go func() {
		fn()
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(d):
		t.Fatalf("deadline exceeded; scheduler state:\n%s\ntrace:\n%s",
			s.DumpState(), s.TraceDump())
	}
}

func TestManyTeamTasksDump(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	s.TraceOn()
	var execs atomic.Int64
	want := int64(0)
	for i := 0; i < 50; i++ {
		for r := 1; r <= p; r *= 2 {
			want += int64(r)
			s.Spawn(Func(r, func(*Ctx) { execs.Add(1) }))
		}
	}
	runWithDeadline(t, s, 10*time.Second, s.Wait)
	if got := execs.Load(); got != want {
		t.Fatalf("participant executions = %d, want %d", got, want)
	}
	// The dump carries the observability fields: the quiescence-scan count
	// (stable once Wait returned and no waiter is parked — Wait itself ran at
	// least one scan) and each worker's free-list occupancy.
	scans := s.QuiesceScans()
	if scans < 1 {
		t.Fatalf("QuiesceScans = %d after Wait, want >= 1", scans)
	}
	dump := s.DumpState()
	if want := fmt.Sprintf("quiesce_scans=%d", scans); !strings.Contains(dump, want) {
		t.Fatalf("dump lacks %q:\n%s", want, dump)
	}
	if !strings.Contains(dump, " free=") {
		t.Fatalf("dump lacks per-worker free-list occupancy:\n%s", dump)
	}
}
