package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Options configures a Scheduler.
type Options struct {
	// P is the number of workers ("hardware threads"). Default: runtime.NumCPU().
	P int
	// Randomized enables Refinement 4: at level ℓ the steal/team partner is
	// chosen uniformly from the 2^ℓ ids of the sibling sub-block instead of
	// the single deterministic bit-flip partner. Default: deterministic.
	Randomized bool
	// PinOSThreads locks each worker goroutine to an OS thread, approximating
	// the paper's Pthreads workers. Default: off.
	PinOSThreads bool
	// DisableTeamReuse disbands a team after every task instead of keeping it
	// for subsequent tasks of the same size (ablation knob; the paper's
	// default keeps teams together, §3).
	DisableTeamReuse bool
	// Seed seeds the per-worker random generators used by Randomized mode.
	Seed uint64
	// StealOne limits every steal to a single task instead of the paper's
	// min(size/2, 2^ℓ) (ablation knob).
	StealOne bool
}

// Scheduler is a work-stealing scheduler with deterministic team-building.
// Create with New, feed it with Spawn or Run, and release its workers with
// Shutdown.
type Scheduler struct {
	opts    Options
	topo    *topo.Topology
	workers []*worker

	inflight atomic.Int64 // spawned but not yet completed tasks
	gen      atomic.Uint64
	done     atomic.Bool
	wg       sync.WaitGroup
	trace    tracer

	injectMu sync.Mutex
	inject   []*node
}

// New starts a scheduler with p workers. The workers idle (with capped
// backoff) until tasks are submitted. GOMAXPROCS is raised to at least p
// (see topo.EnsureGOMAXPROCS): the paper's workers are preemptively
// scheduled OS threads, and the team-building protocol relies on that.
func New(opts Options) *Scheduler {
	s := build(opts)
	topo.EnsureGOMAXPROCS(s.topo.P)
	s.start()
	return s
}

// build constructs the scheduler without starting the worker goroutines.
// Tests drive the protocol single-threaded on a built-but-unstarted
// scheduler to pin down exact interleavings.
func build(opts Options) *Scheduler {
	if opts.P <= 0 {
		opts.P = runtime.NumCPU()
	}
	if opts.P > 1<<15 {
		panic(fmt.Sprintf("core: p = %d exceeds the 16-bit registration fields", opts.P))
	}
	s := &Scheduler{
		opts: opts,
		topo: topo.New(opts.P),
	}
	s.workers = make([]*worker, opts.P)
	for i := range s.workers {
		s.workers[i] = newWorker(s, i)
	}
	return s
}

func (s *Scheduler) start() {
	s.wg.Add(len(s.workers))
	for _, w := range s.workers {
		go w.loop()
	}
}

// P returns the number of workers.
func (s *Scheduler) P() int { return s.topo.P }

// MaxTeam returns the largest thread requirement a task may declare: the
// largest power of two ≤ P (Refinement 3 restricts teams to power-of-two
// blocks that fit inside the worker id space).
func (s *Scheduler) MaxTeam() int { return s.topo.MaxTeam }

// Spawn submits a task from outside the scheduler, belonging to no group.
// It is safe for concurrent use. Inside a running task, use Ctx.Spawn
// instead (it is cheaper and preserves depth-first order); to give the task
// its own quiescence domain, spawn through a Group instead.
func (s *Scheduler) Spawn(t Task) {
	s.injectNodes(s.newNode(t, nil))
}

// Wait blocks until all spawned tasks (and their descendants) have
// completed — global quiescence across every group. Per-client callers
// should prefer Group.Wait, which is not delayed by other clients' tasks.
// If the scheduler is shut down while tasks are outstanding, Wait returns
// early — the tasks are abandoned (see Shutdown) and would never drain.
func (s *Scheduler) Wait() {
	var bo backoff.Backoff
	for s.inflight.Load() > 0 {
		if s.done.Load() {
			return // shutdown: abandoned tasks never complete
		}
		bo.Wait()
	}
}

// Run submits t as a one-shot group and waits for that group's quiescence:
// it returns when t and all its descendants have completed. For a single
// client this is indistinguishable from waiting for global quiescence; with
// several concurrent clients on one scheduler, each Run waits only for its
// own task tree.
func (s *Scheduler) Run(t Task) {
	s.NewGroup().Run(t)
}

// Shutdown stops all workers. Outstanding tasks are abandoned; call Wait
// first for a clean drain. Shutdown is idempotent and blocks until all
// worker goroutines have exited.
func (s *Scheduler) Shutdown() {
	s.done.Store(true)
	s.wg.Wait()
}

// Stats returns the aggregated counters of all workers.
func (s *Scheduler) Stats() stats.Snapshot {
	var total stats.Snapshot
	for _, w := range s.workers {
		total.Add(w.st.Snapshot())
	}
	return total
}

// WorkerStats returns a per-worker snapshot of the scheduler counters.
func (s *Scheduler) WorkerStats() []stats.Snapshot {
	out := make([]stats.Snapshot, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.st.Snapshot()
	}
	return out
}

// Pending returns the current number of in-flight tasks (racy; for tests
// and diagnostics).
func (s *Scheduler) Pending() int64 { return s.inflight.Load() }

// makeNode validates t's thread requirement and wraps it for the queues,
// without accounting it in-flight. It panics on an invalid requirement —
// before any accounting, so a panicking spawn never leaks an inflight
// count.
func (s *Scheduler) makeNode(t Task, g *Group) *node {
	r := t.Threads()
	if r < 1 {
		panic(fmt.Sprintf("core: task thread requirement %d < 1", r))
	}
	if r > s.topo.MaxTeam {
		panic(fmt.Sprintf("core: task requires %d threads; scheduler supports at most %d (p = %d)",
			r, s.topo.MaxTeam, s.topo.P))
	}
	return &node{task: t, r: r, group: g}
}

// account raises the in-flight counts for n, globally and in its group
// (nil for group-less tasks). The counts are raised before the node
// becomes runnable anywhere, so neither Wait can observe a transient zero
// while the task tree is still growing.
func (s *Scheduler) account(n *node) {
	s.inflight.Add(1)
	if n.group != nil {
		n.group.inflight.Add(1)
	}
}

// newNode is makeNode + account: the single-task spawn path.
func (s *Scheduler) newNode(t Task, g *Group) *node {
	n := s.makeNode(t, g)
	s.account(n)
	return n
}

// injectNodes appends externally submitted nodes to the inject list.
func (s *Scheduler) injectNodes(ns ...*node) {
	s.injectMu.Lock()
	s.inject = append(s.inject, ns...)
	s.injectMu.Unlock()
}

// taskDone marks one task of group g (nil for group-less tasks) as
// completed. A task's children are accounted before its own completion is
// reported, so a group count of zero really means quiescence. The global
// counter is decremented first: a client returning from Group.Wait (the
// group count hitting zero) must never observe its own finished tasks
// still in Scheduler.Pending.
func (s *Scheduler) taskDone(g *Group) {
	s.inflight.Add(-1)
	if g != nil {
		g.inflight.Add(-1)
	}
}

// nextGen returns a scheduler-unique generation number for team executions.
func (s *Scheduler) nextGen() uint64 { return s.gen.Add(1) }

// takeInjected moves one externally submitted task into w's queues.
func (s *Scheduler) takeInjected(w *worker) bool {
	s.injectMu.Lock()
	if len(s.inject) == 0 {
		s.injectMu.Unlock()
		return false
	}
	n := s.inject[0]
	s.inject = s.inject[1:]
	s.injectMu.Unlock()
	w.pushNode(n)
	return true
}
