package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/backoff"
	"repro/internal/stats"
	"repro/internal/topo"
)

// Options configures a Scheduler.
type Options struct {
	// P is the number of workers ("hardware threads"). Default: runtime.NumCPU().
	P int
	// Randomized enables Refinement 4: at level ℓ the steal/team partner is
	// chosen uniformly from the 2^ℓ ids of the sibling sub-block instead of
	// the single deterministic bit-flip partner. Default: deterministic.
	Randomized bool
	// PinOSThreads locks each worker goroutine to an OS thread, approximating
	// the paper's Pthreads workers. Default: off.
	PinOSThreads bool
	// DisableTeamReuse disbands a team after every task instead of keeping it
	// for subsequent tasks of the same size (ablation knob; the paper's
	// default keeps teams together, §3).
	DisableTeamReuse bool
	// Seed seeds the per-worker random generators used by Randomized mode.
	Seed uint64
	// StealOne limits every steal to a single task instead of the paper's
	// min(size/2, 2^ℓ) (ablation knob).
	StealOne bool
}

// Scheduler is a work-stealing scheduler with deterministic team-building.
// Create with New, feed it with Spawn or Run, and release its workers with
// Shutdown.
type Scheduler struct {
	opts    Options
	topo    *topo.Topology
	workers []*worker

	inflight atomic.Int64 // spawned but not yet completed tasks
	gen      atomic.Uint64
	done     atomic.Bool
	wg       sync.WaitGroup
	trace    tracer

	injectMu sync.Mutex
	inject   []*node
}

// New starts a scheduler with p workers. The workers idle (with capped
// backoff) until tasks are submitted. GOMAXPROCS is raised to at least p
// (see topo.EnsureGOMAXPROCS): the paper's workers are preemptively
// scheduled OS threads, and the team-building protocol relies on that.
func New(opts Options) *Scheduler {
	s := build(opts)
	topo.EnsureGOMAXPROCS(s.topo.P)
	s.start()
	return s
}

// build constructs the scheduler without starting the worker goroutines.
// Tests drive the protocol single-threaded on a built-but-unstarted
// scheduler to pin down exact interleavings.
func build(opts Options) *Scheduler {
	if opts.P <= 0 {
		opts.P = runtime.NumCPU()
	}
	if opts.P > 1<<15 {
		panic(fmt.Sprintf("core: p = %d exceeds the 16-bit registration fields", opts.P))
	}
	s := &Scheduler{
		opts: opts,
		topo: topo.New(opts.P),
	}
	s.workers = make([]*worker, opts.P)
	for i := range s.workers {
		s.workers[i] = newWorker(s, i)
	}
	return s
}

func (s *Scheduler) start() {
	s.wg.Add(len(s.workers))
	for _, w := range s.workers {
		go w.loop()
	}
}

// P returns the number of workers.
func (s *Scheduler) P() int { return s.topo.P }

// MaxTeam returns the largest thread requirement a task may declare: the
// largest power of two ≤ P (Refinement 3 restricts teams to power-of-two
// blocks that fit inside the worker id space).
func (s *Scheduler) MaxTeam() int { return s.topo.MaxTeam }

// Spawn submits a task from outside the scheduler. It is safe for concurrent
// use. Inside a running task, use Ctx.Spawn instead (it is cheaper and
// preserves depth-first order).
func (s *Scheduler) Spawn(t Task) {
	n := s.newNode(t)
	s.inflight.Add(1)
	s.injectMu.Lock()
	s.inject = append(s.inject, n)
	s.injectMu.Unlock()
}

// Wait blocks until all spawned tasks (and their descendants) have completed.
func (s *Scheduler) Wait() {
	var bo backoff.Backoff
	for s.inflight.Load() > 0 {
		bo.Wait()
	}
}

// Run submits t and waits for quiescence.
func (s *Scheduler) Run(t Task) {
	s.Spawn(t)
	s.Wait()
}

// Shutdown stops all workers. Outstanding tasks are abandoned; call Wait
// first for a clean drain. Shutdown is idempotent and blocks until all
// worker goroutines have exited.
func (s *Scheduler) Shutdown() {
	s.done.Store(true)
	s.wg.Wait()
}

// Stats returns the aggregated counters of all workers.
func (s *Scheduler) Stats() stats.Snapshot {
	var total stats.Snapshot
	for _, w := range s.workers {
		total.Add(w.st.Snapshot())
	}
	return total
}

// WorkerStats returns a per-worker snapshot of the scheduler counters.
func (s *Scheduler) WorkerStats() []stats.Snapshot {
	out := make([]stats.Snapshot, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.st.Snapshot()
	}
	return out
}

// Pending returns the current number of in-flight tasks (racy; for tests
// and diagnostics).
func (s *Scheduler) Pending() int64 { return s.inflight.Load() }

func (s *Scheduler) newNode(t Task) *node {
	r := t.Threads()
	if r < 1 {
		panic(fmt.Sprintf("core: task thread requirement %d < 1", r))
	}
	if r > s.topo.MaxTeam {
		panic(fmt.Sprintf("core: task requires %d threads; scheduler supports at most %d (p = %d)",
			r, s.topo.MaxTeam, s.topo.P))
	}
	return &node{task: t, r: r}
}

// taskDone marks one task as completed.
func (s *Scheduler) taskDone() { s.inflight.Add(-1) }

// nextGen returns a scheduler-unique generation number for team executions.
func (s *Scheduler) nextGen() uint64 { return s.gen.Add(1) }

// takeInjected moves one externally submitted task into w's queues.
func (s *Scheduler) takeInjected(w *worker) bool {
	s.injectMu.Lock()
	if len(s.inject) == 0 {
		s.injectMu.Unlock()
		return false
	}
	n := s.inject[0]
	s.inject = s.inject[1:]
	s.injectMu.Unlock()
	w.pushNode(n)
	return true
}
