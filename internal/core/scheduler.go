package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/trace"
)

// Options configures a Scheduler.
type Options struct {
	// P is the number of workers ("hardware threads"). Default: runtime.NumCPU().
	P int
	// Randomized enables Refinement 4: at level ℓ the steal/team partner is
	// chosen uniformly from the 2^ℓ ids of the sibling sub-block instead of
	// the single deterministic bit-flip partner. Default: deterministic.
	Randomized bool
	// PinOSThreads locks each worker goroutine to an OS thread, approximating
	// the paper's Pthreads workers. Default: off.
	PinOSThreads bool
	// DisableTeamReuse disbands a team after every task instead of keeping it
	// for subsequent tasks of the same size (ablation knob; the paper's
	// default keeps teams together, §3).
	DisableTeamReuse bool
	// Seed seeds the per-worker random generators used by Randomized mode.
	Seed uint64
	// StealOne limits every steal to a single task instead of the paper's
	// min(size/2, 2^ℓ) (ablation knob).
	StealOne bool
	// MaxPendingPerGroup bounds the number of admitted-but-not-yet-started
	// external tasks of one submission source (a Group, or the catch-all
	// queue of group-less Scheduler.Spawn). A blocking spawn over the bound
	// parks until workers drain the source's inject queue; TrySpawn returns
	// ErrSaturated instead. 0 means unbounded.
	MaxPendingPerGroup int
	// MaxInject bounds the total admitted-but-not-yet-started external tasks
	// across all sources — the scheduler-wide backpressure knob for a flood
	// of concurrent clients. 0 means unbounded.
	MaxInject int
	// Trace starts the scheduler with execution tracing already enabled —
	// equivalent to calling StartTrace before any task is submitted (see
	// internal/trace). Off by default; a disabled tracer costs one predicted
	// branch per event site.
	Trace bool
	// TraceEvents overrides the per-worker trace ring capacity (events,
	// rounded up to a power of two). 0 selects the default (8192). Rings
	// are allocated lazily on the first StartTrace.
	TraceEvents int
	// Fault, when non-nil, is invoked at the scheduler's fault points (see
	// FaultPoint) with the executing worker's id, or −1 on client
	// goroutines — the fault-injection hook behind internal/chaos. The hook
	// may sleep or spin to model stalls, and may cancel groups, but must not
	// call back into the scheduler's spawn or wait paths. A nil hook costs
	// one predicted branch per fault point, none of them on the interior
	// spawn path.
	Fault func(p FaultPoint, worker int)
}

// FaultPoint identifies a scheduler code path at which the Options.Fault
// hook fires. The points cover the paths whose timing matters for graceful
// degradation — admission, inject take, and the worker loop — not the
// interior spawn/run hot path, which stays hook-free.
type FaultPoint uint8

const (
	// FaultWorkerLoop fires at the top of every worker loop iteration
	// (member polling, coordination, take, steal all follow it). Stalling
	// here models a descheduled or overloaded worker.
	FaultWorkerLoop FaultPoint = iota
	// FaultInjectTake fires when a worker observed pending injected work and
	// is about to drain the inject queues. Delaying here widens the window
	// between a group's cancellation and its nodes' revocation.
	FaultInjectTake
	// FaultAdmit fires at the start of every external admission call
	// (blocking and non-blocking), on the submitting goroutine (worker −1).
	FaultAdmit

	NumFaultPoints
)

// Scheduler is a work-stealing scheduler with deterministic team-building.
// Create with New, feed it with Spawn or Run, and release its workers with
// Shutdown.
type Scheduler struct {
	opts    Options
	topo    *topo.Topology
	workers []*worker

	// shards[i] is worker i's slice of the global in-flight count; the last
	// shard belongs to the external submission path (see inflight.go).
	shards []inflightShard
	qz     quiesce // parks Wait on the in-flight zero transition
	gen    atomic.Uint64
	done   atomic.Bool
	doneCh chan struct{} // closed by Shutdown; wakes parked waiters
	wg     sync.WaitGroup

	// Execution tracer (P+1 rings: one per worker, one for the admission
	// path) and worker-state sampling profiler; see trace.go in this
	// package and internal/trace.
	xt       *trace.Tracer
	profiler *trace.Sampler

	// born anchors the repro_uptime_seconds counter (scrape-time rates:
	// two scrapes of any _total family divided by the uptime delta give a
	// rate without a range-vector-capable consumer).
	born time.Time

	// groupSeq hands every Group a scheduler-unique id, carried by trace
	// events so one group's admissions and completions link into an async
	// span in the Chrome export.
	groupSeq atomic.Uint64

	// admitWait is the scheduler-owned inject-to-take admission latency:
	// nodes are stamped (trace.Now) at admission under admitMu and observed
	// into the taking worker's shard at take time, rendered as the
	// repro_admission_wait_seconds histogram.
	admitWait *stats.Histogram

	// pendingInject is the total of nodes across all inject queues. It is
	// written under admitMu but read lock-free by takeInjected's empty fast
	// path, so an idle worker's poll costs one atomic load instead of a
	// global mutex acquisition.
	pendingInject atomic.Int64

	// Admission state (see admission.go): per-source inject queues drained
	// round-robin, with optional bounds exerting backpressure on spawners.
	admitMu      sync.Mutex
	admitCond    *sync.Cond // signaled when inject room frees up
	admitWaiters int        // spawners parked on admitCond
	ringHead     *injectQ   // next non-empty source to drain (circular list)
	ringLen      int        // non-empty sources in the ring (diagnostics)
	noGroupQ     injectQ    // source for group-less Scheduler.Spawn
	admit        stats.Admission

	// waiterScans counts quiescence sum-scans run by external waiters
	// (Scheduler.Wait); scans run on worker completion paths land on the
	// per-worker stats.QuiesceScans counters instead, so the hot path never
	// writes this shared line.
	waiterScans atomic.Int64

	// Named groups (NewNamedGroup), tracked for the per-group metrics
	// gauges; anonymous groups are not tracked.
	groupsMu    sync.Mutex
	namedGroups []*Group

	// Metrics registry, built once on first use (see metrics.go).
	metricsOnce sync.Once
	metricsReg  *stats.Registry
}

// New starts a scheduler with p workers. The workers idle (with capped
// backoff) until tasks are submitted. GOMAXPROCS is raised to at least p
// (see topo.EnsureGOMAXPROCS): the paper's workers are preemptively
// scheduled OS threads, and the team-building protocol relies on that.
func New(opts Options) *Scheduler {
	s := build(opts)
	topo.EnsureGOMAXPROCS(s.topo.P)
	s.start()
	return s
}

// build constructs the scheduler without starting the worker goroutines.
// Tests drive the protocol single-threaded on a built-but-unstarted
// scheduler to pin down exact interleavings.
func build(opts Options) *Scheduler {
	if opts.P <= 0 {
		opts.P = runtime.NumCPU()
	}
	if opts.P > 1<<15 {
		panic(fmt.Sprintf("core: p = %d exceeds the 16-bit registration fields", opts.P))
	}
	s := &Scheduler{
		opts:   opts,
		topo:   topo.New(opts.P),
		doneCh: make(chan struct{}),
		born:   time.Now(),
	}
	s.admitCond = sync.NewCond(&s.admitMu)
	s.shards = make([]inflightShard, opts.P+1)
	s.workers = make([]*worker, opts.P)
	for i := range s.workers {
		s.workers[i] = newWorker(s, i)
	}
	s.xt = trace.New(traceNames(opts.P), opts.TraceEvents)
	s.admitWait = stats.NewHistogram(opts.P)
	s.profiler = trace.NewSampler(opts.P, func(i int) trace.State {
		return trace.State(s.workers[i].state.Load())
	})
	if opts.Trace {
		s.xt.Start()
	}
	return s
}

func (s *Scheduler) start() {
	s.wg.Add(len(s.workers))
	for _, w := range s.workers {
		go w.loop()
	}
}

// P returns the number of workers.
func (s *Scheduler) P() int { return s.topo.P }

// MaxTeam returns the largest thread requirement a task may declare: the
// largest power of two ≤ P (Refinement 3 restricts teams to power-of-two
// blocks that fit inside the worker id space).
func (s *Scheduler) MaxTeam() int { return s.topo.MaxTeam }

// Spawn submits a task from outside the scheduler, belonging to no group.
// It is safe for concurrent use. Inside a running task, use Ctx.Spawn
// instead (it is cheaper and preserves depth-first order); to give the task
// its own quiescence domain, spawn through a Group instead.
//
// With admission bounds configured (Options.MaxPendingPerGroup/MaxInject),
// Spawn blocks while the bounds leave no room. It returns nil once the task
// is admitted, or ErrShutdown on a scheduler that has been shut down — the
// task is then dropped without ever being accounted in-flight (see
// Shutdown). Group-less tasks cannot be canceled; spawn through a Group for
// deadline/cancellation support.
func (s *Scheduler) Spawn(t Task) error {
	_, err := s.admitBlocking(nil, &s.noGroupQ, []*node{s.makeNode(t, nil)})
	return err
}

// Wait blocks until all spawned tasks (and their descendants) have
// completed — global quiescence across every group. Per-client callers
// should prefer Group.Wait, which is not delayed by other clients' tasks.
// Waiters park on a completion notification (no busy-waiting, however many
// clients wait concurrently). If the scheduler is shut down while tasks are
// outstanding, Wait returns early — the tasks are abandoned (see Shutdown)
// and would never drain.
func (s *Scheduler) Wait() {
	for {
		if s.done.Load() || s.waiterScan() {
			return
		}
		ch := s.qz.gate()
		if s.done.Load() || s.waiterScan() {
			return
		}
		select {
		case <-ch:
		case <-s.doneCh:
		}
	}
}

// Run submits t as a one-shot group and waits for that group's quiescence:
// it returns when t and all its descendants have completed (nil), or
// ErrShutdown if the scheduler shut down first. For a single client this is
// indistinguishable from waiting for global quiescence; with several
// concurrent clients on one scheduler, each Run waits only for its own task
// tree.
func (s *Scheduler) Run(t Task) error {
	return s.NewGroup().Run(t)
}

// Shutdown stops all workers. Outstanding tasks are abandoned; call Wait
// first for a clean drain. Spawners parked on admission backpressure are
// woken and their unadmitted tasks dropped; submissions after Shutdown has
// returned are guaranteed no-ops. Shutdown is idempotent and blocks until
// all worker goroutines have exited.
func (s *Scheduler) Shutdown() {
	if s.done.CompareAndSwap(false, true) {
		close(s.doneCh)
		s.admitMu.Lock()
		s.admitCond.Broadcast()
		s.admitMu.Unlock()
	}
	s.profiler.Stop()
	s.wg.Wait()
}

// Stats returns the aggregated counters of all workers.
func (s *Scheduler) Stats() stats.Snapshot {
	var total stats.Snapshot
	for _, w := range s.workers {
		total.Add(w.st.Snapshot())
	}
	return total
}

// WorkerStats returns a per-worker snapshot of the scheduler counters.
func (s *Scheduler) WorkerStats() []stats.Snapshot {
	out := make([]stats.Snapshot, len(s.workers))
	for i, w := range s.workers {
		out[i] = w.st.Snapshot()
	}
	return out
}

// Admission returns a snapshot of the admission-control counters of the
// external submission path (see admission.go).
func (s *Scheduler) Admission() stats.AdmissionSnapshot { return s.admit.Snapshot() }

// AdmissionWait returns a snapshot of the scheduler-owned inject-to-take
// admission latency histogram: the time every admitted external task spent
// in its inject queue before a worker took it (also rendered by Metrics as
// repro_admission_wait_seconds).
func (s *Scheduler) AdmissionWait() stats.HistSnapshot { return s.admitWait.Snapshot() }

// Uptime returns the time since the scheduler was constructed, the anchor
// of the repro_uptime_seconds metric.
func (s *Scheduler) Uptime() time.Duration { return time.Since(s.born) }

// waiterScan runs one counted quiescence scan on behalf of an external
// waiter. Waiters are off the task hot path, so the shared counter is fine
// here; worker-side scans (taskDone) count on the worker's own stats line.
func (s *Scheduler) waiterScan() bool {
	s.waiterScans.Add(1)
	return s.quiescent()
}

// QuiesceScans returns the total number of quiescence sum-scans run so far,
// across worker completion paths and external waiters. Scans are elided
// entirely while no waiter is parked, so this also measures how often the
// armed-gate optimization actually fires.
func (s *Scheduler) QuiesceScans() int64 {
	total := s.waiterScans.Load()
	for _, w := range s.workers {
		total += w.st.QuiesceScans.Load()
	}
	return total
}

// Pending returns the current number of in-flight tasks (racy; for tests
// and diagnostics — individual shard reads are atomic but the sum is not a
// single snapshot, so a live scheduler may even report a transient
// negative; it is exact when nothing is running).
func (s *Scheduler) Pending() int64 { return s.inflightSum() }

// validateReq panics on an invalid thread requirement — before any node is
// fetched or accounted, so a panicking spawn never leaks an inflight count.
func (s *Scheduler) validateReq(r int) {
	if r < 1 {
		panic(fmt.Sprintf("core: task thread requirement %d < 1", r))
	}
	if r > s.topo.MaxTeam {
		panic(fmt.Sprintf("core: task requires %d threads; scheduler supports at most %d (p = %d)",
			r, s.topo.MaxTeam, s.topo.P))
	}
}

// makeNode validates t's thread requirement and wraps it (recycling a
// pooled node) for the external submission path, without accounting it
// in-flight: external tasks are accounted at admission (enqueueLocked),
// under admitMu, against the external in-flight shard.
func (s *Scheduler) makeNode(t Task, g *Group) *node {
	r := t.Threads()
	s.validateReq(r)
	n := getNodeShared()
	n.task, n.r, n.group = t, r, g
	return n
}

// taskDone marks one task of group g (nil for group-less tasks) as
// completed, on the completing worker's own in-flight shard. A task's
// children are accounted before its own completion is reported, so a count
// of zero really means quiescence. The global shard is decremented first: a
// client returning from Group.Wait (the group count hitting zero) must
// never observe its own finished tasks still in Scheduler.Pending. The
// global quiescence scan runs only when a waiter is actually parked
// (qz.armed); the per-group counter keeps its exact zero-transition
// release — groups are per-client, not per-task-tree-node, so its line is
// not globally contended.
func (w *worker) taskDone(g *Group) {
	w.inflightAdd(-1)
	s := w.sched
	if s.qz.armed() {
		w.st.QuiesceScans.Add(1) // owner-only line: no shared write added
		q := s.quiescent()
		if xt := s.xt; xt.Enabled() {
			var x uint32
			if q {
				x = 1
			}
			xt.Record(w.id, trace.EvQuiesceScan, w.id, x, 0)
		}
		if q {
			s.qz.release()
		}
	}
	if g != nil {
		if g.inflight.Add(-1) == 0 {
			if xt := s.xt; xt.Enabled() {
				xt.Record(w.id, trace.EvGroupDone, w.id, uint32(g.gid), 0)
			}
			g.qz.release()
		}
	}
}

// nextGen returns a scheduler-unique generation number for team executions.
func (s *Scheduler) nextGen() uint64 { return s.gen.Add(1) }
