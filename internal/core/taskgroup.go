package core

import (
	"sync"
	"sync/atomic"

	"repro/internal/backoff"
)

// TaskGroup provides a fork/join-style sync for single-threaded subtasks
// (the `sync` statement of the paper's Algorithm 10). Waiting does not block
// the worker: it helps by executing queued single-threaded tasks until the
// group drains.
//
// Restriction: only tasks with Threads() == 1 may be spawned through a
// TaskGroup. A worker waiting inside a task cannot join or coordinate teams
// (doing so from within a running task would deadlock the member protocol),
// so multi-threaded children must be fire-and-forget — exactly how the
// paper's mixed-mode Quicksort uses them.
type TaskGroup struct {
	pending atomic.Int64
}

// tgWrap is the pooled wrapper task that reports a child's completion to
// its TaskGroup. Recycling the wrappers (plus the scheduler's node free
// list) makes a steady-state TaskGroup spawn+join allocation-free when the
// caller reuses the child Task value.
type tgWrap struct {
	g *TaskGroup
	t Task
}

var tgWrapPool = sync.Pool{New: func() any { return new(tgWrap) }}

func (x *tgWrap) Threads() int { return 1 }

func (x *tgWrap) Run(c *Ctx) {
	g, t := x.g, x.t
	x.g, x.t = nil, nil
	tgWrapPool.Put(x) // content copied out; nothing dereferences x after Run starts
	defer g.pending.Add(-1)
	t.Run(c)
}

// Spawn submits t as part of the group. t.Threads() must be 1.
func (g *TaskGroup) Spawn(ctx *Ctx, t Task) {
	if t.Threads() != 1 {
		panic("core: TaskGroup supports only single-threaded tasks (see doc)")
	}
	g.pending.Add(1)
	x := tgWrapPool.Get().(*tgWrap)
	x.g, x.t = g, t
	ctx.Spawn(x)
}

// Go submits fn as a single-threaded task of the group.
func (g *TaskGroup) Go(ctx *Ctx, fn func(*Ctx)) {
	g.Spawn(ctx, Solo(fn))
}

// Wait returns once every task spawned through the group (including tasks
// spawned by other workers into the same group) has completed. While
// waiting, the calling worker executes single-threaded tasks from its own
// queue and steals single-threaded tasks from others.
func (g *TaskGroup) Wait(ctx *Ctx) {
	w := ctx.w
	var bo backoff.Backoff
	for g.pending.Load() > 0 {
		if n := w.queues[0].PopBottom(); n != nil {
			w.runSolo(n)
			bo.Reset()
			continue
		}
		if w.stealSoloOnly() {
			bo.Reset()
			continue
		}
		bo.Wait()
	}
}

// stealSoloOnly steals only single-threaded tasks and never registers for
// teams: safe to call from inside a running task (used by TaskGroup.Wait).
func (w *worker) stealSoloOnly() bool {
	s := w.sched
	for l := 0; l < s.topo.Levels; l++ {
		x := w.partnerAt(l)
		if x == nil {
			continue
		}
		sz := x.queues[0].Size()
		if sz == 0 {
			continue
		}
		last, nst := stealSolo(w, x, w.stealCount(sz, l))
		if nst == 0 {
			continue
		}
		w.st.Steals.Add(1)
		w.st.TasksStolen.Add(int64(nst))
		w.runSolo(last)
		return true
	}
	return false
}

func stealSolo(w, x *worker, cnt int) (*node, int) {
	last, n := (*node)(nil), 0
	for n < cnt {
		v := x.queues[0].PopTop()
		if v == nil {
			break
		}
		if last != nil {
			w.queues[0].PushBottom(last)
		}
		last = v
		n++
	}
	return last, n
}
