package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShutdownWithPendingWork verifies Shutdown returns even while tasks are
// queued or running (outstanding work is abandoned, per the documented
// contract).
func TestShutdownWithPendingWork(t *testing.T) {
	s := New(Options{P: 4})
	var started atomic.Int64
	for i := 0; i < 200; i++ {
		s.Spawn(Solo(func(*Ctx) {
			started.Add(1)
			time.Sleep(100 * time.Microsecond)
		}))
	}
	done := make(chan struct{})
	go func() {
		s.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("Shutdown hung with pending work:\n%s", s.DumpState())
	}
}

// TestSpawnAfterShutdownIsNoOp pins the documented spawn-after-Shutdown
// semantics: submissions to a shut-down scheduler are dropped without ever
// being accounted, so they cannot inflate the inflight counters (which
// would make a later diagnostic Pending() read nonzero forever), and the
// non-blocking forms report ErrShutdown. Runs under the race gate: the
// spawns race nothing, but the test documents the memory-visibility
// contract (Shutdown returning happens-before the no-op guarantee).
func TestSpawnAfterShutdownIsNoOp(t *testing.T) {
	s := New(Options{P: 2})
	g := s.NewGroup()
	s.Shutdown()

	if err := s.Spawn(Solo(func(*Ctx) { t.Error("ran a task spawned after Shutdown") })); !errors.Is(err, ErrShutdown) {
		t.Fatalf("Spawn after Shutdown: err = %v, want ErrShutdown", err)
	}
	if err := g.Spawn(Solo(func(*Ctx) { t.Error("ran a group task spawned after Shutdown") })); !errors.Is(err, ErrShutdown) {
		t.Fatalf("group Spawn after Shutdown: err = %v, want ErrShutdown", err)
	}
	if err := g.SpawnBatch([]Task{Solo(func(*Ctx) { t.Error("ran a batch task spawned after Shutdown") })}); !errors.Is(err, ErrShutdown) {
		t.Fatalf("SpawnBatch after Shutdown: err = %v, want ErrShutdown", err)
	}
	if err := g.TrySpawn(Solo(func(*Ctx) {})); !errors.Is(err, ErrShutdown) {
		t.Fatalf("TrySpawn after Shutdown: err = %v, want ErrShutdown", err)
	}
	if n, err := g.TrySpawnBatch([]Task{Solo(func(*Ctx) {})}); n != 0 || !errors.Is(err, ErrShutdown) {
		t.Fatalf("TrySpawnBatch after Shutdown = (%d, %v), want (0, ErrShutdown)", n, err)
	}

	if p := s.Pending(); p != 0 {
		t.Fatalf("Pending = %d after post-Shutdown spawns, want 0", p)
	}
	if p := g.Pending(); p != 0 {
		t.Fatalf("group Pending = %d after post-Shutdown spawns, want 0", p)
	}
	if snap := s.Admission(); snap.Injected != 0 {
		t.Fatalf("post-Shutdown spawn was admitted: %v", snap)
	}
	g.Wait() // returns immediately: nothing was accounted
	s.Wait()
}

// TestSpawnRacingShutdown floods spawns from several goroutines while
// Shutdown runs concurrently. Any individual spawn may be admitted or
// dropped, but the accounting must stay consistent: tasks that ran were
// admitted, and nothing hangs. Exercised under -race by the check gate.
func TestSpawnRacingShutdown(t *testing.T) {
	s := New(Options{P: 4, MaxInject: 8})
	var ran atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := s.NewGroup()
			for i := 0; i < 200; i++ {
				g.Spawn(Solo(func(*Ctx) { ran.Add(1) }))
			}
		}()
	}
	time.Sleep(2 * time.Millisecond)
	s.Shutdown()
	wg.Wait() // no spawner may stay parked after Shutdown
	snap := s.Admission()
	if snap.PeakPending > 8 {
		t.Fatalf("PeakPending = %d exceeds MaxInject during shutdown race", snap.PeakPending)
	}
	if ran.Load() > snap.Injected {
		t.Fatalf("ran %d tasks but only %d were admitted", ran.Load(), snap.Injected)
	}
}

// TestShutdownDuringTeamGather verifies Shutdown interrupts a coordinator
// stuck gathering a team that can never complete because the other workers
// already observed the done flag.
func TestShutdownDuringTeamGather(t *testing.T) {
	s := New(Options{P: 4})
	// Keep three workers busy so a 4-team cannot form quickly, then shut
	// down while the gathering is (likely) in progress.
	block := make(chan struct{})
	for i := 0; i < 3; i++ {
		s.Spawn(Solo(func(*Ctx) { <-block }))
	}
	s.Spawn(Func(4, func(*Ctx) {}))
	time.Sleep(20 * time.Millisecond) // let the gather start
	done := make(chan struct{})
	go func() {
		close(block)
		s.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("Shutdown hung during gather:\n%s", s.DumpState())
	}
}
