package core

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestShutdownWithPendingWork verifies Shutdown returns even while tasks are
// queued or running (outstanding work is abandoned, per the documented
// contract).
func TestShutdownWithPendingWork(t *testing.T) {
	s := New(Options{P: 4})
	var started atomic.Int64
	for i := 0; i < 200; i++ {
		s.Spawn(Solo(func(*Ctx) {
			started.Add(1)
			time.Sleep(100 * time.Microsecond)
		}))
	}
	done := make(chan struct{})
	go func() {
		s.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("Shutdown hung with pending work:\n%s", s.DumpState())
	}
}

// TestShutdownDuringTeamGather verifies Shutdown interrupts a coordinator
// stuck gathering a team that can never complete because the other workers
// already observed the done flag.
func TestShutdownDuringTeamGather(t *testing.T) {
	s := New(Options{P: 4})
	// Keep three workers busy so a 4-team cannot form quickly, then shut
	// down while the gathering is (likely) in progress.
	block := make(chan struct{})
	for i := 0; i < 3; i++ {
		s.Spawn(Solo(func(*Ctx) { <-block }))
	}
	s.Spawn(Func(4, func(*Ctx) {}))
	time.Sleep(20 * time.Millisecond) // let the gather start
	done := make(chan struct{})
	go func() {
		close(block)
		s.Shutdown()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("Shutdown hung during gather:\n%s", s.DumpState())
	}
}
