package core

import (
	"strconv"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/trace"
)

// Metrics surface of the scheduler: every counter the workers and the
// admission path already keep, re-homed into a stats.Registry as scrapeable
// Prometheus-style families. Registration hands the registry closures over
// the live atomics — nothing on any task path changes, and every value is
// read fresh at scrape time.

// schedCounters maps each per-worker stats counter to one registry family
// (summed across workers at scrape time).
var schedCounters = []struct {
	name, help string
	get        func(w *stats.Worker) *atomic.Int64
}{
	{"repro_sched_tasks_total", "Tasks executed (team tasks count once per participant).",
		func(w *stats.Worker) *atomic.Int64 { return &w.TasksRun }},
	{"repro_sched_team_tasks_total", "Task executions that were part of a team of size > 1.",
		func(w *stats.Worker) *atomic.Int64 { return &w.TeamTasksRun }},
	{"repro_sched_teams_formed_total", "Teams fixed by a coordinator.",
		func(w *stats.Worker) *atomic.Int64 { return &w.TeamsFormed }},
	{"repro_sched_coordinations_total", "Coordination rounds entered.",
		func(w *stats.Worker) *atomic.Int64 { return &w.TeamsCoordd }},
	{"repro_sched_spawns_total", "Tasks pushed to local queues by interior spawns.",
		func(w *stats.Worker) *atomic.Int64 { return &w.Spawns }},
	{"repro_sched_steals_total", "Successful steal operations (>= 1 task).",
		func(w *stats.Worker) *atomic.Int64 { return &w.Steals }},
	{"repro_sched_tasks_stolen_total", "Tasks transferred by steals.",
		func(w *stats.Worker) *atomic.Int64 { return &w.TasksStolen }},
	{"repro_sched_steal_attempts_total", "Steal rounds attempted.",
		func(w *stats.Worker) *atomic.Int64 { return &w.StealAttempts }},
	{"repro_sched_failed_steal_attempts_total", "Steal rounds that found no work.",
		func(w *stats.Worker) *atomic.Int64 { return &w.FailedAttempts }},
	{"repro_sched_registrations_total", "Successful team registrations at a coordinator.",
		func(w *stats.Worker) *atomic.Int64 { return &w.Registrations }},
	{"repro_sched_deregistrations_total", "Team deregistrations.",
		func(w *stats.Worker) *atomic.Int64 { return &w.Deregistrations }},
	{"repro_sched_revocations_total", "Registrations found revoked (epoch change).",
		func(w *stats.Worker) *atomic.Int64 { return &w.Revocations }},
	{"repro_sched_conflicts_lost_total", "Coordination conflicts yielded to another coordinator.",
		func(w *stats.Worker) *atomic.Int64 { return &w.ConflictsLost }},
	{"repro_sched_cas_failures_total", "Failed CAS operations on registration words.",
		func(w *stats.Worker) *atomic.Int64 { return &w.CASFailures }},
	{"repro_sched_backoffs_total", "Backoff waits.",
		func(w *stats.Worker) *atomic.Int64 { return &w.Backoffs }},
	{"repro_sched_polls_total", "Partner-poll invocations.",
		func(w *stats.Worker) *atomic.Int64 { return &w.Polls }},
	{"repro_sched_inject_takes_total", "Tasks taken from the inject queues by workers.",
		func(w *stats.Worker) *atomic.Int64 { return &w.InjectTakes }},
}

// RegisterMetrics adds the scheduler's metric families to reg. Several
// registries may observe one scheduler (e.g. each Runtime on a shared
// scheduler builds its own), so this may be called more than once with
// different registries; calling it twice with the same registry panics on
// the duplicate series.
func (s *Scheduler) RegisterMetrics(reg *stats.Registry) {
	for _, c := range schedCounters {
		get := c.get
		reg.CounterFunc(c.name, c.help, nil, func() float64 {
			var total int64
			for _, w := range s.workers {
				total += get(&w.st).Load()
			}
			return float64(total)
		})
	}
	reg.CounterFunc("repro_sched_quiesce_scans_total",
		"Quiescence sum-scans run (worker completion paths plus external waiters).",
		nil, func() float64 { return float64(s.QuiesceScans()) })

	reg.GaugeFunc("repro_sched_workers", "Workers of the scheduler.",
		nil, func() float64 { return float64(s.topo.P) })
	reg.GaugeFunc("repro_sched_inflight_tasks",
		"In-flight tasks (racy sharded sum; exact only at quiescence).",
		nil, func() float64 { return float64(s.inflightSum()) })
	reg.GaugeFunc("repro_sched_inject_queue_depth",
		"Admitted external tasks no worker has started yet, across all sources.",
		nil, func() float64 { return float64(s.pendingInject.Load()) })
	reg.GaugeFunc("repro_sched_inject_sources",
		"Submission sources currently holding pending injected tasks.",
		nil, func() float64 {
			s.admitMu.Lock()
			defer s.admitMu.Unlock()
			return float64(s.ringLen)
		})
	for _, w := range s.workers {
		w := w
		reg.GaugeFunc("repro_sched_freelist_nodes",
			"Recycled task nodes parked on a worker's free list.",
			[]stats.Label{{Name: "worker", Value: strconv.Itoa(w.id)}},
			func() float64 { return float64(w.freeLen.Load()) })
	}

	reg.CounterFunc("repro_admission_injected_total",
		"External tasks admitted into the inject queues.",
		nil, func() float64 { return float64(s.admit.Injected.Load()) })
	reg.CounterFunc("repro_admission_taken_total",
		"Admitted tasks moved onto worker queues.",
		nil, func() float64 { return float64(s.admit.Taken.Load()) })
	reg.CounterFunc("repro_admission_rejected_total",
		"Tasks refused by a non-blocking spawn (ErrSaturated or canceled group).",
		nil, func() float64 { return float64(s.admit.Rejected.Load()) })
	reg.CounterFunc("repro_admission_blocked_spawns_total",
		"Blocking spawn calls that had to park for inject room.",
		nil, func() float64 { return float64(s.admit.BlockedSpawns.Load()) })
	reg.CounterFunc("repro_canceled_total",
		"Group cancellations (Cancel, deadline fire, bound context).",
		nil, func() float64 { return float64(s.admit.Canceled.Load()) })
	reg.CounterFunc("repro_revoked_total",
		"Admitted tasks revoked at take time because their group was canceled.",
		nil, func() float64 { return float64(s.admit.Revoked.Load()) })
	reg.CounterFunc("repro_spawn_timeouts_total",
		"Blocking or retrying spawns that returned ErrDeadlineExceeded.",
		nil, func() float64 { return float64(s.admit.SpawnTimeouts.Load()) })
	reg.GaugeFunc("repro_admission_peak_pending",
		"High-water mark of pending injected tasks.",
		nil, func() float64 { return float64(s.admit.PeakPending.Load()) })

	reg.GaugeDynamic("repro_group_pending_tasks",
		"In-flight tasks of each named group (groups sharing a name are summed).",
		func(emit func([]stats.Label, float64)) {
			s.groupsMu.Lock()
			defer s.groupsMu.Unlock()
			for _, g := range s.namedGroups {
				emit([]stats.Label{{Name: "group", Value: g.name}}, float64(g.inflight.Load()))
			}
		})
	// Scrape-time rate support: every *_total family above is a monotone
	// counter, and this uptime counter is the matching time base. A scraper
	// without PromQL computes a rate as (counter₂ − counter₁) /
	// (uptime₂ − uptime₁) from any two scrapes — the delta convention
	// scripts/metricscheck -monotonic enforces.
	reg.CounterFunc("repro_uptime_seconds",
		"Seconds since the scheduler was built (time base for scrape-delta rates).",
		nil, func() float64 { return s.Uptime().Seconds() })
	reg.Histogram("repro_admission_wait_seconds",
		"Inject-to-take admission latency: how long an admitted external task waited before a worker took it.",
		nil, s.admitWait)

	for st := trace.State(0); st < trace.NumStates; st++ {
		st := st
		reg.CounterFunc("repro_worker_state_samples_total",
			"Worker-state observations by the sampling profiler.",
			[]stats.Label{{Name: "state", Value: trace.StateNames[st]}},
			func() float64 { return float64(s.profiler.Count(st)) })
	}
	reg.CounterFunc("repro_profiler_ticks_total",
		"Completed sampling rounds of the worker-state profiler (each reads every worker once).",
		nil, func() float64 { return float64(s.profiler.Ticks()) })
	reg.CounterFunc("repro_trace_events_total",
		"Execution-trace events recorded across all rings.",
		nil, func() float64 { return float64(s.xt.Events()) })
	reg.CounterFunc("repro_trace_dropped_events_total",
		"Execution-trace events lost to ring overflow.",
		nil, func() float64 { return float64(s.xt.DroppedTotal()) })

	reg.GaugeDynamic("repro_group_inject_queue_depth",
		"Admitted-but-not-started tasks of each named group's inject queue.",
		func(emit func([]stats.Label, float64)) {
			s.groupsMu.Lock()
			defer s.groupsMu.Unlock()
			s.admitMu.Lock()
			defer s.admitMu.Unlock()
			for _, g := range s.namedGroups {
				emit([]stats.Label{{Name: "group", Value: g.name}}, float64(g.iq.pending()))
			}
		})
}

// Metrics returns the scheduler's metrics registry, built once on first
// call. The registry renders the Prometheus text exposition format
// (Render/WriteText/ServeHTTP); named groups created after this call still
// appear — their gauge families are collected at scrape time.
func (s *Scheduler) Metrics() *stats.Registry {
	s.metricsOnce.Do(func() {
		reg := stats.NewRegistry()
		s.RegisterMetrics(reg)
		s.metricsReg = reg
	})
	return s.metricsReg
}
