package core

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestTraceRecordZeroAlloc is the enabled-path counterpart of
// TestSpawnZeroAlloc: with tracing on, every spawn/start/done records an
// event, and the per-task path must still perform zero heap allocations —
// the ring write is a handful of atomic stores into preallocated slots.
func TestTraceRecordZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	s := New(Options{P: 2, Trace: true})
	defer s.Shutdown()
	if !s.TraceActive() {
		t.Fatal("Options.Trace did not enable the tracer")
	}
	const k = 64
	ct := &benchCountdown{}
	start := make(chan struct{})
	defer close(start)
	round := make(chan struct{})
	s.Spawn(Solo(func(ctx *Ctx) {
		for range start {
			ct.remaining.Store(k)
			for i := 0; i < k; i++ {
				ctx.Spawn(ct)
			}
			drainOwn(ctx, ct)
			round <- struct{}{}
		}
	}))
	doRound := func() {
		start <- struct{}{}
		<-round
	}
	for i := 0; i < 16; i++ {
		doRound()
	}
	if avg := testing.AllocsPerRun(50, doRound); avg != 0 {
		t.Fatalf("traced spawn path allocates: %v allocs per %d-task round, want 0", avg, k)
	}
	if s.xt.Events() == 0 {
		t.Fatal("no events recorded with tracing on")
	}
}

// traceTreeTask spawns a binary tree of itself — steal fodder for the
// stress test below.
type traceTreeTask struct {
	depth int
	done  *atomic.Int64
}

func (tt *traceTreeTask) Threads() int { return 1 }
func (tt *traceTreeTask) Run(c *Ctx) {
	if tt.depth > 0 {
		c.Spawn(&traceTreeTask{depth: tt.depth - 1, done: tt.done})
		c.Spawn(&traceTreeTask{depth: tt.depth - 1, done: tt.done})
	}
	tt.done.Add(1)
}

// TestTraceStressWellFormed runs several clients' task trees with tracing
// on while snapshots race the writers, then checks every surviving event is
// well-formed and that each task's lifecycle is ordered (start at or before
// done for the same task trace id). Finally the capture must export as
// valid Chrome trace JSON.
func TestTraceStressWellFormed(t *testing.T) {
	s := newTest(t, Options{P: 4, Trace: true, TraceEvents: 1 << 10})
	const (
		clients = 4
		roots   = 8
		depth   = 4
	)
	stopSnap := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			select {
			case <-stopSnap:
				return
			default:
				s.TraceSnapshot()
			}
		}
	}()
	var done atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := s.NewGroup()
			for r := 0; r < roots; r++ {
				g.Spawn(&traceTreeTask{depth: depth, done: &done})
			}
			g.Wait()
		}()
	}
	wg.Wait()
	close(stopSnap)
	snapWG.Wait()
	perTree := int64(1<<(depth+1) - 1)
	if want := int64(clients*roots) * perTree; done.Load() != want {
		t.Fatalf("ran %d tasks, want %d", done.Load(), want)
	}

	snap := s.TraceSnapshot()
	if len(snap.Events) == 0 {
		t.Fatal("empty snapshot after a traced run")
	}
	starts := map[uint64]int64{}
	for _, e := range snap.Events {
		if e.Kind >= trace.NumKinds {
			t.Fatalf("malformed event kind: %+v", e)
		}
		if e.Ring < 0 || e.Ring > 4 { // P worker rings + admission ring
			t.Fatalf("event on unknown ring: %+v", e)
		}
		if e.Kind == trace.EvStart && e.Arg != 0 {
			starts[e.Arg] = e.TS
		}
	}
	for _, e := range snap.Events {
		if e.Kind == trace.EvDone && e.Arg != 0 {
			if ts, ok := starts[e.Arg]; ok && e.TS < ts {
				t.Fatalf("task %x done at %d before start at %d", e.Arg, e.TS, ts)
			}
		}
	}

	var buf bytes.Buffer
	if err := s.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if n, err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	} else if n == 0 {
		t.Fatal("exported trace empty")
	}
}

// TestAdmissionWaitHistogram drives one external task through the admission
// queue on an unstarted scheduler (the test plays the worker), pinning when
// the scheduler-owned inject-to-take latency is observed: at the take, not
// the enqueue, exactly once per admitted task.
func TestAdmissionWaitHistogram(t *testing.T) {
	s := stopped(2)
	g := s.NewGroup()
	g.Spawn(benchNoop{})
	if h := s.AdmissionWait(); h.Count != 0 {
		t.Fatalf("wait observed at enqueue: %+v", h)
	}
	if !s.takeInjected(s.workers[0]) {
		t.Fatal("takeInjected found nothing")
	}
	h := s.AdmissionWait()
	if h.Count != 1 {
		t.Fatalf("admission wait count = %d after one take, want 1", h.Count)
	}
	if h.Sum < 0 {
		t.Fatalf("negative admission wait sum %v", h.Sum)
	}
}

// TestAdmissionWaitLive checks the histogram accumulates on a running
// scheduler and renders through the registry with the standard histogram
// series.
func TestAdmissionWaitLive(t *testing.T) {
	s := newTest(t, Options{P: 2})
	g := s.NewGroup()
	for i := 0; i < 32; i++ {
		g.Spawn(benchNoop{})
	}
	g.Wait()
	if h := s.AdmissionWait(); h.Count == 0 {
		t.Fatal("no admission waits observed after 32 injected tasks")
	}
	out := s.Metrics().Render()
	for _, want := range []string{
		"repro_admission_wait_seconds_count",
		"repro_admission_wait_seconds_sum",
		"repro_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics render lacks %s:\n%s", want, out)
		}
	}
}

// TestProfilerCounts exercises the sampling profiler on a live scheduler:
// counts must sum to a multiple of P (each tick reads every worker exactly
// once) and every state must surface as a labelled registry series.
func TestProfilerCounts(t *testing.T) {
	const p = 2
	s := newTest(t, Options{P: p})
	s.StartProfiler(2000)
	g := s.NewGroup()
	var done atomic.Int64
	for i := 0; i < 8; i++ {
		g.Spawn(&traceTreeTask{depth: 5, done: &done})
	}
	g.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		var sum int64
		for _, c := range s.ProfilerStateCounts() {
			sum += c
		}
		if sum >= 10*p {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("profiler accumulated only %d samples", sum)
		}
		time.Sleep(time.Millisecond)
	}
	s.StopProfiler()
	counts := s.ProfilerStateCounts()
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum%p != 0 {
		t.Fatalf("sample counts %v sum to %d, not a multiple of P=%d", counts, sum, p)
	}
	out := s.Metrics().Render()
	for _, name := range trace.StateNames {
		want := `repro_worker_state_samples_total{state="` + name + `"}`
		if !strings.Contains(out, want) {
			t.Fatalf("metrics render lacks %s:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "repro_profiler_ticks_total") {
		t.Fatal("metrics render lacks repro_profiler_ticks_total")
	}
}

// TestDumpStateTraceFields pins the debug dump's new per-worker columns.
func TestDumpStateTraceFields(t *testing.T) {
	s := newTest(t, Options{P: 2, Trace: true})
	var done atomic.Int64
	g := s.NewGroup()
	g.Spawn(&traceTreeTask{depth: 3, done: &done})
	g.Wait()
	dump := s.DumpState()
	for _, want := range []string{"state=", "trace_dropped="} {
		if !strings.Contains(dump, want) {
			t.Fatalf("DumpState lacks %q:\n%s", want, dump)
		}
	}
	if !strings.Contains(s.TraceDump(), "spawn") {
		t.Fatalf("TraceDump lacks spawn events:\n%s", s.TraceDump())
	}
}
