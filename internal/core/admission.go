package core

import (
	"errors"

	"repro/internal/trace"
)

// This file implements the admission-control half of the external submission
// path. Externally spawned tasks no longer share one unbounded FIFO slice:
// every submission source — each Group, plus one catch-all queue for
// group-less Scheduler.Spawn — owns a FIFO inject queue, and workers drain
// the non-empty queues round-robin (takeInjected), so a client flooding its
// own group cannot starve another group's submissions (group-fair FIFO:
// strict FIFO within a source, round-robin across sources).
//
// Two bounds throttle runaway clients at the inject path, before their tasks
// ever reach the worker deques: Options.MaxPendingPerGroup caps one source's
// admitted-but-not-yet-started tasks, Options.MaxInject caps the total
// across all sources. Blocking submissions (Group.Spawn, SpawnBatch,
// Scheduler.Spawn) park on a condition variable until room frees up or the
// scheduler shuts down; non-blocking ones (TrySpawn, TrySpawnBatch) return
// ErrSaturated instead. Interior spawns (Ctx.Spawn) are never throttled:
// they are the scheduler's own task-tree growth, not client ingress.

// Typed admission errors, returned by the non-blocking spawn forms.
var (
	// ErrSaturated reports that an admission bound (MaxPendingPerGroup or
	// MaxInject) left no room for the submission.
	ErrSaturated = errors.New("core: inject queues saturated")
	// ErrShutdown reports a submission to a shut-down scheduler.
	ErrShutdown = errors.New("core: scheduler is shut down")
)

// injectQ is one source's FIFO of admitted but not-yet-started external
// tasks, and an intrusive node of the scheduler's round-robin ring (a
// circular doubly-linked list of the non-empty sources, so joining and
// leaving the rotation is O(1) however many clients submit concurrently).
// All fields are guarded by Scheduler.admitMu.
type injectQ struct {
	ns         []*node
	head       int      // ns[head:] are pending; ns[:head] already taken
	active     bool     // linked into the scheduler's round-robin ring
	next, prev *injectQ // ring links while active
}

func (q *injectQ) pending() int { return len(q.ns) - q.head }

func (q *injectQ) push(n *node) { q.ns = append(q.ns, n) }

func (q *injectQ) pop() *node {
	n := q.ns[q.head]
	q.ns[q.head] = nil // drop the reference; the node may live long
	q.head++
	switch {
	case q.head == len(q.ns):
		q.ns = q.ns[:0] // empty: reuse the backing array from the start
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.ns):
		// Compact once the consumed prefix dominates: a queue that
		// oscillates without ever fully draining (a steadily-refilled group
		// in a long-lived server) would otherwise grow its backing array by
		// one retired slot per task ever admitted.
		q.ns = q.ns[:copy(q.ns, q.ns[q.head:])]
		q.head = 0
	}
	return n
}

// admitRoom returns how many more nodes q may accept under the configured
// bounds, at most want. Caller holds admitMu.
func (s *Scheduler) admitRoom(q *injectQ, want int) int {
	if m := s.opts.MaxInject; m > 0 {
		if r := m - int(s.pendingInject.Load()); r < want {
			want = r
		}
	}
	if m := s.opts.MaxPendingPerGroup; m > 0 {
		if r := m - q.pending(); r < want {
			want = r
		}
	}
	if want < 0 {
		want = 0
	}
	return want
}

// enqueueLocked accounts ns in-flight and appends them to q, activating q in
// the round-robin ring if it was empty. Accounting happens here — at the
// moment of admission, before any worker can observe the nodes — so neither
// Wait can see a transient zero while an admitted task tree is still
// growing, and a never-admitted node (shutdown, ErrSaturated) never inflates
// the in-flight counts. The global count lands on the external in-flight
// shard (all nodes of one call share the source, so one batched add
// suffices); the group count is the group's own padded atomic. Caller holds
// admitMu.
func (s *Scheduler) enqueueLocked(q *injectQ, ns []*node) {
	s.extInflightAdd(int64(len(ns)))
	g := ns[0].group
	var gepoch uint64
	if g != nil {
		g.inflight.Add(int64(len(ns)))
		// Stamp the group's cancellation epoch once per batch: a later
		// Cancel bumps the epoch under this same lock, so a take that finds
		// a node's stamp stale knows the node predates the cancel and
		// revokes it (see cancel.go and takeInjected).
		gepoch = g.epoch //repro:ownerstore admitMu serializes this read with the epoch bump in Group.cancel
	}
	// Stamp the admission time once per batch: the admission-wait histogram
	// (always on) measures enqueue→take, and the tracer — when enabled —
	// records the enqueue on the admission ring (ring P, owned by the admitMu
	// holder, so its writes are serialized like a worker's own).
	now := trace.Now()
	var gid uint32
	if g != nil {
		gid = uint32(g.gid)
	}
	xt := s.xt
	traced := xt.Enabled()
	for _, n := range ns {
		n.enq = now
		n.gepoch = gepoch
		if traced {
			n.tid = xt.Record(s.topo.P, trace.EvInjectEnqueue, 0, gid, 0)
		}
		q.push(n)
	}
	if !q.active {
		q.active = true
		if s.ringHead == nil {
			q.next, q.prev = q, q
			s.ringHead = q
		} else {
			// Insert at the back of the rotation (just before the head): a
			// source that drained and refilled waits a full round, so it
			// cannot camp at the front.
			tail := s.ringHead.prev
			tail.next, q.prev = q, tail
			q.next, s.ringHead.prev = s.ringHead, q
		}
		s.ringLen++
	}
	p := s.pendingInject.Add(int64(len(ns)))
	s.admit.Injected.Add(int64(len(ns)))
	if p > s.admit.PeakPending.Load() {
		s.admit.PeakPending.Store(p)
	}
}

// admitBlocking admits every node of ns into q in submission order, parking
// while the bounds leave no room, and returns the number of admitted nodes
// plus the typed reason admission stopped early: ErrShutdown on a shut-down
// scheduler, or g's cancellation cause once the group is canceled — a
// parked spawner wakes on cancel/deadline (Group.cancel broadcasts) instead
// of blocking forever. The not-yet-admitted remainder is dropped without
// having been accounted. Batches larger than a bound are admitted in chunks
// as room frees up. g is nil for the group-less Scheduler.Spawn queue.
func (s *Scheduler) admitBlocking(g *Group, q *injectQ, ns []*node) (int, error) {
	if f := s.opts.Fault; f != nil {
		f(FaultAdmit, -1)
	}
	admitted := 0
	blocked := false
	var err error
	s.admitMu.Lock()
	for admitted < len(ns) {
		if s.done.Load() {
			err = ErrShutdown
			break
		}
		if g != nil && g.epoch&1 == 1 { //repro:ownerstore admitMu serializes this read with the epoch bump in Group.cancel
			err = g.cause // safe: odd epoch observed under admitMu, cause written before the bump
			s.admit.Rejected.Add(int64(len(ns) - admitted))
			break
		}
		k := s.admitRoom(q, len(ns)-admitted)
		if k == 0 {
			if !blocked {
				blocked = true
				s.admit.BlockedSpawns.Add(1)
			}
			s.admitWaiters++
			s.admitCond.Wait()
			s.admitWaiters--
			continue
		}
		s.enqueueLocked(q, ns[admitted:admitted+k])
		admitted += k
	}
	s.admitMu.Unlock()
	if errors.Is(err, ErrDeadlineExceeded) {
		s.admit.SpawnTimeouts.Add(1)
	}
	for _, n := range ns[admitted:] {
		putNodeShared(n) // dropped on shutdown/cancel: never accounted, never published
	}
	return admitted, err
}

// admitTry admits the longest prefix of ns that fits without blocking.
// It returns the number admitted and ErrSaturated if any node was refused,
// ErrShutdown (admitting nothing) on a shut-down scheduler, or the
// cancellation cause (admitting nothing) on a canceled group. g is nil for
// the group-less Scheduler queue.
func (s *Scheduler) admitTry(g *Group, q *injectQ, ns []*node) (int, error) {
	if f := s.opts.Fault; f != nil {
		f(FaultAdmit, -1)
	}
	s.admitMu.Lock()
	var err error
	k := 0
	switch {
	case s.done.Load():
		err = ErrShutdown
	case g != nil && g.epoch&1 == 1: //repro:ownerstore admitMu serializes this read with the epoch bump in Group.cancel
		err = g.cause // safe: odd epoch observed under admitMu, cause written before the bump
		s.admit.Rejected.Add(int64(len(ns)))
	default:
		k = s.admitRoom(q, len(ns))
		if k > 0 {
			s.enqueueLocked(q, ns[:k])
		}
		if k < len(ns) {
			s.admit.Rejected.Add(int64(len(ns) - k))
			err = ErrSaturated
		}
	}
	s.admitMu.Unlock()
	for _, n := range ns[k:] {
		putNodeShared(n) // refused: never accounted, never published
	}
	return k, err
}

// takeInjected moves one externally submitted task into w's queues, serving
// the per-source inject queues round-robin: one node from the current ring
// position, then advance. A drained queue leaves the ring (and re-enters at
// the back on its next admission), so sources that keep refilling rotate
// fairly. Freed room wakes parked blocking spawners.
//
// Revocation happens here, at take time: a node whose epoch stamp no longer
// matches its group's cancellation epoch was admitted before the group was
// canceled, so it is recycled without executing — its accounting unwound
// like a completion (finishRevoke) — and the loop tries the next node. The
// live case costs one predicted load and compare; the interior spawn path
// (Ctx.Spawn) is untouched.
//
// The empty case is the hot one: every idle coordinator polls here each
// loop iteration, so a scheduler with no external work must not serialize
// its workers on admitMu. One lock-free atomic load answers "is there
// anything at all?"; the lock is taken only when work (probably) exists.
func (s *Scheduler) takeInjected(w *worker) bool {
	if s.pendingInject.Load() == 0 {
		return false
	}
	if f := s.opts.Fault; f != nil {
		f(FaultInjectTake, w.id)
	}
	for {
		s.admitMu.Lock()
		q := s.ringHead
		if q == nil {
			// The pending count was stale: another worker drained the queues
			// between our load and the lock.
			s.admitMu.Unlock()
			return false
		}
		// A parked spawner is blocked on a bound that was exhausted when it
		// last checked; this take can only unblock it if it crosses that
		// bound's boundary. Waking on every take would stampede all parked
		// clients per drained task (the clients ≫ bound regime) when at most
		// one can admit.
		wake := false
		if m := s.opts.MaxInject; m > 0 && int(s.pendingInject.Load()) == m {
			wake = true
		}
		if m := s.opts.MaxPendingPerGroup; m > 0 && q.pending() == m {
			wake = true
		}
		n := q.pop()
		if q.pending() == 0 {
			q.active = false
			if q.next == q {
				s.ringHead = nil
			} else {
				q.prev.next, q.next.prev = q.next, q.prev
				s.ringHead = q.next
			}
			q.next, q.prev = nil, nil
			s.ringLen--
		} else {
			s.ringHead = q.next // rotate: next source serves the next take
		}
		s.pendingInject.Add(-1)
		g := n.group
		revoked := g != nil && n.gepoch != g.epoch //repro:ownerstore admitMu serializes this read with the epoch bump in Group.cancel
		if revoked {
			s.admit.Revoked.Add(1)
			// Unwind the admission-time global-shard add here, under admitMu
			// like the add itself; the group decrement follows outside the
			// lock — global first, then group, the same ordering argument as
			// taskDone (see inflight.go and the README).
			s.extInflightAdd(-1)
		} else {
			s.admit.Taken.Add(1)
		}
		if wake && s.admitWaiters > 0 {
			s.admitCond.Broadcast()
		}
		s.admitMu.Unlock()
		if revoked {
			s.finishRevoke(w, n, g)
			continue // a live node may sit right behind the revoked one
		}
		// Scheduler-owned admission latency: every take feeds the histogram,
		// so the inject-to-take wait is observable without client cooperation.
		s.admitWait.Observe(w.id, float64(trace.Now()-n.enq)/1e9)
		if xt := s.xt; xt.Enabled() {
			var gid uint32
			if g != nil {
				gid = uint32(g.gid)
			}
			xt.Record(w.id, trace.EvInjectTake, s.topo.P, gid, n.tid)
		}
		w.st.InjectTakes.Add(1)
		w.pushNode(n)
		return true
	}
}

// finishRevoke completes a take-time revocation off the admission lock: the
// node never executes, so its in-flight accounting is released exactly as a
// completion would have released it — armed global quiescence scan after the
// already-done global decrement, then the group decrement with its exact
// zero-transition release — and the node is recycled on the revoking
// worker's free list. Each admitted node is revoked at most once (it was
// popped from its inject queue under admitMu), so Wait still releases
// exactly once.
func (s *Scheduler) finishRevoke(w *worker, n *node, g *Group) {
	if xt := s.xt; xt.Enabled() {
		xt.Record(w.id, trace.EvInjectRevoke, s.topo.P, uint32(g.gid), n.tid)
	}
	if s.qz.armed() {
		w.st.QuiesceScans.Add(1)
		if s.quiescent() {
			s.qz.release()
		}
	}
	if g.inflight.Add(-1) == 0 {
		if xt := s.xt; xt.Enabled() {
			xt.Record(w.id, trace.EvGroupDone, w.id, uint32(g.gid), 0)
		}
		g.qz.release()
	}
	w.freeNode(n)
}

// PendingInjected returns the number of admitted external tasks no worker
// has started yet, across all sources (racy; for tests and diagnostics).
func (s *Scheduler) PendingInjected() int64 {
	return s.pendingInject.Load()
}
