package core

import (
	"errors"

	"repro/internal/trace"
)

// This file implements the admission-control half of the external submission
// path. Externally spawned tasks no longer share one unbounded FIFO slice:
// every submission source — each Group, plus one catch-all queue for
// group-less Scheduler.Spawn — owns a FIFO inject queue, and workers drain
// the non-empty queues round-robin (takeInjected), so a client flooding its
// own group cannot starve another group's submissions (group-fair FIFO:
// strict FIFO within a source, round-robin across sources).
//
// Two bounds throttle runaway clients at the inject path, before their tasks
// ever reach the worker deques: Options.MaxPendingPerGroup caps one source's
// admitted-but-not-yet-started tasks, Options.MaxInject caps the total
// across all sources. Blocking submissions (Group.Spawn, SpawnBatch,
// Scheduler.Spawn) park on a condition variable until room frees up or the
// scheduler shuts down; non-blocking ones (TrySpawn, TrySpawnBatch) return
// ErrSaturated instead. Interior spawns (Ctx.Spawn) are never throttled:
// they are the scheduler's own task-tree growth, not client ingress.

// Typed admission errors, returned by the non-blocking spawn forms.
var (
	// ErrSaturated reports that an admission bound (MaxPendingPerGroup or
	// MaxInject) left no room for the submission.
	ErrSaturated = errors.New("core: inject queues saturated")
	// ErrShutdown reports a submission to a shut-down scheduler.
	ErrShutdown = errors.New("core: scheduler is shut down")
)

// injectQ is one source's FIFO of admitted but not-yet-started external
// tasks, and an intrusive node of the scheduler's round-robin ring (a
// circular doubly-linked list of the non-empty sources, so joining and
// leaving the rotation is O(1) however many clients submit concurrently).
// All fields are guarded by Scheduler.admitMu.
type injectQ struct {
	ns         []*node
	head       int      // ns[head:] are pending; ns[:head] already taken
	active     bool     // linked into the scheduler's round-robin ring
	next, prev *injectQ // ring links while active
}

func (q *injectQ) pending() int { return len(q.ns) - q.head }

func (q *injectQ) push(n *node) { q.ns = append(q.ns, n) }

func (q *injectQ) pop() *node {
	n := q.ns[q.head]
	q.ns[q.head] = nil // drop the reference; the node may live long
	q.head++
	switch {
	case q.head == len(q.ns):
		q.ns = q.ns[:0] // empty: reuse the backing array from the start
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.ns):
		// Compact once the consumed prefix dominates: a queue that
		// oscillates without ever fully draining (a steadily-refilled group
		// in a long-lived server) would otherwise grow its backing array by
		// one retired slot per task ever admitted.
		q.ns = q.ns[:copy(q.ns, q.ns[q.head:])]
		q.head = 0
	}
	return n
}

// admitRoom returns how many more nodes q may accept under the configured
// bounds, at most want. Caller holds admitMu.
func (s *Scheduler) admitRoom(q *injectQ, want int) int {
	if m := s.opts.MaxInject; m > 0 {
		if r := m - int(s.pendingInject.Load()); r < want {
			want = r
		}
	}
	if m := s.opts.MaxPendingPerGroup; m > 0 {
		if r := m - q.pending(); r < want {
			want = r
		}
	}
	if want < 0 {
		want = 0
	}
	return want
}

// enqueueLocked accounts ns in-flight and appends them to q, activating q in
// the round-robin ring if it was empty. Accounting happens here — at the
// moment of admission, before any worker can observe the nodes — so neither
// Wait can see a transient zero while an admitted task tree is still
// growing, and a never-admitted node (shutdown, ErrSaturated) never inflates
// the in-flight counts. The global count lands on the external in-flight
// shard (all nodes of one call share the source, so one batched add
// suffices); the group count is the group's own padded atomic. Caller holds
// admitMu.
func (s *Scheduler) enqueueLocked(q *injectQ, ns []*node) {
	s.extInflightAdd(int64(len(ns)))
	g := ns[0].group
	if g != nil {
		g.inflight.Add(int64(len(ns)))
	}
	// Stamp the admission time once per batch: the admission-wait histogram
	// (always on) measures enqueue→take, and the tracer — when enabled —
	// records the enqueue on the admission ring (ring P, owned by the admitMu
	// holder, so its writes are serialized like a worker's own).
	now := trace.Now()
	var gid uint32
	if g != nil {
		gid = uint32(g.gid)
	}
	xt := s.xt
	traced := xt.Enabled()
	for _, n := range ns {
		n.enq = now
		if traced {
			n.tid = xt.Record(s.topo.P, trace.EvInjectEnqueue, 0, gid, 0)
		}
		q.push(n)
	}
	if !q.active {
		q.active = true
		if s.ringHead == nil {
			q.next, q.prev = q, q
			s.ringHead = q
		} else {
			// Insert at the back of the rotation (just before the head): a
			// source that drained and refilled waits a full round, so it
			// cannot camp at the front.
			tail := s.ringHead.prev
			tail.next, q.prev = q, tail
			q.next, s.ringHead.prev = s.ringHead, q
		}
		s.ringLen++
	}
	p := s.pendingInject.Add(int64(len(ns)))
	s.admit.Injected.Add(int64(len(ns)))
	if p > s.admit.PeakPending.Load() {
		s.admit.PeakPending.Store(p)
	}
}

// admitBlocking admits every node of ns into q in submission order, parking
// while the bounds leave no room. On shutdown the not-yet-admitted remainder
// is dropped without having been accounted (spawning on a shut-down
// scheduler is a documented no-op). Returns the number of admitted nodes.
// Batches larger than a bound are admitted in chunks as room frees up.
func (s *Scheduler) admitBlocking(q *injectQ, ns []*node) int {
	admitted := 0
	blocked := false
	s.admitMu.Lock()
	for admitted < len(ns) {
		if s.done.Load() {
			break
		}
		k := s.admitRoom(q, len(ns)-admitted)
		if k == 0 {
			if !blocked {
				blocked = true
				s.admit.BlockedSpawns.Add(1)
			}
			s.admitWaiters++
			s.admitCond.Wait()
			s.admitWaiters--
			continue
		}
		s.enqueueLocked(q, ns[admitted:admitted+k])
		admitted += k
	}
	s.admitMu.Unlock()
	for _, n := range ns[admitted:] {
		putNodeShared(n) // dropped on shutdown: never accounted, never published
	}
	return admitted
}

// admitTry admits the longest prefix of ns that fits without blocking.
// It returns the number admitted and ErrSaturated if any node was refused,
// or ErrShutdown (admitting nothing) on a shut-down scheduler.
func (s *Scheduler) admitTry(q *injectQ, ns []*node) (int, error) {
	s.admitMu.Lock()
	var err error
	k := 0
	if s.done.Load() {
		err = ErrShutdown
	} else {
		k = s.admitRoom(q, len(ns))
		if k > 0 {
			s.enqueueLocked(q, ns[:k])
		}
		if k < len(ns) {
			s.admit.Rejected.Add(int64(len(ns) - k))
			err = ErrSaturated
		}
	}
	s.admitMu.Unlock()
	for _, n := range ns[k:] {
		putNodeShared(n) // refused: never accounted, never published
	}
	return k, err
}

// takeInjected moves one externally submitted task into w's queues, serving
// the per-source inject queues round-robin: one node from the current ring
// position, then advance. A drained queue leaves the ring (and re-enters at
// the back on its next admission), so sources that keep refilling rotate
// fairly. Freed room wakes parked blocking spawners.
//
// The empty case is the hot one: every idle coordinator polls here each
// loop iteration, so a scheduler with no external work must not serialize
// its workers on admitMu. One lock-free atomic load answers "is there
// anything at all?"; the lock is taken only when work (probably) exists.
func (s *Scheduler) takeInjected(w *worker) bool {
	if s.pendingInject.Load() == 0 {
		return false
	}
	s.admitMu.Lock()
	q := s.ringHead
	if q == nil {
		// The pending count was stale: another worker drained the queues
		// between our load and the lock.
		s.admitMu.Unlock()
		return false
	}
	// A parked spawner is blocked on a bound that was exhausted when it last
	// checked; this take can only unblock it if it crosses that bound's
	// boundary. Waking on every take would stampede all parked clients per
	// drained task (the clients ≫ bound regime) when at most one can admit.
	wake := false
	if m := s.opts.MaxInject; m > 0 && int(s.pendingInject.Load()) == m {
		wake = true
	}
	if m := s.opts.MaxPendingPerGroup; m > 0 && q.pending() == m {
		wake = true
	}
	n := q.pop()
	if q.pending() == 0 {
		q.active = false
		if q.next == q {
			s.ringHead = nil
		} else {
			q.prev.next, q.next.prev = q.next, q.prev
			s.ringHead = q.next
		}
		q.next, q.prev = nil, nil
		s.ringLen--
	} else {
		s.ringHead = q.next // rotate: next source serves the next take
	}
	s.pendingInject.Add(-1)
	s.admit.Taken.Add(1)
	if wake && s.admitWaiters > 0 {
		s.admitCond.Broadcast()
	}
	s.admitMu.Unlock()
	// Scheduler-owned admission latency: every take feeds the histogram, so
	// the inject-to-take wait is observable without client cooperation.
	s.admitWait.Observe(w.id, float64(trace.Now()-n.enq)/1e9)
	if xt := s.xt; xt.Enabled() {
		var gid uint32
		if n.group != nil {
			gid = uint32(n.group.gid)
		}
		xt.Record(w.id, trace.EvInjectTake, s.topo.P, gid, n.tid)
	}
	w.st.InjectTakes.Add(1)
	w.pushNode(n)
	return true
}

// PendingInjected returns the number of admitted external tasks no worker
// has started yet, across all sources (racy; for tests and diagnostics).
func (s *Scheduler) PendingInjected() int64 {
	return s.pendingInject.Load()
}
