package core

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// DumpState renders the live scheduler state for diagnostics (cmd/stress and
// deadlock investigation in tests). It is racy by design: all fields are read
// with atomics but the combined picture is approximate.
func (s *Scheduler) DumpState() string {
	var b strings.Builder
	injected, sources := func() (int64, int) {
		s.admitMu.Lock()
		defer s.admitMu.Unlock()
		return s.pendingInject.Load(), s.ringLen
	}()
	fmt.Fprintf(&b, "inflight=%d injected=%d inject_sources=%d quiesce_scans=%d trace_dropped=%d\n",
		s.inflightSum(), injected, sources, s.QuiesceScans(), s.TraceDropped())
	for _, w := range s.workers {
		r := w.regw.Load()
		c := w.coordp()
		cur := w.cur.Load()
		st := trace.State(w.state.Load())
		stName := "?"
		if st < trace.NumStates {
			stName = trace.StateNames[st]
		}
		fmt.Fprintf(&b, "w%-3d coord=%-3d state=%-8s reg=%v free=%d trace_dropped=%d q=[",
			w.id, c.id, stName, r, w.freeLen.Load(), s.xt.Dropped(w.id))
		for j, q := range w.queues {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", q.Size())
		}
		b.WriteString("]")
		if cur != nil {
			fmt.Fprintf(&b, " exec{size:%d width:%d gen:%d started:%d done:%d}",
				cur.teamSize, cur.width, cur.gen, cur.started.Load(), cur.done.Load())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
