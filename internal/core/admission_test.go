package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// label returns a solo task that appends id to *order when run.
func label(order *[]int, id int) Task {
	return Solo(func(*Ctx) { *order = append(*order, id) })
}

// drainOne takes one injected task and runs it, returning false when the
// inject queues are empty. Whitebox: drives the single worker by hand.
func drainOne(s *Scheduler, w *worker) bool {
	if !s.takeInjected(w) {
		return false
	}
	w.runSolo(w.queues[0].PopBottom())
	return true
}

// TestWBInjectGroupFIFO pins strict FIFO within one group's inject queue.
func TestWBInjectGroupFIFO(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	g := s.NewGroup()
	var order []int
	for i := 0; i < 5; i++ {
		g.Spawn(label(&order, i))
	}
	if got := g.PendingInjected(); got != 5 {
		t.Fatalf("PendingInjected = %d, want 5", got)
	}
	for drainOne(s, w) {
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("drain order %v not FIFO", order)
		}
	}
	if g.Pending() != 0 || g.PendingInjected() != 0 || s.PendingInjected() != 0 {
		t.Fatalf("residue after drain: pending=%d injected=%d global=%d",
			g.Pending(), g.PendingInjected(), s.PendingInjected())
	}
}

// TestWBInjectRoundRobin pins the cross-group drain order: one task per
// non-empty group per round, in ring order, regardless of how lopsided the
// queues are. Group A floods 4 tasks, B has 2, C has 1; the drain must
// interleave A0 B0 C0 A1 B1 A2 A3.
func TestWBInjectRoundRobin(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	ga, gb, gc := s.NewGroup(), s.NewGroup(), s.NewGroup()
	var order []int
	for i := 0; i < 4; i++ {
		ga.Spawn(label(&order, 100+i))
	}
	gb.SpawnBatch([]Task{label(&order, 200), label(&order, 201)})
	gc.Spawn(label(&order, 300))
	for drainOne(s, w) {
	}
	want := []int{100, 200, 300, 101, 201, 102, 103}
	if len(order) != len(want) {
		t.Fatalf("drained %d tasks, want %d (%v)", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", order, want)
		}
	}
}

// TestWBInjectRefillGoesToBack checks that a group that drains and refills
// re-enters the round-robin ring at the back: a chatty group cannot camp at
// the front of the rotation.
func TestWBInjectRefillGoesToBack(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	ga, gb := s.NewGroup(), s.NewGroup()
	var order []int
	ga.Spawn(label(&order, 1))
	gb.Spawn(label(&order, 2))
	drainOne(s, w) // takes ga's only task; ga leaves the ring
	ga.Spawn(label(&order, 3))
	ga.Spawn(label(&order, 4))
	// Ring is now [gb, ga]: gb's task must come out before ga's refill.
	for drainOne(s, w) {
	}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", order, want)
		}
	}
}

// TestWBInjectQueueCompacts pins the memory bound of a queue that never
// fully drains: a group oscillating between refill and take (the steady
// state of a bounded long-lived server) must not grow its backing array by
// one retired slot per task ever admitted.
func TestWBInjectQueueCompacts(t *testing.T) {
	s := stopped(2)
	w := s.workers[0]
	g := s.NewGroup()
	nop := Solo(func(*Ctx) {})
	g.Spawn(nop) // keep the queue permanently non-empty
	for i := 0; i < 100_000; i++ {
		g.Spawn(nop)
		if !s.takeInjected(w) {
			t.Fatal("takeInjected found nothing")
		}
		w.queues[0].PopBottom() // keep the worker queue flat
	}
	if c := cap(g.iq.ns); c > 4096 {
		t.Fatalf("inject queue backing array grew to cap %d despite compaction", c)
	}
	if p := g.iq.pending(); p != 1 {
		t.Fatalf("pending = %d, want 1", p)
	}
}

// TestWBAdmissionBudget drives the bounds by hand: per-group budget
// exhaustion, the global MaxInject cap across groups, ErrSaturated from the
// non-blocking forms, and release of room when a worker takes a task.
func TestWBAdmissionBudget(t *testing.T) {
	s := build(Options{P: 2, MaxPendingPerGroup: 2, MaxInject: 3})
	w := s.workers[0]
	g1, g2 := s.NewGroup(), s.NewGroup()
	nop := func() Task { return Solo(func(*Ctx) {}) }

	if err := g1.TrySpawn(nop()); err != nil {
		t.Fatalf("first TrySpawn: %v", err)
	}
	if err := g1.TrySpawn(nop()); err != nil {
		t.Fatalf("second TrySpawn: %v", err)
	}
	// g1 is at its per-group budget.
	if err := g1.TrySpawn(nop()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over per-group budget: err = %v, want ErrSaturated", err)
	}
	if got := s.Admission().Rejected; got != 1 {
		t.Fatalf("Rejected = %d, want 1", got)
	}
	// g2 has its own budget, but the global bound leaves only one slot.
	if err := g2.TrySpawn(nop()); err != nil {
		t.Fatalf("g2 first TrySpawn: %v", err)
	}
	if err := g2.TrySpawn(nop()); !errors.Is(err, ErrSaturated) {
		t.Fatalf("over MaxInject: err = %v, want ErrSaturated", err)
	}
	if got := s.PendingInjected(); got != 3 {
		t.Fatalf("PendingInjected = %d, want 3", got)
	}
	// A worker taking one task frees exactly one slot.
	if !s.takeInjected(w) {
		t.Fatal("takeInjected found nothing")
	}
	if err := g2.TrySpawn(nop()); err != nil {
		t.Fatalf("TrySpawn after release: %v", err)
	}
	// TrySpawnBatch admits the prefix that fits and reports the overflow.
	n, err := g2.TrySpawnBatch([]Task{nop(), nop(), nop()})
	if n != 0 || !errors.Is(err, ErrSaturated) {
		t.Fatalf("TrySpawnBatch full = (%d, %v), want (0, ErrSaturated)", n, err)
	}
	for s.takeInjected(w) {
	}
	n, err = g2.TrySpawnBatch([]Task{nop(), nop(), nop()})
	if n != 2 || !errors.Is(err, ErrSaturated) {
		t.Fatalf("TrySpawnBatch partial = (%d, %v), want (2, ErrSaturated)", n, err)
	}
	snap := s.Admission()
	if snap.PeakPending > 3 {
		t.Fatalf("PeakPending = %d exceeds MaxInject 3", snap.PeakPending)
	}
	if snap.Pending != snap.Injected-snap.Taken {
		t.Fatalf("inconsistent snapshot: %v", snap)
	}
}

// TestAdmissionBoundHolds is the acceptance property live: with clients ≫ P
// flooding one bounded scheduler, the number of pending injected tasks
// never exceeds MaxInject (checked via the PeakPending high-water mark) and
// every admitted task still runs.
func TestAdmissionBoundHolds(t *testing.T) {
	const (
		bound   = 8
		clients = 16
		each    = 50
	)
	s := newTest(t, Options{P: 2, MaxInject: bound, MaxPendingPerGroup: 2})
	var ran atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := s.NewGroup()
			for i := 0; i < each; i++ {
				g.Spawn(Solo(func(*Ctx) { ran.Add(1) }))
			}
			g.Wait()
			if p := g.Pending(); p != 0 {
				t.Errorf("group pending = %d after Wait", p)
			}
		}()
	}
	wg.Wait()
	if got := ran.Load(); got != clients*each {
		t.Fatalf("ran %d tasks, want %d", got, clients*each)
	}
	snap := s.Admission()
	if snap.PeakPending > bound {
		t.Fatalf("PeakPending = %d exceeds MaxInject %d", snap.PeakPending, bound)
	}
	if snap.Injected != clients*each || snap.Taken != clients*each || snap.Pending != 0 {
		t.Fatalf("admission flow inconsistent: %v", snap)
	}
	if snap.BlockedSpawns == 0 {
		t.Fatal("expected at least one blocked spawn under a bound this tight")
	}
}

// TestAdmissionGroupFairness is the 2-group acceptance property: group B's
// modest batch completes promptly although group A flooded hundreds of
// tasks into the inject path first — round-robin draining keeps B's Wait
// from being starved by A's backlog.
func TestAdmissionGroupFairness(t *testing.T) {
	s := newTest(t, Options{P: 1}) // one worker: injection order is execution order
	const flood = 600
	var aDone, bDone atomic.Int64
	ga, gb := s.NewGroup(), s.NewGroup()
	for i := 0; i < flood; i++ {
		ga.Spawn(Solo(func(*Ctx) {
			time.Sleep(50 * time.Microsecond)
			aDone.Add(1)
		}))
	}
	const bTasks = 10
	for i := 0; i < bTasks; i++ {
		gb.Spawn(Solo(func(*Ctx) { bDone.Add(1) }))
	}
	done := make(chan int64)
	go func() {
		gb.Wait()
		done <- aDone.Load()
	}()
	select {
	case aAtB := <-done:
		// With strict FIFO draining, B's last task would sit behind all of
		// A's flood (~30ms of sleeps on the single worker). Round-robin
		// interleaves B within A's first ~bTasks+1 tasks.
		if aAtB > flood/2 {
			t.Fatalf("B finished only after %d/%d of A's flood — starved", aAtB, flood)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("gb.Wait starved by ga's flood:\n%s", s.DumpState())
	}
	ga.Wait()
	if aDone.Load() != flood || bDone.Load() != bTasks {
		t.Fatalf("aDone=%d bDone=%d", aDone.Load(), bDone.Load())
	}
}

// TestAdmissionBlockedSpawnWokenByShutdown checks the close-vs-ingress
// race: a spawner parked on a full inject queue must return (dropping its
// task without accounting it) when the scheduler shuts down underneath it.
func TestAdmissionBlockedSpawnWokenByShutdown(t *testing.T) {
	s := New(Options{P: 1, MaxInject: 1})
	block := make(chan struct{})
	g := s.NewGroup()
	g.Spawn(Solo(func(*Ctx) { <-block })) // occupies the only worker
	for g.PendingInjected() != 0 {        // wait until the worker picked it up
		time.Sleep(time.Millisecond)
	}
	g.Spawn(Solo(func(*Ctx) {})) // fills the inject bound
	parked := make(chan struct{})
	go func() {
		g.Spawn(Solo(func(*Ctx) {})) // must park: no room
		close(parked)
	}()
	select {
	case <-parked:
		t.Fatal("third spawn did not block on a full inject queue")
	case <-time.After(50 * time.Millisecond):
	}
	// Initiate Shutdown while the worker is still stuck in the first task:
	// the parked spawner must be woken by Shutdown's broadcast, not by
	// capacity freeing up (the worker cannot drain anything yet).
	sdDone := make(chan struct{})
	go func() { s.Shutdown(); close(sdDone) }()
	select {
	case <-parked:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked spawn not woken by Shutdown")
	}
	close(block)
	<-sdDone
	if got := s.Admission().Injected; got > 2 {
		t.Fatalf("dropped spawn was admitted anyway: injected = %d", got)
	}
}

// TestWaitParksAndWakes exercises the notification path of Group.Wait and
// Scheduler.Wait with many concurrent waiters parked on one slow task: all
// of them must wake on completion (not rely on each other's spinning).
func TestWaitParksAndWakes(t *testing.T) {
	s := newTest(t, Options{P: 2})
	release := make(chan struct{})
	g := s.NewGroup()
	g.Spawn(Solo(func(*Ctx) { <-release }))
	const waiters = 16
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				g.Wait()
			} else {
				s.Wait()
			}
		}(i)
	}
	woke := make(chan struct{})
	go func() { wg.Wait(); close(woke) }()
	select {
	case <-woke:
		t.Fatal("Wait returned while the task was still blocked")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-woke:
	case <-time.After(10 * time.Second):
		t.Fatalf("waiters not woken on quiescence:\n%s", s.DumpState())
	}
	// The group is reusable: a second cycle must park and wake again.
	release2 := make(chan struct{})
	g.Spawn(Solo(func(*Ctx) { <-release2 }))
	again := make(chan struct{})
	go func() { g.Wait(); close(again) }()
	select {
	case <-again:
		t.Fatal("reused group's Wait returned early")
	case <-time.After(50 * time.Millisecond):
	}
	close(release2)
	select {
	case <-again:
	case <-time.After(10 * time.Second):
		t.Fatal("reused group's waiter not woken")
	}
}

// FuzzAdmission fuzzes the admission invariants: random client counts,
// per-client task counts and bound configurations, mixing blocking and
// non-blocking spawns. However the flood interleaves, pending injected
// tasks never exceed the configured bounds, every admitted task runs
// exactly once, and the scheduler drains to zero.
func FuzzAdmission(f *testing.F) {
	f.Add(uint8(4), uint8(20), uint8(2), uint8(6), false)
	f.Add(uint8(9), uint8(10), uint8(1), uint8(3), true)
	f.Add(uint8(2), uint8(30), uint8(0), uint8(0), false)
	f.Add(uint8(16), uint8(5), uint8(3), uint8(0), true)
	f.Fuzz(func(t *testing.T, clients, each, maxPer, maxInj uint8, useTry bool) {
		nc := 1 + int(clients)%12
		ne := int(each) % 40
		opts := Options{
			P:                  2,
			MaxPendingPerGroup: int(maxPer) % 8,
			MaxInject:          int(maxInj) % 16,
		}
		s := New(opts)
		defer s.Shutdown()
		var ran, admitted atomic.Int64
		var wg sync.WaitGroup
		for c := 0; c < nc; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				g := s.NewGroup()
				for i := 0; i < ne; i++ {
					task := Solo(func(*Ctx) { ran.Add(1) })
					if useTry && i%3 == 0 {
						if err := g.TrySpawn(task); err == nil {
							admitted.Add(1)
						} else if !errors.Is(err, ErrSaturated) {
							t.Errorf("TrySpawn: %v", err)
						}
					} else {
						g.Spawn(task)
						admitted.Add(1)
					}
				}
				g.Wait()
				if p := g.Pending(); p != 0 {
					t.Errorf("group pending = %d after Wait", p)
				}
			}(c)
		}
		wg.Wait()
		if got, want := ran.Load(), admitted.Load(); got != want {
			t.Fatalf("ran %d admitted tasks, want %d", got, want)
		}
		snap := s.Admission()
		if opts.MaxInject > 0 && snap.PeakPending > int64(opts.MaxInject) {
			t.Fatalf("PeakPending = %d exceeds MaxInject %d", snap.PeakPending, opts.MaxInject)
		}
		if opts.MaxInject == 0 && opts.MaxPendingPerGroup > 0 &&
			snap.PeakPending > int64(opts.MaxPendingPerGroup*nc) {
			t.Fatalf("PeakPending = %d exceeds %d groups × bound %d",
				snap.PeakPending, nc, opts.MaxPendingPerGroup)
		}
		if snap.Injected != admitted.Load() || snap.Pending != 0 {
			t.Fatalf("admission flow inconsistent: %v (admitted %d)", snap, admitted.Load())
		}
	})
}

// TestWBTrySpawnBatchPrefix pins the documented partial-admission contract
// of TrySpawnBatch: the returned count is the length of the admitted
// *prefix* — exactly tasks ts[0:n] run, in order — and the rejected suffix
// is never accounted anywhere (its nodes go straight back to the free
// lists). Whitebox: single worker driven by hand for a deterministic drain.
func TestWBTrySpawnBatchPrefix(t *testing.T) {
	s := build(Options{P: 2, MaxInject: 2})
	w := s.workers[0]
	g := s.NewGroup()
	var order []int
	batch := make([]Task, 5)
	for i := range batch {
		batch[i] = label(&order, i)
	}
	n, err := g.TrySpawnBatch(batch)
	if n != 2 || !errors.Is(err, ErrSaturated) {
		t.Fatalf("TrySpawnBatch = (%d, %v), want (2, ErrSaturated)", n, err)
	}
	// Only the prefix is accounted: the suffix must not appear in any
	// pending counter (a leak here would wedge Wait forever).
	if got := g.Pending(); got != 2 {
		t.Fatalf("group Pending = %d, want 2 (the admitted prefix)", got)
	}
	if got := s.PendingInjected(); got != 2 {
		t.Fatalf("PendingInjected = %d, want 2", got)
	}
	for drainOne(s, w) {
	}
	if len(order) != 2 || order[0] != 0 || order[1] != 1 {
		t.Fatalf("ran %v, want the prefix [0 1] in order", order)
	}
	snap := s.Admission()
	if snap.Injected != 2 || snap.Rejected != 3 || snap.Pending != 0 {
		t.Fatalf("admission counters = %v, want injected=2 rejected=3 pending=0", snap)
	}
}

// TestWBRevokeAtTake pins the revocation interleaving deterministically:
// admit, cancel, then drive the take by hand. The node must be revoked —
// never run — and both the global and the per-group accounting must release
// on the revocation path, with the admission counters attributing the node
// to Revoked rather than Taken.
func TestWBRevokeAtTake(t *testing.T) {
	s := build(Options{P: 2})
	w := s.workers[0]
	g := s.NewGroup()
	var order []int
	g.Spawn(label(&order, 0))
	g.Spawn(label(&order, 1))
	g.Cancel(ErrCanceled)

	// takeInjected must consume the whole queue revoking (returning false:
	// it never yields a runnable task), not hand the nodes to the worker.
	if s.takeInjected(w) {
		t.Fatal("takeInjected returned true for a fully-revoked queue")
	}
	if len(order) != 0 {
		t.Fatalf("revoked tasks ran: %v", order)
	}
	if g.Pending() != 0 || s.PendingInjected() != 0 || s.Pending() != 0 {
		t.Fatalf("residue after revoke: group=%d injected=%d global=%d",
			g.Pending(), s.PendingInjected(), s.Pending())
	}
	snap := s.Admission()
	if snap.Injected != 2 || snap.Taken != 0 || snap.Revoked != 2 {
		t.Fatalf("admission counters = %v, want injected=2 taken=0 revoked=2", snap)
	}
}
