package core

import "sync"

// quiesce is the parking facility behind Scheduler.Wait and Group.Wait:
// instead of spinning on the in-flight counter with backoff (which burns CPU
// proportional to the number of idle waiting clients), a waiter obtains the
// current generation's channel with gate() and parks on it; the goroutine
// that drops the counter to zero closes the channel with release(). Waiters
// always re-check the counter after gate() and loop after waking, so a
// release racing with registration, or a count that rises again after a zero
// transition (group reuse), only costs a spurious wakeup, never a hang.
type quiesce struct {
	mu sync.Mutex
	ch chan struct{}
}

// gate returns a channel that will be closed at the counter's next zero
// transition (or has already been closed, if release ran since gate).
func (z *quiesce) gate() chan struct{} {
	z.mu.Lock()
	if z.ch == nil {
		z.ch = make(chan struct{})
	}
	ch := z.ch
	z.mu.Unlock()
	return ch
}

// release wakes every parked waiter by closing the current channel, if one
// exists. The next gate() starts a fresh generation.
func (z *quiesce) release() {
	z.mu.Lock()
	if z.ch != nil {
		close(z.ch)
		z.ch = nil
	}
	z.mu.Unlock()
}
