package core

import (
	"sync"
	"sync/atomic"
)

// quiesce is the parking facility behind Scheduler.Wait and Group.Wait:
// instead of spinning on the in-flight counter with backoff (which burns CPU
// proportional to the number of idle waiting clients), a waiter obtains the
// current generation's channel with gate() and parks on it; the goroutine
// that drops the counter to zero closes the channel with release(). Waiters
// always re-check the counter after gate() and loop after waking, so a
// release racing with registration, or a count that rises again after a zero
// transition (group reuse), only costs a spurious wakeup, never a hang.
//
// The armed flag tells completers whether any gate channel exists at all:
// with the sharded global in-flight counter (inflight.go), detecting the
// zero transition costs a sum scan, and armed lets the per-task completion
// path skip it entirely — one read of a read-mostly line — unless a waiter
// is actually parked. Per-group counters remain single atomics, so the
// group release path does not consult armed.
type quiesce struct {
	mu sync.Mutex
	ch chan struct{}
	on atomic.Bool // a gate channel exists (a waiter may be parked)
}

// gate returns a channel that will be closed at the counter's next zero
// transition (or has already been closed, if release ran since gate).
func (z *quiesce) gate() chan struct{} {
	z.mu.Lock()
	if z.ch == nil {
		z.ch = make(chan struct{})
		z.on.Store(true)
	}
	ch := z.ch
	z.mu.Unlock()
	return ch
}

// release wakes every parked waiter by closing the current channel, if one
// exists. The next gate() starts a fresh generation.
func (z *quiesce) release() {
	z.mu.Lock()
	if z.ch != nil {
		close(z.ch)
		z.ch = nil
		z.on.Store(false)
	}
	z.mu.Unlock()
}

// armed reports whether a gate channel is outstanding. Completers use it to
// elide the quiescence scan when no one could be waiting; the
// arm-then-recheck order in the Wait loops makes a false negative here
// harmless (the waiter re-checks the counter after arming).
func (z *quiesce) armed() bool { return z.on.Load() }
