package core

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/topo"
)

// TestFuzzMixedWorkload is the in-suite version of cmd/stress: randomized
// mixed-size task trees across several scheduler configurations, checking
// the central execution invariants.
func TestFuzzMixedWorkload(t *testing.T) {
	configs := []Options{
		{P: 4},
		{P: 8},
		{P: 8, Randomized: true, Seed: 3},
		{P: 8, DisableTeamReuse: true},
		{P: 8, StealOne: true},
		{P: 6},
		{P: 5, Randomized: true, Seed: 9},
		{P: 12},
	}
	for _, opts := range configs {
		opts := opts
		t.Run("", func(t *testing.T) {
			t.Parallel()
			s := newTest(t, opts)
			rng := dist.NewRNG(opts.Seed + uint64(opts.P))
			maxTeam := s.MaxTeam()
			for round := 0; round < 10; round++ {
				var execs, want, badLocal atomic.Int64
				for i := 0; i < 60; i++ {
					r := 1
					switch rng.Intn(4) {
					case 0, 1:
						r = 1
					case 2:
						r = 1 << rng.Intn(topo.Log2Floor(maxTeam)+1)
					case 3:
						r = 1 + rng.Intn(maxTeam)
					}
					want.Add(int64(r))
					s.Spawn(fuzzTask(r, rng.Intn(3), maxTeam, &execs, &badLocal, &want, rng.Next()))
				}
				runWithDeadline(t, s, 30*time.Second, s.Wait)
				if got := execs.Load(); got != want.Load() {
					t.Fatalf("round %d: executions %d, want %d\n%s",
						round, got, want.Load(), s.DumpState())
				}
				if b := badLocal.Load(); b != 0 {
					t.Fatalf("round %d: %d bad local ids", round, b)
				}
			}
		})
	}
}

func fuzzTask(r, depth, maxTeam int, execs, badLocal, want *atomic.Int64, seed uint64) Task {
	return Func(r, func(ctx *Ctx) {
		execs.Add(1)
		if ctx.LocalID() < 0 || ctx.LocalID() >= ctx.TeamSize() || ctx.TeamSize() != r {
			badLocal.Add(1)
		}
		ctx.Barrier()
		if ctx.LocalID() == 0 && depth > 0 {
			rng := dist.NewRNG(seed)
			for i := 0; i < 2; i++ {
				cr := 1 + rng.Intn(maxTeam)
				want.Add(int64(cr))
				ctx.Spawn(fuzzTask(cr, depth-1, maxTeam, execs, badLocal, want, rng.Next()))
			}
		}
	})
}

// TestStatsInvariants checks cross-counter consistency after a mixed run.
func TestStatsInvariants(t *testing.T) {
	s := newTest(t, Options{P: 8})
	for i := 0; i < 100; i++ {
		for r := 1; r <= 8; r *= 2 {
			s.Spawn(Func(r, func(ctx *Ctx) { ctx.Barrier() }))
		}
	}
	s.Wait()
	st := s.Stats()
	// 400 tasks; team tasks execute once per member: 100*(1+2+4+8).
	if st.TasksRun != 1500 {
		t.Fatalf("TasksRun = %d, want 1500", st.TasksRun)
	}
	if st.TeamTasksRun != 1400 {
		t.Fatalf("TeamTasksRun = %d, want 1400", st.TeamTasksRun)
	}
	// Team tasks with r > 1: 300 published executions.
	if st.TeamsFormed != 300 {
		t.Fatalf("TeamsFormed = %d, want 300", st.TeamsFormed)
	}
	if st.Registrations == 0 || st.Polls == 0 {
		t.Fatalf("no coordination traffic recorded: %s", st)
	}
	// Every deregistration must correspond to an earlier registration.
	if st.Deregistrations > st.Registrations {
		t.Fatalf("deregistrations %d > registrations %d", st.Deregistrations, st.Registrations)
	}
}

// TestSoloOverheadPath asserts the r = 1 fast path stays free of team
// machinery: no teams formed, no registrations.
func TestSoloOverheadPath(t *testing.T) {
	s := newTest(t, Options{P: 4})
	s.Run(Solo(func(ctx *Ctx) {
		for i := 0; i < 1000; i++ {
			ctx.Spawn(Solo(func(*Ctx) {}))
		}
	}))
	st := s.Stats()
	if st.TeamsFormed != 0 {
		t.Fatalf("solo workload formed %d teams", st.TeamsFormed)
	}
	if st.Registrations != 0 {
		t.Fatalf("solo workload triggered %d registrations", st.Registrations)
	}
	if st.TasksRun != 1001 {
		t.Fatalf("TasksRun = %d", st.TasksRun)
	}
}

// TestCtxAccessors validates Ctx's worker/team introspection.
func TestCtxAccessors(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	var fail atomic.Int64
	s.Run(Func(4, func(ctx *Ctx) {
		if ctx.Scheduler() != s {
			fail.Add(1)
		}
		if ctx.WorkerID() < 0 || ctx.WorkerID() >= p {
			fail.Add(1)
		}
		if ctx.TeamLeft()%4 != 0 {
			fail.Add(1)
		}
		if ctx.WorkerID()-ctx.TeamLeft() != ctx.LocalID() {
			fail.Add(1)
		}
	}))
	s.Run(Solo(func(ctx *Ctx) {
		if ctx.TeamSize() != 1 || ctx.LocalID() != 0 || ctx.TeamLeft() != ctx.WorkerID() {
			fail.Add(1)
		}
		ctx.Barrier() // must be a no-op, not a hang
	}))
	if fail.Load() != 0 {
		t.Fatalf("%d accessor violations", fail.Load())
	}
}

// TestTeamGrowShrinkCycle drives one coordinator through grow and shrink
// transitions: same worker's queue holds sizes 2, 8, 2, 8, …
func TestTeamGrowShrinkCycle(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	var execs atomic.Int64
	s.Run(Solo(func(ctx *Ctx) {
		for i := 0; i < 20; i++ {
			ctx.Spawn(Func(2, func(c *Ctx) { execs.Add(1); c.Barrier() }))
			ctx.Spawn(Func(8, func(c *Ctx) { execs.Add(1); c.Barrier() }))
		}
	}))
	if got := execs.Load(); got != 20*(2+8) {
		t.Fatalf("executions = %d, want %d", got, 20*10)
	}
}

// TestDeepTeamRecursion spawns team tasks from within team tasks several
// levels deep (beyond the quicksort pattern).
func TestDeepTeamRecursion(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	var execs atomic.Int64
	var rec func(r, depth int) Task
	rec = func(r, depth int) Task {
		return Func(r, func(ctx *Ctx) {
			execs.Add(1)
			ctx.Barrier()
			if ctx.LocalID() == 0 && depth > 0 {
				ctx.Spawn(rec(r, depth-1))
			}
		})
	}
	s.Run(rec(8, 30))
	if got := execs.Load(); got != 31*8 {
		t.Fatalf("executions = %d, want %d", got, 31*8)
	}
}

// TestPinOSThreads smoke-tests the pinned-worker option.
func TestPinOSThreads(t *testing.T) {
	s := newTest(t, Options{P: 4, PinOSThreads: true})
	var execs atomic.Int64
	s.Run(Func(4, func(*Ctx) { execs.Add(1) }))
	if execs.Load() != 4 {
		t.Fatalf("executions = %d", execs.Load())
	}
}

// TestDumpStateAndTrace smoke-tests the diagnostics surface.
func TestDumpStateAndTrace(t *testing.T) {
	s := newTest(t, Options{P: 4})
	s.TraceOn()
	s.Run(Func(4, func(ctx *Ctx) { ctx.Barrier() }))
	dump := s.DumpState()
	if !strings.Contains(dump, "w0") || !strings.Contains(dump, "inflight=0") {
		t.Fatalf("dump missing fields:\n%s", dump)
	}
	trace := s.TraceDump()
	if !strings.Contains(trace, "team-fixed") || !strings.Contains(trace, "publish") {
		t.Fatalf("trace missing protocol events:\n%s", trace)
	}
}

// TestManySmallTeams floods the scheduler with 2-thread tasks from all
// workers at once — heavy conflict-resolution traffic within blocks.
func TestManySmallTeams(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	var execs atomic.Int64
	s.Run(Solo(func(ctx *Ctx) {
		var fan func(depth int) Task
		fan = func(depth int) Task {
			return Func(2, func(c *Ctx) {
				execs.Add(1)
				if c.LocalID() == 0 && depth > 0 {
					c.Spawn(fan(depth - 1))
					c.Spawn(fan(depth - 1))
				}
			})
		}
		ctx.Spawn(fan(6))
	}))
	// Full binary tree of depth 6: 127 tasks × 2 executions.
	if got := execs.Load(); got != 254 {
		t.Fatalf("executions = %d, want 254", got)
	}
}

// TestWaitFromMultipleGoroutines allows concurrent external waiters.
func TestWaitFromMultipleGoroutines(t *testing.T) {
	s := newTest(t, Options{P: 4})
	var ran atomic.Int64
	for i := 0; i < 50; i++ {
		s.Spawn(Solo(func(*Ctx) { ran.Add(1) }))
	}
	done := make(chan struct{}, 3)
	for i := 0; i < 3; i++ {
		go func() { s.Wait(); done <- struct{}{} }()
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d stuck:\n%s", i, s.DumpState())
		}
	}
	if ran.Load() != 50 {
		t.Fatalf("ran = %d", ran.Load())
	}
}

// TestShutdownIdempotent calls Shutdown repeatedly and from a fresh state.
func TestShutdownIdempotent(t *testing.T) {
	s := New(Options{P: 4})
	s.Run(Solo(func(*Ctx) {}))
	s.Shutdown()
	s.Shutdown()
	s.Shutdown()
}

// TestMaxTeamEnforcement covers requirement validation at spawn.
func TestMaxTeamEnforcement(t *testing.T) {
	s := newTest(t, Options{P: 6}) // MaxTeam 4
	if s.MaxTeam() != 4 {
		t.Fatalf("MaxTeam = %d", s.MaxTeam())
	}
	s.Run(Func(4, func(*Ctx) {})) // exactly MaxTeam is fine
	for _, bad := range []int{0, -1, 5, 8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("r=%d: expected panic", bad)
				}
			}()
			s.Spawn(Func(bad, func(*Ctx) {}))
		}()
	}
}

// TestTeamBarrierUnderConcurrentLoad runs barriers inside teams while solo
// tasks churn — barrier phases must not be disturbed by helping traffic.
func TestTeamBarrierUnderConcurrentLoad(t *testing.T) {
	const p = 8
	s := newTest(t, Options{P: p})
	var bad atomic.Int64
	var phase [4]atomic.Int64
	s.Run(Solo(func(ctx *Ctx) {
		for i := 0; i < 200; i++ {
			ctx.Spawn(Solo(func(*Ctx) {}))
		}
		ctx.Spawn(Func(4, func(c *Ctx) {
			for ph := 0; ph < 4; ph++ {
				phase[ph].Add(1)
				c.Barrier()
				if phase[ph].Load() != 4 {
					bad.Add(1)
				}
				c.Barrier()
			}
		}))
	}))
	if bad.Load() != 0 {
		t.Fatalf("%d barrier-phase violations", bad.Load())
	}
}

// TestPendingDrainsToZero observes the in-flight counter.
func TestPendingDrainsToZero(t *testing.T) {
	s := newTest(t, Options{P: 4})
	for i := 0; i < 100; i++ {
		s.Spawn(Solo(func(*Ctx) {}))
	}
	s.Wait()
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending = %d after Wait", got)
	}
}
