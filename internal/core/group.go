package core

import (
	"sync/atomic"

	"repro/internal/backoff"
)

// Group is a set of tasks with its own quiescence: Wait returns when every
// task spawned into the group — including all descendants spawned by those
// tasks via Ctx.Spawn, which inherit the group — has completed, regardless
// of what other groups on the same scheduler are doing. Groups are what let
// one scheduler serve many independent clients concurrently: with the
// paper's r = 1 tasks the scheduler behaves like ordinary work-stealing, so
// a group is the mixed-mode analogue of one client's fork-join computation,
// and two clients' groups drain independently instead of waiting on the
// scheduler's global task count.
//
// A Group is not the same thing as a TaskGroup: a TaskGroup is an
// in-task fork/join helper whose Wait runs on a worker and helps execute
// single-threaded children; a Group is an external-facing quiescence domain
// that may contain team tasks of any width, and its Wait (called from
// outside the scheduler's workers) backs off rather than helping.
//
// Groups are cheap (one counter) and single-use or reusable at the caller's
// choice: after Wait returns, more tasks may be spawned into the same group
// and waited for again. Methods are safe for concurrent use.
type Group struct {
	s        *Scheduler
	inflight atomic.Int64
}

// NewGroup returns a fresh, empty task group on s.
func (s *Scheduler) NewGroup() *Group { return &Group{s: s} }

// Scheduler returns the scheduler the group spawns into.
func (g *Group) Scheduler() *Scheduler { return g.s }

// Spawn submits t from outside the scheduler as part of the group. Tasks
// that t spawns via Ctx.Spawn while running join the same group
// automatically. It is safe for concurrent use. Do not call it from inside
// a running task of the same scheduler for the common case — Ctx.Spawn is
// cheaper and preserves depth-first order — but it is safe there too (the
// task is injected like an external submission).
func (g *Group) Spawn(t Task) {
	n := g.s.newNode(t, g)
	g.s.injectNodes(n)
}

// SpawnBatch submits several tasks under a single injection-lock acquisition
// — the batched form of Spawn for clients enqueueing many requests at once.
// The whole batch is validated before any task is accounted, so a panic on
// an invalid task (like Spawn's) leaves no inflight count behind.
func (g *Group) SpawnBatch(ts []Task) {
	if len(ts) == 0 {
		return
	}
	ns := make([]*node, len(ts))
	for i, t := range ts {
		ns[i] = g.s.makeNode(t, g)
	}
	for _, n := range ns {
		g.s.account(n)
	}
	g.s.injectNodes(ns...)
}

// Wait blocks until the group is quiescent: every task spawned into it (and
// every descendant those tasks spawned) has completed. Other groups' tasks
// do not delay Wait. Like Scheduler.Wait it must not be called from inside
// a running task (a worker blocking on external quiescence could deadlock
// the team protocol); use TaskGroup for in-task joins. If the scheduler is
// shut down while the group still has tasks, Wait returns early — the
// tasks are abandoned (see Scheduler.Shutdown) and would never drain.
func (g *Group) Wait() {
	var bo backoff.Backoff
	for g.inflight.Load() > 0 {
		if g.s.done.Load() {
			return // shutdown: abandoned tasks never complete
		}
		bo.Wait()
	}
}

// Run submits t into the group and waits for the group's quiescence. On a
// fresh group this is exactly the old global Scheduler.Run semantics scoped
// to t's own task tree.
func (g *Group) Run(t Task) {
	g.Spawn(t)
	g.Wait()
}

// Pending returns the group's current in-flight task count (racy; for tests
// and diagnostics).
func (g *Group) Pending() int64 { return g.inflight.Load() }
