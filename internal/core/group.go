package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Group is a set of tasks with its own quiescence: Wait returns when every
// task spawned into the group — including all descendants spawned by those
// tasks via Ctx.Spawn, which inherit the group — has completed, regardless
// of what other groups on the same scheduler are doing. Groups are what let
// one scheduler serve many independent clients concurrently: with the
// paper's r = 1 tasks the scheduler behaves like ordinary work-stealing, so
// a group is the mixed-mode analogue of one client's fork-join computation,
// and two clients' groups drain independently instead of waiting on the
// scheduler's global task count.
//
// A Group is also an admission source: its external spawns feed a private
// FIFO inject queue that workers drain round-robin against the other
// groups' queues (see admission.go), so one group's submission flood cannot
// starve another group's, and the optional Options bounds throttle each
// group at the inject path.
//
// A Group is not the same thing as a TaskGroup: a TaskGroup is an
// in-task fork/join helper whose Wait runs on a worker and helps execute
// single-threaded children; a Group is an external-facing quiescence domain
// that may contain team tasks of any width, and its Wait (called from
// outside the scheduler's workers) parks rather than helping.
//
// Groups are cheap (one counter and an inject queue) and single-use or
// reusable at the caller's choice: after Wait returns, more tasks may be
// spawned into the same group and waited for again. Methods are safe for
// concurrent use.
type Group struct {
	s *Scheduler

	// name labels the group in the metrics registry (NewNamedGroup);
	// anonymous groups leave it empty and are invisible to metrics.
	name string

	// gid is a small scheduler-unique id labeling the group's trace events,
	// so the Chrome export can render each group as its own async span.
	gid uint64

	// inflight is the group's task count, updated by every completion of a
	// task in the group. Unlike the scheduler-global count it stays a single
	// atomic — groups are per-client, not per-task-tree-node, so the
	// contention is bounded by one client's parallelism — but it gets its
	// own cache line: a group counter sharing a line with the scheduler
	// pointer (or a neighboring group in client-side slices of Groups)
	// would put every completion's RMW on a line other CPUs read.
	_        [56]byte
	inflight atomic.Int64
	_        [56]byte

	qz quiesce // parks Wait on the inflight zero transition
	iq injectQ // pending external submissions; guarded by s.admitMu

	// epoch is the group's cancellation epoch: even while live, odd once
	// canceled (see cancel.go). It is bumped only under s.admitMu — the lock
	// admission and take already hold — so a node's stamp at admission
	// (node.gepoch) and the comparison at take time observe a cancel
	// atomically with the queue state; lock-free readers (Ctx.Canceled,
	// Err, Wait-side checks) use atomic loads.
	epoch uint64

	// cancelMu serializes the control-plane transitions (Cancel, Deadline,
	// Reset); it is never taken on a task path. cause is written under
	// cancelMu before the epoch goes odd and read only after observing the
	// odd epoch; timer is the pending Deadline timer.
	cancelMu sync.Mutex
	cause    error
	timer    *time.Timer
}

// NewGroup returns a fresh, empty task group on s.
func (s *Scheduler) NewGroup() *Group {
	return &Group{s: s, gid: s.groupSeq.Add(1)}
}

// NewNamedGroup returns a fresh task group labeled name and registers it
// with the scheduler's metrics surface: the per-group gauge families of
// Metrics (pending tasks, inject-queue depth) emit one series per distinct
// name, summing groups that share a name. Named groups are meant for
// long-lived clients — the scheduler keeps a reference for the lifetime of
// the scheduler, so do not create unbounded numbers of them.
func (s *Scheduler) NewNamedGroup(name string) *Group {
	g := &Group{s: s, name: name, gid: s.groupSeq.Add(1)}
	s.groupsMu.Lock()
	s.namedGroups = append(s.namedGroups, g)
	s.groupsMu.Unlock()
	return g
}

// Name returns the label given at NewNamedGroup ("" for anonymous groups).
func (g *Group) Name() string { return g.name }

// Scheduler returns the scheduler the group spawns into.
func (g *Group) Scheduler() *Scheduler { return g.s }

// Spawn submits t from outside the scheduler as part of the group. Tasks
// that t spawns via Ctx.Spawn while running join the same group
// automatically. It is safe for concurrent use.
//
// With admission bounds configured (Options.MaxPendingPerGroup/MaxInject),
// Spawn blocks while the bounds leave no room; a task only counts toward
// the group's quiescence once admitted. Do not call a potentially blocking
// Spawn from inside a running task of the same scheduler — a worker parked
// on admission cannot help drain the very queues it waits on; use Ctx.Spawn
// (never throttled) or TrySpawn there.
//
// Spawn returns nil once the task is admitted. On a shut-down scheduler it
// returns ErrShutdown; on a canceled group (including a parked Spawn whose
// group is canceled or passes its deadline while waiting) it returns the
// cancellation cause — ErrCanceled, ErrDeadlineExceeded, or the Cancel
// argument. In every error case the task is dropped without inflating any
// in-flight count.
func (g *Group) Spawn(t Task) error {
	_, err := g.s.admitBlocking(g, &g.iq, []*node{g.s.makeNode(t, g)})
	return err
}

// SpawnBatch submits several tasks under a single admission-lock
// acquisition — the batched form of Spawn for clients enqueueing many
// requests at once. The whole batch is validated before any task is
// accounted, so a panic on an invalid task (like Spawn's) leaves no
// inflight count behind. Under admission bounds the batch is admitted in
// FIFO chunks as room frees up (blocking in between); on shutdown or group
// cancellation the unadmitted remainder is dropped and SpawnBatch returns
// the typed reason like Spawn (the already-admitted prefix stays admitted —
// on a canceled group it is revoked at take time like any other node).
func (g *Group) SpawnBatch(ts []Task) error {
	if len(ts) == 0 {
		return nil
	}
	ns := make([]*node, len(ts))
	for i, t := range ts {
		ns[i] = g.s.makeNode(t, g)
	}
	_, err := g.s.admitBlocking(g, &g.iq, ns)
	return err
}

// TrySpawn is the non-blocking form of Spawn: it admits t if the admission
// bounds leave room and returns nil, or returns ErrSaturated (the task is
// dropped, nothing accounted) when they do not, ErrShutdown on a shut-down
// scheduler, or the cancellation cause on a canceled group. It is the safe
// way to submit from latency-sensitive clients and from inside running
// tasks.
func (g *Group) TrySpawn(t Task) error {
	_, err := g.s.admitTry(g, &g.iq, []*node{g.s.makeNode(t, g)})
	return err
}

// TrySpawnBatch is the non-blocking form of SpawnBatch. It admits exactly
// the longest prefix of ts that fits under the admission bounds — admission
// is in submission order and stops at the first task that does not fit, so
// the returned count k means ts[:k] were admitted and ts[k:] were not — and
// returns ErrSaturated if any task was refused. On a shut-down scheduler it
// returns (0, ErrShutdown); on a canceled group (0, cause). Refused tasks
// are dropped without being accounted (their wrapper nodes are recycled);
// the caller may resubmit ts[k:] later. The whole batch is validated up
// front, like SpawnBatch.
func (g *Group) TrySpawnBatch(ts []Task) (int, error) {
	if len(ts) == 0 {
		return 0, nil
	}
	ns := make([]*node, len(ts))
	for i, t := range ts {
		ns[i] = g.s.makeNode(t, g)
	}
	return g.s.admitTry(g, &g.iq, ns)
}

// Wait blocks until the group is quiescent: every task spawned into it (and
// every descendant those tasks spawned) has completed. Other groups' tasks
// do not delay Wait, and waiters park on a completion notification rather
// than spinning, so many idle waiting clients cost no CPU. Like
// Scheduler.Wait it must not be called from inside a running task (a worker
// blocking on external quiescence could deadlock the team protocol); use
// TaskGroup for in-task joins. If the scheduler is shut down while the
// group still has tasks, Wait returns early — the tasks are abandoned (see
// Scheduler.Shutdown) and would never drain. On a canceled group Wait still
// waits for the true drain: started tasks run to completion (observing
// Ctx.Canceled) and never-started nodes are revoked by workers at take
// time, each releasing the in-flight count exactly once — use WaitErr to
// learn how the group ended.
func (g *Group) Wait() {
	for {
		if g.inflight.Load() == 0 || g.s.done.Load() {
			return
		}
		ch := g.qz.gate()
		if g.inflight.Load() == 0 || g.s.done.Load() {
			return
		}
		select {
		case <-ch:
		case <-g.s.doneCh:
		}
	}
}

// Run submits t into the group and waits for the group's quiescence. On a
// fresh group this is exactly the old global Scheduler.Run semantics scoped
// to t's own task tree. It returns WaitErr's verdict (nil on a clean drain,
// the cancellation cause or ErrShutdown otherwise); if the spawn itself is
// refused it returns that reason without waiting.
func (g *Group) Run(t Task) error {
	if err := g.Spawn(t); err != nil {
		return err
	}
	return g.WaitErr()
}

// Pending returns the group's current in-flight task count (racy; for tests
// and diagnostics).
func (g *Group) Pending() int64 { return g.inflight.Load() }

// PendingInjected returns the group's admitted external tasks no worker has
// started yet — the group's inject-queue depth (racy; for tests and
// diagnostics).
func (g *Group) PendingInjected() int {
	g.s.admitMu.Lock()
	defer g.s.admitMu.Unlock()
	return g.iq.pending()
}
