package repro

import (
	"repro/internal/core"
	"repro/internal/msort"
	"repro/internal/qsort"
	"repro/internal/ssort"
)

// Runtime is a long-lived sorting service over one shared Scheduler: many
// goroutines may call the Sort* methods concurrently, and each call runs as
// its own quiescence group, so independent requests neither wait on each
// other's tasks nor require a scheduler per client. This is the paper's
// scheduler in its intended role as a general runtime — each client
// computation is a task-parallel job whose interior may contain
// data-parallel team tasks, and the scheduler multiplexes all of them over
// one set of p workers.
//
// The element type is fixed per Runtime (it parameterizes the Sort*
// methods); create one Runtime per element type on the same Scheduler via
// NewRuntimeOn if a process needs several.
type Runtime[T Ordered] struct {
	s     *Scheduler
	owned bool // whether Close shuts the scheduler down
}

// NewRuntime starts a scheduler with opts.P workers (default NumCPU) and
// returns a Runtime serving concurrent sorts on it. Release the workers
// with Close.
func NewRuntime[T Ordered](opts Options) *Runtime[T] {
	return &Runtime[T]{s: core.New(opts), owned: true}
}

// NewRuntimeOn returns a Runtime serving concurrent sorts on an existing
// scheduler (which the caller keeps owning: Close on such a Runtime is a
// no-op, shut the scheduler down yourself).
func NewRuntimeOn[T Ordered](s *Scheduler) *Runtime[T] {
	return &Runtime[T]{s: s}
}

// Scheduler returns the underlying shared scheduler.
func (r *Runtime[T]) Scheduler() *Scheduler { return r.s }

// P returns the worker count of the underlying scheduler.
func (r *Runtime[T]) P() int { return r.s.P() }

// Close shuts the underlying scheduler down if the Runtime owns it
// (created by NewRuntime). Outstanding sorts are abandoned; finish or wait
// for them first.
func (r *Runtime[T]) Close() {
	if r.owned {
		r.s.Shutdown()
	}
}

// SortMixedMode sorts data with the paper's mixed-mode parallel Quicksort
// (Algorithm 11) as an independent group on the shared scheduler. It blocks
// until data is sorted; concurrent calls proceed independently.
func (r *Runtime[T]) SortMixedMode(data []T, opt MMOptions) {
	qsort.MixedMode(r.s, data, opt)
}

// SortForkJoin sorts data with the task-parallel Quicksort (Algorithm 10)
// as an independent group on the shared scheduler.
func (r *Runtime[T]) SortForkJoin(data []T) {
	qsort.ForkJoinCore(r.s, data, qsort.DefaultCutoff)
}

// SortSamplesort sorts data with the mixed-mode parallel samplesort as an
// independent group on the shared scheduler.
func (r *Runtime[T]) SortSamplesort(data []T, opt SSOptions) {
	ssort.Sort(r.s, data, opt)
}

// SortMergeMixedMode sorts data with the mixed-mode parallel merge sort as
// an independent group on the shared scheduler.
func (r *Runtime[T]) SortMergeMixedMode(data []T, opt MSOptions) {
	msort.Sort(r.s, data, opt)
}
