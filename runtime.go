package repro

import (
	"repro/internal/core"
	"repro/internal/msort"
	"repro/internal/qsort"
	"repro/internal/ssort"
)

// Runtime is a long-lived sorting service over one shared Scheduler: many
// goroutines may call the Sort* methods concurrently, and each call runs as
// its own quiescence group, so independent requests neither wait on each
// other's tasks nor require a scheduler per client. This is the paper's
// scheduler in its intended role as a general runtime — each client
// computation is a task-parallel job whose interior may contain
// data-parallel team tasks, and the scheduler multiplexes all of them over
// one set of p workers.
//
// The element type is fixed per Runtime (it parameterizes the Sort*
// methods); create one Runtime per element type on the same Scheduler via
// NewRuntimeOn if a process needs several.
type Runtime[T Ordered] struct {
	s     *Scheduler
	owned bool // whether Close shuts the scheduler down
}

// NewRuntime starts a scheduler with opts.P workers (default NumCPU) and
// returns a Runtime serving concurrent sorts on it. Release the workers
// with Close.
func NewRuntime[T Ordered](opts Options) *Runtime[T] {
	return &Runtime[T]{s: core.New(opts), owned: true}
}

// NewRuntimeOn returns a Runtime serving concurrent sorts on an existing
// scheduler (which the caller keeps owning: Close on such a Runtime is a
// no-op, shut the scheduler down yourself).
func NewRuntimeOn[T Ordered](s *Scheduler) *Runtime[T] {
	return &Runtime[T]{s: s}
}

// Scheduler returns the underlying shared scheduler.
func (r *Runtime[T]) Scheduler() *Scheduler { return r.s }

// P returns the worker count of the underlying scheduler.
func (r *Runtime[T]) P() int { return r.s.P() }

// Close shuts the underlying scheduler down if the Runtime owns it
// (created by NewRuntime). Outstanding sorts are abandoned; finish or wait
// for them first.
func (r *Runtime[T]) Close() {
	if r.owned {
		r.s.Shutdown()
	}
}

// SortMixedMode sorts data with the paper's mixed-mode parallel Quicksort
// (Algorithm 11) as an independent group on the shared scheduler. It blocks
// until data is sorted; concurrent calls proceed independently.
func (r *Runtime[T]) SortMixedMode(data []T, opt MMOptions) {
	qsort.MixedMode(r.s, data, opt)
}

// SortForkJoin sorts data with the task-parallel Quicksort (Algorithm 10)
// as an independent group on the shared scheduler.
func (r *Runtime[T]) SortForkJoin(data []T) {
	qsort.ForkJoinCore(r.s, data, qsort.DefaultCutoff)
}

// SortSamplesort sorts data with the mixed-mode parallel samplesort as an
// independent group on the shared scheduler.
func (r *Runtime[T]) SortSamplesort(data []T, opt SSOptions) {
	ssort.Sort(r.s, data, opt)
}

// SortMergeMixedMode sorts data with the mixed-mode parallel merge sort as
// an independent group on the shared scheduler.
func (r *Runtime[T]) SortMergeMixedMode(data []T, opt MSOptions) {
	msort.Sort(r.s, data, opt)
}

// SortAlgo selects the algorithm of one SortMany request. The zero value is
// the paper's mixed-mode quicksort.
type SortAlgo int

const (
	// AlgoMixedMode is the mixed-mode parallel quicksort (Algorithm 11).
	AlgoMixedMode SortAlgo = iota
	// AlgoForkJoin is the task-parallel quicksort (Algorithm 10).
	AlgoForkJoin
	// AlgoSamplesort is the mixed-mode parallel samplesort.
	AlgoSamplesort
	// AlgoMergeMixedMode is the mixed-mode parallel merge sort.
	AlgoMergeMixedMode
)

// SortRequest is one sort of a SortMany batch: the slice to sort and the
// algorithm to sort it with.
type SortRequest[T Ordered] struct {
	Data []T
	Algo SortAlgo
}

// BatchOptions carries the per-algorithm tunables of a SortMany batch; the
// zero value selects every algorithm's defaults.
type BatchOptions struct {
	MM MMOptions
	SS SSOptions
	MS MSOptions
	// Cutoff is the sequential cutoff of AlgoForkJoin requests (0 selects
	// the default; the mixed-mode algorithms carry theirs in MM/SS/MS).
	Cutoff int
}

// SortMany sorts every request of the batch concurrently on the shared
// scheduler and blocks until all of them are sorted. The whole batch runs
// as ONE quiescence group whose root tasks are submitted with a single
// Group.SpawnBatch — one admission-lock acquisition however many requests
// the batch carries — so a client aggregating many small sort requests
// amortizes the injection cost that per-call Sort* methods pay per request.
// Under admission bounds (Options.MaxPendingPerGroup/MaxInject) the batch
// is throttled like any other group and may block until room frees up.
// Concurrent SortMany calls (and concurrent Sort* calls) proceed
// independently.
func (r *Runtime[T]) SortMany(reqs []SortRequest[T], opt BatchOptions) {
	maxTeam := r.s.MaxTeam()
	ts := make([]core.Task, 0, len(reqs))
	for _, rq := range reqs {
		var t core.Task
		switch rq.Algo {
		case AlgoForkJoin:
			t = qsort.ForkJoinRoot(rq.Data, opt.Cutoff)
		case AlgoSamplesort:
			t = ssort.Root(maxTeam, rq.Data, opt.SS)
		case AlgoMergeMixedMode:
			t = msort.Root(rq.Data, opt.MS)
		default:
			t = qsort.MixedModeRoot(maxTeam, rq.Data, opt.MM)
		}
		if t != nil { // nil: nothing to sort (len < 2)
			ts = append(ts, t)
		}
	}
	if len(ts) == 0 {
		return
	}
	g := r.s.NewGroup()
	g.SpawnBatch(ts)
	g.Wait()
}
