package repro

import (
	"context"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/msort"
	"repro/internal/qsort"
	"repro/internal/ssort"
	"repro/internal/stats"
)

// Runtime is a long-lived sorting service over one shared Scheduler: many
// goroutines may call the Sort* methods concurrently, and each call runs as
// its own quiescence group, so independent requests neither wait on each
// other's tasks nor require a scheduler per client. This is the paper's
// scheduler in its intended role as a general runtime — each client
// computation is a task-parallel job whose interior may contain
// data-parallel team tasks, and the scheduler multiplexes all of them over
// one set of p workers.
//
// The element type is fixed per Runtime (it parameterizes the Sort*
// methods); create one Runtime per element type on the same Scheduler via
// NewRuntimeOn if a process needs several.
type Runtime[T Ordered] struct {
	s     *Scheduler
	owned bool // whether Close shuts the scheduler down
	m     runtimeMetrics
}

// numSortAlgos is the number of SortAlgo values (the metrics arrays below
// are indexed by SortAlgo).
const numSortAlgos = 4

// sortAlgoNames labels each SortAlgo in the metrics registry, matching the
// harness column names used across the benchmark tooling.
var sortAlgoNames = [numSortAlgos]string{"mmpar", "fork", "ssort", "msort"}

// queryOp indexes the analytics request families of runtimeMetrics, one per
// Runtime query entry point (see analytics.go).
type queryOp int

const (
	qopFilter queryOp = iota
	qopGroupBy
	qopAggregate
	qopTopK
	qopJoin
	qopPlan
	numQueryOps
)

// queryOpNames labels each queryOp in the metrics registry.
var queryOpNames = [numQueryOps]string{"filter", "groupby", "aggregate", "topk", "join", "plan"}

// runtimeMetrics instruments a Runtime's sort and analytics requests: one
// end-to-end latency histogram and one in-flight gauge per sort algorithm
// and per query operator. Requests only touch a sharded histogram (shard
// picked by a round-robin ticket — one shared atomic add per request, not
// per task; the per-task hot path inside the scheduler stays untouched) and
// the family's in-flight counter.
type runtimeMetrics struct {
	initOnce  sync.Once
	regOnce   sync.Once
	reg       *stats.Registry
	hist      [numSortAlgos]*stats.Histogram
	inflight  [numSortAlgos]atomic.Int64
	qhist     [numQueryOps]*stats.Histogram
	qinflight [numQueryOps]atomic.Int64
	rr        atomic.Uint32 // round-robin histogram shard ticket
}

// init creates the histograms (shards sized to the scheduler). Called from
// every instrumentation site, so a Runtime built directly with a struct
// literal needs no constructor hook.
func (m *runtimeMetrics) init(p int) {
	m.initOnce.Do(func() {
		shards := p
		if shards > 16 {
			shards = 16
		}
		for a := range m.hist {
			m.hist[a] = stats.NewHistogram(shards)
		}
		for q := range m.qhist {
			m.qhist[q] = stats.NewHistogram(shards)
		}
	})
}

// begin records the start of one sort request of algorithm a, returning the
// histogram shard and start time for end.
func (m *runtimeMetrics) begin(a SortAlgo, p int) (int, time.Time) {
	m.init(p)
	m.inflight[a].Add(1)
	return int(m.rr.Add(1)), time.Now()
}

// end records the completion of a request started by begin.
func (m *runtimeMetrics) end(a SortAlgo, shard int, t0 time.Time) {
	m.hist[a].ObserveDuration(shard, time.Since(t0))
	m.inflight[a].Add(-1)
}

// beginQ / endQ are begin / end for analytics requests (see analytics.go).
func (m *runtimeMetrics) beginQ(q queryOp, p int) (int, time.Time) {
	m.init(p)
	m.qinflight[q].Add(1)
	return int(m.rr.Add(1)), time.Now()
}

func (m *runtimeMetrics) endQ(q queryOp, shard int, t0 time.Time) {
	m.qhist[q].ObserveDuration(shard, time.Since(t0))
	m.qinflight[q].Add(-1)
}

// Metrics returns the Runtime's metrics registry: the underlying
// scheduler's full metric surface (worker counters, admission, quiescence
// scans, free lists, named groups) plus the Runtime's own per-algorithm
// families — repro_sort_latency_seconds{algo=...} end-to-end latency
// histograms, repro_sorts_total{algo=...} request counters, and
// repro_group_pending_sorts{group=...} in-flight gauges (one quiescence
// group per request, labeled by the algorithm the group ran) — and the
// analytics families mirroring them per query operator:
// repro_query_latency_seconds{op=...}, repro_queries_total{op=...}, and
// repro_group_pending_queries{group=...} (see analytics.go).
//
// The registry is built once per Runtime and reads live state at scrape
// time; expose it with ServeMetrics or any HTTP mux. Runtimes sharing one
// scheduler each build their own registry, so their per-algorithm series
// stay separate while the scheduler families repeat.
func (r *Runtime[T]) Metrics() *Metrics {
	r.m.init(r.s.P())
	r.m.regOnce.Do(func() {
		reg := stats.NewRegistry()
		r.s.RegisterMetrics(reg)
		for a := range sortAlgoNames {
			a := a
			algoLbl := []stats.Label{{Name: "algo", Value: sortAlgoNames[a]}}
			reg.Histogram("repro_sort_latency_seconds",
				"End-to-end latency of Runtime sort requests.",
				algoLbl, r.m.hist[a])
			reg.CounterFunc("repro_sorts_total",
				"Completed Runtime sort requests.",
				algoLbl, func() float64 { return float64(r.m.hist[a].Snapshot().Count) })
			reg.GaugeFunc("repro_group_pending_sorts",
				"Sort requests currently in flight, by the algorithm their quiescence group runs.",
				[]stats.Label{{Name: "group", Value: sortAlgoNames[a]}},
				func() float64 { return float64(r.m.inflight[a].Load()) })
		}
		for q := range queryOpNames {
			q := q
			opLbl := []stats.Label{{Name: "op", Value: queryOpNames[q]}}
			reg.Histogram("repro_query_latency_seconds",
				"End-to-end latency of Runtime analytics requests.",
				opLbl, r.m.qhist[q])
			reg.CounterFunc("repro_queries_total",
				"Completed Runtime analytics requests.",
				opLbl, func() float64 { return float64(r.m.qhist[q].Snapshot().Count) })
			reg.GaugeFunc("repro_group_pending_queries",
				"Analytics requests currently in flight, by the operator their quiescence group runs.",
				[]stats.Label{{Name: "group", Value: queryOpNames[q]}},
				func() float64 { return float64(r.m.qinflight[q].Load()) })
		}
		r.m.reg = reg
	})
	return r.m.reg
}

// NewRuntime starts a scheduler with opts.P workers (default NumCPU) and
// returns a Runtime serving concurrent sorts on it. Release the workers
// with Close.
func NewRuntime[T Ordered](opts Options) *Runtime[T] {
	return &Runtime[T]{s: core.New(opts), owned: true}
}

// NewRuntimeOn returns a Runtime serving concurrent sorts on an existing
// scheduler (which the caller keeps owning: Close on such a Runtime is a
// no-op, shut the scheduler down yourself).
func NewRuntimeOn[T Ordered](s *Scheduler) *Runtime[T] {
	return &Runtime[T]{s: s}
}

// Scheduler returns the underlying shared scheduler.
func (r *Runtime[T]) Scheduler() *Scheduler { return r.s }

// P returns the worker count of the underlying scheduler.
func (r *Runtime[T]) P() int { return r.s.P() }

// Close shuts the underlying scheduler down if the Runtime owns it
// (created by NewRuntime). Outstanding sorts are abandoned; finish or wait
// for them first.
func (r *Runtime[T]) Close() {
	if r.owned {
		r.s.Shutdown()
	}
}

// StartTrace enables execution tracing on the underlying scheduler: every
// worker records task, steal, injection, team-protocol, and park events into
// its own fixed-size ring (see internal/trace). Safe to toggle on a live
// Runtime; with tracing off the instrumentation costs one predicted branch
// per event site.
func (r *Runtime[T]) StartTrace() { r.s.StartTrace() }

// StopTrace disables execution tracing; recorded events stay readable.
func (r *Runtime[T]) StopTrace() { r.s.StopTrace() }

// WriteTrace writes the recorded execution trace as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (r *Runtime[T]) WriteTrace(w io.Writer) error { return r.s.WriteChromeTrace(w) }

// TraceText renders the recorded execution trace as a compact text dump.
func (r *Runtime[T]) TraceText() string { return r.s.TraceDump() }

// StartProfiler launches the worker-state sampling profiler at hz samples
// per second (0 selects the default rate). Observations accumulate in the
// repro_worker_state_samples_total{state=...} metric families.
func (r *Runtime[T]) StartProfiler(hz float64) { r.s.StartProfiler(hz) }

// StopProfiler halts the sampling profiler.
func (r *Runtime[T]) StopProfiler() { r.s.StopProfiler() }

// SortMixedMode sorts data with the paper's mixed-mode parallel Quicksort
// (Algorithm 11) as an independent group on the shared scheduler. It blocks
// until data is sorted; concurrent calls proceed independently.
func (r *Runtime[T]) SortMixedMode(data []T, opt MMOptions) {
	shard, t0 := r.m.begin(AlgoMixedMode, r.s.P())
	qsort.MixedMode(r.s, data, opt)
	r.m.end(AlgoMixedMode, shard, t0)
}

// SortForkJoin sorts data with the task-parallel Quicksort (Algorithm 10)
// as an independent group on the shared scheduler.
func (r *Runtime[T]) SortForkJoin(data []T) {
	shard, t0 := r.m.begin(AlgoForkJoin, r.s.P())
	qsort.ForkJoinCore(r.s, data, qsort.DefaultCutoff)
	r.m.end(AlgoForkJoin, shard, t0)
}

// SortSamplesort sorts data with the mixed-mode parallel samplesort as an
// independent group on the shared scheduler.
func (r *Runtime[T]) SortSamplesort(data []T, opt SSOptions) {
	shard, t0 := r.m.begin(AlgoSamplesort, r.s.P())
	ssort.Sort(r.s, data, opt)
	r.m.end(AlgoSamplesort, shard, t0)
}

// SortMergeMixedMode sorts data with the mixed-mode parallel merge sort as
// an independent group on the shared scheduler.
func (r *Runtime[T]) SortMergeMixedMode(data []T, opt MSOptions) {
	shard, t0 := r.m.begin(AlgoMergeMixedMode, r.s.P())
	msort.Sort(r.s, data, opt)
	r.m.end(AlgoMergeMixedMode, shard, t0)
}

// SortAlgo selects the algorithm of one SortMany request. The zero value is
// the paper's mixed-mode quicksort.
type SortAlgo int

const (
	// AlgoMixedMode is the mixed-mode parallel quicksort (Algorithm 11).
	AlgoMixedMode SortAlgo = iota
	// AlgoForkJoin is the task-parallel quicksort (Algorithm 10).
	AlgoForkJoin
	// AlgoSamplesort is the mixed-mode parallel samplesort.
	AlgoSamplesort
	// AlgoMergeMixedMode is the mixed-mode parallel merge sort.
	AlgoMergeMixedMode
)

// SortRequest is one sort of a SortMany batch: the slice to sort and the
// algorithm to sort it with.
type SortRequest[T Ordered] struct {
	Data []T
	Algo SortAlgo
}

// BatchOptions carries the per-algorithm tunables of a SortMany batch; the
// zero value selects every algorithm's defaults.
type BatchOptions struct {
	MM MMOptions
	SS SSOptions
	MS MSOptions
	// Cutoff is the sequential cutoff of AlgoForkJoin requests (0 selects
	// the default; the mixed-mode algorithms carry theirs in MM/SS/MS).
	Cutoff int
}

// SortMany sorts every request of the batch concurrently on the shared
// scheduler and blocks until all of them are sorted. The whole batch runs
// as ONE quiescence group whose root tasks are submitted with a single
// Group.SpawnBatch — one admission-lock acquisition however many requests
// the batch carries — so a client aggregating many small sort requests
// amortizes the injection cost that per-call Sort* methods pay per request.
// Under admission bounds (Options.MaxPendingPerGroup/MaxInject) the batch
// is throttled like any other group and may block until room frees up.
// Concurrent SortMany calls (and concurrent Sort* calls) proceed
// independently.
func (r *Runtime[T]) SortMany(reqs []SortRequest[T], opt BatchOptions) {
	// Background has a nil Done channel, so the context plumbing below is
	// free: BindContext is a no-op and no watcher goroutine is started.
	r.SortManyCtx(context.Background(), reqs, opt)
}

// SortManyCtx is SortMany under a context: the whole batch runs as one
// cancelable group bound to ctx. If ctx is canceled (or its deadline
// passes) mid-batch, root tasks that have not started are revoked at take
// time without running, tasks already running abandon their remaining
// recursion cooperatively, and SortManyCtx returns ErrCanceled or
// ErrDeadlineExceeded once the group has truly drained. On error the
// request slices are left partially sorted — a canceled batch's data must
// be treated as garbage by the caller. A nil error means every request was
// fully sorted. Abandoned batches still observe their (truncated) latency
// in the runtime metrics.
func (r *Runtime[T]) SortManyCtx(ctx context.Context, reqs []SortRequest[T], opt BatchOptions) error {
	maxTeam := r.s.MaxTeam()
	ts := make([]core.Task, 0, len(reqs))
	var perAlgo [numSortAlgos]uint64
	for _, rq := range reqs {
		var t core.Task
		a := AlgoMixedMode
		switch rq.Algo {
		case AlgoForkJoin:
			t, a = qsort.ForkJoinRoot(rq.Data, opt.Cutoff), AlgoForkJoin
		case AlgoSamplesort:
			t, a = ssort.Root(maxTeam, rq.Data, opt.SS), AlgoSamplesort
		case AlgoMergeMixedMode:
			t, a = msort.Root(rq.Data, opt.MS), AlgoMergeMixedMode
		default:
			t = qsort.MixedModeRoot(maxTeam, rq.Data, opt.MM)
		}
		if t != nil { // nil: nothing to sort (len < 2)
			ts = append(ts, t)
			perAlgo[a]++
		}
	}
	if len(ts) == 0 {
		// Nothing to sort. Still honor an already-dead context, with the
		// same typed errors a non-empty batch would report.
		switch err := ctx.Err(); {
		case err == nil:
			return nil
		case errors.Is(err, context.DeadlineExceeded):
			return ErrDeadlineExceeded
		default:
			return ErrCanceled
		}
	}
	r.m.init(r.s.P())
	for a, n := range perAlgo {
		r.m.inflight[a].Add(int64(n))
	}
	shard, t0 := int(r.m.rr.Add(1)), time.Now()
	g := r.s.NewGroup()
	stop := g.BindContext(ctx)
	defer stop()
	// A failed SpawnBatch (cancellation mid-admission, or shutdown) leaves
	// its admitted prefix in flight; WaitErr still waits for the true drain
	// and reports how the group ended. The spawn error wins only when the
	// drain itself reports nothing (e.g. the prefix drained before a
	// post-admission shutdown was observed).
	serr := g.SpawnBatch(ts)
	err := g.WaitErr()
	if err == nil {
		err = serr
	}
	// Each request of the batch completes (as observed by the caller) when
	// the whole group drains, so the batch duration is every request's
	// end-to-end latency.
	elapsed := time.Since(t0).Seconds()
	for a, n := range perAlgo {
		if n > 0 {
			r.m.hist[a].ObserveN(shard, elapsed, n)
			r.m.inflight[a].Add(-int64(n))
		}
	}
	return err
}
