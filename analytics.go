package repro

import (
	"repro/internal/query"
)

// This file is the Runtime's analytics surface: the team-parallel query
// operators of internal/query served request-per-group exactly like the
// Sort* methods — many goroutines may call them concurrently, each call
// runs as its own quiescence group on the shared scheduler, and every call
// is instrumented into the repro_query_* metric families (see
// Runtime.Metrics).
//
// Team sizes follow query.BestNp over the input length, so small requests
// run as classical single-threaded tasks and large ones as team tasks —
// the mixed-mode regime the paper targets, under analytics request shapes
// instead of sorts.

// JoinRun is one matched key run of a merge join: the key and the index
// ranges holding it on each side (the output pairs are their cross
// product).
type JoinRun[T Ordered] = query.JoinRun[T]

// QueryPlan is a preallocated linear pipeline of analytics operators;
// build with Runtime.NewPlan or NewQueryPlan and run with Runtime.RunPlan.
type QueryPlan[T Ordered] = query.Plan[T]

// QueryResult is the output of one QueryPlan execution.
type QueryResult[T Ordered] = query.Result[T]

// NewQueryPlan returns an empty analytics plan for inputs of up to capN
// elements on teams of up to maxTeam members; minPerThread ≤ 0 selects the
// default. Prefer Runtime.NewPlan, which sizes maxTeam to the scheduler.
func NewQueryPlan[T Ordered](capN, maxTeam, minPerThread int) *QueryPlan[T] {
	return query.NewPlan[T](capN, maxTeam, minPerThread)
}

// bestNp is the team size of one standalone analytics request over n
// elements.
func (r *Runtime[T]) bestNp(n int) int {
	return query.BestNp(n, 0, r.s.MaxTeam())
}

// Filter stably copies the elements of src satisfying pred into dst and
// returns the surviving count. dst must not alias src and must have room
// for every survivor; pred must be pure.
func (r *Runtime[T]) Filter(src, dst []T, pred func(T) bool) int {
	shard, t0 := r.m.beginQ(qopFilter, r.s.P())
	n := 0
	g := r.s.NewGroup()
	g.Run(query.Filter(r.bestNp(len(src)), src, dst, pred, &n))
	r.m.endQ(qopFilter, shard, t0)
	return n
}

// GroupBy reorders src into grouped so that the elements of every key
// bucket are contiguous (stable within buckets) and returns the freshly
// allocated bucket offsets: bucket b occupies grouped[starts[b]:starts[b+1]].
// key must map every element into [0, nb) and be pure; grouped must not
// alias src.
func (r *Runtime[T]) GroupBy(src, grouped []T, nb int, key func(T) int) []int {
	shard, t0 := r.m.beginQ(qopGroupBy, r.s.P())
	starts := make([]int, nb+1)
	g := r.s.NewGroup()
	g.Run(query.GroupBy(r.bestNp(len(src)), src, grouped, nb, key, starts))
	r.m.endQ(qopGroupBy, shard, t0)
	return starts
}

// Aggregate computes, for every bucket b ∈ [0, nb), the fold of lift over
// the elements of src with key(v) = b, returning the freshly allocated
// per-bucket totals. comb must be associative with identity as its unit
// (the monoid is fixed to int64 accumulators; use the generic
// internal-form query.Aggregate via a custom task for other types). key and
// lift must be pure.
func (r *Runtime[T]) Aggregate(src []T, nb int, key func(T) int, identity int64,
	lift func(int64, T) int64, comb func(int64, int64) int64) []int64 {
	shard, t0 := r.m.beginQ(qopAggregate, r.s.P())
	out := make([]int64, nb)
	g := r.s.NewGroup()
	g.Run(query.Aggregate(r.bestNp(len(src)), src, nb, key, identity, lift, comb, out))
	r.m.endQ(qopAggregate, shard, t0)
	return out
}

// TopK writes the k largest elements of src into dst in descending order
// and returns the selected count min(k, len(src)). dst must not alias src.
func (r *Runtime[T]) TopK(src, dst []T, k int) int {
	shard, t0 := r.m.beginQ(qopTopK, r.s.P())
	n := 0
	g := r.s.NewGroup()
	g.Run(query.TopK(r.bestNp(len(src)), src, dst, k, &n))
	r.m.endQ(qopTopK, shard, t0)
	return n
}

// MergeJoin joins the ascending-sorted slices a and b: one JoinRun per key
// present in both sides is written into out, ascending by key, and the run
// count is returned. out must have room for every matched run
// (min(len(a), len(b)) always suffices) and must not alias a or b.
func (r *Runtime[T]) MergeJoin(a, b []T, out []JoinRun[T]) int {
	shard, t0 := r.m.beginQ(qopJoin, r.s.P())
	n := 0
	g := r.s.NewGroup()
	g.Run(query.MergeJoin(r.bestNp(len(a)+len(b)), a, b, out, &n))
	r.m.endQ(qopJoin, shard, t0)
	return n
}

// SortJoin sorts a and b in place with the mixed-mode samplesort (both
// sorts run concurrently in the request's group), then merge-joins them
// into out, returning the matched run count — the staged sort-then-join
// composition as one request.
func (r *Runtime[T]) SortJoin(a, b []T, out []JoinRun[T], opt SSOptions) int {
	shard, t0 := r.m.beginQ(qopJoin, r.s.P())
	g := r.s.NewGroup()
	n := query.SortJoin(g, r.s.MaxTeam(), a, b, out, opt)
	r.m.endQ(qopJoin, shard, t0)
	return n
}

// NewPlan returns an empty analytics plan for inputs of up to capN
// elements, sized to this Runtime's scheduler. Chain stages with the
// builder methods (Filter, GroupBy, Aggregate, TopK), then run with
// RunPlan.
func (r *Runtime[T]) NewPlan(capN int) *QueryPlan[T] {
	return query.NewPlan[T](capN, r.s.MaxTeam(), 0)
}

// RunPlan executes plan over src as one request: each stage runs as one
// team task in the request's quiescence group, with the group's drain as
// the stage boundary. The returned views alias the plan's buffers and stay
// valid until its next run; a given plan must not be executed concurrently.
func (r *Runtime[T]) RunPlan(plan *QueryPlan[T], src []T) QueryResult[T] {
	shard, t0 := r.m.beginQ(qopPlan, r.s.P())
	g := r.s.NewGroup()
	res := plan.Execute(g, src)
	r.m.endQ(qopPlan, shard, t0)
	return res
}
