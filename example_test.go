package repro_test

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro"
)

// ExampleNewScheduler shows the basic lifecycle: create, run, shut down.
func ExampleNewScheduler() {
	s := repro.NewScheduler(repro.Options{P: 4})
	defer s.Shutdown()

	var sum atomic.Int64
	s.Run(repro.Solo(func(ctx *repro.Ctx) {
		for i := 1; i <= 10; i++ {
			i := i
			ctx.Spawn(repro.Solo(func(*repro.Ctx) { sum.Add(int64(i)) }))
		}
	}))
	fmt.Println(sum.Load())
	// Output: 55
}

// ExampleFunc runs a data-parallel team task: four workers execute the same
// task simultaneously with distinct local ids.
func ExampleFunc() {
	s := repro.NewScheduler(repro.Options{P: 4})
	defer s.Shutdown()

	var mask atomic.Int64
	s.Run(repro.Func(4, func(ctx *repro.Ctx) {
		mask.Or(1 << ctx.LocalID()) // each member contributes one bit
		ctx.Barrier()
	}))
	fmt.Printf("%04b\n", mask.Load())
	// Output: 1111
}

// ExampleTaskGroup shows fork/join synchronization over single-threaded
// children (the paper's async/sync of Algorithm 10).
func ExampleTaskGroup() {
	s := repro.NewScheduler(repro.Options{P: 4})
	defer s.Shutdown()

	squares := make([]int, 5)
	s.Run(repro.Solo(func(ctx *repro.Ctx) {
		var g repro.TaskGroup
		for i := range squares {
			i := i
			g.Go(ctx, func(*repro.Ctx) { squares[i] = i * i })
		}
		g.Wait(ctx) // helps execute children instead of blocking
	}))
	fmt.Println(squares)
	// Output: [0 1 4 9 16]
}

// ExampleSortMixedMode sorts with the paper's mixed-mode parallel Quicksort.
func ExampleSortMixedMode() {
	s := repro.NewScheduler(repro.Options{P: 4})
	defer s.Shutdown()

	data := repro.GenerateInput(repro.Staggered, 1_000_000, 7)
	repro.SortMixedMode(s, data, repro.MMOptions{})
	fmt.Println(sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }))
	// Output: true
}

// ExampleNewRuntime serves concurrent sort requests from several client
// goroutines on one shared scheduler: every call runs as its own
// quiescence group, so the clients do not wait on each other's tasks.
func ExampleNewRuntime() {
	rt := repro.NewRuntime[int32](repro.Options{P: 4})
	defer rt.Close()

	const clients = 4
	sorted := make([]bool, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			data := repro.GenerateInputParallel(rt.Scheduler(), repro.Random, 200_000, uint64(c))
			rt.SortMixedMode(data, repro.MMOptions{BlockSize: 512, MinBlocksPerThread: 8})
			sorted[c] = sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] })
		}(c)
	}
	wg.Wait()
	fmt.Println(sorted)
	// Output: [true true true true]
}

// ExampleGroup joins several computations spawned into one group with a
// single Wait, while the scheduler stays free to serve other groups.
func ExampleGroup() {
	s := repro.NewScheduler(repro.Options{P: 4})
	defer s.Shutdown()

	var evens, odds atomic.Int64
	g := s.NewGroup()
	g.Spawn(repro.Solo(func(ctx *repro.Ctx) {
		for i := 0; i <= 10; i += 2 {
			i := i
			ctx.Spawn(repro.Solo(func(*repro.Ctx) { evens.Add(int64(i)) }))
		}
	}))
	g.Spawn(repro.Solo(func(ctx *repro.Ctx) {
		for i := 1; i <= 9; i += 2 {
			i := i
			ctx.Spawn(repro.Solo(func(*repro.Ctx) { odds.Add(int64(i)) }))
		}
	}))
	g.Wait() // joins both spawn trees, and only them
	fmt.Println(evens.Load(), odds.Load())
	// Output: 30 25
}

// ExampleCtx_LocalID computes each team member's slice of a shared array —
// the standard SPMD chunking pattern.
func ExampleCtx_LocalID() {
	s := repro.NewScheduler(repro.Options{P: 4})
	defer s.Shutdown()

	data := make([]int, 16)
	s.Run(repro.Func(4, func(ctx *repro.Ctx) {
		w, lid := ctx.TeamSize(), ctx.LocalID()
		lo, hi := lid*len(data)/w, (lid+1)*len(data)/w
		for i := lo; i < hi; i++ {
			data[i] = lid
		}
	}))
	fmt.Println(data)
	// Output: [0 0 0 0 1 1 1 1 2 2 2 2 3 3 3 3]
}
