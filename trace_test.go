package repro

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestRuntimeTrace exercises the Runtime-level tracing surface: toggling,
// Chrome export through WriteTrace (validated by this repo's own schema
// checker), the text dump, and the sampling profiler delegates.
func TestRuntimeTrace(t *testing.T) {
	rt := NewRuntime[int32](Options{P: 2})
	defer rt.Close()

	rt.StartTrace()
	rt.StartProfiler(997)
	rt.SortMixedMode(GenerateInput(Random, 20000, 1), MMOptions{})
	rt.SortForkJoin(GenerateInput(Random, 20000, 2))
	rt.StopProfiler()
	rt.StopTrace()

	var buf bytes.Buffer
	if err := rt.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	n, err := trace.ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if n < 100 {
		t.Fatalf("trace of two 20k sorts has only %d events", n)
	}
	txt := rt.TraceText()
	for _, want := range []string{"spawn", "inject-enqueue"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("TraceText lacks %q:\n%.2000s", want, txt)
		}
	}
}

// TestDebugTraceEndpoint exercises /debug/trace on the metrics server: 503
// until a trace source is wired, then a short capture returned as Chrome
// JSON (the default) or a text dump (?format=text), and parameter
// validation on the window length.
func TestDebugTraceEndpoint(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr() + "/debug/trace"

	get := func(url string) (int, string) {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, _ := get(base); code != http.StatusServiceUnavailable {
		t.Fatalf("no-source status = %d, want 503", code)
	}

	rt := NewRuntime[int32](Options{P: 2})
	defer rt.Close()
	srv.SetTraceSource(rt.Scheduler())

	if code, _ := get(base + "?sec=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad sec status = %d, want 400", code)
	}

	// Keep the scheduler busy through both capture windows so the traces
	// have content.
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			rt.SortForkJoin(GenerateInput(Random, 4096, uint64(i)))
		}
	}()

	code, body := get(base + "?sec=0.05")
	if code != http.StatusOK {
		t.Fatalf("capture status = %d, want 200\n%s", code, body)
	}
	if _, err := trace.ValidateChrome([]byte(body)); err != nil {
		t.Fatalf("captured trace invalid: %v\n%.2000s", err, body)
	}
	if rt.Scheduler().TraceActive() {
		t.Fatal("one-shot capture left tracing enabled")
	}

	code, body = get(base + "?sec=0.05&format=text")
	if code != http.StatusOK {
		t.Fatalf("text capture status = %d, want 200", code)
	}
	if !strings.Contains(body, "ms") || !strings.Contains(body, "spawn") {
		t.Fatalf("text capture does not look like a dump:\n%.500s", body)
	}
	close(stop)
	<-done
}
