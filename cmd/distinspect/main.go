// Command distinspect prints summary statistics and a coarse histogram of
// the benchmark input distributions, for validating the generator against
// the Helman–Bader–JáJá definitions used by the paper.
//
// Usage:
//
//	distinspect -n 1000000 -dist staggered -p 16
//	distinspect -n 100000000 -dist all -workers 8   # team-parallel generation
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dist/distpar"
)

func main() {
	names := make([]string, len(dist.Kinds))
	for i, k := range dist.Kinds {
		names[i] = k.String()
	}
	var (
		n       = flag.Int("n", 1_000_000, "sample size")
		distStr = flag.String("dist", "random", "distribution: "+strings.Join(names, "|")+"|all")
		p       = flag.Int("p", dist.DefaultP, "block parameter of Buckets/Staggered")
		seed    = flag.Uint64("seed", 42, "seed")
		bins    = flag.Int("bins", 32, "histogram bins")
		workers = flag.Int("workers", 1, "generate on a scheduler team of this many workers (output is bit-identical)")
	)
	flag.Parse()

	kinds := dist.Kinds
	if *distStr != "all" {
		k, err := dist.Parse(*distStr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		kinds = []dist.Kind{k}
	}
	generate := func(k dist.Kind) []int32 { return dist.GenerateP(k, *n, *seed, *p) }
	if *workers > 1 {
		s := core.New(core.Options{P: *workers, Seed: *seed})
		defer s.Shutdown()
		generate = func(k dist.Kind) []int32 { return distpar.GenerateP(s, k, *n, *seed, *p) }
	}
	for _, k := range kinds {
		inspect(k, generate(k), *bins)
	}
}

func inspect(k dist.Kind, vs []int32, bins int) {
	var min, max int32 = math.MaxInt32, math.MinInt32
	var sum float64
	hist := make([]int, bins)
	width := float64(1<<31) / float64(bins)
	for _, v := range vs {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
		sum += float64(v)
		hist[int(float64(v)/width)]++
	}
	mean := sum / float64(len(vs))
	var varsum float64
	for _, v := range vs {
		d := float64(v) - mean
		varsum += d * d
	}
	sd := math.Sqrt(varsum / float64(len(vs)))
	fmt.Printf("%s (%s): n=%d min=%d max=%d mean=%.0f sd=%.0f\n", k, k.Doc(), len(vs), min, max, mean, sd)
	peak := 0
	for _, h := range hist {
		if h > peak {
			peak = h
		}
	}
	for i, h := range hist {
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", h*60/peak)
		}
		fmt.Printf("  [%5.2f,%5.2f)·2³⁰ %9d %s\n",
			float64(i)*width/float64(1<<30), float64(i+1)*width/float64(1<<30), h, bar)
	}
	fmt.Println()
}
