// Command reprolint runs the project's static-analyzer suite (see
// internal/lint) over the module and exits non-zero on any finding. It is
// part of the default gate: make lint / scripts/check.sh run it with the
// committed directive manifest, so both invariant violations and deleted
// invariant annotations fail the build.
//
// Usage:
//
//	reprolint [flags] [./... | import/path ...]
//
//	-run name,name     run only the named analyzers (default: all)
//	-manifest path     directive manifest to verify (default
//	                   internal/lint/reprolint.manifest; "" or "none" skips)
//	-write-manifest    regenerate the manifest from the current tree and exit
//	-list              print the analyzers and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	var (
		runFlag       = flag.String("run", "", "comma-separated analyzer names to run (default: all)")
		manifestFlag  = flag.String("manifest", "internal/lint/reprolint.manifest", "directive manifest to verify, relative to the module root (\"\" or \"none\" to skip)")
		writeManifest = flag.Bool("write-manifest", false, "regenerate the directive manifest and exit")
		listFlag      = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.Analyzers()
	if *runFlag != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runFlag, ",") {
			a := lint.AnalyzerByName(strings.TrimSpace(name))
			if a == nil {
				fatalf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fatalf("%v", err)
	}

	paths, err := targetPaths(loader, flag.Args())
	if err != nil {
		fatalf("%v", err)
	}

	var pkgs []*lint.Package
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatalf("%v", err)
		}
		pkgs = append(pkgs, pkg)
	}

	ix := lint.NewIndex()
	for _, pkg := range pkgs {
		ix.AddPackage(pkg)
	}

	if *writeManifest {
		path := manifestPath(root, *manifestFlag)
		if path == "" {
			fatalf("-write-manifest needs a -manifest path")
		}
		if err := os.WriteFile(path, []byte(lint.ManifestString(ix.Records())), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("wrote %s (%d directives)\n", path, len(ix.Records()))
		return
	}

	diags := ix.Errors()
	diags = append(diags, lint.Run(analyzers, pkgs, ix)...)
	for _, d := range diags {
		fmt.Println(d)
	}

	failed := len(diags) > 0
	if path := manifestPath(root, *manifestFlag); path != "" {
		mismatches, err := lint.CheckManifestScoped(path, ix.Records(), paths)
		if err != nil {
			fatalf("%v", err)
		}
		for _, m := range mismatches {
			fmt.Printf("%s: manifest: %s\n", path, m)
		}
		failed = failed || len(mismatches) > 0
	}
	if failed {
		os.Exit(1)
	}
}

func manifestPath(root, flagVal string) string {
	if flagVal == "" || flagVal == "none" {
		return ""
	}
	if filepath.IsAbs(flagVal) {
		return flagVal
	}
	return filepath.Join(root, filepath.FromSlash(flagVal))
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// targetPaths resolves command-line patterns to module import paths.
// No arguments or "./..." means the whole module.
func targetPaths(loader *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.ModulePackages()
	}
	var paths []string
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			return loader.ModulePackages()
		case strings.HasPrefix(arg, loader.ModulePath):
			paths = append(paths, arg)
		case strings.HasPrefix(arg, "./"):
			rel := filepath.ToSlash(strings.TrimPrefix(arg, "./"))
			if rel == "" || rel == "." {
				paths = append(paths, loader.ModulePath)
			} else {
				paths = append(paths, loader.ModulePath+"/"+rel)
			}
		default:
			return nil, fmt.Errorf("cannot resolve package pattern %q (use ./... or module import paths)", arg)
		}
	}
	return paths, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "reprolint: "+format+"\n", args...)
	os.Exit(2)
}
