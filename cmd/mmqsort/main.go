// Command mmqsort sorts a generated input with a selectable algorithm and
// reports timing — a command-line front end to the repository's sorting
// stack, convenient for one-off comparisons.
//
// Usage:
//
//	mmqsort -n 10000000 -dist staggered -algo mmpar -p 8
//	mmqsort -n 8388607 -algo fork -cutoff 256
//	mmqsort -n 10000000 -algo ssort
//	mmqsort -n 1000000 -algo all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cilk"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dist/distpar"
	"repro/internal/msort"
	"repro/internal/qsort"
	"repro/internal/ssort"
)

func main() {
	names := make([]string, len(dist.Kinds))
	for i, k := range dist.Kinds {
		names[i] = k.String()
	}
	var (
		n       = flag.Int("n", 10_000_000, "number of 4-byte integers to sort")
		distStr = flag.String("dist", "random", "distribution: "+strings.Join(names, "|"))
		algo    = flag.String("algo", "mmpar", "algorithm: seq|seqqs|fork|randfork|cilk|cilksample|mmpar|ssort|msort|all")
		p       = flag.Int("p", 0, "workers (default NumCPU)")
		seed    = flag.Uint64("seed", 42, "input seed")
		reps    = flag.Int("reps", 1, "repetitions")
		cutoff  = flag.Int("cutoff", qsort.DefaultCutoff, "sequential cutoff")
		block   = flag.Int("block", qsort.DefaultBlockSize, "partition block size (mmpar)")
		minBlk  = flag.Int("minblocks", qsort.DefaultMinBlocksPerThread, "min blocks per partitioning thread (mmpar)")
		stats   = flag.Bool("stats", false, "print scheduler statistics")
	)
	flag.Parse()

	kind, err := dist.Parse(*distStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	input := generateInput(kind, *n, *seed, *p)
	buf := make([]int32, *n)

	algos := []string{*algo}
	if *algo == "all" {
		algos = []string{"seq", "seqqs", "fork", "randfork", "cilk", "cilksample", "mmpar", "ssort", "msort"}
	}
	for _, a := range algos {
		var best, total time.Duration
		var schedStats string
		for r := 0; r < *reps; r++ {
			copy(buf, input)
			var el time.Duration
			switch a {
			case "seq":
				start := time.Now()
				qsort.Introsort(buf)
				el = time.Since(start)
			case "seqqs":
				start := time.Now()
				qsort.SequentialQuicksortCutoff(buf, *cutoff)
				el = time.Since(start)
			case "fork":
				s := core.New(core.Options{P: *p, Seed: *seed})
				start := time.Now()
				qsort.ForkJoinCore(s, buf, *cutoff)
				el = time.Since(start)
				if *stats {
					schedStats = s.Stats().String()
				}
				s.Shutdown()
			case "randfork":
				s := classic.New(classic.Options{P: *p, Seed: *seed})
				start := time.Now()
				qsort.ForkJoinClassic(s, buf, *cutoff)
				el = time.Since(start)
				if *stats {
					schedStats = s.Stats().String()
				}
				s.Shutdown()
			case "cilk":
				s := cilk.New(cilk.Options{P: *p, Seed: *seed})
				start := time.Now()
				qsort.ForkJoinCilk(s, buf, *cutoff)
				el = time.Since(start)
				if *stats {
					schedStats = s.Stats().String()
				}
				s.Shutdown()
			case "cilksample":
				s := cilk.New(cilk.Options{P: *p, Seed: *seed})
				start := time.Now()
				qsort.SampleCilk(s, buf, *cutoff)
				el = time.Since(start)
				if *stats {
					schedStats = s.Stats().String()
				}
				s.Shutdown()
			case "mmpar":
				s := core.New(core.Options{P: *p, Seed: *seed})
				opt := qsort.MMOptions{Cutoff: *cutoff, BlockSize: *block, MinBlocksPerThread: *minBlk}
				start := time.Now()
				qsort.MixedMode(s, buf, opt)
				el = time.Since(start)
				if *stats {
					schedStats = s.Stats().String()
				}
				s.Shutdown()
			case "ssort":
				s := core.New(core.Options{P: *p, Seed: *seed})
				// MinPerThread mirrors the mmpar team quota (block · minblocks),
				// as in the harness, so the two mixed-mode algorithms form teams
				// at the same scales under identical flags.
				opt := ssort.Options{Cutoff: *cutoff, MinPerThread: *block * *minBlk}
				start := time.Now()
				ssort.Sort(s, buf, opt)
				el = time.Since(start)
				if *stats {
					schedStats = s.Stats().String()
				}
				s.Shutdown()
			case "msort":
				s := core.New(core.Options{P: *p, Seed: *seed})
				// The merge quota mirrors the other mixed-mode algorithms, as
				// in the harness MSort column.
				opt := msort.Options{Cutoff: *cutoff, MinPerThread: *block * *minBlk}
				start := time.Now()
				msort.Sort(s, buf, opt)
				el = time.Since(start)
				if *stats {
					schedStats = s.Stats().String()
				}
				s.Shutdown()
			default:
				fmt.Fprintf(os.Stderr, "unknown algorithm %q\n", a)
				os.Exit(2)
			}
			if !qsort.IsSorted(buf) {
				fmt.Fprintf(os.Stderr, "%s: OUTPUT NOT SORTED\n", a)
				os.Exit(1)
			}
			total += el
			if best == 0 || el < best {
				best = el
			}
		}
		fmt.Printf("%-11s n=%d dist=%-9s avg=%v best=%v\n",
			a, *n, kind, total/time.Duration(*reps), best)
		if *stats && schedStats != "" {
			fmt.Printf("  stats: %s\n", schedStats)
		}
	}
}

// generateInput fills large inputs with a worker team on a throwaway
// scheduler (bit-identical to sequential generation, so timings are
// comparable across paths), small ones sequentially.
func generateInput(kind dist.Kind, n int, seed uint64, p int) []int32 {
	return distpar.GenerateWithWorkers(p, kind, n, seed)
}
