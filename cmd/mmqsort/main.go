// Command mmqsort sorts a generated input with a selectable algorithm and
// reports timing — a command-line front end to the repository's sorting
// stack, convenient for one-off comparisons.
//
// Usage:
//
//	mmqsort -n 10000000 -dist staggered -algo mmpar -p 8
//	mmqsort -n 8388607 -algo fork -cutoff 256
//	mmqsort -n 10000000 -algo ssort
//	mmqsort -n 1000000 -algo all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cilk"
	"repro/internal/classic"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dist/distpar"
	"repro/internal/harness"
	"repro/internal/msort"
	"repro/internal/qsort"
	"repro/internal/ssort"
)

func main() {
	names := make([]string, len(dist.Kinds))
	for i, k := range dist.Kinds {
		names[i] = k.String()
	}
	var (
		n       = flag.Int("n", 10_000_000, "number of 4-byte integers to sort")
		distStr = flag.String("dist", "random", "distribution: "+strings.Join(names, "|"))
		algo    = flag.String("algo", "mmpar", "algorithm(s), comma-separated: seqstl|seqqs|fork|randfork|cilk|cilksample|mmpar|ssort|msort, or all")
		p       = flag.Int("p", 0, "workers (default NumCPU)")
		seed    = flag.Uint64("seed", 42, "input seed")
		reps    = flag.Int("reps", 1, "repetitions")
		cutoff  = flag.Int("cutoff", qsort.DefaultCutoff, "sequential cutoff")
		block   = flag.Int("block", qsort.DefaultBlockSize, "partition block size (mmpar)")
		minBlk  = flag.Int("minblocks", qsort.DefaultMinBlocksPerThread, "min blocks per partitioning thread (mmpar)")
		stats   = flag.Bool("stats", false, "print scheduler statistics")
	)
	flag.Parse()

	kind, err := dist.Parse(*distStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	algos := harness.AllAlgorithms()
	if !strings.EqualFold(strings.TrimSpace(*algo), "all") {
		if algos, err = harness.ParseAlgorithms(*algo); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	input := generateInput(kind, *n, *seed, *p)
	buf := make([]int32, *n)

	for _, a := range algos {
		var best, total time.Duration
		var schedStats string
		for r := 0; r < *reps; r++ {
			copy(buf, input)
			run, stat := sorter(a, *p, *seed, *cutoff, *block, *minBlk)
			start := time.Now()
			run(buf)
			el := time.Since(start)
			if *stats && stat.read != nil {
				schedStats = stat.read()
			}
			if stat.shutdown != nil {
				stat.shutdown()
			}
			if !qsort.IsSorted(buf) {
				fmt.Fprintf(os.Stderr, "%s: OUTPUT NOT SORTED\n", a.FlagName())
				os.Exit(1)
			}
			total += el
			if best == 0 || el < best {
				best = el
			}
		}
		fmt.Printf("%-11s n=%d dist=%-9s avg=%v best=%v\n",
			a.FlagName(), *n, kind, total/time.Duration(*reps), best)
		if *stats && schedStats != "" {
			fmt.Printf("  stats: %s\n", schedStats)
		}
	}
}

// schedHooks exposes a run's scheduler, when it has one: a statistics
// reader (valid before shutdown) and the shutdown itself.
type schedHooks struct {
	read     func() string
	shutdown func()
}

// sorter builds one repetition's sort function from the shared harness
// algorithm vocabulary, constructing the scheduler the algorithm needs (the
// scheduler lives for one repetition, matching the original per-repetition
// timing behavior).
func sorter(a harness.Algorithm, p int, seed uint64, cutoff, block, minBlk int) (func([]int32), schedHooks) {
	switch a {
	case harness.SeqSTL:
		return func(d []int32) { qsort.Introsort(d) }, schedHooks{}
	case harness.SeqQS:
		return func(d []int32) { qsort.SequentialQuicksortCutoff(d, cutoff) }, schedHooks{}
	case harness.Fork:
		s := core.New(core.Options{P: p, Seed: seed})
		return func(d []int32) { qsort.ForkJoinCore(s, d, cutoff) },
			schedHooks{func() string { return s.Stats().String() }, s.Shutdown}
	case harness.Randfork:
		s := classic.New(classic.Options{P: p, Seed: seed})
		return func(d []int32) { qsort.ForkJoinClassic(s, d, cutoff) },
			schedHooks{func() string { return s.Stats().String() }, s.Shutdown}
	case harness.Cilk:
		s := cilk.New(cilk.Options{P: p, Seed: seed})
		return func(d []int32) { qsort.ForkJoinCilk(s, d, cutoff) },
			schedHooks{func() string { return s.Stats().String() }, s.Shutdown}
	case harness.CilkSample:
		s := cilk.New(cilk.Options{P: p, Seed: seed})
		return func(d []int32) { qsort.SampleCilk(s, d, cutoff) },
			schedHooks{func() string { return s.Stats().String() }, s.Shutdown}
	case harness.MMPar:
		s := core.New(core.Options{P: p, Seed: seed})
		opt := qsort.MMOptions{Cutoff: cutoff, BlockSize: block, MinBlocksPerThread: minBlk}
		return func(d []int32) { qsort.MixedMode(s, d, opt) },
			schedHooks{func() string { return s.Stats().String() }, s.Shutdown}
	case harness.SSort:
		s := core.New(core.Options{P: p, Seed: seed})
		// MinPerThread mirrors the mmpar team quota (block · minblocks), as
		// in the harness, so the two mixed-mode algorithms form teams at the
		// same scales under identical flags.
		opt := ssort.Options{Cutoff: cutoff, MinPerThread: block * minBlk}
		return func(d []int32) { ssort.Sort(s, d, opt) },
			schedHooks{func() string { return s.Stats().String() }, s.Shutdown}
	case harness.MSort:
		s := core.New(core.Options{P: p, Seed: seed})
		// The merge quota mirrors the other mixed-mode algorithms, as in the
		// harness MSort column.
		opt := msort.Options{Cutoff: cutoff, MinPerThread: block * minBlk}
		return func(d []int32) { msort.Sort(s, d, opt) },
			schedHooks{func() string { return s.Stats().String() }, s.Shutdown}
	default:
		fmt.Fprintf(os.Stderr, "unknown algorithm %v\n", a)
		os.Exit(2)
		return nil, schedHooks{}
	}
}

// generateInput fills large inputs with a worker team on a throwaway
// scheduler (bit-identical to sequential generation, so timings are
// comparable across paths), small ones sequentially.
func generateInput(kind dist.Kind, n int, seed uint64, p int) []int32 {
	return distpar.GenerateWithWorkers(p, kind, n, seed)
}
