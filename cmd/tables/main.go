// Command tables regenerates the paper's evaluation tables (Tables 1–10 of
// Wimmer & Träff, SPAA 2011): the Quicksort comparison across distributions,
// sizes and scheduler configurations.
//
// Usage:
//
//	tables -table 1            # one table, CI-friendly sizes
//	tables -all                # all ten tables
//	tables -table 5 -full      # the machine-sized grid (up to 2^27−1)
//	tables -table 1 -sizes 1000000,8388607 -reps 5
//	tables -table 1 -dists sorted,randdup,worstcase
//	tables -table 1 -algos seqstl,ssort    # samplesort rows in isolation
//	tables -table 2 -csv out.csv
//
// Worker counts above the host's CPU count (Tables 5–10 on small hosts) are
// run oversubscribed, mirroring the paper's own T2+ SMT oversubscription.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/harness"
)

func main() {
	var (
		table   = flag.Int("table", 0, "table number 1-10 (0 with -all)")
		all     = flag.Bool("all", false, "regenerate all ten tables")
		full    = flag.Bool("full", false, "use the machine-sized grid (up to 2^27-1) instead of the quick grid")
		reps    = flag.Int("reps", 0, "override repetitions per cell (paper: 10)")
		p       = flag.Int("p", 0, "override worker count")
		sizes   = flag.String("sizes", "", "override input sizes, comma-separated")
		dists   = flag.String("dists", "", "override distributions, comma-separated (any registered kind, e.g. sorted,randdup)")
		algos   = flag.String("algos", "", "override algorithm columns, comma-separated (e.g. seqstl,mmpar,ssort)")
		seed    = flag.Uint64("seed", 42, "input generator seed")
		csvPath = flag.String("csv", "", "also write results as CSV to this file")
		quiet   = flag.Bool("q", false, "suppress per-cell progress output")
	)
	flag.Parse()

	tablesToRun := []int{}
	switch {
	case *all:
		for i := 1; i <= 10; i++ {
			tablesToRun = append(tablesToRun, i)
		}
	case *table >= 1 && *table <= 10:
		tablesToRun = []int{*table}
	default:
		fmt.Fprintln(os.Stderr, "specify -table N (1-10) or -all")
		flag.Usage()
		os.Exit(2)
	}

	var csv strings.Builder
	for _, tbl := range tablesToRun {
		cfg, mode, err := harness.TableConfig(tbl, !*full)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *reps > 0 {
			cfg.Reps = *reps
		}
		if *p > 0 {
			cfg.P = *p
		}
		cfg.Seed = *seed
		if *sizes != "" {
			if cfg.Sizes, err = harness.ParseSizes(*sizes); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		if *dists != "" {
			if cfg.Kinds, err = harness.ParseKinds(*dists); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		if *algos != "" {
			if cfg.Algs, err = harness.ParseAlgorithms(*algos); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		if cfg.P > runtime.NumCPU() {
			fmt.Fprintf(os.Stderr, "note: p=%d exceeds %d CPUs; running oversubscribed (cf. DESIGN.md)\n",
				cfg.P, runtime.NumCPU())
		}
		progress := os.Stderr
		if *quiet {
			progress = nil
		}
		var pw = progressWriter(progress)
		res, err := harness.Run(cfg, pw)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res.Table(mode))
		if *csvPath != "" {
			csv.WriteString(res.CSV())
		}
	}
	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(csv.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func progressWriter(f *os.File) interface{ Write([]byte) (int, error) } {
	if f == nil {
		return discard{}
	}
	return f
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
