// Command stress tortures the team-building scheduler with randomized mixed
// workloads and verifies the execution invariants: every task runs exactly
// once per required thread, local ids are a permutation of 0…r−1, and the
// scheduler quiesces. It is the repository's protocol-correctness fuzzer;
// run it for minutes or hours when touching internal/core.
//
// Usage:
//
//	stress -p 8 -rounds 200 -tasks 500 -seed 1
//	stress -p 6 -randomized          # non-power-of-two p + Refinement 4
//	stress -p 8 -chaos               # fault injection + cancel storm
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/topo"
)

func main() {
	var (
		p          = flag.Int("p", 8, "workers")
		rounds     = flag.Int("rounds", 100, "stress rounds")
		tasks      = flag.Int("tasks", 300, "root tasks per round")
		seed       = flag.Uint64("seed", 1, "prng seed")
		randomized = flag.Bool("randomized", false, "randomized stealing (Refinement 4)")
		noReuse    = flag.Bool("noreuse", false, "disband teams after every task")
		chaosMode  = flag.Bool("chaos", false, "fault injection: stalls, delays, bounded admission, cancel storm")
		verbose    = flag.Bool("v", false, "per-round progress")
	)
	flag.Parse()

	opts := core.Options{
		P: *p, Randomized: *randomized, DisableTeamReuse: *noReuse, Seed: *seed,
	}
	var inj *chaos.Injector
	if *chaosMode {
		inj = chaos.New(chaos.Options{
			Seed:            *seed,
			StallEvery:      256,
			StallDur:        50 * time.Microsecond,
			DelayTakeEvery:  32,
			AdmitDelayEvery: 32,
			DelayDur:        20 * time.Microsecond,
			CancelEvery:     2, // MaybeCancel is rolled once per round per group
		})
		opts.Fault = inj.Fault
		// Tight admission bounds force saturation so the cancel storm finds
		// admitted-but-not-started work to revoke.
		opts.MaxInject = 2 * *p
		opts.MaxPendingPerGroup = *p
	}
	s := core.New(opts)
	defer s.Shutdown()

	if *chaosMode {
		chaosStress(s, inj, *rounds, *tasks, *seed, *verbose)
		return
	}
	rng := dist.NewRNG(*seed)
	maxTeam := s.MaxTeam()

	start := time.Now()
	for round := 0; round < *rounds; round++ {
		var execs, want, badLocal atomic.Int64
		for i := 0; i < *tasks; i++ {
			// Random requirement, biased toward small tasks like real
			// workloads; includes non-power-of-two requirements.
			r := 1
			switch rng.Intn(5) {
			case 0, 1, 2:
				r = 1
			case 3:
				r = 1 << rng.Intn(topo.Log2Floor(maxTeam)+1)
			case 4:
				r = 1 + rng.Intn(maxTeam)
			}
			want.Add(int64(r))
			depth := rng.Intn(3)
			s.Spawn(makeTask(r, depth, maxTeam, &execs, &badLocal, &want, rng.Split()))
		}
		s.Wait()
		if got := execs.Load(); got != want.Load() {
			fmt.Fprintf(os.Stderr, "round %d: executions %d, want %d\n%s\n",
				round, got, want.Load(), s.DumpState())
			os.Exit(1)
		}
		if b := badLocal.Load(); b != 0 {
			fmt.Fprintf(os.Stderr, "round %d: %d bad local-id observations\n", round, b)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("round %d ok: %d executions\n", round, execs.Load())
		}
	}
	st := s.Stats()
	fmt.Printf("OK: %d rounds in %v\n  %s\n", *rounds, time.Since(start).Round(time.Millisecond), st)
}

// makeTask builds a task requiring r threads; the team member with local id
// 0 spawns child tasks down to the given depth. All members validate their
// local id range and count executions. Each task owns a split of the
// parent's RNG stream, so the whole spawn tree is reproducible from -seed
// regardless of scheduling order.
func makeTask(r, depth, maxTeam int, execs, badLocal, want *atomic.Int64, rng *dist.RNG) core.Task {
	return core.Func(r, func(ctx *core.Ctx) {
		execs.Add(1)
		if ctx.LocalID() < 0 || ctx.LocalID() >= ctx.TeamSize() || ctx.TeamSize() != r {
			badLocal.Add(1)
		}
		ctx.Barrier()
		if ctx.LocalID() == 0 && depth > 0 {
			for i := 0; i < 2; i++ {
				cr := 1 + rng.Intn(maxTeam)
				want.Add(int64(cr))
				ctx.Spawn(makeTask(cr, depth-1, maxTeam, execs, badLocal, want, rng.Split()))
			}
		}
	})
}

// chaosStress is the -chaos mode: each round floods several groups with
// mixed-requirement tasks through the bounded, fault-injected scheduler
// while the main goroutine storms cancels at them concurrently. The
// invariants are the robustness tentpole's acceptance criteria, checked
// every round:
//
//   - the scheduler quiesces (Pending() == 0) despite revoked work
//   - groups that were never canceled executed every admitted member
//   - canceled groups report the storm's cause from WaitErr, and their
//     inflight reconciles to zero
//   - globally, injected == taken + revoked once drained
func chaosStress(s *core.Scheduler, inj *chaos.Injector, rounds, tasks int, seed uint64, verbose bool) {
	const groupsPerRound = 4
	maxTeam := s.MaxTeam()
	errStorm := errors.New("stress: chaos storm")
	start := time.Now()
	var canceledTotal, completedTotal, revokedPrev int64

	type gstate struct {
		g     *core.Group
		execs atomic.Int64
		want  atomic.Int64
		done  chan struct{}
	}
	for round := 0; round < rounds; round++ {
		gs := make([]*gstate, groupsPerRound)
		for gi := range gs {
			st := &gstate{g: s.NewGroup(), done: make(chan struct{})}
			gs[gi] = st
			rng := dist.NewRNG(seed ^ uint64(round*groupsPerRound+gi))
			go func() {
				defer close(st.done)
				for i := 0; i < tasks/groupsPerRound; i++ {
					r := 1
					if rng.Intn(4) == 0 {
						r = 1 + rng.Intn(maxTeam)
					}
					st.want.Add(int64(r))
					err := st.g.SpawnRetry(core.Func(r, func(ctx *core.Ctx) {
						st.execs.Add(1)
						spin(2 * time.Microsecond) // keep workers busy so the queue backs up
						ctx.Barrier()
					}))
					if err != nil {
						// Only cancellation (or shutdown) refuses a retried
						// spawn; the task never ran, so take it back.
						st.want.Add(-int64(r))
						return
					}
				}
			}()
		}
		// Storm cancels while the spawners are mid-flood, in several delayed
		// passes: early cancels reject the groups' later spawns, late ones
		// revoke nodes already parked in the backed-up inject queue.
		for pass := 0; pass < 3; pass++ {
			time.Sleep(200 * time.Microsecond)
			for _, st := range gs {
				inj.MaybeCancel(st.g, errStorm)
			}
		}
		for _, st := range gs {
			<-st.done
			err := st.g.WaitErr()
			switch {
			case st.g.Canceled():
				canceledTotal++
				if !errors.Is(err, errStorm) {
					fmt.Fprintf(os.Stderr, "round %d: canceled group WaitErr = %v, want storm cause\n", round, err)
					os.Exit(1)
				}
			default:
				completedTotal++
				if err != nil {
					fmt.Fprintf(os.Stderr, "round %d: live group WaitErr = %v\n", round, err)
					os.Exit(1)
				}
				if got, want := st.execs.Load(), st.want.Load(); got != want {
					fmt.Fprintf(os.Stderr, "round %d: live group executions %d, want %d\n%s\n",
						round, got, want, s.DumpState())
					os.Exit(1)
				}
			}
			if p := st.g.Pending(); p != 0 {
				fmt.Fprintf(os.Stderr, "round %d: group pending = %d after WaitErr\n", round, p)
				os.Exit(1)
			}
		}
		s.Wait()
		if p := s.Pending(); p != 0 {
			fmt.Fprintf(os.Stderr, "round %d: scheduler pending = %d after drain\n%s\n", round, p, s.DumpState())
			os.Exit(1)
		}
		if adm := s.Admission(); adm.Injected != adm.Taken+adm.Revoked {
			fmt.Fprintf(os.Stderr, "round %d: admission does not reconcile: %s\n", round, adm)
			os.Exit(1)
		}
		if verbose {
			adm := s.Admission()
			fmt.Printf("round %d ok: +%d revoked\n", round, adm.Revoked-revokedPrev)
			revokedPrev = adm.Revoked
		}
	}
	adm, ist := s.Admission(), inj.Stats()
	fmt.Printf("OK (chaos): %d rounds in %v\n  groups: %d canceled / %d completed; %s\n"+
		"  faults: stalls=%d take-delays=%d admit-delays=%d cancels=%d\n",
		rounds, time.Since(start).Round(time.Millisecond),
		canceledTotal, completedTotal, adm,
		ist.Injected[core.FaultWorkerLoop], ist.Injected[core.FaultInjectTake],
		ist.Injected[core.FaultAdmit], ist.Cancels)
	if canceledTotal == 0 || adm.Revoked == 0 {
		fmt.Fprintln(os.Stderr, "chaos storm never landed: no cancellations or revocations — weak run")
		os.Exit(1)
	}
}

// spin busy-waits for roughly d without yielding the worker, standing in
// for a small CPU-bound task body.
func spin(d time.Duration) {
	for t0 := time.Now(); time.Since(t0) < d; {
	}
}
