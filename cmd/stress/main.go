// Command stress tortures the team-building scheduler with randomized mixed
// workloads and verifies the execution invariants: every task runs exactly
// once per required thread, local ids are a permutation of 0…r−1, and the
// scheduler quiesces. It is the repository's protocol-correctness fuzzer;
// run it for minutes or hours when touching internal/core.
//
// Usage:
//
//	stress -p 8 -rounds 200 -tasks 500 -seed 1
//	stress -p 6 -randomized          # non-power-of-two p + Refinement 4
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/topo"
)

func main() {
	var (
		p          = flag.Int("p", 8, "workers")
		rounds     = flag.Int("rounds", 100, "stress rounds")
		tasks      = flag.Int("tasks", 300, "root tasks per round")
		seed       = flag.Uint64("seed", 1, "prng seed")
		randomized = flag.Bool("randomized", false, "randomized stealing (Refinement 4)")
		noReuse    = flag.Bool("noreuse", false, "disband teams after every task")
		verbose    = flag.Bool("v", false, "per-round progress")
	)
	flag.Parse()

	s := core.New(core.Options{
		P: *p, Randomized: *randomized, DisableTeamReuse: *noReuse, Seed: *seed,
	})
	defer s.Shutdown()
	rng := dist.NewRNG(*seed)
	maxTeam := s.MaxTeam()

	start := time.Now()
	for round := 0; round < *rounds; round++ {
		var execs, want, badLocal atomic.Int64
		for i := 0; i < *tasks; i++ {
			// Random requirement, biased toward small tasks like real
			// workloads; includes non-power-of-two requirements.
			r := 1
			switch rng.Intn(5) {
			case 0, 1, 2:
				r = 1
			case 3:
				r = 1 << rng.Intn(topo.Log2Floor(maxTeam)+1)
			case 4:
				r = 1 + rng.Intn(maxTeam)
			}
			want.Add(int64(r))
			depth := rng.Intn(3)
			s.Spawn(makeTask(r, depth, maxTeam, &execs, &badLocal, &want, rng.Split()))
		}
		s.Wait()
		if got := execs.Load(); got != want.Load() {
			fmt.Fprintf(os.Stderr, "round %d: executions %d, want %d\n%s\n",
				round, got, want.Load(), s.DumpState())
			os.Exit(1)
		}
		if b := badLocal.Load(); b != 0 {
			fmt.Fprintf(os.Stderr, "round %d: %d bad local-id observations\n", round, b)
			os.Exit(1)
		}
		if *verbose {
			fmt.Printf("round %d ok: %d executions\n", round, execs.Load())
		}
	}
	st := s.Stats()
	fmt.Printf("OK: %d rounds in %v\n  %s\n", *rounds, time.Since(start).Round(time.Millisecond), st)
}

// makeTask builds a task requiring r threads; the team member with local id
// 0 spawns child tasks down to the given depth. All members validate their
// local id range and count executions. Each task owns a split of the
// parent's RNG stream, so the whole spawn tree is reproducible from -seed
// regardless of scheduling order.
func makeTask(r, depth, maxTeam int, execs, badLocal, want *atomic.Int64, rng *dist.RNG) core.Task {
	return core.Func(r, func(ctx *core.Ctx) {
		execs.Add(1)
		if ctx.LocalID() < 0 || ctx.LocalID() >= ctx.TeamSize() || ctx.TeamSize() != r {
			badLocal.Add(1)
		}
		ctx.Barrier()
		if ctx.LocalID() == 0 && depth > 0 {
			for i := 0; i < 2; i++ {
				cr := 1 + rng.Intn(maxTeam)
				want.Add(int64(cr))
				ctx.Spawn(makeTask(cr, depth-1, maxTeam, execs, badLocal, want, rng.Split()))
			}
		}
	})
}
