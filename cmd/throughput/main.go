// Command throughput measures multi-client sorting throughput on ONE
// shared scheduler: C client goroutines issue sort requests drawn from a
// size × distribution × algorithm mix against a single repro.Runtime, and
// the per-group quiescence of the scheduler lets all requests proceed
// concurrently. It reports requests/second, latency percentiles
// (internal/stats.Sample) and the scheduler's admission-control counters
// (queue depth, rejects, blocked spawns) as JSON on stdout — the
// BENCH_throughput.json trajectory emitted by scripts/bench.sh — plus a
// human summary on stderr.
//
// Admission control: -max-pending and -max-inject configure the scheduler's
// inject bounds (repro.Options.MaxPendingPerGroup / MaxInject), so the
// harness can demonstrate backpressure: with clients ≫ p and a bound
// configured, peak pending injected tasks never exceed the bound.
//
// Sweep mode: -sweep runs the same request mix at several client counts
// (each on a fresh scheduler, so counters are per-point), records one
// measurement per count, and reports the saturation knee — the first
// client count whose throughput gain over the previous point falls below
// 10%.
//
// Batch mode: -batch n submits n requests per call through the batched
// Runtime.SortMany (one admission-lock acquisition per batch) instead of
// one Sort* call per request; latency samples are then per batch.
//
// Analytics mode: -mix analytics replaces the sort requests with the
// Runtime's analytics operators (filter, groupby, aggregate, topk, join,
// plan — see internal/query) drawn uniformly over the size × distribution
// grid. Requests read the shared pre-generated inputs in place (the
// operators never mutate their sources), every result is verified against
// an expected value precomputed at generation time, and the per-operator
// latency breakdown replaces the per-algorithm one in the report.
//
// Observability: -trace-out f records an execution trace of the last
// measurement point and writes it as Chrome trace-event JSON to f (load in
// Perfetto or chrome://tracing; scripts/tracecheck validates it).
// -profile-hz r runs the worker-state sampling profiler during every point,
// surfacing the running/stealing/parked breakdown through the
// repro_worker_state_samples_total metric families. With -metrics-addr set,
// /debug/trace captures a bounded trace window of the current point on
// demand.
//
// Usage:
//
//	throughput -clients 8 -duration 3s
//	throughput -clients 16 -sizes 65536,1048576 -dists random,staggered -algos mmpar,ssort
//	throughput -clients 64 -max-inject 16 -max-pending 2
//	throughput -sweep 1,2,4,8,16,32 -duration 1s
//	throughput -batch 8 -algos mmpar,ssort
//	throughput -clients 4 -duration 1s -trace-out trace.json -profile-hz 199
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/dist/distpar"
	"repro/internal/harness"
	"repro/internal/qsort"
	"repro/internal/stats"
)

// request is one cell of the workload mix.
type request struct {
	size int
	kind dist.Kind
	alg  harness.Algorithm
	in   []int32 // pre-generated input, copied per request
}

// clientResult is one client's recorded latencies, per request label
// (algorithm column in the sort mix, operator name in the analytics mix)
// and overall.
type clientResult struct {
	overall   stats.Sample
	perAlgo   map[string]*stats.Sample
	requests  int64
	failures  int64
	abandoned int64 // abandon-mix batch requests given up on (deadline/cancel)
}

// runConfig is everything one measurement point needs besides its client
// count.
type runConfig struct {
	p          int
	seed       uint64
	batch      int
	maxPending int
	maxInject  int
	mix        harness.Mix
	labels     []string // report order of the per-label latency breakdown
	reqs       []request
	cells      []aCell       // analytics-mix workload cells (mix == MixAnalytics)
	abandonAft time.Duration // batch-client context deadline (mix == MixAbandon)
	maxSize    int
	profileHz  float64
	mmOpt      repro.MMOptions
	ssOpt      repro.SSOptions
	msOpt      repro.MSOptions
}

func main() {
	var (
		p          = flag.Int("p", 0, "workers of the shared scheduler (default NumCPU)")
		clients    = flag.Int("clients", 8, "concurrent client goroutines")
		duration   = flag.Duration("duration", 3*time.Second, "measurement duration (per sweep point)")
		sizesStr   = flag.String("sizes", "65536,262144,1048576", "request sizes (elements), comma-separated")
		distsStr   = flag.String("dists", "random,gauss,staggered", "input distributions, comma-separated")
		algosStr   = flag.String("algos", "mmpar,fork,ssort,msort", "algorithms, comma-separated (seqstl|fork|mmpar|ssort|msort)")
		seed       = flag.Uint64("seed", 42, "input generator seed")
		cutoff     = flag.Int("cutoff", qsort.DefaultCutoff, "sequential cutoff")
		block      = flag.Int("block", qsort.DefaultBlockSize, "partition block size (mmpar; also sets the team quota)")
		minBlk     = flag.Int("minblocks", qsort.DefaultMinBlocksPerThread, "min blocks per partitioning thread")
		maxPending = flag.Int("max-pending", 0, "admission bound per group (Options.MaxPendingPerGroup; 0 = unbounded)")
		maxInject  = flag.Int("max-inject", 0, "admission bound across all groups (Options.MaxInject; 0 = unbounded)")
		batch      = flag.Int("batch", 1, "requests per submission (>1 uses the batched Runtime.SortMany)")
		sweepStr   = flag.String("sweep", "", "comma-separated client counts; runs one measurement per count and reports the saturation knee")
		mAddr      = flag.String("metrics-addr", "", "serve Prometheus-style /metrics on this address during the run (e.g. 127.0.0.1:9090; empty = off)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace-event JSON of the last measurement point to this file (empty = off)")
		profileHz  = flag.Float64("profile-hz", 0, "sample worker states at this rate during each point (0 = off)")
		mixStr     = flag.String("mix", "sort", "request mix: sort (Sort* requests) | analytics (filter/groupby/aggregate/topk/join/plan requests) | abandon (interactive sorts + deadline-abandoned batches)")
		abandonAft = flag.Duration("abandon-after", 4*time.Millisecond, "batch-client context deadline in the abandon mix")
	)
	flag.Parse()

	sizes, err := harness.ParseSizes(*sizesStr)
	if err != nil {
		fatal(err)
	}
	kinds, err := harness.ParseKinds(*distsStr)
	if err != nil {
		fatal(err)
	}
	mix, err := harness.ParseMix(*mixStr)
	if err != nil {
		fatal(err)
	}
	algos, err := harness.ParseSchedulerAlgorithms(*algosStr)
	if err != nil {
		fatal(err)
	}
	if *batch < 1 {
		fatal(fmt.Errorf("-batch must be ≥ 1"))
	}
	if mix == harness.MixAnalytics && *batch > 1 {
		fatal(fmt.Errorf("-batch > 1 applies to the sort mix only (analytics requests are unbatched)"))
	}
	if *batch > 1 {
		for _, a := range algos {
			if a == harness.SeqSTL {
				fatal(fmt.Errorf("-batch > 1 cannot include seqstl (SortMany runs on the scheduler)"))
			}
		}
	}
	points := []int{*clients}
	if *sweepStr != "" {
		if points, err = harness.ParseSizes(*sweepStr); err != nil { // positive ints, same syntax
			fatal(fmt.Errorf("bad -sweep: %w", err))
		}
	}

	cfg := runConfig{
		p:          *p,
		seed:       *seed,
		batch:      *batch,
		maxPending: *maxPending,
		maxInject:  *maxInject,
		mix:        mix,
		abandonAft: *abandonAft,
		profileHz:  *profileHz,
		mmOpt:      repro.MMOptions{Cutoff: *cutoff, BlockSize: *block, MinBlocksPerThread: *minBlk},
		ssOpt:      repro.SSOptions{Cutoff: *cutoff, MinPerThread: *block * *minBlk},
		msOpt:      repro.MSOptions{Cutoff: *cutoff, MinPerThread: *block * *minBlk},
	}

	// Pre-generate every (distribution, size) input once, team-parallel on a
	// short-lived scheduler; sort requests copy from this pool (and analytics
	// requests read it in place), so generation cost never pollutes the
	// latencies. The analytics cells also precompute every operator's
	// expected result here, making in-loop verification a cheap comparison.
	// Each measurement point then runs on a fresh scheduler of its own, so
	// the admission counters are per-point.
	gen := repro.NewScheduler(repro.Options{P: *p, Seed: *seed})
	for _, k := range kinds {
		for _, n := range sizes {
			in := distpar.Generate(gen, k, n, *seed+uint64(n))
			if mix == harness.MixAnalytics {
				cfg.cells = append(cfg.cells, newACell(k, n, in))
			} else {
				for _, a := range algos {
					cfg.reqs = append(cfg.reqs, request{size: n, kind: k, alg: a, in: in})
				}
			}
			if n > cfg.maxSize {
				cfg.maxSize = n
			}
		}
	}
	gen.Shutdown()
	switch mix {
	case harness.MixAnalytics:
		cfg.labels = aOps
	case harness.MixAbandon:
		cfg.labels = []string{"interactive", "batch"}
	default:
		cfg.labels = harness.AlgoNames(algos)
	}

	// The metrics endpoint outlives the per-point runtimes: each point swaps
	// its fresh Runtime's registry into the long-lived server, so a scraper
	// watches the whole run (and sweep) through one address.
	var msrv *repro.MetricsServer
	if *mAddr != "" {
		if msrv, err = repro.ServeMetrics(*mAddr, nil); err != nil {
			fatal(err)
		}
		defer msrv.Close()
		fmt.Fprintf(os.Stderr, "throughput: metrics listening on %s\n", msrv.Addr())
	}

	var pts []pointJSON
	for i, c := range points {
		tOut := ""
		if *traceOut != "" && i == len(points)-1 {
			tOut = *traceOut // trace the last (usually most loaded) point
		}
		pts = append(pts, runPoint(cfg, i, c, *duration, msrv, tOut))
	}
	last := pts[len(pts)-1]

	rep := report{
		Config: configJSON{
			P: last.P,
			// In sweep mode the top-level metrics are the last point's, so
			// the config reports that point's client count (per-point counts
			// are in the sweep array).
			Clients:            last.Clients,
			Mix:                mix.String(),
			Sizes:              sizes,
			Dists:              harness.KindNames(kinds),
			Algos:              cfg.labels,
			Seed:               *seed,
			Batch:              *batch,
			MaxPendingPerGroup: *maxPending,
			MaxInject:          *maxInject,
			GOMAXPROCS:         runtime.GOMAXPROCS(0),
		},
		ElapsedSeconds: last.ElapsedSeconds,
		Requests:       last.Requests,
		Failures:       last.Failures,
		RequestsPerSec: last.RequestsPerSec,
		PeakInflight:   last.PeakInflight,
		Abandoned:      last.Abandoned,
		Latency:        last.Latency,
		Admission:      last.Admission,
		PerAlgorithm:   last.PerAlgorithm,
		Metrics:        last.Metrics,
	}
	if len(pts) > 1 {
		rep.Sweep = pts
		rep.KneeClients = knee(pts)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}

	var failures, requests int64
	for _, pt := range pts {
		fmt.Fprintf(os.Stderr,
			"throughput: p=%d clients=%d elapsed=%.2fs requests=%d (%.1f req/s) p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms admission[%s]\n",
			pt.P, pt.Clients, pt.ElapsedSeconds, pt.Requests, pt.RequestsPerSec,
			pt.Latency.P50*1e3, pt.Latency.P90*1e3, pt.Latency.P99*1e3, pt.Latency.Max*1e3,
			admissionLine(pt.Admission))
		failures += pt.Failures
		requests += pt.Requests
	}
	if rep.KneeClients > 0 {
		fmt.Fprintf(os.Stderr, "throughput: saturation knee at %d clients\n", rep.KneeClients)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "throughput: %d OUTPUTS FAILED VERIFICATION\n", failures)
		os.Exit(1)
	}
	if requests == 0 {
		fmt.Fprintln(os.Stderr, "throughput: no requests completed (duration too short?)")
		os.Exit(1)
	}
}

// runPoint runs the request mix with the given client count on a fresh
// runtime and aggregates one measurement point.
func runPoint(cfg runConfig, point, clients int, duration time.Duration,
	msrv *repro.MetricsServer, traceOut string) pointJSON {
	rt := repro.NewRuntime[int32](repro.Options{
		P:                  cfg.p,
		Seed:               cfg.seed,
		MaxPendingPerGroup: cfg.maxPending,
		MaxInject:          cfg.maxInject,
	})
	defer rt.Close()
	if msrv != nil {
		msrv.SetRegistry(rt.Metrics())
		msrv.SetTraceSource(rt.Scheduler())
	}
	if cfg.profileHz > 0 {
		rt.StartProfiler(cfg.profileHz)
		defer rt.StopProfiler()
	}
	if traceOut != "" {
		rt.StartTrace()
	}
	batchOpt := repro.BatchOptions{MM: cfg.mmOpt, SS: cfg.ssOpt, MS: cfg.msOpt}

	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	results := make([]clientResult, clients)
	var inflightPeak, inflightNow atomic.Int64
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			res.perAlgo = map[string]*stats.Sample{}
			rng := dist.NewRNG(cfg.seed).Split() // per-client request stream
			// Disjoint skip regions per (sweep point, client): clients get
			// 2^48-wide lanes, so up to 2^16 clients per point never collide.
			rng.Skip(uint64(point)<<48 | uint64(c)<<32)
			if cfg.mix == harness.MixAnalytics {
				analyticsClient(cfg, rt, rng, deadline, res, &inflightNow, &inflightPeak)
				return
			}
			if cfg.mix == harness.MixAbandon {
				abandonClient(cfg, rt, rng, c, deadline, res, &inflightNow, &inflightPeak)
				return
			}
			// Per-client scratch, reused every iteration: allocations inside
			// the timed loop would perturb the tail latencies being measured.
			bufs := make([][]int32, cfg.batch)
			for i := range bufs {
				bufs[i] = make([]int32, cfg.maxSize)
			}
			picked := make([]request, cfg.batch)
			batch := make([]repro.SortRequest[int32], cfg.batch)
			for time.Now().Before(deadline) {
				for i := range batch {
					req := cfg.reqs[rng.Intn(len(cfg.reqs))]
					d := bufs[i][:req.size]
					copy(d, req.in)
					picked[i] = req
					batch[i] = repro.SortRequest[int32]{Data: d, Algo: batchAlgo(req.alg)}
				}
				cur := inflightNow.Add(int64(cfg.batch))
				for {
					p := inflightPeak.Load()
					if cur <= p || inflightPeak.CompareAndSwap(p, cur) {
						break
					}
				}
				t0 := time.Now()
				if cfg.batch == 1 {
					sortWith(rt, picked[0].alg, batch[0].Data, cfg.mmOpt, cfg.ssOpt, cfg.msOpt)
				} else {
					rt.SortMany(batch, batchOpt)
				}
				el := time.Since(t0)
				inflightNow.Add(-int64(cfg.batch))
				res.overall.AddDuration(el) // per submission: a whole batch is one sample
				for _, req := range picked {
					s := res.perAlgo[req.alg.String()]
					if s == nil {
						s = &stats.Sample{}
						res.perAlgo[req.alg.String()] = s
					}
					s.AddDuration(el)
					res.requests++
				}
				for i, req := range picked {
					if !qsort.IsSorted(bufs[i][:req.size]) {
						res.failures++
					}
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if traceOut != "" {
		rt.StopTrace()
		if err := writeTraceFile(rt, traceOut); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "throughput: wrote Chrome trace to %s (%d events dropped to ring overflow)\n",
			traceOut, rt.Scheduler().TraceDropped())
	}

	// Fold the per-client samples.
	var overall stats.Sample
	perAlgo := map[string]*stats.Sample{}
	var requests, failures, abandoned int64
	for i := range results {
		res := &results[i]
		overall.Merge(&res.overall)
		for a, s := range res.perAlgo {
			t := perAlgo[a]
			if t == nil {
				t = &stats.Sample{}
				perAlgo[a] = t
			}
			t.Merge(s)
		}
		requests += res.requests
		failures += res.failures
		abandoned += res.abandoned
	}

	adm := rt.Scheduler().Admission()
	pt := pointJSON{
		P:              rt.P(),
		Clients:        clients,
		ElapsedSeconds: elapsed.Seconds(),
		Requests:       requests,
		Failures:       failures,
		RequestsPerSec: float64(requests) / elapsed.Seconds(),
		PeakInflight:   inflightPeak.Load(),
		Abandoned:      abandoned,
		Latency:        latencyOf(&overall),
		Admission: admissionJSON{
			Injected:      adm.Injected,
			Taken:         adm.Taken,
			Revoked:       adm.Revoked,
			Pending:       adm.Pending,
			Rejected:      adm.Rejected,
			BlockedSpawns: adm.BlockedSpawns,
			Canceled:      adm.Canceled,
			SpawnTimeouts: adm.SpawnTimeouts,
			PeakPending:   adm.PeakPending,
		},
	}
	for _, lbl := range cfg.labels {
		if s := perAlgo[lbl]; s != nil {
			pt.PerAlgorithm = append(pt.PerAlgorithm, algoReport{
				Algorithm: lbl,
				Requests:  int64(s.N()),
				Latency:   latencyOf(s),
			})
		}
	}
	// Flattened registry dump (captured before rt.Close tears the runtime
	// down): scheduler counters, admission, per-group gauges, and the
	// per-algorithm latency histogram summaries.
	pt.Metrics = rt.Metrics().Values()
	return pt
}

// writeTraceFile dumps the runtime's recorded execution trace to path.
func writeTraceFile(rt *repro.Runtime[int32], path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rt.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// knee returns the clients value of the first sweep point whose throughput
// gain over the previous point falls below 10% (including regressions) —
// the saturation knee of the clients × p sweep — or 0 if throughput keeps
// scaling through the last point.
func knee(pts []pointJSON) int {
	for i := 1; i < len(pts); i++ {
		if pts[i].RequestsPerSec < pts[i-1].RequestsPerSec*1.10 {
			return pts[i].Clients
		}
	}
	return 0
}

// sortWith dispatches one unbatched request on the shared runtime.
func sortWith(rt *repro.Runtime[int32], alg harness.Algorithm, d []int32,
	mm repro.MMOptions, ss repro.SSOptions, ms repro.MSOptions) {
	switch alg {
	case harness.SeqSTL:
		repro.SortSequential(d)
	case harness.Fork:
		rt.SortForkJoin(d)
	case harness.MMPar:
		rt.SortMixedMode(d, mm)
	case harness.SSort:
		rt.SortSamplesort(d, ss)
	case harness.MSort:
		rt.SortMergeMixedMode(d, ms)
	}
}

// batchAlgo maps a harness column to the SortMany request algorithm.
func batchAlgo(a harness.Algorithm) repro.SortAlgo {
	switch a {
	case harness.Fork:
		return repro.AlgoForkJoin
	case harness.SSort:
		return repro.AlgoSamplesort
	case harness.MSort:
		return repro.AlgoMergeMixedMode
	default:
		return repro.AlgoMixedMode
	}
}

type configJSON struct {
	P                  int      `json:"p"`
	Clients            int      `json:"clients"`
	Mix                string   `json:"mix"`
	Sizes              []int    `json:"sizes"`
	Dists              []string `json:"dists"`
	Algos              []string `json:"algos"`
	Seed               uint64   `json:"seed"`
	Batch              int      `json:"batch"`
	MaxPendingPerGroup int      `json:"max_pending_per_group"`
	MaxInject          int      `json:"max_inject"`
	GOMAXPROCS         int      `json:"gomaxprocs"`
}

type latencyJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean_seconds"`
	P50  float64 `json:"p50_seconds"`
	P90  float64 `json:"p90_seconds"`
	P99  float64 `json:"p99_seconds"`
	Max  float64 `json:"max_seconds"`
}

type admissionJSON struct {
	Injected      int64 `json:"injected"`
	Taken         int64 `json:"taken"`
	Revoked       int64 `json:"revoked"`
	Pending       int64 `json:"pending"`
	Rejected      int64 `json:"rejected"`
	BlockedSpawns int64 `json:"blocked_spawns"`
	Canceled      int64 `json:"canceled"`
	SpawnTimeouts int64 `json:"spawn_timeouts"`
	PeakPending   int64 `json:"peak_pending"`
}

type algoReport struct {
	Algorithm string      `json:"algorithm"`
	Requests  int64       `json:"requests"`
	Latency   latencyJSON `json:"latency"`
}

// pointJSON is one measurement: the whole run in single mode, one client
// count in sweep mode.
type pointJSON struct {
	P              int           `json:"p"`
	Clients        int           `json:"clients"`
	ElapsedSeconds float64       `json:"elapsed_seconds"`
	Requests       int64         `json:"requests"`
	Failures       int64         `json:"failures"`
	RequestsPerSec float64       `json:"requests_per_second"`
	PeakInflight   int64         `json:"peak_inflight_requests"`
	Abandoned      int64         `json:"abandoned_requests,omitempty"`
	Latency        latencyJSON   `json:"latency"`
	Admission      admissionJSON `json:"admission"`
	PerAlgorithm   []algoReport  `json:"per_algorithm,omitempty"`
	// Metrics is the point's flattened metrics-registry dump
	// (Registry.Values): one entry per series, histograms summarized as
	// _count/_sum/p50/p90/p99.
	Metrics map[string]float64 `json:"scheduler_metrics,omitempty"`
}

type report struct {
	Config         configJSON         `json:"config"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Requests       int64              `json:"requests"`
	Failures       int64              `json:"failures"`
	RequestsPerSec float64            `json:"requests_per_second"`
	PeakInflight   int64              `json:"peak_inflight_requests"`
	Abandoned      int64              `json:"abandoned_requests,omitempty"`
	Latency        latencyJSON        `json:"latency"`
	Admission      admissionJSON      `json:"admission"`
	PerAlgorithm   []algoReport       `json:"per_algorithm"`
	Metrics        map[string]float64 `json:"scheduler_metrics,omitempty"`
	Sweep          []pointJSON        `json:"sweep,omitempty"`
	KneeClients    int                `json:"saturation_knee_clients,omitempty"`
}

func latencyOf(s *stats.Sample) latencyJSON {
	return latencyJSON{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  s.Percentile(50),
		P90:  s.Percentile(90),
		P99:  s.Percentile(99),
		Max:  s.Max(),
	}
}

func admissionLine(a admissionJSON) string {
	return fmt.Sprintf("injected=%d revoked=%d rejected=%d blocked=%d canceled=%d peak_pending=%d",
		a.Injected, a.Revoked, a.Rejected, a.BlockedSpawns, a.Canceled, a.PeakPending)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
