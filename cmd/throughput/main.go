// Command throughput measures multi-client sorting throughput on ONE
// shared scheduler: C client goroutines issue sort requests drawn from a
// size × distribution × algorithm mix against a single repro.Runtime, and
// the per-group quiescence of the scheduler lets all requests proceed
// concurrently. It reports requests/second and latency percentiles
// (internal/stats.Sample) as JSON on stdout — the BENCH_throughput.json
// trajectory emitted by scripts/bench.sh — plus a human summary on stderr.
//
// Usage:
//
//	throughput -clients 8 -duration 3s
//	throughput -clients 16 -sizes 65536,1048576 -dists random,staggered -algos mmpar,ssort
//	throughput -p 8 -duration 1s -algos mmpar -sizes 4194304
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/dist/distpar"
	"repro/internal/harness"
	"repro/internal/qsort"
	"repro/internal/stats"
)

// request is one cell of the workload mix.
type request struct {
	size int
	kind dist.Kind
	alg  harness.Algorithm
	in   []int32 // pre-generated input, copied per request
}

// clientResult is one client's recorded latencies, per algorithm and
// overall.
type clientResult struct {
	overall  stats.Sample
	perAlgo  map[harness.Algorithm]*stats.Sample
	requests int64
	failures int64
}

func main() {
	var (
		p        = flag.Int("p", 0, "workers of the shared scheduler (default NumCPU)")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		duration = flag.Duration("duration", 3*time.Second, "measurement duration")
		sizesStr = flag.String("sizes", "65536,262144,1048576", "request sizes (elements), comma-separated")
		distsStr = flag.String("dists", "random,gauss,staggered", "input distributions, comma-separated")
		algosStr = flag.String("algos", "mmpar,fork,ssort,msort", "algorithms, comma-separated (seqstl|fork|mmpar|ssort|msort)")
		seed     = flag.Uint64("seed", 42, "input generator seed")
		cutoff   = flag.Int("cutoff", qsort.DefaultCutoff, "sequential cutoff")
		block    = flag.Int("block", qsort.DefaultBlockSize, "partition block size (mmpar; also sets the team quota)")
		minBlk   = flag.Int("minblocks", qsort.DefaultMinBlocksPerThread, "min blocks per partitioning thread")
	)
	flag.Parse()

	sizes, err := parseSizes(*sizesStr)
	if err != nil {
		fatal(err)
	}
	kinds, err := parseDists(*distsStr)
	if err != nil {
		fatal(err)
	}
	algos, err := parseAlgos(*algosStr)
	if err != nil {
		fatal(err)
	}

	rt := repro.NewRuntime[int32](repro.Options{P: *p, Seed: *seed})
	defer rt.Close()

	// Tunables mirror the harness columns: one team quota (block·minblocks)
	// across all three mixed-mode algorithms.
	mmOpt := repro.MMOptions{Cutoff: *cutoff, BlockSize: *block, MinBlocksPerThread: *minBlk}
	ssOpt := repro.SSOptions{Cutoff: *cutoff, MinPerThread: *block * *minBlk}
	msOpt := repro.MSOptions{Cutoff: *cutoff, MinPerThread: *block * *minBlk}

	// Pre-generate every (distribution, size) input once, team-parallel on
	// the shared scheduler; requests copy from this pool so generation cost
	// never pollutes the latencies.
	var reqs []request
	for _, k := range kinds {
		for _, n := range sizes {
			in := distpar.Generate(rt.Scheduler(), k, n, *seed+uint64(n))
			for _, a := range algos {
				reqs = append(reqs, request{size: n, kind: k, alg: a, in: in})
			}
		}
	}

	maxSize := 0
	for _, n := range sizes {
		if n > maxSize {
			maxSize = n
		}
	}

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	results := make([]clientResult, *clients)
	var inflightPeak atomic.Int64
	var inflightNow atomic.Int64
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			res := &results[c]
			res.perAlgo = map[harness.Algorithm]*stats.Sample{}
			rng := dist.NewRNG(*seed).Split() // per-client request stream
			rng.Skip(uint64(c) << 32)
			buf := make([]int32, maxSize)
			for time.Now().Before(deadline) {
				req := reqs[rng.Intn(len(reqs))]
				d := buf[:req.size]
				copy(d, req.in)
				cur := inflightNow.Add(1)
				for {
					p := inflightPeak.Load()
					if cur <= p || inflightPeak.CompareAndSwap(p, cur) {
						break
					}
				}
				t0 := time.Now()
				sortWith(rt, req.alg, d, mmOpt, ssOpt, msOpt)
				el := time.Since(t0)
				inflightNow.Add(-1)
				res.overall.AddDuration(el)
				s := res.perAlgo[req.alg]
				if s == nil {
					s = &stats.Sample{}
					res.perAlgo[req.alg] = s
				}
				s.AddDuration(el)
				res.requests++
				if !qsort.IsSorted(d) {
					res.failures++
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Fold the per-client samples.
	var overall stats.Sample
	perAlgo := map[harness.Algorithm]*stats.Sample{}
	var requests, failures int64
	for i := range results {
		res := &results[i]
		overall.Merge(&res.overall)
		for a, s := range res.perAlgo {
			t := perAlgo[a]
			if t == nil {
				t = &stats.Sample{}
				perAlgo[a] = t
			}
			t.Merge(s)
		}
		requests += res.requests
		failures += res.failures
	}

	rep := report{
		Config: configJSON{
			P:          rt.P(),
			Clients:    *clients,
			Sizes:      sizes,
			Dists:      kindNames(kinds),
			Algos:      algoNames(algos),
			Seed:       *seed,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		ElapsedSeconds: elapsed.Seconds(),
		Requests:       requests,
		Failures:       failures,
		RequestsPerSec: float64(requests) / elapsed.Seconds(),
		PeakInflight:   inflightPeak.Load(),
		Latency:        latencyOf(&overall),
	}
	for _, a := range algos {
		if s := perAlgo[a]; s != nil {
			rep.PerAlgorithm = append(rep.PerAlgorithm, algoReport{
				Algorithm: a.String(),
				Requests:  int64(s.N()),
				Latency:   latencyOf(s),
			})
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"throughput: p=%d clients=%d elapsed=%.2fs requests=%d (%.1f req/s) p50=%.1fms p90=%.1fms p99=%.1fms max=%.1fms\n",
		rep.Config.P, *clients, rep.ElapsedSeconds, requests, rep.RequestsPerSec,
		rep.Latency.P50*1e3, rep.Latency.P90*1e3, rep.Latency.P99*1e3, rep.Latency.Max*1e3)
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "throughput: %d OUTPUTS NOT SORTED\n", failures)
		os.Exit(1)
	}
	if requests == 0 {
		fmt.Fprintln(os.Stderr, "throughput: no requests completed (duration too short?)")
		os.Exit(1)
	}
}

// sortWith dispatches one request on the shared runtime.
func sortWith(rt *repro.Runtime[int32], alg harness.Algorithm, d []int32,
	mm repro.MMOptions, ss repro.SSOptions, ms repro.MSOptions) {
	switch alg {
	case harness.SeqSTL:
		repro.SortSequential(d)
	case harness.Fork:
		rt.SortForkJoin(d)
	case harness.MMPar:
		rt.SortMixedMode(d, mm)
	case harness.SSort:
		rt.SortSamplesort(d, ss)
	case harness.MSort:
		rt.SortMergeMixedMode(d, ms)
	}
}

type configJSON struct {
	P          int      `json:"p"`
	Clients    int      `json:"clients"`
	Sizes      []int    `json:"sizes"`
	Dists      []string `json:"dists"`
	Algos      []string `json:"algos"`
	Seed       uint64   `json:"seed"`
	GOMAXPROCS int      `json:"gomaxprocs"`
}

type latencyJSON struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean_seconds"`
	P50  float64 `json:"p50_seconds"`
	P90  float64 `json:"p90_seconds"`
	P99  float64 `json:"p99_seconds"`
	Max  float64 `json:"max_seconds"`
}

type algoReport struct {
	Algorithm string      `json:"algorithm"`
	Requests  int64       `json:"requests"`
	Latency   latencyJSON `json:"latency"`
}

type report struct {
	Config         configJSON   `json:"config"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Requests       int64        `json:"requests"`
	Failures       int64        `json:"failures"`
	RequestsPerSec float64      `json:"requests_per_second"`
	PeakInflight   int64        `json:"peak_inflight_requests"`
	Latency        latencyJSON  `json:"latency"`
	PerAlgorithm   []algoReport `json:"per_algorithm"`
}

func latencyOf(s *stats.Sample) latencyJSON {
	return latencyJSON{
		N:    s.N(),
		Mean: s.Mean(),
		P50:  s.Percentile(50),
		P90:  s.Percentile(90),
		P99:  s.Percentile(99),
		Max:  s.Max(),
	}
}

func parseSizes(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseDists(csv string) ([]dist.Kind, error) {
	var out []dist.Kind
	for _, f := range strings.Split(csv, ",") {
		k, err := dist.Parse(f)
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

// parseAlgos accepts the harness column names restricted to algorithms that
// run on the shared core scheduler (plus the sequential baseline).
func parseAlgos(csv string) ([]harness.Algorithm, error) {
	shared := map[harness.Algorithm]bool{
		harness.SeqSTL: true, harness.Fork: true, harness.MMPar: true,
		harness.SSort: true, harness.MSort: true,
	}
	var out []harness.Algorithm
	for _, f := range strings.Split(csv, ",") {
		a, err := harness.ParseAlgorithm(f)
		if err != nil {
			return nil, err
		}
		if !shared[a] {
			return nil, fmt.Errorf("algorithm %v does not run on the shared scheduler (want seqstl|fork|mmpar|ssort|msort)", a)
		}
		out = append(out, a)
	}
	return out, nil
}

func kindNames(ks []dist.Kind) []string {
	out := make([]string, len(ks))
	for i, k := range ks {
		out[i] = k.String()
	}
	return out
}

func algoNames(as []harness.Algorithm) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.String()
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
