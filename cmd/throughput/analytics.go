package main

import (
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/qsort"
	"repro/internal/query"
	"repro/internal/stats"
)

// The analytics request mix: every operator of the Runtime's query surface,
// drawn uniformly over the (distribution, size) cells. The operators read
// the shared pre-generated inputs in place (none of them mutates its
// source), so clients need no per-request input copy — the measured cost is
// the operator itself, end to end through the scheduler.
//
// Every cell's expected results are precomputed once from the sequential
// oracles at generation time, so in-loop verification is an equality check,
// cheap enough to run on every request.

// aOps is the report order of the analytics operators; the names match the
// Runtime's repro_query_* metric label values.
var aOps = []string{"filter", "groupby", "aggregate", "topk", "join", "plan"}

const (
	aNB   = 256 // key buckets of groupby/aggregate/plan
	aTopK = 100 // selection width of topk/plan
)

// The fixed operator parameters of the mix. Keys spread the int32 value
// space over aNB buckets; the filter keeps even values (~half of a random
// input); the aggregation sums values per bucket.
func aPred(v int32) bool           { return v&1 == 0 }
func aKey(v int32) int             { return int(uint32(v) % aNB) }
func aLift(a int64, v int32) int64 { return a + int64(v) }
func aComb(a, b int64) int64       { return a + b }

// aCell is one (distribution, size) workload cell: the shared input, its
// sorted copy (the join side), and every operator's expected result.
type aCell struct {
	kind dist.Kind
	n    int
	in   []int32
	srt  []int32 // ascending copy of in; both sides of the self merge join

	expFilter  int     // filter: surviving count
	expStarts  []int   // groupby: bucket offsets (len aNB+1)
	expAgg     []int64 // aggregate: per-bucket sums
	expTop     []int32 // topk: the aTopK largest, descending
	expJoin    int     // join: matched run count (distinct keys of srt)
	expPlanOut []int32 // plan: final stream of filter→aggregate→topk
	expPlanAgg []int64 // plan: aggregate side-output over the filtered stream
}

// newACell precomputes one cell with the sequential oracles.
func newACell(kind dist.Kind, n int, in []int32) aCell {
	c := aCell{kind: kind, n: n, in: in}

	c.srt = make([]int32, n)
	copy(c.srt, in)
	qsort.Introsort(c.srt)

	filtered := make([]int32, n)
	c.expFilter = query.SeqFilter(in, filtered, aPred)
	filtered = filtered[:c.expFilter]

	grouped := make([]int32, n)
	c.expStarts = query.SeqGroupBy(in, grouped, aNB, aKey)
	c.expAgg = query.SeqAggregate(in, aNB, int64(0), aLift, aKey)

	c.expTop = make([]int32, aTopK)
	c.expTop = c.expTop[:query.SeqTopK(in, c.expTop, aTopK)]

	for i := 0; i < n; i++ { // distinct keys of srt = self-join run count
		if i == 0 || c.srt[i] != c.srt[i-1] {
			c.expJoin++
		}
	}

	// The plan under test: filter → aggregate (side-output) → topk.
	c.expPlanAgg = query.SeqAggregate(filtered, aNB, int64(0), aLift, aKey)
	c.expPlanOut = make([]int32, aTopK)
	c.expPlanOut = c.expPlanOut[:query.SeqTopK(filtered, c.expPlanOut, aTopK)]
	return c
}

// analyticsClient is one client goroutine's request loop of the analytics
// mix: pick a random (cell, operator), issue it through the Runtime, verify
// the result against the cell's precomputed expectation, and record the
// latency under the operator's label.
func analyticsClient(cfg runConfig, rt *repro.Runtime[int32], rng *dist.RNG,
	deadline time.Time, res *clientResult, inflightNow, inflightPeak *atomic.Int64) {
	// Per-client scratch, reused every iteration: allocations inside the
	// timed loop would perturb the tail latencies being measured.
	dst := make([]int32, cfg.maxSize)
	joinOut := make([]repro.JoinRun[int32], cfg.maxSize)
	plan := rt.NewPlan(cfg.maxSize).
		Filter(aPred).
		Aggregate(aNB, aKey, 0, aLift, aComb).
		TopK(aTopK)

	for time.Now().Before(deadline) {
		cell := &cfg.cells[rng.Intn(len(cfg.cells))]
		op := aOps[rng.Intn(len(aOps))]
		cur := inflightNow.Add(1)
		for {
			p := inflightPeak.Load()
			if cur <= p || inflightPeak.CompareAndSwap(p, cur) {
				break
			}
		}
		ok := true
		t0 := time.Now()
		switch op {
		case "filter":
			n := rt.Filter(cell.in, dst, aPred)
			ok = n == cell.expFilter
		case "groupby":
			starts := rt.GroupBy(cell.in, dst[:cell.n], aNB, aKey)
			ok = equalInts(starts, cell.expStarts)
		case "aggregate":
			totals := rt.Aggregate(cell.in, aNB, aKey, 0, aLift, aComb)
			ok = equalInt64s(totals, cell.expAgg)
		case "topk":
			n := rt.TopK(cell.in, dst, aTopK)
			ok = n == len(cell.expTop) && equalInt32s(dst[:n], cell.expTop)
		case "join":
			n := rt.MergeJoin(cell.srt, cell.srt, joinOut)
			ok = n == cell.expJoin
		case "plan":
			r := rt.RunPlan(plan, cell.in)
			ok = equalInt32s(r.Out, cell.expPlanOut) && equalInt64s(r.Aggregates, cell.expPlanAgg)
		}
		el := time.Since(t0)
		inflightNow.Add(-1)
		res.overall.AddDuration(el)
		s := res.perAlgo[op]
		if s == nil {
			s = &stats.Sample{}
			res.perAlgo[op] = s
		}
		s.AddDuration(el)
		res.requests++
		if !ok {
			res.failures++
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt32s(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
