package main

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/qsort"
	"repro/internal/stats"
)

// The abandon mix (-mix abandon) is the cancellation/graceful-degradation
// scenario of the robustness work: even-indexed clients are latency-
// sensitive interactive sorters issuing small mixed-mode sorts back to
// back, odd-indexed clients are batch clients submitting large SortManyCtx
// batches under a -abandon-after context deadline and giving up on them
// mid-flight. The interesting numbers in the report are the interactive
// per-label p99 (it must survive the batch flood — compare against a
// -mix sort run with only the small size), the abandoned_requests count,
// and the admission revoked/canceled counters showing where the abandoned
// work went.

// abandonClient runs one client of the abandon mix; the role is derived
// from the client index so every point gets both populations (a lone client
// is interactive).
func abandonClient(cfg runConfig, rt *repro.Runtime[int32], rng *dist.RNG, c int,
	deadline time.Time, res *clientResult, inflightNow, inflightPeak *atomic.Int64) {
	if c%2 == 0 {
		interactiveClient(cfg, rt, rng, deadline, res, inflightNow, inflightPeak)
	} else {
		batchAbandonClient(cfg, rt, rng, deadline, res, inflightNow, inflightPeak)
	}
}

// smallestReq and largestReq pick the interactive and batch workloads from
// the pre-generated pool: interactive clients sort the smallest cells,
// batch clients the largest.
func smallestReq(reqs []request) []request { return sizeExtreme(reqs, false) }
func largestReq(reqs []request) []request  { return sizeExtreme(reqs, true) }

func sizeExtreme(reqs []request, largest bool) []request {
	ext := reqs[0].size
	for _, r := range reqs {
		if largest == (r.size > ext) {
			ext = r.size
		}
	}
	var out []request
	for _, r := range reqs {
		if r.size == ext {
			out = append(out, r)
		}
	}
	return out
}

// interactiveClient issues small mixed-mode sorts back to back; its latency
// sample is the "interactive" label of the report.
func interactiveClient(cfg runConfig, rt *repro.Runtime[int32], rng *dist.RNG,
	deadline time.Time, res *clientResult, inflightNow, inflightPeak *atomic.Int64) {
	s := &stats.Sample{}
	res.perAlgo["interactive"] = s
	pool := smallestReq(cfg.reqs)
	buf := make([]int32, pool[0].size)
	for time.Now().Before(deadline) {
		req := pool[rng.Intn(len(pool))]
		d := buf[:req.size]
		copy(d, req.in)
		bumpInflight(inflightNow, inflightPeak, 1)
		t0 := time.Now()
		rt.SortMixedMode(d, cfg.mmOpt)
		el := time.Since(t0)
		inflightNow.Add(-1)
		res.overall.AddDuration(el)
		s.AddDuration(el)
		res.requests++
		if !qsort.IsSorted(d) {
			res.failures++
		}
	}
}

// batchAbandonClient submits large batches through SortManyCtx under the
// -abandon-after deadline. Abandoned batches count as abandoned requests
// (their data is garbage by contract, so nothing is verified); batches that
// beat the deadline are verified like any sort request. Latency samples go
// to the "batch" label either way — an abandoned batch's sample is the time
// to *give up*, which is exactly the responsiveness the deadline buys.
func batchAbandonClient(cfg runConfig, rt *repro.Runtime[int32], rng *dist.RNG,
	deadline time.Time, res *clientResult, inflightNow, inflightPeak *atomic.Int64) {
	s := &stats.Sample{}
	res.perAlgo["batch"] = s
	pool := largestReq(cfg.reqs)
	n := cfg.batch
	if n < 4 {
		n = 4 // a batch worth abandoning, even when -batch was left at 1
	}
	bufs := make([][]int32, n)
	for i := range bufs {
		bufs[i] = make([]int32, pool[0].size)
	}
	picked := make([]request, n)
	batch := make([]repro.SortRequest[int32], n)
	batchOpt := repro.BatchOptions{MM: cfg.mmOpt, SS: cfg.ssOpt, MS: cfg.msOpt}
	for time.Now().Before(deadline) {
		for i := range batch {
			req := pool[rng.Intn(len(pool))]
			d := bufs[i][:req.size]
			copy(d, req.in)
			picked[i] = req
			batch[i] = repro.SortRequest[int32]{Data: d, Algo: batchAlgo(req.alg)}
		}
		bumpInflight(inflightNow, inflightPeak, int64(n))
		ctx, cancel := context.WithTimeout(context.Background(), cfg.abandonAft)
		t0 := time.Now()
		err := rt.SortManyCtx(ctx, batch, batchOpt)
		el := time.Since(t0)
		cancel()
		inflightNow.Add(-int64(n))
		res.overall.AddDuration(el)
		s.AddDuration(el)
		res.requests += int64(n)
		switch {
		case errors.Is(err, repro.ErrDeadlineExceeded) || errors.Is(err, repro.ErrCanceled):
			res.abandoned += int64(n)
		case err != nil:
			res.failures += int64(n)
		default:
			for i, req := range picked {
				if !qsort.IsSorted(bufs[i][:req.size]) {
					res.failures++
				}
			}
		}
	}
}

// bumpInflight adds d to the inflight gauge and folds it into the peak.
func bumpInflight(now, peak *atomic.Int64, d int64) {
	cur := now.Add(d)
	for {
		p := peak.Load()
		if cur <= p || peak.CompareAndSwap(p, cur) {
			return
		}
	}
}
