# Tier-1 gate (ROADMAP.md): build + test, plus vet, lint, and targeted race
# runs. The race package list and vet flags are defined once in
# scripts/checkdefs.sh, shared with scripts/check.sh.
.PHONY: all build test vet lint race check fuzz-smoke bench bench-json bench-smoke tables

RACE_PKGS := $(shell . ./scripts/checkdefs.sh; echo $$RACE_PKGS)
VET_FLAGS := $(shell . ./scripts/checkdefs.sh; echo $$VET_FLAGS)

all: check

build:
	go build ./...

test:
	go test ./...

vet:
	go vet $(VET_FLAGS) ./...

# Invariant linting: the reprolint analyzer suite (with its directive
# manifest) plus the compiler-escape complement for //repro:noalloc.
lint:
	go run ./cmd/reprolint ./...
	go run ./scripts/escapecheck

race:
	go test -race $(RACE_PKGS)

# Full verification gate: build, vet, test, race.
check:
	./scripts/check.sh

# Bounded fuzz pass over the workload generators (FUZZTIME=10s default).
fuzz-smoke:
	./scripts/fuzz-smoke.sh

bench:
	go test -bench=. -benchtime=1x .

# Benchmark trajectory: BENCH_{core,par,sort,throughput,query}.json via
# scripts/bench.sh.
bench-json:
	./scripts/bench.sh

# One tiny repetition of each trajectory benchmark — build-and-run only, so
# the benchmarks can't bit-rot (part of scripts/check.sh).
bench-smoke:
	BENCHTIME=1x OUTDIR=$${OUTDIR:-/tmp} ./scripts/bench.sh

tables:
	go run ./cmd/tables -table 1
