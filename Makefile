# Tier-1 gate (ROADMAP.md): build + test, plus vet and targeted race runs.
.PHONY: all build test vet race check fuzz-smoke bench bench-json bench-smoke tables

all: check

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race . ./internal/core ./internal/deque ./internal/dist ./internal/dist/distpar ./internal/msort ./internal/par ./internal/qsort ./internal/query ./internal/ssort ./internal/stats ./internal/trace

# Full verification gate: build, vet, test, race.
check:
	./scripts/check.sh

# Bounded fuzz pass over the workload generators (FUZZTIME=10s default).
fuzz-smoke:
	./scripts/fuzz-smoke.sh

bench:
	go test -bench=. -benchtime=1x .

# Benchmark trajectory: BENCH_{core,par,sort,throughput,query}.json via
# scripts/bench.sh.
bench-json:
	./scripts/bench.sh

# One tiny repetition of each trajectory benchmark — build-and-run only, so
# the benchmarks can't bit-rot (part of scripts/check.sh).
bench-smoke:
	BENCHTIME=1x OUTDIR=$${OUTDIR:-/tmp} ./scripts/bench.sh

tables:
	go run ./cmd/tables -table 1
