# Tier-1 gate (ROADMAP.md): build + test, plus vet and targeted race runs.
.PHONY: all build test vet race check fuzz-smoke bench tables

all: check

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./internal/core ./internal/dist ./internal/dist/distpar

# Full verification gate: build, vet, test, race.
check:
	./scripts/check.sh

# Bounded fuzz pass over the workload generators (FUZZTIME=10s default).
fuzz-smoke:
	./scripts/fuzz-smoke.sh

bench:
	go test -bench=. -benchtime=1x .

tables:
	go run ./cmd/tables -table 1
