#!/usr/bin/env bash
set -euo pipefail

# Bounded fuzzing pass for panic/crash detection.
#
# This verifier is intentionally short-running (FUZZTIME per target, 10s by
# default); it exists to catch generator panics and registry regressions in
# CI, not to replace long-running fuzz campaigns. It is expected to grow
# targeted fuzz functions over time.

cd "$(dirname "$0")/.."

FUZZTIME=${FUZZTIME:-10s}
failures=0

fuzzRegex='^func[[:space:]]+Fuzz[A-Za-z0-9_]+'
missing=()

# internal/core carries FuzzGroup (per-group quiescence), FuzzAdmission
# (bounded inject queues: fairness + bound invariants under random floods)
# and FuzzCancel (random spawn/cancel/deadline/reset schedules: WaitErr
# agrees with the canceled state, inflight reconciles, counters balance);
# internal/stats carries FuzzPercentile (nearest-rank vs brute-force oracle);
# internal/query carries FuzzFilter/FuzzGroupBy/FuzzMergeJoin/FuzzPlan
# (analytics operators and random plans vs their sequential oracles).
fuzzDirs=(internal/core internal/dist internal/par internal/query internal/stats)

for dir in "${fuzzDirs[@]}"; do
  if ! grep -rEn --include='*_test.go' "${fuzzRegex}" "${dir}" >/dev/null 2>&1; then
    missing+=("${dir}")
  fi
done

if [[ "${#missing[@]}" -ne 0 ]]; then
  echo "fuzz-smoke: FAIL (no fuzz targets found in: ${missing[*]})"
  echo "Add at least one 'func FuzzXxx(f *testing.F)' in each package group."
  exit 1
fi

echo "fuzz-smoke: running bounded fuzz pass (${FUZZTIME} per target)"

# The go toolchain fuzzes one target per invocation; enumerate them.
for dir in "${fuzzDirs[@]}"; do
  for t in $(go test -list 'Fuzz.*' "./${dir}" | grep -E '^Fuzz'); do
    echo "fuzz-smoke: ${dir}/${t}"
    go test "./${dir}" -run '^$' -fuzz "^${t}\$" -fuzztime="${FUZZTIME}" || failures=$((failures + 1))
  done
done

if [[ "${failures}" -ne 0 ]]; then
  echo "fuzz-smoke: FAIL (${failures} fuzz target(s) failed)"
  exit 1
fi

echo "fuzz-smoke: PASS"
