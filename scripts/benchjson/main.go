// Command benchjson converts a `go test -bench -json` (test2json) event
// stream on stdin into a JSON array of benchmark results on stdout — the
// post-processing step of scripts/bench.sh that emits the BENCH_*.json
// trajectory files.
//
// With -baseline FILE, the output becomes {"baseline": <FILE's contents>,
// "current": [...]} so a trajectory file can carry recorded before/after
// numbers (scripts/core-baseline.json pins the scheduler's hot-path numbers
// from before the allocation-free refactor).
//
// test2json may split one console line of benchmark output across several
// Output events (the name is printed before the measurement), so the
// events are concatenated per package before the result lines are parsed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// event is the subset of the test2json record we consume.
type event struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// result is one benchmark measurement.
type result struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// resultLine matches "BenchmarkName-8   100   12345 ns/op   extra unit ...".
var resultLine = regexp.MustCompile(`^(Benchmark[^\s-]+(?:/[^\s]+)?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// metricPair matches trailing "value unit" pairs after ns/op.
var metricPair = regexp.MustCompile(`([0-9.]+) ([^\s]+)`)

func main() {
	baseline := flag.String("baseline", "",
		"baseline results file; wraps output as {baseline, current}")
	flag.Parse()

	outputs := map[string]*strings.Builder{} // per package
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	order := []string{}
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise (plain `go test` output)
		}
		if ev.Action != "output" {
			continue
		}
		b, ok := outputs[ev.Package]
		if !ok {
			b = &strings.Builder{}
			outputs[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	results := []result{}
	for _, pkg := range order {
		for _, line := range strings.Split(outputs[pkg].String(), "\n") {
			m := resultLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			r := result{Name: m[1], Package: pkg}
			if m[2] != "" {
				r.Procs, _ = strconv.Atoi(m[2])
			}
			r.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
			r.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
			for _, mm := range metricPair.FindAllStringSubmatch(m[5], -1) {
				v, err := strconv.ParseFloat(mm[1], 64)
				if err != nil {
					continue
				}
				if r.Metrics == nil {
					r.Metrics = map[string]float64{}
				}
				r.Metrics[mm[2]] = v
			}
			results = append(results, r)
		}
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	var out any = results
	if *baseline != "" {
		raw, err := os.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if !json.Valid(raw) {
			fmt.Fprintf(os.Stderr, "benchjson: %s is not valid JSON\n", *baseline)
			os.Exit(1)
		}
		out = struct {
			Baseline json.RawMessage `json:"baseline"`
			Current  []result        `json:"current"`
		}{Baseline: json.RawMessage(raw), Current: results}
	}
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
