// Command metricscheck scrapes a Prometheus text-exposition endpoint and
// validates it: every line must match the exposition grammar (HELP, TYPE,
// or a sample with optional labels and a float value), every sample must
// belong to a family declared by an earlier TYPE line, and every metric
// name listed via -require must appear as a sample. Any violation exits
// nonzero with the offending line — the check.sh smoke runs it against a
// live cmd/throughput -metrics-addr run.
//
// With -monotonic d the endpoint is scraped a second time d later and every
// *_total series must not have decreased — the scrape-delta rate convention
// (delta of a counter divided by the delta of repro_uptime_seconds) only
// works over counters that never go backwards.
//
// Usage:
//
//	metricscheck -retry 5s -require name1,name2 http://127.0.0.1:9090/metrics
//	metricscheck -monotonic 1s http://127.0.0.1:9090/metrics
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

var (
	helpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(?:,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? (\+Inf|-Inf|NaN|[0-9eE.+-]+)$`)
)

func main() {
	retry := flag.Duration("retry", 5*time.Second, "keep retrying a failing scrape up to this long")
	require := flag.String("require", "", "comma-separated metric names that must appear as samples")
	monotonic := flag.Duration("monotonic", 0, "scrape again this much later and fail if any *_total series decreased")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck [-retry d] [-require a,b,c] URL")
		os.Exit(2)
	}
	url := flag.Arg(0)

	body, err := scrape(url, *retry)
	if err != nil {
		fail("scrape %s: %v", url, err)
	}
	if !strings.HasSuffix(body, "\n") {
		fail("exposition does not end in a newline")
	}

	typed := map[string]bool{}
	seen := map[string]bool{}
	for i, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				fail("line %d: malformed HELP: %q", i+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				fail("line %d: malformed TYPE: %q", i+1, line)
			}
			typed[m[1]] = true
		case strings.HasPrefix(line, "#"):
			// Arbitrary comments are legal in the format; the registry never
			// emits them, but do not fail a scrape over one.
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				fail("line %d: malformed sample: %q", i+1, line)
			}
			name := m[1]
			seen[name] = true
			if !typed[name] && !typed[familyOf(name)] {
				fail("line %d: sample %q has no preceding TYPE", i+1, name)
			}
		}
	}
	if len(seen) == 0 {
		fail("no samples in exposition")
	}
	if *require != "" {
		for _, want := range strings.Split(*require, ",") {
			if want = strings.TrimSpace(want); want != "" && !seen[want] {
				fail("required metric %q missing from scrape", want)
			}
		}
	}
	if *monotonic > 0 {
		time.Sleep(*monotonic)
		body2, err := scrape(url, *retry)
		if err != nil {
			fail("second scrape %s: %v", url, err)
		}
		first, second := parseSamples(body), parseSamples(body2)
		checked := 0
		for key, v1 := range first {
			name := key
			if i := strings.IndexByte(key, '{'); i >= 0 {
				name = key[:i]
			}
			if !strings.HasSuffix(name, "_total") {
				continue
			}
			v2, ok := second[key]
			if !ok {
				fail("monotonic: counter series %q vanished between scrapes", key)
			}
			if v2 < v1 {
				fail("monotonic: counter %q decreased between scrapes: %v -> %v", key, v1, v2)
			}
			checked++
		}
		if checked == 0 {
			fail("monotonic: no *_total series to check")
		}
		fmt.Printf("metricscheck: monotonic OK (%d counter series)\n", checked)
	}
	fmt.Printf("metricscheck: OK (%d series names)\n", len(seen))
}

// parseSamples extracts every sample line as series-key (name plus label
// set) to value. Lines that do not parse are skipped — the grammar pass has
// already validated the exposition.
func parseSamples(body string) map[string]float64 {
	out := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		out[m[1]+m[2]] = v
	}
	return out
}

// familyOf strips the histogram sample suffixes.
func familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name {
			return base
		}
	}
	return name
}

// scrape GETs url, retrying (the target may still be binding its port or
// between measurement points) until the deadline.
func scrape(url string, retry time.Duration) (string, error) {
	deadline := time.Now().Add(retry)
	for {
		resp, err := http.Get(url)
		if err == nil {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil && resp.StatusCode == http.StatusOK {
				return string(body), nil
			}
			err = fmt.Errorf("status %d (read err %v)", resp.StatusCode, rerr)
		}
		if time.Now().After(deadline) {
			return "", err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "metricscheck: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
