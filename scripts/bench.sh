#!/usr/bin/env bash
set -euo pipefail

# Benchmark trajectory: runs the scheduler core microbenchmarks, the
# team-parallel primitive benchmarks, the samplesort-vs-quicksort
# benchmarks, and the multi-client throughput harness, and emits
# machine-readable JSON (`go test -bench -json` post-processed by
# scripts/benchjson; cmd/throughput emits JSON natively).
#
#   BENCH_core.json        scheduler hot-path microbenchmarks (spawn/join
#                          ping-pong, empty-task fan-out, steal imbalance,
#                          injected-take poll, inject latency, counter
#                          contention; includes allocs/op), wrapped as
#                          {baseline, current} against the recorded
#                          scripts/core-baseline.json (the pre-pooling
#                          scheduler) so the trajectory keeps before/after
#   BENCH_par.json         primitive throughput (Reduce/Scan/Pack/Histogram/MinMax/Map)
#   BENCH_sort.json        mixed-mode quicksort vs samplesort per distribution
#   BENCH_throughput.json  C concurrent clients × request mix on one shared scheduler
#   BENCH_query.json       analytics operators: {operators} per-operator team
#                          benchmarks (ns/op), {analytics_mix} the multi-client
#                          `cmd/throughput -mix analytics` report (req/s +
#                          per-operator latency percentiles)
#
# Environment:
#   BENCHTIME     per-benchmark time or count (default 1s; bench-smoke uses
#                 1x, which also selects a tiny throughput run)
#   OUTDIR        output directory for the JSON files (default repo root)
#   TP_CLIENTS    throughput harness client count (default 8)
#   TP_DURATION   throughput harness measurement duration (default 3s;
#                 per sweep point in full mode)
#   TP_SWEEP      full mode only: clients×p sweep list recording the
#                 saturation knee (default 1,2,4,8,16; empty disables)
#   TP_MAXINJECT  admission bound (Options.MaxInject) so the trajectory
#                 records backpressure counters (default 32; 0 unbounded)

cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-1s}
OUTDIR=${OUTDIR:-.}

TP_MAXINJECT=${TP_MAXINJECT:-32}
TP_ARGS=(-max-inject "${TP_MAXINJECT}")
if [[ "${BENCHTIME}" == "1x" ]]; then
  # Smoke mode: one tiny mix, just enough to prove the harness (including
  # the admission counters) end to end.
  TP_CLIENTS=${TP_CLIENTS:-4}
  TP_DURATION=${TP_DURATION:-300ms}
  TP_ARGS+=(-sizes 65536 -dists random,staggered)
else
  TP_CLIENTS=${TP_CLIENTS:-8}
  TP_DURATION=${TP_DURATION:-3s}
  TP_SWEEP=${TP_SWEEP:-1,2,4,8,16}
  if [[ -n "${TP_SWEEP}" ]]; then
    TP_ARGS+=(-sweep "${TP_SWEEP}")
  fi
fi

echo "bench: core (benchtime ${BENCHTIME}) -> ${OUTDIR}/BENCH_core.json"
go test -run '^$' -bench '^Benchmark(SpawnJoinPingPong|EmptyTaskFanout|StealImbalance|InjectedTakeEmpty|InjectLatency|CounterContention|HistogramObserve|TraceRecord)$' \
  -benchtime "${BENCHTIME}" -json ./internal/core ./internal/stats ./internal/trace |
  go run ./scripts/benchjson -baseline scripts/core-baseline.json > "${OUTDIR}/BENCH_core.json"

echo "bench: primitives (benchtime ${BENCHTIME}) -> ${OUTDIR}/BENCH_par.json"
go test -run '^$' -bench '^Benchmark(Reduce|ScanInclusive|ScanExclusive|Pack|Histogram|MinMax|Map)$' \
  -benchtime "${BENCHTIME}" -json ./internal/par |
  go run ./scripts/benchjson > "${OUTDIR}/BENCH_par.json"

echo "bench: sorts (benchtime ${BENCHTIME}) -> ${OUTDIR}/BENCH_sort.json"
go test -run '^$' -bench '^Benchmark(SSort|MMQsort)$' \
  -benchtime "${BENCHTIME}" -json ./internal/ssort |
  go run ./scripts/benchjson > "${OUTDIR}/BENCH_sort.json"

echo "bench: throughput (${TP_CLIENTS} clients, ${TP_DURATION}) -> ${OUTDIR}/BENCH_throughput.json"
go run ./cmd/throughput -clients "${TP_CLIENTS}" -duration "${TP_DURATION}" \
  ${TP_ARGS[@]+"${TP_ARGS[@]}"} > "${OUTDIR}/BENCH_throughput.json"

echo "bench: query (benchtime ${BENCHTIME}; analytics mix ${TP_CLIENTS} clients, ${TP_DURATION}) -> ${OUTDIR}/BENCH_query.json"
querydir=$(mktemp -d)
trap 'rm -rf "${querydir}"' EXIT
go test -run '^$' -bench '^BenchmarkQuery' \
  -benchtime "${BENCHTIME}" -json ./internal/query |
  go run ./scripts/benchjson > "${querydir}/operators.json"
# The analytics mix reuses the sort harness knobs (clients, duration,
# admission bound); the sweep stays a sort-mode concern.
go run ./cmd/throughput -mix analytics -clients "${TP_CLIENTS}" -duration "${TP_DURATION}" \
  -max-inject "${TP_MAXINJECT}" -sizes 65536,262144 -dists random,staggered \
  > "${querydir}/mix.json"
{
  printf '{"operators":'
  cat "${querydir}/operators.json"
  printf ',"analytics_mix":'
  cat "${querydir}/mix.json"
  printf '}\n'
} > "${OUTDIR}/BENCH_query.json"

echo "bench: PASS"
