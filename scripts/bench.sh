#!/usr/bin/env bash
set -euo pipefail

# Benchmark trajectory: runs the team-parallel primitive benchmarks and the
# samplesort-vs-quicksort benchmarks and emits machine-readable JSON
# (`go test -bench -json` post-processed by scripts/benchjson).
#
#   BENCH_par.json   primitive throughput (Reduce/Scan/Pack/Histogram/MinMax/Map)
#   BENCH_sort.json  mixed-mode quicksort vs samplesort per distribution
#
# Environment:
#   BENCHTIME  per-benchmark time or count (default 1s; bench-smoke uses 1x)
#   OUTDIR     output directory for the JSON files (default repo root)

cd "$(dirname "$0")/.."

BENCHTIME=${BENCHTIME:-1s}
OUTDIR=${OUTDIR:-.}

echo "bench: primitives (benchtime ${BENCHTIME}) -> ${OUTDIR}/BENCH_par.json"
go test -run '^$' -bench '^Benchmark(Reduce|ScanInclusive|ScanExclusive|Pack|Histogram|MinMax|Map)$' \
  -benchtime "${BENCHTIME}" -json ./internal/par |
  go run ./scripts/benchjson > "${OUTDIR}/BENCH_par.json"

echo "bench: sorts (benchtime ${BENCHTIME}) -> ${OUTDIR}/BENCH_sort.json"
go test -run '^$' -bench '^Benchmark(SSort|MMQsort)$' \
  -benchtime "${BENCHTIME}" -json ./internal/ssort |
  go run ./scripts/benchjson > "${OUTDIR}/BENCH_sort.json"

echo "bench: PASS"
