# Shared verification-gate definitions. Sourced by scripts/check.sh and
# queried by the Makefile (vet/race targets), so the two entry points cannot
# drift. This file must stay `sh`-sourceable: plain VAR="..." assignments only.

# Packages run under the race detector. The list covers the
# admission-control and quiescence tests (the whitebox/flood admission tests
# and spawn-vs-shutdown races in ./internal/core, the Runtime-level
# bounded-flood and SortMany tests in the root package) plus the hot-path
# recycling machinery: the node/ctx free lists and the sharded in-flight scan
# in ./internal/core, the owner-pop slot clearing in ./internal/deque, the
# pooled spawn wrappers of the three sorting packages, the team-collective
# analytics operators in ./internal/query (barrier-separated phases over
# shared state), the seqlock-stamped histogram/registry read paths in
# ./internal/stats, the seqlock-stamped event rings and sampling profiler
# in ./internal/trace, and the fault-injection chaos stress in
# ./internal/chaos (cancel storms racing revocation-at-take against the
# admission path under injected stalls).
RACE_PKGS=". ./internal/chaos ./internal/core ./internal/deque ./internal/dist ./internal/dist/distpar ./internal/msort ./internal/par ./internal/qsort ./internal/query ./internal/ssort ./internal/stats ./internal/trace"

# Explicit vet configuration: -tests=true keeps _test.go files in scope (the
# race-condition regression tests lean on vet's copylocks/atomic checks as
# much as the production code does). Listing no analyzer flags keeps the full
# default analyzer suite enabled — naming individual analyzers would silently
# disable the rest.
VET_FLAGS="-tests=true"
