// Command escapecheck complements the reprolint noalloc analyzer with the
// compiler's own escape analysis. reprolint rejects allocating constructs at
// the AST level; escapecheck catches what only the optimizer can see — a
// value the compiler decides to move to the heap inside a //repro:noalloc
// function (e.g. a variable captured by a call that defeats inlining).
//
// It runs `go build -gcflags=-m` over every package that contains a
// //repro:noalloc function, keeps the "escapes to heap" / "moved to heap"
// diagnostics whose position falls inside such a function, and fails unless
// each finding is listed in scripts/escape-allow.txt. Allowlist entries are
// keyed by file and function name, not line number, so they survive
// unrelated edits:
//
//	internal/core/nodepool.go:(*worker).getCtx: new(Ctx) escapes to heap
//
// Exit status: 0 clean, 1 findings outside the allowlist, 2 operational
// error.
package main

import (
	"bufio"
	"fmt"
	"go/ast"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint"
)

type noallocRange struct {
	file      string // module-relative path
	startLine int
	endLine   int
	fn        string // rendered declaration name, e.g. (*worker).getCtx
	pkgDir    string // module-relative package directory
}

var escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+ escapes to heap|moved to heap: .+)$`)

func main() {
	root, err := moduleRoot()
	if err != nil {
		fatalf("%v", err)
	}
	allowPath := filepath.Join(root, "scripts", "escape-allow.txt")

	ranges, err := noallocRanges(root)
	if err != nil {
		fatalf("%v", err)
	}
	if len(ranges) == 0 {
		fmt.Println("escapecheck: no //repro:noalloc functions found")
		return
	}

	pkgDirs := map[string]bool{}
	for _, r := range ranges {
		pkgDirs[r.pkgDir] = true
	}
	var buildArgs []string
	for d := range pkgDirs {
		buildArgs = append(buildArgs, "./"+filepath.ToSlash(d))
	}
	sort.Strings(buildArgs)

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, buildArgs...)...)
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		fatalf("go build -gcflags=-m failed:\n%s", out)
	}

	allow, err := readAllowlist(allowPath)
	if err != nil {
		fatalf("%v", err)
	}

	var findings []string
	seen := map[string]bool{}
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeRe.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		file := filepath.ToSlash(m[1])
		lineNo, _ := strconv.Atoi(m[2])
		msg := m[4]
		for _, r := range ranges {
			if r.file != file || lineNo < r.startLine || lineNo > r.endLine {
				continue
			}
			key := fmt.Sprintf("%s:%s: %s", r.file, r.fn, msg)
			if seen[key] {
				break
			}
			seen[key] = true
			if allow[key] {
				allow[key] = false // consumed; leftovers are reported as stale
				break
			}
			findings = append(findings,
				fmt.Sprintf("%s:%s:%s: %s (heap escape in //repro:noalloc function %s; fix it or add to %s)",
					file, m[2], m[3], msg, r.fn, "scripts/escape-allow.txt"))
			break
		}
	}

	for key, unused := range allow {
		if unused {
			fmt.Printf("escapecheck: note: stale allowlist entry (no longer reported): %s\n", key)
		}
	}
	if len(findings) > 0 {
		sort.Strings(findings)
		for _, f := range findings {
			fmt.Println(f)
		}
		os.Exit(1)
	}
	fmt.Printf("escapecheck: %d noalloc functions across %d packages: clean\n", len(ranges), len(pkgDirs))
}

// noallocRanges loads the module with the reprolint loader and returns the
// line span of every //repro:noalloc function.
func noallocRanges(root string) ([]noallocRange, error) {
	loader, err := lint.NewLoader(root)
	if err != nil {
		return nil, err
	}
	paths, err := loader.ModulePackages()
	if err != nil {
		return nil, err
	}
	ix := lint.NewIndex()
	var pkgs []*lint.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %v", p, err)
		}
		ix.AddPackage(pkg)
		pkgs = append(pkgs, pkg)
	}
	if errs := ix.Errors(); len(errs) > 0 {
		return nil, fmt.Errorf("directive errors (run reprolint): %s", errs[0])
	}

	var ranges []noallocRange
	for _, pkg := range pkgs {
		rel, err := filepath.Rel(root, pkg.Dir)
		if err != nil {
			return nil, err
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if !ix.DeclHas(fd.Name.Pos(), lint.KindNoAlloc) {
					continue
				}
				start := pkg.Fset.Position(fd.Pos())
				end := pkg.Fset.Position(fd.Body.Rbrace)
				file, err := filepath.Rel(root, start.Filename)
				if err != nil {
					return nil, err
				}
				ranges = append(ranges, noallocRange{
					file:      filepath.ToSlash(file),
					startLine: start.Line,
					endLine:   end.Line,
					fn:        lint.FuncDeclName(fd),
					pkgDir:    filepath.ToSlash(rel),
				})
			}
		}
	}
	return ranges, nil
}

func readAllowlist(path string) (map[string]bool, error) {
	allow := map[string]bool{}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return allow, nil
		}
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		allow[line] = true
	}
	return allow, sc.Err()
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "escapecheck: "+format+"\n", args...)
	os.Exit(2)
}
