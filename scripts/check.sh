#!/usr/bin/env bash
set -euo pipefail

# Tier-1 verification gate plus static and race checks. CI and pre-commit
# entry point; `make check` delegates here.

cd "$(dirname "$0")/.."

echo "check: gofmt"
unformatted=$(gofmt -l .)
if [[ -n "${unformatted}" ]]; then
  echo "check: FAIL (gofmt needed on: ${unformatted})"
  exit 1
fi

echo "check: go build ./..."
go build ./...

echo "check: go vet ./..."
go vet ./...

echo "check: go test ./..."
go test ./...

echo "check: go test -race . ./internal/core ./internal/dist ./internal/dist/distpar ./internal/msort ./internal/par ./internal/ssort"
go test -race . ./internal/core ./internal/dist ./internal/dist/distpar ./internal/msort ./internal/par ./internal/ssort

echo "check: bench-smoke (one tiny repetition of each trajectory benchmark)"
BENCHTIME=1x OUTDIR="$(mktemp -d)" ./scripts/bench.sh

echo "check: PASS"
