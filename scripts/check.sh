#!/usr/bin/env bash
set -euo pipefail

# Tier-1 verification gate plus static and race checks. CI and pre-commit
# entry point; `make check` delegates here.

cd "$(dirname "$0")/.."

# RACE_PKGS and VET_FLAGS live in checkdefs.sh, shared with the Makefile.
. ./scripts/checkdefs.sh

echo "check: gofmt"
unformatted=$(gofmt -l .)
if [[ -n "${unformatted}" ]]; then
  echo "check: FAIL (gofmt needed on: ${unformatted})"
  exit 1
fi

echo "check: go build ./..."
go build ./...

echo "check: go vet ${VET_FLAGS} ./..."
go vet ${VET_FLAGS} ./...

echo "check: reprolint (directive-driven invariant analyzers + manifest pin)"
go run ./cmd/reprolint ./...

echo "check: escapecheck (compiler escape analysis over //repro:noalloc functions)"
go run ./scripts/escapecheck

echo "check: go test ./..."
go test ./...

# The race list and its rationale live in scripts/checkdefs.sh.
echo "check: go test -race ${RACE_PKGS}"
go test -race ${RACE_PKGS}

echo "check: bounded-queue throughput smoke (admission backpressure end to end)"
go run ./cmd/throughput -clients 8 -max-pending 2 -max-inject 8 -duration 300ms \
  -sizes 65536 -dists random -algos mmpar,fork > /dev/null

echo "check: chaos smoke (fault injection + cancel storm, invariants checked per round)"
go run ./cmd/stress -p 4 -rounds 8 -tasks 120 -chaos -seed 1 > /dev/null

echo "check: abandon-mix smoke (deadline-abandoned batches vs interactive sorts)"
go run ./cmd/throughput -mix abandon -clients 6 -duration 400ms -abandon-after 3ms \
  -sizes 16384,262144 -dists random -algos mmpar,msort -max-inject 32 > /dev/null

echo "check: metrics exposition smoke (/metrics scraped mid-run)"
metricsdir=$(mktemp -d)
tp_pid=""
cleanup_metrics() {
  [[ -n "${tp_pid}" ]] && kill "${tp_pid}" 2>/dev/null || true
  rm -rf "${metricsdir}"
}
trap cleanup_metrics EXIT
go build -o "${metricsdir}/metricscheck" ./scripts/metricscheck
go run ./cmd/throughput -clients 4 -sizes 65536 -dists random -algos mmpar,fork \
  -duration 3s -metrics-addr 127.0.0.1:0 -profile-hz 199 \
  > "${metricsdir}/tp.json" 2> "${metricsdir}/tp.err" &
tp_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^throughput: metrics listening on //p' "${metricsdir}/tp.err" | head -n1)
  [[ -n "${addr}" ]] && break
  if ! kill -0 "${tp_pid}" 2>/dev/null; then
    echo "check: FAIL (throughput exited before advertising its metrics address)"
    cat "${metricsdir}/tp.err"
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${addr}" ]]; then
  echo "check: FAIL (no metrics address advertised)"
  cat "${metricsdir}/tp.err"
  exit 1
fi
"${metricsdir}/metricscheck" -retry 5s -monotonic 1s \
  -require repro_sched_steals_total,repro_sched_inject_takes_total,repro_sched_quiesce_scans_total,repro_admission_injected_total,repro_admission_wait_seconds_count,repro_uptime_seconds,repro_worker_state_samples_total,repro_trace_events_total,repro_group_pending_sorts,repro_sort_latency_seconds_bucket,repro_canceled_total,repro_revoked_total,repro_spawn_timeouts_total \
  "http://${addr}/metrics"
wait "${tp_pid}"
tp_pid=""

echo "check: trace export smoke (-trace-out validated by tracecheck)"
tracedir=$(mktemp -d)
go build -o "${tracedir}/tracecheck" ./scripts/tracecheck
go run ./cmd/throughput -clients 4 -sizes 65536 -dists random -algos mmpar,fork \
  -duration 300ms -trace-out "${tracedir}/trace.json" -profile-hz 199 > /dev/null
"${tracedir}/tracecheck" -min-events 100 "${tracedir}/trace.json"
rm -rf "${tracedir}"

echo "check: analytics-mix smoke (query operators end to end, /metrics + trace mid-mix)"
amixdir=$(mktemp -d)
amix_pid=""
cleanup_amix() {
  [[ -n "${amix_pid}" ]] && kill "${amix_pid}" 2>/dev/null || true
  rm -rf "${amixdir}"
}
trap 'cleanup_metrics; cleanup_amix' EXIT
go build -o "${amixdir}/metricscheck" ./scripts/metricscheck
go build -o "${amixdir}/tracecheck" ./scripts/tracecheck
go run ./cmd/throughput -mix analytics -clients 4 -sizes 65536 -dists random,randdup \
  -duration 3s -metrics-addr 127.0.0.1:0 -trace-out "${amixdir}/trace.json" \
  > "${amixdir}/tp.json" 2> "${amixdir}/tp.err" &
amix_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(sed -n 's/^throughput: metrics listening on //p' "${amixdir}/tp.err" | head -n1)
  [[ -n "${addr}" ]] && break
  if ! kill -0 "${amix_pid}" 2>/dev/null; then
    echo "check: FAIL (analytics throughput exited before advertising its metrics address)"
    cat "${amixdir}/tp.err"
    exit 1
  fi
  sleep 0.1
done
if [[ -z "${addr}" ]]; then
  echo "check: FAIL (no metrics address advertised by the analytics mix)"
  cat "${amixdir}/tp.err"
  exit 1
fi
"${amixdir}/metricscheck" -retry 5s \
  -require repro_queries_total,repro_query_latency_seconds_bucket,repro_group_pending_queries,repro_sched_steals_total \
  "http://${addr}/metrics"
wait "${amix_pid}"
amix_pid=""
"${amixdir}/tracecheck" -min-events 100 "${amixdir}/trace.json"
if ! grep -q '"mix": *"analytics"' "${amixdir}/tp.json"; then
  echo "check: FAIL (analytics report does not record its mix)"
  cat "${amixdir}/tp.json"
  exit 1
fi
rm -rf "${amixdir}"
amixdir=""
cleanup_amix() { :; }

echo "check: bench-smoke (one tiny repetition of each trajectory benchmark)"
BENCHTIME=1x OUTDIR="$(mktemp -d)" ./scripts/bench.sh

echo "check: PASS"
