#!/usr/bin/env bash
set -euo pipefail

# Tier-1 verification gate plus static and race checks. CI and pre-commit
# entry point; `make check` delegates here.

cd "$(dirname "$0")/.."

echo "check: gofmt"
unformatted=$(gofmt -l .)
if [[ -n "${unformatted}" ]]; then
  echo "check: FAIL (gofmt needed on: ${unformatted})"
  exit 1
fi

echo "check: go build ./..."
go build ./...

echo "check: go vet ./..."
go vet ./...

echo "check: go test ./..."
go test ./...

# The race list covers the admission-control and quiescence tests (the
# whitebox/flood admission tests and spawn-vs-shutdown races in
# ./internal/core, the Runtime-level bounded-flood and SortMany tests in
# the root package) plus the hot-path recycling machinery: the node/ctx
# free lists and the sharded in-flight scan in ./internal/core, the
# owner-pop slot clearing in ./internal/deque, and the pooled spawn
# wrappers of the three sorting packages.
echo "check: go test -race . ./internal/core ./internal/deque ./internal/dist ./internal/dist/distpar ./internal/msort ./internal/par ./internal/qsort ./internal/ssort"
go test -race . ./internal/core ./internal/deque ./internal/dist ./internal/dist/distpar ./internal/msort ./internal/par ./internal/qsort ./internal/ssort

echo "check: bounded-queue throughput smoke (admission backpressure end to end)"
go run ./cmd/throughput -clients 8 -max-pending 2 -max-inject 8 -duration 300ms \
  -sizes 65536 -dists random -algos mmpar,fork > /dev/null

echo "check: bench-smoke (one tiny repetition of each trajectory benchmark)"
BENCHTIME=1x OUTDIR="$(mktemp -d)" ./scripts/bench.sh

echo "check: PASS"
