// Command tracecheck validates a Chrome trace-event JSON file (the output
// of cmd/throughput -trace-out, Runtime.WriteTrace, or /debug/trace) with
// the schema checks of internal/trace.ValidateChrome: known phases, named
// and timestamped events, per-track begin/end nesting, and flow/async
// references that resolve. The check.sh trace smoke runs it over a live
// -trace-out export so a broken trace fails CI before a human loads it in
// Perfetto.
//
// Usage:
//
//	tracecheck [-min-events n] trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	minEvents := flag.Int("min-events", 1, "fail unless the trace holds at least this many events")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-min-events n] FILE")
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	n, err := trace.ValidateChrome(data)
	if err != nil {
		fail("%s: %v", path, err)
	}
	if n < *minEvents {
		fail("%s: only %d events (want >= %d)", path, n, *minEvents)
	}
	fmt.Printf("tracecheck: OK (%d events)\n", n)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracecheck: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
