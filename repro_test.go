package repro_test

import (
	"sync/atomic"
	"testing"

	"repro"
)

// Facade-level tests: the public API must be usable without touching
// internal packages.

func newFacade(t *testing.T, p int) *repro.Scheduler {
	t.Helper()
	s := repro.NewScheduler(repro.Options{P: p})
	t.Cleanup(s.Shutdown)
	return s
}

func TestFacadeSortMixedMode(t *testing.T) {
	s := newFacade(t, 8)
	for _, k := range []repro.Distribution{repro.Random, repro.Gauss, repro.Buckets, repro.Staggered} {
		data := repro.GenerateInput(k, 300_000, 3)
		repro.SortMixedMode(s, data, repro.MMOptions{BlockSize: 512, MinBlocksPerThread: 8})
		for i := 1; i < len(data); i++ {
			if data[i] < data[i-1] {
				t.Fatalf("%v: not sorted at %d", k, i)
			}
		}
	}
}

func TestFacadeSortForkJoin(t *testing.T) {
	s := newFacade(t, 4)
	data := repro.GenerateInput(repro.Random, 100_000, 5)
	repro.SortForkJoin(s, data)
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestFacadeSortMergeMixedMode(t *testing.T) {
	s := newFacade(t, 8)
	data := repro.GenerateInput(repro.Staggered, 500_000, 7)
	repro.SortMergeMixedMode(s, data, repro.MSOptions{MinPerThread: 4096})
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestFacadeSortSequential(t *testing.T) {
	data := repro.GenerateInput(repro.Gauss, 50_000, 9)
	repro.SortSequential(data)
	for i := 1; i < len(data); i++ {
		if data[i] < data[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestFacadeTeamTask(t *testing.T) {
	s := newFacade(t, 8)
	var mask atomic.Int64
	s.Run(repro.Func(8, func(ctx *repro.Ctx) {
		mask.Or(1 << ctx.LocalID())
		ctx.Barrier()
	}))
	if mask.Load() != 255 {
		t.Fatalf("mask = %b", mask.Load())
	}
}

func TestFacadeForStatic(t *testing.T) {
	s := newFacade(t, 4)
	var sum atomic.Int64
	s.Run(repro.ForStatic(4, 1000, func(_ *repro.Ctx, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum.Add(int64(i))
		}
	}))
	if sum.Load() != 499500 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestFacadeForDynamic(t *testing.T) {
	s := newFacade(t, 4)
	var count atomic.Int64
	s.Run(repro.ForDynamic(4, 777, 10, func(_ *repro.Ctx, lo, hi int) {
		count.Add(int64(hi - lo))
	}))
	if count.Load() != 777 {
		t.Fatalf("count = %d", count.Load())
	}
}

func TestFacadeStats(t *testing.T) {
	s := newFacade(t, 4)
	s.Run(repro.Func(4, func(*repro.Ctx) {}))
	st := s.Stats()
	if st.TasksRun != 4 || st.TeamsFormed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFacadeGenericTypes(t *testing.T) {
	s := newFacade(t, 4)
	f := []float64{3.5, -1.25, 2.0, 0.0, -7.5}
	repro.SortMixedMode(s, f, repro.MMOptions{})
	for i := 1; i < len(f); i++ {
		if f[i] < f[i-1] {
			t.Fatal("float64 not sorted")
		}
	}
	str := []string{"pear", "apple", "fig"}
	repro.SortForkJoin(s, str)
	if str[0] != "apple" || str[2] != "pear" {
		t.Fatalf("strings: %v", str)
	}
}
