// Package repro is the public API of this reproduction of Wimmer & Träff,
// "Work-stealing for mixed-mode parallelism by deterministic team-building"
// (SPAA 2011, arXiv:1012.5030).
//
// The heart of the library is the Scheduler: a work-stealing scheduler whose
// tasks may declare a thread requirement r ≥ 1. Tasks with r = 1 behave like
// classical work-stealing tasks; tasks with r > 1 are executed
// simultaneously by a team of r consecutively numbered workers, built
// deterministically by idle thieves (see the package documentation of
// internal/core for the full protocol).
//
// Quickstart:
//
//	s := repro.NewScheduler(repro.Options{P: 8})
//	defer s.Shutdown()
//	s.Run(repro.Func(4, func(ctx *repro.Ctx) {
//	    fmt.Printf("hello from team member %d/%d\n", ctx.LocalID(), ctx.TeamSize())
//	    ctx.Barrier()
//	}))
//
// The repository also ships the paper's complete evaluation: the mixed-mode
// parallel Quicksort (SortMixedMode), its fork-join and sequential baselines,
// the input distribution generators, and a harness regenerating the paper's
// Tables 1–10 (cmd/tables).
//
// For serving many concurrent clients on one scheduler, see Runtime (each
// sort call runs as its own quiescence Group, so independent requests never
// wait on each other) and Scheduler.NewGroup for the underlying primitive.
package repro

import (
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/dist/distpar"
	"repro/internal/msort"
	"repro/internal/qsort"
	"repro/internal/ssort"
	"repro/internal/stats"
)

// Scheduler is the work-stealing scheduler with deterministic team-building.
type Scheduler = core.Scheduler

// Options configures a Scheduler.
type Options = core.Options

// Task is a unit of work with a fixed thread requirement.
type Task = core.Task

// Ctx is the execution context passed to a running task.
type Ctx = core.Ctx

// TaskGroup provides fork/join-style synchronization for single-threaded
// subtasks (the `sync` of the paper's Algorithm 10).
type TaskGroup = core.TaskGroup

// Group is a quiescence domain on a Scheduler: tasks spawned into a group
// (and all their descendants) complete independently of other groups'
// tasks, so one scheduler can serve many concurrent clients. Create with
// Scheduler.NewGroup.
type Group = core.Group

// SchedStats is the aggregate counter snapshot of a scheduler.
type SchedStats = stats.Snapshot

// AdmissionStats is the snapshot of a scheduler's admission-control
// counters (Scheduler.Admission): the bounded inject path's injected /
// taken / rejected / blocked / peak-pending accounting.
type AdmissionStats = stats.AdmissionSnapshot

// Admission errors of the non-blocking spawn forms (Group.TrySpawn,
// Group.TrySpawnBatch) on a scheduler with Options.MaxPendingPerGroup or
// Options.MaxInject configured.
var (
	// ErrSaturated reports that the admission bounds left no room.
	ErrSaturated = core.ErrSaturated
	// ErrShutdown reports a submission to a shut-down scheduler.
	ErrShutdown = core.ErrShutdown
	// ErrCanceled is the cancellation cause of Group.Cancel(nil) and of
	// contexts canceled without a deadline (Group.BindContext, SortManyCtx).
	ErrCanceled = core.ErrCanceled
	// ErrDeadlineExceeded reports a fired group deadline: Group.Deadline
	// passed, a bound context timed out, or a blocking spawn parked past it.
	ErrDeadlineExceeded = core.ErrDeadlineExceeded
)

// NewScheduler starts a scheduler with opts.P workers (default NumCPU).
func NewScheduler(opts Options) *Scheduler { return core.New(opts) }

// Func returns a task requiring r threads that executes fn; fn runs
// simultaneously on all r team members.
func Func(r int, fn func(*Ctx)) Task { return core.Func(r, fn) }

// Solo returns a classical single-threaded task.
func Solo(fn func(*Ctx)) Task { return core.Solo(fn) }

// ForStatic returns a team task of np threads executing body over [0, n)
// with one contiguous chunk per member (static schedule, implicit barrier).
func ForStatic(np, n int, body func(ctx *Ctx, lo, hi int)) Task {
	return core.ForStatic(np, n, body)
}

// ForDynamic returns a team task of np threads executing body over [0, n)
// with members claiming chunks from a shared counter (dynamic schedule);
// chunk ≤ 0 selects a default.
func ForDynamic(np, n, chunk int, body func(ctx *Ctx, lo, hi int)) Task {
	return core.ForDynamic(np, n, chunk, body)
}

// Ordered is the element constraint of the sorting functions.
type Ordered = qsort.Ordered

// MMOptions are the tunables of the mixed-mode parallel quicksort; the zero
// value selects the paper's defaults (cutoff 512, block size 4096, 128
// blocks per partitioning thread).
type MMOptions = qsort.MMOptions

// SortMixedMode sorts data with the paper's mixed-mode parallel Quicksort
// (Algorithm 11): data-parallel block partitioning by worker teams, followed
// by task-parallel recursion. It blocks until the sort completes.
func SortMixedMode[T Ordered](s *Scheduler, data []T, opt MMOptions) {
	qsort.MixedMode(s, data, opt)
}

// SortForkJoin sorts data with the classical task-parallel Quicksort
// (Algorithm 10) on the same scheduler; all tasks are single-threaded.
func SortForkJoin[T Ordered](s *Scheduler, data []T) {
	qsort.ForkJoinCore(s, data, qsort.DefaultCutoff)
}

// SortSequential sorts data with the repository's introsort (the stand-in
// for std::sort used as the paper's sequential baseline).
func SortSequential[T Ordered](data []T) { qsort.Introsort(data) }

// SSOptions are the tunables of the mixed-mode parallel samplesort.
type SSOptions = ssort.Options

// SortSamplesort sorts data with a mixed-mode parallel samplesort built
// from the team-parallel primitives of internal/par: a worker team samples
// splitters, histograms and scatters its range into buckets, and the
// buckets are sorted by recursively spawned tasks — a structurally
// different mixed-mode algorithm beside the paper's Quicksort. Allocates
// one scratch buffer of len(data).
func SortSamplesort[T Ordered](s *Scheduler, data []T, opt SSOptions) {
	ssort.Sort(s, data, opt)
}

// MSOptions are the tunables of the mixed-mode parallel merge sort.
type MSOptions = msort.Options

// SortMergeMixedMode sorts data with a mixed-mode parallel merge sort
// (task-parallel recursion, team-parallel co-ranked merges) — a second
// mixed-mode application beyond the paper's Quicksort. Allocates one scratch
// buffer of len(data).
func SortMergeMixedMode[T Ordered](s *Scheduler, data []T, opt MSOptions) {
	msort.Sort(s, data, opt)
}

// Distribution identifies one of the paper's benchmark input distributions.
type Distribution = dist.Kind

// Benchmark input distributions: the paper's four (§5; Helman–Bader–JáJá
// definitions) plus the additional scenario kinds of the wider suite.
const (
	Random    = dist.Random
	Gauss     = dist.Gauss
	Buckets   = dist.Buckets
	Staggered = dist.Staggered
	Zero      = dist.Zero
	Sorted    = dist.Sorted
	Reverse   = dist.Reverse
	RandDup   = dist.RandDup
	WorstCase = dist.WorstCase
)

// Distributions returns every registered distribution. The slice is a
// copy; callers may reorder it freely.
func Distributions() []Distribution {
	return append([]Distribution(nil), dist.Kinds...)
}

// ParseDistribution resolves a distribution name (e.g. "staggered"),
// case-insensitively.
func ParseDistribution(s string) (Distribution, error) { return dist.Parse(s) }

// GenerateInput returns n reproducibly seeded values of the distribution.
func GenerateInput(k Distribution, n int, seed uint64) []int32 {
	return dist.Generate(k, n, seed)
}

// GenerateInputParallel is GenerateInput computed by a worker team of s;
// the output is bit-identical to the sequential GenerateInput.
func GenerateInputParallel(s *Scheduler, k Distribution, n int, seed uint64) []int32 {
	return distpar.Generate(s, k, n, seed)
}
