package repro

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/qsort"
	"repro/internal/query"
)

// TestRuntimeAnalytics drives every public analytics entry point of the
// Runtime against the sequential oracles and checks the repro_query_*
// metric families move: per-operator latency histograms and request
// counters, with the per-group pending gauges drained back to zero.
func TestRuntimeAnalytics(t *testing.T) {
	rt := NewRuntime[int32](Options{P: 2})
	defer rt.Close()
	const n, nb, k = 20000, 64, 25
	src := GenerateInput(RandDup, n, 7)
	key := func(v int32) int { return int(uint32(v)) % nb }
	pred := func(v int32) bool { return v%2 == 0 }
	lift := func(a int64, v int32) int64 { return a + int64(v) }
	comb := func(a, b int64) int64 { return a + b }

	// Filter.
	want := make([]int32, n)
	want = want[:query.SeqFilter(src, want, pred)]
	dst := make([]int32, n)
	if got := rt.Filter(src, dst, pred); got != len(want) {
		t.Fatalf("Filter kept %d, want %d", got, len(want))
	}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Filter output differs at %d", i)
		}
	}

	// GroupBy.
	wantGrouped := make([]int32, n)
	wantStarts := query.SeqGroupBy(src, wantGrouped, nb, key)
	grouped := make([]int32, n)
	starts := rt.GroupBy(src, grouped, nb, key)
	for b := range wantStarts {
		if starts[b] != wantStarts[b] {
			t.Fatalf("GroupBy starts differ at bucket %d: %d != %d", b, starts[b], wantStarts[b])
		}
	}
	for i := range wantGrouped {
		if grouped[i] != wantGrouped[i] {
			t.Fatalf("GroupBy output differs at %d", i)
		}
	}

	// Aggregate.
	wantAgg := query.SeqAggregate(src, nb, int64(0), lift, key)
	for b, tot := range rt.Aggregate(src, nb, key, 0, lift, comb) {
		if tot != wantAgg[b] {
			t.Fatalf("Aggregate bucket %d = %d, want %d", b, tot, wantAgg[b])
		}
	}

	// TopK.
	wantTop := make([]int32, k)
	wantTop = wantTop[:query.SeqTopK(src, wantTop, k)]
	top := make([]int32, k)
	if got := rt.TopK(src, top, k); got != len(wantTop) {
		t.Fatalf("TopK selected %d, want %d", got, len(wantTop))
	}
	for i := range wantTop {
		if top[i] != wantTop[i] {
			t.Fatalf("TopK output differs at %d: %d != %d", i, top[i], wantTop[i])
		}
	}

	// MergeJoin over pre-sorted sides, then SortJoin from unsorted copies;
	// both must agree with the sequential join of the sorted input.
	srt := append([]int32(nil), src...)
	qsort.Introsort(srt)
	wantRuns := make([]JoinRun[int32], n)
	wantRuns = wantRuns[:query.SeqMergeJoin(srt, srt, wantRuns)]
	runs := make([]JoinRun[int32], n)
	if got := rt.MergeJoin(srt, srt, runs); got != len(wantRuns) {
		t.Fatalf("MergeJoin found %d runs, want %d", got, len(wantRuns))
	}
	for i := range wantRuns {
		if runs[i] != wantRuns[i] {
			t.Fatalf("MergeJoin run %d = %+v, want %+v", i, runs[i], wantRuns[i])
		}
	}
	a, b := append([]int32(nil), src...), append([]int32(nil), src...)
	if got := rt.SortJoin(a, b, runs, SSOptions{}); got != len(wantRuns) {
		t.Fatalf("SortJoin found %d runs, want %d", got, len(wantRuns))
	}

	// Plan: filter → aggregate (side output) → topk as one request.
	wantPlanAgg := query.SeqAggregate(want, nb, int64(0), lift, key)
	wantPlanOut := make([]int32, k)
	wantPlanOut = wantPlanOut[:query.SeqTopK(want, wantPlanOut, k)]
	plan := rt.NewPlan(n).Filter(pred).Aggregate(nb, key, 0, lift, comb).TopK(k)
	res := rt.RunPlan(plan, src)
	if len(res.Out) != len(wantPlanOut) {
		t.Fatalf("RunPlan returned %d elements, want %d", len(res.Out), len(wantPlanOut))
	}
	for i := range wantPlanOut {
		if res.Out[i] != wantPlanOut[i] {
			t.Fatalf("RunPlan output differs at %d", i)
		}
	}
	for b := range wantPlanAgg {
		if res.Aggregates[b] != wantPlanAgg[b] {
			t.Fatalf("RunPlan aggregate bucket %d = %d, want %d", b, res.Aggregates[b], wantPlanAgg[b])
		}
	}

	// Metric families: one request per operator except join (MergeJoin +
	// SortJoin share the label).
	vals := rt.Metrics().Values()
	for op, wantN := range map[string]float64{
		"filter": 1, "groupby": 1, "aggregate": 1, "topk": 1, "join": 2, "plan": 1,
	} {
		if got := vals[`repro_queries_total{op="`+op+`"}`]; got != wantN {
			t.Fatalf("queries_total{op=%q} = %v, want %v", op, got, wantN)
		}
		if got := vals[`repro_query_latency_seconds_count{op="`+op+`"}`]; got != wantN {
			t.Fatalf("latency count{op=%q} = %v, want %v", op, got, wantN)
		}
		if got := vals[`repro_query_latency_seconds_sum{op="`+op+`"}`]; got <= 0 {
			t.Fatalf("latency sum{op=%q} = %v, want > 0", op, got)
		}
		if got := vals[`repro_group_pending_queries{group="`+op+`"}`]; got != 0 {
			t.Fatalf("pending_queries{group=%q} = %v after drain, want 0", op, got)
		}
	}

	out := rt.Metrics().Render()
	for _, wantLine := range []string{
		"# TYPE repro_query_latency_seconds histogram",
		`repro_query_latency_seconds_bucket{op="join",le="+Inf"} 2`,
		`repro_group_pending_queries{group="plan"} 0`,
	} {
		if !strings.Contains(out, wantLine) {
			t.Fatalf("exposition lacks %q:\n%s", wantLine, out)
		}
	}
}

// TestRuntimeAnalyticsConcurrent hammers the analytics surface from
// concurrent client goroutines — under -race this checks the per-request
// group isolation and the sharded metric writes against live scrapes.
func TestRuntimeAnalyticsConcurrent(t *testing.T) {
	rt := NewRuntime[int32](Options{P: 2})
	defer rt.Close()
	const n, nb, k = 8192, 32, 10
	key := func(v int32) int { return int(uint32(v)) % nb }
	pred := func(v int32) bool { return v%2 == 0 }
	lift := func(a int64, v int32) int64 { return a + int64(v) }
	comb := func(a, b int64) int64 { return a + b }

	done := make(chan error, 3)
	for c := 0; c < 3; c++ {
		go func(c int) {
			src := GenerateInput(Staggered, n, uint64(c+1))
			dst := make([]int32, n)
			plan := rt.NewPlan(n).Filter(pred).TopK(k)
			wantN := query.SeqFilter(src, make([]int32, n), pred)
			wantAgg := query.SeqAggregate(src, nb, int64(0), lift, key)
			for i := 0; i < 8; i++ {
				if got := rt.Filter(src, dst, pred); got != wantN {
					done <- fmt.Errorf("client %d iter %d: Filter kept %d, want %d", c, i, got, wantN)
					return
				}
				agg := rt.Aggregate(src, nb, key, 0, lift, comb)
				for b := range wantAgg {
					if agg[b] != wantAgg[b] {
						done <- fmt.Errorf("client %d iter %d: Aggregate bucket %d differs", c, i, b)
						return
					}
				}
				if res := rt.RunPlan(plan, src); len(res.Out) > k {
					done <- fmt.Errorf("client %d iter %d: RunPlan returned %d elements", c, i, len(res.Out))
					return
				}
			}
			done <- nil
		}(c)
	}
	for c := 0; c < 3; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.Metrics().Values()[`repro_queries_total{op="filter"}`]; got != 24 {
		t.Fatalf("queries_total{op=filter} = %v, want 24", got)
	}
}
