package repro_test

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro"
)

// Multi-client concurrency tests: one shared scheduler serves many
// goroutines sorting independent slices at once. Per-group quiescence is
// what makes this correct — each sort call waits only for its own task
// tree — and the -race gate (scripts/check.sh) runs this file to check the
// scheduler's memory discipline under real contention.

// concurrentOpts exercises team formation at race-test sizes: the default
// mixed-mode quotas would degenerate every sort below ~1M elements to pure
// fork-join, leaving the team protocol untested.
var concurrentOpts = struct {
	mm repro.MMOptions
	ss repro.SSOptions
	ms repro.MSOptions
}{
	mm: repro.MMOptions{BlockSize: 1024, MinBlocksPerThread: 4},
	ss: repro.SSOptions{MinPerThread: 1 << 13},
	ms: repro.MSOptions{MinPerThread: 1 << 13},
}

// sortOnRuntime dispatches one request on the shared runtime.
func sortOnRuntime(rt *repro.Runtime[int32], algo string, data []int32) {
	switch algo {
	case "mmpar":
		rt.SortMixedMode(data, concurrentOpts.mm)
	case "fork":
		rt.SortForkJoin(data)
	case "ssort":
		rt.SortSamplesort(data, concurrentOpts.ss)
	case "msort":
		rt.SortMergeMixedMode(data, concurrentOpts.ms)
	default:
		panic("unknown algo " + algo)
	}
}

// checkSortedPermutation asserts out is sorted and a permutation of in.
func checkSortedPermutation(t *testing.T, label string, in, out []int32) {
	t.Helper()
	want := append([]int32(nil), in...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(out) != len(want) {
		t.Errorf("%s: length changed: %d -> %d", label, len(want), len(out))
		return
	}
	for i := range out {
		if out[i] != want[i] {
			t.Errorf("%s: not the sorted permutation of its input (first diff at %d: got %d want %d)",
				label, i, out[i], want[i])
			return
		}
	}
}

// TestConcurrentSortsSharedScheduler runs every core-scheduler algorithm ×
// several distributions concurrently, one goroutine per (algorithm,
// distribution) pair, all on one shared scheduler.
func TestConcurrentSortsSharedScheduler(t *testing.T) {
	rt := repro.NewRuntime[int32](repro.Options{P: 8})
	defer rt.Close()

	algos := []string{"mmpar", "fork", "ssort", "msort"}
	kinds := []repro.Distribution{repro.Random, repro.Staggered, repro.RandDup, repro.Sorted}
	const n = 1 << 17

	var wg sync.WaitGroup
	for ai, algo := range algos {
		for ki, kind := range kinds {
			wg.Add(1)
			go func(algo string, kind repro.Distribution, seed uint64) {
				defer wg.Done()
				in := repro.GenerateInput(kind, n, seed)
				out := append([]int32(nil), in...)
				sortOnRuntime(rt, algo, out)
				checkSortedPermutation(t, fmt.Sprintf("%s/%v", algo, kind), in, out)
			}(algo, kind, uint64(ai*len(kinds)+ki+1))
		}
	}
	wg.Wait()
	if p := rt.Scheduler().Pending(); p != 0 {
		t.Fatalf("pending = %d after all sorts returned", p)
	}
}

// TestConcurrentSortsIndependence is the acceptance shape verbatim: 2 and
// then 8 concurrent mixed-mode sorts on one shared scheduler, each
// completing correctly and independently.
func TestConcurrentSortsIndependence(t *testing.T) {
	rt := repro.NewRuntime[int32](repro.Options{P: 8})
	defer rt.Close()
	for _, clients := range []int{2, 8} {
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				kind := []repro.Distribution{repro.Random, repro.Gauss}[c%2]
				in := repro.GenerateInput(kind, 1<<17, uint64(100+c))
				out := append([]int32(nil), in...)
				rt.SortMixedMode(out, concurrentOpts.mm)
				checkSortedPermutation(t, fmt.Sprintf("clients=%d/%d", clients, c), in, out)
			}(c)
		}
		wg.Wait()
	}
}

// TestConcurrentMixedWorkload interleaves different request shapes from
// each client — sorts of varying sizes and algorithms plus team-parallel
// input generation — the multi-client mixed-mode setting of the ROADMAP's
// production trajectory.
func TestConcurrentMixedWorkload(t *testing.T) {
	s := repro.NewScheduler(repro.Options{P: 8})
	defer s.Shutdown()
	rt := repro.NewRuntimeOn[int32](s)

	const clients = 8
	algos := []string{"mmpar", "fork", "ssort", "msort"}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for req := 0; req < 3; req++ {
				n := 1 << (14 + (c+req)%4) // 16K … 128K
				kind := repro.Distributions()[(c+req)%len(repro.Distributions())]
				in := repro.GenerateInputParallel(s, kind, n, uint64(c*10+req))
				out := append([]int32(nil), in...)
				sortOnRuntime(rt, algos[(c+req)%len(algos)], out)
				checkSortedPermutation(t, fmt.Sprintf("client%d/req%d", c, req), in, out)
			}
		}(c)
	}
	wg.Wait()
}
