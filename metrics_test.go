package repro

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestRuntimeMetrics runs sorts through a Runtime and checks its registry
// reports them: per-algorithm latency histograms and request counters move,
// the per-group pending gauges drain back to zero, and the scheduler
// families ride along in the same exposition.
func TestRuntimeMetrics(t *testing.T) {
	rt := NewRuntime[int32](Options{P: 2})
	defer rt.Close()
	data := GenerateInput(Random, 20000, 1)
	rt.SortMixedMode(append([]int32(nil), data...), MMOptions{})
	rt.SortForkJoin(append([]int32(nil), data...))
	rt.SortMany([]SortRequest[int32]{
		{Data: append([]int32(nil), data...), Algo: AlgoSamplesort},
		{Data: append([]int32(nil), data...), Algo: AlgoMergeMixedMode},
		{Data: append([]int32(nil), data...), Algo: AlgoMixedMode},
	}, BatchOptions{})

	vals := rt.Metrics().Values()
	for algo, want := range map[string]float64{
		"mmpar": 2, "fork": 1, "ssort": 1, "msort": 1,
	} {
		if got := vals[`repro_sorts_total{algo="`+algo+`"}`]; got != want {
			t.Fatalf("sorts_total{algo=%q} = %v, want %v", algo, got, want)
		}
		if got := vals[`repro_sort_latency_seconds_count{algo="`+algo+`"}`]; got != want {
			t.Fatalf("latency count{algo=%q} = %v, want %v", algo, got, want)
		}
		if got := vals[`repro_sort_latency_seconds_sum{algo="`+algo+`"}`]; got <= 0 {
			t.Fatalf("latency sum{algo=%q} = %v, want > 0", algo, got)
		}
		if got := vals[`repro_group_pending_sorts{group="`+algo+`"}`]; got != 0 {
			t.Fatalf("pending_sorts{group=%q} = %v after drain, want 0", algo, got)
		}
	}
	if got := vals["repro_sched_tasks_total"]; got <= 0 {
		t.Fatalf("scheduler families missing from Runtime registry (tasks_total = %v)", got)
	}

	out := rt.Metrics().Render()
	for _, want := range []string{
		"# TYPE repro_sort_latency_seconds histogram",
		`repro_sort_latency_seconds_bucket{algo="mmpar",le="+Inf"} 2`,
		`repro_group_pending_sorts{group="fork"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, out)
		}
	}
	if rt.Metrics() != rt.Metrics() {
		t.Fatal("Metrics() not cached")
	}
}

// TestServeMetrics exercises the HTTP surface: an ephemeral-port server
// with no registry answers 503, SetRegistry swaps one in live, /metrics
// returns the versioned content type with well-formed content, and Close
// releases the port.
func TestServeMetrics(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func() (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
	}

	if code, _, _ := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("no-registry status = %d, want 503", code)
	}

	rt := NewRuntime[int32](Options{P: 2})
	defer rt.Close()
	rt.SortForkJoin(GenerateInput(Random, 4096, 2))
	srv.SetRegistry(rt.Metrics())

	code, ctype, body := get()
	if code != http.StatusOK {
		t.Fatalf("status = %d, want 200", code)
	}
	if want := "text/plain; version=0.0.4; charset=utf-8"; ctype != want {
		t.Fatalf("content type = %q, want %q", ctype, want)
	}
	for _, want := range []string{
		`repro_sorts_total{algo="fork"} 1`,
		"repro_sched_workers 2",
		"repro_admission_injected_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("scrape lacks %q:\n%s", want, body)
		}
	}

	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(srv.URL()); err == nil {
		t.Fatal("server still answering after Close")
	}
}

// TestMetricsConcurrentScrapes hammers the registry from concurrent sorts
// and scrapes — under -race this checks the whole read path (histograms,
// dynamic gauges, counter closures over live atomics) against live writers.
func TestMetricsConcurrentScrapes(t *testing.T) {
	rt := NewRuntime[int32](Options{P: 2})
	defer rt.Close()
	reg := rt.Metrics()
	stop := make(chan struct{})
	var scrapers, sorters sync.WaitGroup
	for i := 0; i < 2; i++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if out := reg.Render(); !strings.Contains(out, "repro_sort_latency_seconds") {
					t.Error("scrape lost the latency family")
					return
				}
			}
		}()
	}
	for c := 0; c < 3; c++ {
		sorters.Add(1)
		go func(c int) {
			defer sorters.Done()
			for i := 0; i < 4; i++ {
				rt.SortMixedMode(GenerateInput(Staggered, 20000, uint64(c*10+i)), MMOptions{})
			}
		}(c)
	}
	sorters.Wait()
	close(stop)
	scrapers.Wait()
}
