package repro_test

import (
	"context"
	"errors"
	"sort"
	"sync"
	"testing"
	"time"

	"repro"
)

// Admission-control tests at the public API level: bounded runtimes under
// client floods, the batched SortMany entry point, and the typed errors of
// the non-blocking spawn forms. Runs under the -race gate (scripts/check.sh).

// TestRuntimeSortMany sorts a heterogeneous batch — all four scheduler
// algorithms, several distributions and sizes including trivial ones — with
// a single SortMany call, from several concurrent clients.
func TestRuntimeSortMany(t *testing.T) {
	rt := repro.NewRuntime[int32](repro.Options{P: 4, Seed: 7})
	defer rt.Close()
	algos := []repro.SortAlgo{
		repro.AlgoMixedMode, repro.AlgoForkJoin,
		repro.AlgoSamplesort, repro.AlgoMergeMixedMode,
	}
	opt := repro.BatchOptions{
		MM: concurrentOpts.mm, SS: concurrentOpts.ss, MS: concurrentOpts.ms,
	}
	const clients = 4
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var ins [][]int32
			var reqs []repro.SortRequest[int32]
			i := 0
			for _, kind := range []repro.Distribution{repro.Random, repro.Staggered, repro.Reverse} {
				for _, n := range []int{0, 1, 100, 1 << 15} {
					in := repro.GenerateInput(kind, n, uint64(c*100+n))
					data := append([]int32(nil), in...)
					ins = append(ins, in)
					reqs = append(reqs, repro.SortRequest[int32]{Data: data, Algo: algos[i%len(algos)]})
					i++
				}
			}
			rt.SortMany(reqs, opt)
			for j, rq := range reqs {
				checkSortedPermutation(t, "sortmany", ins[j], rq.Data)
			}
		}(c)
	}
	wg.Wait()
	if p := rt.Scheduler().Pending(); p != 0 {
		t.Fatalf("pending = %d after all batches", p)
	}
}

// TestRuntimeBoundedFlood is the acceptance property at the Runtime level:
// with clients ≫ P and admission bounds configured, the scheduler's peak
// pending injected tasks never exceed MaxInject while every request still
// completes correctly.
func TestRuntimeBoundedFlood(t *testing.T) {
	const bound = 4
	rt := repro.NewRuntime[int32](repro.Options{
		P: 2, Seed: 3, MaxInject: bound, MaxPendingPerGroup: 2,
	})
	defer rt.Close()
	const clients = 12
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				in := repro.GenerateInput(repro.Random, 4096, uint64(c)<<16|uint64(i))
				data := append([]int32(nil), in...)
				sortOnRuntime(rt, []string{"mmpar", "fork", "ssort", "msort"}[i%4], data)
				checkSortedPermutation(t, "bounded", in, data)
			}
		}(c)
	}
	wg.Wait()
	adm := rt.Scheduler().Admission()
	if adm.PeakPending > bound {
		t.Fatalf("peak pending injected = %d exceeds MaxInject %d", adm.PeakPending, bound)
	}
	if adm.Pending != 0 || adm.Injected != adm.Taken {
		t.Fatalf("admission flow inconsistent after drain: %+v", adm)
	}
}

// TestGroupTrySpawnSaturation checks the typed-error surface of the public
// API: a full group reports ErrSaturated from TrySpawn, and a shut-down
// scheduler reports ErrShutdown.
func TestGroupTrySpawnSaturation(t *testing.T) {
	s := repro.NewScheduler(repro.Options{P: 1, MaxPendingPerGroup: 1})
	block := make(chan struct{})
	g := s.NewGroup()
	g.Spawn(repro.Solo(func(*repro.Ctx) { <-block })) // occupies the worker
	for g.PendingInjected() != 0 {
	}
	if err := g.TrySpawn(repro.Solo(func(*repro.Ctx) {})); err != nil {
		t.Fatalf("TrySpawn into empty queue: %v", err)
	}
	err := g.TrySpawn(repro.Solo(func(*repro.Ctx) {}))
	if !errors.Is(err, repro.ErrSaturated) {
		t.Fatalf("TrySpawn over budget: err = %v, want ErrSaturated", err)
	}
	close(block)
	g.Wait()
	s.Shutdown()
	if err := g.TrySpawn(repro.Solo(func(*repro.Ctx) {})); !errors.Is(err, repro.ErrShutdown) {
		t.Fatalf("TrySpawn after Shutdown: err = %v, want ErrShutdown", err)
	}
}

// TestSortManyCtx exercises the cancelable batch entry point end to end:
// a background-context batch behaves exactly like SortMany (nil error, data
// sorted), a pre-canceled context refuses with ErrCanceled before any work,
// and a batch abandoned mid-flight returns its typed cause with the
// scheduler fully drained — the public face of revocation at take time.
func TestSortManyCtx(t *testing.T) {
	rt := repro.NewRuntime[int32](repro.Options{P: 4, Seed: 11})
	defer rt.Close()

	mk := func(n int, seed uint64) []int32 {
		return append([]int32(nil), repro.GenerateInput(repro.Random, n, seed)...)
	}

	// Background context: identical to SortMany.
	data := mk(1<<14, 1)
	err := rt.SortManyCtx(context.Background(),
		[]repro.SortRequest[int32]{{Data: data, Algo: repro.AlgoMixedMode}},
		repro.BatchOptions{})
	if err != nil {
		t.Fatalf("background SortManyCtx = %v", err)
	}
	if !sort.SliceIsSorted(data, func(i, j int) bool { return data[i] < data[j] }) {
		t.Fatal("background batch left data unsorted")
	}

	// Pre-canceled context: typed refusal, nothing runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = rt.SortManyCtx(ctx,
		[]repro.SortRequest[int32]{{Data: mk(1<<12, 2), Algo: repro.AlgoForkJoin}},
		repro.BatchOptions{})
	if !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("pre-canceled SortManyCtx = %v, want ErrCanceled", err)
	}
	// Empty batch under a dead context still reports the typed cause.
	if err := rt.SortManyCtx(ctx, nil, repro.BatchOptions{}); !errors.Is(err, repro.ErrCanceled) {
		t.Fatalf("empty canceled SortManyCtx = %v, want ErrCanceled", err)
	}

	// A deadline tight enough to abandon a large batch mid-flight: the call
	// must return ErrDeadlineExceeded and leave the scheduler drained. (On a
	// fast machine the batch may occasionally beat the clock; retry with
	// more work rather than flaking.)
	for attempt, n := 0, 1<<20; ; attempt, n = attempt+1, n*2 {
		reqs := make([]repro.SortRequest[int32], 8)
		for i := range reqs {
			reqs[i] = repro.SortRequest[int32]{Data: mk(n, uint64(3+i)), Algo: repro.AlgoMergeMixedMode}
		}
		dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
		err := rt.SortManyCtx(dctx, reqs, repro.BatchOptions{})
		dcancel()
		if errors.Is(err, repro.ErrDeadlineExceeded) {
			break
		}
		if err != nil {
			t.Fatalf("abandoned SortManyCtx = %v, want ErrDeadlineExceeded", err)
		}
		if attempt == 4 {
			t.Skip("machine sorts 8x16M elements in <2ms; cannot provoke abandonment")
		}
	}
	if p := rt.Scheduler().Pending(); p != 0 {
		t.Fatalf("pending = %d after abandoned batch", p)
	}
}
